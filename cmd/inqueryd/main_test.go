package main

import (
	"bufio"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

var (
	buildOnce sync.Once
	buildDir  string
	buildOut  string
	buildErr  error
)

// smokeBinaries builds the real inqueryd and loadgen binaries once per
// test process and returns their paths.
func smokeBinaries(t *testing.T) map[string]string {
	t.Helper()
	buildOnce.Do(func() {
		buildDir, buildErr = os.MkdirTemp("", "inqueryd-smoke-*")
		if buildErr != nil {
			return
		}
		for _, pkg := range []string{"inqueryd", "loadgen"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(buildDir, pkg), "repro/cmd/"+pkg)
			cmd.Env = os.Environ()
			if b, err := cmd.CombinedOutput(); err != nil {
				buildErr = err
				buildOut = string(b)
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatalf("build smoke binaries: %v\n%s", buildErr, buildOut)
	}
	return map[string]string{
		"inqueryd": filepath.Join(buildDir, "inqueryd"),
		"loadgen":  filepath.Join(buildDir, "loadgen"),
	}
}

// serveSmoke boots inqueryd with the given extra flags over a
// self-built synthetic index, asserts the serving banner contains
// servingWant, drives a short closed-loop loadgen burst, checks
// /healthz, /metrics and /snapshot, runs any extra checks against the
// live server, then SIGTERMs and requires a clean drain (exit 0 with
// the draining/stopped lifecycle lines) — a hung shutdown or leaked
// worker turns into a test timeout here.
func serveSmoke(t *testing.T, extraSrvArgs []string, servingWant string,
	checks ...func(t *testing.T, target string)) {
	bins := smokeBinaries(t)

	args := append([]string{
		"-synthetic", "CACM", "-scale", "0.02",
		"-addr", "127.0.0.1:0", "-max-inflight", "8",
	}, extraSrvArgs...)
	srv := exec.Command(bins["inqueryd"], args...)
	stdout, err := srv.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	srv.Stderr = srv.Stdout
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Process.Kill()

	// The first stdout line carries the bound address; the second names
	// what is served.
	lines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	readLine := func(what string) string {
		select {
		case l, ok := <-lines:
			if !ok {
				t.Fatalf("inqueryd exited before printing %s", what)
			}
			return l
		case <-time.After(30 * time.Second):
			t.Fatalf("timed out waiting for %s", what)
		}
		return ""
	}
	first := readLine("the listen address")
	const prefix = "inqueryd: listening on "
	if !strings.HasPrefix(first, prefix) {
		t.Fatalf("unexpected first line %q", first)
	}
	target := strings.TrimPrefix(first, prefix)
	serving := readLine("the serving banner")
	if !strings.Contains(serving, servingWant) {
		t.Fatalf("serving banner %q lacks %q", serving, servingWant)
	}

	get := func(path string, wantSub string) {
		t.Helper()
		resp, err := http.Get(target + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d (%s)", path, resp.StatusCode, b)
		}
		if !strings.Contains(string(b), wantSub) {
			t.Fatalf("GET %s: body lacks %q: %s", path, wantSub, b)
		}
	}
	get("/healthz", `"ok"`)

	lg := exec.Command(bins["loadgen"],
		"-target", target, "-collection", "CACM", "-scale", "0.02",
		"-duration", "1s", "-c", "4", "-wait", "5s")
	lgOut, err := lg.CombinedOutput()
	if err != nil {
		t.Fatalf("loadgen: %v\n%s", err, lgOut)
	}
	if !strings.Contains(string(lgOut), "qps") || !strings.Contains(string(lgOut), "outcome ok") {
		t.Fatalf("loadgen summary missing throughput/outcome lines:\n%s", lgOut)
	}

	// The burst must be visible in the served metrics and snapshot.
	get("/metrics", "http_requests_total")
	get("/snapshot", "CACM")

	for _, check := range checks {
		check(t, target)
	}

	// Graceful shutdown: SIGTERM drains and exits 0.
	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	var rest []string
	for l := range lines {
		rest = append(rest, l)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("inqueryd exit: %v\n%s", err, strings.Join(rest, "\n"))
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("inqueryd did not exit after SIGTERM; output:\n%s", strings.Join(rest, "\n"))
	}
	tail := strings.Join(rest, "\n")
	for _, want := range []string{"draining", "stopped"} {
		if !strings.Contains(tail, want) {
			t.Fatalf("shutdown lifecycle line %q missing from output:\n%s", want, tail)
		}
	}
}

// TestServeSmoke is the end-to-end serving smoke over a single-engine
// index.
func TestServeSmoke(t *testing.T) {
	serveSmoke(t, nil, "CACM (")
}

// TestServeSmokeSharded is the same lifecycle over a document-
// partitioned boot: two shards behind the scatter-gather coordinator
// under a quorum(1) policy, each shard on its own store. The serving
// banner must advertise the shard count and policy, and the burst,
// metrics, snapshot, and drain must all behave exactly as unsharded.
func TestServeSmokeSharded(t *testing.T) {
	serveSmoke(t, []string{"-shards", "2", "-quorum", "quorum(1)"},
		"2 shards, quorum(1)")
}

// TestServeSmokeReplicated boots the lifecycle over a replicated set —
// two shards, two byte-identical replicas each, every replica on its
// own store — and, after the burst, asserts /snapshot carries the
// per-replica health array (state + replica collection names) that the
// failover router maintains.
func TestServeSmokeReplicated(t *testing.T) {
	serveSmoke(t, []string{"-shards", "2", "-replicas", "2"},
		"2 shards x2 replicas",
		func(t *testing.T, target string) {
			resp, err := http.Get(target + "/snapshot")
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			b, _ := io.ReadAll(resp.Body)
			body := string(b)
			for _, want := range []string{
				`"replicas":2`, `"state":"healthy"`,
				`"collection":"CACM.s0"`, `"collection":"CACM.r1.s0"`,
			} {
				if !strings.Contains(body, want) {
					t.Fatalf("/snapshot lacks %q:\n%s", want, body)
				}
			}
		})
}

// TestServeSmokeNRT boots the same lifecycle with -nrt: the synthetic
// build becomes the NRT base segment, the banner advertises the write
// path, and after the read burst a live ingest through POST /v1/ingest
// must be searchable on the very next request.
func TestServeSmokeNRT(t *testing.T) {
	serveSmoke(t, []string{"-nrt", "-nrt-flush-docs", "16"}, "docs, nrt)",
		func(t *testing.T, target string) {
			post := func(path string, body string) (int, string) {
				t.Helper()
				resp, err := http.Post(target+path, "application/json",
					strings.NewReader(body))
				if err != nil {
					t.Fatalf("POST %s: %v", path, err)
				}
				defer resp.Body.Close()
				b, _ := io.ReadAll(resp.Body)
				return resp.StatusCode, string(b)
			}
			st, raw := post("/v1/ingest",
				`{"index":"CACM","docs":["zweihander zephyrine smoke document","zephyrine alone"]}`)
			if st != 200 || !strings.Contains(raw, `"first_id"`) {
				t.Fatalf("ingest: status %d body %s", st, raw)
			}
			st, raw = post("/v1/search", `{"index":"CACM","query":"zephyrine"}`)
			if st != 200 || !strings.Contains(raw, `"results"`) {
				t.Fatalf("search after ingest: status %d body %s", st, raw)
			}
			if n := strings.Count(raw, `"doc"`); n != 2 {
				t.Fatalf("search after ingest: want the 2 ingested docs, got %d in %s", n, raw)
			}
		})
}
