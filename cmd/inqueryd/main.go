// Command inqueryd is the long-running search server: one core.Engine
// per configured index behind the HTTP/JSON API in internal/serve.
//
// Usage:
//
//	inqueryd -index cacm=index.img -addr 127.0.0.1:7933
//	inqueryd -index index.img -name mycol -backend btree
//	inqueryd -synthetic CACM -scale 0.05            # self-built test index
//
// Indexes come from inquery-index images (-index, repeatable, as
// "name=path" or a bare path served under -name) or are built in
// memory from the paper's synthetic collections (-synthetic,
// repeatable) — the latter needs no image file and is what the smoke
// and serve-bench harnesses use.
//
// Endpoints: POST /v1/search (single or batch), GET /v1/explain,
// GET /metrics, GET /snapshot, GET /healthz. Statuses follow the
// taxonomy documented in internal/serve: 200 ok/degraded, 400 parse,
// 404 unknown index, 429 shed, 503 breaker open or draining, 504
// deadline (partial ranking in the body).
//
// On SIGINT/SIGTERM the server marks /healthz draining, stops
// accepting connections, and waits up to -shutdown-timeout for
// in-flight requests before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/lexicon"
	"repro/internal/serve"
	"repro/internal/textproc"
	"repro/internal/vfs"
	"time"
)

func main() {
	var images, synthetics []string
	addr := flag.String("addr", "127.0.0.1:7933", "listen address (use :0 for an ephemeral port; the bound address is printed)")
	flag.Func("index", "index image to serve, as name=path or a bare path (repeatable)", func(v string) error {
		images = append(images, v)
		return nil
	})
	flag.Func("synthetic", "synthetic paper collection to build in memory and serve (CACM, Legal, ...; repeatable)", func(v string) error {
		synthetics = append(synthetics, v)
		return nil
	})
	name := flag.String("name", "collection", "collection name inside bare -index images")
	backend := flag.String("backend", "mneme", "storage backend for -index images: mneme or btree")
	cache := flag.Bool("cache", true, "enable Mneme record caching (paper buffer plan)")
	stem := flag.Bool("stem", true, "apply Porter stemming to queries against -index images")
	chunk := flag.Int("chunk", 0, "chunk size the -index image was built with")
	scale := flag.Float64("scale", 0.05, "document-count scale of -synthetic collections")
	topK := flag.Int("k", serve.DefaultTopK, "default results per query when a request names no top_k")
	deadline := flag.Duration("deadline", 0, "default per-query deadline applied when a request names none (0 = none)")
	maxBatch := flag.Int("max-batch", serve.DefaultMaxBatch, "maximum requests in one batch body")
	degraded := flag.Bool("degraded", false, "serve partial rankings past corrupt records for every request (requests can also opt in per query)")
	prune := flag.Bool("prune", false, "MaxScore pruning for every DAAT request (requests can also opt in per query)")
	maxInflight := flag.Int("max-inflight", 0, "bound on concurrently admitted queries per index; excess queries wait -queue-wait then are shed with 429 (0 = unbounded)")
	queueWait := flag.Duration("queue-wait", 0, "how long an over-limit query may wait for admission before being shed")
	retries := flag.Int("retries", 1, "read attempts per storage fault-in")
	breaker := flag.Int("breaker", 0, "consecutive-failure threshold that opens a per-pool circuit breaker (0 = disabled)")
	shutdownTO := flag.Duration("shutdown-timeout", 10*time.Second, "drain budget for in-flight requests on SIGINT/SIGTERM")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "inqueryd:", err)
		os.Exit(1)
	}
	if len(images) == 0 && len(synthetics) == 0 {
		fail(errors.New("nothing to serve: give at least one -index or -synthetic"))
	}

	engineOpts := func(an *textproc.Analyzer) []core.Option {
		opts := []core.Option{core.WithAnalyzer(an)}
		if *degraded {
			opts = append(opts, core.WithDegraded())
		}
		if *prune {
			opts = append(opts, core.WithPruning())
		}
		if *maxInflight > 0 {
			opts = append(opts, core.WithMaxInFlight(*maxInflight, *queueWait))
		}
		if *retries > 1 {
			opts = append(opts, core.WithRetry(*retries))
		}
		if *breaker > 0 {
			opts = append(opts, core.WithBreaker(*breaker, 0))
		}
		return opts
	}

	engines := make(map[string]*core.Engine)
	addEngine := func(n string, e *core.Engine) error {
		if _, dup := engines[n]; dup {
			return fmt.Errorf("duplicate index name %q", n)
		}
		engines[n] = e
		return nil
	}
	defer func() {
		for _, e := range engines {
			e.Close()
		}
	}()

	for _, spec := range images {
		n, path := *name, spec
		if i := strings.IndexByte(spec, '='); i >= 0 {
			n, path = spec[:i], spec[i+1:]
		}
		eng, err := openImage(path, n, *backend, *cache, *stem, *chunk, engineOpts)
		if err != nil {
			fail(fmt.Errorf("index %s: %w", spec, err))
		}
		if err := addEngine(n, eng); err != nil {
			fail(err)
		}
	}
	// Synthetic collections are generated pre-normalized, so their
	// engines analyze without stemming or stopping — same analyzer the
	// experiments use.
	for _, n := range synthetics {
		eng, err := buildSynthetic(n, *scale, engineOpts)
		if err != nil {
			fail(fmt.Errorf("synthetic %s: %w", n, err))
		}
		if err := addEngine(n, eng); err != nil {
			fail(err)
		}
	}

	srv := serve.New(engines, serve.Defaults{
		TopK:     *topK,
		Deadline: *deadline,
		MaxBatch: *maxBatch,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	hs := &http.Server{Handler: srv.Handler()}

	names := make([]string, 0, len(engines))
	for n, e := range engines {
		names = append(names, fmt.Sprintf("%s (%d docs)", n, e.NumDocs()))
	}
	// The bound-address line is machine-read by the smoke harness; keep
	// the prefix stable.
	fmt.Printf("inqueryd: listening on http://%s\n", ln.Addr())
	fmt.Printf("inqueryd: serving %s\n", strings.Join(names, ", "))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		fail(err)
	case <-ctx.Done():
	}
	stop()
	fmt.Println("inqueryd: draining")
	srv.SetDraining(true)
	shCtx, cancel := context.WithTimeout(context.Background(), *shutdownTO)
	defer cancel()
	if err := hs.Shutdown(shCtx); err != nil {
		fail(fmt.Errorf("shutdown: %w", err))
	}
	fmt.Println("inqueryd: stopped")
}

// openImage loads an inquery-index image and opens an engine over it,
// mirroring inquery-search's configuration (including the Table 2
// buffer plan derived from the stored dictionary when caching).
func openImage(path, name, backend string, cache, stem bool, chunk int,
	baseOpts func(*textproc.Analyzer) []core.Option) (*core.Engine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fs, err := vfs.LoadImage(f, vfs.Options{OSCacheBytes: 8 << 20})
	f.Close()
	if err != nil {
		return nil, err
	}
	kind, err := core.ParseBackendKind(backend)
	if err != nil {
		return nil, err
	}
	an := textproc.NewAnalyzer(textproc.WithStemming(stem))
	if !stem {
		an = textproc.NewAnalyzer(textproc.WithStemming(false), textproc.WithStopWords(nil))
	}
	opts := append(baseOpts(an), core.WithChunking(chunk))
	if kind == core.BackendMneme && cache {
		opts = append(opts, core.WithPlan(planFromDictionary(fs, name)))
	}
	return core.Open(fs, name, kind, opts...)
}

// buildSynthetic generates the named paper collection at the given
// scale, indexes it into an in-memory file system, and opens a Mneme
// engine with the collection's Table 2 buffer plan.
func buildSynthetic(name string, scale float64,
	baseOpts func(*textproc.Analyzer) []core.Option) (*core.Engine, error) {
	col, ok := collection.ByName(name, scale)
	if !ok {
		return nil, fmt.Errorf("unknown collection (want CACM, Legal, TIPSTER1, TIPSTER)")
	}
	an := textproc.NewAnalyzer(textproc.WithStemming(false), textproc.WithStopWords(nil))
	fs := vfs.New(vfs.Options{OSCacheBytes: 8 << 20})
	if _, err := core.Build(fs, col.Name, col.Stream(), core.BuildOptions{Analyzer: an}); err != nil {
		return nil, err
	}
	opts := append(baseOpts(an), core.WithPlan(planFromDictionary(fs, col.Name)))
	return core.Open(fs, col.Name, core.BackendMneme, opts...)
}

// planFromDictionary applies the paper's Table 2 heuristics to the
// stored dictionary: large = 3x the largest list, medium = 9% of large
// (at least 3 segments), small = 3 segments.
func planFromDictionary(fs *vfs.FS, name string) core.BufferPlan {
	eng, err := core.Open(fs, name, core.BackendMneme)
	if err != nil {
		return core.BufferPlan{SmallBytes: 3 * 4096, MediumBytes: 3 * 8192, LargeBytes: 1 << 20}
	}
	var max int64
	eng.Dictionary().Range(func(e *lexicon.Entry) bool {
		if int64(e.ListBytes) > max {
			max = int64(e.ListBytes)
		}
		return true
	})
	eng.Close()
	medium := 3 * max * 9 / 100
	if medium < 3*8192 {
		medium = 3 * 8192
	}
	return core.BufferPlan{SmallBytes: 3 * 4096, MediumBytes: medium, LargeBytes: 3 * max}
}
