// Command inqueryd is the long-running search server: one core.Engine
// (or sharded scatter-gather coordinator) per configured index behind
// the HTTP/JSON API in internal/serve.
//
// Usage:
//
//	inqueryd -index cacm=index.img -addr 127.0.0.1:7933
//	inqueryd -index index.img -name mycol -backend btree
//	inqueryd -synthetic CACM -scale 0.05            # self-built test index
//	inqueryd -synthetic CACM -shards 4 -quorum 'quorum(3)'
//	inqueryd -synthetic CACM -shards 4 -replicas 2         # replicated, failover routing
//	inqueryd -synthetic CACM -nrt                   # live ingest via POST /v1/ingest
//
// Indexes come from inquery-index images (-index, repeatable, as
// "name=path" or a bare path served under -name) or are built in
// memory from the paper's synthetic collections (-synthetic,
// repeatable) — the latter needs no image file and is what the smoke
// and serve-bench harnesses use. Images built with inquery-index
// -shards are self-describing (a .shards sidecar) and are served
// through the shard coordinator automatically; -shards here sharding
// only the synthetic builds. The -quorum policy decides whether a
// response missing shards is served as 200 "partial" (with a coverage
// block) or failed 503 with a quorum-lost error.
//
// With -nrt every index opens through the near-real-time write path
// instead of the read-only engine: any WAL left in the image is
// replayed into the searchable memtable, POST /v1/ingest appends
// documents that are searchable immediately, and the -nrt-flush-docs /
// -nrt-flush-every / -nrt-compact triggers govern background flushes
// and segment merges (visible in /snapshot under "nrt"). NRT serving
// is single-store: it cannot be combined with sharding.
//
// Endpoints: POST /v1/search (single or batch), POST /v1/ingest (-nrt
// indexes only; batch indexes answer 501), GET /v1/explain,
// GET /metrics, GET /snapshot, GET /healthz. Statuses follow the
// taxonomy documented in internal/serve: 200 ok/degraded/partial, 400
// parse, 404 unknown index, 429 shed, 503 breaker open, quorum lost,
// or draining, 504 deadline (partial ranking in the body).
//
// On SIGINT/SIGTERM the server marks /healthz draining, stops
// accepting connections, and waits up to -shutdown-timeout for
// in-flight requests before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/lexicon"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/textproc"
	"repro/internal/vfs"
	"time"
)

func main() {
	var images, synthetics []string
	addr := flag.String("addr", "127.0.0.1:7933", "listen address (use :0 for an ephemeral port; the bound address is printed)")
	flag.Func("index", "index image to serve, as name=path or a bare path (repeatable)", func(v string) error {
		images = append(images, v)
		return nil
	})
	flag.Func("synthetic", "synthetic paper collection to build in memory and serve (CACM, Legal, ...; repeatable)", func(v string) error {
		synthetics = append(synthetics, v)
		return nil
	})
	name := flag.String("name", "collection", "collection name inside bare -index images")
	backend := flag.String("backend", "mneme", "storage backend for -index images: mneme or btree")
	cache := flag.Bool("cache", true, "enable Mneme record caching (paper buffer plan)")
	stem := flag.Bool("stem", true, "apply Porter stemming to queries against -index images")
	chunk := flag.Int("chunk", 0, "chunk size the -index image was built with")
	scale := flag.Float64("scale", 0.05, "document-count scale of -synthetic collections")
	topK := flag.Int("k", serve.DefaultTopK, "default results per query when a request names no top_k")
	deadline := flag.Duration("deadline", 0, "default per-query deadline applied when a request names none (0 = none)")
	maxBatch := flag.Int("max-batch", serve.DefaultMaxBatch, "maximum requests in one batch body")
	resultCache := flag.Int("result-cache", 0, "query-result cache entries per engine; repeats of a normalized query are served without re-evaluation (0 = disabled)")
	blockCacheMB := flag.Int("block-cache-mb", 0, "decoded postings-block cache budget per engine, in MiB (0 = disabled)")
	degraded := flag.Bool("degraded", false, "serve partial rankings past corrupt records for every request (requests can also opt in per query)")
	prune := flag.Bool("prune", false, "MaxScore pruning for every DAAT request (requests can also opt in per query)")
	maxInflight := flag.Int("max-inflight", 0, "bound on concurrently admitted queries per index; excess queries wait -queue-wait then are shed with 429 (0 = unbounded)")
	queueWait := flag.Duration("queue-wait", 0, "how long an over-limit query may wait for admission before being shed")
	retries := flag.Int("retries", 1, "read attempts per storage fault-in")
	breaker := flag.Int("breaker", 0, "consecutive-failure threshold that opens a per-pool circuit breaker (0 = disabled)")
	nrt := flag.Bool("nrt", false, "open indexes through the near-real-time write path (WAL replay + searchable memtable) and accept POST /v1/ingest; incompatible with sharding")
	nrtFlushDocs := flag.Int("nrt-flush-docs", 1024, "flush the NRT memtable to an immutable segment after this many ingested documents (0 = explicit/interval flushes only)")
	nrtFlushEvery := flag.Duration("nrt-flush-every", 0, "background NRT flush-and-compact interval (0 = none)")
	nrtCompact := flag.Int("nrt-compact", 4, "merge NRT segments once this many have accumulated (0 = never)")
	shards := flag.Int("shards", 0, "document-partitioned shard count for -synthetic collections, each shard on its own store (0/1 = unsharded; -index images carry their own shard count)")
	replicas := flag.Int("replicas", 0, "replica count per shard for -synthetic collections, each replica on its own store with failover routing (0/1 = unreplicated; -index images carry their own replica count)")
	repairBPS := flag.Int64("repair-bps", 0, "rate limit, in bytes/sec, for online replica repair copies (0 = unpaced)")
	chaosKill := flag.Duration("chaos-kill-replica", 0, "crash-freeze replica 1 of every replicated -synthetic shard after this delay — a replica-kill drill for the bench harness (0 = never)")
	quorum := flag.String("quorum", "all", "sharded quorum policy: all, best-effort, or quorum(k)")
	hedgeAfter := flag.Duration("hedge-after", 0, "fixed sharded straggler delay before a hedged duplicate read (0 = derive from each shard's p95)")
	shutdownTO := flag.Duration("shutdown-timeout", 10*time.Second, "drain budget for in-flight requests on SIGINT/SIGTERM")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "inqueryd:", err)
		os.Exit(1)
	}
	if len(images) == 0 && len(synthetics) == 0 {
		fail(errors.New("nothing to serve: give at least one -index or -synthetic"))
	}
	policy, err := shard.ParsePolicy(*quorum)
	if err != nil {
		fail(err)
	}
	shardCfg := shard.Config{Policy: policy, HedgeAfter: *hedgeAfter, RetryAttempts: 2, RepairBytesPerSec: *repairBPS}
	var nrtCfg *core.NRTConfig
	if *nrt {
		if *shards > 1 {
			fail(errors.New("-nrt serves single-store indexes; drop -shards"))
		}
		if *replicas > 1 {
			fail(errors.New("-nrt serves single-store indexes; drop -replicas"))
		}
		nrtCfg = &core.NRTConfig{
			FlushDocs:       *nrtFlushDocs,
			FlushEvery:      *nrtFlushEvery,
			CompactSegments: *nrtCompact,
		}
	}

	engineOpts := func(an *textproc.Analyzer) []core.Option {
		opts := []core.Option{core.WithAnalyzer(an)}
		if *resultCache > 0 {
			opts = append(opts, core.WithResultCache(*resultCache))
		}
		if *blockCacheMB > 0 {
			opts = append(opts, core.WithBlockCache(*blockCacheMB))
		}
		if *degraded {
			opts = append(opts, core.WithDegraded())
		}
		if *prune {
			opts = append(opts, core.WithPruning())
		}
		if *maxInflight > 0 {
			opts = append(opts, core.WithMaxInFlight(*maxInflight, *queueWait))
		}
		if *retries > 1 {
			opts = append(opts, core.WithRetry(*retries))
		}
		if *breaker > 0 {
			opts = append(opts, core.WithBreaker(*breaker, 0))
		}
		return opts
	}

	indexes := make(map[string]serve.Index)
	var shardEngines []*core.Engine
	addIndex := func(n string, ix serve.Index) error {
		if _, dup := indexes[n]; dup {
			return fmt.Errorf("duplicate index name %q", n)
		}
		indexes[n] = ix
		return nil
	}
	defer func() {
		for _, ix := range indexes {
			switch e := ix.(type) {
			case *core.Engine:
				e.Close()
			case *core.NRTEngine:
				e.Close()
			case *shard.Index:
				// Waits for in-flight repairs; closes the engines too
				// when the index owns them (replicated open).
				e.Close()
			}
		}
		for _, e := range shardEngines {
			e.Close()
		}
	}()

	for _, spec := range images {
		n, path := *name, spec
		if i := strings.IndexByte(spec, '='); i >= 0 {
			n, path = spec[:i], spec[i+1:]
		}
		ix, engs, err := openImage(path, n, *backend, *cache, *stem, *chunk, shardCfg, nrtCfg, engineOpts)
		if err != nil {
			fail(fmt.Errorf("index %s: %w", spec, err))
		}
		shardEngines = append(shardEngines, engs...)
		if err := addIndex(n, ix); err != nil {
			fail(err)
		}
	}
	// Synthetic collections are generated pre-normalized, so their
	// engines analyze without stemming or stopping — same analyzer the
	// experiments use.
	var chaosTargets []*vfs.FS
	for _, n := range synthetics {
		ix, engs, targets, err := buildSynthetic(n, *scale, *shards, *replicas, shardCfg, nrtCfg, engineOpts)
		if err != nil {
			fail(fmt.Errorf("synthetic %s: %w", n, err))
		}
		shardEngines = append(shardEngines, engs...)
		chaosTargets = append(chaosTargets, targets...)
		if err := addIndex(n, ix); err != nil {
			fail(err)
		}
	}
	if *chaosKill > 0 {
		if len(chaosTargets) == 0 {
			fail(errors.New("-chaos-kill-replica needs a replicated -synthetic index (-replicas >= 2)"))
		}
		// The drill the replicated bench row uses: after the delay,
		// replica 1 of every shard starts failing every read and its
		// store freezes — the coordinator must absorb the loss with
		// zero failed queries while replica 0 survives.
		time.AfterFunc(*chaosKill, func() {
			for i, fs := range chaosTargets {
				fs.SetFaultPlan(vfs.NewFaultPlan(int64(9000 + i)).FailRead(1).WithCrash())
			}
			fmt.Printf("inqueryd: chaos drill: crash-froze %d replica store(s)\n", len(chaosTargets))
		})
	}

	srv := serve.NewIndexes(indexes, serve.Defaults{
		TopK:     *topK,
		Deadline: *deadline,
		MaxBatch: *maxBatch,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	hs := &http.Server{Handler: srv.Handler()}

	names := make([]string, 0, len(indexes))
	for n, ix := range indexes {
		if sx, ok := ix.(*shard.Index); ok {
			if sx.Replicas() > 1 {
				names = append(names, fmt.Sprintf("%s (%d docs, %d shards x%d replicas, %s)",
					n, sx.NumDocs(), sx.Shards(), sx.Replicas(), shardCfg.Policy))
			} else {
				names = append(names, fmt.Sprintf("%s (%d docs, %d shards, %s)",
					n, sx.NumDocs(), sx.Shards(), shardCfg.Policy))
			}
			continue
		}
		if ne, ok := ix.(*core.NRTEngine); ok {
			names = append(names, fmt.Sprintf("%s (%d docs, nrt)", n, ne.NumDocs()))
			continue
		}
		names = append(names, fmt.Sprintf("%s (%d docs)", n, ix.NumDocs()))
	}
	// The bound-address line is machine-read by the smoke harness; keep
	// the prefix stable.
	fmt.Printf("inqueryd: listening on http://%s\n", ln.Addr())
	fmt.Printf("inqueryd: serving %s\n", strings.Join(names, ", "))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		fail(err)
	case <-ctx.Done():
	}
	stop()
	fmt.Println("inqueryd: draining")
	srv.SetDraining(true)
	shCtx, cancel := context.WithTimeout(context.Background(), *shutdownTO)
	defer cancel()
	if err := hs.Shutdown(shCtx); err != nil {
		fail(fmt.Errorf("shutdown: %w", err))
	}
	fmt.Println("inqueryd: stopped")
}

// openImage loads an inquery-index image and opens an engine over it,
// mirroring inquery-search's configuration (including the Table 2
// buffer plan derived from the stored dictionary when caching). Images
// carrying a .shards sidecar open as a sharded coordinator; the
// returned engine slice holds the shard engines for shutdown. A
// non-nil nrtCfg opens the collection through the NRT write path
// instead — replaying any WAL the image carries — so the served index
// accepts /v1/ingest.
func openImage(path, name, backend string, cache, stem bool, chunk int, shardCfg shard.Config,
	nrtCfg *core.NRTConfig, baseOpts func(*textproc.Analyzer) []core.Option) (serve.Index, []*core.Engine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	fs, err := vfs.LoadImage(f, vfs.Options{OSCacheBytes: 8 << 20})
	f.Close()
	if err != nil {
		return nil, nil, err
	}
	kind, err := core.ParseBackendKind(backend)
	if err != nil {
		return nil, nil, err
	}
	an := textproc.NewAnalyzer(textproc.WithStemming(stem))
	if !stem {
		an = textproc.NewAnalyzer(textproc.WithStemming(false), textproc.WithStopWords(nil))
	}
	nShards, nReplicas, sharded, err := shard.DetectFull(fs, name)
	if err != nil {
		return nil, nil, err
	}
	planName := name
	if sharded {
		planName = shard.ShardName(name, 0)
	}
	opts := append(baseOpts(an), core.WithChunking(chunk))
	if kind == core.BackendMneme && cache {
		opts = append(opts, core.WithPlan(planFromDictionary(fs, planName)))
	}
	if !sharded {
		if nrtCfg != nil {
			eng, err := core.OpenNRT(fs, name, kind, *nrtCfg, opts...)
			return eng, nil, err
		}
		eng, err := core.Open(fs, name, kind, opts...)
		return eng, nil, err
	}
	if nrtCfg != nil {
		return nil, nil, fmt.Errorf("image is sharded (%d shards); -nrt serves single-store indexes", nShards)
	}
	if nReplicas > 1 {
		// Replicated image: manifest-verified open with failover
		// routing; the returned index owns (and closes) its engines.
		ix, err := shard.OpenReplicated([][]*vfs.FS{{fs}}, name, nShards, nReplicas, kind, shardCfg, opts...)
		return ix, nil, err
	}
	engines, err := shard.OpenEngines([]*vfs.FS{fs}, name, nShards, kind, opts...)
	if err != nil {
		return nil, nil, err
	}
	ix, err := shard.NewIndex(name, engines, shardCfg)
	return ix, engines, err
}

// buildSynthetic generates the named paper collection at the given
// scale, indexes it into an in-memory file system (or, with nShards >
// 1, round-robin into per-shard file systems behind a scatter-gather
// coordinator), and opens Mneme engines with the collection's Table 2
// buffer plan. A non-nil nrtCfg wraps the built collection as the NRT
// base segment so live documents can be ingested on top of it. With
// nReplicas > 1 every shard is cloned onto nReplicas per-replica file
// systems and served through the failover router; the third return
// value holds the replica-1 stores, the -chaos-kill-replica targets.
func buildSynthetic(name string, scale float64, nShards, nReplicas int, shardCfg shard.Config,
	nrtCfg *core.NRTConfig, baseOpts func(*textproc.Analyzer) []core.Option) (serve.Index, []*core.Engine, []*vfs.FS, error) {
	col, ok := collection.ByName(name, scale)
	if !ok {
		return nil, nil, nil, fmt.Errorf("unknown collection (want CACM, Legal, TIPSTER1, TIPSTER)")
	}
	an := textproc.NewAnalyzer(textproc.WithStemming(false), textproc.WithStopWords(nil))
	if nShards <= 1 && nReplicas <= 1 {
		fs := vfs.New(vfs.Options{OSCacheBytes: 8 << 20})
		if _, err := core.Build(fs, col.Name, col.Stream(), core.BuildOptions{Analyzer: an}); err != nil {
			return nil, nil, nil, err
		}
		opts := append(baseOpts(an), core.WithPlan(planFromDictionary(fs, col.Name)))
		if nrtCfg != nil {
			eng, err := core.OpenNRT(fs, col.Name, core.BackendMneme, *nrtCfg, opts...)
			return eng, nil, nil, err
		}
		eng, err := core.Open(fs, col.Name, core.BackendMneme, opts...)
		return eng, nil, nil, err
	}
	if nShards < 1 {
		nShards = 1
	}
	if nReplicas > 1 {
		// Per-replica file systems: every replica of every shard is its
		// own blast radius, so a fault plan (or the chaos drill) takes
		// out exactly one copy of one shard.
		fss := make([][]*vfs.FS, nShards)
		for i := range fss {
			fss[i] = make([]*vfs.FS, nReplicas)
			for r := range fss[i] {
				fss[i][r] = vfs.New(vfs.Options{OSCacheBytes: 8 << 20})
			}
		}
		if _, err := shard.BuildReplicated(fss, col.Name, nShards, nReplicas, col.Stream(), core.BuildOptions{Analyzer: an}); err != nil {
			return nil, nil, nil, err
		}
		opts := append(baseOpts(an),
			core.WithPlan(planFromDictionary(fss[0][0], shard.ShardName(col.Name, 0))))
		ix, err := shard.OpenReplicated(fss, col.Name, nShards, nReplicas, core.BackendMneme, shardCfg, opts...)
		if err != nil {
			return nil, nil, nil, err
		}
		targets := make([]*vfs.FS, nShards)
		for i := range targets {
			targets[i] = fss[i][1]
		}
		return ix, nil, targets, nil
	}
	// Per-shard file systems: each shard is its own blast radius.
	fss := make([]*vfs.FS, nShards)
	for i := range fss {
		fss[i] = vfs.New(vfs.Options{OSCacheBytes: 8 << 20})
	}
	if _, err := shard.Build(fss, col.Name, nShards, col.Stream(), core.BuildOptions{Analyzer: an}); err != nil {
		return nil, nil, nil, err
	}
	opts := append(baseOpts(an),
		core.WithPlan(planFromDictionary(fss[0], shard.ShardName(col.Name, 0))))
	engines, err := shard.OpenEngines(fss, col.Name, nShards, core.BackendMneme, opts...)
	if err != nil {
		return nil, nil, nil, err
	}
	ix, err := shard.NewIndex(col.Name, engines, shardCfg)
	return ix, engines, nil, err
}

// planFromDictionary applies the paper's Table 2 heuristics to the
// stored dictionary: large = 3x the largest list, medium = 9% of large
// (at least 3 segments), small = 3 segments.
func planFromDictionary(fs *vfs.FS, name string) core.BufferPlan {
	// Probe a clone: closing the probe engine appends a checkpoint to
	// the store, which would invalidate a replica's checksum manifest
	// before the real open verifies it.
	fs = fs.Clone(vfs.Options{})
	eng, err := core.Open(fs, name, core.BackendMneme)
	if err != nil {
		return core.BufferPlan{SmallBytes: 3 * 4096, MediumBytes: 3 * 8192, LargeBytes: 1 << 20}
	}
	var max int64
	eng.Dictionary().Range(func(e *lexicon.Entry) bool {
		if int64(e.ListBytes) > max {
			max = int64(e.ListBytes)
		}
		return true
	})
	eng.Close()
	medium := 3 * max * 9 / 100
	if medium < 3*8192 {
		medium = 3 * 8192
	}
	return core.BufferPlan{SmallBytes: 3 * 4096, MediumBytes: medium, LargeBytes: 3 * max}
}
