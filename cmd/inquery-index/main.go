// Command inquery-index builds an inverted-file index — under both
// storage managers — from a document file or a synthetic collection,
// and saves the resulting simulated file system as an image for
// inquery-search and mnemectl.
//
// Usage:
//
//	inquery-index -out index.img -name mycol -docs corpus.txt [-stem=false]
//	inquery-index -out index.img -name Legal -synthetic Legal -scale 0.5
//	inquery-index -out index.img -name cacm -synthetic CACM -shards 4
//
// A document file holds one document per line; line N becomes document
// id N (0-based). With -shards N the document stream is split
// round-robin into N document-partitioned shard collections inside the
// same image, plus a sidecar marking the shard count — inqueryd
// detects the sidecar and serves the image through the scatter-gather
// coordinator.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/shard"
	"repro/internal/textproc"
	"repro/internal/vfs"
)

// fileDocs streams documents from a one-per-line text file.
type fileDocs struct {
	sc   *bufio.Scanner
	next uint32
}

func (f *fileDocs) Next() (index.Doc, bool, error) {
	if !f.sc.Scan() {
		return index.Doc{}, false, f.sc.Err()
	}
	d := index.Doc{ID: f.next, Text: f.sc.Text()}
	f.next++
	return d, true, nil
}

func main() {
	out := flag.String("out", "index.img", "output image path")
	name := flag.String("name", "collection", "collection name inside the image")
	docsPath := flag.String("docs", "", "document file, one document per line")
	synthetic := flag.String("synthetic", "", "build a synthetic paper collection instead (CACM, Legal, TIPSTER1, TIPSTER)")
	scale := flag.Float64("scale", 1.0, "synthetic collection scale")
	stem := flag.Bool("stem", true, "apply Porter stemming (document files only)")
	chunk := flag.Int("chunk", 0, "store large inverted lists as linked chunks of this many bytes (0 = whole objects)")
	shards := flag.Int("shards", 0, "split the collection round-robin into this many document-partitioned shards (0/1 = unsharded)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "inquery-index:", err)
		os.Exit(1)
	}

	fs := vfs.New(vfs.Options{BlockSize: vfs.DefaultBlockSize})
	var src core.DocSource
	var an *textproc.Analyzer

	switch {
	case *synthetic != "":
		col, ok := collection.ByName(*synthetic, *scale)
		if !ok {
			fail(fmt.Errorf("unknown synthetic collection %q", *synthetic))
		}
		*name = col.Name
		src = col.Stream()
		an = textproc.NewAnalyzer(textproc.WithStemming(false), textproc.WithStopWords(nil))
	case *docsPath != "":
		f, err := os.Open(*docsPath)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 1<<20), 1<<24)
		src = &fileDocs{sc: sc}
		an = textproc.NewAnalyzer(textproc.WithStemming(*stem))
	default:
		fail(fmt.Errorf("need -docs or -synthetic"))
	}

	opt := core.BuildOptions{Analyzer: an, ChunkLargeLists: *chunk}
	var stats *core.BuildStats
	if *shards > 1 {
		// Sharded: N parallel builds into the same image, one shard
		// collection each, plus the shard-count sidecar. The printed
		// totals sum the per-shard builds.
		perShard, err := shard.Build([]*vfs.FS{fs}, *name, *shards, src, opt)
		if err != nil {
			fail(err)
		}
		stats = &core.BuildStats{}
		for _, st := range perShard {
			stats.Docs += st.Docs
			stats.TotalToks += st.TotalToks
			stats.Terms += st.Terms
			stats.Records += st.Records
			stats.ListBytes += st.ListBytes
			stats.BTreeBytes += st.BTreeBytes
			stats.MnemeBytes += st.MnemeBytes
		}
	} else {
		var err error
		stats, err = core.Build(fs, *name, src, opt)
		if err != nil {
			fail(err)
		}
	}
	of, err := os.Create(*out)
	if err != nil {
		fail(err)
	}
	defer of.Close()
	if err := fs.DumpImage(of); err != nil {
		fail(err)
	}
	fmt.Printf("indexed %q: %d docs, %d tokens, %d terms, %d records\n",
		*name, stats.Docs, stats.TotalToks, stats.Terms, stats.Records)
	fmt.Printf("  inverted lists: %d KB encoded\n", stats.ListBytes/1024)
	fmt.Printf("  B-tree file:    %d KB\n", stats.BTreeBytes/1024)
	fmt.Printf("  Mneme file:     %d KB\n", stats.MnemeBytes/1024)
	if *shards > 1 {
		fmt.Printf("  shards:         %d\n", *shards)
	}
	fmt.Printf("  image:          %s\n", *out)
}
