// Command inquery-index builds an inverted-file index — under both
// storage managers — from a document file or a synthetic collection,
// and saves the resulting simulated file system as an image for
// inquery-search and mnemectl.
//
// Usage:
//
//	inquery-index -out index.img -name mycol -docs corpus.txt [-stem=false]
//	inquery-index -out index.img -name Legal -synthetic Legal -scale 0.5
//	inquery-index -out index.img -name cacm -synthetic CACM -shards 4
//	inquery-index -out live.img -name mycol -docs corpus.txt -nrt
//	inquery-index -out quiesced.img -in live.img -name mycol -nrt
//
// A document file holds one document per line; line N becomes document
// id N (0-based). With -shards N the document stream is split
// round-robin into N document-partitioned shard collections inside the
// same image, plus a sidecar marking the shard count — inqueryd
// detects the sidecar and serves the image through the scatter-gather
// coordinator.
//
// With -nrt the batch build becomes the base segment of a near-real-
// time collection: a manifest and an empty write-ahead log are
// initialized inside the image so inqueryd -nrt can ingest live
// documents on top of it. Combining -nrt with -in skips building and
// instead replays an existing NRT image's WAL into the searchable
// memtable, flushes and compacts it to immutable segments, and writes
// the quiesced image to -out. NRT collections are unsharded.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/postings"
	"repro/internal/shard"
	"repro/internal/textproc"
	"repro/internal/vfs"
)

// fileDocs streams documents from a one-per-line text file.
type fileDocs struct {
	sc   *bufio.Scanner
	next uint32
}

func (f *fileDocs) Next() (index.Doc, bool, error) {
	if !f.sc.Scan() {
		return index.Doc{}, false, f.sc.Err()
	}
	d := index.Doc{ID: f.next, Text: f.sc.Text()}
	f.next++
	return d, true, nil
}

func main() {
	out := flag.String("out", "index.img", "output image path")
	name := flag.String("name", "collection", "collection name inside the image")
	docsPath := flag.String("docs", "", "document file, one document per line")
	synthetic := flag.String("synthetic", "", "build a synthetic paper collection instead (CACM, Legal, TIPSTER1, TIPSTER)")
	scale := flag.Float64("scale", 1.0, "synthetic collection scale")
	stem := flag.Bool("stem", true, "apply Porter stemming (document files only)")
	chunk := flag.Int("chunk", 0, "store large inverted lists as linked chunks of this many bytes (0 = whole objects)")
	shards := flag.Int("shards", 0, "split the collection round-robin into this many document-partitioned shards (0/1 = unsharded)")
	replicas := flag.Int("replicas", 0, "store this many byte-identical replicas of every shard, each with a checksum manifest (0/1 = unreplicated; implies -shards 1 if unset)")
	nrt := flag.Bool("nrt", false, "initialize the image as a near-real-time collection (manifest + WAL over the batch build); with -in, replay and quiesce an existing NRT image instead")
	in := flag.String("in", "", "existing NRT image to replay and quiesce (requires -nrt; skips building)")
	backend := flag.String("backend", "mneme", "storage backend for NRT segment flushes: mneme or btree")
	codecName := flag.String("codec", "auto", "posting record encoding policy: auto (adaptive, bitmap for dense lists), v1 (sequential streams), or v2 (blocks, no bitmap)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "inquery-index:", err)
		os.Exit(1)
	}
	codec, err := postings.ParseCodec(*codecName)
	if err != nil {
		fail(err)
	}
	if *nrt && *shards > 1 {
		fail(fmt.Errorf("NRT collections are unsharded; drop -shards"))
	}
	if *nrt && *replicas > 1 {
		fail(fmt.Errorf("NRT collections are unreplicated; drop -replicas"))
	}
	if *replicas > 1 && *shards < 1 {
		*shards = 1 // replication without sharding: one replicated shard
	}
	if *in != "" {
		if !*nrt {
			fail(fmt.Errorf("-in is only meaningful with -nrt (WAL replay mode)"))
		}
		if err := replayImage(*in, *out, *name, *backend, *stem); err != nil {
			fail(err)
		}
		return
	}

	fs := vfs.New(vfs.Options{BlockSize: vfs.DefaultBlockSize})
	var src core.DocSource
	var an *textproc.Analyzer

	switch {
	case *synthetic != "":
		col, ok := collection.ByName(*synthetic, *scale)
		if !ok {
			fail(fmt.Errorf("unknown synthetic collection %q", *synthetic))
		}
		*name = col.Name
		src = col.Stream()
		an = textproc.NewAnalyzer(textproc.WithStemming(false), textproc.WithStopWords(nil))
	case *docsPath != "":
		f, err := os.Open(*docsPath)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 1<<20), 1<<24)
		src = &fileDocs{sc: sc}
		an = textproc.NewAnalyzer(textproc.WithStemming(*stem))
	default:
		fail(fmt.Errorf("need -docs or -synthetic"))
	}

	opt := core.BuildOptions{Analyzer: an, ChunkLargeLists: *chunk, Codec: codec}
	var stats *core.BuildStats
	if *shards > 1 || *replicas > 1 {
		// Sharded: N parallel builds into the same image, one shard
		// collection each, plus the shard-count sidecar. The printed
		// totals sum the per-shard builds. With -replicas R each shard
		// is cloned R-1 times through the checksummed copy path so
		// every replica is byte-identical and manifest-verified.
		var perShard []*core.BuildStats
		var err error
		if *replicas > 1 {
			perShard, err = shard.BuildReplicated([][]*vfs.FS{{fs}}, *name, *shards, *replicas, src, opt)
		} else {
			perShard, err = shard.Build([]*vfs.FS{fs}, *name, *shards, src, opt)
		}
		if err != nil {
			fail(err)
		}
		stats = &core.BuildStats{}
		for _, st := range perShard {
			stats.Docs += st.Docs
			stats.TotalToks += st.TotalToks
			stats.Terms += st.Terms
			stats.Records += st.Records
			stats.ListBytes += st.ListBytes
			stats.BTreeBytes += st.BTreeBytes
			stats.MnemeBytes += st.MnemeBytes
		}
	} else {
		var err error
		stats, err = core.Build(fs, *name, src, opt)
		if err != nil {
			fail(err)
		}
	}
	if *nrt {
		kind, err := core.ParseBackendKind(*backend)
		if err != nil {
			fail(err)
		}
		ne, err := core.OpenNRT(fs, *name, kind, core.NRTConfig{}, core.WithAnalyzer(an))
		if err != nil {
			fail(fmt.Errorf("nrt init: %w", err))
		}
		if err := ne.Close(); err != nil {
			fail(err)
		}
	}
	of, err := os.Create(*out)
	if err != nil {
		fail(err)
	}
	defer of.Close()
	if err := fs.DumpImage(of); err != nil {
		fail(err)
	}
	fmt.Printf("indexed %q: %d docs, %d tokens, %d terms, %d records\n",
		*name, stats.Docs, stats.TotalToks, stats.Terms, stats.Records)
	fmt.Printf("  inverted lists: %d KB encoded\n", stats.ListBytes/1024)
	fmt.Printf("  B-tree file:    %d KB\n", stats.BTreeBytes/1024)
	fmt.Printf("  Mneme file:     %d KB\n", stats.MnemeBytes/1024)
	if *shards > 1 {
		fmt.Printf("  shards:         %d\n", *shards)
	}
	if *replicas > 1 {
		fmt.Printf("  replicas:       %d (checksum-manifested, byte-identical)\n", *replicas)
	}
	if *nrt {
		fmt.Printf("  nrt:            manifest + WAL initialized (serve with inqueryd -nrt)\n")
	}
	fmt.Printf("  image:          %s\n", *out)
}

// replayImage opens the NRT collection inside an existing image —
// replaying its write-ahead log into the searchable memtable — then
// flushes and compacts so every acknowledged document sits in an
// immutable segment, and writes the quiesced image to out.
func replayImage(in, out, name, backend string, stem bool) error {
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	fs, err := vfs.LoadImage(f, vfs.Options{})
	f.Close()
	if err != nil {
		return err
	}
	kind, err := core.ParseBackendKind(backend)
	if err != nil {
		return err
	}
	an := textproc.NewAnalyzer(textproc.WithStemming(stem))
	if !stem {
		an = textproc.NewAnalyzer(textproc.WithStemming(false), textproc.WithStopWords(nil))
	}
	ne, err := core.OpenNRT(fs, name, kind, core.NRTConfig{}, core.WithAnalyzer(an))
	if err != nil {
		return err
	}
	pre := ne.Snapshot().NRT
	if err := ne.Flush(); err != nil {
		ne.Close()
		return fmt.Errorf("flush: %w", err)
	}
	if err := ne.Compact(); err != nil {
		ne.Close()
		return fmt.Errorf("compact: %w", err)
	}
	post := ne.Snapshot().NRT
	docs := ne.NumDocs()
	if err := ne.Close(); err != nil {
		return err
	}
	of, err := os.Create(out)
	if err != nil {
		return err
	}
	defer of.Close()
	if err := fs.DumpImage(of); err != nil {
		return err
	}
	fmt.Printf("replayed %q: %d WAL entries (%d memtable docs)\n",
		name, pre.WalEntries, pre.MemDocs)
	fmt.Printf("  quiesced:       %d docs, %d segment(s), generation %d\n",
		docs, len(post.Segments), post.Gen)
	fmt.Printf("  image:          %s\n", out)
	return nil
}
