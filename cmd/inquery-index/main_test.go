package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/textproc"
	"repro/internal/vfs"
)

// TestNRTBuildAndReplay drives the real binary through the NRT image
// lifecycle: build a corpus image with -nrt (base segment + manifest +
// empty WAL), ingest live documents into it through the core API so
// the image carries a WAL tail, replay-and-quiesce that image with
// -nrt -in, and verify the quiesced image holds every document in
// immutable segments with an empty WAL.
func TestNRTBuildAndReplay(t *testing.T) {
	dir := t.TempDir()
	bin := filepath.Join(dir, "inquery-index")
	if out, err := exec.Command("go", "build", "-o", bin, "repro/cmd/inquery-index").CombinedOutput(); err != nil {
		t.Fatalf("build binary: %v\n%s", err, out)
	}
	run := func(args ...string) string {
		t.Helper()
		out, err := exec.Command(bin, args...).CombinedOutput()
		if err != nil {
			t.Fatalf("inquery-index %v: %v\n%s", args, err, out)
		}
		return string(out)
	}

	corpus := filepath.Join(dir, "docs.txt")
	if err := os.WriteFile(corpus, []byte("alpha beta gamma\nbeta delta\ngamma epsilon alpha\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	an := textproc.NewAnalyzer(textproc.WithStemming(false), textproc.WithStopWords(nil))

	liveImg := filepath.Join(dir, "live.img")
	out := run("-out", liveImg, "-name", "col", "-docs", corpus, "-stem=false", "-nrt")
	if !strings.Contains(out, "nrt:") || !strings.Contains(out, "3 docs") {
		t.Fatalf("build output lacks nrt init line or doc count:\n%s", out)
	}

	// Ingest through the core API, leaving an unflushed WAL tail in the
	// image — exactly the state a crashed or hard-stopped server leaves.
	f, err := os.Open(liveImg)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := vfs.LoadImage(f, vfs.Options{})
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	ne, err := core.OpenNRT(fs, "col", core.BackendMneme, core.NRTConfig{}, core.WithAnalyzer(an))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ne.Ingest("zeta tail document", "eta tail too"); err != nil {
		t.Fatal(err)
	}
	if err := ne.Close(); err != nil {
		t.Fatal(err)
	}
	tailImg := filepath.Join(dir, "tail.img")
	tf, err := os.Create(tailImg)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.DumpImage(tf); err != nil {
		t.Fatal(err)
	}
	tf.Close()

	quiesced := filepath.Join(dir, "quiesced.img")
	out = run("-out", quiesced, "-in", tailImg, "-name", "col", "-stem=false", "-nrt")
	if !strings.Contains(out, "replayed") || !strings.Contains(out, "2 WAL entries") ||
		!strings.Contains(out, "5 docs") {
		t.Fatalf("replay output:\n%s", out)
	}

	// The quiesced image must reopen with nothing left in the memtable
	// or WAL, and the tail documents must be searchable from segments.
	qf, err := os.Open(quiesced)
	if err != nil {
		t.Fatal(err)
	}
	qfs, err := vfs.LoadImage(qf, vfs.Options{})
	qf.Close()
	if err != nil {
		t.Fatal(err)
	}
	qe, err := core.OpenNRT(qfs, "col", core.BackendMneme, core.NRTConfig{}, core.WithAnalyzer(an))
	if err != nil {
		t.Fatal(err)
	}
	defer qe.Close()
	if n := qe.NumDocs(); n != 5 {
		t.Fatalf("quiesced NumDocs = %d, want 5", n)
	}
	snap := qe.Snapshot()
	if snap.NRT == nil || snap.NRT.WalEntries != 0 || snap.NRT.MemDocs != 0 {
		t.Fatalf("quiesced NRT state = %+v, want empty WAL and memtable", snap.NRT)
	}
	resp, err := qe.Run(nil, core.Request{Query: "tail", TopK: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("quiesced search for ingested term: %d results, want 2", len(resp.Results))
	}
}
