// Command mnemectl inspects a Mneme persistent object store inside an
// index image: pool statistics, object size distribution, and a full
// readability check.
//
// Usage:
//
//	mnemectl -index index.img -store mycol.mn stats
//	mnemectl -index index.img -store mycol.mn histogram
//	mnemectl -index index.img -store mycol.mn verify
//	mnemectl -index index.img -store mycol.mn fsck
//	mnemectl -index index.img -store mycol.mn scrub
//	mnemectl -index index.img -store mycol.mn snapshot
//	mnemectl -index index.img -store mycol.mn -out compact.img copy
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/mneme"
	"repro/internal/vfs"
)

func main() {
	imgPath := flag.String("index", "index.img", "index image path")
	storeName := flag.String("store", "", "store file name inside the image (e.g. mycol.mn)")
	outPath := flag.String("out", "compact.img", "output image for the copy command")
	scrubBatch := flag.Int("scrub-batch", 0, "segments verified per lock acquisition in the scrub command (0 = default)")
	scrubPause := flag.Duration("scrub-pause", 0, "pause between scrub batches (rate limit; 0 = none)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "mnemectl:", err)
		os.Exit(1)
	}
	cmd := "stats"
	if flag.NArg() > 0 {
		cmd = flag.Arg(0)
	}
	f, err := os.Open(*imgPath)
	if err != nil {
		fail(err)
	}
	fs, err := vfs.LoadImage(f, vfs.Options{OSCacheBytes: 8 << 20})
	f.Close()
	if err != nil {
		fail(err)
	}
	if *storeName == "" {
		// Default to the single .mn file in the image, if unambiguous.
		for _, n := range fs.Names() {
			if len(n) > 3 && n[len(n)-3:] == ".mn" {
				if *storeName != "" {
					fail(fmt.Errorf("multiple stores in image; pick one with -store"))
				}
				*storeName = n
			}
		}
		if *storeName == "" {
			fail(fmt.Errorf("no .mn store in image"))
		}
	}
	st, err := mneme.Open(fs, *storeName)
	if err != nil {
		fail(err)
	}
	defer st.Close()

	switch cmd {
	case "stats":
		fmt.Printf("store %s: %d KB allocated\n", *storeName, st.SizeBytes()/1024)
		fmt.Printf("%-8s %-7s %8s %8s %8s %10s %10s\n",
			"pool", "kind", "objects", "logsegs", "physegs", "live KB", "alloc KB")
		for _, ps := range st.PoolStats() {
			fmt.Printf("%-8s %-7s %8d %8d %8d %10d %10d\n",
				ps.Name, ps.Kind, ps.Objects, ps.LogicalSegs, ps.PhysicalSegs,
				ps.LiveBytes/1024, ps.SegmentBytes/1024)
		}
	case "histogram":
		// Object size histogram in powers of two.
		buckets := map[int]int{}
		maxBucket := 0
		st.ForEach(func(id mneme.ObjectID, size int) bool {
			b := 0
			for s := size; s > 1; s >>= 1 {
				b++
			}
			buckets[b]++
			if b > maxBucket {
				maxBucket = b
			}
			return true
		})
		fmt.Printf("object size histogram (bucket = power of two):\n")
		for b := 0; b <= maxBucket; b++ {
			if buckets[b] == 0 {
				continue
			}
			fmt.Printf("  <= %8d bytes: %7d objects\n", 1<<uint(b), buckets[b])
		}
	case "verify":
		n, bytes := 0, int64(0)
		bad := 0
		st.ForEach(func(id mneme.ObjectID, size int) bool {
			data, err := st.Get(id)
			if err != nil || len(data) != size {
				bad++
				fmt.Fprintf(os.Stderr, "  object %#x: %v (size %d vs %d)\n", uint32(id), err, len(data), size)
				return true
			}
			n++
			bytes += int64(size)
			return true
		})
		fmt.Printf("verified %d objects, %d KB", n, bytes/1024)
		if bad > 0 {
			fmt.Printf(", %d BAD", bad)
		}
		fmt.Println()
		if bad > 0 {
			os.Exit(1)
		}
	case "fsck":
		// Checksum walk of the durable image: header, aux tables, and
		// every persisted segment, read raw from the file (buffered
		// copies are not consulted). Exits 1 on any corruption.
		rep, err := st.Fsck()
		if err != nil {
			fail(err)
		}
		fmt.Printf("fsck %s: %d segments, %d KB checksummed\n",
			*storeName, rep.Segments, rep.Bytes/1024)
		for _, issue := range rep.Issues {
			fmt.Fprintln(os.Stderr, " ", issue.String())
		}
		if !rep.Clean() {
			fmt.Printf("%d issue(s) found\n", len(rep.Issues))
			os.Exit(1)
		}
		fmt.Println("clean")
	case "scrub":
		// Online background verification: like fsck, but in rate-limited
		// batches that release the store lock between acquisitions, so a
		// live store keeps serving queries. Corrupt segments that are
		// still current at the end of the pass are reported as
		// quarantine candidates. Exits 1 when any candidate is found.
		start := time.Now()
		rep, err := st.Scrub(mneme.ScrubOptions{
			BatchSegments: *scrubBatch,
			Pause:         *scrubPause,
		})
		if err != nil {
			fail(err)
		}
		fmt.Printf("scrub %s: %d segments, %d KB checksummed in %v\n",
			*storeName, rep.Segments, rep.Bytes/1024, time.Since(start).Round(time.Millisecond))
		for _, issue := range rep.Candidates {
			fmt.Fprintln(os.Stderr, "  quarantine candidate:", issue.String())
		}
		if !rep.Clean() {
			pools := make([]string, 0, len(rep.PerPool))
			for p := range rep.PerPool {
				pools = append(pools, p)
			}
			sort.Strings(pools)
			for _, p := range pools {
				fmt.Printf("  pool %-8s %d candidate(s)\n", p, rep.PerPool[p])
			}
			fmt.Printf("%d quarantine candidate(s)\n", len(rep.Candidates))
			os.Exit(1)
		}
		fmt.Println("clean")
	case "snapshot":
		// The unified engine snapshot: open the collection the store
		// belongs to and print the stable JSON encoding.
		col := strings.TrimSuffix(*storeName, ".mn")
		eng, err := core.Open(fs, col, core.BackendMneme)
		if err != nil {
			fail(err)
		}
		defer eng.Close()
		out, err := eng.Snapshot().JSON()
		if err != nil {
			fail(err)
		}
		fmt.Println(string(out))
	case "copy":
		// Reorganize: copy live objects to a fresh store (reclaiming all
		// abandoned file space) and write a new image containing it.
		before := st.SizeBytes()
		dst, err := st.CopyTo(*storeName + ".compact")
		if err != nil {
			fail(err)
		}
		if err := dst.Close(); err != nil {
			fail(err)
		}
		out, err := os.Create(*outPath)
		if err != nil {
			fail(err)
		}
		defer out.Close()
		if err := fs.DumpImage(out); err != nil {
			fail(err)
		}
		f2, _ := fs.Open(*storeName + ".compact")
		fmt.Printf("copied %s: %d KB -> %d KB (image %s, store %s.compact)\n",
			*storeName, before/1024, f2.Size()/1024, *outPath, *storeName)
	default:
		fail(fmt.Errorf("unknown command %q (stats, histogram, verify, fsck, scrub, snapshot, copy)", cmd))
	}
}
