// Command loadgen drives a running inqueryd and reports what it
// delivered: achieved QPS, latency percentiles, status breakdown, and
// shed rate.
//
// Usage:
//
//	loadgen -target http://127.0.0.1:7933 -collection CACM -duration 5s
//	loadgen -mode open -qps 200 -c 64 -duration 10s -out BENCH_serve.json
//	loadgen -out BENCH_serve.json -baseline testdata/serve_baseline.json -tol 1.0
//
// The query mix is drawn from the paper's synthetic generator
// (-collection/-queryset/-scale — use the same values the server's
// -synthetic index was built with) or from a -queries file, and is
// sampled Zipf-skewed (-zipf) so a hot head dominates, as the paper's
// buffer-locality argument assumes. -mode closed runs a fixed worker
// pool (capacity); -mode open runs Poisson arrivals at -qps (overload
// behaviour).
//
// With -out, the run is written as a bench report (schema
// repro/bench_serve/v1) whose row carries the wall-clock percentiles
// as an "http" stage plus a serve block (QPS, shed rate, errors). With
// -baseline, the report is gated by experiments.CompareBench: p95 may
// not regress past -tol, QPS may not drop below baseline*(1-tol), shed
// rate may not rise past baseline+tol, and transport errors fail
// outright. With -kill-gate LABEL, the run is additionally gated by
// experiments.CheckReplicaKill against the named healthy row in the
// merged -out report: zero transport errors and QPS >= -kill-ratio
// times the healthy row's — the availability claim for a boot measured
// with a replica dead. Exit codes: 0 ok, 1 setup/transport failure, 2
// gate failure.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/loadgen"
)

func main() {
	target := flag.String("target", "http://127.0.0.1:7933", "inqueryd base URL")
	index := flag.String("index", "", "index name to query (empty = server default)")
	mode := flag.String("mode", "closed", "load discipline: closed (worker pool) or open (Poisson arrivals at -qps)")
	conc := flag.Int("c", 8, "closed-loop workers / open-loop cap on outstanding requests")
	qps := flag.Float64("qps", 0, "open-loop target arrival rate (requests/second)")
	duration := flag.Duration("duration", 5*time.Second, "run length (0 = until -n requests)")
	requests := flag.Int("n", 0, "request budget (0 = until -duration)")
	colName := flag.String("collection", "CACM", "synthetic collection supplying the query mix")
	scale := flag.Float64("scale", 0.05, "collection scale (match the server's -scale)")
	qsIndex := flag.Int("queryset", 0, "query set index within the collection")
	queryFile := flag.String("queries", "", "file of queries, one per line (overrides -collection)")
	zipfS := flag.Float64("zipf", 1.2, "Zipf exponent of query popularity over the pool (>1)")
	seed := flag.Int64("seed", 1, "sampling seed")
	topK := flag.Int("k", 0, "top_k per request (0 = server default, -1 = full ranking)")
	daat := flag.Bool("daat", false, "request document-at-a-time evaluation")
	prune := flag.Bool("prune", false, "request MaxScore pruning (with -daat)")
	deadline := flag.Duration("deadline", 0, "per-request deadline field (0 = server default)")
	wait := flag.Duration("wait", 10*time.Second, "how long to poll /healthz for readiness before starting")
	label := flag.String("label", "serve", "bench-row backend label (distinguishes configurations, e.g. sharded boots, within one report)")
	appendOut := flag.Bool("append", false, "merge the row into an existing -out report instead of overwriting it")
	out := flag.String("out", "", "write the run as a bench report (BENCH_serve.json)")
	baseline := flag.String("baseline", "", "gate the run against this baseline bench report")
	tol := flag.Float64("tol", 1.0, "gate tolerance (fraction; wall-clock serving numbers are noisy, keep it loose)")
	killGate := flag.String("kill-gate", "", "replica-kill gate: label of the healthy row (in the merged -out report) this run must hold against — zero errors, QPS >= -kill-ratio x healthy")
	killRatio := flag.Float64("kill-ratio", 0.9, "minimum fraction of the healthy row's QPS a replica-killed run must keep")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}

	queries, querySet, err := queryPool(*queryFile, *colName, *scale, *qsIndex)
	if err != nil {
		fail(err)
	}

	if *wait > 0 {
		if err := loadgen.WaitReady(*target, *wait); err != nil {
			fail(err)
		}
	}

	m := core.ModeTAAT
	if *daat {
		m = core.ModeDAAT
	}
	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		Target:      *target,
		Index:       *index,
		Queries:     queries,
		ZipfS:       *zipfS,
		Seed:        *seed,
		Discipline:  loadgen.Discipline(*mode),
		Concurrency: *conc,
		QPS:         *qps,
		Duration:    *duration,
		Requests:    *requests,
		TopK:        *topK,
		Mode:        m,
		Deadline:    *deadline,
		Prune:       *prune,
	})
	if err != nil {
		fail(err)
	}
	printReport(rep)

	if *out == "" && *baseline == "" && *killGate == "" {
		return
	}
	report := &experiments.BenchReport{
		Schema: experiments.ServeBenchSchema,
		Scale:  *scale,
		Rows:   []experiments.BenchRow{rep.BenchRow(*label, *colName, querySet)},
	}
	if *out != "" {
		if *appendOut {
			if prevData, err := os.ReadFile(*out); err == nil {
				var prev experiments.BenchReport
				if err := json.Unmarshal(prevData, &prev); err != nil {
					fail(fmt.Errorf("cannot append to %s: %w", *out, err))
				}
				// Rows with the same identity (backend/collection/set)
				// are replaced by the fresh run; everything else rides
				// along, so one report accumulates a multi-boot matrix.
				merged := prev.Rows[:0]
				for _, r := range prev.Rows {
					if r.Backend == *label && r.Collection == *colName && r.QuerySet == querySet {
						continue
					}
					merged = append(merged, r)
				}
				report.Rows = append(merged, report.Rows...)
			}
		}
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if *baseline != "" {
		data, err := os.ReadFile(*baseline)
		if err != nil {
			fail(err)
		}
		var base experiments.BenchReport
		if err := json.Unmarshal(data, &base); err != nil {
			fail(fmt.Errorf("baseline %s: %w", *baseline, err))
		}
		if err := experiments.CompareBench(&base, report, *tol); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen: GATE FAILED")
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("gate ok against %s (tol %.0f%%)\n", *baseline, *tol*100)
	}
	if *killGate != "" {
		if err := experiments.CheckReplicaKill(report, *killGate, *label, *killRatio); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen: GATE FAILED")
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("replica-kill gate ok: %s held >= %.0f%% of %s with zero errors\n",
			*label, *killRatio*100, *killGate)
	}
}

// queryPool assembles the query mix: a file of queries, or the named
// synthetic collection's generated query set. Returns the pool and a
// label for the bench row's query_set column.
func queryPool(file, colName string, scale float64, qsIndex int) ([]string, string, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		var queries []string
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			if q := strings.TrimSpace(sc.Text()); q != "" {
				queries = append(queries, q)
			}
		}
		if err := sc.Err(); err != nil {
			return nil, "", err
		}
		if len(queries) == 0 {
			return nil, "", fmt.Errorf("no queries in %s", file)
		}
		return queries, "file:" + file, nil
	}
	col, ok := collection.ByName(colName, scale)
	if !ok {
		return nil, "", fmt.Errorf("unknown collection %q", colName)
	}
	if qsIndex < 0 || qsIndex >= len(col.QuerySets) {
		return nil, "", fmt.Errorf("%s has no query set %d (has %d)", colName, qsIndex, len(col.QuerySets))
	}
	qs := col.QuerySets[qsIndex]
	gen := col.GenQueries(qs)
	queries := make([]string, len(gen))
	for i, q := range gen {
		queries[i] = q.Text
	}
	return queries, qs.Name, nil
}

// printReport renders the human-readable run summary.
func printReport(r *loadgen.Report) {
	fmt.Printf("%s loop: %d requests in %.2fs = %.1f qps\n",
		r.Discipline, r.Requests, r.Seconds, r.QPS)
	fmt.Printf("latency ms: p50 %.2f  p95 %.2f  p99 %.2f  max %.2f\n",
		r.P50ms, r.P95ms, r.P99ms, r.MaxMs)
	codes := make([]int, 0, len(r.Status))
	for c := range r.Status {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	parts := make([]string, 0, len(codes))
	for _, c := range codes {
		parts = append(parts, fmt.Sprintf("%d:%d", c, r.Status[c]))
	}
	fmt.Printf("status: %s  shed rate %.3f", strings.Join(parts, " "), r.ShedRate)
	if r.ClientShed > 0 {
		fmt.Printf("  client-shed %d", r.ClientShed)
	}
	if r.RetriedAfterShed > 0 {
		fmt.Printf("  retried-after-shed %d", r.RetriedAfterShed)
	}
	if r.Errors > 0 {
		fmt.Printf("  transport errors %d", r.Errors)
	}
	fmt.Println()
	outs := make([]string, 0, len(r.Outcomes))
	for o := range r.Outcomes {
		outs = append(outs, o)
	}
	sort.Strings(outs)
	for _, o := range outs {
		fmt.Printf("outcome %-9s %d\n", o, r.Outcomes[o])
	}
}
