// Command inquery-search runs queries against an index image produced
// by inquery-index, on either storage backend, in batch or interactive
// mode.
//
// Usage:
//
//	inquery-search -index index.img -name mycol "information retrieval"
//	inquery-search -index index.img -name mycol -backend btree -k 5 '#and(a b)'
//	inquery-search -index index.img -name mycol -i          # REPL
//
// The query language supports bare terms plus #sum, #wsum, #and, #or,
// #not, #max, #syn, #phrase, #odN, #uwN, #filreq, and #filrej.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/lexicon"
	"repro/internal/obs"
	"repro/internal/textproc"
	"repro/internal/vfs"
)

func main() {
	imgPath := flag.String("index", "index.img", "index image path")
	name := flag.String("name", "collection", "collection name inside the image")
	backend := flag.String("backend", "mneme", "storage backend: mneme or btree")
	cache := flag.Bool("cache", true, "enable Mneme record caching (paper buffer plan)")
	topK := flag.Int("k", 10, "results per query (0 = all)")
	daat := flag.Bool("daat", false, "use document-at-a-time evaluation")
	interactive := flag.Bool("i", false, "interactive mode")
	queryFile := flag.String("queries", "", "file of queries, one per line (batch mode)")
	stats := flag.Bool("stats", false, "print I/O and buffer statistics after the run")
	workers := flag.Int("workers", 1, "parallel query workers for -queries batch mode (TAAT only)")
	stem := flag.Bool("stem", true, "apply Porter stemming to query terms")
	chunk := flag.Int("chunk", 0, "chunk size the index was built with (must match inquery-index -chunk)")
	explain := flag.Bool("explain", false, "print the belief breakdown for each query's top document")
	degraded := flag.Bool("degraded", false, "skip unreadable inverted-list records instead of aborting (counted in -stats)")
	trace := flag.Bool("trace", false, "print a per-query span tree (lexicon, fetch, fault-in, score) with real and simulated durations")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "inquery-search:", err)
		os.Exit(1)
	}

	f, err := os.Open(*imgPath)
	if err != nil {
		fail(err)
	}
	fs, err := vfs.LoadImage(f, vfs.Options{OSCacheBytes: 8 << 20})
	f.Close()
	if err != nil {
		fail(err)
	}

	kind, err := core.ParseBackendKind(*backend)
	if err != nil {
		fail(err)
	}

	// Synthetic collections are indexed without stemming; honour -stem.
	an := textproc.NewAnalyzer(textproc.WithStemming(*stem))
	if !*stem {
		an = textproc.NewAnalyzer(textproc.WithStemming(false), textproc.WithStopWords(nil))
	}

	opts := []core.Option{core.WithAnalyzer(an), core.WithChunking(*chunk)}
	if *degraded {
		opts = append(opts, core.WithDegraded())
	}
	if kind == core.BackendMneme && *cache {
		opts = append(opts, core.WithPlan(planFromDictionary(fs, *name)))
	}
	eng, err := core.Open(fs, *name, kind, opts...)
	if err != nil {
		fail(err)
	}
	defer eng.Close()

	printResults := func(res []core.Result) {
		if len(res) == 0 {
			fmt.Println("  (no matching documents)")
			return
		}
		for i, r := range res {
			fmt.Printf("  %2d. doc %-8d belief %.4f\n", i+1, r.Doc, r.Score)
		}
	}

	run := func(q string) {
		q = strings.TrimSpace(q)
		if q == "" {
			return
		}
		var res []core.Result
		var err error
		switch {
		case *trace:
			var tr *obs.Trace
			res, tr, err = eng.TraceSearch(q, *topK, *daat)
			if tr != nil {
				fmt.Print(tr.Render(vfs.Model1993().Costs()))
			}
		case *daat:
			res, err = eng.SearchDAAT(q, *topK)
		default:
			res, err = eng.Search(q, *topK)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "  error:", err)
			return
		}
		printResults(res)
		if *explain && len(res) > 0 {
			ex, err := eng.Explain(q, res[0].Doc)
			if err == nil {
				fmt.Printf("  explanation for doc %d:\n", res[0].Doc)
				for _, line := range strings.Split(strings.TrimRight(ex.String(), "\n"), "\n") {
					fmt.Printf("    %s\n", line)
				}
			}
		}
	}

	if *queryFile != "" {
		qf, err := os.Open(*queryFile)
		if err != nil {
			fail(err)
		}
		var queries []string
		sc := bufio.NewScanner(qf)
		for sc.Scan() {
			if strings.TrimSpace(sc.Text()) == "" {
				continue
			}
			queries = append(queries, sc.Text())
		}
		qf.Close()
		if err := sc.Err(); err != nil {
			fail(err)
		}
		// Tracing is single-stream, so -trace always takes the serial
		// loop regardless of -workers.
		if *workers > 1 && !*daat && !*trace {
			// Parallel batch: evaluate with the worker pool, then print
			// per-query rankings in input order.
			res, err := eng.SearchBatch(queries,
				core.Parallelism(*workers), core.TopK(*topK))
			if err != nil {
				fail(err)
			}
			for i, q := range queries {
				fmt.Printf("query: %s\n", q)
				printResults(res[i])
			}
		} else {
			for _, q := range queries {
				fmt.Printf("query: %s\n", q)
				run(q)
			}
		}
	} else if *interactive {
		fmt.Printf("%s/%s ready (%d docs). Enter queries; blank line quits.\n",
			*name, kind, eng.NumDocs())
		sc := bufio.NewScanner(os.Stdin)
		for {
			fmt.Print("inquery> ")
			if !sc.Scan() || strings.TrimSpace(sc.Text()) == "" {
				break
			}
			run(sc.Text())
		}
	} else {
		if flag.NArg() == 0 {
			fail(fmt.Errorf("no queries given (use -i for interactive mode or -queries for a batch file)"))
		}
		for _, q := range flag.Args() {
			fmt.Printf("query: %s\n", q)
			run(q)
		}
	}

	if *stats {
		snap := eng.Snapshot()
		fmt.Printf("\n%d queries, %d record lookups, %d postings processed\n",
			snap.Counters.Queries, snap.Counters.Lookups, snap.Counters.Postings)
		if snap.CorruptRecords > 0 {
			fmt.Printf("WARNING: %d corrupt records skipped (degraded mode)\n", snap.CorruptRecords)
		}
		fmt.Printf("I/O: %d file accesses, %d disk blocks, %d KB read\n",
			snap.IO.FileAccesses, snap.IO.DiskReads, snap.IO.BytesRead/1024)
		pools := make([]string, 0, len(snap.Buffers))
		for pool := range snap.Buffers {
			pools = append(pools, pool)
		}
		sort.Strings(pools)
		for _, pool := range pools {
			bs := snap.Buffers[pool]
			fmt.Printf("buffer %-7s refs %-6d hits %-6d rate %.2f\n",
				pool, bs.Refs, bs.Hits, bs.HitRate())
		}
	}
}

// planFromDictionary applies the paper's Table 2 heuristics to the
// stored dictionary: large = 3x the largest list, medium = 9% of large
// (at least 3 segments), small = 3 segments.
func planFromDictionary(fs *vfs.FS, name string) core.BufferPlan {
	eng, err := core.Open(fs, name, core.BackendMneme)
	if err != nil {
		return core.BufferPlan{SmallBytes: 3 * 4096, MediumBytes: 3 * 8192, LargeBytes: 1 << 20}
	}
	var max int64
	eng.Dictionary().Range(func(e *lexicon.Entry) bool {
		if int64(e.ListBytes) > max {
			max = int64(e.ListBytes)
		}
		return true
	})
	eng.Close()
	medium := 3 * max * 9 / 100
	if medium < 3*8192 {
		medium = 3 * 8192
	}
	return core.BufferPlan{SmallBytes: 3 * 4096, MediumBytes: medium, LargeBytes: 3 * max}
}
