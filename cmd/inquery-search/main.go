// Command inquery-search runs queries against an index image produced
// by inquery-index, on either storage backend, in batch or interactive
// mode.
//
// Usage:
//
//	inquery-search -index index.img -name mycol "information retrieval"
//	inquery-search -index index.img -name mycol -backend btree -k 5 '#and(a b)'
//	inquery-search -index index.img -name mycol -i          # REPL
//
// The query language supports bare terms plus #sum, #wsum, #and, #or,
// #not, #max, #syn, #phrase, #odN, #uwN, #filreq, and #filrej.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/lexicon"
	"repro/internal/textproc"
	"repro/internal/vfs"
)

func main() {
	imgPath := flag.String("index", "index.img", "index image path")
	name := flag.String("name", "collection", "collection name inside the image")
	backend := flag.String("backend", "mneme", "storage backend: mneme or btree")
	cache := flag.Bool("cache", true, "enable Mneme record caching (paper buffer plan)")
	topK := flag.Int("k", 10, "results per query (0 = all)")
	daat := flag.Bool("daat", false, "use document-at-a-time evaluation")
	interactive := flag.Bool("i", false, "interactive mode")
	queryFile := flag.String("queries", "", "file of queries, one per line (batch mode)")
	stats := flag.Bool("stats", false, "print I/O and buffer statistics after the run")
	stem := flag.Bool("stem", true, "apply Porter stemming to query terms")
	chunk := flag.Int("chunk", 0, "chunk size the index was built with (must match inquery-index -chunk)")
	explain := flag.Bool("explain", false, "print the belief breakdown for each query's top document")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "inquery-search:", err)
		os.Exit(1)
	}

	f, err := os.Open(*imgPath)
	if err != nil {
		fail(err)
	}
	fs, err := vfs.LoadImage(f, vfs.Options{OSCacheBytes: 8 << 20})
	f.Close()
	if err != nil {
		fail(err)
	}

	var kind core.BackendKind
	switch *backend {
	case "mneme":
		kind = core.BackendMneme
	case "btree":
		kind = core.BackendBTree
	default:
		fail(fmt.Errorf("unknown backend %q", *backend))
	}

	// Synthetic collections are indexed without stemming; honour -stem.
	an := textproc.NewAnalyzer(textproc.WithStemming(*stem))
	if !*stem {
		an = textproc.NewAnalyzer(textproc.WithStemming(false), textproc.WithStopWords(nil))
	}

	opts := core.EngineOptions{Analyzer: an, ChunkLargeLists: *chunk}
	if kind == core.BackendMneme && *cache {
		opts.Plan = planFromDictionary(fs, *name)
	}
	eng, err := core.Open(fs, *name, kind, opts)
	if err != nil {
		fail(err)
	}
	defer eng.Close()

	run := func(q string) {
		q = strings.TrimSpace(q)
		if q == "" {
			return
		}
		var res []core.Result
		var err error
		if *daat {
			res, err = eng.SearchDAAT(q, *topK)
		} else {
			res, err = eng.Search(q, *topK)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "  error:", err)
			return
		}
		if len(res) == 0 {
			fmt.Println("  (no matching documents)")
			return
		}
		for i, r := range res {
			fmt.Printf("  %2d. doc %-8d belief %.4f\n", i+1, r.Doc, r.Score)
		}
		if *explain {
			ex, err := eng.Explain(q, res[0].Doc)
			if err == nil {
				fmt.Printf("  explanation for doc %d:\n", res[0].Doc)
				for _, line := range strings.Split(strings.TrimRight(ex.String(), "\n"), "\n") {
					fmt.Printf("    %s\n", line)
				}
			}
		}
	}

	if *queryFile != "" {
		qf, err := os.Open(*queryFile)
		if err != nil {
			fail(err)
		}
		sc := bufio.NewScanner(qf)
		for sc.Scan() {
			if strings.TrimSpace(sc.Text()) == "" {
				continue
			}
			fmt.Printf("query: %s\n", sc.Text())
			run(sc.Text())
		}
		qf.Close()
		if err := sc.Err(); err != nil {
			fail(err)
		}
	} else if *interactive {
		fmt.Printf("%s/%s ready (%d docs). Enter queries; blank line quits.\n",
			*name, kind, eng.NumDocs())
		sc := bufio.NewScanner(os.Stdin)
		for {
			fmt.Print("inquery> ")
			if !sc.Scan() || strings.TrimSpace(sc.Text()) == "" {
				break
			}
			run(sc.Text())
		}
	} else {
		if flag.NArg() == 0 {
			fail(fmt.Errorf("no queries given (use -i for interactive mode or -queries for a batch file)"))
		}
		for _, q := range flag.Args() {
			fmt.Printf("query: %s\n", q)
			run(q)
		}
	}

	if *stats {
		c := eng.Counters()
		io := fs.Stats()
		fmt.Printf("\n%d queries, %d record lookups, %d postings processed\n",
			c.Queries, c.Lookups, c.Postings)
		fmt.Printf("I/O: %d file accesses, %d disk blocks, %d KB read\n",
			io.FileAccesses, io.DiskReads, io.BytesRead/1024)
		for pool, bs := range eng.Backend().BufferStats() {
			fmt.Printf("buffer %-7s refs %-6d hits %-6d rate %.2f\n",
				pool, bs.Refs, bs.Hits, bs.HitRate())
		}
	}
}

// planFromDictionary applies the paper's Table 2 heuristics to the
// stored dictionary: large = 3x the largest list, medium = 9% of large
// (at least 3 segments), small = 3 segments.
func planFromDictionary(fs *vfs.FS, name string) core.BufferPlan {
	eng, err := core.Open(fs, name, core.BackendMneme, core.EngineOptions{})
	if err != nil {
		return core.BufferPlan{SmallBytes: 3 * 4096, MediumBytes: 3 * 8192, LargeBytes: 1 << 20}
	}
	var max int64
	eng.Dictionary().Range(func(e *lexicon.Entry) bool {
		if int64(e.ListBytes) > max {
			max = int64(e.ListBytes)
		}
		return true
	})
	eng.Close()
	medium := 3 * max * 9 / 100
	if medium < 3*8192 {
		medium = 3 * 8192
	}
	return core.BufferPlan{SmallBytes: 3 * 4096, MediumBytes: medium, LargeBytes: 3 * max}
}
