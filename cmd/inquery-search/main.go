// Command inquery-search runs queries against an index image produced
// by inquery-index, on either storage backend, in batch or interactive
// mode.
//
// Usage:
//
//	inquery-search -index index.img -name mycol "information retrieval"
//	inquery-search -index index.img -name mycol -backend btree -k 5 '#and(a b)'
//	inquery-search -index index.img -name mycol -i          # REPL
//
// The query language supports bare terms plus #sum, #wsum, #and, #or,
// #not, #max, #syn, #phrase, #odN, #uwN, #filreq, and #filrej.
//
// Exit codes: 0 all queries completed cleanly; 1 hard failure (bad
// flags, unreadable image, or a query error that is neither shed nor
// deadline); 3 at least one query was shed by admission control
// (-max-inflight); 4 results may be incomplete — corrupt records were
// skipped in -degraded mode or a -deadline cut a query short.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/lexicon"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/textproc"
	"repro/internal/vfs"
)

// Exit codes beyond the conventional 0/1, so scripts can distinguish
// load shedding from data damage without parsing output.
const (
	exitShed     = 3 // at least one query rejected by admission control
	exitDegraded = 4 // partial results: corrupt records skipped or deadline hit
)

func main() {
	imgPath := flag.String("index", "index.img", "index image path")
	name := flag.String("name", "collection", "collection name inside the image")
	backend := flag.String("backend", "mneme", "storage backend: mneme or btree")
	cache := flag.Bool("cache", true, "enable Mneme record caching (paper buffer plan)")
	topK := flag.Int("k", 10, "results per query (0 = all)")
	daat := flag.Bool("daat", false, "use document-at-a-time evaluation")
	prune := flag.Bool("prune", false, "MaxScore dynamic pruning for -daat queries with -k > 0 (identical top-k, skips non-competitive postings)")
	interactive := flag.Bool("i", false, "interactive mode")
	queryFile := flag.String("queries", "", "file of queries, one per line (batch mode)")
	stats := flag.Bool("stats", false, "print I/O and buffer statistics after the run")
	workers := flag.Int("workers", 1, "parallel query workers for -queries batch mode (TAAT only)")
	stem := flag.Bool("stem", true, "apply Porter stemming to query terms")
	chunk := flag.Int("chunk", 0, "chunk size the index was built with (must match inquery-index -chunk)")
	explain := flag.Bool("explain", false, "print the belief breakdown for each query's top document")
	degraded := flag.Bool("degraded", false, "skip unreadable inverted-list records instead of aborting (counted in -stats)")
	trace := flag.Bool("trace", false, "print a per-query span tree (lexicon, fetch, fault-in, score) with real and simulated durations")
	deadline := flag.Duration("deadline", 0, "per-query deadline; an expired query returns its partial ranking (0 = none)")
	maxInflight := flag.Int("max-inflight", 0, "bound on concurrently admitted queries; excess queries wait -queue-wait then are shed (0 = unbounded)")
	queueWait := flag.Duration("queue-wait", 0, "how long an over-limit query may wait for admission before being shed")
	retries := flag.Int("retries", 1, "read attempts per storage fault-in; >1 retries transient faults with capped backoff")
	breaker := flag.Int("breaker", 0, "consecutive-failure threshold that opens a per-pool circuit breaker (0 = disabled)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "inquery-search:", err)
		os.Exit(1)
	}

	f, err := os.Open(*imgPath)
	if err != nil {
		fail(err)
	}
	fs, err := vfs.LoadImage(f, vfs.Options{OSCacheBytes: 8 << 20})
	f.Close()
	if err != nil {
		fail(err)
	}

	kind, err := core.ParseBackendKind(*backend)
	if err != nil {
		fail(err)
	}

	// Synthetic collections are indexed without stemming; honour -stem.
	an := textproc.NewAnalyzer(textproc.WithStemming(*stem))
	if !*stem {
		an = textproc.NewAnalyzer(textproc.WithStemming(false), textproc.WithStopWords(nil))
	}

	opts := []core.Option{core.WithAnalyzer(an), core.WithChunking(*chunk)}
	if *prune {
		opts = append(opts, core.WithPruning())
	}
	if *degraded {
		opts = append(opts, core.WithDegraded())
	}
	if *maxInflight > 0 {
		opts = append(opts, core.WithMaxInFlight(*maxInflight, *queueWait))
	}
	if *retries > 1 {
		opts = append(opts, core.WithRetry(*retries))
	}
	if *breaker > 0 {
		opts = append(opts, core.WithBreaker(*breaker, 0))
	}
	if kind == core.BackendMneme && *cache {
		opts = append(opts, core.WithPlan(planFromDictionary(fs, *name)))
	}
	eng, err := core.Open(fs, *name, kind, opts...)
	if err != nil {
		fail(err)
	}
	defer eng.Close()

	printResults := func(res []core.Result) {
		if len(res) == 0 {
			fmt.Println("  (no matching documents)")
			return
		}
		for i, r := range res {
			fmt.Printf("  %2d. doc %-8d belief %.4f\n", i+1, r.Doc, r.Score)
		}
	}

	hardErrs := 0

	mode := core.ModeTAAT
	if *daat {
		mode = core.ModeDAAT
	}
	run := func(q string) {
		q = strings.TrimSpace(q)
		if q == "" {
			return
		}
		req := core.Request{Query: q, TopK: *topK, Mode: mode, Deadline: *deadline}
		var resp core.Response
		var err error
		if *trace {
			// Tracing is a diagnostic replay; -deadline is not applied.
			req.Deadline = 0
			var tr *obs.Trace
			resp, tr, err = eng.TraceRun(req)
			if tr != nil {
				fmt.Print(tr.Render(vfs.Model1993().Costs()))
			}
		} else {
			resp, err = eng.Run(context.Background(), req)
		}
		switch resp.Outcome {
		case core.OutcomeShed:
			fmt.Println("  (query shed by admission control)")
			return
		case core.OutcomeDeadline:
			fmt.Println("  (deadline exceeded; partial ranking)")
		case core.OutcomeError:
			fmt.Fprintln(os.Stderr, "  error:", err)
			hardErrs++
			return
		}
		printResults(resp.Results)
		if *explain && len(resp.Results) > 0 {
			top := resp.Results[0].Doc
			ex, err := eng.Explain(q, top)
			if err == nil {
				fmt.Printf("  explanation for doc %d:\n", top)
				for _, line := range strings.Split(strings.TrimRight(ex.String(), "\n"), "\n") {
					fmt.Printf("    %s\n", line)
				}
			}
		}
	}

	if *queryFile != "" {
		qf, err := os.Open(*queryFile)
		if err != nil {
			fail(err)
		}
		var queries []string
		sc := bufio.NewScanner(qf)
		for sc.Scan() {
			if strings.TrimSpace(sc.Text()) == "" {
				continue
			}
			queries = append(queries, sc.Text())
		}
		qf.Close()
		if err := sc.Err(); err != nil {
			fail(err)
		}
		// Tracing is single-stream, so -trace always takes the serial
		// loop regardless of -workers.
		if *workers > 1 && !*daat && !*trace {
			// Parallel batch: evaluate with the worker pool, then print
			// per-query outcomes in input order. Shed and deadline
			// conditions are labelled, not fatal; hard errors are
			// reported per query and reflected in the exit code.
			out, err := eng.SearchBatchCtx(nil, queries,
				core.Parallelism(*workers), core.TopK(*topK),
				core.QueryTimeout(*deadline))
			if err != nil {
				fail(err)
			}
			for i, q := range queries {
				fmt.Printf("query: %s\n", q)
				o := out[i]
				switch {
				case o.Err == nil:
				case errors.Is(o.Err, resilience.ErrShed):
					fmt.Println("  (query shed by admission control)")
					continue
				case errors.Is(o.Err, resilience.ErrDeadline):
					fmt.Println("  (deadline exceeded; partial ranking)")
				default:
					fmt.Fprintln(os.Stderr, "  error:", o.Err)
					hardErrs++
					continue
				}
				printResults(o.Results)
			}
		} else {
			for _, q := range queries {
				fmt.Printf("query: %s\n", q)
				run(q)
			}
		}
	} else if *interactive {
		fmt.Printf("%s/%s ready (%d docs). Enter queries; blank line quits.\n",
			*name, kind, eng.NumDocs())
		sc := bufio.NewScanner(os.Stdin)
		for {
			fmt.Print("inquery> ")
			if !sc.Scan() || strings.TrimSpace(sc.Text()) == "" {
				break
			}
			run(sc.Text())
		}
	} else {
		if flag.NArg() == 0 {
			fail(fmt.Errorf("no queries given (use -i for interactive mode or -queries for a batch file)"))
		}
		for _, q := range flag.Args() {
			fmt.Printf("query: %s\n", q)
			run(q)
		}
	}

	if *stats {
		snap := eng.Snapshot()
		fmt.Printf("\n%d queries, %d record lookups, %d postings processed\n",
			snap.Counters.Queries, snap.Counters.Lookups, snap.Counters.Postings)
		if snap.CorruptRecords > 0 {
			fmt.Printf("WARNING: %d corrupt records skipped (degraded mode)\n", snap.CorruptRecords)
		}
		fmt.Printf("I/O: %d file accesses, %d disk blocks, %d KB read\n",
			snap.IO.FileAccesses, snap.IO.DiskReads, snap.IO.BytesRead/1024)
		pools := make([]string, 0, len(snap.Buffers))
		for pool := range snap.Buffers {
			pools = append(pools, pool)
		}
		sort.Strings(pools)
		for _, pool := range pools {
			bs := snap.Buffers[pool]
			fmt.Printf("buffer %-7s refs %-6d hits %-6d rate %.2f\n",
				pool, bs.Refs, bs.Hits, bs.HitRate())
		}
		if rs := snap.Resilience; rs != nil {
			fmt.Printf("resilience: %d retried reads, %d deadline hits, %d shed",
				rs.RetriedReads, rs.DeadlineHits, rs.Shed)
			if rs.MaxInFlight > 0 {
				fmt.Printf(", %d/%d in flight", rs.InFlight, rs.MaxInFlight)
			}
			fmt.Println()
			names := make([]string, 0, len(rs.Breakers))
			for n := range rs.Breakers {
				names = append(names, n)
			}
			sort.Strings(names)
			for _, n := range names {
				b := rs.Breakers[n]
				fmt.Printf("breaker %-7s %-8s opens %-4d rejects %-4d probes %d\n",
					n, b.State, b.Opens, b.Rejects, b.Probes)
			}
		}
	}

	c := eng.Counters()
	switch {
	case hardErrs > 0:
		os.Exit(1)
	case c.Shed > 0:
		os.Exit(exitShed)
	case c.CorruptRecords > 0 || c.DeadlineHits > 0:
		os.Exit(exitDegraded)
	}
}

// planFromDictionary applies the paper's Table 2 heuristics to the
// stored dictionary: large = 3x the largest list, medium = 9% of large
// (at least 3 segments), small = 3 segments.
func planFromDictionary(fs *vfs.FS, name string) core.BufferPlan {
	eng, err := core.Open(fs, name, core.BackendMneme)
	if err != nil {
		return core.BufferPlan{SmallBytes: 3 * 4096, MediumBytes: 3 * 8192, LargeBytes: 1 << 20}
	}
	var max int64
	eng.Dictionary().Range(func(e *lexicon.Entry) bool {
		if int64(e.ListBytes) > max {
			max = int64(e.ListBytes)
		}
		return true
	})
	eng.Close()
	medium := 3 * max * 9 / 100
	if medium < 3*8192 {
		medium = 3 * 8192
	}
	return core.BufferPlan{SmallBytes: 3 * 4096, MediumBytes: medium, LargeBytes: 3 * max}
}
