// Command repro regenerates every table and figure of the paper's
// evaluation section, plus the ablation studies, from the synthetic
// collections. With no flags it reproduces everything at full scale.
//
// Usage:
//
//	repro [-scale F] [-table N] [-figure N] [-ablations] [-csv]
//
// Examples:
//
//	repro                 # all tables, all figures, all ablations
//	repro -table 5        # just Table 5
//	repro -figure 3       # just Figure 3 (ASCII plot + data)
//	repro -scale 0.2      # quick pass at 1/5 collection scale
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 1.0, "collection scale factor (1.0 = default reproduction scale)")
	table := flag.Int("table", 0, "regenerate only table N (1-6)")
	figure := flag.Int("figure", 0, "regenerate only figure N (1-3)")
	ablations := flag.Bool("ablations", false, "run only the ablation studies")
	analyze := flag.Bool("analyze", false, "run only the paper-§2 workload analysis")
	snapshots := flag.Bool("snapshots", false, "print one engine-snapshot JSON line per evaluation run")
	csv := flag.Bool("csv", false, "emit figure data as CSV instead of ASCII plots")
	bench := flag.Bool("bench", false, "run the standard query mixes over both backends and write per-stage latency quantiles")
	benchOut := flag.String("benchout", "BENCH_query.json", "bench report output path (-bench)")
	ablateCodec := flag.Bool("ablate-codec", false, "run only the posting-codec x cache ablation matrix and write its JSON")
	ablateOut := flag.String("ablateout", "ABLATION_codec.json", "codec ablation output path (-ablate-codec)")
	ablateCol := flag.String("ablatecol", "CACM", "collection of the codec ablation matrix (-ablate-codec)")
	baseline := flag.String("baseline", "", "baseline BENCH_query.json to diff against; exits non-zero on >20% p95 regression (-bench)")
	topK := flag.Int("topk", experiments.DefaultBenchTopK, "ranking depth of the bench mode's document-at-a-time rows (-bench)")
	flag.Parse()

	lab := experiments.NewLab(*scale)
	lab.BenchTopK = *topK
	start := time.Now()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}

	printFigure := func(f *experiments.Figure) {
		if *csv {
			fmt.Println(f.Title)
			fmt.Print(f.CSV())
		} else {
			fmt.Println(f.ASCII(72, 16))
		}
		fmt.Println()
	}

	switch {
	case *bench:
		runBench(lab, *benchOut, *baseline, fail)
	case *ablateCodec:
		runCodecAblation(lab, *ablateCol, *ablateOut, fail)
	case *table != 0:
		fns := []func() (*experiments.Table, error){
			lab.Table1, lab.Table2, lab.Table3, lab.Table4, lab.Table5, lab.Table6,
		}
		if *table < 1 || *table > len(fns) {
			fail(fmt.Errorf("no table %d (1-6)", *table))
		}
		t, err := fns[*table-1]()
		if err != nil {
			fail(err)
		}
		fmt.Println(t)
	case *figure != 0:
		fns := []func() (*experiments.Figure, error){lab.Figure1, lab.Figure2, lab.Figure3}
		if *figure < 1 || *figure > len(fns) {
			fail(fmt.Errorf("no figure %d (1-3)", *figure))
		}
		f, err := fns[*figure-1]()
		if err != nil {
			fail(err)
		}
		printFigure(f)
	case *ablations:
		runAblations(lab, fail)
	case *analyze:
		runAnalysis(lab, fail)
	case *snapshots:
		runSnapshots(lab, fail)
	default:
		fmt.Printf("Reproducing Brown, Callan, Moss, Croft — \"Supporting Full-Text Information\n")
		fmt.Printf("Retrieval with a Persistent Object Store\" (UMass TR 93-67 / EDBT 1994)\n")
		fmt.Printf("Scale %.2f, simulated 1993 DECstation 5000/240 time model.\n\n", *scale)
		tables, err := lab.AllTables()
		if err != nil {
			fail(err)
		}
		for _, t := range tables {
			fmt.Println(t)
		}
		figures, err := lab.AllFigures()
		if err != nil {
			fail(err)
		}
		for _, f := range figures {
			printFigure(f)
		}
		runAnalysis(lab, fail)
		runAblations(lab, fail)
	}
	fmt.Printf("done in %v\n", time.Since(start).Round(time.Millisecond))
}

// runBench runs the bench query mixes, writes the deterministic report,
// and optionally enforces the p95 regression gate against a baseline.
func runBench(lab *experiments.Lab, outPath, basePath string, fail func(error)) {
	report, err := lab.RunBench(nil)
	if err != nil {
		fail(err)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fail(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("bench: %d rows written to %s\n", len(report.Rows), outPath)
	if err := experiments.CheckCachedRepeat(report); err != nil {
		fail(err)
	}
	fmt.Printf("bench: cached repeat query p50 beats uncached on every matrix row\n")
	if err := experiments.CheckShardedScaling(report); err != nil {
		fail(err)
	}
	fmt.Printf("bench: sharded x%d beats single-shard score p95 on every matrix row\n",
		experiments.ShardedBenchNs[len(experiments.ShardedBenchNs)-1])
	if err := experiments.CheckNRTIngest(report); err != nil {
		fail(err)
	}
	fmt.Printf("bench: query p95 under ingest within %.1fx of idle on every NRT cell\n",
		experiments.NRTIngestTolerance)
	if basePath == "" {
		return
	}
	baseData, err := os.ReadFile(basePath)
	if err != nil {
		fail(err)
	}
	var base experiments.BenchReport
	if err := json.Unmarshal(baseData, &base); err != nil {
		fail(fmt.Errorf("parse baseline %s: %w", basePath, err))
	}
	if err := experiments.CompareBench(&base, report, 0.20); err != nil {
		fail(err)
	}
	fmt.Printf("bench: no p95 regression vs %s (tolerance 20%%)\n", basePath)
}

// runCodecAblation runs the posting-codec x cache matrix, prints the
// table, and writes the JSON artifact EXPERIMENTS.md references.
func runCodecAblation(lab *experiments.Lab, col, outPath string, fail func(error)) {
	t, m, err := lab.AblationCodec(col, 0)
	if err != nil {
		fail(err)
	}
	fmt.Println(t)
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		fail(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("ablate: %d cells written to %s\n", len(m.Cells), outPath)
}

// runSnapshots executes the full evaluation matrix and emits one JSON
// line per run: the row's identity plus the engine's unified Snapshot.
func runSnapshots(lab *experiments.Lab, fail func(error)) {
	rows := []struct {
		col string
		qs  int
	}{
		{"CACM", 0}, {"CACM", 1}, {"CACM", 2},
		{"Legal", 0}, {"Legal", 1},
		{"TIPSTER1", 0},
		{"TIPSTER", 0},
	}
	systems := []experiments.System{
		experiments.SysBTree, experiments.SysMnemeNoCache, experiments.SysMnemeCache,
	}
	enc := json.NewEncoder(os.Stdout)
	for _, row := range rows {
		for _, sys := range systems {
			r, err := lab.Run(row.col, row.qs, sys)
			if err != nil {
				fail(err)
			}
			line := struct {
				Collection string        `json:"collection"`
				QuerySet   string        `json:"query_set"`
				System     int           `json:"system"`
				Snapshot   core.Snapshot `json:"snapshot"`
			}{r.Collection, r.QuerySet, int(r.Sys), r.Snap}
			if err := enc.Encode(line); err != nil {
				fail(err)
			}
		}
	}
}

func runAnalysis(lab *experiments.Lab, fail func(error)) {
	t, err := lab.AnalyzeCollections()
	if err != nil {
		fail(err)
	}
	fmt.Println(t)
	t, err = lab.AnalyzeQueryRepetition()
	if err != nil {
		fail(err)
	}
	fmt.Println(t)
}

func runAblations(lab *experiments.Lab, fail func(error)) {
	t, err := lab.AblationReserve("Legal", 1)
	if err != nil {
		fail(err)
	}
	fmt.Println(t)
	t, err = lab.AblationSinglePool("Legal", 0)
	if err != nil {
		fail(err)
	}
	fmt.Println(t)
	t, err = lab.AblationSegmentSize("Legal", 0, nil)
	if err != nil {
		fail(err)
	}
	fmt.Println(t)
	t, err = lab.AblationBufferPolicy("Legal", 0)
	if err != nil {
		fail(err)
	}
	fmt.Println(t)
	t, err = lab.AblationChunkedLists("Legal", 0, 0)
	if err != nil {
		fail(err)
	}
	fmt.Println(t)
}
