// Batcheval: a TIPSTER-style batch evaluation with relevance judgments,
// demonstrating what the paper holds fixed: recall and precision are
// identical across storage backends, while the I/O profile differs.
//
//	go run ./examples/batcheval
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/index"
	"repro/internal/textproc"
	"repro/internal/vfs"
)

// topic is a synthetic information need: a small set of "topical" terms
// planted into the relevant documents.
type topic struct {
	id       string
	terms    []string
	relevant map[uint32]bool
}

func main() {
	rng := rand.New(rand.NewSource(7))
	an := textproc.NewAnalyzer(textproc.WithStemming(false), textproc.WithStopWords(nil))

	// Build a corpus where each of 12 topics plants its vocabulary into
	// ~25 relevant documents over background noise, so ground-truth
	// relevance judgments exist by construction (the role of the
	// paper's "relevance file").
	const (
		numTopics  = 12
		numDocs    = 1500
		docLen     = 120
		background = 3000
	)
	topics := make([]*topic, numTopics)
	for t := range topics {
		terms := make([]string, 6)
		for j := range terms {
			terms[j] = fmt.Sprintf("topic%02dterm%d", t, j)
		}
		topics[t] = &topic{
			id:       fmt.Sprintf("T%02d", t),
			terms:    terms,
			relevant: make(map[uint32]bool),
		}
	}

	docs := make([]index.Doc, numDocs)
	for d := range docs {
		var sb strings.Builder
		// Background noise.
		for w := 0; w < docLen; w++ {
			fmt.Fprintf(&sb, "bg%d ", rng.Intn(background))
		}
		// With probability ~20%, the document is about one topic; with
		// another ~15% it mentions a topic in passing without being
		// relevant — the noise that keeps precision below 1.
		switch f := rng.Float64(); {
		case f < 0.2:
			t := topics[rng.Intn(numTopics)]
			t.relevant[uint32(d)] = true
			// Some relevant documents mention the topic only briefly —
			// those are the hard ones that pull recall curves down.
			for w := 0; w < rng.Intn(10)+2; w++ {
				sb.WriteString(t.terms[rng.Intn(len(t.terms))])
				sb.WriteByte(' ')
			}
		case f < 0.35:
			t := topics[rng.Intn(numTopics)]
			for w := 0; w < rng.Intn(5)+1; w++ {
				sb.WriteString(t.terms[rng.Intn(len(t.terms))])
				sb.WriteByte(' ')
			}
		}
		docs[d] = index.Doc{ID: uint32(d), Text: sb.String()}
	}

	fs := vfs.New(vfs.Options{BlockSize: vfs.DefaultBlockSize, OSCacheBytes: 512 << 10})
	if _, err := core.Build(fs, "tipster", &core.SliceDocs{Docs: docs}, core.BuildOptions{Analyzer: an}); err != nil {
		log.Fatal(err)
	}

	// Run the batch on both backends and evaluate.
	for _, kind := range []core.BackendKind{core.BackendBTree, core.BackendMneme} {
		opts := []core.Option{core.WithAnalyzer(an)}
		if kind == core.BackendMneme {
			opts = append(opts, core.WithPlan(core.BufferPlan{SmallBytes: 12 << 10, MediumBytes: 64 << 10, LargeBytes: 256 << 10}))
		}
		eng, err := core.Open(fs, "tipster", kind, opts...)
		if err != nil {
			log.Fatal(err)
		}
		fs.Chill()
		fs.ResetStats()

		var metrics []eval.Metrics
		for _, t := range topics {
			query := strings.Join(t.terms, " ")
			res, err := eng.Search(query, 100)
			if err != nil {
				log.Fatal(err)
			}
			ranked := make([]uint32, len(res))
			for i, r := range res {
				ranked[i] = r.Doc
			}
			metrics = append(metrics, eval.Evaluate(ranked, t.relevant))
		}
		sum := eval.Summarize(metrics)
		io := fs.Stats()
		fmt.Printf("%s backend:\n", kind)
		fmt.Printf("  mean average precision %.4f   mean recall %.4f   P@10 %.4f\n",
			sum.MeanAvgPrecision, sum.MeanRecall, sum.MeanPrecisionAt[10])
		fmt.Printf("  11-pt interpolated: %.2f %.2f %.2f ... %.2f\n",
			sum.MeanInterpolated11[0], sum.MeanInterpolated11[1],
			sum.MeanInterpolated11[2], sum.MeanInterpolated11[10])
		fmt.Printf("  I/O: %d file accesses, %d disk blocks, %d KB read\n\n",
			io.FileAccesses, io.DiskReads, io.BytesRead/1024)
		eng.Close()
	}
	fmt.Println("retrieval quality is identical across backends — the paper's")
	fmt.Println("controlled variable is the storage manager, never the ranking.")
}
