// Legalsearch: a Legal-collection-style session that shows the paper's
// storage-level machinery at work — the three object pools, the Table 2
// buffer plan, the reservation optimization, and the way iterative
// query refinement (the source of term repetition) turns into buffer
// hits.
//
//	go run ./examples/legalsearch
package main

import (
	"fmt"
	"log"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/lexicon"
	"repro/internal/textproc"
	"repro/internal/vfs"
)

func main() {
	fs := vfs.New(vfs.Options{BlockSize: vfs.DefaultBlockSize, OSCacheBytes: 512 << 10})
	an := textproc.NewAnalyzer(textproc.WithStemming(false), textproc.WithStopWords(nil))

	// A scaled-down Legal-like collection: long case descriptions with
	// a Zipfian vocabulary.
	spec := collection.Spec{
		Name: "legal", Docs: 1200, AvgLen: 400,
		Vocab: 8000, TailVocab: 15000, Seed: 42,
	}
	fmt.Println("building the collection (both backends)...")
	stream := spec.Stream()
	stats, err := core.Build(fs, "legal", stream, core.BuildOptions{Analyzer: an})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d docs, %d records; B-tree %d KB, Mneme %d KB\n\n",
		stats.Docs, stats.Records, stats.BTreeBytes/1024, stats.MnemeBytes/1024)

	// Compute the paper's buffer plan from the dictionary.
	probe, err := core.Open(fs, "legal", core.BackendMneme, core.WithAnalyzer(an))
	if err != nil {
		log.Fatal(err)
	}
	var maxList int64
	probe.Dictionary().Range(func(e *lexicon.Entry) bool {
		if int64(e.ListBytes) > maxList {
			maxList = int64(e.ListBytes)
		}
		return true
	})
	probe.Close()
	plan := core.BufferPlan{
		SmallBytes:  3 * 4096,
		MediumBytes: max64(3*8192, 3*maxList*9/100),
		LargeBytes:  3 * maxList,
	}
	fmt.Printf("buffer plan (Table 2 heuristics): small %d KB, medium %d KB, large %d KB\n\n",
		plan.SmallBytes/1024, plan.MediumBytes/1024, plan.LargeBytes/1024)

	eng, err := core.Open(fs, "legal", core.BackendMneme,
		core.WithAnalyzer(an), core.WithPlan(plan))
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// An iterative refinement session: each query reuses terms from the
	// previous one — "As the query is refined to more precisely
	// represent the user's information need, terms from earlier queries
	// will reappear in later queries" (paper §2).
	session := []string{
		"t27 t31",
		"#and(t27 t31 t55)",
		"#wsum(3 t27 2 t31 1 t55 1 t89)",
		"#and(t27 #or(t31 t55) #not(t144))",
	}
	for i, q := range session {
		res, err := eng.Search(q, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("refinement %d: %s\n", i+1, q)
		for j, r := range res {
			fmt.Printf("   %d. case %-6d belief %.4f\n", j+1, r.Doc, r.Score)
		}
		for _, pool := range []string{"small", "medium", "large"} {
			bs := eng.Backend().BufferStats()[pool]
			if bs.Refs > 0 {
				fmt.Printf("   [%s buffer: %d refs, %d hits, rate %.2f]\n",
					pool, bs.Refs, bs.Hits, bs.HitRate())
			}
		}
		fmt.Println()
	}

	c := eng.Counters()
	fmt.Printf("session: %d queries, %d lookups, %d postings processed\n",
		c.Queries, c.Lookups, c.Postings)
	fmt.Println("note the rising hit rates: refinement repetition is exactly the")
	fmt.Println("access pattern the paper's record caching exploits.")
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
