// Quickstart: index a handful of documents and search them with the
// INQUERY engine on top of the Mneme persistent object store.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/vfs"
)

func main() {
	// The storage stack is simulated: an in-memory "disk" with 8 Kbyte
	// transfer blocks and an OS buffer cache, so every I/O is counted.
	fs := vfs.New(vfs.Options{BlockSize: vfs.DefaultBlockSize, OSCacheBytes: 1 << 20})

	docs := []index.Doc{
		{ID: 0, Text: "Full-text information retrieval systems have unusual and challenging data management requirements."},
		{ID: 1, Text: "An inverted file index consists of a record, or inverted list, for each term in the collection."},
		{ID: 2, Text: "The Mneme persistent object store was designed to be efficient and extensible."},
		{ID: 3, Text: "Objects are grouped into pools; a pool defines management policies for its objects."},
		{ID: 4, Text: "INQUERY is a probabilistic retrieval system based upon a Bayesian inference network model."},
		{ID: 5, Text: "Replacing the B-tree package with the object store improved retrieval performance."},
	}

	// Build the collection. Both storage backends are produced from the
	// same record stream; they store identical bytes.
	stats, err := core.Build(fs, "quickstart", &core.SliceDocs{Docs: docs}, core.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d docs, %d terms, %d records (B-tree %d KB, Mneme %d KB)\n\n",
		stats.Docs, stats.Terms, stats.Records, stats.BTreeBytes/1024, stats.MnemeBytes/1024)

	// Open the Mneme-backed engine with small record buffers.
	eng, err := core.Open(fs, "quickstart", core.BackendMneme,
		core.WithPlan(core.BufferPlan{SmallBytes: 8 << 10, MediumBytes: 32 << 10, LargeBytes: 64 << 10}))
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	queries := []string{
		"inverted file index",
		"#and(object store)",
		"#phrase(inference network)",
		"#wsum(3 retrieval 1 performance)",
	}
	for _, q := range queries {
		res, err := eng.Search(q, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query %q\n", q)
		for i, r := range res {
			fmt.Printf("  %d. doc %d  belief %.4f  %.60s...\n", i+1, r.Doc, r.Score, docs[r.Doc].Text)
		}
		fmt.Println()
	}

	// The engine counts its work: record lookups, postings, and the
	// simulated I/O underneath.
	c := eng.Counters()
	io := fs.Stats()
	fmt.Printf("%d queries -> %d record lookups, %d postings, %d disk blocks read\n",
		c.Queries, c.Lookups, c.Postings, io.DiskReads)
}
