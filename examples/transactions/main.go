// Transactions: the remaining "standard data management services" the
// paper names as future work — concurrency control, transactional
// commit/rollback, and crash recovery — implemented on the store and
// exercised against a live index.
//
//	go run ./examples/transactions
package main

import (
	"fmt"
	"log"
	"sync"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/mneme"
	"repro/internal/vfs"
)

func main() {
	fs := vfs.New(vfs.Options{BlockSize: vfs.DefaultBlockSize, OSCacheBytes: 1 << 20})
	docs := []index.Doc{
		{ID: 0, Text: "transaction processing concepts and techniques"},
		{ID: 1, Text: "recovery by shadow paging with a commit point"},
		{ID: 2, Text: "concurrency control for read mostly workloads"},
	}
	if _, err := core.Build(fs, "col", &core.SliceDocs{Docs: docs}, core.BuildOptions{
		Backends: []core.BackendKind{core.BackendMneme},
	}); err != nil {
		log.Fatal(err)
	}

	// Work directly with the object store underneath the index.
	st, err := mneme.Open(fs, "col.mn")
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	// --- Commit / rollback. ---
	fmt.Println("== commit and rollback ==")
	id, _ := st.Allocate("medium", []byte("committed payload"))
	if err := st.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("committed object %#x\n", uint32(id))

	if err := st.Modify(id, []byte("uncommitted scribble")); err != nil {
		log.Fatal(err)
	}
	orphan, _ := st.Allocate("medium", []byte("uncommitted object"))
	if err := st.Rollback(); err != nil {
		log.Fatal(err)
	}
	data, _ := st.Get(id)
	fmt.Printf("after rollback the object reads %q\n", data)
	if _, err := st.Get(orphan); err != nil {
		fmt.Println("the uncommitted allocation is gone, as it should be")
	}

	// --- Crash recovery: the header write is the commit point. ---
	fmt.Println("\n== crash recovery ==")
	st.Modify(id, []byte("work lost in the crash"))
	// "Crash": drop the handle without flushing and reopen from disk.
	st2, err := mneme.Open(fs, "col.mn")
	if err != nil {
		log.Fatal(err)
	}
	data, _ = st2.Get(id)
	fmt.Printf("reopened store reads %q — the last committed image\n", data)
	st2.Close()

	// --- Concurrency control: the store serializes concurrent use. ---
	fmt.Println("\n== concurrent readers ==")
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if _, err := st.Get(id); err != nil {
					log.Printf("reader %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	fmt.Println("4 goroutines x 1000 reads completed under the store lock")
	fmt.Println("\nthe paper predicted these services \"would not introduce excessive")
	fmt.Println("overhead\" for IR's read-mostly access — the read path adds only an")
	fmt.Println("uncontended mutex acquisition (see BenchmarkLockOverheadGet).")
}
