// Incremental: the paper's future-work features, implemented. Mneme's
// richer data model supports single-document addition and deletion
// (impossible in the B-tree version, which "requires the entire
// document collection to be re-indexed"), and inter-object references
// let large inverted lists be chunked into linked lists for incremental
// update and incremental retrieval (paper §6).
//
//	go run ./examples/incremental
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/mneme"
	"repro/internal/vfs"
)

func main() {
	fs := vfs.New(vfs.Options{BlockSize: vfs.DefaultBlockSize, OSCacheBytes: 1 << 20})
	docs := []index.Doc{
		{ID: 0, Text: "inverted file indexes support fast term lookup"},
		{ID: 1, Text: "object stores group objects into pools and segments"},
		{ID: 2, Text: "buffer management policies decide replacement"},
	}
	if _, err := core.Build(fs, "col", &core.SliceDocs{Docs: docs}, core.BuildOptions{}); err != nil {
		log.Fatal(err)
	}

	// --- Part 1: single-document update through the object store. ---
	fmt.Println("== incremental document update ==")
	bt, err := core.Open(fs, "col", core.BackendBTree)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := bt.AddDocument("new document about inverted indexes"); errors.Is(err, core.ErrNoUpdate) {
		fmt.Println("B-tree backend: AddDocument -> ErrNoUpdate (re-index required, as in the paper)")
	}
	bt.Close()

	mn, err := core.Open(fs, "col", core.BackendMneme,
		core.WithPlan(core.BufferPlan{SmallBytes: 8 << 10, MediumBytes: 32 << 10, LargeBytes: 64 << 10}))
	if err != nil {
		log.Fatal(err)
	}
	defer mn.Close()

	id, err := mn.AddDocument("a fresh case study of inverted file maintenance")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Mneme backend: added document %d without re-indexing\n", id)
	res, _ := mn.Search("inverted", 10)
	fmt.Printf("  'inverted' now matches %d documents:", len(res))
	for _, r := range res {
		fmt.Printf(" %d", r.Doc)
	}
	fmt.Println()
	if err := mn.DeleteDocument(0, docs[0].Text); err != nil {
		log.Fatal(err)
	}
	res, _ = mn.Search("inverted", 10)
	fmt.Printf("  after deleting document 0, %d matches remain\n", len(res))
	if err := mn.SaveMeta(); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	// --- Part 2: chunked large objects via inter-object references. ---
	fmt.Println("== chunked large objects ==")
	st, err := mneme.Create(fs, "chunks.mn", mneme.Config{Pools: []mneme.PoolConfig{
		{Name: "chunks", Kind: mneme.PoolMedium, SegmentBytes: 8192, BufferBytes: 1 << 20},
	}})
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	st.SetRefLocator("chunks", mneme.ChunkRefLocator)

	// A "large inverted list" broken into 2 KB chunks.
	payload := make([]byte, 50_000)
	for i := range payload {
		payload[i] = byte(i)
	}
	head, err := mneme.WriteChunked(st, "chunks", payload, 2048)
	if err != nil {
		log.Fatal(err)
	}
	n, _ := mneme.ChunkedLen(st, head)
	fmt.Printf("wrote a %d-byte object as a linked list of 2 KB chunks (head %#x)\n", n, uint32(head))

	// Incremental retrieval: stop after 3 chunks instead of reading all.
	read := 0
	chunks := 0
	mneme.ScanChunked(st, head, func(p []byte) bool {
		read += len(p)
		chunks++
		return chunks < 3
	})
	fmt.Printf("incremental retrieval: stopped after %d chunks (%d of %d bytes)\n", chunks, read, n)

	// Incremental update: append without rewriting existing chunks.
	if _, err := mneme.AppendChunked(st, "chunks", head, make([]byte, 5000), 2048); err != nil {
		log.Fatal(err)
	}
	n, _ = mneme.ChunkedLen(st, head)
	fmt.Printf("incremental update: appended 5000 bytes; object is now %d bytes\n", n)

	// Garbage collection through the pool's reference locator.
	orphan, _ := mneme.WriteChunked(st, "chunks", make([]byte, 10_000), 2048)
	_ = orphan // drop the only reference
	freed, err := st.GC([]mneme.ObjectID{head})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GC from the live head collected %d unreachable chunks\n", freed)
}
