package repro

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/mneme"
	"repro/internal/textproc"
	"repro/internal/vfs"
)

// TestEndToEndPipeline drives the whole stack the way the command-line
// tools do: generate a synthetic collection, index it under both
// storage managers, persist the simulated file system as an image,
// reload it, search on both backends with identical results, update the
// Mneme side incrementally, and reorganize the store — one pass through
// every module in the repository.
func TestEndToEndPipeline(t *testing.T) {
	an := textproc.NewAnalyzer(textproc.WithStemming(false), textproc.WithStopWords(nil))
	spec := collection.Spec{
		Name: "e2e", Docs: 600, AvgLen: 90,
		Vocab: 1500, TailVocab: 2500, Seed: 77,
	}

	// --- Build. ---
	fs := vfs.New(vfs.Options{BlockSize: vfs.DefaultBlockSize, OSCacheBytes: 1 << 20})
	stats, err := core.Build(fs, "e2e", spec.Stream(), core.BuildOptions{Analyzer: an})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Docs != 600 || stats.Records == 0 {
		t.Fatalf("build stats = %+v", stats)
	}

	// --- Persist and reload the file-system image. ---
	var img bytes.Buffer
	if err := fs.DumpImage(&img); err != nil {
		t.Fatal(err)
	}
	fs2, err := vfs.LoadImage(bytes.NewReader(img.Bytes()), vfs.Options{OSCacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}

	// --- Open both backends on the reloaded image. ---
	bt, err := core.Open(fs2, "e2e", core.BackendBTree, core.WithAnalyzer(an))
	if err != nil {
		t.Fatal(err)
	}
	defer bt.Close()
	mn, err := core.Open(fs2, "e2e", core.BackendMneme,
		core.WithAnalyzer(an),
		core.WithPlan(core.BufferPlan{SmallBytes: 12 << 10, MediumBytes: 48 << 10, LargeBytes: 128 << 10}))
	if err != nil {
		t.Fatal(err)
	}
	defer mn.Close()

	// --- Queries from the collection's own generator. ---
	queries := spec.GenQueries(collection.QuerySpec{
		Name: "q", Queries: 25, MeanTerms: 8,
		Style: collection.StyleBoolean, Repeat: 0.4, Seed: 9,
	})
	for _, q := range queries {
		r1, err := bt.Search(q.Text, 10)
		if err != nil {
			t.Fatalf("btree %s: %v", q.ID, err)
		}
		r2, err := mn.Search(q.Text, 10)
		if err != nil {
			t.Fatalf("mneme %s: %v", q.ID, err)
		}
		if len(r1) != len(r2) {
			t.Fatalf("%s: result counts differ", q.ID)
		}
		for i := range r1 {
			if r1[i].Doc != r2[i].Doc || math.Abs(r1[i].Score-r2[i].Score) > 1e-12 {
				t.Fatalf("%s rank %d: %v vs %v", q.ID, i, r1[i], r2[i])
			}
		}
	}

	// --- Both engines performed identical retrieval work. ---
	if bt.Counters().Lookups != mn.Counters().Lookups {
		t.Fatalf("lookup counts differ: %d vs %d", bt.Counters().Lookups, mn.Counters().Lookups)
	}

	// --- Explain agrees with the ranked score on the top document. ---
	if r, _ := mn.Search(queries[0].Text, 1); len(r) > 0 {
		ex, err := mn.Explain(queries[0].Text, r[0].Doc)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ex.Belief-r[0].Score) > 1e-12 {
			t.Fatalf("explain %.6f vs score %.6f", ex.Belief, r[0].Score)
		}
	}

	// --- Recall/precision machinery on a fabricated judgment. ---
	res, _ := mn.Search(queries[0].Text, 20)
	if len(res) > 2 {
		rel := map[uint32]bool{res[0].Doc: true, res[2].Doc: true}
		ranked := make([]uint32, len(res))
		for i, r := range res {
			ranked[i] = r.Doc
		}
		m := eval.Evaluate(ranked, rel)
		if m.Recall != 1 || m.AveragePrecision <= 0 {
			t.Fatalf("eval metrics = %+v", m)
		}
	}

	// --- Incremental update on the Mneme side only. ---
	newDoc := "t26 t27 t28 freshterm"
	id, err := mn.AddDocument(newDoc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := mn.Search("freshterm", 0)
	if err != nil || len(got) != 1 || got[0].Doc != id {
		t.Fatalf("new doc not searchable: %v %v", got, err)
	}
	if err := mn.SaveMeta(); err != nil {
		t.Fatal(err)
	}

	// --- Store reorganization preserves everything. ---
	st, err := mneme.Open(fs2, "e2e.mn")
	if err != nil {
		t.Fatal(err)
	}
	copyStore, err := st.CopyTo("e2e.compact")
	if err != nil {
		t.Fatal(err)
	}
	live := 0
	copyStore.ForEach(func(mneme.ObjectID, int) bool { live++; return true })
	orig := 0
	st.ForEach(func(mneme.ObjectID, int) bool { orig++; return true })
	if live != orig {
		t.Fatalf("copy has %d objects, source %d", live, orig)
	}
	if err := copyStore.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestEndToEndChunkedPipeline repeats the core of the pipeline with
// chunked large lists enabled, including document-at-a-time search.
func TestEndToEndChunkedPipeline(t *testing.T) {
	an := textproc.NewAnalyzer(textproc.WithStemming(false), textproc.WithStopWords(nil))
	spec := collection.Spec{
		Name: "e2ec", Docs: 1200, AvgLen: 100,
		Vocab: 1200, TailVocab: 2000, StopRanks: 4, Seed: 13,
	}
	const chunk = 1500

	fs := vfs.New(vfs.Options{BlockSize: vfs.DefaultBlockSize, OSCacheBytes: 1 << 20})
	if _, err := core.Build(fs, "c", spec.Stream(), core.BuildOptions{
		Analyzer:        an,
		Backends:        []core.BackendKind{core.BackendMneme},
		ChunkLargeLists: chunk,
	}); err != nil {
		t.Fatal(err)
	}
	e, err := core.Open(fs, "c", core.BackendMneme,
		core.WithAnalyzer(an),
		core.WithPlan(core.BufferPlan{MediumBytes: 64 << 10, LargeBytes: 64 << 10}),
		core.WithChunking(chunk))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	queries := spec.GenQueries(collection.QuerySpec{
		Name: "q", Queries: 15, MeanTerms: 6,
		Style: collection.StyleWords, Repeat: 0.3, Seed: 2,
	})
	for _, q := range queries {
		taat, err := e.Search(q.Text, 10)
		if err != nil {
			t.Fatal(err)
		}
		daat, err := e.SearchDAAT(q.Text, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(taat) != len(daat) {
			t.Fatalf("%s: TAAT %d vs DAAT %d", q.ID, len(taat), len(daat))
		}
		for i := range taat {
			if taat[i].Doc != daat[i].Doc || math.Abs(taat[i].Score-daat[i].Score) > 1e-12 {
				t.Fatalf("%s rank %d: %v vs %v", q.ID, i, taat[i], daat[i])
			}
		}
	}
}
