package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/vfs"
)

func newFS() *vfs.FS {
	return vfs.New(vfs.Options{BlockSize: 8192, OSCacheBytes: 1 << 22})
}

func recFor(key uint32, size int) []byte {
	rec := make([]byte, size)
	rng := rand.New(rand.NewSource(int64(key)))
	rng.Read(rec)
	return rec
}

func TestCreateOpenEmpty(t *testing.T) {
	fs := newFS()
	tr, err := Create(fs, "idx", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := tr.Lookup(1); err != nil || ok {
		t.Fatalf("Lookup on empty = %v, %v", ok, err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	tr2, err := Open(fs, "idx", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st := tr2.Stats(); st.Records != 0 || st.Height != 1 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	fs := newFS()
	f, _ := fs.Create("junk")
	f.WriteAt(bytes.Repeat([]byte{0xFF}, PageSize*2), 0)
	if _, err := Open(fs, "junk", Options{}); err == nil {
		t.Fatal("Open succeeded on garbage")
	}
	if _, err := Open(fs, "missing", Options{}); err == nil {
		t.Fatal("Open succeeded on missing file")
	}
}

func TestInsertLookupInline(t *testing.T) {
	fs := newFS()
	tr, _ := Create(fs, "idx", Options{})
	for i := uint32(0); i < 100; i++ {
		if err := tr.Insert(i*3, recFor(i, 20)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint32(0); i < 100; i++ {
		rec, ok, err := tr.Lookup(i * 3)
		if err != nil || !ok {
			t.Fatalf("Lookup(%d) = %v, %v", i*3, ok, err)
		}
		if !bytes.Equal(rec, recFor(i, 20)) {
			t.Fatalf("Lookup(%d) wrong data", i*3)
		}
	}
	if _, ok, _ := tr.Lookup(1); ok {
		t.Fatal("found absent key")
	}
}

func TestInsertLookupExtent(t *testing.T) {
	fs := newFS()
	tr, _ := Create(fs, "idx", Options{})
	sizes := []int{InlineMax + 1, PageSize, PageSize*3 + 17, 100_000}
	for i, size := range sizes {
		if err := tr.Insert(uint32(i), recFor(uint32(i), size)); err != nil {
			t.Fatal(err)
		}
	}
	for i, size := range sizes {
		rec, ok, err := tr.Lookup(uint32(i))
		if err != nil || !ok || len(rec) != size {
			t.Fatalf("Lookup(%d): ok=%v err=%v len=%d want %d", i, ok, err, len(rec), size)
		}
		if !bytes.Equal(rec, recFor(uint32(i), size)) {
			t.Fatalf("Lookup(%d) wrong data", i)
		}
	}
}

func TestInsertReplace(t *testing.T) {
	fs := newFS()
	tr, _ := Create(fs, "idx", Options{})
	tr.Insert(7, []byte("old"))
	tr.Insert(7, []byte("new-longer-record"))
	rec, ok, _ := tr.Lookup(7)
	if !ok || string(rec) != "new-longer-record" {
		t.Fatalf("after replace: %q, %v", rec, ok)
	}
	if tr.Stats().Records != 1 {
		t.Fatalf("Records = %d", tr.Stats().Records)
	}
	// Replace inline with extent and back.
	tr.Insert(7, recFor(7, 5000))
	rec, ok, _ = tr.Lookup(7)
	if !ok || !bytes.Equal(rec, recFor(7, 5000)) {
		t.Fatal("inline->extent replace failed")
	}
	tr.Insert(7, []byte("tiny"))
	rec, ok, _ = tr.Lookup(7)
	if !ok || string(rec) != "tiny" {
		t.Fatal("extent->inline replace failed")
	}
}

func TestSplitsAndHeightGrowth(t *testing.T) {
	fs := newFS()
	tr, _ := Create(fs, "idx", Options{})
	const n = 20000
	perm := rand.New(rand.NewSource(9)).Perm(n)
	for _, k := range perm {
		if err := tr.Insert(uint32(k), recFor(uint32(k), 40)); err != nil {
			t.Fatal(err)
		}
	}
	st := tr.Stats()
	if st.Records != n {
		t.Fatalf("Records = %d", st.Records)
	}
	if st.Height < 2 {
		t.Fatalf("Height = %d, expected splits to raise it", st.Height)
	}
	for i := 0; i < n; i += 97 {
		rec, ok, err := tr.Lookup(uint32(i))
		if err != nil || !ok || !bytes.Equal(rec, recFor(uint32(i), 40)) {
			t.Fatalf("Lookup(%d) after splits: ok=%v err=%v", i, ok, err)
		}
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	fs := newFS()
	tr, _ := Create(fs, "idx", Options{})
	for i := uint32(0); i < 3000; i++ {
		tr.Insert(i, recFor(i, int(i%600)+1))
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	tr2, err := Open(fs, "idx", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Stats().Records != 3000 {
		t.Fatalf("Records after reopen = %d", tr2.Stats().Records)
	}
	for i := uint32(0); i < 3000; i += 113 {
		rec, ok, err := tr2.Lookup(i)
		if err != nil || !ok || !bytes.Equal(rec, recFor(i, int(i%600)+1)) {
			t.Fatalf("Lookup(%d) after reopen failed", i)
		}
	}
}

func TestDelete(t *testing.T) {
	fs := newFS()
	tr, _ := Create(fs, "idx", Options{})
	for i := uint32(0); i < 500; i++ {
		tr.Insert(i, recFor(i, 30))
	}
	ok, err := tr.Delete(250)
	if err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	if _, found, _ := tr.Lookup(250); found {
		t.Fatal("deleted key still present")
	}
	if ok, _ := tr.Delete(250); ok {
		t.Fatal("double delete reported true")
	}
	if tr.Stats().Records != 499 {
		t.Fatalf("Records = %d", tr.Stats().Records)
	}
	// Neighbours survive.
	if _, found, _ := tr.Lookup(249); !found {
		t.Fatal("neighbour lost")
	}
}

func TestRange(t *testing.T) {
	fs := newFS()
	tr, _ := Create(fs, "idx", Options{})
	keys := []uint32{5, 1, 9, 3, 7}
	for _, k := range keys {
		tr.Insert(k, []byte{byte(k)})
	}
	var got []uint32
	if err := tr.Range(func(k uint32, rec []byte) bool {
		got = append(got, k)
		if rec[0] != byte(k) {
			t.Fatalf("record mismatch at key %d", k)
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := []uint32{1, 3, 5, 7, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range order = %v", got)
		}
	}
	// Early stop.
	count := 0
	tr.Range(func(uint32, []byte) bool { count++; return count < 2 })
	if count != 2 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestBulkLoad(t *testing.T) {
	fs := newFS()
	tr, _ := Create(fs, "idx", Options{})
	const n = 50000
	i := uint32(0)
	err := tr.BulkLoad(func() (uint32, []byte, bool) {
		if i >= n {
			return 0, nil, false
		}
		k := i
		i++
		size := 8 + int(k%64)
		return k * 2, recFor(k, size), true
	})
	if err != nil {
		t.Fatal(err)
	}
	st := tr.Stats()
	if st.Records != n {
		t.Fatalf("Records = %d", st.Records)
	}
	if st.Height < 2 {
		t.Fatalf("Height = %d", st.Height)
	}
	for k := uint32(0); k < n; k += 773 {
		rec, ok, err := tr.Lookup(k * 2)
		if err != nil || !ok {
			t.Fatalf("Lookup(%d) = %v, %v", k*2, ok, err)
		}
		if !bytes.Equal(rec, recFor(k, 8+int(k%64))) {
			t.Fatalf("Lookup(%d) wrong data", k*2)
		}
		if _, ok, _ := tr.Lookup(k*2 + 1); ok {
			t.Fatalf("odd key %d unexpectedly present", k*2+1)
		}
	}
	// Bulk-loaded tree accepts subsequent inserts.
	if err := tr.Insert(n*2+5, []byte("post-load")); err != nil {
		t.Fatal(err)
	}
	rec, ok, _ := tr.Lookup(n*2 + 5)
	if !ok || string(rec) != "post-load" {
		t.Fatal("insert after bulk load failed")
	}
}

func TestBulkLoadEmptyAndErrors(t *testing.T) {
	fs := newFS()
	tr, _ := Create(fs, "idx", Options{})
	if err := tr.BulkLoad(func() (uint32, []byte, bool) { return 0, nil, false }); err != nil {
		t.Fatal(err)
	}
	if tr.Stats().Records != 0 {
		t.Fatal("empty bulk load produced records")
	}
	// Non-empty tree refuses bulk load.
	tr.Insert(1, []byte("x"))
	if err := tr.BulkLoad(func() (uint32, []byte, bool) { return 0, nil, false }); err != ErrNotEmpty {
		t.Fatalf("err = %v, want ErrNotEmpty", err)
	}
	// Out-of-order keys rejected.
	tr2, _ := Create(fs, "idx2", Options{})
	calls := 0
	err := tr2.BulkLoad(func() (uint32, []byte, bool) {
		calls++
		switch calls {
		case 1:
			return 5, []byte("a"), true
		case 2:
			return 5, []byte("b"), true
		}
		return 0, nil, false
	})
	if err == nil {
		t.Fatal("duplicate keys accepted")
	}
}

// TestLookupAccessCounts verifies the baseline's defining property: with
// only root pinning and a tiny node cache, a cold record lookup costs
// more than one file access, and the cost grows with tree height.
func TestLookupAccessCounts(t *testing.T) {
	fs := vfs.New(vfs.Options{BlockSize: 8192}) // no OS cache: count raw accesses
	tr, _ := Create(fs, "idx", Options{})
	const n = 200000
	i := uint32(0)
	tr.BulkLoad(func() (uint32, []byte, bool) {
		if i >= n {
			return 0, nil, false
		}
		k := i
		i++
		return k, recFor(k, 300), true // extent records: leaf + extent reads
	})
	if tr.Stats().Height < 3 {
		t.Fatalf("Height = %d, want >= 3 for this test", tr.Stats().Height)
	}
	fs.ResetStats()
	const lookups = 500
	rng := rand.New(rand.NewSource(3))
	for j := 0; j < lookups; j++ {
		if _, ok, err := tr.Lookup(uint32(rng.Intn(n))); !ok || err != nil {
			t.Fatal("lookup failed")
		}
	}
	a := float64(fs.Stats().FileAccesses) / lookups
	if a <= 1.5 {
		t.Fatalf("A = %.2f accesses/lookup, expected the baseline to exceed 1.5", a)
	}
}

// TestPropertyAgainstMap cross-checks a random operation sequence
// against a reference map.
func TestPropertyAgainstMap(t *testing.T) {
	fs := newFS()
	tr, _ := Create(fs, "idx", Options{})
	ref := make(map[uint32][]byte)
	rng := rand.New(rand.NewSource(21))
	for step := 0; step < 4000; step++ {
		key := uint32(rng.Intn(800))
		switch rng.Intn(4) {
		case 0, 1: // insert
			size := rng.Intn(900) + 1
			rec := make([]byte, size)
			rng.Read(rec)
			if err := tr.Insert(key, rec); err != nil {
				t.Fatalf("step %d: Insert: %v", step, err)
			}
			ref[key] = rec
		case 2: // delete
			ok, err := tr.Delete(key)
			if err != nil {
				t.Fatalf("step %d: Delete: %v", step, err)
			}
			if _, want := ref[key]; ok != want {
				t.Fatalf("step %d: Delete(%d) = %v, want %v", step, key, ok, want)
			}
			delete(ref, key)
		case 3: // lookup
			rec, ok, err := tr.Lookup(key)
			if err != nil {
				t.Fatalf("step %d: Lookup: %v", step, err)
			}
			want, present := ref[key]
			if ok != present {
				t.Fatalf("step %d: Lookup(%d) present = %v, want %v", step, key, ok, present)
			}
			if ok && !bytes.Equal(rec, want) {
				t.Fatalf("step %d: Lookup(%d) data mismatch", step, key)
			}
		}
		if tr.Stats().Records != int64(len(ref)) {
			t.Fatalf("step %d: Records = %d, ref = %d", step, tr.Stats().Records, len(ref))
		}
	}
	// Final full verification, including after reopen.
	tr.Close()
	tr2, err := Open(fs, "idx", Options{})
	if err != nil {
		t.Fatal(err)
	}
	for key, want := range ref {
		rec, ok, err := tr2.Lookup(key)
		if err != nil || !ok || !bytes.Equal(rec, want) {
			t.Fatalf("final Lookup(%d): ok=%v err=%v", key, ok, err)
		}
	}
}

// TestPropertyBulkLoadLookup via testing/quick: any strictly sorted key
// set bulk-loads into a tree where every key is retrievable.
func TestPropertyBulkLoadLookup(t *testing.T) {
	check := func(seed int64, nRaw uint16) bool {
		n := int(nRaw%2000) + 1
		rng := rand.New(rand.NewSource(seed))
		keys := make([]uint32, n)
		cur := uint32(0)
		for i := range keys {
			cur += uint32(rng.Intn(50) + 1)
			keys[i] = cur
		}
		fs := newFS()
		tr, _ := Create(fs, "idx", Options{})
		i := 0
		if err := tr.BulkLoad(func() (uint32, []byte, bool) {
			if i >= n {
				return 0, nil, false
			}
			k := keys[i]
			i++
			return k, recFor(k, int(k%500)+1), true
		}); err != nil {
			return false
		}
		for _, probe := range []int{0, n / 2, n - 1} {
			k := keys[probe]
			rec, ok, err := tr.Lookup(k)
			if err != nil || !ok || !bytes.Equal(rec, recFor(k, int(k%500)+1)) {
				return false
			}
		}
		return tr.Stats().Records == int64(n)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeCacheDisabled(t *testing.T) {
	fs := vfs.New(vfs.Options{BlockSize: 8192})
	tr, _ := Create(fs, "idx", Options{NodeCachePages: -1})
	for i := uint32(0); i < 5000; i++ {
		tr.Insert(i, recFor(i, 50))
	}
	fs.ResetStats()
	tr.Lookup(100)
	tr.Lookup(100)
	s := fs.Stats()
	// Two identical lookups cost identical access counts when nothing
	// but the root is cached.
	if s.FileAccesses%2 != 0 {
		t.Fatalf("FileAccesses = %d, want even", s.FileAccesses)
	}
}

func BenchmarkLookupCold(b *testing.B) {
	fs := vfs.New(vfs.Options{BlockSize: 8192, OSCacheBytes: 1 << 20})
	tr, _ := Create(fs, "idx", Options{})
	const n = 100000
	i := uint32(0)
	tr.BulkLoad(func() (uint32, []byte, bool) {
		if i >= n {
			return 0, nil, false
		}
		k := i
		i++
		return k, recFor(k, 100), true
	})
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for j := 0; j < b.N; j++ {
		tr.Lookup(uint32(rng.Intn(n)))
	}
}

func BenchmarkInsert(b *testing.B) {
	fs := newFS()
	tr, _ := Create(fs, fmt.Sprintf("idx%d", b.N), Options{})
	b.ResetTimer()
	for j := 0; j < b.N; j++ {
		tr.Insert(uint32(j), recFor(uint32(j), 64))
	}
}
