package btree

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomNode builds a random but valid node for round-trip testing.
func randomNode(rng *rand.Rand, leaf bool) *node {
	n := &node{page: rng.Uint32() % 1000, leaf: leaf}
	count := rng.Intn(40) + 1
	key := uint32(0)
	if leaf {
		for i := 0; i < count; i++ {
			key += uint32(rng.Intn(100) + 1)
			n.keys = append(n.keys, key)
			if rng.Intn(2) == 0 {
				inline := make([]byte, rng.Intn(InlineMax+1))
				rng.Read(inline)
				n.vals = append(n.vals, leafVal{inline: inline})
			} else {
				n.vals = append(n.vals, leafVal{
					extOff: rng.Int63n(1 << 40),
					extLen: uint32(rng.Intn(1<<20) + 1),
				})
			}
		}
		return n
	}
	n.children = append(n.children, rng.Uint32()%10000)
	for i := 0; i < count; i++ {
		key += uint32(rng.Intn(100) + 1)
		n.keys = append(n.keys, key)
		n.children = append(n.children, rng.Uint32()%10000)
	}
	return n
}

func nodesEqual(a, b *node) bool {
	if a.leaf != b.leaf || len(a.keys) != len(b.keys) {
		return false
	}
	for i := range a.keys {
		if a.keys[i] != b.keys[i] {
			return false
		}
	}
	if a.leaf {
		for i := range a.vals {
			av, bv := a.vals[i], b.vals[i]
			if av.extLen != bv.extLen || av.extOff != bv.extOff {
				return false
			}
			if !bytes.Equal(av.inline, bv.inline) {
				return false
			}
		}
		return true
	}
	for i := range a.children {
		if a.children[i] != b.children[i] {
			return false
		}
	}
	return true
}

// TestPropertyNodeSerializeRoundTrip: serialize∘parse is the identity
// for both node kinds.
func TestPropertyNodeSerializeRoundTrip(t *testing.T) {
	check := func(seed int64, leaf bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomNode(rng, leaf)
		if n.serializedSize() > PageSize {
			return true // skip over-full random nodes
		}
		got, err := parseNode(n.page, n.serialize())
		if err != nil {
			return false
		}
		return nodesEqual(n, got)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestParseNodeRejectsCorruption(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{9, 0, 0},                       // bad type
		{typeInternal, 0xFF, 0xFF},      // count overflows page
		{typeLeaf, 1, 0},                // truncated leaf entry
		{typeLeaf, 1, 0, 1, 2, 3, 4, 9}, // bad flag 9
	}
	for i, buf := range cases {
		padded := make([]byte, len(buf))
		copy(padded, buf)
		if _, err := parseNode(7, padded); err == nil {
			t.Errorf("case %d: corrupt page parsed", i)
		}
	}
	// Truncated inline length.
	buf := make([]byte, 10)
	buf[0] = typeLeaf
	buf[1] = 1 // count 1
	// key (4 bytes) + flagInline + inline length 200 > remaining
	buf[7] = flagInline
	buf[8] = 200
	if _, err := parseNode(7, buf); err == nil {
		t.Error("truncated inline parsed")
	}
}

func TestFIFOCacheBehaviour(t *testing.T) {
	c := newFIFOCache(2)
	n1, n2, n3 := &node{page: 1}, &node{page: 2}, &node{page: 3}
	c.put(1, n1)
	c.put(2, n2)
	// Re-putting does not duplicate or reorder.
	c.put(1, n1)
	c.put(3, n3) // evicts 1 (FIFO: first in)
	if _, ok := c.get(1); ok {
		t.Fatal("FIFO kept the first-in page")
	}
	if _, ok := c.get(2); !ok {
		t.Fatal("page 2 evicted early")
	}
	if _, ok := c.get(3); !ok {
		t.Fatal("page 3 missing")
	}
	// update on a cached page swaps the node in place.
	n2b := &node{page: 2, leaf: true}
	c.update(2, n2b)
	if got, _ := c.get(2); got != n2b {
		t.Fatal("update did not replace cached node")
	}
	// update on an absent page is a no-op.
	c.update(99, n1)
	if _, ok := c.get(99); ok {
		t.Fatal("update inserted absent page")
	}
	// Zero-capacity cache never stores.
	z := newFIFOCache(-1)
	z.put(1, n1)
	if _, ok := z.get(1); ok {
		t.Fatal("disabled cache stored a page")
	}
}

func TestSplitPointNeverEmpty(t *testing.T) {
	// A leaf whose last cell dominates the serialized size must still
	// split with a non-empty right half.
	n := &node{leaf: true}
	n.keys = []uint32{1, 2}
	n.vals = []leafVal{
		{inline: make([]byte, 10)},
		{inline: make([]byte, InlineMax)},
	}
	sp := n.splitPointLeaf()
	if sp <= 0 || sp >= len(n.keys) {
		t.Fatalf("split point %d of %d keys", sp, len(n.keys))
	}
}

func TestRangeAndDeleteInterleaved(t *testing.T) {
	fs := newFS()
	tr, _ := Create(fs, "idx", Options{})
	for i := uint32(0); i < 1000; i++ {
		tr.Insert(i, recFor(i, 20))
	}
	for i := uint32(0); i < 1000; i += 2 {
		tr.Delete(i)
	}
	count := 0
	tr.Range(func(k uint32, _ []byte) bool {
		if k%2 == 0 {
			t.Fatalf("deleted key %d visited", k)
		}
		count++
		return true
	})
	if count != 500 {
		t.Fatalf("Range visited %d, want 500", count)
	}
}
