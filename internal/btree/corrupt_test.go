package btree

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/resilience"
	"repro/internal/vfs"
)

// buildTree creates a tree tall enough that lookups traverse uncached
// leaf pages, and returns it with the number of keys inserted.
func buildTree(t *testing.T, fs *vfs.FS, name string) (*Tree, int) {
	t.Helper()
	tr, err := Create(fs, name, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const keys = 600
	for i := 0; i < keys; i++ {
		rec := []byte(fmt.Sprintf("record-%04d-payload-padding-to-leave-inline", i))
		if err := tr.Insert(uint32(i), rec); err != nil {
			t.Fatal(err)
		}
	}
	if tr.height < 2 {
		t.Fatalf("tree height %d; want >= 2 so leaves are read from disk", tr.height)
	}
	return tr, keys
}

// leftmostLeafPage descends to the first leaf and returns its page.
func leftmostLeafPage(t *testing.T, tr *Tree) uint32 {
	t.Helper()
	n := tr.root
	for !n.leaf {
		next, err := tr.readNode(n.children[0])
		if err != nil {
			t.Fatal(err)
		}
		n = next
	}
	return n.page
}

func TestNodeChecksumDetectsFlippedByte(t *testing.T) {
	fs := vfs.New(vfs.Options{})
	tr, _ := buildTree(t, fs, "flip.bt")
	leaf := leftmostLeafPage(t, tr)
	if err := fs.FlipByte("flip.bt", int64(leaf)*PageSize+17, 0x20); err != nil {
		t.Fatal(err)
	}
	// Key 0 lives in the leftmost leaf; leaves are never cached, so the
	// lookup re-reads the rotted page.
	_, _, err := tr.Lookup(0)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("lookup of rotted leaf: want ErrCorrupt, got %v", err)
	}
	// Keys in other leaves remain readable.
	if _, ok, err := tr.Lookup(599); err != nil || !ok {
		t.Fatalf("lookup in intact leaf: ok=%v err=%v", ok, err)
	}
}

func TestNodeChecksumDetectsTornWrite(t *testing.T) {
	// A 512-byte disk block makes a 4096-byte page write tear mid-page.
	fs := vfs.New(vfs.Options{BlockSize: 512})
	tr, _ := buildTree(t, fs, "torn.bt")
	fs.SetFaultPlan(vfs.NewFaultPlan(1).FailWrite(1).WithTear())
	// Replacing key 0 rewrites the leftmost leaf first (inline record,
	// so the node write is the insert's first file write); the tear
	// leaves the page half old, half new.
	err := tr.Insert(0, []byte("replacement"))
	if !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("insert under torn-write plan: want ErrInjected, got %v", err)
	}
	fs.SetFaultPlan(nil)
	_, _, err = tr.Lookup(0)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("lookup of torn leaf: want ErrCorrupt, got %v", err)
	}
}

func TestOpenDetectsHeaderRot(t *testing.T) {
	fs := vfs.New(vfs.Options{})
	tr, _ := buildTree(t, fs, "hdr.bt")
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.FlipByte("hdr.bt", 9, 0x01); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(fs, "hdr.bt", Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open with rotted header: want ErrCorrupt, got %v", err)
	}
}

func TestReopenAfterCleanCloseVerifies(t *testing.T) {
	fs := vfs.New(vfs.Options{})
	tr, keys := buildTree(t, fs, "clean.bt")
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(fs, "clean.bt", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	var n int
	if err := re.Range(func(key uint32, rec []byte) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != keys {
		t.Fatalf("reopened tree has %d records, want %d", n, keys)
	}
}

// TestTreeRetryRecoversTransientFault: a transient injected read on a
// node page or extent is recovered by the guard's retry budget.
func TestTreeRetryRecoversTransientFault(t *testing.T) {
	fs := vfs.New(vfs.Options{BlockSize: 8192})
	tr, keys := buildTree(t, fs, "rt.bt")
	defer tr.Close()
	retry := resilience.NewRetry(resilience.DefaultRetryPolicy())
	tr.SetResilience(&resilience.Guard{Label: "btree", Retry: retry})

	fs.SetFaultPlan(vfs.NewFaultPlan(1).FailReadEvery(1).Once())
	rec, ok, err := tr.Lookup(uint32(keys / 2))
	if err != nil || !ok {
		t.Fatalf("Lookup with transient fault: ok=%v err=%v", ok, err)
	}
	if len(rec) == 0 {
		t.Fatal("empty record")
	}
	if retry.Retries() != 1 {
		t.Fatalf("Retries = %d, want 1", retry.Retries())
	}
	fs.SetFaultPlan(nil)
}

// TestTreeBreakerFailsFast: a persistent outage opens the tree's
// breaker; while open, lookups needing uncached pages fail fast with
// ErrBreakerOpen and do not touch the file.
func TestTreeBreakerFailsFast(t *testing.T) {
	fs := vfs.New(vfs.Options{BlockSize: 8192})
	tr, keys := buildTree(t, fs, "bk.bt")
	defer tr.Close()
	br := resilience.NewBreaker(resilience.BreakerPolicy{FailureThreshold: 2, Cooldown: 100})
	tr.SetResilience(&resilience.Guard{Label: "btree", Breaker: br})

	fs.SetFaultPlan(vfs.NewFaultPlan(1).FailReadEvery(1))
	for i := 0; i < 2; i++ {
		if _, _, err := tr.Lookup(uint32(i)); !errors.Is(err, vfs.ErrInjected) {
			t.Fatalf("Lookup #%d = %v, want ErrInjected", i, err)
		}
	}
	if br.State() != resilience.Open {
		t.Fatalf("breaker state = %v, want Open", br.State())
	}
	before := fs.Stats().FileAccesses
	if _, _, err := tr.Lookup(uint32(keys - 1)); !errors.Is(err, resilience.ErrBreakerOpen) {
		t.Fatalf("open breaker Lookup = %v, want ErrBreakerOpen", err)
	}
	if got := fs.Stats().FileAccesses; got != before {
		t.Fatalf("open breaker touched the file: %d accesses, want %d", got, before)
	}
	fs.SetFaultPlan(nil)
}

// TestTreeCorruptionNotRetried: a rotted page is corruption, not a
// transient fault — the retry budget is not spent on it.
func TestTreeCorruptionNotRetried(t *testing.T) {
	fs := vfs.New(vfs.Options{BlockSize: 8192})
	tr, _ := buildTree(t, fs, "rot2.bt")
	defer tr.Close()
	retry := resilience.NewRetry(resilience.DefaultRetryPolicy())
	tr.SetResilience(&resilience.Guard{Label: "btree", Retry: retry})

	page := leftmostLeafPage(t, tr)
	if err := fs.FlipByte("rot2.bt", int64(page)*PageSize+10, 0x08); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tr.Lookup(0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Lookup = %v, want ErrCorrupt", err)
	}
	if retry.Retries() != 0 {
		t.Fatalf("Retries = %d, want 0 (corruption is not retryable)", retry.Retries())
	}
}
