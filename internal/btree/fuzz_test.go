package btree

import (
	"bytes"
	"testing"

	"repro/internal/vfs"
)

// FuzzBTreeInsertLookup drives the tree with an arbitrary op sequence —
// inserts (including replacements and extent-sized records), deletes,
// and lookups — checked against a map oracle, then closes, reopens, and
// re-verifies every surviving key. The properties under attack: no op
// sequence may panic or corrupt the tree, lookups always agree with the
// oracle, and everything inserted survives a reopen.
func FuzzBTreeInsertLookup(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 1, 10, 1, 0, 1, 2, 0, 1})            // insert, delete, lookup
	f.Add([]byte{0, 1, 0, 255, 0, 1, 1, 200, 2, 1, 0})      // extent-sized record
	f.Add(bytes.Repeat([]byte{0, 7, 7, 3}, 64))             // many replacements of one key
	f.Add([]byte{0, 0, 1, 0, 0, 0, 2, 1, 0, 0, 0, 2, 1, 1}) // mixed

	f.Fuzz(func(t *testing.T, data []byte) {
		fs := vfs.New(vfs.Options{BlockSize: vfs.DefaultBlockSize, OSCacheBytes: 1 << 20})
		tr, err := Create(fs, "fuzz.bt", Options{})
		if err != nil {
			t.Fatal(err)
		}
		oracle := make(map[uint32][]byte)

		// Each op consumes 3 bytes: opcode, then a 2-byte key. Inserts
		// consume one more byte scaled to cover both inline and extent
		// records (0..4335 bytes, across the page-extent threshold).
		for len(data) >= 3 {
			op, key := data[0]%3, uint32(data[1])<<8|uint32(data[2])
			data = data[3:]
			switch op {
			case 0:
				n := 0
				if len(data) > 0 {
					n = int(data[0]) * 17
					data = data[1:]
				}
				rec := bytes.Repeat([]byte{byte(key), byte(key >> 8)}, (n+1)/2)[:n]
				if err := tr.Insert(key, rec); err != nil {
					t.Fatalf("insert %d (%d bytes): %v", key, n, err)
				}
				oracle[key] = rec
			case 1:
				ok, err := tr.Delete(key)
				if err != nil {
					t.Fatalf("delete %d: %v", key, err)
				}
				if _, want := oracle[key]; ok != want {
					t.Fatalf("delete %d reported %v, oracle has %v", key, ok, want)
				}
				delete(oracle, key)
			case 2:
				rec, ok, err := tr.Lookup(key)
				if err != nil {
					t.Fatalf("lookup %d: %v", key, err)
				}
				want, inOracle := oracle[key]
				if ok != inOracle {
					t.Fatalf("lookup %d found=%v, oracle has %v", key, ok, inOracle)
				}
				if ok && !bytes.Equal(rec, want) {
					t.Fatalf("lookup %d returned %d bytes, want %d", key, len(rec), len(want))
				}
			}
		}

		verify := func(tr *Tree, phase string) {
			for key, want := range oracle {
				rec, ok, err := tr.Lookup(key)
				if err != nil {
					t.Fatalf("%s: lookup %d: %v", phase, key, err)
				}
				if !ok {
					t.Fatalf("%s: key %d lost", phase, key)
				}
				if !bytes.Equal(rec, want) {
					t.Fatalf("%s: key %d: got %d bytes, want %d", phase, key, len(rec), len(want))
				}
			}
			n := 0
			if err := tr.Range(func(uint32, []byte) bool { n++; return true }); err != nil {
				t.Fatalf("%s: range: %v", phase, err)
			}
			if n != len(oracle) {
				t.Fatalf("%s: range saw %d records, oracle has %d", phase, n, len(oracle))
			}
		}
		verify(tr, "live")
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		tr2, err := Open(fs, "fuzz.bt", Options{})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer tr2.Close()
		verify(tr2, "reopened")
	})
}
