package btree

import (
	"errors"
	"fmt"
)

// ErrNotEmpty is returned by BulkLoad on a tree that already has records.
var ErrNotEmpty = errors.New("btree: bulk load requires an empty tree")

// leafFill is the target fraction of a page filled during bulk load.
// The slack mirrors the legacy package's loose leaves (the paper's
// B-tree file is larger per record than Mneme's for CACM) and leaves
// room for later single-document insertions.
const leafFill = PageSize * 55 / 100

// maxFanout bounds internal-node width during bulk load. The narrow
// fanout (a sixteenth of what a page could hold) reflects the legacy
// package's sparse index nodes and gives the tree the paper's height
// growth: taller trees on bigger collections mean more file accesses
// per lookup (Table 5's rising "A" column).
const maxFanout = 32

// BulkLoad builds the tree bottom-up from a stream of records in
// strictly ascending key order — the batch "creation" operation the
// paper describes, where "the inverted list entries for every term
// appearance in the collection are sorted by term identifier". next
// returns ok=false at end of stream.
func (t *Tree) BulkLoad(next func() (key uint32, rec []byte, ok bool)) error {
	if t.count != 0 || t.height != 1 || len(t.root.keys) != 0 {
		return ErrNotEmpty
	}

	type childRef struct {
		firstKey uint32
		page     uint32
	}
	var level []childRef

	cur := &node{page: t.allocPage(), leaf: true}
	prevKey := int64(-1)
	flush := func() error {
		if len(cur.keys) == 0 {
			return nil
		}
		if err := t.writeNode(cur); err != nil {
			return err
		}
		level = append(level, childRef{firstKey: cur.keys[0], page: cur.page})
		cur = &node{page: t.allocPage(), leaf: true}
		return nil
	}

	for {
		key, rec, ok := next()
		if !ok {
			break
		}
		if int64(key) <= prevKey {
			return fmt.Errorf("btree: bulk load keys out of order: %d after %d", key, prevKey)
		}
		prevKey = int64(key)
		v, err := t.storeValue(rec)
		if err != nil {
			return err
		}
		if cur.serializedSize()+leafCellSize(&v) > leafFill && len(cur.keys) > 0 {
			if err := flush(); err != nil {
				return err
			}
		}
		cur.keys = append(cur.keys, key)
		cur.vals = append(cur.vals, v)
		t.count++
	}
	if err := flush(); err != nil {
		return err
	}

	if len(level) == 0 {
		// Empty input: keep the original empty root leaf.
		return t.writeHeader()
	}

	// Build internal levels until a single root remains.
	height := 1
	for len(level) > 1 {
		var parents []childRef
		for i := 0; i < len(level); {
			end := i + maxFanout
			if end > len(level) {
				end = len(level)
			}
			n := &node{page: t.allocPage()}
			n.children = append(n.children, level[i].page)
			for j := i + 1; j < end; j++ {
				n.keys = append(n.keys, level[j].firstKey)
				n.children = append(n.children, level[j].page)
			}
			if err := t.writeNode(n); err != nil {
				return err
			}
			parents = append(parents, childRef{firstKey: level[i].firstKey, page: n.page})
			i = end
		}
		level = parents
		height++
	}

	root, err := t.readNode(level[0].page)
	if err != nil {
		return err
	}
	t.root = root
	t.height = height
	return t.writeHeader()
}
