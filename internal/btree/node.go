package btree

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"

	"repro/internal/obs"
)

// leafVal is a leaf cell payload: either an inline record or a pointer
// to a contiguous page extent. extLen == 0 means inline.
type leafVal struct {
	inline []byte
	extOff int64
	extLen uint32
}

// node is the in-memory image of one tree page.
type node struct {
	page     uint32
	leaf     bool
	keys     []uint32
	children []uint32  // internal only; len(children) == len(keys)+1
	vals     []leafVal // leaf only; parallel to keys
}

// childIndex returns the index of the child subtree covering key:
// children[i] holds keys < keys[i]; children[len(keys)] holds the rest.
func (n *node) childIndex(key uint32) int {
	return sort.Search(len(n.keys), func(i int) bool { return key < n.keys[i] })
}

// childFor returns the page of the child subtree covering key.
func (n *node) childFor(key uint32) uint32 {
	return n.children[n.childIndex(key)]
}

// findLeaf locates key within a leaf, returning its index and presence;
// when absent, the index is the insertion point.
func (n *node) findLeaf(key uint32) (int, bool) {
	i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
	return i, i < len(n.keys) && n.keys[i] == key
}

// serializedSize returns the page bytes the node would occupy.
func (n *node) serializedSize() int {
	if !n.leaf {
		return 3 + 4 + 8*len(n.keys)
	}
	size := 3
	for i := range n.keys {
		size += leafCellSize(&n.vals[i])
	}
	return size
}

func leafCellSize(v *leafVal) int {
	if v.extLen == 0 {
		return 4 + 1 + 2 + len(v.inline)
	}
	return 4 + 1 + 12
}

// splitPointLeaf picks the index at which to split so each half fits a
// page, balancing by serialized size.
func (n *node) splitPointLeaf() int {
	total := n.serializedSize() - 3
	acc := 0
	for i := range n.keys {
		acc += leafCellSize(&n.vals[i])
		if acc >= total/2 {
			// Never produce an empty right half.
			if i+1 >= len(n.keys) {
				return len(n.keys) - 1
			}
			return i + 1
		}
	}
	return len(n.keys) / 2
}

// serialize renders the node into a page-sized buffer, with the CRC32
// of the payload in the trailing pageCRCBytes.
func (n *node) serialize() []byte {
	buf := make([]byte, PageSize)
	if n.leaf {
		buf[0] = typeLeaf
	} else {
		buf[0] = typeInternal
	}
	binary.LittleEndian.PutUint16(buf[1:], uint16(len(n.keys)))
	off := 3
	if !n.leaf {
		binary.LittleEndian.PutUint32(buf[off:], n.children[0])
		off += 4
		for i, k := range n.keys {
			binary.LittleEndian.PutUint32(buf[off:], k)
			binary.LittleEndian.PutUint32(buf[off+4:], n.children[i+1])
			off += 8
		}
		return stampPage(buf)
	}
	for i, k := range n.keys {
		binary.LittleEndian.PutUint32(buf[off:], k)
		off += 4
		v := &n.vals[i]
		if v.extLen == 0 {
			buf[off] = flagInline
			binary.LittleEndian.PutUint16(buf[off+1:], uint16(len(v.inline)))
			off += 3
			copy(buf[off:], v.inline)
			off += len(v.inline)
		} else {
			buf[off] = flagExtent
			binary.LittleEndian.PutUint64(buf[off+1:], uint64(v.extOff))
			binary.LittleEndian.PutUint32(buf[off+9:], v.extLen)
			off += 13
		}
	}
	return stampPage(buf)
}

// stampPage writes the payload checksum into the page trailer.
func stampPage(buf []byte) []byte {
	binary.LittleEndian.PutUint32(buf[pagePayload:], crc32.ChecksumIEEE(buf[:pagePayload]))
	return buf
}

// parseNode decodes a page image.
func parseNode(page uint32, buf []byte) (*node, error) {
	if len(buf) < 3 {
		return nil, fmt.Errorf("%w: short page %d", ErrCorrupt, page)
	}
	n := &node{page: page}
	count := int(binary.LittleEndian.Uint16(buf[1:]))
	off := 3
	switch buf[0] {
	case typeInternal:
		if off+4+8*count > len(buf) {
			return nil, fmt.Errorf("%w: internal page %d overflow", ErrCorrupt, page)
		}
		n.children = make([]uint32, 0, count+1)
		n.children = append(n.children, binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		n.keys = make([]uint32, 0, count)
		for i := 0; i < count; i++ {
			n.keys = append(n.keys, binary.LittleEndian.Uint32(buf[off:]))
			n.children = append(n.children, binary.LittleEndian.Uint32(buf[off+4:]))
			off += 8
		}
	case typeLeaf:
		n.leaf = true
		n.keys = make([]uint32, 0, count)
		n.vals = make([]leafVal, 0, count)
		for i := 0; i < count; i++ {
			if off+5 > len(buf) {
				return nil, fmt.Errorf("%w: leaf page %d overflow", ErrCorrupt, page)
			}
			n.keys = append(n.keys, binary.LittleEndian.Uint32(buf[off:]))
			off += 4
			flag := buf[off]
			off++
			switch flag {
			case flagInline:
				if off+2 > len(buf) {
					return nil, fmt.Errorf("%w: leaf page %d overflow", ErrCorrupt, page)
				}
				l := int(binary.LittleEndian.Uint16(buf[off:]))
				off += 2
				if off+l > len(buf) {
					return nil, fmt.Errorf("%w: leaf page %d overflow", ErrCorrupt, page)
				}
				n.vals = append(n.vals, leafVal{inline: append([]byte(nil), buf[off:off+l]...)})
				off += l
			case flagExtent:
				if off+12 > len(buf) {
					return nil, fmt.Errorf("%w: leaf page %d overflow", ErrCorrupt, page)
				}
				n.vals = append(n.vals, leafVal{
					extOff: int64(binary.LittleEndian.Uint64(buf[off:])),
					extLen: binary.LittleEndian.Uint32(buf[off+8:]),
				})
				off += 12
			default:
				return nil, fmt.Errorf("%w: leaf page %d bad flag %d", ErrCorrupt, page, flag)
			}
		}
	default:
		return nil, fmt.Errorf("%w: page %d bad type %d", ErrCorrupt, page, buf[0])
	}
	return n, nil
}

// readNode reads and parses a page from the file, bypassing the cache.
// The page's trailer checksum is verified first, so a torn page write
// or flipped bit surfaces as ErrCorrupt before any cell is decoded.
func (t *Tree) readNode(page uint32) (*node, error) {
	buf := make([]byte, PageSize)
	if err := t.readFull(buf, int64(page)*PageSize); err != nil {
		return nil, fmt.Errorf("btree: read page %d: %w", page, err)
	}
	want := binary.LittleEndian.Uint32(buf[pagePayload:])
	if got := crc32.ChecksumIEEE(buf[:pagePayload]); got != want {
		return nil, fmt.Errorf("%w: page %d checksum %08x, want %08x (torn write or bit rot)",
			ErrCorrupt, page, got, want)
	}
	if t.rec != nil {
		t.rec.Event(obs.EvNodeRead, "btree", 1)
	}
	return parseNode(page, buf[:pagePayload])
}

// readNodeCached reads a page, serving internal pages from the pinned
// root or the small FIFO cache when possible. Leaf pages are never
// cached — this is the baseline's documented unsophistication.
func (t *Tree) readNodeCached(page uint32) (*node, error) {
	if t.root != nil && page == t.root.page {
		return t.root, nil
	}
	if n, ok := t.cache.get(page); ok {
		return n, nil
	}
	n, err := t.readNode(page)
	if err != nil {
		return nil, err
	}
	if !n.leaf {
		t.cache.put(page, n)
	}
	return n, nil
}

// writeNode persists a node page and refreshes any cached copy.
func (t *Tree) writeNode(n *node) error {
	if n.serializedSize() > pagePayload {
		return fmt.Errorf("btree: node %d overflows page (%d bytes)", n.page, n.serializedSize())
	}
	if _, err := t.file.WriteAt(n.serialize(), int64(n.page)*PageSize); err != nil {
		return err
	}
	t.cache.update(n.page, n)
	return nil
}

// fifoCache is the limited, unsophisticated internal-node cache: a
// bounded FIFO with no recency tracking. It has its own lock because
// concurrent lookups — which hold the tree lock only shared — fill it.
type fifoCache struct {
	mu       sync.Mutex
	capacity int
	order    []uint32
	pages    map[uint32]*node
}

func newFIFOCache(capPages int) *fifoCache {
	switch {
	case capPages == 0:
		capPages = defaultNodeCachePages
	case capPages < 0:
		capPages = 0
	}
	return &fifoCache{capacity: capPages, pages: make(map[uint32]*node)}
}

func (c *fifoCache) get(page uint32) (*node, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.pages[page]
	return n, ok
}

func (c *fifoCache) put(page uint32, n *node) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.capacity == 0 {
		return
	}
	if _, ok := c.pages[page]; ok {
		c.pages[page] = n
		return
	}
	for len(c.order) >= c.capacity {
		old := c.order[0]
		c.order = c.order[1:]
		delete(c.pages, old)
	}
	c.order = append(c.order, page)
	c.pages[page] = n
}

// update refreshes a cached page in place without changing FIFO order.
func (c *fifoCache) update(page uint32, n *node) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.pages[page]; ok {
		c.pages[page] = n
	}
}
