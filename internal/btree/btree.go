// Package btree implements the custom keyed-file package that the
// original INQUERY system used to manage its inverted file index: "The
// inverted file index is organized as a keyed file, using term ids as
// keys and a B-tree index" (paper §3.1). It is the *baseline* the paper
// measures Mneme against, and it deliberately reproduces the baseline's
// weaknesses:
//
//   - "The B-tree version does limited and unsophisticated caching of
//     index nodes, such that every record lookup requires more than one
//     disk access. This problem gets worse as the file grows and the
//     height of the index tree increases." Only the root is pinned;
//     other internal nodes go through a tiny FIFO page cache; leaf pages
//     and record extents are always read from the file.
//   - No user-space caching of inverted-list records across lookups.
//
// The tree is a disk-resident B+tree over 4 Kbyte pages. Tiny records
// are stored inline in leaf cells; larger records occupy byte-aligned
// extents in a record heap within the same file. Space from replaced or
// deleted extents is not reclaimed — collections are archival, and the
// paper notes modification "requires the entire document collection to
// be re-indexed".
package btree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"

	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/vfs"
)

const (
	// PageSize is the tree's page size. The paper tunes Mneme's physical
	// segments to the 8 Kbyte disk transfer block; the legacy B-tree
	// package predates that insight and uses 4 Kbyte pages.
	PageSize = 4096

	// InlineMax is the largest record stored inside a leaf cell; larger
	// records live in byte-aligned heap extents and cost an extra file
	// access to fetch.
	InlineMax = 32

	// defaultNodeCachePages bounds the unsophisticated internal-node
	// cache (FIFO, excluding the pinned root).
	defaultNodeCachePages = 2

	magic       = uint32(0xB7EE1994)
	headerBytes = 40

	// pageCRCBytes is the per-page checksum trailer: the last 4 bytes of
	// every node page hold a CRC32 of the rest, so bit rot and torn page
	// writes are detected on read. Node payloads are limited to
	// pagePayload bytes.
	pageCRCBytes = 4
	pagePayload  = PageSize - pageCRCBytes

	typeInternal = 1
	typeLeaf     = 2

	flagInline = 0
	flagExtent = 1
)

// Errors returned by tree operations.
var (
	ErrCorrupt  = errors.New("btree: corrupt file")
	ErrNotFound = errors.New("btree: key not found")
)

// Options configures tree creation.
type Options struct {
	// NodeCachePages bounds the internal-node FIFO cache. Zero selects
	// the default; negative disables caching entirely (the root is
	// still pinned).
	NodeCachePages int
}

// Stats describes the tree's shape.
type Stats struct {
	Height  int   // levels including the leaf level (1 = root is a leaf)
	Pages   int64 // 4 Kbyte pages spanned, including header and extents
	Records int64 // live keys
}

// Tree is a disk B+tree keyed by term id. It is safe for concurrent
// use: lookups and scans share a read lock (the node cache has its own
// internal lock, since concurrent lookups fill it), while structural
// mutations take the lock exclusively.
type Tree struct {
	mu     sync.RWMutex
	file   *vfs.File
	root   *node // pinned in memory
	height int
	tail   int64 // next free byte offset (page 0 is the header)
	count  int64 // live records
	cache  *fifoCache
	// rec, when non-nil, receives a node-read event per uncached page
	// fetched from the file. Nil when tracing is off.
	rec obs.Recorder
	// guard, when non-nil, wraps node-page and extent reads with
	// transient-fault retry and a circuit breaker for the tree file.
	// Attached through SetResilience; nil costs one branch per read.
	guard *resilience.Guard
}

// SetResilience attaches (or, with nil, detaches) a fault-in guard
// wrapping every node-page and record-extent read. Retried reads are
// counted by the guard's Retry; a breaker that opens fails reads fast
// with an error chaining to resilience.ErrBreakerOpen (the pinned root
// and cached internal nodes keep being served).
func (t *Tree) SetResilience(g *resilience.Guard) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.guard = g
}

// transientRead classifies reads worth retrying: injected device faults
// and short reads, never checksum corruption (re-reading rotted bytes
// cannot help).
func transientRead(err error) bool {
	return errors.Is(err, vfs.ErrInjected) || errors.Is(err, io.ErrUnexpectedEOF)
}

// readFull reads through the guard when one is attached.
func (t *Tree) readFull(dst []byte, off int64) error {
	if t.guard == nil {
		return vfs.ReadFull(t.file, dst, off)
	}
	return t.guard.Do(func() error { return vfs.ReadFull(t.file, dst, off) }, transientRead)
}

// SetRecorder attaches (or, with nil, detaches) a trace recorder that
// observes uncached node page reads. Recorders are for single-stream
// diagnostic tracing: attach one only while no other goroutine is
// using the tree.
func (t *Tree) SetRecorder(r obs.Recorder) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rec = r
}

// Create makes a new empty tree in a new file.
func Create(fs *vfs.FS, name string, opts Options) (*Tree, error) {
	f, err := fs.Create(name)
	if err != nil {
		return nil, err
	}
	t := &Tree{file: f, height: 1, tail: 2 * PageSize, cache: newFIFOCache(opts.NodeCachePages)}
	t.root = &node{page: 1, leaf: true}
	if err := t.writeNode(t.root); err != nil {
		return nil, err
	}
	if err := t.writeHeader(); err != nil {
		return nil, err
	}
	return t, nil
}

// Open loads an existing tree; the root page is read and pinned.
func Open(fs *vfs.FS, name string, opts Options) (*Tree, error) {
	f, err := fs.Open(name)
	if err != nil {
		return nil, err
	}
	t := &Tree{file: f, cache: newFIFOCache(opts.NodeCachePages)}
	var hdr [headerBytes]byte
	if err := vfs.ReadFull(f, hdr[:], 0); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrCorrupt, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if crc32.ChecksumIEEE(hdr[:36]) != binary.LittleEndian.Uint32(hdr[36:]) {
		return nil, fmt.Errorf("%w: header checksum mismatch", ErrCorrupt)
	}
	rootPage := binary.LittleEndian.Uint32(hdr[4:])
	t.height = int(binary.LittleEndian.Uint32(hdr[8:]))
	t.tail = int64(binary.LittleEndian.Uint64(hdr[16:]))
	t.count = int64(binary.LittleEndian.Uint64(hdr[24:]))
	root, err := t.readNode(uint32(rootPage))
	if err != nil {
		return nil, err
	}
	t.root = root
	return t, nil
}

// Close flushes the header. The pinned root was written on every
// structural change, so no other state is dirty.
func (t *Tree) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.writeHeader(); err != nil {
		return err
	}
	return t.file.Close()
}

// Sync persists the header.
func (t *Tree) Sync() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.writeHeader()
}

// Stats reports the tree's current shape.
func (t *Tree) Stats() Stats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return Stats{Height: t.height, Pages: (t.tail + PageSize - 1) / PageSize, Records: t.count}
}

// SizeBytes reports the size of the backing file.
func (t *Tree) SizeBytes() int64 { return t.file.Size() }

// writeHeader persists the header, self-checksummed over its first 36
// bytes. Like the Mneme store header, it never spans a disk-block
// boundary, so the fault model treats its write as atomic.
func (t *Tree) writeHeader() error {
	var hdr [headerBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:], magic)
	binary.LittleEndian.PutUint32(hdr[4:], t.root.page)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(t.height))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(t.tail))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(t.count))
	binary.LittleEndian.PutUint32(hdr[36:], crc32.ChecksumIEEE(hdr[:36]))
	_, err := t.file.WriteAt(hdr[:], 0)
	return err
}

// allocPage reserves one page-aligned page and returns its number.
func (t *Tree) allocPage() uint32 {
	if rem := t.tail % PageSize; rem != 0 {
		t.tail += PageSize - rem
	}
	p := uint32(t.tail / PageSize)
	t.tail += PageSize
	return p
}

// allocExtent reserves size bytes in the record heap, 16-byte aligned.
// Record extents are packed at byte granularity; only node pages are
// page-aligned.
func (t *Tree) allocExtent(size int) int64 {
	if rem := t.tail % 16; rem != 0 {
		t.tail += 16 - rem
	}
	off := t.tail
	t.tail += int64(size)
	return off
}

// Lookup returns the record stored under key. The returned slice is
// freshly allocated. The boolean reports presence. Concurrent lookups
// are safe and proceed in parallel.
func (t *Tree) Lookup(key uint32) ([]byte, bool, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.root
	for !n.leaf {
		child := n.childFor(key)
		next, err := t.readNodeCached(child)
		if err != nil {
			return nil, false, err
		}
		n = next
	}
	i, ok := n.findLeaf(key)
	if !ok {
		return nil, false, nil
	}
	v := n.vals[i]
	if v.extLen == 0 {
		out := make([]byte, len(v.inline))
		copy(out, v.inline)
		return out, true, nil
	}
	rec := make([]byte, v.extLen)
	if err := t.readFull(rec, v.extOff); err != nil {
		return nil, false, err
	}
	return rec, true, nil
}

// Insert stores rec under key, replacing any existing record. Replaced
// extents are abandoned, not reclaimed.
func (t *Tree) Insert(key uint32, rec []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	v, err := t.storeValue(rec)
	if err != nil {
		return err
	}
	sep, right, replaced, err := t.insertInto(t.root, key, v)
	if err != nil {
		return err
	}
	if right != 0 {
		// Root split: grow the tree by one level.
		newRoot := &node{
			page:     t.allocPage(),
			keys:     []uint32{sep},
			children: []uint32{t.root.page, right},
		}
		if err := t.writeNode(newRoot); err != nil {
			return err
		}
		t.root = newRoot
		t.height++
	}
	if !replaced {
		t.count++
	}
	return t.writeHeader()
}

// storeValue decides inline-vs-extent placement and writes extents.
func (t *Tree) storeValue(rec []byte) (leafVal, error) {
	if len(rec) <= InlineMax {
		in := make([]byte, len(rec))
		copy(in, rec)
		return leafVal{inline: in}, nil
	}
	off := t.allocExtent(len(rec))
	if _, err := t.file.WriteAt(rec, off); err != nil {
		return leafVal{}, err
	}
	return leafVal{extOff: off, extLen: uint32(len(rec))}, nil
}

// insertInto descends from n, inserts, splits on overflow, and returns
// the separator key and new right-sibling page when a split propagates.
func (t *Tree) insertInto(n *node, key uint32, v leafVal) (sep uint32, right uint32, replaced bool, err error) {
	if n.leaf {
		i, ok := n.findLeaf(key)
		if ok {
			n.vals[i] = v
			replaced = true
		} else {
			n.keys = append(n.keys, 0)
			n.vals = append(n.vals, leafVal{})
			copy(n.keys[i+1:], n.keys[i:])
			copy(n.vals[i+1:], n.vals[i:])
			n.keys[i] = key
			n.vals[i] = v
		}
		if n.serializedSize() <= pagePayload {
			return 0, 0, replaced, t.writeNode(n)
		}
		sep, right, err = t.splitLeaf(n)
		return sep, right, replaced, err
	}

	ci := n.childIndex(key)
	child, err := t.readNodeCached(n.children[ci])
	if err != nil {
		return 0, 0, false, err
	}
	csep, cright, replaced, err := t.insertInto(child, key, v)
	if err != nil || cright == 0 {
		return 0, 0, replaced, err
	}
	// Child split: insert separator into this node.
	n.keys = append(n.keys, 0)
	copy(n.keys[ci+1:], n.keys[ci:])
	n.keys[ci] = csep
	n.children = append(n.children, 0)
	copy(n.children[ci+2:], n.children[ci+1:])
	n.children[ci+1] = cright
	if n.serializedSize() <= pagePayload {
		return 0, 0, replaced, t.writeNode(n)
	}
	sep, right, err = t.splitInternal(n)
	return sep, right, replaced, err
}

// splitLeaf moves the upper half (by serialized size) of n into a new
// right sibling and returns the separator (first key of the right node).
func (t *Tree) splitLeaf(n *node) (uint32, uint32, error) {
	half := n.splitPointLeaf()
	right := &node{
		page: t.allocPage(),
		leaf: true,
		keys: append([]uint32(nil), n.keys[half:]...),
		vals: append([]leafVal(nil), n.vals[half:]...),
	}
	n.keys = n.keys[:half]
	n.vals = n.vals[:half]
	if err := t.writeNode(n); err != nil {
		return 0, 0, err
	}
	if err := t.writeNode(right); err != nil {
		return 0, 0, err
	}
	return right.keys[0], right.page, nil
}

// splitInternal splits n around its middle key, which moves up.
func (t *Tree) splitInternal(n *node) (uint32, uint32, error) {
	mid := len(n.keys) / 2
	sep := n.keys[mid]
	right := &node{
		page:     t.allocPage(),
		keys:     append([]uint32(nil), n.keys[mid+1:]...),
		children: append([]uint32(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	if err := t.writeNode(n); err != nil {
		return 0, 0, err
	}
	if err := t.writeNode(right); err != nil {
		return 0, 0, err
	}
	return sep, right.page, nil
}

// Delete removes key. It reports whether the key was present. Leaf
// underflow is tolerated (lazy deletion): pages are never merged,
// matching the archival usage the paper describes.
func (t *Tree) Delete(key uint32) (bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.root
	for !n.leaf {
		next, err := t.readNodeCached(n.childFor(key))
		if err != nil {
			return false, err
		}
		n = next
	}
	i, ok := n.findLeaf(key)
	if !ok {
		return false, nil
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.vals = append(n.vals[:i], n.vals[i+1:]...)
	if err := t.writeNode(n); err != nil {
		return false, err
	}
	t.count--
	return true, t.writeHeader()
}

// Range iterates all records in ascending key order, calling fn for
// each; fn returning false stops the scan. It walks the tree top-down
// (there are no sibling links), which is adequate for the bulk
// operations that use it.
func (t *Tree) Range(fn func(key uint32, rec []byte) bool) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, err := t.rangeNode(t.root, fn)
	return err
}

func (t *Tree) rangeNode(n *node, fn func(uint32, []byte) bool) (stopped bool, err error) {
	if n.leaf {
		for i, k := range n.keys {
			v := n.vals[i]
			var rec []byte
			if v.extLen == 0 {
				rec = append([]byte(nil), v.inline...)
			} else {
				rec = make([]byte, v.extLen)
				if err := t.readFull(rec, v.extOff); err != nil {
					return false, err
				}
			}
			if !fn(k, rec) {
				return true, nil
			}
		}
		return false, nil
	}
	for _, c := range n.children {
		child, err := t.readNodeCached(c)
		if err != nil {
			return false, err
		}
		stopped, err := t.rangeNode(child, fn)
		if stopped || err != nil {
			return stopped, err
		}
	}
	return false, nil
}
