package resilience

import (
	"fmt"
	"sync"
)

// BreakerState is one of the three classic circuit states.
type BreakerState int32

const (
	// Closed: calls flow through; consecutive failures are counted.
	Closed BreakerState = iota
	// Open: calls are rejected without touching the resource.
	Open
	// HalfOpen: one probe call is admitted to test recovery.
	HalfOpen
)

// String returns the lower-case state name used in snapshots.
func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// BreakerPolicy configures a Breaker.
type BreakerPolicy struct {
	// FailureThreshold is the number of consecutive failures that
	// trips the breaker open. Values below 1 are treated as 1.
	FailureThreshold int
	// Cooldown is the number of rejected calls the breaker absorbs
	// while open before transitioning to half-open. Measured in
	// calls, not wall-clock, so breaker behavior is deterministic
	// under the repo's seeded fault schedules. Values below 1 are
	// treated as 1.
	Cooldown int
}

// DefaultBreakerPolicy trips after 5 consecutive failures and probes
// again after rejecting 32 calls.
func DefaultBreakerPolicy() BreakerPolicy {
	return BreakerPolicy{FailureThreshold: 5, Cooldown: 32}
}

// Breaker is a three-state (closed/open/half-open) circuit breaker.
// Unlike the textbook version its open→half-open transition is counted
// in rejected calls rather than elapsed time: the Nth rejected call
// after opening is converted into the half-open probe. That keeps the
// state machine a pure function of the call/outcome sequence, which is
// what makes the chaos soak reproducible from a seed.
type Breaker struct {
	policy BreakerPolicy

	mu        sync.Mutex
	state     BreakerState
	failures  int  // consecutive failures while closed
	rejected  int  // rejections since opening
	probing   bool // a half-open probe is in flight
	opens     int64
	rejects   int64
	probes    int64
	successes int64
	failTotal int64
}

// NewBreaker builds a Breaker from the policy.
func NewBreaker(p BreakerPolicy) *Breaker {
	if p.FailureThreshold < 1 {
		p.FailureThreshold = 1
	}
	if p.Cooldown < 1 {
		p.Cooldown = 1
	}
	return &Breaker{policy: p}
}

// Allow reports whether a call may proceed. It returns nil to admit
// the call (the caller must then report the outcome via Observe) or
// an error chaining to ErrBreakerOpen to reject it.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return nil
	case Open:
		b.rejected++
		if b.rejected >= b.policy.Cooldown {
			// Convert this call into the half-open probe.
			b.state = HalfOpen
			b.probing = true
			b.probes++
			return nil
		}
		b.rejects++
		return ErrBreakerOpen
	case HalfOpen:
		if b.probing {
			// Only one probe at a time; reject concurrent calls.
			b.rejects++
			return ErrBreakerOpen
		}
		b.probing = true
		b.probes++
		return nil
	}
	return nil
}

// Observe reports the outcome of an admitted call. Success while
// half-open closes the breaker; failure re-opens it and restarts the
// cooldown. While closed, FailureThreshold consecutive failures open
// the breaker.
func (b *Breaker) Observe(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		b.successes++
		b.failures = 0
		if b.state == HalfOpen {
			b.state = Closed
			b.probing = false
			b.rejected = 0
		}
		return
	}
	b.failTotal++
	switch b.state {
	case Closed:
		b.failures++
		if b.failures >= b.policy.FailureThreshold {
			b.open()
		}
	case HalfOpen:
		b.probing = false
		b.open()
	}
}

// open transitions to Open and restarts the cooldown. Caller holds mu.
func (b *Breaker) open() {
	b.state = Open
	b.failures = 0
	b.rejected = 0
	b.opens++
}

// State returns the current state.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// BreakerSnap is the JSON-stable view of a breaker for core.Snapshot.
type BreakerSnap struct {
	State     string `json:"state"`
	Opens     int64  `json:"opens"`
	Rejects   int64  `json:"rejects"`
	Probes    int64  `json:"probes"`
	Successes int64  `json:"successes"`
	Failures  int64  `json:"failures"`
}

// Snap returns a consistent snapshot of the breaker's state and
// lifetime counters.
func (b *Breaker) Snap() BreakerSnap {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerSnap{
		State:     b.state.String(),
		Opens:     b.opens,
		Rejects:   b.rejects,
		Probes:    b.probes,
		Successes: b.successes,
		Failures:  b.failTotal,
	}
}
