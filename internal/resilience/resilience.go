// Package resilience provides the request-lifecycle survival
// primitives for the query path: bounded retry of transient storage
// faults, a per-resource circuit breaker, and an admission gate that
// sheds load instead of queueing unboundedly.
//
// The package is deliberately storage-agnostic: callers decide which
// errors are retryable (checksum corruption is not — re-reading rotted
// bytes yields the same rotted bytes — while an injected transient read
// error is), and callers wire the primitives around their own fault-in
// paths via Guard.
//
// Determinism: the repo's culture is that every observable quantity is
// a count, never wall-clock. The breaker therefore measures its
// cooldown in *rejected calls* rather than elapsed time, and the retry
// backoff schedule is derived from a seeded RNG so a given seed always
// produces the same jitter sequence. Retry sleeping is optional (a nil
// Sleep func skips it), so fault-injection tests run at full speed and
// stay reproducible.
package resilience

import "errors"

// Typed failure classes surfaced to callers. Each is a sentinel that
// wrapped errors chain to with errors.Is.
var (
	// ErrShed reports that admission control rejected the request:
	// the in-flight limit was reached and the queue-wait budget (if
	// any) elapsed without a slot freeing up.
	ErrShed = errors.New("resilience: load shed")

	// ErrDeadline reports that a request's deadline or cancellation
	// fired mid-evaluation; results returned alongside it are partial.
	ErrDeadline = errors.New("resilience: deadline exceeded")

	// ErrBreakerOpen reports that a circuit breaker is open and the
	// protected resource was not touched.
	ErrBreakerOpen = errors.New("resilience: circuit open")

	// ErrNoQuorum reports that a scatter-gather request lost too many
	// shards to satisfy its quorum policy; any results assembled before
	// the loss are discarded rather than served as a silent partial.
	ErrNoQuorum = errors.New("resilience: quorum lost")
)
