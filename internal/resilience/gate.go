package resilience

import (
	"context"
	"sync/atomic"
	"time"
)

// Gate is a bounded admission-control semaphore for in-flight queries.
// When all slots are busy, Acquire waits up to the configured
// queue-wait budget for one to free and then sheds the request with an
// error chaining to ErrShed. A zero budget sheds immediately on a full
// gate.
type Gate struct {
	sem  chan struct{}
	wait time.Duration
	shed atomic.Int64

	// Observe, if set, is called once per admitted request with the
	// time spent queued (0 for the uncontended fast path). Used to
	// feed the queue-wait histogram.
	Observe func(wait time.Duration)
}

// NewGate builds a gate admitting at most max concurrent requests,
// each willing to queue for at most queueWait.
func NewGate(max int, queueWait time.Duration) *Gate {
	if max < 1 {
		max = 1
	}
	return &Gate{sem: make(chan struct{}, max), wait: queueWait}
}

// Max returns the in-flight limit.
func (g *Gate) Max() int { return cap(g.sem) }

// InFlight returns the number of currently admitted requests.
func (g *Gate) InFlight() int { return len(g.sem) }

// ShedCount returns the number of requests rejected so far.
func (g *Gate) ShedCount() int64 { return g.shed.Load() }

// Acquire admits the request or rejects it. It returns nil when a slot
// was obtained (the caller must Release), an error chaining to ErrShed
// when the gate is full past the queue-wait budget, or ctx.Err()
// (wrapped in ErrDeadline) when the context expires while queued.
func (g *Gate) Acquire(ctx context.Context) error {
	select {
	case g.sem <- struct{}{}:
		if g.Observe != nil {
			g.Observe(0)
		}
		return nil
	default:
	}
	if g.wait <= 0 {
		g.shed.Add(1)
		return ErrShed
	}
	if ctx == nil {
		ctx = context.Background()
	}
	timer := time.NewTimer(g.wait)
	defer timer.Stop()
	start := time.Now()
	select {
	case g.sem <- struct{}{}:
		if g.Observe != nil {
			g.Observe(time.Since(start))
		}
		return nil
	case <-timer.C:
		g.shed.Add(1)
		return ErrShed
	case <-ctx.Done():
		return &deadlineError{cause: ctx.Err()}
	}
}

// Release frees a slot obtained by Acquire.
func (g *Gate) Release() { <-g.sem }

// deadlineError chains to both ErrDeadline and the underlying context
// error, so errors.Is works against either.
type deadlineError struct{ cause error }

func (e *deadlineError) Error() string {
	return "resilience: deadline while queued: " + e.cause.Error()
}
func (e *deadlineError) Is(target error) bool {
	return target == ErrDeadline || target == e.cause
}
func (e *deadlineError) Unwrap() error { return e.cause }
