package resilience

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// RetryPolicy bounds a capped-exponential-backoff retry loop.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (first attempt
	// included). Values below 1 are treated as 1 (no retry).
	MaxAttempts int
	// Base is the backoff before the first retry; each subsequent
	// retry doubles it up to Cap. Jitter draws the actual delay
	// uniformly from [delay/2, delay].
	Base time.Duration
	// Cap bounds the exponential growth. Zero means no cap.
	Cap time.Duration
	// Seed fixes the jitter RNG so backoff schedules are
	// reproducible across runs.
	Seed int64
	// Sleep performs the backoff wait. Nil means no sleeping at all:
	// the retry is immediate, which is what the simulated-I/O stack
	// wants (faults are deterministic ordinals, not time windows).
	Sleep func(time.Duration)
}

// DefaultRetryPolicy is the stock budget: three total attempts,
// 1ms base, 100ms cap, no sleeping (immediate re-read of simulated
// storage).
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, Base: time.Millisecond, Cap: 100 * time.Millisecond, Seed: 1}
}

// Retry executes functions under a RetryPolicy and counts the retries
// it performs. One Retry is typically shared engine-wide so the total
// transient-recovery count surfaces in a single place.
type Retry struct {
	policy  RetryPolicy
	mu      sync.Mutex // guards rng
	rng     *rand.Rand
	retries atomic.Int64

	// OnRetry, if set, is invoked once per performed retry (not per
	// attempt). Used to bump an external metrics counter.
	OnRetry func()
}

// NewRetry builds a Retry from the policy.
func NewRetry(p RetryPolicy) *Retry {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	return &Retry{policy: p, rng: rand.New(rand.NewSource(p.Seed))}
}

// Retries reports the total number of retries performed (attempts
// beyond the first, across all Do calls).
func (r *Retry) Retries() int64 { return r.retries.Load() }

// Do runs fn, retrying up to the policy budget while retryable(err)
// holds. It returns nil on the first success, or the last error once
// the budget is exhausted or the error is not retryable.
func (r *Retry) Do(fn func() error, retryable func(error) bool) error {
	var err error
	for attempt := 1; ; attempt++ {
		err = fn()
		if err == nil {
			return nil
		}
		if attempt >= r.policy.MaxAttempts || retryable == nil || !retryable(err) {
			return err
		}
		r.backoff(attempt)
		r.retries.Add(1)
		if r.OnRetry != nil {
			r.OnRetry()
		}
	}
}

// backoff computes the capped-exponential delay for the given attempt
// number and sleeps it through the policy's Sleep func (if any). The
// jitter draw happens even when Sleep is nil so the RNG stream — and
// thus any schedule derived from it — is identical whether or not the
// caller actually waits.
func (r *Retry) backoff(attempt int) {
	d := r.policy.Base << (attempt - 1)
	if r.policy.Cap > 0 && (d > r.policy.Cap || d <= 0) {
		d = r.policy.Cap
	}
	if d > 0 {
		r.mu.Lock()
		d = d/2 + time.Duration(r.rng.Int63n(int64(d/2)+1))
		r.mu.Unlock()
	}
	if r.policy.Sleep != nil && d > 0 {
		r.policy.Sleep(d)
	}
}
