package resilience

import "fmt"

// Guard composes a Breaker and a Retry around one fault-in path (a
// Mneme pool's segment reads, the B-tree's page file). Either field
// may be nil; a nil *Guard is a pass-through, so call sites pay one
// nil check when resilience is not configured.
type Guard struct {
	// Label names the protected resource in breaker-open errors,
	// e.g. "mneme pool \"small\"" or "btree".
	Label string
	// Breaker gates admission; nil disables circuit breaking.
	Breaker *Breaker
	// Retry re-runs transient failures; nil disables retry.
	Retry *Retry
}

// Do runs fn under the guard: the breaker is consulted first (an open
// circuit fails fast without touching the resource), then fn runs under
// the retry budget with retryable classifying transient errors, and the
// final outcome — after retries — is reported back to the breaker.
func (g *Guard) Do(fn func() error, retryable func(error) bool) error {
	if g == nil {
		return fn()
	}
	if g.Breaker != nil {
		if err := g.Breaker.Allow(); err != nil {
			return fmt.Errorf("%s: %w", g.Label, err)
		}
	}
	var err error
	if g.Retry != nil {
		err = g.Retry.Do(fn, retryable)
	} else {
		err = fn()
	}
	if g.Breaker != nil {
		g.Breaker.Observe(err == nil)
	}
	return err
}
