package resilience

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

var errTransient = errors.New("transient")
var errHard = errors.New("hard")

func isTransient(err error) bool { return errors.Is(err, errTransient) }

func TestRetrySucceedsAfterTransients(t *testing.T) {
	r := NewRetry(RetryPolicy{MaxAttempts: 3, Base: time.Millisecond, Cap: 8 * time.Millisecond, Seed: 7})
	calls := 0
	err := r.Do(func() error {
		calls++
		if calls < 3 {
			return errTransient
		}
		return nil
	}, isTransient)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if got := r.Retries(); got != 2 {
		t.Fatalf("Retries() = %d, want 2", got)
	}
}

func TestRetryExhaustsBudget(t *testing.T) {
	r := NewRetry(RetryPolicy{MaxAttempts: 3, Seed: 1})
	calls := 0
	err := r.Do(func() error { calls++; return errTransient }, isTransient)
	if !errors.Is(err, errTransient) {
		t.Fatalf("Do = %v, want errTransient", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3 (MaxAttempts)", calls)
	}
}

func TestRetryDoesNotRetryNonRetryable(t *testing.T) {
	r := NewRetry(DefaultRetryPolicy())
	calls := 0
	err := r.Do(func() error { calls++; return errHard }, isTransient)
	if !errors.Is(err, errHard) || calls != 1 {
		t.Fatalf("Do = %v after %d calls, want errHard after 1", err, calls)
	}
	if r.Retries() != 0 {
		t.Fatalf("Retries() = %d, want 0", r.Retries())
	}
}

// TestRetryBackoffDeterministic: the same seed yields the same sleep
// schedule; sleeps are capped-exponential with jitter in [d/2, d].
func TestRetryBackoffDeterministic(t *testing.T) {
	schedule := func(seed int64) []time.Duration {
		var slept []time.Duration
		r := NewRetry(RetryPolicy{
			MaxAttempts: 5,
			Base:        4 * time.Millisecond,
			Cap:         10 * time.Millisecond,
			Seed:        seed,
			Sleep:       func(d time.Duration) { slept = append(slept, d) },
		})
		_ = r.Do(func() error { return errTransient }, isTransient)
		return slept
	}
	a, b := schedule(42), schedule(42)
	if len(a) != 4 {
		t.Fatalf("slept %d times, want 4 (MaxAttempts-1)", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule not deterministic: %v vs %v", a, b)
		}
	}
	// Bounds: attempt i has nominal delay min(Base<<i-1, Cap), jitter
	// draws from [nominal/2, nominal].
	nominal := []time.Duration{4, 8, 10, 10}
	for i, d := range a {
		n := nominal[i] * time.Millisecond
		if d < n/2 || d > n {
			t.Fatalf("sleep[%d] = %v outside [%v, %v]", i, d, n/2, n)
		}
	}
}

func TestRetryOnRetryHook(t *testing.T) {
	r := NewRetry(RetryPolicy{MaxAttempts: 4, Seed: 1})
	hooks := 0
	r.OnRetry = func() { hooks++ }
	_ = r.Do(func() error { return errTransient }, isTransient)
	if hooks != 3 {
		t.Fatalf("OnRetry fired %d times, want 3", hooks)
	}
}

// TestBreakerStateMachine walks the canonical transitions as a table:
// each step is an operation (admitted call with an outcome, or a
// rejected call) with the state expected afterwards.
func TestBreakerStateMachine(t *testing.T) {
	type step struct {
		name      string
		ok        bool // outcome if admitted
		wantAdmit bool
		wantState BreakerState
	}
	b := NewBreaker(BreakerPolicy{FailureThreshold: 2, Cooldown: 2})
	steps := []step{
		{"closed: success keeps closed", true, true, Closed},
		{"closed: first failure stays closed", false, true, Closed},
		{"closed: success resets streak", true, true, Closed},
		{"closed: failure 1/2", false, true, Closed},
		{"closed: failure 2/2 trips open", false, true, Open},
		{"open: rejected 1/2", false, false, Open},
		{"open: cooldown elapsed, probe admitted, fails", false, true, Open},
		{"open: rejected 1/2 again", false, false, Open},
		{"open: probe admitted, succeeds, closes", true, true, Closed},
		{"closed again: success", true, true, Closed},
	}
	for i, s := range steps {
		err := b.Allow()
		admitted := err == nil
		if admitted != s.wantAdmit {
			t.Fatalf("step %d (%s): admitted = %v, want %v", i, s.name, admitted, s.wantAdmit)
		}
		if !admitted && !errors.Is(err, ErrBreakerOpen) {
			t.Fatalf("step %d (%s): reject error = %v, want ErrBreakerOpen", i, s.name, err)
		}
		if admitted {
			b.Observe(s.ok)
		}
		if got := b.State(); got != s.wantState {
			t.Fatalf("step %d (%s): state = %v, want %v", i, s.name, got, s.wantState)
		}
	}
	snap := b.Snap()
	if snap.Opens != 2 || snap.Probes != 2 || snap.Rejects != 2 {
		t.Fatalf("snap = %+v, want 2 opens, 2 probes, 2 rejects", snap)
	}
	if snap.State != "closed" {
		t.Fatalf("snap.State = %q, want closed", snap.State)
	}
}

// TestBreakerHalfOpenSingleProbe: while a probe is in flight, other
// calls are rejected rather than stampeding the recovering resource.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	b := NewBreaker(BreakerPolicy{FailureThreshold: 1, Cooldown: 1})
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Observe(false) // trips open
	if err := b.Allow(); err != nil {
		t.Fatalf("cooldown=1: first rejected call should become the probe, got %v", err)
	}
	// Probe in flight: a second caller must be rejected.
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("concurrent probe admitted: %v", err)
	}
	b.Observe(true)
	if b.State() != Closed {
		t.Fatalf("state after successful probe = %v, want Closed", b.State())
	}
}

func TestGateShedsWhenFull(t *testing.T) {
	g := NewGate(1, 0)
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := g.Acquire(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("second Acquire = %v, want ErrShed", err)
	}
	if g.ShedCount() != 1 {
		t.Fatalf("ShedCount = %d, want 1", g.ShedCount())
	}
	g.Release()
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatalf("Acquire after Release: %v", err)
	}
	g.Release()
}

func TestGateQueueWaitAdmits(t *testing.T) {
	g := NewGate(1, time.Second)
	var waited time.Duration
	var mu sync.Mutex
	g.Observe = func(d time.Duration) { mu.Lock(); waited = d; mu.Unlock() }
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- g.Acquire(context.Background()) }()
	time.Sleep(10 * time.Millisecond)
	g.Release()
	if err := <-done; err != nil {
		t.Fatalf("queued Acquire = %v, want admission", err)
	}
	mu.Lock()
	w := waited
	mu.Unlock()
	if w <= 0 {
		t.Fatalf("Observe saw wait %v, want > 0", w)
	}
	g.Release()
}

func TestGateQueueWaitTimesOut(t *testing.T) {
	g := NewGate(1, 5*time.Millisecond)
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := g.Acquire(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("Acquire = %v, want ErrShed after queue-wait timeout", err)
	}
	g.Release()
}

func TestGateContextCanceledWhileQueued(t *testing.T) {
	g := NewGate(1, time.Second)
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := g.Acquire(ctx)
	if !errors.Is(err, ErrDeadline) || !errors.Is(err, context.Canceled) {
		t.Fatalf("Acquire = %v, want ErrDeadline wrapping context.Canceled", err)
	}
	g.Release()
}

func TestGuardNilPassThrough(t *testing.T) {
	var g *Guard
	calls := 0
	if err := g.Do(func() error { calls++; return nil }, nil); err != nil || calls != 1 {
		t.Fatalf("nil guard: err=%v calls=%d", err, calls)
	}
}

// TestGuardBreakerCountsExhaustedRetryOnce: a fault-in that fails
// through the whole retry budget is one breaker failure, not three.
func TestGuardBreakerCountsExhaustedRetryOnce(t *testing.T) {
	g := &Guard{
		Label:   "test",
		Breaker: NewBreaker(BreakerPolicy{FailureThreshold: 2, Cooldown: 4}),
		Retry:   NewRetry(RetryPolicy{MaxAttempts: 3, Seed: 1}),
	}
	for i := 0; i < 2; i++ {
		if err := g.Do(func() error { return errTransient }, isTransient); !errors.Is(err, errTransient) {
			t.Fatalf("Do = %v", err)
		}
	}
	if g.Breaker.State() != Open {
		t.Fatalf("breaker state = %v after 2 exhausted guards, want Open", g.Breaker.State())
	}
	err := g.Do(func() error { return nil }, isTransient)
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker: Do = %v, want ErrBreakerOpen", err)
	}
}

// TestGuardRecoveredRetryIsBreakerSuccess: a call that succeeds on a
// retry counts as a success to the breaker.
func TestGuardRecoveredRetryIsBreakerSuccess(t *testing.T) {
	g := &Guard{
		Breaker: NewBreaker(BreakerPolicy{FailureThreshold: 1, Cooldown: 1}),
		Retry:   NewRetry(RetryPolicy{MaxAttempts: 2, Seed: 1}),
	}
	calls := 0
	err := g.Do(func() error {
		calls++
		if calls == 1 {
			return errTransient
		}
		return nil
	}, isTransient)
	if err != nil {
		t.Fatal(err)
	}
	if g.Breaker.State() != Closed {
		t.Fatalf("state = %v, want Closed (recovered retry is not a failure)", g.Breaker.State())
	}
}
