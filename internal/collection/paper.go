package collection

// PaperCollection bundles a collection spec with its query sets,
// mirroring one row block of the paper's evaluation matrix.
type PaperCollection struct {
	Spec
	QuerySets []QuerySpec
	// PaperDocs / PaperSizeKB / PaperRecords record the original
	// collection's statistics from Table 1, for side-by-side reporting.
	PaperDocs    int
	PaperSizeKB  int64
	PaperRecords int64
}

// Paper query counts: every set in the paper has 50 queries.
const paperQueries = 50

// PaperCollections returns reproduction-scale models of the four
// collections. scale multiplies document counts (1.0 is the default
// reproduction scale, itself reduced from the paper's corpora — CACM is
// full size, the others are scaled to laptop memory; the distributional
// properties, not the absolute sizes, carry the results). Values below
// 1 shrink everything proportionally for quick runs.
func PaperCollections(scale float64) []PaperCollection {
	if scale <= 0 {
		scale = 1
	}
	sc := func(n int) int {
		v := int(float64(n) * scale)
		if v < 10 {
			v = 10
		}
		return v
	}
	return []PaperCollection{
		{
			// CACM: 3204 abstracts and titles of CACM articles — small
			// documents, small vocabulary. Full document count.
			Spec: Spec{
				Name: "CACM", Docs: sc(3204), AvgLen: 64,
				Vocab: 4000, TailVocab: 3000, StopRanks: 6, Seed: 101,
			},
			QuerySets: []QuerySpec{
				// "The first two query sets ... are different boolean
				// representations of the same 50 queries."
				{Name: "1", Queries: paperQueries, MeanTerms: 8, Style: StyleBoolean, Repeat: 0.30, Seed: 11},
				{Name: "2", Queries: paperQueries, MeanTerms: 10, Style: StyleBoolean, Repeat: 0.35, Seed: 11},
				// "The third query set contains the same queries ...
				// but with manually-selected words and phrases."
				{Name: "3", Queries: paperQueries, MeanTerms: 12, Style: StylePhrases, Repeat: 0.45, Seed: 11},
			},
			PaperDocs: 3204, PaperSizeKB: 2136, PaperRecords: 5944,
		},
		{
			// Legal: 11953 long case descriptions (~24 KB each in the
			// paper). Scaled 1:4 in documents, 1:5 in length.
			Spec: Spec{
				Name: "Legal", Docs: sc(3000), AvgLen: 600,
				Vocab: 12000, TailVocab: 30000, Seed: 202,
			},
			QuerySets: []QuerySpec{
				// "The first query set ... was supplied with the
				// collection."
				{Name: "1", Queries: paperQueries, MeanTerms: 10, Style: StyleWords, Repeat: 0.30, Seed: 22},
				// "The second query set was generated locally by
				// supplementing the first ... with dictionary terms,
				// phrases, and weights."
				{Name: "2", Queries: paperQueries, MeanTerms: 16, Style: StyleWeighted, Repeat: 0.45, Seed: 22},
			},
			PaperDocs: 11953, PaperSizeKB: 290529, PaperRecords: 142721,
		},
		{
			// TIPSTER 1: part 1 of the TIPSTER distribution. Scaled
			// ~1:40 in documents.
			Spec: Spec{
				Name: "TIPSTER1", Docs: sc(12000), AvgLen: 300,
				Vocab: 30000, TailVocab: 80000, Seed: 303,
			},
			QuerySets: []QuerySpec{
				// "generated locally from TIPSTER topics 51-100 using
				// automatic and semi-automatic methods" — long queries.
				{Name: "1", Queries: paperQueries, MeanTerms: 35, Style: StyleWords, Repeat: 0.62, Seed: 33},
			},
			PaperDocs: 510887, PaperSizeKB: 1225712, PaperRecords: 627078,
		},
		{
			// TIPSTER: parts 1 and 2. Same query set as TIPSTER 1.
			Spec: Spec{
				Name: "TIPSTER", Docs: sc(18000), AvgLen: 300,
				Vocab: 35000, TailVocab: 110000, Seed: 404,
			},
			QuerySets: []QuerySpec{
				{Name: "1", Queries: paperQueries, MeanTerms: 35, Style: StyleWords, Repeat: 0.62, Seed: 33},
			},
			PaperDocs: 742358, PaperSizeKB: 2103574, PaperRecords: 846331,
		},
	}
}

// ByName returns the named paper collection at the given scale.
func ByName(name string, scale float64) (PaperCollection, bool) {
	for _, c := range PaperCollections(scale) {
		if c.Name == name {
			return c, true
		}
	}
	return PaperCollection{}, false
}
