package collection

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/inference"
	"repro/internal/lexicon"
	"repro/internal/textproc"
	"repro/internal/vfs"
)

func tinySpec() Spec {
	return Spec{Name: "tiny", Docs: 400, AvgLen: 60, Vocab: 800, TailVocab: 1200, Seed: 7}
}

func TestStreamDeterministic(t *testing.T) {
	s := tinySpec()
	a, b := s.Stream(), s.Stream()
	for {
		da, oka, _ := a.Next()
		db, okb, _ := b.Next()
		if oka != okb {
			t.Fatal("streams differ in length")
		}
		if !oka {
			break
		}
		if da.ID != db.ID || da.Text != db.Text {
			t.Fatalf("doc %d differs between replays", da.ID)
		}
	}
	if a.TextBytes() != b.TextBytes() || a.TextBytes() == 0 {
		t.Fatalf("TextBytes: %d vs %d", a.TextBytes(), b.TextBytes())
	}
}

func TestStreamShape(t *testing.T) {
	s := tinySpec()
	st := s.Stream()
	n := 0
	var totalToks int
	for {
		d, ok, err := st.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if int(d.ID) != n {
			t.Fatalf("ids not dense: %d at position %d", d.ID, n)
		}
		n++
		toks := strings.Fields(d.Text)
		totalToks += len(toks)
		if len(toks) < s.AvgLen/2 || len(toks) > s.AvgLen*3/2+1 {
			t.Fatalf("doc %d length %d outside ±50%% of %d", d.ID, len(toks), s.AvgLen)
		}
		for _, tok := range toks {
			if tok[0] != 't' && tok[0] != 'x' {
				t.Fatalf("unexpected token %q", tok)
			}
		}
	}
	if n != s.Docs {
		t.Fatalf("docs = %d, want %d", n, s.Docs)
	}
	avg := float64(totalToks) / float64(n)
	if avg < float64(s.AvgLen)*0.85 || avg > float64(s.AvgLen)*1.15 {
		t.Fatalf("mean length %.1f far from %d", avg, s.AvgLen)
	}
}

// TestZipfShape builds the tiny collection and checks the two
// distributional properties the reproduction depends on: roughly half
// of the records are tiny, yet they account for a small share of the
// index bytes.
func TestZipfShape(t *testing.T) {
	fs := vfs.New(vfs.Options{BlockSize: 8192, OSCacheBytes: 1 << 22})
	spec := Spec{Name: "shape", Docs: 1500, AvgLen: 120, Vocab: 2500, TailVocab: 5000, Seed: 9}
	an := textproc.NewAnalyzer(textproc.WithStemming(false), textproc.WithStopWords(nil))
	if _, err := core.Build(fs, "shape", spec.Stream(), core.BuildOptions{
		Analyzer: an, Backends: []core.BackendKind{core.BackendMneme},
	}); err != nil {
		t.Fatal(err)
	}
	e, err := core.Open(fs, "shape", core.BackendMneme, core.WithAnalyzer(an))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	var records, small int
	var bytesTotal, bytesSmall int64
	e.Dictionary().Range(func(entry *lexicon.Entry) bool {
		records++
		bytesTotal += int64(entry.ListBytes)
		if entry.ListBytes <= core.SmallListMax {
			small++
			bytesSmall += int64(entry.ListBytes)
		}
		return true
	})
	smallFrac := float64(small) / float64(records)
	if smallFrac < 0.30 || smallFrac > 0.75 {
		t.Fatalf("small-record fraction = %.2f, want Zipf-ish ~0.5", smallFrac)
	}
	byteFrac := float64(bytesSmall) / float64(bytesTotal)
	if byteFrac > 0.10 {
		t.Fatalf("small records are %.1f%% of bytes; paper says only a few %%", byteFrac*100)
	}
}

func TestGenQueriesParseAndRepeat(t *testing.T) {
	s := tinySpec()
	for _, style := range []QueryStyle{StyleWords, StyleBoolean, StylePhrases, StyleWeighted} {
		qs := QuerySpec{Name: "q", Queries: 30, MeanTerms: 8, Style: style, Repeat: 0.4, Seed: 5}
		queries := s.GenQueries(qs)
		if len(queries) != 30 {
			t.Fatalf("style %d: %d queries", style, len(queries))
		}
		seen := make(map[string]int)
		for _, q := range queries {
			n, err := inference.Parse(q.Text)
			if err != nil {
				t.Fatalf("style %d: query %q does not parse: %v", style, q.Text, err)
			}
			for _, term := range n.Terms() {
				seen[term]++
			}
		}
		// Repetition: some terms must recur across queries.
		repeated := 0
		for _, c := range seen {
			if c > 1 {
				repeated++
			}
		}
		if repeated == 0 {
			t.Fatalf("style %d: no term repetition across queries", style)
		}
	}
}

func TestGenQueriesDeterministic(t *testing.T) {
	s := tinySpec()
	qs := QuerySpec{Name: "q", Queries: 10, MeanTerms: 6, Style: StyleWords, Repeat: 0.3, Seed: 1}
	a := s.GenQueries(qs)
	b := s.GenQueries(qs)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("query %d differs between replays", i)
		}
	}
}

func TestPaperCollections(t *testing.T) {
	cols := PaperCollections(1.0)
	if len(cols) != 4 {
		t.Fatalf("collections = %d", len(cols))
	}
	wantSets := map[string]int{"CACM": 3, "Legal": 2, "TIPSTER1": 1, "TIPSTER": 1}
	for _, c := range cols {
		if got := len(c.QuerySets); got != wantSets[c.Name] {
			t.Fatalf("%s: %d query sets, want %d", c.Name, got, wantSets[c.Name])
		}
		if c.PaperDocs == 0 || c.PaperRecords == 0 {
			t.Fatalf("%s: missing paper statistics", c.Name)
		}
		if c.Docs <= 0 || c.Vocab <= 0 {
			t.Fatalf("%s: bad spec %+v", c.Name, c.Spec)
		}
	}
	// Document counts preserve the paper's ordering.
	if !(cols[0].Docs < cols[1].Docs || cols[0].Docs < cols[2].Docs) {
		t.Fatal("CACM should be smallest")
	}
	if cols[2].Docs >= cols[3].Docs {
		t.Fatal("TIPSTER1 must be smaller than TIPSTER")
	}
	// Scaling shrinks.
	small := PaperCollections(0.1)
	if small[3].Docs >= cols[3].Docs {
		t.Fatal("scale did not shrink")
	}
	if _, ok := ByName("Legal", 1.0); !ok {
		t.Fatal("ByName(Legal) missed")
	}
	if _, ok := ByName("nope", 1.0); ok {
		t.Fatal("ByName(nope) hit")
	}
}

func TestTailFraction(t *testing.T) {
	s := Spec{Docs: 1000, AvgLen: 100, Vocab: 500, TailVocab: 1000}
	f := s.withDefaults().tailFraction()
	// 1.3 * 1000 / 100000 = 0.013
	if f < 0.012 || f > 0.014 {
		t.Fatalf("tailFraction = %v", f)
	}
	// Capped at 0.25 for absurd tail vocabularies.
	s.TailVocab = 10_000_000
	if f := s.withDefaults().tailFraction(); f != 0.25 {
		t.Fatalf("cap = %v", f)
	}
	// Degenerate collection yields zero.
	if f := (Spec{TailVocab: 10}).withDefaults().tailFraction(); f != 0 {
		t.Fatalf("degenerate = %v", f)
	}
}

func TestItoa(t *testing.T) {
	for _, v := range []uint64{0, 1, 9, 10, 12345, 18446744073709551615} {
		if got, want := itoa(v), strconv.FormatUint(v, 10); got != want {
			t.Fatalf("itoa(%d) = %q, want %q", v, got, want)
		}
	}
}

func TestWithDefaults(t *testing.T) {
	s := (Spec{Vocab: 100}).withDefaults()
	if s.TailVocab != 100 || s.ZipfS != 1.15 || s.StopRanks != 25 {
		t.Fatalf("defaults = %+v", s)
	}
	// Explicit values survive.
	s = (Spec{Vocab: 100, TailVocab: 7, ZipfS: 2, StopRanks: 3}).withDefaults()
	if s.TailVocab != 7 || s.ZipfS != 2 || s.StopRanks != 3 {
		t.Fatalf("overrides lost: %+v", s)
	}
}

func TestRenderQueryStyles(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	terms := []string{"t1", "t2", "t3", "t4", "t5"}
	if q := renderQuery(rng, StyleWords, terms); q != "t1 t2 t3 t4 t5" {
		t.Fatalf("words = %q", q)
	}
	q := renderQuery(rng, StyleBoolean, terms)
	if !strings.HasPrefix(q, "#and(") {
		t.Fatalf("boolean = %q", q)
	}
	q = renderQuery(rng, StyleWeighted, terms)
	if !strings.HasPrefix(q, "#wsum(") {
		t.Fatalf("weighted = %q", q)
	}
	// Every style parses and covers all terms.
	for _, style := range []QueryStyle{StyleWords, StyleBoolean, StylePhrases, StyleWeighted} {
		q := renderQuery(rng, style, terms)
		n, err := inference.Parse(q)
		if err != nil {
			t.Fatalf("style %d: %q: %v", style, q, err)
		}
		if got := n.Terms(); len(got) != len(terms) {
			t.Fatalf("style %d lost terms: %v", style, got)
		}
	}
}

// TestHeapsLawGrowth: vocabulary grows sublinearly in collection size,
// as the Heaps-style mixture of Zipf core and rare tail implies.
func TestHeapsLawGrowth(t *testing.T) {
	distinct := func(docs int) int {
		s := Spec{Name: "h", Docs: docs, AvgLen: 80, Vocab: 5000, TailVocab: 8000, Seed: 3}
		st := s.Stream()
		seen := make(map[string]bool)
		for {
			d, ok, _ := st.Next()
			if !ok {
				break
			}
			for _, w := range strings.Fields(d.Text) {
				seen[w] = true
			}
		}
		return len(seen)
	}
	v1 := distinct(400)
	v4 := distinct(1600)
	if v4 <= v1 {
		t.Fatalf("vocabulary did not grow: %d -> %d", v1, v4)
	}
	// 4x the documents must yield far less than 4x the vocabulary.
	if float64(v4) >= 3.0*float64(v1) {
		t.Fatalf("vocabulary growth not sublinear: %d -> %d", v1, v4)
	}
}
