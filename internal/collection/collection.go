// Package collection generates the synthetic document collections and
// query sets that stand in for the paper's corpora (CACM, Legal,
// TIPSTER 1, TIPSTER), which are licensed or private and in any case
// gigabytes of 1990s text.
//
// The substitution is behaviour-preserving for everything the paper
// measures, because the storage-layer effects are driven entirely by
// two distributional properties, both of which the generators model
// directly:
//
//  1. The inverted-list size distribution. Zipf's law (paper §2, citing
//     Zipf [22]) makes "nearly half of the terms have only one or two
//     occurrences, while some terms occur very many times". Documents
//     draw tokens from a Zipf-shaped core vocabulary (with the head
//     flattened by StopRanks, standing in for stop-word removal) mixed
//     with a large uniform "tail" vocabulary of hapax-style rare terms,
//     reproducing Figure 1's shape: ~half of all records at or under a
//     few bytes yet a tiny share of total file size.
//  2. Query-term access skew and repetition. Query terms are sampled
//     from the same Zipf core — so big lists are referenced most and
//     small lists rarely (Figure 2) — and each query set reuses
//     previously drawn terms with a configurable probability, modelling
//     the paper's observation of "significant repetition of the terms
//     used from query to query", the property its caching results
//     depend on.
//
// All generation is deterministic per seed: restarting a stream
// reproduces byte-identical documents.
package collection

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/index"
)

// Spec parameterizes one synthetic collection.
type Spec struct {
	// Name labels the collection (file and report names derive from it).
	Name string
	// Docs is the number of documents.
	Docs int
	// AvgLen is the mean document length in tokens; individual lengths
	// vary uniformly within ±50%.
	AvgLen int
	// Vocab is the size of the Zipf-distributed core vocabulary.
	Vocab int
	// TailVocab is the size of the rare-term vocabulary; each tail term
	// occurs ~1.3 times in expectation. Zero defaults to Vocab.
	TailVocab int
	// ZipfS is the Zipf exponent (> 1); zero defaults to 1.15.
	ZipfS float64
	// StopRanks flattens the head of the Zipf distribution by starting
	// it that many ranks in, standing in for stop-word removal; zero
	// defaults to 25.
	StopRanks int
	// Seed drives all generation for the collection.
	Seed int64
}

func (s Spec) withDefaults() Spec {
	if s.TailVocab == 0 {
		s.TailVocab = s.Vocab
	}
	if s.ZipfS == 0 {
		s.ZipfS = 1.15
	}
	if s.StopRanks == 0 {
		s.StopRanks = 25
	}
	return s
}

// tailFraction returns the probability that a token is drawn from the
// tail vocabulary, targeting ~1.3 occurrences per tail term.
func (s Spec) tailFraction() float64 {
	total := float64(s.Docs) * float64(s.AvgLen)
	if total <= 0 {
		return 0
	}
	f := 1.3 * float64(s.TailVocab) / total
	if f > 0.25 {
		f = 0.25
	}
	return f
}

// coreTerm renders a core-vocabulary term.
func coreTerm(rank uint64) string { return "t" + itoa(rank) }

// tailTerm renders a tail-vocabulary term.
func tailTerm(i uint64) string { return "x" + itoa(i) }

// itoa avoids fmt in the token hot path.
func itoa(v uint64) string {
	var buf [20]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return string(buf[i:])
}

// Stream returns a deterministic document stream for the spec. It
// implements core.DocSource.
type Stream struct {
	spec      Spec
	rng       *rand.Rand
	zipf      *rand.Zipf
	tailFrac  float64
	next      uint32
	textBytes int64
}

// Stream starts a fresh document stream; identical specs yield
// identical streams.
func (s Spec) Stream() *Stream {
	sp := s.withDefaults()
	rng := rand.New(rand.NewSource(sp.Seed))
	return &Stream{
		spec:     sp,
		rng:      rng,
		zipf:     rand.NewZipf(rng, sp.ZipfS, float64(1+sp.StopRanks), uint64(sp.Vocab-1)),
		tailFrac: sp.tailFraction(),
	}
}

// Next implements the document-source contract used by core.Build.
func (st *Stream) Next() (index.Doc, bool, error) {
	if int(st.next) >= st.spec.Docs {
		return index.Doc{}, false, nil
	}
	id := st.next
	st.next++
	length := st.spec.AvgLen/2 + st.rng.Intn(st.spec.AvgLen+1)
	if length < 1 {
		length = 1
	}
	var sb strings.Builder
	sb.Grow(length * 8)
	for i := 0; i < length; i++ {
		if i > 0 {
			sb.WriteByte(' ')
		}
		if st.rng.Float64() < st.tailFrac {
			sb.WriteString(tailTerm(uint64(st.rng.Intn(st.spec.TailVocab))))
		} else {
			sb.WriteString(coreTerm(st.zipf.Uint64()))
		}
	}
	text := sb.String()
	st.textBytes += int64(len(text))
	return index.Doc{ID: id, Text: text}, true, nil
}

// TextBytes reports the total bytes of document text generated so far
// (the "Collection Size" column of Table 1, once fully streamed).
func (st *Stream) TextBytes() int64 { return st.textBytes }

// QueryStyle selects the flavor of generated queries, mirroring the
// paper's query-set provenance.
type QueryStyle uint8

const (
	// StyleWords is a flat bag of terms (Legal set 1, TIPSTER sets).
	StyleWords QueryStyle = iota + 1
	// StyleBoolean nests #and/#or groups (the CACM boolean sets).
	StyleBoolean
	// StylePhrases mixes words with #phrase/#uw pairs (CACM set 3,
	// "manually-selected words and manually-selected phrases").
	StylePhrases
	// StyleWeighted wraps terms in #wsum with weights (Legal set 2,
	// "supplemented ... with dictionary terms, phrases, and weights").
	StyleWeighted
)

// QuerySpec parameterizes one query set.
type QuerySpec struct {
	// Name labels the set ("1", "2", ...).
	Name string
	// Queries is the number of queries in the set.
	Queries int
	// MeanTerms is the mean number of term leaves per query.
	MeanTerms int
	// Style selects the query language flavor.
	Style QueryStyle
	// Repeat is the probability that a term is re-drawn from terms
	// already used by this set — the paper's query-to-query repetition.
	Repeat float64
	// Seed drives query generation.
	Seed int64
}

// Query is one generated query.
type Query struct {
	ID   string
	Text string
}

// GenQueries generates a query set against the collection's vocabulary.
func (s Spec) GenQueries(qs QuerySpec) []Query {
	sp := s.withDefaults()
	rng := rand.New(rand.NewSource(qs.Seed ^ sp.Seed ^ 0x5EED))
	zipf := rand.NewZipf(rng, sp.ZipfS, float64(1+sp.StopRanks), uint64(sp.Vocab-1))
	var used []string
	draw := func() string {
		if len(used) > 0 && rng.Float64() < qs.Repeat {
			// Re-draws favor recently used terms: users refine the
			// query they just ran, and consecutive topics share
			// vocabulary, so repetition is bursty rather than uniform —
			// the locality LRU buffers exploit.
			back := int(rng.ExpFloat64() * 8)
			if back >= len(used) {
				back = rng.Intn(len(used))
			}
			return used[len(used)-1-back]
		}
		t := coreTerm(zipf.Uint64())
		used = append(used, t)
		return t
	}
	out := make([]Query, qs.Queries)
	for i := range out {
		nterms := qs.MeanTerms/2 + rng.Intn(qs.MeanTerms+1)
		if nterms < 2 {
			nterms = 2
		}
		terms := make([]string, nterms)
		for j := range terms {
			terms[j] = draw()
		}
		out[i] = Query{
			ID:   fmt.Sprintf("%s-%s-q%03d", sp.Name, qs.Name, i+1),
			Text: renderQuery(rng, qs.Style, terms),
		}
	}
	return out
}

// renderQuery turns a term list into query-language text in the given
// style.
func renderQuery(rng *rand.Rand, style QueryStyle, terms []string) string {
	switch style {
	case StyleBoolean:
		// Group terms into #or clauses of 2-3 under a top-level #and.
		var sb strings.Builder
		sb.WriteString("#and(")
		i := 0
		first := true
		for i < len(terms) {
			n := 2 + rng.Intn(2)
			if i+n > len(terms) {
				n = len(terms) - i
			}
			if !first {
				sb.WriteByte(' ')
			}
			first = false
			if n == 1 {
				sb.WriteString(terms[i])
			} else {
				sb.WriteString("#or(")
				sb.WriteString(strings.Join(terms[i:i+n], " "))
				sb.WriteByte(')')
			}
			i += n
		}
		sb.WriteByte(')')
		return sb.String()
	case StylePhrases:
		var parts []string
		i := 0
		for i < len(terms) {
			if i+1 < len(terms) && rng.Float64() < 0.4 {
				op := "#phrase"
				if rng.Float64() < 0.3 {
					op = "#uw8"
				}
				parts = append(parts, fmt.Sprintf("%s(%s %s)", op, terms[i], terms[i+1]))
				i += 2
			} else {
				parts = append(parts, terms[i])
				i++
			}
		}
		return strings.Join(parts, " ")
	case StyleWeighted:
		var sb strings.Builder
		sb.WriteString("#wsum(")
		for i, t := range terms {
			if i > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%d %s", 1+rng.Intn(5), t)
		}
		sb.WriteByte(')')
		return sb.String()
	default: // StyleWords
		return strings.Join(terms, " ")
	}
}
