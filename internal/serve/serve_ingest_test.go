package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/vfs"
)

// postIngest sends one JSON body to /v1/ingest and returns the status
// and raw reply.
func postIngest(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/ingest", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

func TestIngestEndpoint(t *testing.T) {
	fs := vfs.New(vfs.Options{BlockSize: 8192})
	live, err := core.OpenNRT(fs, "live", core.BackendMneme, core.NRTConfig{FlushDocs: 8},
		core.WithAnalyzer(plainAnalyzer()))
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()

	bfs := vfs.New(vfs.Options{BlockSize: 8192})
	if _, err := core.Build(bfs, "batch", &core.SliceDocs{Docs: []index.Doc{
		{ID: 0, Text: "static batch document"},
	}}, core.BuildOptions{Analyzer: plainAnalyzer(), Backends: []core.BackendKind{core.BackendBTree}}); err != nil {
		t.Fatal(err)
	}
	batch, err := core.Open(bfs, "batch", core.BackendBTree, core.WithAnalyzer(plainAnalyzer()))
	if err != nil {
		t.Fatal(err)
	}
	defer batch.Close()

	s := NewIndexes(map[string]Index{"live": live, "batch": batch}, Defaults{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A batch acknowledges with IDs and is searchable immediately.
	status, raw := postIngest(t, ts.URL, map[string]any{
		"index": "live",
		"docs":  []string{"persistent object store", "full text retrieval", "object retrieval store"},
	})
	if status != http.StatusOK {
		t.Fatalf("ingest status %d: %s", status, raw)
	}
	var rep ingestReply
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Index != "live" || rep.FirstID != 0 || rep.Count != 3 || rep.Docs != 3 {
		t.Fatalf("reply = %+v", rep)
	}
	st, _, wr := post(t, ts.URL, map[string]any{"index": "live", "query": "retrieval"})
	if st != http.StatusOK || len(wr.Results) != 2 {
		t.Fatalf("search after ingest: status %d results %v", st, wr.Results)
	}

	// Consecutive IDs across batches.
	status, raw = postIngest(t, ts.URL, map[string]any{"index": "live", "docs": []string{"one more"}})
	if status != http.StatusOK {
		t.Fatalf("second ingest status %d: %s", status, raw)
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.FirstID != 3 || rep.Docs != 4 {
		t.Fatalf("second reply = %+v", rep)
	}

	// A batch-built index refuses with 501.
	status, raw = postIngest(t, ts.URL, map[string]any{"index": "batch", "docs": []string{"x"}})
	if status != http.StatusNotImplemented {
		t.Fatalf("batch-index ingest status %d: %s", status, raw)
	}

	// Malformed and empty bodies are 400; unknown index is 404.
	if status, _ = postIngest(t, ts.URL, map[string]any{"index": "live", "docs": []string{}}); status != http.StatusBadRequest {
		t.Fatalf("empty batch status %d", status)
	}
	if status, _ = postIngest(t, ts.URL, map[string]any{"index": "nope", "docs": []string{"x"}}); status != http.StatusNotFound {
		t.Fatalf("unknown index status %d", status)
	}
	resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body status %d", resp.StatusCode)
	}

	// /snapshot carries the NRT write-path block for the live index.
	sresp, err := http.Get(ts.URL + "/snapshot?index=live")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var snap core.Snapshot
	if err := json.NewDecoder(sresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.NRT == nil || snap.NRT.Ingested != 4 {
		t.Fatalf("snapshot NRT block = %+v", snap.NRT)
	}

	// /healthz sees both indexes with live doc counts.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var hz healthzReply
	if err := json.NewDecoder(hresp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" || hz.Indexes["live"] != 4 || hz.Indexes["batch"] != 1 {
		t.Fatalf("healthz = %+v", hz)
	}
}
