package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/inference"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/textproc"
	"repro/internal/vfs"
)

func plainAnalyzer() *textproc.Analyzer {
	return textproc.NewAnalyzer(textproc.WithStemming(false), textproc.WithStopWords(nil))
}

// buildCorpus indexes a medium synthetic collection with repeated terms
// (w0..w899) and returns a parseable query mix over it — the serve-layer
// twin of the core package's concurrency corpus.
func buildCorpus(t testing.TB, fs *vfs.FS, name string) []string {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	var docs []index.Doc
	for d := 0; d < 400; d++ {
		text := ""
		for w := 0; w < 50; w++ {
			text += fmt.Sprintf("w%d ", rng.Intn(900))
		}
		docs = append(docs, index.Doc{ID: uint32(d), Text: text})
	}
	if _, err := core.Build(fs, name, &core.SliceDocs{Docs: docs}, core.BuildOptions{Analyzer: plainAnalyzer()}); err != nil {
		t.Fatal(err)
	}
	var queries []string
	for i := 0; i < 32; i++ {
		a, b, c := rng.Intn(200), rng.Intn(200), rng.Intn(900)
		switch i % 4 {
		case 0:
			queries = append(queries, fmt.Sprintf("w%d w%d w%d", a, b, c))
		case 1:
			queries = append(queries, fmt.Sprintf("#and(w%d w%d)", a, b))
		case 2:
			queries = append(queries, fmt.Sprintf("#or(w%d w%d w%d)", a, b, c))
		case 3:
			queries = append(queries, fmt.Sprintf("#wsum(3 w%d 1 w%d)", a, c))
		}
	}
	return queries
}

// wireResp mirrors the single-query reply body.
type wireResp struct {
	Results  []core.Result `json:"results"`
	Counters core.Counters `json:"counters"`
	Outcome  core.Outcome  `json:"outcome"`
	Status   int           `json:"status"`
	Error    string        `json:"error"`
}

// post sends one JSON body to /v1/search and decodes the reply.
func post(t *testing.T, url string, body any) (int, http.Header, wireResp) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/search", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var wr wireResp
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &wr); err != nil {
		t.Fatalf("reply %q: %v", raw, err)
	}
	return resp.StatusCode, resp.Header, wr
}

// req builds a single-query request body.
func req(index, query string, kv ...any) map[string]any {
	m := map[string]any{"query": query}
	if index != "" {
		m["index"] = index
	}
	for i := 0; i+1 < len(kv); i += 2 {
		m[kv[i].(string)] = kv[i+1]
	}
	return m
}

// TestStatusTaxonomy drives every documented status through the real
// handler stack: 200 ok, 200 degraded-partial, 400, 404, 429, 503, 504,
// and 500 — each with the outcome label the body must carry.
func TestStatusTaxonomy(t *testing.T) {
	fs := vfs.New(vfs.Options{OSCacheBytes: 512 << 10})
	queries := buildCorpus(t, fs, "tax")

	main, err := core.Open(fs, "tax", core.BackendMneme, core.WithAnalyzer(plainAnalyzer()))
	if err != nil {
		t.Fatal(err)
	}
	defer main.Close()
	brk, err := core.Open(fs, "tax", core.BackendMneme, core.WithAnalyzer(plainAnalyzer()),
		core.WithBreaker(2, 100))
	if err != nil {
		t.Fatal(err)
	}
	defer brk.Close()
	shed, err := core.Open(fs, "tax", core.BackendMneme, core.WithAnalyzer(plainAnalyzer()),
		core.WithMaxInFlight(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer shed.Close()

	srv := New(map[string]*core.Engine{"main": main, "brk": brk, "shed": shed},
		Defaults{TopK: 5})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	t.Run("ok", func(t *testing.T) {
		status, _, wr := post(t, ts.URL, req("main", queries[0]))
		if status != 200 || wr.Outcome != core.OutcomeOK {
			t.Fatalf("status %d outcome %q, want 200 ok", status, wr.Outcome)
		}
		if len(wr.Results) == 0 || len(wr.Results) > 5 {
			t.Fatalf("got %d results, want 1..5 (server default top_k)", len(wr.Results))
		}
		if wr.Counters.Queries != 1 {
			t.Fatalf("per-request counter delta = %+v, want exactly one query", wr.Counters)
		}
	})

	t.Run("full-ranking", func(t *testing.T) {
		_, _, capped := post(t, ts.URL, req("main", queries[0]))
		_, _, full := post(t, ts.URL, req("main", queries[0], "top_k", -1))
		if len(full.Results) <= len(capped.Results) {
			t.Fatalf("top_k=-1 returned %d results, capped run %d — expected a longer full ranking",
				len(full.Results), len(capped.Results))
		}
	})

	t.Run("parse-error-400", func(t *testing.T) {
		status, _, wr := post(t, ts.URL, req("main", "#and("))
		if status != 400 || wr.Error == "" {
			t.Fatalf("status %d error %q, want 400 with error text", status, wr.Error)
		}
	})

	t.Run("bad-body-400", func(t *testing.T) {
		for _, body := range []string{"{", `{"quary":"w1"}`, `{"query":"w1","requests":"x"}`} {
			resp, err := http.Post(ts.URL+"/v1/search", "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 400 {
				t.Fatalf("body %q: status %d, want 400", body, resp.StatusCode)
			}
		}
	})

	t.Run("unknown-index-404", func(t *testing.T) {
		status, _, wr := post(t, ts.URL, req("nope", "w1"))
		if status != 404 || !strings.Contains(wr.Error, "nope") {
			t.Fatalf("status %d error %q, want 404 naming the index", status, wr.Error)
		}
		// Multiple engines are configured, so a request must name one.
		status, _, _ = post(t, ts.URL, req("", "w1"))
		if status != 404 {
			t.Fatalf("unnamed index with several served: status %d, want 404", status)
		}
	})

	t.Run("deadline-504-partial", func(t *testing.T) {
		status, _, wr := post(t, ts.URL, req("main", queries[0], "deadline_ns", 1))
		if status != 504 || wr.Outcome != core.OutcomeDeadline {
			t.Fatalf("status %d outcome %q, want 504 deadline", status, wr.Outcome)
		}
		if wr.Counters.DeadlineHits != 1 {
			t.Fatalf("deadline delta = %+v, want DeadlineHits=1", wr.Counters)
		}
	})

	t.Run("degraded-200-partial", func(t *testing.T) {
		// Per-request opt-in: the engine itself is strict, the request
		// asks to skip the injected fault and rank the surviving terms.
		fs.SetFaultPlan(vfs.NewFaultPlan(1).FailRead(1))
		status, _, wr := post(t, ts.URL, req("main", "#or(w1 w2)", "degraded", true))
		fs.SetFaultPlan(nil)
		if status != 200 || wr.Outcome != core.OutcomeDegraded {
			t.Fatalf("status %d outcome %q, want 200 degraded", status, wr.Outcome)
		}
		if wr.Counters.CorruptRecords == 0 {
			t.Fatal("degraded reply does not tally the damage")
		}
		if len(wr.Results) == 0 {
			t.Fatal("degraded reply ranked nothing although one term survived")
		}
	})

	t.Run("strict-fault-500", func(t *testing.T) {
		fs.SetFaultPlan(vfs.NewFaultPlan(1).FailRead(1))
		status, _, wr := post(t, ts.URL, req("main", "w1"))
		fs.SetFaultPlan(nil)
		if status != 500 || wr.Outcome != core.OutcomeError {
			t.Fatalf("status %d outcome %q, want 500 error", status, wr.Outcome)
		}
	})

	t.Run("breaker-503", func(t *testing.T) {
		// Two failing fetches trip the strict engine's breaker; with the
		// outage cleared but the breaker still open, the next query is
		// rejected without touching the device.
		fs.SetFaultPlan(vfs.NewFaultPlan(1).FailReadEvery(1))
		for i := 0; i < 2; i++ {
			if status, _, _ := post(t, ts.URL, req("brk", "w1")); status != 500 {
				t.Fatalf("outage query %d: status %d, want 500", i, status)
			}
		}
		fs.SetFaultPlan(nil)
		status, _, wr := post(t, ts.URL, req("brk", "w1"))
		if status != 503 {
			t.Fatalf("open breaker: status %d (outcome %q, error %q), want 503",
				status, wr.Outcome, wr.Error)
		}
	})

	t.Run("batch-per-request-status", func(t *testing.T) {
		body := map[string]any{
			"index": "main",
			"requests": []map[string]any{
				{"query": queries[0]},
				{"query": "#and("},
				{"query": queries[1], "deadline_ns": 1},
			},
		}
		data, _ := json.Marshal(body)
		resp, err := http.Post(ts.URL+"/v1/search", "application/json", bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("batch transport status %d, want 200", resp.StatusCode)
		}
		var br struct {
			Index     string     `json:"index"`
			Responses []wireResp `json:"responses"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
			t.Fatal(err)
		}
		if br.Index != "main" || len(br.Responses) != 3 {
			t.Fatalf("batch reply %+v", br)
		}
		want := []int{200, 400, 504}
		for i, w := range want {
			if br.Responses[i].Status != w {
				t.Fatalf("batch response %d status = %d, want %d", i, br.Responses[i].Status, w)
			}
		}
	})

	t.Run("batch-limit-400", func(t *testing.T) {
		reqs := make([]map[string]any, DefaultMaxBatch+1)
		for i := range reqs {
			reqs[i] = map[string]any{"query": "w1"}
		}
		data, _ := json.Marshal(map[string]any{"index": "main", "requests": reqs})
		resp, err := http.Post(ts.URL+"/v1/search", "application/json", bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Fatalf("oversized batch: status %d, want 400", resp.StatusCode)
		}
	})

	t.Run("healthz-and-draining", func(t *testing.T) {
		get := func(want int) string {
			resp, err := http.Get(ts.URL + "/healthz")
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			b, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != want {
				t.Fatalf("healthz status %d, want %d (%s)", resp.StatusCode, want, b)
			}
			return string(b)
		}
		if body := get(200); !strings.Contains(body, `"main"`) {
			t.Fatalf("healthz body lacks index listing: %s", body)
		}
		srv.SetDraining(true)
		if body := get(503); !strings.Contains(body, "draining") {
			t.Fatalf("draining healthz body: %s", body)
		}
		srv.SetDraining(false)
		get(200)
	})

	t.Run("metrics", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		for _, want := range []string{"http_requests_total", "http_2xx_total", `"main"`, `"brk"`, `"shed"`} {
			if !strings.Contains(string(b), want) {
				t.Fatalf("metrics body lacks %s: %s", want, b)
			}
		}
	})

	t.Run("snapshot", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/snapshot?index=main")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != 200 || !strings.Contains(string(b), "corrupt_records") {
			t.Fatalf("snapshot status %d body %s", resp.StatusCode, b)
		}
		resp, err = http.Get(ts.URL + "/snapshot?index=nope")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 404 {
			t.Fatalf("snapshot of unknown index: status %d, want 404", resp.StatusCode)
		}
	})

	t.Run("explain", func(t *testing.T) {
		_, _, wr := post(t, ts.URL, req("main", queries[0]))
		if len(wr.Results) == 0 {
			t.Fatal("no results to explain")
		}
		u := fmt.Sprintf("%s/v1/explain?index=main&query=%s&doc=%d",
			ts.URL, "w1", wr.Results[0].Doc)
		resp, err := http.Get(u)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != 200 || !strings.Contains(string(b), "belief") {
			t.Fatalf("explain status %d body %s", resp.StatusCode, b)
		}
		for _, bad := range []string{"/v1/explain?index=main&query=w1", "/v1/explain?index=main&doc=0"} {
			resp, err := http.Get(ts.URL + bad)
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 400 {
				t.Fatalf("%s: status %d, want 400", bad, resp.StatusCode)
			}
		}
	})
}

// stubIndex drives the handler with a fixed engine outcome, reaching
// response states (a full admission gate, an open breaker) that need
// engine-internal timing to produce with a real engine.
type stubIndex struct {
	resp   core.Response
	err    error
	reg    *obs.Registry
	health core.Health
}

func (s *stubIndex) Run(context.Context, core.Request) (core.Response, error) { return s.resp, s.err }
func (s *stubIndex) Explain(string, uint32) (*inference.Explanation, error) {
	return nil, errors.New("stub")
}
func (s *stubIndex) Metrics() *obs.Registry  { return s.reg }
func (s *stubIndex) Snapshot() core.Snapshot { return core.Snapshot{} }
func (s *stubIndex) NumDocs() int            { return 0 }
func (s *stubIndex) Health() core.Health     { return s.health }

// TestOutcomeStatusMapping asserts the documented outcome → HTTP status
// taxonomy through the real handler stack, one stub engine per outcome.
// The engine-side production of these outcomes (gate sheds with ErrShed,
// breakers open after threshold failures) is covered by the core tests;
// here the contract under test is the wire mapping itself.
func TestOutcomeStatusMapping(t *testing.T) {
	cases := []struct {
		name       string
		resp       core.Response
		err        error
		wantStatus int
		retryAfter string
	}{
		{"ok", core.Response{Outcome: core.OutcomeOK}, nil, 200, ""},
		{"degraded", core.Response{Outcome: core.OutcomeDegraded}, nil, 200, ""},
		{"shed",
			core.Response{Outcome: core.OutcomeShed},
			fmt.Errorf("core: query not admitted: %w", resilience.ErrShed), 429, "1"},
		{"deadline",
			core.Response{Outcome: core.OutcomeDeadline},
			fmt.Errorf("core: query cut short: %w", resilience.ErrDeadline), 504, ""},
		{"breaker-open",
			core.Response{Outcome: core.OutcomeError},
			fmt.Errorf("core: fetch: %w", resilience.ErrBreakerOpen), 503, "jitter"},
		{"sharded-partial",
			core.Response{Outcome: core.OutcomePartial,
				Coverage: &core.Coverage{Shards: 4, Answered: 3, Failed: 1, MissingShards: []int{2}}},
			nil, 200, ""},
		{"no-quorum",
			core.Response{Outcome: core.OutcomeError,
				Coverage: &core.Coverage{Shards: 4, Answered: 1, Failed: 3}},
			fmt.Errorf("shard: 1/4 shards answered, quorum 3: %w", resilience.ErrNoQuorum), 503, "jitter"},
		{"hard-error",
			core.Response{Outcome: core.OutcomeError}, errors.New("disk on fire"), 500, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv := NewIndexes(map[string]Index{
				"x": &stubIndex{resp: tc.resp, err: tc.err, reg: obs.NewRegistry()},
			}, Defaults{})
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			status, hdr, wr := post(t, ts.URL, req("x", "w1"))
			if status != tc.wantStatus {
				t.Fatalf("status %d, want %d (outcome %q error %q)",
					status, tc.wantStatus, wr.Outcome, wr.Error)
			}
			if tc.retryAfter == "jitter" {
				// 503s carry a seeded-jitter Retry-After in [1,3]s so a
				// herd of honoring clients spreads out.
				sec, err := strconv.Atoi(hdr.Get("Retry-After"))
				if err != nil || sec < 1 || sec > 3 {
					t.Fatalf("Retry-After = %q, want integer in [1,3]", hdr.Get("Retry-After"))
				}
			} else if got := hdr.Get("Retry-After"); got != tc.retryAfter {
				t.Fatalf("Retry-After = %q, want %q", got, tc.retryAfter)
			}
			if wr.Outcome != tc.resp.Outcome {
				t.Fatalf("body outcome %q, want %q", wr.Outcome, tc.resp.Outcome)
			}
			if tc.err != nil && wr.Error == "" {
				t.Fatal("error text missing from non-ok reply")
			}
		})
	}
}

// TestHealthzBreakerStates: /healthz reports each index's serving
// fitness with breaker states, and flips to 503 "unhealthy" only when
// no index can serve at all.
func TestHealthzBreakerStates(t *testing.T) {
	healthy := &stubIndex{reg: obs.NewRegistry(),
		health: core.Health{Docs: 7, Serving: true, Breakers: map[string]string{"small": "closed"}}}
	dead := &stubIndex{reg: obs.NewRegistry(),
		health: core.Health{Docs: 9, Serving: false, Breakers: map[string]string{"shard0": "open", "shard1": "open"}}}

	getHealthz := func(t *testing.T, srv *Server) (int, string) {
		t.Helper()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	// One dead index among healthy ones: still 200, but the dead
	// index's breaker states are visible.
	srv := NewIndexes(map[string]Index{"a": healthy, "b": dead}, Defaults{})
	status, body := getHealthz(t, srv)
	if status != 200 || !strings.Contains(body, `"ok"`) {
		t.Fatalf("mixed health: status %d body %s", status, body)
	}
	if !strings.Contains(body, `"shard0":"open"`) || !strings.Contains(body, `"serving":false`) {
		t.Fatalf("healthz body lacks breaker detail: %s", body)
	}

	// Every index dead: 503 unhealthy.
	srv = NewIndexes(map[string]Index{"b": dead}, Defaults{})
	if status, body = getHealthz(t, srv); status != 503 || !strings.Contains(body, "unhealthy") {
		t.Fatalf("all dead: status %d body %s", status, body)
	}
}

// TestSingleEngineDefaultIndex: with one configured index, requests may
// omit the index name entirely.
func TestSingleEngineDefaultIndex(t *testing.T) {
	fs := vfs.New(vfs.Options{OSCacheBytes: 512 << 10})
	queries := buildCorpus(t, fs, "solo")
	eng, err := core.Open(fs, "solo", core.BackendMneme, core.WithAnalyzer(plainAnalyzer()))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	srv := New(map[string]*core.Engine{"solo": eng}, Defaults{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, _, wr := post(t, ts.URL, req("", queries[0]))
	if status != 200 || wr.Outcome != core.OutcomeOK {
		t.Fatalf("status %d outcome %q, want 200 ok", status, wr.Outcome)
	}
	if len(wr.Results) == 0 || len(wr.Results) > DefaultTopK {
		t.Fatalf("got %d results, want 1..%d", len(wr.Results), DefaultTopK)
	}
}

// TestHTTPDifferentialMatchesInProcess proves the wire rankings are
// byte-identical to in-process Searcher.Run over the whole query matrix
// in every evaluation mode: the serialized "results" array of the HTTP
// reply must equal json.Marshal of the in-process results exactly.
func TestHTTPDifferentialMatchesInProcess(t *testing.T) {
	fs := vfs.New(vfs.Options{OSCacheBytes: 512 << 10})
	queries := buildCorpus(t, fs, "diff")
	eng, err := core.Open(fs, "diff", core.BackendMneme, core.WithAnalyzer(plainAnalyzer()))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	srv := New(map[string]*core.Engine{"diff": eng}, Defaults{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	modes := []struct {
		name string
		mode core.Mode
		prt  bool
	}{
		{"taat", core.ModeTAAT, false},
		{"daat", core.ModeDAAT, false},
		{"daat-prune", core.ModeDAAT, true},
	}
	for _, m := range modes {
		for qi, q := range queries {
			wire := struct {
				Index string `json:"index"`
				core.Request
			}{Index: "diff", Request: core.Request{Query: q, TopK: 10, Mode: m.mode, Prune: m.prt}}
			data, err := json.Marshal(wire)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.Post(ts.URL+"/v1/search", "application/json", bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			var raw struct {
				Results json.RawMessage `json:"results"`
			}
			err = json.NewDecoder(resp.Body).Decode(&raw)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != 200 {
				t.Fatalf("%s query %d: status %d", m.name, qi, resp.StatusCode)
			}

			local, err := eng.Run(nil, core.Request{Query: q, TopK: 10, Mode: m.mode, Prune: m.prt})
			if err != nil {
				t.Fatalf("%s query %d in-process: %v", m.name, qi, err)
			}
			want, err := json.Marshal(local.Results)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(bytes.TrimSpace(raw.Results), want) {
				t.Fatalf("%s query %d %q rankings diverge:\nhttp:  %s\nlocal: %s",
					m.name, qi, q, raw.Results, want)
			}
		}
	}
}

// TestNoGoroutineLeakAfterServe: a burst of mixed traffic (ok, shed,
// deadline) then server close must return the goroutine count to its
// baseline — nothing stranded in handlers, gates, or timers.
func TestNoGoroutineLeakAfterServe(t *testing.T) {
	fs := vfs.New(vfs.Options{OSCacheBytes: 512 << 10})
	queries := buildCorpus(t, fs, "leak")
	eng, err := core.Open(fs, "leak", core.BackendMneme, core.WithAnalyzer(plainAnalyzer()),
		core.WithMaxInFlight(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	before := runtime.NumGoroutine()
	srv := New(map[string]*core.Engine{"leak": eng}, Defaults{})
	ts := httptest.NewServer(srv.Handler())
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := req("leak", queries[i%len(queries)])
			if i%3 == 0 {
				body["deadline_ns"] = 1
			}
			data, _ := json.Marshal(body)
			resp, err := http.Post(ts.URL+"/v1/search", "application/json", bytes.NewReader(data))
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(i)
	}
	wg.Wait()
	ts.Close()
	http.DefaultClient.CloseIdleConnections()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d before, %d after close", before, runtime.NumGoroutine())
}
