// Package serve is the inqueryd HTTP serving layer: a long-running
// JSON front end over one core.Engine per configured index. The
// handlers marshal core.Request / core.Response directly, so the wire
// API is exactly the in-process request API, and the engine's own
// admission gate, deadlines, retry budget, and circuit breakers apply
// per request — the server adds only transport, defaults, and the
// status taxonomy.
//
// Status taxonomy (asserted by the handler test suite):
//
//	200 — complete ranking (outcome "ok"), a partial ranking with
//	      outcome "degraded" (corrupt records skipped; the flag and the
//	      damage tally are in the body), or a sharded partial with
//	      outcome "partial" (quorum met with shards missing; the
//	      "coverage" block says exactly which and why)
//	400 — query failed to parse (inference.ParseError), or the request
//	      body itself is malformed
//	404 — unknown index name
//	429 — shed by admission control (outcome "shed"; Retry-After: 1)
//	503 — a circuit breaker is open, a sharded index lost quorum
//	      (resilience.ErrNoQuorum), or the server is draining
//	504 — deadline exceeded (outcome "deadline"; the body carries the
//	      partial ranking, labelled, never passed off as complete)
//	500 — any other hard failure (storage corruption on a strict
//	      engine, I/O errors)
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/inference"
	"repro/internal/obs"
	"repro/internal/resilience"
)

// Defaults are server-side request defaults, applied to fields a
// request body leaves unset before it reaches the engine.
type Defaults struct {
	// TopK is the ranking depth applied when a request gives none.
	// A request can ask for the full ranking with top_k: -1. Zero
	// selects DefaultTopK.
	TopK int
	// Deadline is the per-request evaluation budget applied when a
	// request gives none (0 = none).
	Deadline time.Duration
	// MaxBatch caps the number of requests in one batch body. Zero
	// selects DefaultMaxBatch.
	MaxBatch int
	// MaxBodyBytes caps the request body. Zero selects DefaultMaxBody.
	MaxBodyBytes int64
	// RetryJitterSeed seeds the Retry-After jitter on 503 responses
	// (deterministic for tests; any fixed seed is fine in production).
	RetryJitterSeed int64
}

// DefaultTopK is the ranking depth served when neither the request nor
// the server configuration names one.
const DefaultTopK = 10

// DefaultMaxBatch bounds a batch request body.
const DefaultMaxBatch = 256

// DefaultMaxBody bounds any request body.
const DefaultMaxBody = 1 << 20

// Index is what the handlers need from a served index — the slice of
// core.Engine the HTTP layer actually touches. Tests substitute stubs
// to drive outcome paths (shed, breaker-open) that need engine-internal
// state to reach deterministically.
type Index interface {
	Run(ctx context.Context, req core.Request) (core.Response, error)
	Explain(query string, doc uint32) (*inference.Explanation, error)
	Metrics() *obs.Registry
	Snapshot() core.Snapshot
	NumDocs() int
	Health() core.Health
}

// Ingester is the optional write surface of a served index. An index
// whose underlying engine supports near-real-time ingest (core.NRTEngine)
// implements it; batch-built engines do not, and POST /v1/ingest
// reports 501 for them.
type Ingester interface {
	// Ingest indexes a batch of documents atomically and durably,
	// returning the first assigned document ID. The documents are
	// searchable when Ingest returns.
	Ingest(texts ...string) (uint32, error)
}

// Server routes the inqueryd endpoints over a set of named indexes.
// The engines are shared; per-request state lives in the per-call
// Searcher that Engine.Run acquires, so any number of in-flight HTTP
// requests evaluate concurrently.
type Server struct {
	engines  map[string]Index
	names    []string
	defaults Defaults

	reg      *obs.Registry
	httpm    *obs.HTTPMetrics
	handler  http.Handler
	draining atomic.Bool

	// jmu/jrand seed the small Retry-After jitter attached to 503
	// unavailable responses, so a synchronized client herd spreads out
	// instead of re-converging on the breaker's next probe window.
	jmu   sync.Mutex
	jrand *rand.Rand
}

// New builds a server over the named engines (index name → engine).
func New(engines map[string]*core.Engine, d Defaults) *Server {
	idx := make(map[string]Index, len(engines))
	for n, e := range engines {
		idx[n] = e
	}
	return NewIndexes(idx, d)
}

// NewIndexes is New over the Index interface.
func NewIndexes(engines map[string]Index, d Defaults) *Server {
	if d.TopK == 0 {
		d.TopK = DefaultTopK
	}
	if d.MaxBatch <= 0 {
		d.MaxBatch = DefaultMaxBatch
	}
	if d.MaxBodyBytes <= 0 {
		d.MaxBodyBytes = DefaultMaxBody
	}
	names := make([]string, 0, len(engines))
	for n := range engines {
		names = append(names, n)
	}
	sort.Strings(names)
	s := &Server{engines: engines, names: names, defaults: d, reg: obs.NewRegistry()}
	s.jrand = rand.New(rand.NewSource(d.RetryJitterSeed))
	s.httpm = obs.NewHTTPMetrics(s.reg)

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/search", s.handleSearch)
	mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	mux.HandleFunc("GET /v1/explain", s.handleExplain)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.handler = s.httpm.Middleware(mux)
	return s
}

// Handler returns the fully instrumented route tree.
func (s *Server) Handler() http.Handler { return s.handler }

// Metrics exposes the server-level metrics registry (HTTP layer only;
// engine metrics are per index under /metrics).
func (s *Server) Metrics() *obs.Registry { return s.reg }

// SetDraining flips the drain flag: while draining, /healthz reports
// 503 so load balancers stop routing here, but in-flight and new
// requests still complete — http.Server.Shutdown does the actual
// listener close and drain wait.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// engine resolves an index name, defaulting to the single configured
// engine when the request names none.
func (s *Server) engine(name string) (Index, string, error) {
	if name == "" {
		if len(s.names) == 1 {
			return s.engines[s.names[0]], s.names[0], nil
		}
		return nil, "", fmt.Errorf("index must be named; serving %s", strings.Join(s.names, ", "))
	}
	e, ok := s.engines[name]
	if !ok {
		return nil, "", fmt.Errorf("unknown index %q; serving %s", name, strings.Join(s.names, ", "))
	}
	return e, name, nil
}

// applyDefaults folds the server defaults into a request: top_k 0
// means "server default" on the wire (use -1 for the full ranking),
// and an absent deadline inherits the server budget.
func (s *Server) applyDefaults(req core.Request) core.Request {
	if req.TopK == 0 {
		req.TopK = s.defaults.TopK
	} else if req.TopK < 0 {
		req.TopK = 0 // full ranking
	}
	if req.Deadline == 0 {
		req.Deadline = s.defaults.Deadline
	}
	return req
}

// StatusFor maps a finished request onto the HTTP status taxonomy.
func StatusFor(outcome core.Outcome, err error) int {
	switch outcome {
	case core.OutcomeOK, core.OutcomeDegraded, core.OutcomePartial:
		return http.StatusOK
	case core.OutcomeShed:
		return http.StatusTooManyRequests
	case core.OutcomeDeadline:
		return http.StatusGatewayTimeout
	}
	var pe *inference.ParseError
	switch {
	case errors.As(err, &pe):
		return http.StatusBadRequest
	case errors.Is(err, resilience.ErrBreakerOpen):
		return http.StatusServiceUnavailable
	case errors.Is(err, resilience.ErrNoQuorum):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// searchBody is the POST /v1/search request body: an optional index
// name plus either one inline core.Request (single mode) or a
// "requests" array (batch mode).
type searchBody struct {
	Index string `json:"index,omitempty"`
	core.Request
	Requests []core.Request `json:"requests,omitempty"`
}

// queryReply is one evaluated request on the wire: the core.Response
// plus the error text for non-2xx outcomes and, in batch mode, the
// per-request status code.
type queryReply struct {
	core.Response
	Status int    `json:"status,omitempty"`
	Error  string `json:"error,omitempty"`
}

// batchReply is the batch-mode response body. The HTTP status of a
// batch is always 200 (the transport worked); per-request outcomes
// carry their own status codes.
type batchReply struct {
	Index     string       `json:"index"`
	Responses []queryReply `json:"responses"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// setRetryAfter attaches retry guidance to backpressure statuses: a
// fixed 1s on 429 (shed — capacity frees as soon as in-flight work
// drains) and a seeded-jitter 1-3s on 503 (breaker open / no quorum —
// recovery takes a probe cycle, and jitter keeps a herd of honoring
// clients from re-converging on the same instant).
func (s *Server) setRetryAfter(w http.ResponseWriter, status int) {
	switch status {
	case http.StatusTooManyRequests:
		w.Header().Set("Retry-After", "1")
	case http.StatusServiceUnavailable:
		s.jmu.Lock()
		sec := 1 + s.jrand.Intn(3)
		s.jmu.Unlock()
		w.Header().Set("Retry-After", strconv.Itoa(sec))
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// runOne evaluates one request under the HTTP request's context — a
// disconnected client cancels the evaluation at the next boundary —
// and shapes the wire reply.
func runOne(ctx context.Context, eng Index, req core.Request) (queryReply, int) {
	resp, err := eng.Run(ctx, req)
	status := StatusFor(resp.Outcome, err)
	qr := queryReply{Response: resp}
	if err != nil {
		qr.Error = err.Error()
	}
	return qr, status
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.defaults.MaxBodyBytes)
	var body searchBody
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	eng, name, err := s.engine(body.Index)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}

	if len(body.Requests) == 0 {
		qr, status := runOne(r.Context(), eng, s.applyDefaults(body.Request))
		s.setRetryAfter(w, status)
		writeJSON(w, status, qr)
		return
	}

	if len(body.Requests) > s.defaults.MaxBatch {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("batch of %d exceeds limit %d", len(body.Requests), s.defaults.MaxBatch))
		return
	}
	// Batch requests evaluate in order on this connection's goroutine;
	// parallelism comes from concurrent HTTP requests, and the engine
	// admission gate still arbitrates each evaluation individually.
	// Duplicate entries — same core.Request.CanonicalKey after defaults,
	// the same identity the engine result cache uses — evaluate once,
	// and every later copy is answered with the first complete ranking.
	// Only clean (OutcomeOK) evaluations are replicated: a shed,
	// deadline, or degraded outcome is that one request's fate, not an
	// answer.
	out := batchReply{Index: name, Responses: make([]queryReply, 0, len(body.Requests))}
	seen := make(map[string]queryReply, len(body.Requests))
	for _, req := range body.Requests {
		req = s.applyDefaults(req)
		key := req.CanonicalKey()
		if d, ok := seen[key]; ok {
			out.Responses = append(out.Responses, d)
			continue
		}
		qr, status := runOne(r.Context(), eng, req)
		qr.Status = status
		if qr.Error == "" && qr.Outcome == core.OutcomeOK {
			seen[key] = qr
		}
		out.Responses = append(out.Responses, qr)
	}
	writeJSON(w, http.StatusOK, out)
}

// ingestBody is the POST /v1/ingest request body.
type ingestBody struct {
	Index string `json:"index,omitempty"`
	// Docs holds the document texts, indexed in order: the first
	// receives the returned first_id, the rest consecutive IDs.
	Docs []string `json:"docs"`
}

// ingestReply is the POST /v1/ingest response body. When it arrives
// the batch is durable and searchable.
type ingestReply struct {
	Index   string `json:"index"`
	FirstID uint32 `json:"first_id"`
	Count   int    `json:"count"`
	// Docs is the index's total searchable document count after the
	// batch.
	Docs int `json:"docs"`
}

// handleIngest routes a document batch to the named index's ingest
// surface. Indexes without one (batch-built engines) answer 501. The
// batch either fully acknowledges (200) or fully fails — a 5xx means
// nothing was indexed and the batch is safe to retry.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.defaults.MaxBodyBytes)
	var body ingestBody
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	eng, name, err := s.engine(body.Index)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	ing, ok := eng.(Ingester)
	if !ok {
		writeError(w, http.StatusNotImplemented,
			fmt.Errorf("index %q is batch-built and does not accept ingest", name))
		return
	}
	if len(body.Docs) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("empty docs batch"))
		return
	}
	if len(body.Docs) > s.defaults.MaxBatch {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("batch of %d exceeds limit %d", len(body.Docs), s.defaults.MaxBatch))
		return
	}
	first, err := ing.Ingest(body.Docs...)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, ingestReply{
		Index: name, FirstID: first, Count: len(body.Docs), Docs: eng.NumDocs(),
	})
}

// explainReply is the GET /v1/explain response body.
type explainReply struct {
	Index  string  `json:"index"`
	Doc    uint32  `json:"doc"`
	Belief float64 `json:"belief"`
	Tree   string  `json:"tree"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	eng, name, err := s.engine(q.Get("index"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	query := q.Get("query")
	if query == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing query parameter"))
		return
	}
	doc, err := strconv.ParseUint(q.Get("doc"), 10, 32)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad doc parameter: %w", err))
		return
	}
	ex, err := eng.Explain(query, uint32(doc))
	if err != nil {
		writeError(w, StatusFor(core.OutcomeError, err), err)
		return
	}
	writeJSON(w, http.StatusOK, explainReply{
		Index: name, Doc: uint32(doc), Belief: ex.Belief, Tree: ex.String(),
	})
}

// metricsReply is the GET /metrics response body: the HTTP layer's own
// registry plus every engine's registry, keyed by index.
type metricsReply struct {
	Server  obs.RegistrySnapshot            `json:"server"`
	Indexes map[string]obs.RegistrySnapshot `json:"indexes"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	out := metricsReply{Server: s.reg.Snapshot(), Indexes: make(map[string]obs.RegistrySnapshot, len(s.names))}
	for _, n := range s.names {
		out.Indexes[n] = s.engines[n].Metrics().Snapshot()
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if name := r.URL.Query().Get("index"); name != "" {
		eng, _, err := s.engine(name)
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, eng.Snapshot())
		return
	}
	out := make(map[string]core.Snapshot, len(s.names))
	for _, n := range s.names {
		out[n] = s.engines[n].Snapshot()
	}
	writeJSON(w, http.StatusOK, out)
}

// healthzReply is the GET /healthz response body: the overall status
// ("ok", "draining", or "unhealthy") plus each index's serving fitness
// — document count, whether it can answer queries right now, and its
// per-pool (or per-shard) breaker states.
type healthzReply struct {
	Status  string                 `json:"status"`
	Indexes map[string]int         `json:"indexes"` // index → document count
	Health  map[string]core.Health `json:"health"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	reply := healthzReply{
		Indexes: make(map[string]int, len(s.names)),
		Health:  make(map[string]core.Health, len(s.names)),
	}
	anyServing := false
	for _, n := range s.names {
		h := s.engines[n].Health()
		reply.Indexes[n] = h.Docs
		reply.Health[n] = h
		if h.Serving {
			anyServing = true
		}
	}
	switch {
	case s.draining.Load():
		reply.Status = "draining"
		writeJSON(w, http.StatusServiceUnavailable, reply)
	case !anyServing:
		// No index can answer anything — open breakers everywhere (or
		// quorum unreachable on every sharded index). Load balancers
		// should stop routing here until something heals.
		reply.Status = "unhealthy"
		writeJSON(w, http.StatusServiceUnavailable, reply)
	default:
		reply.Status = "ok"
		writeJSON(w, http.StatusOK, reply)
	}
}
