package loadgen

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// stubServer answers /v1/search with a fixed status and outcome and
// counts per-query arrivals.
func stubServer(t *testing.T, status int, outcome string, delay time.Duration) (*httptest.Server, *sync.Map, *atomic.Int64) {
	t.Helper()
	var hits sync.Map
	var total atomic.Int64
	h := http.NewServeMux()
	h.HandleFunc("POST /v1/search", func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			Query string `json:"query"`
		}
		json.NewDecoder(r.Body).Decode(&body)
		v, _ := hits.LoadOrStore(body.Query, new(atomic.Int64))
		v.(*atomic.Int64).Add(1)
		total.Add(1)
		if delay > 0 {
			time.Sleep(delay)
		}
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(map[string]any{"outcome": outcome})
	})
	h.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(200)
	})
	return httptest.NewServer(h), &hits, &total
}

// TestClosedLoopRequestBudget: a closed-loop run bounded by request
// count issues exactly that many requests and reports them all.
func TestClosedLoopRequestBudget(t *testing.T) {
	ts, _, total := stubServer(t, 200, "ok", 0)
	defer ts.Close()
	rep, err := Run(context.Background(), Config{
		Target:   ts.URL,
		Queries:  []string{"a", "b", "c"},
		Requests: 100,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := total.Load(); got != 100 {
		t.Fatalf("server saw %d requests, want 100", got)
	}
	if rep.Requests != 100 || rep.Errors != 0 {
		t.Fatalf("report = %+v, want 100 clean requests", rep)
	}
	if rep.Status[200] != 100 || rep.Outcomes["ok"] != 100 {
		t.Fatalf("status/outcome tallies = %v / %v", rep.Status, rep.Outcomes)
	}
	if rep.QPS <= 0 || rep.P95ms < rep.P50ms || rep.MaxMs < rep.P99ms {
		t.Fatalf("incoherent latency stats: %+v", rep)
	}
}

// TestZipfQueryMixIsSkewed: the head of the pool must dominate the
// sampled mix — that skew is the point of the Zipf draw.
func TestZipfQueryMixIsSkewed(t *testing.T) {
	ts, hits, _ := stubServer(t, 200, "ok", 0)
	defer ts.Close()
	pool := make([]string, 50)
	for i := range pool {
		pool[i] = "q" + string(rune('A'+i%26)) + string(rune('0'+i/26))
	}
	if _, err := Run(context.Background(), Config{
		Target: ts.URL, Queries: pool, Requests: 500, Seed: 3,
	}); err != nil {
		t.Fatal(err)
	}
	count := func(q string) int64 {
		v, ok := hits.Load(q)
		if !ok {
			return 0
		}
		return v.(*atomic.Int64).Load()
	}
	head := count(pool[0])
	if head < 500/10 {
		t.Fatalf("head query drew %d of 500 samples — mix is not Zipf-skewed", head)
	}
	var tail int64
	for _, q := range pool[25:] {
		tail += count(q)
	}
	if tail >= head {
		t.Fatalf("tail half drew %d >= head query's %d", tail, head)
	}
}

// TestShedRateCounted: 429 replies land in ShedRate, not Errors.
func TestShedRateCounted(t *testing.T) {
	ts, _, _ := stubServer(t, 429, "shed", 0)
	defer ts.Close()
	rep, err := Run(context.Background(), Config{
		Target: ts.URL, Queries: []string{"a"}, Requests: 40, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ShedRate != 1 || rep.Errors != 0 {
		t.Fatalf("shed run report = %+v, want ShedRate 1", rep)
	}
}

// TestClosedLoopHonorsRetryAfter: a shed response carrying Retry-After
// makes the closed-loop worker back off (seeded jitter) and re-issue
// the request once, counted as retried_after_shed. The stub advertises
// a zero-second budget so the test runs at full speed.
func TestClosedLoopHonorsRetryAfter(t *testing.T) {
	var total atomic.Int64
	h := http.NewServeMux()
	h.HandleFunc("POST /v1/search", func(w http.ResponseWriter, r *http.Request) {
		total.Add(1)
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(429)
		json.NewEncoder(w).Encode(map[string]any{"outcome": "shed"})
	})
	ts := httptest.NewServer(h)
	defer ts.Close()
	rep, err := Run(context.Background(), Config{
		Target: ts.URL, Queries: []string{"a"}, Requests: 20, Seed: 3, Concurrency: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RetriedAfterShed != 20 {
		t.Fatalf("retried_after_shed = %d, want 20", rep.RetriedAfterShed)
	}
	// Each budgeted request plus its one honored retry reached the
	// server; retries do not consume the request budget.
	if got := total.Load(); got != 40 {
		t.Fatalf("server saw %d requests, want 40", got)
	}
	if rep.Requests != 40 {
		t.Fatalf("report requests = %d, want 40 observed", rep.Requests)
	}
}

// TestOpenLoopClientShed: with a slow server, a 1-outstanding cap, and
// arrivals much faster than service, the open loop must drop arrivals
// client-side rather than stacking unbounded goroutines.
func TestOpenLoopClientShed(t *testing.T) {
	ts, _, _ := stubServer(t, 200, "ok", 30*time.Millisecond)
	defer ts.Close()
	rep, err := Run(context.Background(), Config{
		Target:      ts.URL,
		Queries:     []string{"a"},
		Discipline:  Open,
		QPS:         300,
		Concurrency: 1,
		Duration:    300 * time.Millisecond,
		Seed:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("open loop completed no requests")
	}
	if rep.ClientShed == 0 {
		t.Fatalf("no client-side sheds despite 300 qps against a 30ms server: %+v", rep)
	}
}

// TestConfigValidation: bad configurations fail fast.
func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Target: "http://x", Duration: time.Second},                                            // no queries
		{Target: "http://x", Queries: []string{"a"}},                                           // no stop condition
		{Target: "http://x", Queries: []string{"a"}, Duration: time.Second, ZipfS: 0.5},        // zipf <= 1
		{Target: "http://x", Queries: []string{"a"}, Duration: time.Second, Discipline: Open},  // open loop, no qps
		{Target: "http://x", Queries: []string{"a"}, Duration: time.Second, Discipline: "odd"}, // unknown mode
	}
	for i, cfg := range bad {
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
}

// TestWaitReady polls until the target serves /healthz.
func TestWaitReady(t *testing.T) {
	ts, _, _ := stubServer(t, 200, "ok", 0)
	if err := WaitReady(ts.URL, time.Second); err != nil {
		t.Fatal(err)
	}
	ts.Close()
	if err := WaitReady(ts.URL, 200*time.Millisecond); err == nil {
		t.Fatal("WaitReady succeeded against a closed server")
	}
}

// TestBenchRowShape: the report converts into a serve bench row whose
// stage quantiles are in microseconds and whose serve block carries the
// throughput numbers CompareBench gates.
func TestBenchRowShape(t *testing.T) {
	r := &Report{
		Discipline: Closed, Requests: 10, Seconds: 2, QPS: 5,
		P50ms: 1, P95ms: 2, P99ms: 3, ShedRate: 0.1,
	}
	row := r.BenchRow("serve", "CACM", "1")
	if row.Serve == nil || row.Serve.QPS != 5 || row.Serve.Mode != "closed" {
		t.Fatalf("serve block = %+v", row.Serve)
	}
	if len(row.Stages) != 1 || row.Stages[0].Stage != "http" || row.Stages[0].P95us != 2000 {
		t.Fatalf("stages = %+v, want one http stage in µs", row.Stages)
	}
	if row.Collection != "CACM" || row.QuerySet != "1" || row.Queries != 10 {
		t.Fatalf("row labels = %+v", row)
	}
	if row.Serve.ShedRate != 0.1 {
		t.Fatalf("shed rate = %g", row.Serve.ShedRate)
	}
}
