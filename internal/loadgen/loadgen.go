// Package loadgen drives a live inqueryd with a Zipf-weighted query
// mix and measures what the server actually delivered: achieved QPS,
// wall-clock latency percentiles, the status-code breakdown, and the
// shed rate. Two disciplines are supported:
//
//   - Closed loop: a fixed pool of workers, each issuing its next
//     request as soon as the previous response lands. Throughput is
//     capacity-bound — this measures how fast the server can go.
//   - Open loop: requests arrive on a Poisson schedule at a target
//     rate, independent of responses — this measures what happens to
//     latency and shedding when demand exceeds capacity, without the
//     coordinated-omission bias of closed loops.
//
// Query popularity over the pool follows a seeded Zipf distribution,
// mirroring the collection generator's vocabulary skew: a few hot
// queries dominate, a long tail recurs rarely — the mix the paper's
// buffer-locality argument depends on.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
)

// Discipline selects the load-generation loop.
type Discipline string

const (
	// Closed is the fixed-concurrency worker-pool discipline.
	Closed Discipline = "closed"
	// Open is the Poisson-arrival constant-rate discipline.
	Open Discipline = "open"
)

// Config parameterizes one load-generation run.
type Config struct {
	// Target is the inqueryd base URL (e.g. http://127.0.0.1:7933).
	Target string
	// Index names the served index; empty selects the server default.
	Index string
	// Queries is the query pool sampled per request.
	Queries []string
	// ZipfS is the Zipf exponent of query popularity over the pool
	// (must be > 1; 0 selects 1.2). Higher = hotter head.
	ZipfS float64
	// Seed drives query sampling and open-loop arrival jitter.
	Seed int64
	// Discipline is Closed (default) or Open.
	Discipline Discipline
	// Concurrency is the closed-loop worker count (default 8); in the
	// open loop it caps simultaneously outstanding requests, shedding
	// client-side beyond it so an overloaded run cannot spawn
	// unbounded goroutines.
	Concurrency int
	// QPS is the open-loop target arrival rate (requests/second).
	QPS float64
	// Duration bounds the run in wall-clock time.
	Duration time.Duration
	// Requests, when positive, bounds the run by count instead of (or
	// in addition to) Duration — whichever trips first.
	Requests int
	// TopK, Mode, Deadline, Prune are copied into every request body.
	TopK     int
	Mode     core.Mode
	Deadline time.Duration
	Prune    bool
	// Client overrides the HTTP client (tests); nil uses a dedicated
	// client with a sane per-request timeout.
	Client *http.Client
}

// Report is what one run measured.
type Report struct {
	Discipline Discipline     `json:"discipline"`
	Requests   int            `json:"requests"`
	Seconds    float64        `json:"seconds"`
	QPS        float64        `json:"qps"`
	P50ms      float64        `json:"p50_ms"`
	P95ms      float64        `json:"p95_ms"`
	P99ms      float64        `json:"p99_ms"`
	MaxMs      float64        `json:"max_ms"`
	Status     map[int]int    `json:"status"`
	Outcomes   map[string]int `json:"outcomes"`
	ShedRate   float64        `json:"shed_rate"`
	// ClientShed counts open-loop arrivals dropped client-side because
	// Concurrency requests were already outstanding.
	ClientShed int `json:"client_shed,omitempty"`
	// RetriedAfterUnavail counts closed-loop requests re-issued after
	// a 503 (breaker open / no quorum) honoring its jittered
	// Retry-After hint.
	RetriedAfterUnavail int `json:"retried_after_unavail,omitempty"`
	// RetriedAfterShed counts closed-loop requests re-issued after a
	// 429 whose Retry-After backoff the worker honored (with seeded
	// jitter). Only the closed loop retries: an open loop must keep its
	// arrival schedule or it would hide overload.
	RetriedAfterShed int `json:"retried_after_shed,omitempty"`
	// Errors counts transport failures (no HTTP status at all).
	Errors int `json:"errors"`
}

// wireReply is the slice of the response body the driver reads.
type wireReply struct {
	Outcome core.Outcome `json:"outcome"`
}

// collector accumulates per-request observations across workers.
type collector struct {
	mu                  sync.Mutex
	latencies           []float64 // milliseconds
	status              map[int]int
	outcomes            map[string]int
	errors              int
	clientShed          int
	retriedAfterShed    int
	retriedAfterUnavail int
}

func (c *collector) observe(status int, outcome core.Outcome, d time.Duration, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		c.errors++
		return
	}
	c.latencies = append(c.latencies, float64(d)/float64(time.Millisecond))
	c.status[status]++
	if outcome != "" {
		c.outcomes[string(outcome)]++
	}
}

// WaitReady polls the target's /healthz until it answers 200 or the
// budget elapses — the startup handshake for scripted runs that fork
// inqueryd and immediately aim loadgen at it.
func WaitReady(target string, budget time.Duration) error {
	client := &http.Client{Timeout: time.Second}
	deadline := time.Now().Add(budget)
	var lastErr error
	for time.Now().Before(deadline) {
		resp, err := client.Get(target + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			lastErr = fmt.Errorf("healthz: %s", resp.Status)
		} else {
			lastErr = err
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("loadgen: %s not ready after %v: %w", target, budget, lastErr)
}

// Run executes the configured load against the target and reports what
// was measured. ctx cancels the run early (the report covers what
// completed).
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if len(cfg.Queries) == 0 {
		return nil, fmt.Errorf("loadgen: empty query pool")
	}
	if cfg.Duration <= 0 && cfg.Requests <= 0 {
		return nil, fmt.Errorf("loadgen: need a -duration or a request count")
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.ZipfS == 0 {
		cfg.ZipfS = 1.2
	}
	if cfg.ZipfS <= 1 {
		return nil, fmt.Errorf("loadgen: zipf exponent must exceed 1 (got %g)", cfg.ZipfS)
	}
	if cfg.Discipline == "" {
		cfg.Discipline = Closed
	}
	if cfg.Discipline == Open && cfg.QPS <= 0 {
		return nil, fmt.Errorf("loadgen: open loop needs a target -qps")
	}
	client := cfg.Client
	if client == nil {
		timeout := 30 * time.Second
		if cfg.Deadline > 0 {
			timeout = cfg.Deadline + 10*time.Second
		}
		client = &http.Client{Timeout: timeout}
	}
	if cfg.Duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Duration)
		defer cancel()
	}

	// Pre-marshal one request body per pool entry: the hot path then
	// only samples an index and posts cached bytes.
	bodies := make([][]byte, len(cfg.Queries))
	for i, q := range cfg.Queries {
		req := struct {
			Index string `json:"index,omitempty"`
			core.Request
		}{Index: cfg.Index, Request: core.Request{
			Query: q, TopK: cfg.TopK, Mode: cfg.Mode,
			Deadline: cfg.Deadline, Prune: cfg.Prune,
		}}
		b, err := json.Marshal(req)
		if err != nil {
			return nil, err
		}
		bodies[i] = b
	}
	url := cfg.Target + "/v1/search"
	col := &collector{status: make(map[int]int), outcomes: make(map[string]int)}

	// shoot posts one request and reports the status plus the parsed
	// Retry-After budget (negative when the header is absent), so the
	// closed loop can honor server-directed backoff.
	shoot := func(body []byte) (status int, retryAfter time.Duration) {
		start := time.Now()
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			col.observe(0, "", 0, err)
			return 0, -1
		}
		var wr wireReply
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err == nil {
			// A non-JSON body is still a served status; outcome stays
			// blank rather than failing the request.
			_ = json.Unmarshal(data, &wr)
		}
		col.observe(resp.StatusCode, wr.Outcome, time.Since(start), nil)
		retryAfter = -1
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
				retryAfter = time.Duration(secs) * time.Second
			}
		}
		return resp.StatusCode, retryAfter
	}

	start := time.Now()
	switch cfg.Discipline {
	case Closed:
		runClosed(ctx, cfg, bodies, shoot, col)
	case Open:
		runOpen(ctx, cfg, bodies, shoot, col)
	default:
		return nil, fmt.Errorf("loadgen: unknown discipline %q", cfg.Discipline)
	}
	elapsed := time.Since(start)
	return col.report(cfg.Discipline, elapsed), nil
}

// runClosed runs the fixed worker pool until the context expires or
// the request budget is spent. A worker whose request was shed (429
// with a Retry-After budget) honors the backoff — sleeping the
// server's requested interval scaled by seeded jitter in [0.5, 1.0)
// to avoid a synchronized retry stampede — and then re-issues the same
// request once, counted in the report as retried_after_shed.
func runClosed(ctx context.Context, cfg Config, bodies [][]byte, shoot func([]byte) (int, time.Duration), col *collector) {
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		issued int
	)
	budget := func() bool {
		if cfg.Requests <= 0 {
			return true
		}
		mu.Lock()
		defer mu.Unlock()
		if issued >= cfg.Requests {
			return false
		}
		issued++
		return true
	}
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(worker)*7919))
			zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(len(bodies)-1))
			for ctx.Err() == nil && budget() {
				body := bodies[zipf.Uint64()]
				status, retryAfter := shoot(body)
				backpressure := status == http.StatusTooManyRequests ||
					status == http.StatusServiceUnavailable
				if !backpressure || retryAfter < 0 {
					continue
				}
				backoff := time.Duration((0.5 + 0.5*rng.Float64()) * float64(retryAfter))
				select {
				case <-ctx.Done():
					return
				case <-time.After(backoff):
				}
				col.mu.Lock()
				if status == http.StatusTooManyRequests {
					col.retriedAfterShed++
				} else {
					col.retriedAfterUnavail++
				}
				col.mu.Unlock()
				shoot(body)
			}
		}(w)
	}
	wg.Wait()
}

// runOpen fires requests on a Poisson arrival schedule at cfg.QPS,
// each on its own goroutine, capped at cfg.Concurrency outstanding.
func runOpen(ctx context.Context, cfg Config, bodies [][]byte, shoot func([]byte) (int, time.Duration), col *collector) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(len(bodies)-1))
	sem := make(chan struct{}, cfg.Concurrency)
	var wg sync.WaitGroup
	mean := float64(time.Second) / cfg.QPS
	timer := time.NewTimer(0)
	defer timer.Stop()
	issued := 0
	for ctx.Err() == nil && (cfg.Requests <= 0 || issued < cfg.Requests) {
		select {
		case <-ctx.Done():
		case <-timer.C:
			issued++
			body := bodies[zipf.Uint64()]
			select {
			case sem <- struct{}{}:
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer func() { <-sem }()
					shoot(body)
				}()
			default:
				col.mu.Lock()
				col.clientShed++
				col.mu.Unlock()
			}
			timer.Reset(time.Duration(rng.ExpFloat64() * mean))
		}
	}
	wg.Wait()
}

// report distils the collected observations.
func (c *collector) report(d Discipline, elapsed time.Duration) *Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	sort.Float64s(c.latencies)
	r := &Report{
		Discipline:          d,
		Requests:            len(c.latencies),
		Seconds:             elapsed.Seconds(),
		Status:              c.status,
		Outcomes:            c.outcomes,
		ClientShed:          c.clientShed,
		RetriedAfterShed:    c.retriedAfterShed,
		RetriedAfterUnavail: c.retriedAfterUnavail,
		Errors:              c.errors,
		P50ms:               pct(c.latencies, 0.50),
		P95ms:               pct(c.latencies, 0.95),
		P99ms:               pct(c.latencies, 0.99),
	}
	if n := len(c.latencies); n > 0 {
		r.MaxMs = c.latencies[n-1]
	}
	if r.Seconds > 0 {
		r.QPS = float64(r.Requests) / r.Seconds
	}
	if r.Requests > 0 {
		r.ShedRate = float64(c.status[429]) / float64(r.Requests)
	}
	return r
}

// pct is the linear-interpolated sample quantile of a sorted slice.
func pct(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	pos := q * float64(n-1)
	i := int(pos)
	if i >= n-1 {
		return sorted[n-1]
	}
	return sorted[i] + (sorted[i+1]-sorted[i])*(pos-float64(i))
}

// BenchRow shapes a report into the shared bench-row format gated by
// experiments.CompareBench: the latency percentiles as one "http"
// stage (µs, like the query bench's stages) and the serving statistics
// in the Serve block.
// failed5xx counts responses whose status signalled a server-side
// query failure — breaker exhaustion, lost quorum, or an internal
// error — as opposed to a 429 shed.
func (r *Report) failed5xx() int {
	n := 0
	for code, c := range r.Status {
		if code >= 500 {
			n += c
		}
	}
	return n
}

func (r *Report) BenchRow(backend, collection, querySet string) experiments.BenchRow {
	return experiments.BenchRow{
		Backend:    backend,
		Collection: collection,
		QuerySet:   querySet,
		Queries:    r.Requests,
		Stages: []experiments.BenchStage{{
			Stage: "http",
			P50us: r.P50ms * 1e3,
			P95us: r.P95ms * 1e3,
			P99us: r.P99ms * 1e3,
		}},
		Serve: &experiments.ServeStats{
			Mode:     string(r.Discipline),
			Requests: r.Requests,
			Seconds:  r.Seconds,
			QPS:      r.QPS,
			ShedRate: r.ShedRate,
			Errors:   r.Errors,
			Failed:   r.failed5xx(),
		},
	}
}
