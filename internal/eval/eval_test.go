package eval

import (
	"math"
	"testing"
	"testing/quick"
)

func rel(docs ...uint32) map[uint32]bool {
	m := make(map[uint32]bool)
	for _, d := range docs {
		m[d] = true
	}
	return m
}

func TestPerfectRanking(t *testing.T) {
	m := Evaluate([]uint32{1, 2, 3}, rel(1, 2, 3))
	if m.Recall != 1 || m.Precision != 1 || m.AveragePrecision != 1 || m.RPrecision != 1 {
		t.Fatalf("metrics = %+v", m)
	}
	for _, v := range m.Interpolated11 {
		if v != 1 {
			t.Fatalf("interpolated = %v", m.Interpolated11)
		}
	}
}

func TestKnownAveragePrecision(t *testing.T) {
	// Relevant docs at ranks 1 and 3 of {1, 9, 2}; relevant = {1, 2}.
	// AP = (1/1 + 2/3) / 2 = 5/6.
	m := Evaluate([]uint32{1, 9, 2}, rel(1, 2))
	if math.Abs(m.AveragePrecision-5.0/6) > 1e-12 {
		t.Fatalf("AP = %v, want 5/6", m.AveragePrecision)
	}
	if m.RelevantRetrieved != 2 || m.Recall != 1 {
		t.Fatalf("metrics = %+v", m)
	}
	// R-precision at rank 2: one hit of two = 0.5.
	if m.RPrecision != 0.5 {
		t.Fatalf("RPrec = %v", m.RPrecision)
	}
}

func TestMissedRelevant(t *testing.T) {
	m := Evaluate([]uint32{5, 6}, rel(1, 2, 5))
	if m.RelevantRetrieved != 1 {
		t.Fatalf("hits = %d", m.RelevantRetrieved)
	}
	if math.Abs(m.Recall-1.0/3) > 1e-12 {
		t.Fatalf("recall = %v", m.Recall)
	}
	if m.PrecisionAt[5] != 0.2 { // 1 hit in (2 retrieved, padded to k=5)
		t.Fatalf("P@5 = %v", m.PrecisionAt[5])
	}
}

func TestEmptyCases(t *testing.T) {
	m := Evaluate(nil, rel(1))
	if m.Recall != 0 || m.AveragePrecision != 0 {
		t.Fatalf("empty ranking metrics = %+v", m)
	}
	m = Evaluate([]uint32{1, 2}, nil)
	if m.Relevant != 0 || m.Recall != 0 {
		t.Fatalf("no judgments metrics = %+v", m)
	}
}

func TestInterpolatedMonotone(t *testing.T) {
	m := Evaluate([]uint32{9, 1, 8, 2, 7, 3}, rel(1, 2, 3))
	for i := 1; i < 11; i++ {
		if m.Interpolated11[i] > m.Interpolated11[i-1]+1e-12 {
			t.Fatalf("interpolated curve not non-increasing: %v", m.Interpolated11)
		}
	}
}

func TestSummarize(t *testing.T) {
	ms := []Metrics{
		Evaluate([]uint32{1, 2}, rel(1, 2)),
		Evaluate([]uint32{9, 1}, rel(1, 3)),
		Evaluate([]uint32{5}, nil), // skipped: no judgments
	}
	s := Summarize(ms)
	if s.Queries != 2 {
		t.Fatalf("Queries = %d", s.Queries)
	}
	if s.MeanRecall <= 0 || s.MeanRecall > 1 {
		t.Fatalf("MeanRecall = %v", s.MeanRecall)
	}
	if s.MeanAvgPrecision <= 0 {
		t.Fatalf("MAP = %v", s.MeanAvgPrecision)
	}
	empty := Summarize(nil)
	if empty.Queries != 0 {
		t.Fatal("empty summary nonzero")
	}
}

// TestPropertyBounds: all metrics stay in [0,1]; recall equals hits over
// relevant; better rankings never lower AP.
func TestPropertyBounds(t *testing.T) {
	check := func(rankedRaw []uint16, relRaw []uint16) bool {
		seen := make(map[uint32]bool)
		var ranked []uint32
		for _, r := range rankedRaw {
			d := uint32(r % 100)
			if !seen[d] {
				seen[d] = true
				ranked = append(ranked, d)
			}
		}
		relevant := make(map[uint32]bool)
		for _, r := range relRaw {
			relevant[uint32(r%100)] = true
		}
		m := Evaluate(ranked, relevant)
		in01 := func(v float64) bool { return v >= 0 && v <= 1+1e-12 }
		if !in01(m.Recall) || !in01(m.Precision) || !in01(m.AveragePrecision) || !in01(m.RPrecision) {
			return false
		}
		if len(relevant) > 0 && m.Recall != float64(m.RelevantRetrieved)/float64(len(relevant)) {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
