// Package eval computes the standard IR effectiveness metrics — recall
// and precision — that the paper holds fixed across systems ("The
// portion of the system that determines those factors is fixed across
// the two systems we are comparing", §4). It exists so the reproduction
// can demonstrate, as the paper's batch runs did with relevance files,
// that swapping the storage subsystem leaves retrieval quality
// untouched.
package eval

import "sort"

// Metrics summarizes one query's effectiveness.
type Metrics struct {
	Relevant          int     // |relevant set|
	Retrieved         int     // |ranked list|
	RelevantRetrieved int     // hits anywhere in the ranking
	Recall            float64 // RelevantRetrieved / Relevant
	Precision         float64 // RelevantRetrieved / Retrieved
	AveragePrecision  float64 // mean precision at each relevant hit
	RPrecision        float64 // precision at rank |relevant|
	PrecisionAt       map[int]float64
	// Interpolated11 holds interpolated precision at recall points
	// 0.0, 0.1, ..., 1.0 — the classic recall-precision curve.
	Interpolated11 [11]float64
}

// standard cutoffs for precision-at-k.
var cutoffs = []int{5, 10, 20, 100}

// Evaluate scores a ranked document list against a relevance set.
func Evaluate(ranked []uint32, relevant map[uint32]bool) Metrics {
	m := Metrics{
		Relevant:    len(relevant),
		Retrieved:   len(ranked),
		PrecisionAt: make(map[int]float64, len(cutoffs)),
	}
	if len(relevant) == 0 {
		return m
	}
	hits := 0
	var sumPrec float64
	precAtRank := make([]float64, len(ranked))
	for i, doc := range ranked {
		if relevant[doc] {
			hits++
			sumPrec += float64(hits) / float64(i+1)
		}
		precAtRank[i] = float64(hits) / float64(i+1)
		if i+1 == len(relevant) {
			m.RPrecision = float64(hits) / float64(i+1)
		}
	}
	m.RelevantRetrieved = hits
	m.Recall = float64(hits) / float64(len(relevant))
	if len(ranked) > 0 {
		m.Precision = float64(hits) / float64(len(ranked))
	}
	m.AveragePrecision = sumPrec / float64(len(relevant))
	for _, k := range cutoffs {
		n := k
		if n > len(ranked) {
			n = len(ranked)
		}
		h := 0
		for _, doc := range ranked[:n] {
			if relevant[doc] {
				h++
			}
		}
		if k > 0 {
			m.PrecisionAt[k] = float64(h) / float64(k)
		}
	}
	m.Interpolated11 = interpolated(ranked, relevant)
	return m
}

// interpolated computes the 11-point interpolated precision curve:
// at each recall level r, the maximum precision at any rank achieving
// recall >= r.
func interpolated(ranked []uint32, relevant map[uint32]bool) [11]float64 {
	var out [11]float64
	if len(relevant) == 0 {
		return out
	}
	type point struct{ recall, precision float64 }
	var pts []point
	hits := 0
	for i, doc := range ranked {
		if relevant[doc] {
			hits++
			pts = append(pts, point{
				recall:    float64(hits) / float64(len(relevant)),
				precision: float64(hits) / float64(i+1),
			})
		}
	}
	for level := 0; level <= 10; level++ {
		r := float64(level) / 10
		best := 0.0
		for _, p := range pts {
			if p.recall >= r-1e-12 && p.precision > best {
				best = p.precision
			}
		}
		out[level] = best
	}
	return out
}

// Summary aggregates metrics over a query set.
type Summary struct {
	Queries            int
	MeanAvgPrecision   float64
	MeanRecall         float64
	MeanRPrecision     float64
	MeanPrecisionAt    map[int]float64
	MeanInterpolated11 [11]float64
}

// Summarize averages per-query metrics, skipping queries that had no
// relevance judgments.
func Summarize(ms []Metrics) Summary {
	s := Summary{MeanPrecisionAt: make(map[int]float64)}
	for _, m := range ms {
		if m.Relevant == 0 {
			continue
		}
		s.Queries++
		s.MeanAvgPrecision += m.AveragePrecision
		s.MeanRecall += m.Recall
		s.MeanRPrecision += m.RPrecision
		for k, v := range m.PrecisionAt {
			s.MeanPrecisionAt[k] += v
		}
		for i, v := range m.Interpolated11 {
			s.MeanInterpolated11[i] += v
		}
	}
	if s.Queries == 0 {
		return s
	}
	n := float64(s.Queries)
	s.MeanAvgPrecision /= n
	s.MeanRecall /= n
	s.MeanRPrecision /= n
	keys := make([]int, 0, len(s.MeanPrecisionAt))
	for k := range s.MeanPrecisionAt {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		s.MeanPrecisionAt[k] /= n
	}
	for i := range s.MeanInterpolated11 {
		s.MeanInterpolated11[i] /= n
	}
	return s
}
