package shard

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/textproc"
	"repro/internal/vfs"
)

func newFS() *vfs.FS {
	return vfs.New(vfs.Options{BlockSize: 8192, OSCacheBytes: 1 << 22})
}

func plainAnalyzer() *textproc.Analyzer {
	return textproc.NewAnalyzer(textproc.WithStemming(false), textproc.WithStopWords(nil))
}

// shardCorpus builds a seeded synthetic corpus with dense ascending ids
// and a vocabulary skewed enough that term dfs differ wildly between
// shards — exactly the condition under which local statistics would
// corrupt sharded rankings.
func shardCorpus() []index.Doc {
	rng := rand.New(rand.NewSource(23))
	docs := make([]index.Doc, 500)
	for d := range docs {
		var sb strings.Builder
		for w := 0; w < 40; w++ {
			// Zipf-ish skew: low word ids are frequent, high rare.
			v := rng.Intn(600)
			if rng.Intn(3) > 0 {
				v = rng.Intn(30)
			}
			fmt.Fprintf(&sb, "w%d ", v)
		}
		docs[d] = index.Doc{ID: uint32(d), Text: sb.String()}
	}
	return docs
}

// allModeQueries evaluate identically sharded vs unsharded in every
// mode: plain terms and belief operators whose leaves are bare terms.
var allModeQueries = []string{
	"w1 w2 w3",
	"w10 w20",
	"w0",
	"w599",  // rare
	"w9999", // absent everywhere
	"#and(w5 w15 w25)",
	"#or(w7 w17)",
	"#wsum(3 w2 1 w40 2 w100)",
	"#and(w4 #not(w9))",
	"#sum(w1 #and(w2 w3))",
	"#max(w3 w33)",
}

// daatOnlyQueries contain compound leaves (#syn, proximity windows)
// whose TAAT evaluation uses an exact local match count as df; those
// are byte-identical under DAAT (where the df is a sum/min of global
// term dfs) but may diverge slightly under sharded TAAT — a documented
// limitation, so the differential test pins them to DAAT modes only.
var daatOnlyQueries = []string{
	"#syn(w5 w6)",
	"#phrase(w1 w2)",
	"#od3(w10 w11)",
	"#uw8(w3 w4)",
	"#sum(#syn(w12 w13) w14)",
}

type evalMode struct {
	name  string
	mode  core.Mode
	prune bool
}

var evalModes = []evalMode{
	{"taat", core.ModeTAAT, false},
	{"daat", core.ModeDAAT, false},
	{"daat-prune", core.ModeDAAT, true},
}

// buildSharded builds the corpus into n shards on a fresh FS and
// returns the coordinator (hedging disabled for determinism).
func buildSharded(t *testing.T, docs []index.Doc, n int, kind core.BackendKind, cfg Config) (*Index, *vfs.FS) {
	t.Helper()
	fs := newFS()
	opt := core.BuildOptions{Analyzer: plainAnalyzer(), Backends: []core.BackendKind{kind}}
	if _, err := Build([]*vfs.FS{fs}, "c", n, &core.SliceDocs{Docs: docs}, opt); err != nil {
		t.Fatalf("shard build n=%d: %v", n, err)
	}
	engines, err := OpenEngines([]*vfs.FS{fs}, "c", n, kind, core.WithAnalyzer(plainAnalyzer()))
	if err != nil {
		t.Fatalf("open shards n=%d: %v", n, err)
	}
	idx, err := NewIndex("c", engines, cfg)
	if err != nil {
		t.Fatalf("new index: %v", err)
	}
	return idx, fs
}

// TestShardedRankingsIdentical is the acceptance differential: for
// N ∈ {1,2,4,8}, every evaluation mode, and both backends, the sharded
// merged ranking must be byte-identical to the unsharded one — same
// documents, same order, bit-equal scores.
func TestShardedRankingsIdentical(t *testing.T) {
	docs := shardCorpus()
	baseFS := newFS()
	if _, err := core.Build(baseFS, "base", &core.SliceDocs{Docs: docs}, core.BuildOptions{Analyzer: plainAnalyzer()}); err != nil {
		t.Fatalf("base build: %v", err)
	}
	ctx := context.Background()
	for _, kind := range []core.BackendKind{core.BackendBTree, core.BackendMneme} {
		base, err := core.Open(baseFS, "base", kind, core.WithAnalyzer(plainAnalyzer()))
		if err != nil {
			t.Fatalf("open base %v: %v", kind, err)
		}
		for _, n := range []int{1, 2, 4, 8} {
			idx, _ := buildSharded(t, docs, n, kind, Config{DisableHedge: true})
			if idx.NumDocs() != len(docs) {
				t.Fatalf("%v n=%d: NumDocs=%d want %d", kind, n, idx.NumDocs(), len(docs))
			}
			for _, m := range evalModes {
				queries := allModeQueries
				if m.mode == core.ModeDAAT {
					queries = append(append([]string(nil), allModeQueries...), daatOnlyQueries...)
				}
				for _, q := range queries {
					req := core.Request{Query: q, TopK: 10, Mode: m.mode, Prune: m.prune}
					want, err := base.Run(ctx, req)
					if err != nil {
						t.Fatalf("base run %q: %v", q, err)
					}
					got, err := idx.Run(ctx, req)
					if err != nil {
						t.Fatalf("%v n=%d %s %q: %v", kind, n, m.name, q, err)
					}
					if got.Outcome != core.OutcomeOK {
						t.Fatalf("%v n=%d %s %q: outcome %s", kind, n, m.name, q, got.Outcome)
					}
					if len(got.Results) != len(want.Results) {
						t.Fatalf("%v n=%d %s %q: %d results, want %d",
							kind, n, m.name, q, len(got.Results), len(want.Results))
					}
					for r := range want.Results {
						if got.Results[r] != want.Results[r] {
							t.Fatalf("%v n=%d %s %q rank %d: got doc %d score %.17g, want doc %d score %.17g",
								kind, n, m.name, q, r,
								got.Results[r].Doc, got.Results[r].Score,
								want.Results[r].Doc, want.Results[r].Score)
						}
					}
					if c := got.Coverage; c == nil || c.Shards != n || c.Answered != n {
						t.Fatalf("%v n=%d %s %q: bad coverage %+v", kind, n, m.name, q, got.Coverage)
					}
				}
			}
		}
	}
}

// TestShardedExplainIdentical: Explain routes through the owning shard
// and must report the same belief as the unsharded engine.
func TestShardedExplainIdentical(t *testing.T) {
	docs := shardCorpus()
	baseFS := newFS()
	if _, err := core.Build(baseFS, "base", &core.SliceDocs{Docs: docs}, core.BuildOptions{Analyzer: plainAnalyzer()}); err != nil {
		t.Fatalf("base build: %v", err)
	}
	base, err := core.Open(baseFS, "base", core.BackendMneme, core.WithAnalyzer(plainAnalyzer()))
	if err != nil {
		t.Fatalf("open base: %v", err)
	}
	idx, _ := buildSharded(t, docs, 4, core.BackendMneme, Config{DisableHedge: true})
	// Term-leaf queries only: Explain's compound leaves (#syn, windows)
	// evaluate with the exact local match count as df, the same
	// documented shard-local TAAT caveat the differential test pins to
	// DAAT modes.
	for _, q := range []string{"w1 w2 w3", "#and(w5 w15)", "#wsum(3 w2 1 w40)"} {
		resp, err := base.Run(context.Background(), core.Request{Query: q, TopK: 3})
		if err != nil || len(resp.Results) == 0 {
			t.Fatalf("base run %q: %v (%d results)", q, err, len(resp.Results))
		}
		doc := resp.Results[0].Doc
		want, err := base.Explain(q, doc)
		if err != nil {
			t.Fatalf("base explain: %v", err)
		}
		got, err := idx.Explain(q, doc)
		if err != nil {
			t.Fatalf("sharded explain: %v", err)
		}
		if got.Belief != want.Belief {
			t.Fatalf("%q doc %d: sharded belief %.17g, unsharded %.17g", q, doc, got.Belief, want.Belief)
		}
	}
	if _, err := idx.Explain("w1", uint32(len(docs)+7)); err == nil {
		t.Fatal("explain out-of-range doc: want error")
	}
}

// TestPartitionMath: the mod-N partition is a bijection whose inverse
// is strictly monotone per shard.
func TestPartitionMath(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		var prev = make(map[int]uint32)
		for g := uint32(0); g < 100; g++ {
			sh := ShardOf(g, n)
			if sh < 0 || sh >= n {
				t.Fatalf("n=%d g=%d: shard %d out of range", n, g, sh)
			}
			l := LocalDoc(g, n)
			if back := GlobalDoc(l, sh, n); back != g {
				t.Fatalf("n=%d: GlobalDoc(LocalDoc(%d))=%d", n, g, back)
			}
			if p, ok := prev[sh]; ok && l != p+1 {
				t.Fatalf("n=%d shard %d: local ids not dense ascending (%d after %d)", n, sh, l, p)
			}
			prev[sh] = l
		}
	}
}

// TestDetect: sidecar round-trip, absence, and corruption.
func TestDetect(t *testing.T) {
	fs := newFS()
	if n, ok, err := Detect(fs, "c"); n != 0 || ok || err != nil {
		t.Fatalf("fresh FS: got (%d,%v,%v)", n, ok, err)
	}
	docs := []index.Doc{{ID: 0, Text: "a b"}, {ID: 1, Text: "b c"}, {ID: 2, Text: "c d"}}
	if _, err := Build([]*vfs.FS{fs}, "c", 3, &core.SliceDocs{Docs: docs},
		core.BuildOptions{Analyzer: plainAnalyzer(), Backends: []core.BackendKind{core.BackendMneme}}); err != nil {
		t.Fatalf("build: %v", err)
	}
	if n, ok, err := Detect(fs, "c"); n != 3 || !ok || err != nil {
		t.Fatalf("after build: got (%d,%v,%v), want (3,true,nil)", n, ok, err)
	}
	// A present-but-corrupt sidecar must be an error, never a silent
	// fallback to unsharded serving.
	f, err := fs.Create("bad" + Suffix)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := f.WriteAt([]byte("junk!"), 0); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, _, err := Detect(fs, "bad"); err == nil {
		t.Fatal("corrupt sidecar: want error")
	}
}

// TestBuildContractViolations: non-dense ids and a wrong-size FS list
// are rejected up front.
func TestBuildContractViolations(t *testing.T) {
	opt := core.BuildOptions{Analyzer: plainAnalyzer(), Backends: []core.BackendKind{core.BackendMneme}}
	gap := []index.Doc{{ID: 0, Text: "a"}, {ID: 2, Text: "b"}}
	if _, err := Build([]*vfs.FS{newFS()}, "c", 2, &core.SliceDocs{Docs: gap}, opt); err == nil {
		t.Fatal("gapped ids: want error")
	}
	docs := []index.Doc{{ID: 0, Text: "a"}}
	if _, err := Build([]*vfs.FS{newFS(), newFS(), newFS()}, "c", 2, &core.SliceDocs{Docs: docs}, opt); err == nil {
		t.Fatal("3 FSes for 2 shards: want error")
	}
	if _, err := Build([]*vfs.FS{newFS()}, "c", 0, &core.SliceDocs{Docs: docs}, opt); err == nil {
		t.Fatal("0 shards: want error")
	}
	if _, err := OpenEngines([]*vfs.FS{newFS(), newFS()}, "c", 3, core.BackendMneme); err == nil {
		t.Fatal("2 FSes for 3 shards: want error")
	}
}

// TestParsePolicy covers the CLI quorum-policy grammar.
func TestParsePolicy(t *testing.T) {
	good := map[string]string{
		"":            "all",
		"all":         "all",
		"best-effort": "best-effort",
		"quorum(1)":   "quorum(1)",
		"quorum(3)":   "quorum(3)",
	}
	for in, want := range good {
		p, err := ParsePolicy(in)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", in, err)
		}
		if p.String() != want {
			t.Fatalf("ParsePolicy(%q) = %q, want %q", in, p.String(), want)
		}
	}
	for _, in := range []string{"quorum(0)", "quorum(-1)", "quorum(x)", "qurum(2)", "quorum(2) ", "most"} {
		if _, err := ParsePolicy(in); err == nil {
			t.Fatalf("ParsePolicy(%q): want error", in)
		}
	}
	if got := PolicyAll().Required(4); got != 4 {
		t.Fatalf("all.Required(4)=%d", got)
	}
	if got := PolicyBestEffort().Required(4); got != 1 {
		t.Fatalf("best-effort.Required(4)=%d", got)
	}
	if got := PolicyQuorum(3).Required(4); got != 3 {
		t.Fatalf("quorum(3).Required(4)=%d", got)
	}
	if got := PolicyQuorum(9).Required(4); got != 4 {
		t.Fatalf("quorum(9).Required(4)=%d (want clamp)", got)
	}
}
