// Package shard implements document-partitioned sharding for a
// collection: the document stream is split round-robin into N shards,
// each a complete Engine over its own store, and a scatter-gather
// coordinator (see coordinator.go) fans requests out and merges the
// per-shard top-k heaps.
//
// The partition function is global-document mod N, so the local↔global
// mapping is a pure strictly monotone bijection per shard: merging
// per-shard rankings (score desc, then global doc asc) reproduces the
// unsharded tie order exactly. Belief scores additionally depend on
// collection statistics — document count, average length, per-term df
// — which on a shard would be locally wrong; OpenEngines therefore
// distributes the whole collection's statistics to every shard engine
// (core.WithGlobalStats), making sharded rankings byte-identical to an
// unsharded build for term queries in every evaluation mode.
//
// Fault isolation is the point of the exercise: each shard lives on
// its own store (optionally its own FS), gets its own circuit breaker,
// retry budget, and deadline slice, and the coordinator degrades to
// typed partial results instead of failing the whole query when a
// shard is lost.
package shard

import (
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/lexicon"
	"repro/internal/vfs"
)

// Suffix names the sidecar file that marks a file system as holding a
// sharded collection and records the shard count.
const Suffix = ".shards"

// sidecarMagic heads the sidecar file. The version byte is 1 for
// unreplicated images (shard count only) and 2 for replicated ones
// (shard count + replica count), so old images stay readable.
var (
	sidecarMagic   = []byte{'S', 'H', 'R', 'D', 1}
	sidecarMagicV2 = []byte{'S', 'H', 'R', 'D', 2}
)

// ShardName is the collection name of shard i: "<name>.s<i>". Each
// shard carries the usual full set of index files under that name.
func ShardName(name string, i int) string { return fmt.Sprintf("%s.s%d", name, i) }

// ReplicaName is the collection name of replica r of shard i. Replica
// 0 is the plain shard name, so an unreplicated image is exactly a
// one-replica image; replica r > 0 inserts a ".r<r>" segment before
// the shard segment ("<name>.r<r>.s<i>"), which keeps every replica's
// file prefix disjoint from every other collection's.
func ReplicaName(name string, i, r int) string {
	if r == 0 {
		return ShardName(name, i)
	}
	return fmt.Sprintf("%s.r%d.s%d", name, r, i)
}

// ShardOf maps a global document id to its shard (round-robin mod n).
func ShardOf(global uint32, n int) int { return int(global % uint32(n)) }

// LocalDoc maps a global document id to its id inside its shard.
func LocalDoc(global uint32, n int) uint32 { return global / uint32(n) }

// GlobalDoc inverts the partition: the global id of shard sh's local
// document.
func GlobalDoc(local uint32, sh, n int) uint32 { return local*uint32(n) + uint32(sh) }

// fsFor returns the file system shard i lives on. A one-element fss
// co-locates every shard (the single-image deployment); an n-element
// fss gives each shard its own FS, which is what per-shard fault
// injection and true blast-radius isolation need (vfs fault plans
// attach to a whole FS).
func fsFor(fss []*vfs.FS, i int) *vfs.FS {
	if len(fss) == 1 {
		return fss[0]
	}
	return fss[i]
}

// validateFSS checks the fss-length contract shared by Build and
// OpenEngines.
func validateFSS(fss []*vfs.FS, n int) error {
	if n < 1 {
		return fmt.Errorf("shard: shard count %d < 1", n)
	}
	if len(fss) != 1 && len(fss) != n {
		return fmt.Errorf("shard: got %d file systems for %d shards (want 1 or %d)", len(fss), n, n)
	}
	return nil
}

// chanDocs adapts a channel of documents to core.DocSource.
type chanDocs struct{ ch <-chan index.Doc }

func (c *chanDocs) Next() (index.Doc, bool, error) {
	d, ok := <-c.ch
	return d, ok, nil
}

// Build splits src round-robin into n document-partitioned shards and
// builds each shard collection in parallel with the standard builder.
// Source documents must arrive with dense ascending ids (the same
// contract the builder itself enforces), which makes each shard's
// local ids dense and ascending too. fss holds either one shared FS or
// one FS per shard (see fsFor). A sidecar file "<name>.shards"
// recording the shard count is written to every FS so images are
// self-describing (see Detect).
func Build(fss []*vfs.FS, name string, n int, src core.DocSource, opt core.BuildOptions) ([]*core.BuildStats, error) {
	if err := validateFSS(fss, n); err != nil {
		return nil, err
	}
	chans := make([]chan index.Doc, n)
	for i := range chans {
		chans[i] = make(chan index.Doc, 256)
	}
	// done stops the feeder early when any shard build fails, so it
	// cannot block forever on a channel nobody drains.
	done := make(chan struct{})
	var closeDone sync.Once
	stop := func() { closeDone.Do(func() { close(done) }) }

	stats := make([]*core.BuildStats, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := core.Build(fsFor(fss, i), ShardName(name, i), &chanDocs{ch: chans[i]}, opt)
			stats[i], errs[i] = st, err
			if err != nil {
				stop()
			}
		}(i)
	}

	var feedErr error
	var next uint32
feed:
	for {
		doc, ok, err := src.Next()
		if err != nil {
			feedErr = err
			break
		}
		if !ok {
			break
		}
		if doc.ID != next {
			feedErr = fmt.Errorf("shard: document ids must be dense and ascending: got %d, want %d", doc.ID, next)
			break
		}
		next++
		routed := index.Doc{ID: LocalDoc(doc.ID, n), Text: doc.Text}
		select {
		case chans[ShardOf(doc.ID, n)] <- routed:
		case <-done:
			break feed
		}
	}
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if feedErr != nil {
		return nil, feedErr
	}
	seen := map[*vfs.FS]bool{}
	for i := 0; i < n; i++ {
		fs := fsFor(fss, i)
		if seen[fs] {
			continue
		}
		seen[fs] = true
		if err := writeSidecar(fs, name, n, 1); err != nil {
			return nil, err
		}
	}
	return stats, nil
}

// replicaFSFor returns the file system replica r of shard i lives on.
// A 1×1 fss co-locates everything on one image; an n×r matrix gives
// every replica its own FS (true blast-radius isolation — fault plans
// attach to a whole FS).
func replicaFSFor(fss [][]*vfs.FS, i, r int) *vfs.FS {
	if len(fss) == 1 && len(fss[0]) == 1 {
		return fss[0][0]
	}
	return fss[i][r]
}

// validateReplicaFSS checks the fss-matrix contract shared by
// BuildReplicated and OpenReplicated.
func validateReplicaFSS(fss [][]*vfs.FS, n, r int) error {
	if n < 1 {
		return fmt.Errorf("shard: shard count %d < 1", n)
	}
	if r < 1 {
		return fmt.Errorf("shard: replica count %d < 1", r)
	}
	if len(fss) == 1 && len(fss[0]) == 1 {
		return nil
	}
	if len(fss) != n {
		return fmt.Errorf("shard: got %d file-system rows for %d shards (want 1×1 or %d×%d)", len(fss), n, n, r)
	}
	for i := range fss {
		if len(fss[i]) != r {
			return fmt.Errorf("shard: shard %d has %d file systems for %d replicas (want 1×1 or %d×%d)", i, len(fss[i]), r, n, r)
		}
	}
	return nil
}

// BuildReplicated builds an n-shard collection once (replica 0, the
// standard deterministic Build) and then clones each shard's image
// r-1 times through the vfs copy path, so every replica is
// byte-identical by construction. Each replica gets a checksum
// manifest (see ManifestSuffix) that open and repair verify against,
// and every FS gets a v2 sidecar recording both counts. fss is a 1×1
// matrix (everything on one image) or n×r (per-replica stores).
func BuildReplicated(fss [][]*vfs.FS, name string, n, r int, src core.DocSource, opt core.BuildOptions) ([]*core.BuildStats, error) {
	if err := validateReplicaFSS(fss, n, r); err != nil {
		return nil, err
	}
	fss0 := make([]*vfs.FS, n)
	for i := range fss0 {
		fss0[i] = replicaFSFor(fss, i, 0)
	}
	stats, err := Build(fss0, name, n, src, opt)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		fs0 := replicaFSFor(fss, i, 0)
		coll0 := ShardName(name, i)
		entries, err := buildManifest(fs0, coll0)
		if err != nil {
			return nil, err
		}
		if err := writeManifest(fs0, coll0, entries); err != nil {
			return nil, err
		}
		for rep := 1; rep < r; rep++ {
			dst := replicaFSFor(fss, i, rep)
			coll := ReplicaName(name, i, rep)
			for _, ent := range entries {
				size, crc, err := vfs.CopyFile(fs0, coll0+ent.Suffix, dst, coll+ent.Suffix, vfs.CopyOptions{})
				if err != nil {
					return nil, fmt.Errorf("shard: replicate %s: %w", coll+ent.Suffix, err)
				}
				if size != ent.Size || crc != ent.CRC {
					return nil, fmt.Errorf("shard: replicate %s: copy size/crc %d/%#x, manifest %d/%#x",
						coll+ent.Suffix, size, crc, ent.Size, ent.CRC)
				}
			}
			if err := writeManifest(dst, coll, entries); err != nil {
				return nil, err
			}
		}
	}
	seen := map[*vfs.FS]bool{}
	for i := 0; i < n; i++ {
		for rep := 0; rep < r; rep++ {
			fs := replicaFSFor(fss, i, rep)
			if seen[fs] {
				continue
			}
			seen[fs] = true
			if err := writeSidecar(fs, name, n, r); err != nil {
				return nil, err
			}
		}
	}
	return stats, nil
}

// writeSidecar persists the shard/replica-count marker. r == 1 writes
// the v1 layout byte-identical to pre-replication images.
func writeSidecar(fs *vfs.FS, name string, n, r int) error {
	var buf []byte
	if r <= 1 {
		buf = append(buf, sidecarMagic...)
		buf = binary.AppendUvarint(buf, uint64(n))
	} else {
		buf = append(buf, sidecarMagicV2...)
		buf = binary.AppendUvarint(buf, uint64(n))
		buf = binary.AppendUvarint(buf, uint64(r))
	}
	fname := name + Suffix
	if fs.Exists(fname) {
		if err := fs.Remove(fname); err != nil {
			return err
		}
	}
	f, err := fs.Create(fname)
	if err != nil {
		return err
	}
	_, err = f.WriteAt(buf, 0)
	return err
}

// Detect reports the shard count a collection was built with, from its
// sidecar file. ok=false means the collection is unsharded (no
// sidecar). A present-but-corrupt sidecar is an error, not a silent
// fallback to unsharded serving.
func Detect(fs *vfs.FS, name string) (n int, ok bool, err error) {
	n, _, ok, err = DetectFull(fs, name)
	return n, ok, err
}

// DetectFull is Detect plus the replica count (1 for v1 sidecars and
// unreplicated v2 images).
func DetectFull(fs *vfs.FS, name string) (n, r int, ok bool, err error) {
	fname := name + Suffix
	if !fs.Exists(fname) {
		return 0, 0, false, nil
	}
	f, err := fs.Open(fname)
	if err != nil {
		return 0, 0, false, err
	}
	buf := make([]byte, f.Size())
	if err := vfs.ReadFull(f, buf, 0); err != nil {
		return 0, 0, false, err
	}
	corrupt := fmt.Errorf("shard: corrupt sidecar %s", fname)
	if len(buf) < len(sidecarMagic) || string(buf[:len(sidecarMagic)-1]) != string(sidecarMagic[:len(sidecarMagic)-1]) {
		return 0, 0, false, corrupt
	}
	version := buf[len(sidecarMagic)-1]
	rest := buf[len(sidecarMagic):]
	v, read := binary.Uvarint(rest)
	if read <= 0 || v < 1 {
		return 0, 0, false, corrupt
	}
	switch version {
	case 1:
		return int(v), 1, true, nil
	case 2:
		rv, rread := binary.Uvarint(rest[read:])
		if rread <= 0 || rv < 1 {
			return 0, 0, false, corrupt
		}
		return int(v), int(rv), true, nil
	default:
		return 0, 0, false, corrupt
	}
}

// OpenEngines opens the n shard engines of a sharded collection, all
// sharing one collection-global statistics block (document count,
// total token count, per-term df) assembled from the shard lexicons
// and document tables before any of them serves a query. Options are
// applied to every shard engine.
func OpenEngines(fss []*vfs.FS, name string, n int, kind core.BackendKind, opts ...core.Option) ([]*core.Engine, error) {
	if err := validateFSS(fss, n); err != nil {
		return nil, err
	}
	// The engines hold a pointer to g; it is filled in below, before
	// this function returns, and never mutated afterwards.
	g := &core.GlobalStats{DF: make(map[string]uint64)}
	engines := make([]*core.Engine, n)
	for i := range engines {
		shopts := append(append([]core.Option(nil), opts...), core.WithGlobalStats(g))
		e, err := core.Open(fsFor(fss, i), ShardName(name, i), kind, shopts...)
		if err != nil {
			return nil, fmt.Errorf("shard: open shard %d: %w", i, err)
		}
		engines[i] = e
	}
	for _, e := range engines {
		local := e.LocalDocs()
		g.NumDocs += local
		for d := 0; d < local; d++ {
			g.TotalLen += int64(e.DocLen(uint32(d)))
		}
		e.Dictionary().Range(func(ent *lexicon.Entry) bool {
			g.DF[ent.Term] += ent.DF
			return true
		})
	}
	return engines, nil
}
