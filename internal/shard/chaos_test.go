package shard

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/resilience"
	"repro/internal/vfs"
)

// soakRounds scales the storm length: default 4 rounds, SOAK_ROUNDS=n
// for the long soak (see `make soak`).
func soakRounds() int {
	if s := os.Getenv("SOAK_ROUNDS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 4
}

// buildIsolated builds n shards each on its own FS — the blast-radius
// deployment, where a fault plan on one FS kills exactly one shard —
// and opens them without buffer caching so every query actually
// touches the (faultable) file system.
func buildIsolated(t *testing.T, docs []index.Doc, n int, cfg Config) (*Index, []*vfs.FS) {
	t.Helper()
	fss := make([]*vfs.FS, n)
	for i := range fss {
		fss[i] = newFS()
	}
	opt := core.BuildOptions{Analyzer: plainAnalyzer(), Backends: []core.BackendKind{core.BackendMneme}}
	if _, err := Build(fss, "c", n, &core.SliceDocs{Docs: docs}, opt); err != nil {
		t.Fatalf("build: %v", err)
	}
	engines, err := OpenEngines(fss, "c", n, core.BackendMneme,
		core.WithAnalyzer(plainAnalyzer()), core.WithPlan(core.NoCache))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	idx, err := NewIndex("c", engines, cfg)
	if err != nil {
		t.Fatalf("new index: %v", err)
	}
	return idx, fss
}

// TestShardCrashFreeze is the acceptance chaos scenario: crash-freeze
// one shard's disk mid-flight. Under quorum(n-1) the response must be
// a 200-class partial with accurate Coverage and the exact ranking
// over surviving shards; under "all" the same loss is a typed
// ErrNoQuorum failure. Healing the disk lets the breaker close again.
func TestShardCrashFreeze(t *testing.T) {
	docs := shardCorpus()
	idx, fss := buildIsolated(t, docs, 4, Config{
		DisableHedge:  true,
		Policy:        PolicyQuorum(3),
		RetryAttempts: 2,
		Breaker:       resilience.BreakerPolicy{FailureThreshold: 2, Cooldown: 2},
	})
	req := core.Request{Query: "#or(w21 w22 w23)", TopK: 10}
	wantPartial := expectSurvivors(t, idx, req, map[int]bool{2: true})

	fss[2].SetFaultPlan(vfs.NewFaultPlan(7).FailReadEvery(1).WithCrash())

	// First hit: the shard fails hard (retries exhausted against a
	// frozen disk) but quorum holds — a typed partial.
	resp, err := idx.Run(context.Background(), req)
	if err != nil {
		t.Fatalf("crash run: %v", err)
	}
	if resp.Outcome != core.OutcomePartial {
		t.Fatalf("outcome %s, want partial (coverage %+v)", resp.Outcome, resp.Coverage)
	}
	cov := resp.Coverage
	if cov.Answered != 3 || cov.Failed != 1 || len(cov.MissingShards) != 1 || cov.MissingShards[0] != 2 {
		t.Fatalf("bad coverage %+v", cov)
	}
	sameRanking(t, "crash partial", resp.Results, wantPartial)

	// Second hit opens the breaker (threshold 2); the third request
	// must skip the dead shard without touching it.
	if _, err := idx.Run(context.Background(), req); err != nil {
		t.Fatalf("second crash run: %v", err)
	}
	resp, err = idx.Run(context.Background(), req)
	if err != nil {
		t.Fatalf("breaker run: %v", err)
	}
	if resp.Outcome != core.OutcomePartial || resp.Coverage.BreakerOpen != 1 {
		t.Fatalf("breaker run: outcome %s coverage %+v, want partial with open breaker",
			resp.Outcome, resp.Coverage)
	}
	sameRanking(t, "breaker partial", resp.Results, wantPartial)

	// The same loss under "all" is a typed no-quorum failure.
	strict, err := NewIndex("c", idx.Engines(), Config{
		DisableHedge:  true,
		Policy:        PolicyAll(),
		RetryAttempts: 2,
		Breaker:       resilience.BreakerPolicy{FailureThreshold: 100, Cooldown: 2},
	})
	if err != nil {
		t.Fatalf("strict index: %v", err)
	}
	resp, err = strict.Run(context.Background(), req)
	if !errors.Is(err, resilience.ErrNoQuorum) {
		t.Fatalf("all-policy crash: err %v, want ErrNoQuorum", err)
	}
	// Fail-fast may cancel healthy in-flight shards once quorum is
	// impossible (they count as Failed casualties), so Answered is not
	// exactly n-1 — but the dead shard must be among the failures and
	// the coverage must account for every shard.
	cov = resp.Coverage
	if resp.Outcome != core.OutcomeError || cov.Failed < 1 ||
		cov.Answered+cov.Failed+cov.Shed+cov.BreakerOpen != 4 {
		t.Fatalf("all-policy crash: outcome %s coverage %+v", resp.Outcome, cov)
	}

	// Heal the disk; the open breaker's half-open probe readmits the
	// shard and the full exact ranking comes back.
	fss[2].SetFaultPlan(nil)
	for i := 0; i < 10 && resp.Outcome != core.OutcomeOK; i++ {
		resp, err = idx.Run(context.Background(), req)
		if err != nil {
			t.Fatalf("heal run %d: %v", i, err)
		}
	}
	if resp.Outcome != core.OutcomeOK {
		t.Fatalf("breaker never healed: outcome %s coverage %+v", resp.Outcome, resp.Coverage)
	}
	sameRanking(t, "healed", resp.Results, expectSurvivors(t, idx, req, nil))
}

// TestShardKillStorm is the seeded shard-kill soak: every round
// crash-freezes a random shard's disk, fires a batch of mixed-mode
// queries, and requires every response to be exact-or-typed — a full
// exact ranking, a partial whose Coverage and merged ranking are both
// exactly right, or a typed no-quorum error. SOAK_ROUNDS scales it.
func TestShardKillStorm(t *testing.T) {
	docs := shardCorpus()
	const n = 4
	idx, fss := buildIsolated(t, docs, n, Config{
		DisableHedge:  true,
		Policy:        PolicyQuorum(n - 1),
		RetryAttempts: 2,
		Breaker:       resilience.BreakerPolicy{FailureThreshold: 2, Cooldown: 2},
	})
	reqs := []core.Request{
		{Query: "w1 w2 w3", TopK: 10},
		{Query: "#and(w5 w15 w25)", TopK: 10},
		{Query: "#or(w7 w17)", TopK: 10},
		{Query: "#wsum(3 w2 1 w40)", TopK: 10},
		{Query: "w0 w10", TopK: 10, Mode: core.ModeDAAT},
		{Query: "#syn(w5 w6)", TopK: 10, Mode: core.ModeDAAT},
		{Query: "#or(w3 w13 w23)", TopK: 10, Mode: core.ModeDAAT, Prune: true},
		{Query: "w2 w22", TopK: 10, Mode: core.ModeDAAT, Prune: true},
	}

	// Clean per-shard oracles, taken before any fault exists. NoCache
	// engines hold no state, so this warms nothing.
	oracle := make([][][]core.Result, len(reqs)) // query × shard → local results
	for qi, req := range reqs {
		oracle[qi] = make([][]core.Result, n)
		for sh, e := range idx.Engines() {
			resp, err := e.Run(context.Background(), req)
			if err != nil {
				t.Fatalf("oracle q%d shard %d: %v", qi, sh, err)
			}
			oracle[qi][sh] = resp.Results
		}
	}
	merge := func(qi int, missing map[int]bool) []core.Result {
		var m []core.Result
		for sh := 0; sh < n; sh++ {
			if missing[sh] {
				continue
			}
			for _, r := range oracle[qi][sh] {
				m = append(m, core.Result{Doc: GlobalDoc(r.Doc, sh, n), Score: r.Score})
			}
		}
		sortResults(m)
		if len(m) > reqs[qi].TopK {
			m = m[:reqs[qi].TopK]
		}
		return m
	}

	rng := rand.New(rand.NewSource(41))
	rounds := soakRounds() * 3
	for round := 0; round < rounds; round++ {
		victim := rng.Intn(n)
		fss[victim].SetFaultPlan(vfs.NewFaultPlan(int64(round)*7 + 1).FailReadEvery(1).WithCrash())
		for j := 0; j < 4; j++ {
			qi := rng.Intn(len(reqs))
			resp, err := idx.Run(context.Background(), reqs[qi])
			cov := resp.Coverage
			switch {
			case err == nil && resp.Outcome == core.OutcomeOK:
				sameRanking(t, "storm full", resp.Results, merge(qi, nil))
			case err == nil && resp.Outcome == core.OutcomePartial:
				if cov == nil || cov.Answered+cov.Failed+cov.Shed+cov.BreakerOpen != n {
					t.Fatalf("round %d: coverage does not account for every shard: %+v", round, cov)
				}
				missing := map[int]bool{}
				for _, sh := range cov.MissingShards {
					missing[sh] = true
				}
				if len(missing) != n-cov.Answered {
					t.Fatalf("round %d: %d missing shards vs %d answered: %+v",
						round, len(missing), cov.Answered, cov)
				}
				sameRanking(t, "storm partial", resp.Results, merge(qi, missing))
			case errors.Is(err, resilience.ErrNoQuorum):
				// Typed: the victim plus a still-open breaker from an
				// earlier round can push losses past the policy.
			default:
				t.Fatalf("round %d q%d: untyped outcome %s err %v", round, qi, resp.Outcome, err)
			}
		}
		fss[victim].SetFaultPlan(nil)
	}

	// Recovery: with every disk healed, the breakers drain and the
	// index must return to serving full exact rankings.
	recovered := false
	for i := 0; i < 50 && !recovered; i++ {
		recovered = true
		for qi, req := range reqs {
			resp, err := idx.Run(context.Background(), req)
			if err != nil {
				if errors.Is(err, resilience.ErrNoQuorum) {
					recovered = false
					break
				}
				t.Fatalf("recovery: %v", err)
			}
			if resp.Outcome != core.OutcomeOK {
				recovered = false
				break
			}
			sameRanking(t, "recovered", resp.Results, merge(qi, nil))
		}
	}
	if !recovered {
		t.Fatal("index never recovered after the storm")
	}
	if h := idx.Health(); !h.Serving {
		t.Fatalf("recovered index reports unhealthy: %+v", h)
	}
}
