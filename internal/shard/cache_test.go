package shard

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/vfs"
)

// buildCachedSharded mirrors buildSharded but opens every shard engine
// with the hot-path caches enabled.
func buildCachedSharded(t *testing.T, docs []index.Doc, n int, kind core.BackendKind) *Index {
	t.Helper()
	fs := newFS()
	opt := core.BuildOptions{Analyzer: plainAnalyzer(), Backends: []core.BackendKind{kind}}
	if _, err := Build([]*vfs.FS{fs}, "c", n, &core.SliceDocs{Docs: docs}, opt); err != nil {
		t.Fatalf("shard build n=%d: %v", n, err)
	}
	engines, err := OpenEngines([]*vfs.FS{fs}, "c", n, kind,
		core.WithAnalyzer(plainAnalyzer()), core.WithResultCache(64), core.WithBlockCache(8))
	if err != nil {
		t.Fatalf("open cached shards n=%d: %v", n, err)
	}
	idx, err := NewIndex("c", engines, Config{DisableHedge: true})
	if err != nil {
		t.Fatalf("new index: %v", err)
	}
	return idx
}

// TestShardedCachedRankingsIdentical is the sharded leg of the cache
// differential: per-shard result and block caches must be invisible to
// the merged ranking. Every query runs three times against the cached
// sharded index — cold, result-cache-warm, and again — and each pass
// must match the unsharded, uncached baseline byte-for-byte. MaxScore
// floor-seeded sub-queries (MinScore > 0) bypass the result cache, so
// the prune mode exercises that bypass path specifically.
func TestShardedCachedRankingsIdentical(t *testing.T) {
	docs := shardCorpus()
	baseFS := newFS()
	if _, err := core.Build(baseFS, "base", &core.SliceDocs{Docs: docs}, core.BuildOptions{Analyzer: plainAnalyzer()}); err != nil {
		t.Fatalf("base build: %v", err)
	}
	ctx := context.Background()
	for _, kind := range []core.BackendKind{core.BackendBTree, core.BackendMneme} {
		base, err := core.Open(baseFS, "base", kind, core.WithAnalyzer(plainAnalyzer()))
		if err != nil {
			t.Fatalf("open base %v: %v", kind, err)
		}
		for _, n := range []int{1, 4} {
			idx := buildCachedSharded(t, docs, n, kind)
			for _, m := range evalModes {
				queries := allModeQueries
				if m.mode == core.ModeDAAT {
					queries = append(append([]string(nil), allModeQueries...), daatOnlyQueries...)
				}
				for _, q := range queries {
					req := core.Request{Query: q, TopK: 10, Mode: m.mode, Prune: m.prune}
					want, err := base.Run(ctx, req)
					if err != nil {
						t.Fatalf("base run %q: %v", q, err)
					}
					for pass := 0; pass < 3; pass++ {
						got, err := idx.Run(ctx, req)
						if err != nil {
							t.Fatalf("%v n=%d %s %q pass %d: %v", kind, n, m.name, q, pass, err)
						}
						if got.Outcome != core.OutcomeOK {
							t.Fatalf("%v n=%d %s %q pass %d: outcome %s", kind, n, m.name, q, pass, got.Outcome)
						}
						if len(got.Results) != len(want.Results) {
							t.Fatalf("%v n=%d %s %q pass %d: %d results, want %d",
								kind, n, m.name, q, pass, len(got.Results), len(want.Results))
						}
						for r := range want.Results {
							if got.Results[r] != want.Results[r] {
								t.Fatalf("%v n=%d %s %q pass %d rank %d: got doc %d score %.17g, want doc %d score %.17g",
									kind, n, m.name, q, pass, r,
									got.Results[r].Doc, got.Results[r].Score,
									want.Results[r].Doc, want.Results[r].Score)
							}
						}
					}
				}
			}
			snap := idx.Snapshot()
			if snap.Cache == nil || snap.Cache.BlockHits == 0 {
				t.Fatalf("%v n=%d: aggregated snapshot lost the block-cache stats: %+v", kind, n, snap.Cache)
			}
			if snap.Cache.ResultHits == 0 {
				t.Fatalf("%v n=%d: repeats never hit a shard result cache", kind, n)
			}
			if err := idx.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}

	// The uncached sharded index must not grow a cache block.
	idx, _ := buildSharded(t, docs, 2, core.BackendMneme, Config{DisableHedge: true})
	if snap := idx.Snapshot(); snap.Cache != nil {
		t.Fatalf("uncached sharded snapshot has cache stats: %+v", snap.Cache)
	}
}
