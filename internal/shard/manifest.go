package shard

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"strings"

	"repro/internal/vfs"
)

// ManifestSuffix names the per-replica checksum manifest: the byte
// sizes and CRC32s of every file a replica's collection is made of.
// Replicas of a shard are byte-identical by construction (one
// deterministic build, copied through the vfs layer), so one manifest
// describes all of them; each replica carries its own copy, keyed by
// file suffix, and is verified against it at open and after repair.
const ManifestSuffix = ".rman"

// manifestMagic heads the manifest file.
var manifestMagic = []byte{'R', 'M', 'A', 'N', 1}

// manifestEntry records one collection file: its name suffix (the
// part after the replica's collection name, leading dot included),
// size, and content CRC32 (IEEE).
type manifestEntry struct {
	Suffix string `json:"suffix"`
	Size   int64  `json:"size"`
	CRC    uint32 `json:"crc"`
}

// collectionSuffixes lists the file-name suffixes of collection coll
// on fs, excluding the manifest itself. fs.Names() is sorted, so the
// result is deterministic.
func collectionSuffixes(fs *vfs.FS, coll string) []string {
	var out []string
	prefix := coll + "."
	for _, name := range fs.Names() {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		sfx := name[len(coll):]
		if sfx == ManifestSuffix {
			continue
		}
		out = append(out, sfx)
	}
	return out
}

// fileCRC computes the CRC32 of a whole file in chunks.
func fileCRC(fs *vfs.FS, name string) (int64, uint32, error) {
	f, err := fs.Open(name)
	if err != nil {
		return 0, 0, err
	}
	size := f.Size()
	h := crc32.NewIEEE()
	buf := make([]byte, 256<<10)
	for off := int64(0); off < size; {
		n := size - off
		if n > int64(len(buf)) {
			n = int64(len(buf))
		}
		if err := vfs.ReadFull(f, buf[:n], off); err != nil {
			return 0, 0, err
		}
		h.Write(buf[:n])
		off += n
	}
	return size, h.Sum32(), nil
}

// buildManifest computes the manifest of collection coll on fs.
func buildManifest(fs *vfs.FS, coll string) ([]manifestEntry, error) {
	var entries []manifestEntry
	for _, sfx := range collectionSuffixes(fs, coll) {
		size, crc, err := fileCRC(fs, coll+sfx)
		if err != nil {
			return nil, fmt.Errorf("shard: manifest %s%s: %w", coll, sfx, err)
		}
		entries = append(entries, manifestEntry{Suffix: sfx, Size: size, CRC: crc})
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("shard: manifest: collection %s has no files", coll)
	}
	return entries, nil
}

// writeManifest persists entries as coll's manifest on fs:
// magic | u32 body length | u32 body CRC | JSON body.
func writeManifest(fs *vfs.FS, coll string, entries []manifestEntry) error {
	body, err := json.Marshal(entries)
	if err != nil {
		return err
	}
	buf := append([]byte(nil), manifestMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(body)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(body))
	buf = append(buf, body...)
	name := coll + ManifestSuffix
	if fs.Exists(name) {
		if err := fs.Remove(name); err != nil {
			return err
		}
	}
	f, err := fs.Create(name)
	if err != nil {
		return err
	}
	if _, err := f.WriteAt(buf, 0); err != nil {
		return err
	}
	return f.Sync()
}

// readManifest loads and validates coll's manifest on fs. ok=false
// means no manifest exists (a legacy unreplicated image).
func readManifest(fs *vfs.FS, coll string) (entries []manifestEntry, ok bool, err error) {
	name := coll + ManifestSuffix
	if !fs.Exists(name) {
		return nil, false, nil
	}
	f, err := fs.Open(name)
	if err != nil {
		return nil, false, err
	}
	buf := make([]byte, f.Size())
	if err := vfs.ReadFull(f, buf, 0); err != nil {
		return nil, false, err
	}
	corrupt := fmt.Errorf("shard: corrupt manifest %s", name)
	head := len(manifestMagic) + 8
	if len(buf) < head || string(buf[:len(manifestMagic)]) != string(manifestMagic) {
		return nil, false, corrupt
	}
	blen := binary.LittleEndian.Uint32(buf[len(manifestMagic):])
	bcrc := binary.LittleEndian.Uint32(buf[len(manifestMagic)+4:])
	if int(blen) != len(buf)-head {
		return nil, false, corrupt
	}
	body := buf[head:]
	if crc32.ChecksumIEEE(body) != bcrc {
		return nil, false, corrupt
	}
	if err := json.Unmarshal(body, &entries); err != nil {
		return nil, false, corrupt
	}
	return entries, true, nil
}

// verifyReplica checks every manifest-listed file of collection coll
// on fs against its recorded size and CRC. ok=false (with nil err)
// means no manifest exists, so there is nothing to verify.
func verifyReplica(fs *vfs.FS, coll string) (ok bool, err error) {
	entries, ok, err := readManifest(fs, coll)
	if err != nil || !ok {
		return ok, err
	}
	for _, ent := range entries {
		name := coll + ent.Suffix
		if !fs.Exists(name) {
			return true, fmt.Errorf("shard: replica %s: missing %s", coll, name)
		}
		size, crc, err := fileCRC(fs, name)
		if err != nil {
			return true, fmt.Errorf("shard: replica %s: %w", coll, err)
		}
		if size != ent.Size || crc != ent.CRC {
			return true, fmt.Errorf("shard: replica %s: %s size/crc mismatch (got %d/%#x, manifest %d/%#x)",
				coll, name, size, crc, ent.Size, ent.CRC)
		}
	}
	return true, nil
}
