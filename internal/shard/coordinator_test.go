package shard

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/resilience"
	"repro/internal/vfs"
)

// expectSurvivors computes the exact merged ranking over the
// non-excluded shards by querying each shard engine directly — the
// oracle a fault-degraded coordinator response is compared against.
func expectSurvivors(t *testing.T, idx *Index, req core.Request, exclude map[int]bool) []core.Result {
	t.Helper()
	n := idx.Shards()
	var merged []core.Result
	for i, e := range idx.Engines() {
		if exclude[i] {
			continue
		}
		resp, err := e.Run(context.Background(), req)
		if err != nil {
			t.Fatalf("oracle shard %d: %v", i, err)
		}
		for _, r := range resp.Results {
			merged = append(merged, core.Result{Doc: GlobalDoc(r.Doc, i, n), Score: r.Score})
		}
	}
	sortResults(merged)
	if req.TopK > 0 && len(merged) > req.TopK {
		merged = merged[:req.TopK]
	}
	return merged
}

func sameRanking(t *testing.T, label string, got, want []core.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s rank %d: got doc %d score %.17g, want doc %d score %.17g",
				label, i, got[i].Doc, got[i].Score, want[i].Doc, want[i].Score)
		}
	}
}

// TestCoordinatorCancelNoLeak cancels requests mid-fanout and checks
// that nothing survives: no leaked searcher goroutines and every
// admission-gate slot returned.
func TestCoordinatorCancelNoLeak(t *testing.T) {
	docs := shardCorpus()
	fs := newFS()
	opt := core.BuildOptions{Analyzer: plainAnalyzer(), Backends: []core.BackendKind{core.BackendMneme}}
	if _, err := Build([]*vfs.FS{fs}, "c", 4, &core.SliceDocs{Docs: docs}, opt); err != nil {
		t.Fatalf("build: %v", err)
	}
	engines, err := OpenEngines([]*vfs.FS{fs}, "c", 4, core.BackendMneme,
		core.WithAnalyzer(plainAnalyzer()), core.WithMaxInFlight(2, time.Second))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	idx, err := NewIndex("c", engines, Config{DisableHedge: true})
	if err != nil {
		t.Fatalf("new index: %v", err)
	}
	req := core.Request{Query: "#or(w1 w2 w3 w4 w5)", TopK: 10, Mode: core.ModeDAAT}

	// Warm up, then take the goroutine baseline.
	if _, err := idx.Run(context.Background(), req); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	before := runtime.NumGoroutine()

	for i := 0; i < 25; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		switch i % 3 {
		case 0:
			cancel() // dead before dispatch
		case 1:
			go cancel() // races the fan-out
		default:
			time.AfterFunc(100*time.Microsecond, cancel)
		}
		resp, err := idx.Run(ctx, req)
		cancel()
		// A cancelled request must resolve to a typed outcome, never
		// panic or hang: either it finished in time (OK) or it reports
		// the deadline with whatever merged partial it had.
		if err != nil && !errors.Is(err, resilience.ErrDeadline) && !errors.Is(err, resilience.ErrNoQuorum) {
			t.Fatalf("run %d: untyped error %v", i, err)
		}
		if err == nil && resp.Outcome != core.OutcomeOK && resp.Outcome != core.OutcomeDegraded {
			t.Fatalf("run %d: err nil but outcome %s", i, resp.Outcome)
		}
	}

	// Every gate slot must have been returned.
	deadline := time.Now().Add(2 * time.Second)
	for {
		busy := 0
		for _, e := range engines {
			if rs := e.ResilienceStats(); rs != nil {
				busy += rs.InFlight
			}
		}
		if busy == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("gate slots still held: %d in flight", busy)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// And the goroutine count must settle back to the baseline.
	for {
		if g := runtime.NumGoroutine(); g <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now, %d before", runtime.NumGoroutine(), before)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestHedgedRead stalls one shard's primary attempt via the in-package
// test hook, so the hedged backup fires deterministically and wins; the
// merged ranking must still be exact and Coverage must account for the
// hedge.
func TestHedgedRead(t *testing.T) {
	docs := shardCorpus()
	idx, _ := buildSharded(t, docs, 4, core.BackendMneme, Config{HedgeAfter: time.Millisecond})
	req := core.Request{Query: "w1 w2 w3", TopK: 10}
	want, err := idx.Run(context.Background(), req)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}

	idx.testAttemptHook = func(ctx context.Context, shard int, hedge bool) {
		if shard == 2 && !hedge {
			<-ctx.Done() // primary stalls until the winner cancels it
		}
	}
	resp, err := idx.Run(context.Background(), req)
	if err != nil {
		t.Fatalf("hedged run: %v", err)
	}
	if resp.Outcome != core.OutcomeOK {
		t.Fatalf("outcome %s, want ok", resp.Outcome)
	}
	sameRanking(t, "hedged", resp.Results, want.Results)
	// Shard 2's stalled primary guarantees its hedge fired and won;
	// under a slow scheduler (-race) other shards may cross the 1ms
	// delay too, so the tallies are lower bounds, not exact counts.
	if resp.Coverage.Hedged < 1 || resp.Coverage.HedgeWins < 1 {
		t.Fatalf("coverage hedged=%d wins=%d, want >=1/>=1", resp.Coverage.Hedged, resp.Coverage.HedgeWins)
	}

	// The mirror case: the hedge stalls, the primary wins the race.
	idx.testAttemptHook = func(ctx context.Context, shard int, hedge bool) {
		if hedge {
			<-ctx.Done()
		}
		if shard == 2 && !hedge {
			time.Sleep(5 * time.Millisecond) // long enough for the timer
		}
	}
	resp, err = idx.Run(context.Background(), req)
	if err != nil {
		t.Fatalf("hedge-loss run: %v", err)
	}
	sameRanking(t, "hedge-loss", resp.Results, want.Results)
	if resp.Coverage.Hedged < 1 || resp.Coverage.HedgeWins != 0 {
		t.Fatalf("coverage hedged=%d wins=%d, want >=1/0", resp.Coverage.Hedged, resp.Coverage.HedgeWins)
	}
	idx.testAttemptHook = nil

	snap := idx.Snapshot()
	if snap.Sharding == nil || snap.Sharding.Hedged < 2 || snap.Sharding.HedgeWins < 1 {
		t.Fatalf("snapshot sharding block %+v, want hedged>=2 wins>=1", snap.Sharding)
	}
}

// TestHedgeDelayDerivation covers the p95 window and clamping.
func TestHedgeDelayDerivation(t *testing.T) {
	w := &latWindow{}
	if w.p95() != 0 {
		t.Fatal("empty window: want 0")
	}
	for i := 0; i < hedgeMinSamples-1; i++ {
		w.observe(time.Millisecond)
	}
	if w.p95() != 0 {
		t.Fatalf("below minimum samples: want 0, got %v", w.p95())
	}
	w.observe(time.Millisecond)
	if w.p95() != time.Millisecond {
		t.Fatalf("uniform window: want 1ms, got %v", w.p95())
	}
	for i := 1; i <= 100; i++ {
		w.observe(time.Duration(i) * time.Millisecond)
	}
	// The ring holds the last 64 samples (37ms..100ms); the p95 index
	// over 64 sorted samples is 60, so 97ms.
	if got := w.p95(); got != 97*time.Millisecond {
		t.Fatalf("p95 = %v, want 97ms", got)
	}

	docs := shardCorpus()
	idx, _ := buildSharded(t, docs, 2, core.BackendMneme, Config{
		HedgeMin: 4 * time.Millisecond, HedgeMax: 10 * time.Millisecond, HedgeFactor: 3,
	})
	if d := idx.hedgeDelay(0); d != 0 {
		t.Fatalf("cold shard: want 0 (no samples), got %v", d)
	}
	for i := 0; i < hedgeMinSamples; i++ {
		idx.lat[0].observe(100 * time.Microsecond) // 3×p95 below HedgeMin
		idx.lat[1].observe(50 * time.Millisecond)  // 3×p95 above HedgeMax
	}
	if d := idx.hedgeDelay(0); d != 4*time.Millisecond {
		t.Fatalf("clamp to HedgeMin: got %v", d)
	}
	if d := idx.hedgeDelay(1); d != 10*time.Millisecond {
		t.Fatalf("clamp to HedgeMax: got %v", d)
	}
	idx.cfg.DisableHedge = true
	if d := idx.hedgeDelay(1); d != 0 {
		t.Fatalf("disabled: want 0, got %v", d)
	}
}

// TestBreakerSkipsShard trips one shard's breaker and checks the
// quorum policies against it: quorum(3) serves an exact partial,
// all fails typed, and the breaker heals through its half-open probe.
func TestBreakerSkipsShard(t *testing.T) {
	docs := shardCorpus()
	cfg := Config{
		DisableHedge: true,
		Policy:       PolicyQuorum(3),
		Breaker:      resilience.BreakerPolicy{FailureThreshold: 1, Cooldown: 3},
	}
	idx, _ := buildSharded(t, docs, 4, core.BackendMneme, cfg)
	req := core.Request{Query: "w1 w2 w3", TopK: 10}

	idx.Breaker(1).Observe(false) // trip shard 1
	resp, err := idx.Run(context.Background(), req)
	if err != nil {
		t.Fatalf("partial run: %v", err)
	}
	if resp.Outcome != core.OutcomePartial {
		t.Fatalf("outcome %s, want partial", resp.Outcome)
	}
	cov := resp.Coverage
	if cov.Answered != 3 || cov.BreakerOpen != 1 || len(cov.MissingShards) != 1 || cov.MissingShards[0] != 1 {
		t.Fatalf("bad coverage %+v", cov)
	}
	sameRanking(t, "breaker partial", resp.Results, expectSurvivors(t, idx, req, map[int]bool{1: true}))

	// Under "all" the same loss is a typed quorum failure.
	strict, err := NewIndex("c", idx.Engines(), Config{
		DisableHedge: true, Policy: PolicyAll(),
		Breaker: resilience.BreakerPolicy{FailureThreshold: 1, Cooldown: 1000},
	})
	if err != nil {
		t.Fatalf("new strict index: %v", err)
	}
	strict.Breaker(2).Observe(false)
	resp, err = strict.Run(context.Background(), req)
	if !errors.Is(err, resilience.ErrNoQuorum) {
		t.Fatalf("all-policy loss: err %v, want ErrNoQuorum", err)
	}
	if resp.Outcome != core.OutcomeError {
		t.Fatalf("all-policy loss: outcome %s, want error", resp.Outcome)
	}

	// The tripped breaker heals: its cooldown is counted in rejected
	// calls, then a half-open probe (a healthy shard query) closes it.
	want := expectSurvivors(t, idx, req, nil)
	for i := 0; i < 10; i++ {
		resp, err = idx.Run(context.Background(), req)
		if err != nil {
			t.Fatalf("heal run %d: %v", i, err)
		}
		if resp.Outcome == core.OutcomeOK {
			break
		}
	}
	if resp.Outcome != core.OutcomeOK {
		t.Fatalf("breaker never healed: outcome %s, coverage %+v", resp.Outcome, resp.Coverage)
	}
	sameRanking(t, "healed", resp.Results, want)
}

// TestShardedHealth: serving fitness tracks whether the non-open
// breakers still leave quorum reachable.
func TestShardedHealth(t *testing.T) {
	docs := shardCorpus()
	idx, _ := buildSharded(t, docs, 4, core.BackendMneme, Config{
		DisableHedge: true,
		Policy:       PolicyQuorum(3),
		Breaker:      resilience.BreakerPolicy{FailureThreshold: 1, Cooldown: 1000},
	})
	h := idx.Health()
	if !h.Serving || h.Docs != len(docs) || len(h.Breakers) != 4 {
		t.Fatalf("healthy index: %+v", h)
	}
	idx.Breaker(0).Observe(false)
	if h = idx.Health(); !h.Serving {
		t.Fatalf("one breaker open, quorum 3 of 4: still serving, got %+v", h)
	}
	idx.Breaker(3).Observe(false)
	h = idx.Health()
	if h.Serving {
		t.Fatalf("two breakers open, quorum 3 of 4: want not serving, got %+v", h)
	}
	if h.Breakers["shard0"] != "open" || h.Breakers["shard1"] != "closed" {
		t.Fatalf("breaker states %+v", h.Breakers)
	}
}

// TestShardedSnapshot: the aggregated snapshot carries the sharding
// block with per-shard tallies and deduplicated I/O.
func TestShardedSnapshot(t *testing.T) {
	docs := shardCorpus()
	idx, _ := buildSharded(t, docs, 4, core.BackendMneme, Config{DisableHedge: true, Policy: PolicyQuorum(3)})
	for i := 0; i < 3; i++ {
		if _, err := idx.Run(context.Background(), core.Request{Query: "w1 w2", TopK: 5}); err != nil {
			t.Fatalf("run: %v", err)
		}
	}
	s := idx.Snapshot()
	sh := s.Sharding
	if sh == nil {
		t.Fatal("no sharding block")
	}
	if sh.Shards != 4 || sh.Quorum != 3 || sh.Policy != "quorum(3)" {
		t.Fatalf("sharding header %+v", sh)
	}
	if len(sh.PerShard) != 4 {
		t.Fatalf("per-shard stats: %d entries", len(sh.PerShard))
	}
	total := 0
	for i, st := range sh.PerShard {
		total += st.Docs
		if st.Breaker != "closed" {
			t.Fatalf("shard %d breaker %q", i, st.Breaker)
		}
		if st.Answered != 3 {
			t.Fatalf("shard %d answered %d, want 3", i, st.Answered)
		}
	}
	if total != len(docs) {
		t.Fatalf("per-shard docs sum %d, want %d", total, len(docs))
	}
	if s.Counters.Queries == 0 {
		t.Fatal("aggregated counters empty")
	}
}
