package shard

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/inference"
	"repro/internal/mneme"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/vfs"
)

// Policy is a quorum policy: how many shards must answer before a
// sharded response counts as servable.
type Policy struct {
	kind policyKind
	k    int
}

type policyKind uint8

const (
	policyAll policyKind = iota
	policyQuorum
	policyBestEffort
)

// PolicyAll requires every shard (the zero value): losing any shard
// fails the request with resilience.ErrNoQuorum.
func PolicyAll() Policy { return Policy{kind: policyAll} }

// PolicyQuorum requires k shards to answer.
func PolicyQuorum(k int) Policy { return Policy{kind: policyQuorum, k: k} }

// PolicyBestEffort serves whatever answered, requiring only one shard
// — an empty index answers nothing useful, so total loss still fails.
func PolicyBestEffort() Policy { return Policy{kind: policyBestEffort} }

// ParsePolicy parses the CLI spelling: "all", "best-effort", or
// "quorum(k)" with integer k >= 1.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "all":
		return PolicyAll(), nil
	case "best-effort":
		return PolicyBestEffort(), nil
	}
	var k int
	if _, err := fmt.Sscanf(s, "quorum(%d)", &k); err == nil && k >= 1 &&
		s == fmt.Sprintf("quorum(%d)", k) {
		return PolicyQuorum(k), nil
	}
	return Policy{}, fmt.Errorf("shard: bad quorum policy %q (want all, best-effort, or quorum(k))", s)
}

// String returns the CLI spelling.
func (p Policy) String() string {
	switch p.kind {
	case policyBestEffort:
		return "best-effort"
	case policyQuorum:
		return fmt.Sprintf("quorum(%d)", p.k)
	default:
		return "all"
	}
}

// Required is the number of answering shards the policy demands of an
// n-shard index, clamped to [1, n].
func (p Policy) Required(n int) int {
	switch p.kind {
	case policyBestEffort:
		return 1
	case policyQuorum:
		if p.k < 1 {
			return 1
		}
		if p.k > n {
			return n
		}
		return p.k
	default:
		return n
	}
}

// Config tunes the coordinator. The zero value is serviceable: policy
// "all", default breaker, no retry, hedging derived from the per-shard
// p95.
type Config struct {
	// Policy is the quorum policy (see ParsePolicy).
	Policy Policy
	// RetryAttempts is the per-shard sub-query budget on hard errors:
	// total attempts, so values below 2 disable retry. Parse errors
	// are never retried.
	RetryAttempts int
	// Breaker is the per-shard circuit breaker policy. A zero
	// FailureThreshold selects resilience.DefaultBreakerPolicy. Every
	// shard always gets a breaker: fault isolation is not optional
	// here.
	Breaker resilience.BreakerPolicy
	// DeadlineFraction is the fraction of the request deadline granted
	// to each shard sub-query, reserving the rest for the merge.
	// Zero selects 0.9.
	DeadlineFraction float64
	// HedgeAfter, when positive, is a fixed straggler delay after
	// which a backup sub-query is fired at the same shard. Zero
	// derives the delay from the shard's observed p95 latency
	// (HedgeFactor × p95, clamped to [HedgeMin, HedgeMax]), once
	// enough samples exist.
	HedgeAfter time.Duration
	// HedgeFactor defaults to 3; HedgeMin to 2ms; HedgeMax to 250ms.
	HedgeFactor float64
	HedgeMin    time.Duration
	HedgeMax    time.Duration
	// DisableHedge turns hedged reads off entirely.
	DisableHedge bool
}

// latWindow is a fixed-size ring of recent sub-query latencies, the
// input to the p95-derived hedge delay.
type latWindow struct {
	mu      sync.Mutex
	samples [64]time.Duration
	n       int // total observed
}

// hedgeMinSamples is how many latency samples a shard needs before a
// p95-derived hedge delay is trusted.
const hedgeMinSamples = 8

func (w *latWindow) observe(d time.Duration) {
	w.mu.Lock()
	w.samples[w.n%len(w.samples)] = d
	w.n++
	w.mu.Unlock()
}

// p95 returns the window's 95th-percentile latency, or 0 when fewer
// than hedgeMinSamples samples exist.
func (w *latWindow) p95() time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.n < hedgeMinSamples {
		return 0
	}
	m := w.n
	if m > len(w.samples) {
		m = len(w.samples)
	}
	buf := make([]time.Duration, m)
	copy(buf, w.samples[:m])
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	return buf[(m*95+99)/100-1]
}

// shardTally is one shard's cumulative outcome counters.
type shardTally struct {
	answered atomic.Int64
	degraded atomic.Int64
	failed   atomic.Int64
	shed     atomic.Int64
}

// Index is the scatter-gather coordinator over a sharded collection's
// engines. It implements the serving layer's Index interface, so
// inqueryd serves a sharded index exactly as it serves a single
// engine. Fault isolation per shard: a circuit breaker (open breaker
// = shard skipped without touching it), a retry budget for hard
// errors, a deadline slice, and hedged duplicate reads for
// stragglers. The quorum policy decides whether a response missing
// shards is served as a typed partial (OutcomePartial + Coverage) or
// failed with resilience.ErrNoQuorum.
type Index struct {
	name     string
	engines  []*core.Engine
	cfg      Config
	required int
	breakers []*resilience.Breaker
	lat      []*latWindow
	tally    []shardTally

	// testAttemptHook, when set (in-package tests only), runs at the
	// start of every attempt goroutine; it lets a test stall a primary
	// attempt so the hedged backup deterministically wins the race.
	testAttemptHook func(ctx context.Context, shard int, hedge bool)

	reg       *obs.Registry
	searches  *obs.Counter
	partials  *obs.Counter
	noQuorums *obs.Counter
	hedges    *obs.Counter
	hedgeWins *obs.Counter
	shardFail *obs.Counter
}

// NewIndex builds the coordinator over an opened shard-engine set
// (see OpenEngines).
func NewIndex(name string, engines []*core.Engine, cfg Config) (*Index, error) {
	if len(engines) == 0 {
		return nil, errors.New("shard: no shard engines")
	}
	if cfg.Breaker.FailureThreshold < 1 {
		cfg.Breaker = resilience.DefaultBreakerPolicy()
	}
	if cfg.DeadlineFraction <= 0 || cfg.DeadlineFraction > 1 {
		cfg.DeadlineFraction = 0.9
	}
	if cfg.HedgeFactor <= 0 {
		cfg.HedgeFactor = 3
	}
	if cfg.HedgeMin <= 0 {
		cfg.HedgeMin = 2 * time.Millisecond
	}
	if cfg.HedgeMax <= 0 {
		cfg.HedgeMax = 250 * time.Millisecond
	}
	x := &Index{
		name:     name,
		engines:  engines,
		cfg:      cfg,
		required: cfg.Policy.Required(len(engines)),
		breakers: make([]*resilience.Breaker, len(engines)),
		lat:      make([]*latWindow, len(engines)),
		tally:    make([]shardTally, len(engines)),
		reg:      obs.NewRegistry(),
	}
	for i := range x.breakers {
		x.breakers[i] = resilience.NewBreaker(cfg.Breaker)
		x.lat[i] = &latWindow{}
	}
	x.searches = x.reg.Counter("shard_searches_total")
	x.partials = x.reg.Counter("shard_partial_total")
	x.noQuorums = x.reg.Counter("shard_no_quorum_total")
	x.hedges = x.reg.Counter("shard_hedged_total")
	x.hedgeWins = x.reg.Counter("shard_hedge_wins_total")
	x.shardFail = x.reg.Counter("shard_failures_total")
	return x, nil
}

// Shards returns the shard count.
func (x *Index) Shards() int { return len(x.engines) }

// Engines exposes the underlying shard engines (tests, fault
// injection).
func (x *Index) Engines() []*core.Engine { return x.engines }

// Breaker exposes shard i's circuit breaker (tests, observability).
func (x *Index) Breaker(i int) *resilience.Breaker { return x.breakers[i] }

// NumDocs is the whole collection's document count (every shard
// engine reports the shared global statistic).
func (x *Index) NumDocs() int { return x.engines[0].NumDocs() }

// Metrics returns the coordinator's registry.
func (x *Index) Metrics() *obs.Registry { return x.reg }

// shardResult is one shard's resolved contribution to a request.
type shardResult struct {
	shard       int
	resp        core.Response
	err         error
	breakerOpen bool
	hedged      bool // a backup sub-query was fired
	hedgeWin    bool // ... and it answered first
}

// hedgeDelay computes shard i's current straggler delay; 0 disables
// hedging for this request.
func (x *Index) hedgeDelay(i int) time.Duration {
	if x.cfg.DisableHedge {
		return 0
	}
	if x.cfg.HedgeAfter > 0 {
		return x.cfg.HedgeAfter
	}
	p95 := x.lat[i].p95()
	if p95 <= 0 {
		return 0
	}
	d := time.Duration(float64(p95) * x.cfg.HedgeFactor)
	if d < x.cfg.HedgeMin {
		d = x.cfg.HedgeMin
	}
	if d > x.cfg.HedgeMax {
		d = x.cfg.HedgeMax
	}
	return d
}

// attempt runs one (possibly retried) sub-query against shard i. The
// score floor is re-read per attempt so retries and hedges dispatched
// after other shards answered prune against the running merged
// threshold.
func (x *Index) attempt(ctx context.Context, i int, req core.Request, slice time.Duration, floor func() float64) (core.Response, error) {
	attempts := x.cfg.RetryAttempts
	if attempts < 1 {
		attempts = 1
	}
	sub := req
	sub.Deadline = slice
	var resp core.Response
	var err error
	for a := 0; a < attempts; a++ {
		if a > 0 && ctx.Err() != nil {
			break
		}
		sub.MinScore = req.MinScore
		if f := floor(); f > sub.MinScore {
			sub.MinScore = f
		}
		resp, err = x.engines[i].Run(ctx, sub)
		if err == nil || resp.Outcome != core.OutcomeError {
			return resp, err
		}
		var pe *inference.ParseError
		if errors.As(err, &pe) {
			return resp, err // not transient; same on every retry
		}
	}
	return resp, err
}

// runShard resolves shard i: breaker admission, the primary attempt,
// and — if the straggler delay fires first — a hedged backup racing
// it. The loser is cancelled and awaited, so no evaluation outlives
// this call.
func (x *Index) runShard(ctx context.Context, i int, req core.Request, slice time.Duration, floor func() float64) shardResult {
	br := x.breakers[i]
	if err := br.Allow(); err != nil {
		return shardResult{shard: i, err: fmt.Errorf("shard %d: %w", i, err), breakerOpen: true}
	}

	type attemptOut struct {
		resp  core.Response
		err   error
		hedge bool
		start time.Time
	}
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	out := make(chan attemptOut, 2)
	var awg sync.WaitGroup
	launch := func(hedge bool) {
		awg.Add(1)
		go func() {
			defer awg.Done()
			start := time.Now()
			if h := x.testAttemptHook; h != nil {
				h(actx, i, hedge)
			}
			resp, err := x.attempt(actx, i, req, slice, floor)
			out <- attemptOut{resp: resp, err: err, hedge: hedge, start: start}
		}()
	}
	launch(false)

	var timerC <-chan time.Time
	if d := x.hedgeDelay(i); d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		timerC = t.C
	}
	hedged := false
	for {
		select {
		case r := <-out:
			cancel()
			awg.Wait() // the losing attempt must not outlive the request
			x.lat[i].observe(time.Since(r.start))
			// The breaker watches for hard storage failures. Shed and
			// deadline outcomes are not the shard's storage acting up —
			// and an admitted half-open probe must always be observed
			// or the breaker wedges — so they count as successes.
			br.Observe(r.err == nil || r.resp.Outcome != core.OutcomeError)
			return shardResult{
				shard: i, resp: r.resp, err: r.err,
				hedged: hedged, hedgeWin: hedged && r.hedge,
			}
		case <-timerC:
			timerC = nil
			hedged = true
			launch(true)
		}
	}
}

// Run fans the request out to every shard, merges the per-shard top-k
// rankings (remapping local→global document ids), propagates the
// merged k-th score to late sub-queries as a MaxScore floor, and
// resolves the outcome against the quorum policy. Every shard
// goroutine is awaited before Run returns — a cancelled request leaks
// nothing. See core.Coverage for the partial-result accounting.
func (x *Index) Run(ctx context.Context, req core.Request) (core.Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	x.searches.Add(1)
	n := len(x.engines)

	// The whole-request deadline lives here; each shard sub-query gets
	// a slice of it, reserving the remainder for the merge.
	reqCtx, cancel := context.WithCancel(ctx)
	if req.Deadline > 0 {
		reqCtx, cancel = context.WithTimeout(ctx, req.Deadline)
	}
	defer cancel()
	var slice time.Duration
	if req.Deadline > 0 {
		slice = time.Duration(float64(req.Deadline) * x.cfg.DeadlineFraction)
	}

	// floorBits carries the running merged k-th score to sub-queries
	// dispatched after earlier shards answered (retries, hedges).
	var floorBits atomic.Uint64
	floor := func() float64 { return math.Float64frombits(floorBits.Load()) }

	results := make(chan shardResult, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results <- x.runShard(reqCtx, i, req, slice, floor)
		}(i)
	}
	go func() { wg.Wait(); close(results) }()

	var (
		merged     []core.Result
		counters   core.Counters
		cov        core.Coverage
		degraded   bool
		quorumLost bool
		firstErr   error
	)
	cov.Shards = n
	answeredSet := make([]bool, n)
	for r := range results {
		if r.hedged {
			cov.Hedged++
			x.hedges.Add(1)
		}
		if r.hedgeWin {
			cov.HedgeWins++
			x.hedgeWins.Add(1)
		}
		switch {
		case r.breakerOpen:
			cov.BreakerOpen++
		case quorumLost && r.err != nil:
			// Casualties of the fail-fast cancellation below: their
			// deadline-ish errors are our own doing, not an answer.
			cov.Failed++
		case r.err == nil || errors.Is(r.err, resilience.ErrDeadline):
			// Answered — possibly with a partial shard ranking (the
			// deadline slice fired); partial shard answers still merge
			// and count toward quorum, flagged as degraded coverage.
			answeredSet[r.shard] = true
			cov.Answered++
			x.tally[r.shard].answered.Add(1)
			if r.resp.Outcome != core.OutcomeOK {
				cov.Degraded++
				degraded = true
				x.tally[r.shard].degraded.Add(1)
			}
			counters = counters.Add(r.resp.Counters)
			for _, res := range r.resp.Results {
				merged = append(merged, core.Result{Doc: GlobalDoc(res.Doc, r.shard, n), Score: res.Score})
			}
			sortResults(merged)
			if req.TopK > 0 && len(merged) > req.TopK {
				merged = merged[:req.TopK]
			}
			if req.TopK > 0 && len(merged) == req.TopK {
				floorBits.Store(math.Float64bits(merged[len(merged)-1].Score))
			}
		case errors.Is(r.err, resilience.ErrShed):
			cov.Shed++
			x.tally[r.shard].shed.Add(1)
		default:
			cov.Failed++
			x.tally[r.shard].failed.Add(1)
			x.shardFail.Add(1)
			if firstErr == nil {
				firstErr = r.err
			}
		}
		if !quorumLost && n-(cov.Failed+cov.Shed+cov.BreakerOpen) < x.required {
			// Too many shards already lost for the policy: stop the
			// survivors early. The drain above keeps running until the
			// channel closes, so everything is still awaited.
			quorumLost = true
			cancel()
		}
	}

	for i, ok := range answeredSet {
		if !ok {
			cov.MissingShards = append(cov.MissingShards, i)
		}
	}
	resp := core.Response{Results: merged, Counters: counters, Coverage: &cov}
	switch {
	case cov.Answered < x.required:
		x.noQuorums.Add(1)
		resp.Outcome = core.OutcomeError
		err := fmt.Errorf("shard: %d/%d shards answered, quorum %d: %w",
			cov.Answered, n, x.required, resilience.ErrNoQuorum)
		if firstErr != nil {
			err = fmt.Errorf("%w (first shard failure: %w)", err, firstErr)
		}
		return resp, err
	case reqCtx.Err() != nil && !quorumLost:
		// The whole-request deadline (or the caller's context) fired.
		// Quorum was still met, so the merged partial ranking is
		// served, labelled.
		resp.Outcome = core.OutcomeDeadline
		return resp, fmt.Errorf("shard: request cut short: %w", resilience.ErrDeadline)
	case cov.Answered < n:
		x.partials.Add(1)
		resp.Outcome = core.OutcomePartial
		return resp, nil
	case degraded:
		resp.Outcome = core.OutcomeDegraded
		return resp, nil
	default:
		resp.Outcome = core.OutcomeOK
		return resp, nil
	}
}

// sortResults orders a merged ranking the way every evaluator does:
// score descending, then document ascending. The local→global mapping
// is strictly monotone per shard, so this reproduces the unsharded
// tie order.
func sortResults(rs []core.Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Score != rs[j].Score {
			return rs[i].Score > rs[j].Score
		}
		return rs[i].Doc < rs[j].Doc
	})
}

// Explain routes a global document id to its shard and explains the
// query there. Shard engines score with global statistics, so the
// explanation matches the unsharded one.
func (x *Index) Explain(query string, doc uint32) (*inference.Explanation, error) {
	n := len(x.engines)
	sh := ShardOf(doc, n)
	local := LocalDoc(doc, n)
	if int(local) >= x.engines[sh].LocalDocs() {
		return nil, fmt.Errorf("shard: document %d out of range", doc)
	}
	return x.engines[sh].Explain(query, local)
}

// Health reports serving fitness: the index can serve while the
// non-open breakers still leave quorum reachable.
func (x *Index) Health() core.Health {
	h := core.Health{Docs: x.NumDocs(), Breakers: make(map[string]string, len(x.breakers))}
	available := 0
	for i, b := range x.breakers {
		st := b.State()
		h.Breakers[fmt.Sprintf("shard%d", i)] = st.String()
		if st != resilience.Open {
			available++
		}
	}
	h.Serving = available >= x.required
	return h
}

// Snapshot aggregates the shard engines' snapshots — counters, I/O
// (deduplicated when shards share one file system), and buffer pools
// (prefixed "s<i>/") — plus the coordinator's own sharding block.
func (x *Index) Snapshot() core.Snapshot {
	s := core.Snapshot{
		Backend: x.engines[0].Kind().String() + " (sharded)",
		Metrics: x.reg.Snapshot(),
	}
	seenFS := map[*vfs.FS]bool{}
	for i, e := range x.engines {
		es := e.Snapshot()
		s.Counters = s.Counters.Add(es.Counters)
		if fs := e.FS(); !seenFS[fs] {
			seenFS[fs] = true
			s.IO = s.IO.Add(es.IO)
		}
		for pool, bs := range es.Buffers {
			if s.Buffers == nil {
				s.Buffers = make(map[string]mneme.BufferStats)
			}
			s.Buffers[fmt.Sprintf("s%d/%s", i, pool)] = bs
		}
	}
	s.CorruptRecords = s.Counters.CorruptRecords
	sh := &core.ShardingStats{
		Shards:    len(x.engines),
		Quorum:    x.required,
		Policy:    x.cfg.Policy.String(),
		Partial:   x.partials.Value(),
		NoQuorum:  x.noQuorums.Value(),
		Hedged:    x.hedges.Value(),
		HedgeWins: x.hedgeWins.Value(),
	}
	for i := range x.engines {
		st := core.ShardStat{
			Docs:     x.engines[i].LocalDocs(),
			Breaker:  x.breakers[i].State().String(),
			Answered: x.tally[i].answered.Load(),
			Degraded: x.tally[i].degraded.Load(),
			Failed:   x.tally[i].failed.Load(),
			Shed:     x.tally[i].shed.Load(),
		}
		if p := x.lat[i].p95(); p > 0 {
			st.P95Micros = p.Microseconds()
		}
		sh.PerShard = append(sh.PerShard, st)
	}
	s.Sharding = sh
	return s
}
