package shard

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/inference"
	"repro/internal/mneme"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/vfs"
)

// Policy is a quorum policy: how many shards must answer before a
// sharded response counts as servable.
type Policy struct {
	kind policyKind
	k    int
}

type policyKind uint8

const (
	policyAll policyKind = iota
	policyQuorum
	policyBestEffort
)

// PolicyAll requires every shard (the zero value): losing any shard
// fails the request with resilience.ErrNoQuorum.
func PolicyAll() Policy { return Policy{kind: policyAll} }

// PolicyQuorum requires k shards to answer.
func PolicyQuorum(k int) Policy { return Policy{kind: policyQuorum, k: k} }

// PolicyBestEffort serves whatever answered, requiring only one shard
// — an empty index answers nothing useful, so total loss still fails.
func PolicyBestEffort() Policy { return Policy{kind: policyBestEffort} }

// ParsePolicy parses the CLI spelling: "all", "best-effort", or
// "quorum(k)" with integer k >= 1.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "all":
		return PolicyAll(), nil
	case "best-effort":
		return PolicyBestEffort(), nil
	}
	var k int
	if _, err := fmt.Sscanf(s, "quorum(%d)", &k); err == nil && k >= 1 &&
		s == fmt.Sprintf("quorum(%d)", k) {
		return PolicyQuorum(k), nil
	}
	return Policy{}, fmt.Errorf("shard: bad quorum policy %q (want all, best-effort, or quorum(k))", s)
}

// String returns the CLI spelling.
func (p Policy) String() string {
	switch p.kind {
	case policyBestEffort:
		return "best-effort"
	case policyQuorum:
		return fmt.Sprintf("quorum(%d)", p.k)
	default:
		return "all"
	}
}

// Required is the number of answering shards the policy demands of an
// n-shard index, clamped to [1, n].
func (p Policy) Required(n int) int {
	switch p.kind {
	case policyBestEffort:
		return 1
	case policyQuorum:
		if p.k < 1 {
			return 1
		}
		if p.k > n {
			return n
		}
		return p.k
	default:
		return n
	}
}

// Config tunes the coordinator. The zero value is serviceable: policy
// "all", default breaker, no retry, hedging derived from the per-shard
// p95.
type Config struct {
	// Policy is the quorum policy (see ParsePolicy).
	Policy Policy
	// RetryAttempts is the per-shard sub-query budget on hard errors:
	// total attempts, so values below 2 disable retry. Parse errors
	// are never retried.
	RetryAttempts int
	// Breaker is the per-shard circuit breaker policy. A zero
	// FailureThreshold selects resilience.DefaultBreakerPolicy. Every
	// shard always gets a breaker: fault isolation is not optional
	// here.
	Breaker resilience.BreakerPolicy
	// DeadlineFraction is the fraction of the request deadline granted
	// to each shard sub-query, reserving the rest for the merge.
	// Zero selects 0.9.
	DeadlineFraction float64
	// HedgeAfter, when positive, is a fixed straggler delay after
	// which a backup sub-query is fired at the same shard. Zero
	// derives the delay from the shard's observed p95 latency
	// (HedgeFactor × p95, clamped to [HedgeMin, HedgeMax]), once
	// enough samples exist.
	HedgeAfter time.Duration
	// HedgeFactor defaults to 3; HedgeMin to 2ms; HedgeMax to 250ms.
	HedgeFactor float64
	HedgeMin    time.Duration
	HedgeMax    time.Duration
	// DisableHedge turns hedged reads off entirely.
	DisableHedge bool
	// RepairBytesPerSec rate-limits online replica repair copies so a
	// rebuild cannot starve live queries of I/O. Zero means unpaced.
	RepairBytesPerSec int64
}

// latWindow is a fixed-size ring of recent sub-query latencies, the
// input to the p95-derived hedge delay.
type latWindow struct {
	mu      sync.Mutex
	samples [64]time.Duration
	n       int // total observed
}

// hedgeMinSamples is how many latency samples a shard needs before a
// p95-derived hedge delay is trusted.
const hedgeMinSamples = 8

func (w *latWindow) observe(d time.Duration) {
	w.mu.Lock()
	w.samples[w.n%len(w.samples)] = d
	w.n++
	w.mu.Unlock()
}

// p95 returns the window's 95th-percentile latency, or 0 when fewer
// than hedgeMinSamples samples exist.
func (w *latWindow) p95() time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.n < hedgeMinSamples {
		return 0
	}
	m := w.n
	if m > len(w.samples) {
		m = len(w.samples)
	}
	buf := make([]time.Duration, m)
	copy(buf, w.samples[:m])
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	return buf[(m*95+99)/100-1]
}

// shardTally is one shard's cumulative outcome counters.
type shardTally struct {
	answered atomic.Int64
	degraded atomic.Int64
	failed   atomic.Int64
	shed     atomic.Int64
}

// Index is the scatter-gather coordinator over a sharded collection's
// engines. It implements the serving layer's Index interface, so
// inqueryd serves a sharded index exactly as it serves a single
// engine. Fault isolation per shard: a circuit breaker (open breaker
// = shard skipped without touching it), a retry budget for hard
// errors, a deadline slice, and hedged duplicate reads for
// stragglers. The quorum policy decides whether a response missing
// shards is served as a typed partial (OutcomePartial + Coverage) or
// failed with resilience.ErrNoQuorum.
type Index struct {
	name     string
	sets     [][]*replica // sets[shard][replica]
	cfg      Config
	required int
	lat      []*latWindow // per shard: hedge-delay input, whichever replica served
	tally    []shardTally

	// owned indexes (OpenReplicated) close their engines on Close and
	// can rebuild them: reopen re-opens a replica's store after repair.
	owned      bool
	reopen     func(fs *vfs.FS, coll string) (*core.Engine, error)
	repairPace func(int)
	repairWG   sync.WaitGroup

	// testAttemptHook, when set (in-package tests only), runs at the
	// start of every attempt goroutine; it lets a test stall a primary
	// attempt so the hedged backup deterministically wins the race.
	testAttemptHook func(ctx context.Context, shard int, hedge bool)

	reg         *obs.Registry
	searches    *obs.Counter
	partials    *obs.Counter
	noQuorums   *obs.Counter
	hedges      *obs.Counter
	hedgeWins   *obs.Counter
	shardFail   *obs.Counter
	failovers   *obs.Counter
	repairs     *obs.Counter
	quarantines *obs.Counter
}

// applyConfigDefaults fills the zero-value Config knobs.
func applyConfigDefaults(cfg Config) Config {
	if cfg.Breaker.FailureThreshold < 1 {
		cfg.Breaker = resilience.DefaultBreakerPolicy()
	}
	if cfg.DeadlineFraction <= 0 || cfg.DeadlineFraction > 1 {
		cfg.DeadlineFraction = 0.9
	}
	if cfg.HedgeFactor <= 0 {
		cfg.HedgeFactor = 3
	}
	if cfg.HedgeMin <= 0 {
		cfg.HedgeMin = 2 * time.Millisecond
	}
	if cfg.HedgeMax <= 0 {
		cfg.HedgeMax = 250 * time.Millisecond
	}
	return cfg
}

// newIndexFromEngines builds the coordinator over an n×r engine
// matrix. A nil engine marks a replica that failed verification at
// open: it starts quarantined and joins the routing table only after
// Repair. fss may be nil when every engine is non-nil (the FS then
// comes from the engine itself).
func newIndexFromEngines(name string, fss [][]*vfs.FS, engines [][]*core.Engine, cfg Config) (*Index, error) {
	n := len(engines)
	if n == 0 {
		return nil, errors.New("shard: no shard engines")
	}
	cfg = applyConfigDefaults(cfg)
	x := &Index{
		name:     name,
		sets:     make([][]*replica, n),
		cfg:      cfg,
		required: cfg.Policy.Required(n),
		lat:      make([]*latWindow, n),
		tally:    make([]shardTally, n),
		reg:      obs.NewRegistry(),
	}
	if cfg.RepairBytesPerSec > 0 {
		x.repairPace = vfs.PaceBytesPerSec(cfg.RepairBytesPerSec)
	}
	for i := range engines {
		x.lat[i] = &latWindow{}
		x.sets[i] = make([]*replica, len(engines[i]))
		for r, e := range engines[i] {
			rep := &replica{
				shard: i,
				idx:   r,
				coll:  ReplicaName(name, i, r),
				eng:   e,
				br:    resilience.NewBreaker(cfg.Breaker),
			}
			if e != nil {
				rep.fs = e.FS()
			}
			if fss != nil {
				rep.fs = replicaFSFor(fss, i, r)
			}
			if e == nil {
				rep.quarantined.Store(true)
			}
			x.sets[i][r] = rep
		}
	}
	x.searches = x.reg.Counter("shard_searches_total")
	x.partials = x.reg.Counter("shard_partial_total")
	x.noQuorums = x.reg.Counter("shard_no_quorum_total")
	x.hedges = x.reg.Counter("shard_hedged_total")
	x.hedgeWins = x.reg.Counter("shard_hedge_wins_total")
	x.shardFail = x.reg.Counter("shard_failures_total")
	x.failovers = x.reg.Counter("shard_failovers_total")
	x.repairs = x.reg.Counter("shard_replica_repairs_total")
	x.quarantines = x.reg.Counter("shard_replica_quarantines_total")
	return x, nil
}

// NewIndex builds the coordinator over an opened shard-engine set
// (see OpenEngines): one replica per shard, engines owned by the
// caller.
func NewIndex(name string, engines []*core.Engine, cfg Config) (*Index, error) {
	m := make([][]*core.Engine, len(engines))
	for i, e := range engines {
		if e == nil {
			return nil, fmt.Errorf("shard: nil engine for shard %d", i)
		}
		m[i] = []*core.Engine{e}
	}
	return newIndexFromEngines(name, nil, m, cfg)
}

// Shards returns the shard count.
func (x *Index) Shards() int { return len(x.sets) }

// Replicas returns the per-shard replica count.
func (x *Index) Replicas() int { return len(x.sets[0]) }

// Engines exposes the replica-0 shard engines (tests, fault
// injection, back-compat). An entry is nil while that replica is
// quarantined.
func (x *Index) Engines() []*core.Engine {
	out := make([]*core.Engine, len(x.sets))
	for i, set := range x.sets {
		out[i] = set[0].engine()
	}
	return out
}

// Breaker exposes shard i's replica-0 circuit breaker (tests,
// observability).
func (x *Index) Breaker(i int) *resilience.Breaker { return x.sets[i][0].breaker() }

// ReplicaBreaker exposes the breaker of replica r of shard i.
func (x *Index) ReplicaBreaker(i, r int) *resilience.Breaker { return x.sets[i][r].breaker() }

// ReplicaState reports the routing state of replica r of shard i.
func (x *Index) ReplicaState(i, r int) ReplicaState { return x.sets[i][r].state() }

// anyEngine returns some live engine (every engine reports the shared
// collection-global statistics, so any will do).
func (x *Index) anyEngine() *core.Engine {
	for _, set := range x.sets {
		for _, rep := range set {
			if e := rep.engine(); e != nil {
				return e
			}
		}
	}
	return nil
}

// NumDocs is the whole collection's document count (every shard
// engine reports the shared global statistic).
func (x *Index) NumDocs() int {
	if e := x.anyEngine(); e != nil {
		return e.NumDocs()
	}
	return 0
}

// Close waits for in-flight repairs, then — when the index owns its
// engines (OpenReplicated) — closes every replica engine. Indexes
// over caller-opened engines (NewIndex) leave them to the caller.
func (x *Index) Close() error {
	x.repairWG.Wait()
	if !x.owned {
		return nil
	}
	var first error
	for _, set := range x.sets {
		for _, rep := range set {
			rep.mu.Lock()
			if rep.eng != nil {
				if err := rep.eng.Close(); err != nil && first == nil {
					first = err
				}
				rep.eng = nil
			}
			rep.mu.Unlock()
		}
	}
	return first
}

// Metrics returns the coordinator's registry.
func (x *Index) Metrics() *obs.Registry { return x.reg }

// shardResult is one shard's resolved contribution to a request.
type shardResult struct {
	shard       int
	resp        core.Response
	err         error
	breakerOpen bool
	hedged      bool // a backup sub-query was fired
	hedgeWin    bool // ... and it answered first
}

// hedgeDelay computes shard i's current straggler delay; 0 disables
// hedging for this request.
func (x *Index) hedgeDelay(i int) time.Duration {
	if x.cfg.DisableHedge {
		return 0
	}
	if x.cfg.HedgeAfter > 0 {
		return x.cfg.HedgeAfter
	}
	p95 := x.lat[i].p95()
	if p95 <= 0 {
		return 0
	}
	d := time.Duration(float64(p95) * x.cfg.HedgeFactor)
	if d < x.cfg.HedgeMin {
		d = x.cfg.HedgeMin
	}
	if d > x.cfg.HedgeMax {
		d = x.cfg.HedgeMax
	}
	return d
}

// seqOut is the resolution of one attempt sequence (a primary or a
// hedge) over shard i's candidate replicas.
type seqOut struct {
	resp        core.Response
	err         error
	breakerOpen bool // every attempt was breaker-denied; no store touched
	failovers   int  // failed attempts that moved on to a different replica
}

// attemptSeq walks shard i's candidate replicas: the best healthy
// replica first, failing over to the next candidate on hard errors
// (mid-query failover — a dead store never costs more than one
// attempt). The total budget is max(RetryAttempts, len(cands)), so a
// single-replica shard keeps the old retry semantics and a replicated
// one is guaranteed a shot at every copy. The score floor is re-read
// per attempt so attempts dispatched after other shards answered
// prune against the running merged threshold. Per admitted attempt,
// the serving replica's breaker, EWMA latency, and consecutive-error
// count are observed; corruption errors additionally quarantine the
// replica and trigger an asynchronous repair.
func (x *Index) attemptSeq(ctx context.Context, i int, cands []*replica, req core.Request, slice time.Duration, floor func() float64) seqOut {
	// With one candidate the retry budget is spent on it (the legacy
	// single-store semantics: one breaker admission covering the whole
	// retry loop). With replicas, retrying the same store is pointless
	// when a different copy is available, so each visit makes a single
	// attempt and the budget buys extra failover laps instead.
	visits, inner := 1, x.cfg.RetryAttempts
	if inner < 1 {
		inner = 1
	}
	if len(cands) > 1 {
		visits, inner = x.cfg.RetryAttempts, 1
		if visits < len(cands) {
			visits = len(cands)
		}
	}
	sub := req
	sub.Deadline = slice
	var out seqOut
	admitted := 0
	var prev *replica
	for v := 0; v < visits; v++ {
		if v > 0 && ctx.Err() != nil {
			break
		}
		rep := cands[v%len(cands)]
		if prev != nil && rep != prev {
			out.failovers++
		}
		prev = rep
		br := rep.breaker()
		if err := br.Allow(); err != nil {
			out.resp, out.err = core.Response{Outcome: core.OutcomeError}, fmt.Errorf("shard %d: %w", i, err)
			continue
		}
		admitted++
		var resp core.Response
		var err error
		for a := 0; a < inner; a++ {
			if a > 0 && ctx.Err() != nil {
				break
			}
			sub.MinScore = req.MinScore
			if f := floor(); f > sub.MinScore {
				sub.MinScore = f
			}
			start := time.Now()
			resp, err = rep.run(ctx, sub)
			rep.observeLatency(time.Since(start))
			if err == nil || resp.Outcome != core.OutcomeError {
				break
			}
			var pe *inference.ParseError
			if errors.As(err, &pe) {
				break // not transient; same on every retry
			}
		}
		// The breaker watches for hard storage failures. Shed and
		// deadline outcomes are not the replica's storage acting up —
		// and an admitted half-open probe must always be observed or
		// the breaker wedges — so they count as successes.
		ok := err == nil || resp.Outcome != core.OutcomeError
		br.Observe(ok)
		rep.observeOutcome(ok)
		out.resp, out.err = resp, err
		if ok {
			rep.answered.Add(1)
			return out
		}
		rep.failed.Add(1)
		if isCorruptErr(err) {
			x.quarantineForRepair(rep, err)
		}
		var pe *inference.ParseError
		if errors.As(err, &pe) {
			return out // a parse error is the same on every replica
		}
	}
	out.breakerOpen = admitted == 0
	return out
}

// runShard resolves shard i: candidate selection over its replica
// set, the primary attempt sequence, and — if the straggler delay
// fires first — a hedged backup racing it, dispatched with the
// candidate order rotated so it leads with a *different* replica than
// the primary. The loser is cancelled and awaited, so no evaluation
// outlives this call.
func (x *Index) runShard(ctx context.Context, i int, req core.Request, slice time.Duration, floor func() float64) shardResult {
	cands := x.candidates(i)
	if len(cands) == 0 {
		return shardResult{
			shard:       i,
			err:         fmt.Errorf("shard %d: every replica quarantined: %w", i, resilience.ErrBreakerOpen),
			breakerOpen: true,
		}
	}

	type attemptOut struct {
		out   seqOut
		hedge bool
		start time.Time
	}
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	outc := make(chan attemptOut, 2)
	var awg sync.WaitGroup
	launch := func(hedge bool, cands []*replica) {
		awg.Add(1)
		go func() {
			defer awg.Done()
			start := time.Now()
			if h := x.testAttemptHook; h != nil {
				h(actx, i, hedge)
			}
			o := x.attemptSeq(actx, i, cands, req, slice, floor)
			outc <- attemptOut{out: o, hedge: hedge, start: start}
		}()
	}
	launch(false, cands)

	var timerC <-chan time.Time
	if d := x.hedgeDelay(i); d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		timerC = t.C
	}
	hedged := false
	for {
		select {
		case r := <-outc:
			cancel()
			awg.Wait() // the losing attempt must not outlive the request
			x.lat[i].observe(time.Since(r.start))
			if r.out.failovers > 0 {
				x.failovers.Add(int64(r.out.failovers))
			}
			return shardResult{
				shard: i, resp: r.out.resp, err: r.out.err, breakerOpen: r.out.breakerOpen,
				hedged: hedged, hedgeWin: hedged && r.hedge,
			}
		case <-timerC:
			timerC = nil
			hedged = true
			// Hedge across replicas: rotate the candidate order so the
			// backup hits a different copy of the shard first instead of
			// re-hitting the straggling store (with one replica this
			// degenerates to the classic same-store hedge).
			hcands := cands
			if len(cands) > 1 {
				hcands = append(append([]*replica(nil), cands[1:]...), cands[0])
			}
			launch(true, hcands)
		}
	}
}

// Run fans the request out to every shard, merges the per-shard top-k
// rankings (remapping local→global document ids), propagates the
// merged k-th score to late sub-queries as a MaxScore floor, and
// resolves the outcome against the quorum policy. Every shard
// goroutine is awaited before Run returns — a cancelled request leaks
// nothing. See core.Coverage for the partial-result accounting.
func (x *Index) Run(ctx context.Context, req core.Request) (core.Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	x.searches.Add(1)
	n := len(x.sets)

	// The whole-request deadline lives here; each shard sub-query gets
	// a slice of it, reserving the remainder for the merge.
	reqCtx, cancel := context.WithCancel(ctx)
	if req.Deadline > 0 {
		reqCtx, cancel = context.WithTimeout(ctx, req.Deadline)
	}
	defer cancel()
	var slice time.Duration
	if req.Deadline > 0 {
		slice = time.Duration(float64(req.Deadline) * x.cfg.DeadlineFraction)
	}

	// floorBits carries the running merged k-th score to sub-queries
	// dispatched after earlier shards answered (retries, hedges).
	var floorBits atomic.Uint64
	floor := func() float64 { return math.Float64frombits(floorBits.Load()) }

	results := make(chan shardResult, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results <- x.runShard(reqCtx, i, req, slice, floor)
		}(i)
	}
	go func() { wg.Wait(); close(results) }()

	var (
		merged     []core.Result
		counters   core.Counters
		cov        core.Coverage
		degraded   bool
		quorumLost bool
		firstErr   error
	)
	cov.Shards = n
	answeredSet := make([]bool, n)
	for r := range results {
		if r.hedged {
			cov.Hedged++
			x.hedges.Add(1)
		}
		if r.hedgeWin {
			cov.HedgeWins++
			x.hedgeWins.Add(1)
		}
		switch {
		case r.breakerOpen:
			cov.BreakerOpen++
		case quorumLost && r.err != nil:
			// Casualties of the fail-fast cancellation below: their
			// deadline-ish errors are our own doing, not an answer.
			cov.Failed++
		case r.err == nil || errors.Is(r.err, resilience.ErrDeadline):
			// Answered — possibly with a partial shard ranking (the
			// deadline slice fired); partial shard answers still merge
			// and count toward quorum, flagged as degraded coverage.
			answeredSet[r.shard] = true
			cov.Answered++
			x.tally[r.shard].answered.Add(1)
			if r.resp.Outcome != core.OutcomeOK {
				cov.Degraded++
				degraded = true
				x.tally[r.shard].degraded.Add(1)
			}
			counters = counters.Add(r.resp.Counters)
			for _, res := range r.resp.Results {
				merged = append(merged, core.Result{Doc: GlobalDoc(res.Doc, r.shard, n), Score: res.Score})
			}
			sortResults(merged)
			if req.TopK > 0 && len(merged) > req.TopK {
				merged = merged[:req.TopK]
			}
			if req.TopK > 0 && len(merged) == req.TopK {
				floorBits.Store(math.Float64bits(merged[len(merged)-1].Score))
			}
		case errors.Is(r.err, resilience.ErrShed):
			cov.Shed++
			x.tally[r.shard].shed.Add(1)
		default:
			cov.Failed++
			x.tally[r.shard].failed.Add(1)
			x.shardFail.Add(1)
			if firstErr == nil {
				firstErr = r.err
			}
		}
		if !quorumLost && n-(cov.Failed+cov.Shed+cov.BreakerOpen) < x.required {
			// Too many shards already lost for the policy: stop the
			// survivors early. The drain above keeps running until the
			// channel closes, so everything is still awaited.
			quorumLost = true
			cancel()
		}
	}

	for i, ok := range answeredSet {
		if !ok {
			cov.MissingShards = append(cov.MissingShards, i)
		}
	}
	resp := core.Response{Results: merged, Counters: counters, Coverage: &cov}
	switch {
	case cov.Answered < x.required:
		x.noQuorums.Add(1)
		resp.Outcome = core.OutcomeError
		err := fmt.Errorf("shard: %d/%d shards answered, quorum %d: %w",
			cov.Answered, n, x.required, resilience.ErrNoQuorum)
		if firstErr != nil {
			err = fmt.Errorf("%w (first shard failure: %w)", err, firstErr)
		}
		return resp, err
	case reqCtx.Err() != nil && !quorumLost:
		// The whole-request deadline (or the caller's context) fired.
		// Quorum was still met, so the merged partial ranking is
		// served, labelled.
		resp.Outcome = core.OutcomeDeadline
		return resp, fmt.Errorf("shard: request cut short: %w", resilience.ErrDeadline)
	case cov.Answered < n:
		x.partials.Add(1)
		resp.Outcome = core.OutcomePartial
		return resp, nil
	case degraded:
		resp.Outcome = core.OutcomeDegraded
		return resp, nil
	default:
		resp.Outcome = core.OutcomeOK
		return resp, nil
	}
}

// sortResults orders a merged ranking the way every evaluator does:
// score descending, then document ascending. The local→global mapping
// is strictly monotone per shard, so this reproduces the unsharded
// tie order.
func sortResults(rs []core.Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Score != rs[j].Score {
			return rs[i].Score > rs[j].Score
		}
		return rs[i].Doc < rs[j].Doc
	})
}

// Explain routes a global document id to its shard and explains the
// query there, on the first routable replica. Replicas are
// byte-identical and score with global statistics, so the explanation
// matches the unsharded one whichever copy serves it.
func (x *Index) Explain(query string, doc uint32) (*inference.Explanation, error) {
	n := len(x.sets)
	sh := ShardOf(doc, n)
	local := LocalDoc(doc, n)
	cands := x.candidates(sh)
	if len(cands) == 0 {
		return nil, fmt.Errorf("shard: shard %d has no servable replica", sh)
	}
	eng := cands[0].engine()
	if eng == nil {
		return nil, fmt.Errorf("shard: shard %d has no servable replica", sh)
	}
	if int(local) >= eng.LocalDocs() {
		return nil, fmt.Errorf("shard: document %d out of range", doc)
	}
	return eng.Explain(query, local)
}

// Health reports serving fitness: the index can serve while enough
// shards keep at least one routable (non-quarantined, breaker not
// open) replica to reach quorum. Single-replica indexes keep the
// legacy "shard<i>" breaker keys; replicated ones report
// "shard<i>/r<j>" per replica.
func (x *Index) Health() core.Health {
	h := core.Health{Docs: x.NumDocs(), Breakers: make(map[string]string)}
	available := 0
	for i, set := range x.sets {
		routable := false
		for r, rep := range set {
			key := fmt.Sprintf("shard%d", i)
			if len(set) > 1 {
				key = fmt.Sprintf("shard%d/r%d", i, r)
			}
			st := rep.state()
			if st == ReplicaQuarantined {
				h.Breakers[key] = st.String()
				continue
			}
			h.Breakers[key] = rep.breaker().State().String()
			if rep.breaker().State() != resilience.Open {
				routable = true
			}
		}
		if routable {
			available++
		}
	}
	h.Serving = available >= x.required
	return h
}

// Snapshot aggregates the replica engines' snapshots — counters, I/O
// (deduplicated when replicas share one file system), and buffer
// pools (prefixed "s<i>/" for replica 0, "s<i>r<j>/" beyond) — plus
// the coordinator's own sharding block with per-replica health,
// failover, and repair accounting.
func (x *Index) Snapshot() core.Snapshot {
	s := core.Snapshot{Metrics: x.reg.Snapshot()}
	if e := x.anyEngine(); e != nil {
		s.Backend = e.Kind().String() + " (sharded)"
	}
	replicated := len(x.sets[0]) > 1
	seenFS := map[*vfs.FS]bool{}
	for i, set := range x.sets {
		for r, rep := range set {
			e := rep.engine()
			if e == nil {
				continue
			}
			es := e.Snapshot()
			s.Counters = s.Counters.Add(es.Counters)
			if cs := es.Cache; cs != nil {
				if s.Cache == nil {
					s.Cache = &core.CacheStats{}
				}
				*s.Cache = s.Cache.Add(*cs)
			}
			if fs := e.FS(); !seenFS[fs] {
				seenFS[fs] = true
				s.IO = s.IO.Add(es.IO)
			}
			prefix := fmt.Sprintf("s%d/", i)
			if r > 0 {
				prefix = fmt.Sprintf("s%dr%d/", i, r)
			}
			for pool, bs := range es.Buffers {
				if s.Buffers == nil {
					s.Buffers = make(map[string]mneme.BufferStats)
				}
				s.Buffers[prefix+pool] = bs
			}
		}
	}
	s.CorruptRecords = s.Counters.CorruptRecords
	sh := &core.ShardingStats{
		Shards:      len(x.sets),
		Quorum:      x.required,
		Policy:      x.cfg.Policy.String(),
		Partial:     x.partials.Value(),
		NoQuorum:    x.noQuorums.Value(),
		Hedged:      x.hedges.Value(),
		HedgeWins:   x.hedgeWins.Value(),
		Failovers:   x.failovers.Value(),
		Repairs:     x.repairs.Value(),
		Quarantines: x.quarantines.Value(),
	}
	if replicated {
		sh.Replicas = len(x.sets[0])
	}
	for i, set := range x.sets {
		st := core.ShardStat{
			Breaker:  set[0].breaker().State().String(),
			Answered: x.tally[i].answered.Load(),
			Degraded: x.tally[i].degraded.Load(),
			Failed:   x.tally[i].failed.Load(),
			Shed:     x.tally[i].shed.Load(),
		}
		for _, rep := range set {
			if e := rep.engine(); e != nil {
				st.Docs = e.LocalDocs()
				break
			}
		}
		if p := x.lat[i].p95(); p > 0 {
			st.P95Micros = p.Microseconds()
		}
		if replicated {
			for _, rep := range set {
				rs := core.ReplicaStat{
					Collection: rep.coll,
					State:      rep.state().String(),
					Breaker:    rep.breaker().State().String(),
					Answered:   rep.answered.Load(),
					Failed:     rep.failed.Load(),
					ConsecErrs: rep.consecErrs.Load(),
					Repairs:    rep.repairs.Load(),
				}
				if e := rep.ewma(); e > 0 {
					rs.EwmaMicros = int64(e / 1e3)
				}
				st.Replicas = append(st.Replicas, rs)
			}
		}
		sh.PerShard = append(sh.PerShard, st)
	}
	s.Sharding = sh
	return s
}
