// Replica sets: each shard of a replicated index holds R byte-identical
// copies of its store (same deterministic build, cloned through the vfs
// copy path, checksum-manifest-verified at open). A per-replica health
// tracker folds EWMA latency, consecutive hard errors, and the circuit
// breaker into a Healthy/Suspect/Dead state machine; the router orders
// each sub-query's candidate replicas by that state (then by EWMA), so
// queries flow to the best copy, hedge across copies, and fail over
// mid-query when a copy dies — and online repair rebuilds a quarantined
// copy from a healthy peer while queries keep flowing.

package shard

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/lexicon"
	"repro/internal/mneme"
	"repro/internal/resilience"
	"repro/internal/vfs"
)

// ReplicaState is a replica's routing fitness, derived (never stored)
// from its breaker, consecutive-error count, and quarantine flag.
type ReplicaState uint8

const (
	// ReplicaHealthy: routable, preferred (ordered by EWMA latency).
	ReplicaHealthy ReplicaState = iota
	// ReplicaSuspect: at least one recent consecutive hard error;
	// routable but only after every healthy peer.
	ReplicaSuspect
	// ReplicaDead: breaker open or too many consecutive errors; tried
	// last, and only so breaker half-open probes can heal it.
	ReplicaDead
	// ReplicaQuarantined: failed checksum verification or detected
	// corruption; excluded from routing entirely until repaired.
	ReplicaQuarantined
)

func (s ReplicaState) String() string {
	switch s {
	case ReplicaHealthy:
		return "healthy"
	case ReplicaSuspect:
		return "suspect"
	case ReplicaDead:
		return "dead"
	default:
		return "quarantined"
	}
}

const (
	// ewmaAlpha weights the newest latency sample in the per-replica
	// exponentially-weighted moving average.
	ewmaAlpha = 0.2
	// suspectAfterErrs / deadAfterErrs are the consecutive-hard-error
	// thresholds of the state machine.
	suspectAfterErrs = 1
	deadAfterErrs    = 3
)

// replica is one copy of one shard's store plus its health state.
type replica struct {
	shard int    // shard index
	idx   int    // replica index within the shard
	coll  string // collection name of this replica's files
	fs    *vfs.FS

	// mu guards eng and br against the repair swap. Sub-queries hold
	// the read lock for the duration of an engine call, so repair's
	// write lock drains exactly the in-flight work on this replica —
	// never queries on its peers.
	mu  sync.RWMutex
	eng *core.Engine
	br  *resilience.Breaker

	ewmaBits    atomic.Uint64 // EWMA latency in ns (float64 bits)
	consecErrs  atomic.Int64
	quarantined atomic.Bool
	repairing   atomic.Bool

	answered atomic.Int64
	failed   atomic.Int64
	repairs  atomic.Int64
}

func (rep *replica) engine() *core.Engine {
	rep.mu.RLock()
	defer rep.mu.RUnlock()
	return rep.eng
}

func (rep *replica) breaker() *resilience.Breaker {
	rep.mu.RLock()
	defer rep.mu.RUnlock()
	return rep.br
}

// run executes one sub-query attempt against this replica, holding the
// read lock so a concurrent repair cannot close the engine under it.
func (rep *replica) run(ctx context.Context, req core.Request) (core.Response, error) {
	rep.mu.RLock()
	defer rep.mu.RUnlock()
	if rep.eng == nil {
		return core.Response{Outcome: core.OutcomeError},
			fmt.Errorf("shard %d: replica %d offline: %w", rep.shard, rep.idx, resilience.ErrBreakerOpen)
	}
	return rep.eng.Run(ctx, req)
}

func (rep *replica) ewma() float64 {
	return math.Float64frombits(rep.ewmaBits.Load())
}

func (rep *replica) observeLatency(d time.Duration) {
	for {
		old := rep.ewmaBits.Load()
		prev := math.Float64frombits(old)
		next := float64(d)
		if prev > 0 {
			next = ewmaAlpha*float64(d) + (1-ewmaAlpha)*prev
		}
		if rep.ewmaBits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// observeOutcome feeds the consecutive-error counter: any success
// resets it, a hard error bumps it.
func (rep *replica) observeOutcome(ok bool) {
	if ok {
		rep.consecErrs.Store(0)
	} else {
		rep.consecErrs.Add(1)
	}
}

// state derives the routing state.
func (rep *replica) state() ReplicaState {
	if rep.quarantined.Load() {
		return ReplicaQuarantined
	}
	rep.mu.RLock()
	eng, br := rep.eng, rep.br
	rep.mu.RUnlock()
	if eng == nil {
		return ReplicaQuarantined
	}
	if br.State() == resilience.Open {
		return ReplicaDead
	}
	switch c := rep.consecErrs.Load(); {
	case c >= deadAfterErrs:
		return ReplicaDead
	case c >= suspectAfterErrs:
		return ReplicaSuspect
	default:
		return ReplicaHealthy
	}
}

// candidates orders shard i's routable replicas: healthy first (by
// EWMA latency ascending, replica index as the deterministic
// tiebreak), then suspects, then dead ones (so half-open breaker
// probes still reach them). Quarantined replicas are excluded — the
// router never touches a copy known to be corrupt.
func (x *Index) candidates(i int) []*replica {
	set := x.sets[i]
	byState := func(want ReplicaState) []*replica {
		var out []*replica
		for _, rep := range set {
			if rep.state() == want {
				out = append(out, rep)
			}
		}
		return out
	}
	healthy := byState(ReplicaHealthy)
	sort.SliceStable(healthy, func(a, b int) bool {
		ea, eb := healthy[a].ewma(), healthy[b].ewma()
		if ea != eb {
			return ea < eb
		}
		return healthy[a].idx < healthy[b].idx
	})
	out := append(healthy, byState(ReplicaSuspect)...)
	return append(out, byState(ReplicaDead)...)
}

// quarantineForRepair pulls a corrupt replica out of the routing table
// and, when the index owns its engines and a peer exists to copy
// from, kicks off an asynchronous rebuild.
func (x *Index) quarantineForRepair(rep *replica, cause error) {
	if len(x.sets[rep.shard]) < 2 {
		// Nowhere to rebuild from; the breaker isolates it instead.
		return
	}
	if rep.quarantined.CompareAndSwap(false, true) {
		x.quarantines.Add(1)
		log.Printf("shard: index %s shard %d replica %d quarantined: %v", x.name, rep.shard, rep.idx, cause)
	}
	if x.reopen == nil {
		return
	}
	if !rep.repairing.CompareAndSwap(false, true) {
		return
	}
	x.repairWG.Add(1)
	go func() {
		defer x.repairWG.Done()
		defer rep.repairing.Store(false)
		if err := x.repairReplica(rep); err != nil {
			log.Printf("shard: index %s shard %d replica %d repair failed: %v", x.name, rep.shard, rep.idx, err)
		}
	}()
}

// Repair synchronously quarantines and rebuilds replica r of shard i
// from a healthy peer: copy the peer's image through the vfs layer
// (rate-limited), re-verify every checksum against the manifest,
// reopen, and re-admit with fresh health state. Queries keep flowing
// throughout — the rebuild only write-locks this one replica.
func (x *Index) Repair(i, r int) error {
	if i < 0 || i >= len(x.sets) || r < 0 || r >= len(x.sets[i]) {
		return fmt.Errorf("shard: repair: no replica %d/%d", i, r)
	}
	if x.reopen == nil {
		return errors.New("shard: repair: index does not own its engines (opened via NewIndex)")
	}
	rep := x.sets[i][r]
	if rep.quarantined.CompareAndSwap(false, true) {
		x.quarantines.Add(1)
	}
	if !rep.repairing.CompareAndSwap(false, true) {
		return fmt.Errorf("shard: repair of shard %d replica %d already running", i, r)
	}
	defer rep.repairing.Store(false)
	return x.repairReplica(rep)
}

// repairReplica does the rebuild. The caller holds the repairing flag
// and has already quarantined the replica.
func (x *Index) repairReplica(rep *replica) error {
	// Prefer a healthy or suspect peer as the copy source, but fall
	// back to a breaker-dead one — the post-copy checksum verification
	// catches bad data, and a dead-looking peer is often just starved
	// of traffic (healthy-first routing never probes it).
	var src, fallback *replica
	for _, peer := range x.candidates(rep.shard) {
		if peer == rep {
			continue
		}
		if peer.state() != ReplicaDead {
			src = peer
			break
		}
		if fallback == nil {
			fallback = peer
		}
	}
	if src == nil {
		src = fallback
	}
	if src == nil {
		return fmt.Errorf("shard: repair %s: no healthy source replica", rep.coll)
	}
	entries, ok, err := readManifest(src.fs, src.coll)
	if err != nil {
		return fmt.Errorf("shard: repair %s: source manifest: %w", rep.coll, err)
	}
	if !ok {
		return fmt.Errorf("shard: repair %s: source %s has no manifest", rep.coll, src.coll)
	}

	// Take the replica offline. The write lock drains in-flight
	// sub-queries on this replica only; it is already quarantined, so
	// no new ones arrive.
	rep.mu.Lock()
	if rep.eng != nil {
		rep.eng.Close()
		rep.eng = nil
	}
	rep.mu.Unlock()

	// Sweep whatever is left of the old image, then copy the peer's,
	// verifying each file's size and CRC against the manifest.
	for _, name := range rep.fs.Names() {
		if strings.HasPrefix(name, rep.coll+".") {
			if err := rep.fs.Remove(name); err != nil {
				return fmt.Errorf("shard: repair %s: sweep %s: %w", rep.coll, name, err)
			}
		}
	}
	for _, ent := range entries {
		size, crc, err := vfs.CopyFile(src.fs, src.coll+ent.Suffix, rep.fs, rep.coll+ent.Suffix,
			vfs.CopyOptions{Pace: x.repairPace})
		if err != nil {
			return fmt.Errorf("shard: repair %s: %w", rep.coll, err)
		}
		if size != ent.Size || crc != ent.CRC {
			return fmt.Errorf("shard: repair %s: %s copied size/crc %d/%#x, manifest %d/%#x",
				rep.coll, rep.coll+ent.Suffix, size, crc, ent.Size, ent.CRC)
		}
	}
	if err := writeManifest(rep.fs, rep.coll, entries); err != nil {
		return fmt.Errorf("shard: repair %s: manifest: %w", rep.coll, err)
	}
	if _, err := verifyReplica(rep.fs, rep.coll); err != nil {
		return fmt.Errorf("shard: repair %s: re-verify: %w", rep.coll, err)
	}
	eng, err := x.reopen(rep.fs, rep.coll)
	if err != nil {
		return fmt.Errorf("shard: repair %s: reopen: %w", rep.coll, err)
	}

	// Re-admit with fresh health state: new breaker (the old one
	// remembers the corrupt store's failures), zeroed error count and
	// latency estimate.
	rep.mu.Lock()
	rep.eng = eng
	rep.br = resilience.NewBreaker(x.cfg.Breaker)
	rep.mu.Unlock()
	rep.consecErrs.Store(0)
	rep.ewmaBits.Store(0)
	rep.quarantined.Store(false)
	rep.repairs.Add(1)
	x.repairs.Add(1)
	log.Printf("shard: index %s shard %d replica %d repaired from replica %d and re-admitted",
		x.name, rep.shard, rep.idx, src.idx)
	return nil
}

// isCorruptErr reports whether a sub-query error indicates store
// corruption (the trigger for quarantine + repair rather than plain
// breaker isolation).
func isCorruptErr(err error) bool {
	if errors.Is(err, mneme.ErrCorrupt) {
		return true
	}
	var cse *mneme.CorruptSegmentError
	return errors.As(err, &cse)
}

// OpenReplicated opens an n-shard × r-replica collection: every
// replica is checksum-verified against its manifest before serving; a
// replica that fails verification (or fails to open) starts
// quarantined and is rebuilt from a peer on the first Repair — the
// shard only errors when no replica of it can serve. All engines share
// one collection-global statistics block, accumulated from one donor
// replica per shard (replicas are byte-identical, so any donor
// yields the same statistics). The returned Index owns its engines:
// Close closes them, and Repair can rebuild and reopen them.
func OpenReplicated(fss [][]*vfs.FS, name string, n, r int, kind core.BackendKind, cfg Config, opts ...core.Option) (*Index, error) {
	if err := validateReplicaFSS(fss, n, r); err != nil {
		return nil, err
	}
	g := &core.GlobalStats{DF: make(map[string]uint64)}
	reopen := func(fs *vfs.FS, coll string) (*core.Engine, error) {
		o := append(append([]core.Option(nil), opts...), core.WithGlobalStats(g))
		return core.Open(fs, coll, kind, o...)
	}
	engines := make([][]*core.Engine, n)
	for i := 0; i < n; i++ {
		engines[i] = make([]*core.Engine, r)
		var firstErr error
		opened := 0
		for rep := 0; rep < r; rep++ {
			fs := replicaFSFor(fss, i, rep)
			coll := ReplicaName(name, i, rep)
			if _, err := verifyReplica(fs, coll); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				log.Printf("shard: open %s: %v (replica starts quarantined)", name, err)
				continue
			}
			e, err := reopen(fs, coll)
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("shard: open %s: %w", coll, err)
				}
				log.Printf("shard: open %s: replica %s: %v (replica starts quarantined)", name, coll, err)
				continue
			}
			engines[i][rep] = e
			opened++
		}
		if opened == 0 {
			return nil, fmt.Errorf("shard: open %s: shard %d has no servable replica: %w", name, i, firstErr)
		}
	}
	// Collection-global statistics from one donor replica per shard.
	for i := 0; i < n; i++ {
		var donor *core.Engine
		for _, e := range engines[i] {
			if e != nil {
				donor = e
				break
			}
		}
		local := donor.LocalDocs()
		g.NumDocs += local
		for d := 0; d < local; d++ {
			g.TotalLen += int64(donor.DocLen(uint32(d)))
		}
		donor.Dictionary().Range(func(ent *lexicon.Entry) bool {
			g.DF[ent.Term] += ent.DF
			return true
		})
	}
	x, err := newIndexFromEngines(name, fss, engines, cfg)
	if err != nil {
		return nil, err
	}
	x.owned = true
	x.reopen = reopen
	return x, nil
}
