package shard

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/vfs"
)

// buildReplicated builds the corpus into an n-shard × r-replica set,
// every replica on its own FS (per-replica blast radius), and opens
// the failover coordinator without buffer caching so every query
// actually touches the (faultable, corruptible) file systems.
func buildReplicated(t *testing.T, docs []index.Doc, n, r int, cfg Config) (*Index, [][]*vfs.FS) {
	t.Helper()
	fss := buildReplicaStores(t, docs, n, r)
	idx := openReplicated(t, fss, n, r, cfg)
	return idx, fss
}

func buildReplicaStores(t *testing.T, docs []index.Doc, n, r int) [][]*vfs.FS {
	t.Helper()
	fss := make([][]*vfs.FS, n)
	for i := range fss {
		fss[i] = make([]*vfs.FS, r)
		for j := range fss[i] {
			fss[i][j] = newFS()
		}
	}
	opt := core.BuildOptions{Analyzer: plainAnalyzer(), Backends: []core.BackendKind{core.BackendMneme}}
	if _, err := BuildReplicated(fss, "c", n, r, &core.SliceDocs{Docs: docs}, opt); err != nil {
		t.Fatalf("replicated build %dx%d: %v", n, r, err)
	}
	return fss
}

func openReplicated(t *testing.T, fss [][]*vfs.FS, n, r int, cfg Config) *Index {
	t.Helper()
	idx, err := OpenReplicated(fss, "c", n, r, core.BackendMneme, cfg,
		core.WithAnalyzer(plainAnalyzer()), core.WithPlan(core.NoCache))
	if err != nil {
		t.Fatalf("open replicated %dx%d: %v", n, r, err)
	}
	t.Cleanup(func() { idx.Close() })
	return idx
}

// openBase opens an unsharded, unreplicated oracle over the same
// corpus.
func openBase(t *testing.T, docs []index.Doc) *core.Engine {
	t.Helper()
	fs := newFS()
	if _, err := core.Build(fs, "base", &core.SliceDocs{Docs: docs}, core.BuildOptions{Analyzer: plainAnalyzer()}); err != nil {
		t.Fatalf("base build: %v", err)
	}
	base, err := core.Open(fs, "base", core.BackendMneme, core.WithAnalyzer(plainAnalyzer()))
	if err != nil {
		t.Fatalf("open base: %v", err)
	}
	t.Cleanup(func() { base.Close() })
	return base
}

// corruptReplica flips bytes in the middle of the largest
// manifest-listed file (the store) of replica r of shard i — the
// bit-rot a checksum manifest and CorruptSegmentError detection exist
// to catch.
func corruptReplica(t *testing.T, fs *vfs.FS, coll string) {
	t.Helper()
	entries, ok, err := readManifest(fs, coll)
	if err != nil || !ok {
		t.Fatalf("manifest of %s: ok=%v err=%v", coll, ok, err)
	}
	var victim manifestEntry
	for _, ent := range entries {
		if ent.Size > victim.Size {
			victim = ent
		}
	}
	f, err := fs.Open(coll + victim.Suffix)
	if err != nil {
		t.Fatalf("open %s: %v", coll+victim.Suffix, err)
	}
	// Garbage over the middle half of the file: any query whose lists
	// live there reads a failed CRC, and the manifest check always
	// catches it.
	n := victim.Size / 2
	garbage := make([]byte, n)
	for i := range garbage {
		garbage[i] = byte(i*131 + 7)
	}
	if _, err := f.WriteAt(garbage, victim.Size/4); err != nil {
		t.Fatalf("corrupt %s: %v", coll+victim.Suffix, err)
	}
}

// TestReplicatedRankingsIdentical: replicas change where a sub-query
// runs, never what it returns — for every shard/replica geometry and
// evaluation mode the merged ranking must stay byte-identical to the
// unsharded, unreplicated oracle. Also covers the single-image (1×1
// fss) layout inqueryd uses for replicated image files.
func TestReplicatedRankingsIdentical(t *testing.T) {
	docs := shardCorpus()
	base := openBase(t, docs)
	ctx := context.Background()

	run := func(label string, idx *Index, n int) {
		for _, m := range evalModes {
			queries := allModeQueries
			if m.mode == core.ModeDAAT {
				queries = append(append([]string(nil), allModeQueries...), daatOnlyQueries...)
			}
			for _, q := range queries {
				req := core.Request{Query: q, TopK: 10, Mode: m.mode, Prune: m.prune}
				want, err := base.Run(ctx, req)
				if err != nil {
					t.Fatalf("base run %q: %v", q, err)
				}
				got, err := idx.Run(ctx, req)
				if err != nil {
					t.Fatalf("%s %s %q: %v", label, m.name, q, err)
				}
				if got.Outcome != core.OutcomeOK {
					t.Fatalf("%s %s %q: outcome %s", label, m.name, q, got.Outcome)
				}
				sameRanking(t, label+" "+m.name+" "+q, got.Results, want.Results)
				if c := got.Coverage; c == nil || c.Shards != n || c.Answered != n {
					t.Fatalf("%s %s %q: bad coverage %+v", label, m.name, q, got.Coverage)
				}
			}
		}
	}

	for _, geo := range []struct{ n, r int }{{1, 2}, {2, 2}, {4, 2}, {2, 3}} {
		idx, _ := buildReplicated(t, docs, geo.n, geo.r, Config{DisableHedge: true})
		if idx.NumDocs() != len(docs) {
			t.Fatalf("%dx%d: NumDocs=%d want %d", geo.n, geo.r, idx.NumDocs(), len(docs))
		}
		if idx.Replicas() != geo.r {
			t.Fatalf("%dx%d: Replicas()=%d", geo.n, geo.r, idx.Replicas())
		}
		run(fmt.Sprintf("x%dr%d", geo.n, geo.r), idx, geo.n)
	}

	// Single-image layout: all shards and replicas in one FS, the way
	// inquery-index -replicas lays out an image file.
	fs := newFS()
	opt := core.BuildOptions{Analyzer: plainAnalyzer(), Backends: []core.BackendKind{core.BackendMneme}}
	if _, err := BuildReplicated([][]*vfs.FS{{fs}}, "c", 2, 2, &core.SliceDocs{Docs: shardCorpus()}, opt); err != nil {
		t.Fatalf("single-image build: %v", err)
	}
	idx := openReplicated(t, [][]*vfs.FS{{fs}}, 2, 2, Config{DisableHedge: true})
	run("single-image 2x2", idx, 2)
}

// TestReplicatedBuildVerifies: every replica of a replicated build
// carries a manifest and passes checksum verification, and the v2
// sidecar round-trips both counts; v1 sidecars keep reading as one
// replica.
func TestReplicatedBuildVerifies(t *testing.T) {
	docs := []index.Doc{{ID: 0, Text: "a b c"}, {ID: 1, Text: "b c d"}, {ID: 2, Text: "c d e"}, {ID: 3, Text: "d e f"}}
	fss := buildReplicaStores(t, docs, 2, 2)
	for i := 0; i < 2; i++ {
		for r := 0; r < 2; r++ {
			coll := ReplicaName("c", i, r)
			ok, err := verifyReplica(fss[i][r], coll)
			if !ok || err != nil {
				t.Fatalf("replica %d/%d: verify ok=%v err=%v", i, r, ok, err)
			}
		}
	}
	n, r, ok, err := DetectFull(fss[0][0], "c")
	if n != 2 || r != 2 || !ok || err != nil {
		t.Fatalf("DetectFull: got (%d,%d,%v,%v), want (2,2,true,nil)", n, r, ok, err)
	}
	// Detect (the v1-era API) still reports the shard count.
	if n, ok, err := Detect(fss[1][1], "c"); n != 2 || !ok || err != nil {
		t.Fatalf("Detect on replicated image: (%d,%v,%v)", n, ok, err)
	}
	// An unreplicated build stays on the v1 sidecar and reads as r=1.
	fs := newFS()
	if _, err := Build([]*vfs.FS{fs}, "c", 3, &core.SliceDocs{Docs: docs},
		core.BuildOptions{Analyzer: plainAnalyzer(), Backends: []core.BackendKind{core.BackendMneme}}); err != nil {
		t.Fatalf("v1 build: %v", err)
	}
	if n, r, ok, err := DetectFull(fs, "c"); n != 3 || r != 1 || !ok || err != nil {
		t.Fatalf("DetectFull on v1 sidecar: (%d,%d,%v,%v), want (3,1,true,nil)", n, r, ok, err)
	}
}

// TestOpenReplicatedQuarantinesCorruptReplica: a replica that fails
// its checksum manifest at open starts quarantined — excluded from
// routing, queries exact through its peers — and a synchronous Repair
// rebuilds it from a peer and re-admits it. A shard with no intact
// replica at all refuses to open.
func TestOpenReplicatedQuarantinesCorruptReplica(t *testing.T) {
	docs := shardCorpus()
	base := openBase(t, docs)
	fss := buildReplicaStores(t, docs, 2, 2)
	corruptReplica(t, fss[1][1], ReplicaName("c", 1, 1))

	idx := openReplicated(t, fss, 2, 2, Config{DisableHedge: true, RetryAttempts: 2})
	if st := idx.ReplicaState(1, 1); st != ReplicaQuarantined {
		t.Fatalf("corrupt replica state %s, want quarantined", st)
	}
	req := core.Request{Query: "w1 w2 w3", TopK: 10}
	want, err := base.Run(context.Background(), req)
	if err != nil {
		t.Fatalf("base: %v", err)
	}
	resp, err := idx.Run(context.Background(), req)
	if err != nil || resp.Outcome != core.OutcomeOK {
		t.Fatalf("run with quarantined replica: outcome %v err %v", resp.Outcome, err)
	}
	sameRanking(t, "quarantined-at-open", resp.Results, want.Results)

	h := idx.Health()
	if !h.Serving {
		t.Fatalf("health not serving: %+v", h)
	}
	if got := h.Breakers["shard1/r1"]; got != "quarantined" {
		t.Fatalf("health shard1/r1 = %q, want quarantined (%+v)", got, h.Breakers)
	}

	if err := idx.Repair(1, 1); err != nil {
		t.Fatalf("repair: %v", err)
	}
	if st := idx.ReplicaState(1, 1); st != ReplicaHealthy {
		t.Fatalf("repaired replica state %s, want healthy", st)
	}
	if ok, err := verifyReplica(fss[1][1], ReplicaName("c", 1, 1)); !ok || err != nil {
		t.Fatalf("repaired replica fails verification: ok=%v err=%v", ok, err)
	}
	resp, err = idx.Run(context.Background(), req)
	if err != nil || resp.Outcome != core.OutcomeOK {
		t.Fatalf("run after repair: outcome %v err %v", resp.Outcome, err)
	}
	sameRanking(t, "after-repair", resp.Results, want.Results)

	// Every replica of a shard corrupt: nothing can serve it — open
	// must fail rather than hand out an index missing a shard.
	fss2 := buildReplicaStores(t, docs, 2, 2)
	corruptReplica(t, fss2[0][0], ReplicaName("c", 0, 0))
	corruptReplica(t, fss2[0][1], ReplicaName("c", 0, 1))
	if _, err := OpenReplicated(fss2, "c", 2, 2, core.BackendMneme, Config{},
		core.WithAnalyzer(plainAnalyzer())); err == nil {
		t.Fatal("open with every replica of shard 0 corrupt: want error")
	}
}

// TestReplicaAutoRepairOnCorruption: a query that reads bit-rot gets
// its answer from a peer replica (mid-query failover), and the corrupt
// copy is quarantined and rebuilt in the background without any caller
// intervention.
func TestReplicaAutoRepairOnCorruption(t *testing.T) {
	docs := shardCorpus()
	base := openBase(t, docs)
	idx, fss := buildReplicated(t, docs, 2, 2, Config{DisableHedge: true, RetryAttempts: 2})

	// Rot replica 0 of shard 0 and steer routing at it: its EWMA is
	// zero (never served) while the peer's is pushed high, so the
	// healthy-first order tries the corrupt copy first.
	corruptReplica(t, fss[0][0], ReplicaName("c", 0, 0))
	idx.sets[0][1].observeLatency(time.Second)

	req := core.Request{Query: "#or(w0 w1 w2 w3 w5 w7 w10 w599)", TopK: 10}
	want, err := base.Run(context.Background(), req)
	if err != nil {
		t.Fatalf("base: %v", err)
	}
	resp, err := idx.Run(context.Background(), req)
	if err != nil || resp.Outcome != core.OutcomeOK {
		t.Fatalf("run over bit-rot: outcome %v err %v (coverage %+v)", resp.Outcome, err, resp.Coverage)
	}
	sameRanking(t, "bit-rot failover", resp.Results, want.Results)

	// The read either hit the rot (quarantine + async repair already
	// running) or the queried lists missed it; repair synchronously in
	// that case so the end state is deterministic.
	rep := idx.sets[0][0]
	deadline := time.Now().Add(10 * time.Second)
	for rep.repairing.Load() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if rep.state() != ReplicaHealthy {
		if err := idx.Repair(0, 0); err != nil {
			t.Fatalf("repair: %v", err)
		}
	}
	if st := rep.state(); st != ReplicaHealthy {
		t.Fatalf("replica state %s after repair, want healthy", st)
	}
	if ok, err := verifyReplica(fss[0][0], ReplicaName("c", 0, 0)); !ok || err != nil {
		t.Fatalf("repaired replica fails verification: ok=%v err=%v", ok, err)
	}
	snap := idx.Snapshot()
	if snap.Sharding == nil || snap.Sharding.Repairs < 1 {
		t.Fatalf("snapshot records no repair: %+v", snap.Sharding)
	}
}

// TestReplicaRepairOnlineThroughput is the online-repair acceptance:
// while a rate-limited rebuild of a corrupt replica is running,
// queries must keep completing — every one exact and OutcomeOK — and
// the quarantined copy must come back verified and healthy.
func TestReplicaRepairOnlineThroughput(t *testing.T) {
	docs := shardCorpus()
	base := openBase(t, docs)
	fss := buildReplicaStores(t, docs, 2, 2)

	// Pace the repair so it demonstrably overlaps live queries:
	// total image bytes / bps ≈ 300ms of copying.
	entries, ok, err := readManifest(fss[0][1], ReplicaName("c", 0, 1))
	if err != nil || !ok {
		t.Fatalf("manifest: ok=%v err=%v", ok, err)
	}
	var total int64
	for _, ent := range entries {
		total += ent.Size
	}
	idx := openReplicated(t, fss, 2, 2, Config{
		DisableHedge:      true,
		RetryAttempts:     2,
		RepairBytesPerSec: total*10/3 + 1,
	})

	corruptReplica(t, fss[0][1], ReplicaName("c", 0, 1))

	req := core.Request{Query: "w1 w2 w3", TopK: 10}
	want, err := base.Run(context.Background(), req)
	if err != nil {
		t.Fatalf("base: %v", err)
	}

	stop := make(chan struct{})
	var okCount, badCount atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := idx.Run(context.Background(), req)
			if err != nil || resp.Outcome != core.OutcomeOK || len(resp.Results) != len(want.Results) {
				badCount.Add(1)
				continue
			}
			okCount.Add(1)
		}
	}()

	before := okCount.Load()
	if err := idx.Repair(0, 1); err != nil {
		t.Fatalf("repair: %v", err)
	}
	during := okCount.Load() - before
	close(stop)
	wg.Wait()

	if during == 0 {
		t.Fatal("no queries completed while the repair was running")
	}
	if bad := badCount.Load(); bad != 0 {
		t.Fatalf("%d queries failed or degraded during online repair", bad)
	}
	if st := idx.ReplicaState(0, 1); st != ReplicaHealthy {
		t.Fatalf("repaired replica state %s, want healthy", st)
	}
	if ok, err := verifyReplica(fss[0][1], ReplicaName("c", 0, 1)); !ok || err != nil {
		t.Fatalf("repaired replica fails verification: ok=%v err=%v", ok, err)
	}
	resp, err := idx.Run(context.Background(), req)
	if err != nil || resp.Outcome != core.OutcomeOK {
		t.Fatalf("post-repair run: outcome %v err %v", resp.Outcome, err)
	}
	sameRanking(t, "post-repair", resp.Results, want.Results)
	t.Logf("online repair: %d queries completed during the paced rebuild", during)
}

// TestReplicaKillStorm is the replicated chaos acceptance: every round
// kills one replica (crash-frozen disk) or bit-rots one replica's
// store, fires a batch of mixed-mode queries, and requires EVERY query
// to come back OutcomeOK with full coverage and a ranking
// byte-identical to the unreplicated oracle — zero failed, zero
// partial, while R≥2 replicas existed and at most one per shard was
// down. SOAK_ROUNDS scales it (see `make soak` / `make chaos`).
func TestReplicaKillStorm(t *testing.T) {
	docs := shardCorpus()
	base := openBase(t, docs)
	const n, r = 4, 2
	idx, fss := buildReplicated(t, docs, n, r, Config{
		DisableHedge:  true,
		RetryAttempts: 4, // enough visits to ride a breaker cooldown on one replica and still reach its peer
	})
	reqs := []core.Request{
		{Query: "w1 w2 w3", TopK: 10},
		{Query: "#and(w5 w15 w25)", TopK: 10},
		{Query: "#or(w7 w17)", TopK: 10},
		{Query: "#wsum(3 w2 1 w40)", TopK: 10},
		{Query: "w0 w10", TopK: 10, Mode: core.ModeDAAT},
		{Query: "#syn(w5 w6)", TopK: 10, Mode: core.ModeDAAT},
		{Query: "#or(w3 w13 w23)", TopK: 10, Mode: core.ModeDAAT, Prune: true},
	}
	oracle := make([][]core.Result, len(reqs))
	for qi, req := range reqs {
		resp, err := base.Run(context.Background(), req)
		if err != nil {
			t.Fatalf("oracle q%d: %v", qi, err)
		}
		oracle[qi] = resp.Results
	}

	// ensureRepaired drives replica (i,rp) back to a verified, healthy
	// state after a bit-rot round, whether or not a query tripped the
	// automatic quarantine path.
	ensureRepaired := func(round, i, rp int) {
		rep := idx.sets[i][rp]
		deadline := time.Now().Add(15 * time.Second)
		for rep.repairing.Load() && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if rep.state() != ReplicaHealthy || func() bool { _, err := verifyReplica(rep.fs, rep.coll); return err != nil }() {
			if err := idx.Repair(i, rp); err != nil {
				t.Fatalf("round %d: repair %d/%d: %v", round, i, rp, err)
			}
		}
		if _, err := verifyReplica(rep.fs, rep.coll); err != nil {
			t.Fatalf("round %d: replica %d/%d still corrupt after repair: %v", round, i, rp, err)
		}
	}

	rng := rand.New(rand.NewSource(61))
	rounds := soakRounds() * 3
	for round := 0; round < rounds; round++ {
		vs, vr := rng.Intn(n), rng.Intn(r)
		bitrot := round%3 == 2
		if bitrot {
			corruptReplica(t, fss[vs][vr], ReplicaName("c", vs, vr))
		} else {
			fss[vs][vr].SetFaultPlan(vfs.NewFaultPlan(int64(round)*13 + 5).FailReadEvery(1).WithCrash())
		}
		for j := 0; j < 6; j++ {
			qi := rng.Intn(len(reqs))
			resp, err := idx.Run(context.Background(), reqs[qi])
			if err != nil {
				t.Fatalf("round %d q%d: %v", round, qi, err)
			}
			if resp.Outcome != core.OutcomeOK {
				t.Fatalf("round %d q%d: outcome %s coverage %+v — a replicated index must absorb a single replica loss",
					round, qi, resp.Outcome, resp.Coverage)
			}
			if c := resp.Coverage; c == nil || c.Answered != n {
				t.Fatalf("round %d q%d: coverage not full: %+v", round, qi, c)
			}
			sameRanking(t, "storm", resp.Results, oracle[qi])
		}
		if bitrot {
			ensureRepaired(round, vs, vr)
		} else {
			fss[vs][vr].SetFaultPlan(nil)
		}
	}

	snap := idx.Snapshot()
	if snap.Sharding == nil || snap.Sharding.Failovers < 1 {
		t.Fatalf("storm recorded no failovers: %+v", snap.Sharding)
	}
	if snap.Sharding.Replicas != r {
		t.Fatalf("snapshot replicas = %d, want %d", snap.Sharding.Replicas, r)
	}
	if h := idx.Health(); !h.Serving {
		t.Fatalf("index unhealthy after storm: %+v", h)
	}
	t.Logf("storm: %d rounds, %d failovers, %d quarantines, %d repairs",
		rounds, snap.Sharding.Failovers, snap.Sharding.Quarantines, snap.Sharding.Repairs)
}

// TestReplicaFailoverGoroutineHygiene (the leak test): cross-replica
// hedges whose losers are cancelled, mid-query failover off a
// crash-frozen replica, and a caller cancelling mid-request must all
// leave no goroutine behind.
func TestReplicaFailoverGoroutineHygiene(t *testing.T) {
	docs := shardCorpus()
	idx, _ := buildReplicated(t, docs, 2, 2, Config{
		HedgeAfter:    time.Millisecond,
		RetryAttempts: 2,
	})
	req := core.Request{Query: "w1 w2 w3", TopK: 10}
	// Warm once so both replicas have engines exercised before the
	// baseline count.
	if _, err := idx.Run(context.Background(), req); err != nil {
		t.Fatalf("warm: %v", err)
	}
	baseline := runtime.NumGoroutine()

	// Cross-replica hedge: every primary stalls until cancelled, so
	// the hedge — which leads with a different replica — always wins
	// and always cancels a loser that is mid-flight on another copy.
	idx.testAttemptHook = func(ctx context.Context, shard int, hedge bool) {
		if !hedge {
			<-ctx.Done()
		}
	}
	for i := 0; i < 25; i++ {
		resp, err := idx.Run(context.Background(), req)
		if err != nil || resp.Outcome != core.OutcomeOK {
			t.Fatalf("hedged run %d: outcome %v err %v", i, resp.Outcome, err)
		}
	}
	snap := idx.Snapshot()
	if snap.Sharding.HedgeWins < 25 {
		t.Fatalf("hedge wins %d, want >= 25", snap.Sharding.HedgeWins)
	}
	idx.testAttemptHook = nil

	// Mid-query failover: crash-freeze whichever replica of shard 0
	// the router would try first; the query must fail over and the
	// dead attempt must not linger.
	first := idx.candidates(0)[0]
	first.fs.SetFaultPlan(vfs.NewFaultPlan(3).FailReadEvery(1).WithCrash())
	for i := 0; i < 10; i++ {
		resp, err := idx.Run(context.Background(), req)
		if err != nil || resp.Outcome != core.OutcomeOK {
			t.Fatalf("failover run %d: outcome %v err %v", i, resp.Outcome, err)
		}
	}
	first.fs.SetFaultPlan(nil)
	if got := idx.Snapshot().Sharding.Failovers; got < 1 {
		t.Fatalf("failovers = %d, want >= 1", got)
	}

	// Caller cancellation: every attempt stalls until the caller's
	// context dies; Run must return and reap all of them.
	idx.testAttemptHook = func(ctx context.Context, shard int, hedge bool) { <-ctx.Done() }
	for i := 0; i < 5; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		time.AfterFunc(2*time.Millisecond, cancel)
		idx.Run(ctx, req) // outcome is a typed deadline/cancel; hygiene is what's under test
		cancel()
	}
	idx.testAttemptHook = nil

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
}
