package mneme

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// auxWriter builds the auxiliary-table image written at Flush.
type auxWriter struct {
	buf []byte
}

func (w *auxWriter) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *auxWriter) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *auxWriter) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *auxWriter) i64(v int64)  { w.u64(uint64(v)) }
func (w *auxWriter) i32(v int32)  { w.u32(uint32(v)) }

func (w *auxWriter) str(s string) {
	w.u32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

func (w *auxWriter) bytes(b []byte) {
	w.u32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

var errAuxShort = errors.New("aux image truncated")

// auxReader parses the auxiliary-table image at Open. The first error
// sticks; callers check err once after a parsing batch.
type auxReader struct {
	buf []byte
	off int
	err error
}

func (r *auxReader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("%w at offset %d", errAuxShort, r.off)
	}
}

func (r *auxReader) u8() uint8 {
	if r.err != nil || r.off+1 > len(r.buf) {
		r.fail()
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *auxReader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *auxReader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *auxReader) i64() int64 { return int64(r.u64()) }
func (r *auxReader) i32() int32 { return int32(r.u32()) }

func (r *auxReader) str() string {
	n := int(r.u32())
	if r.err != nil || r.off+n > len(r.buf) {
		r.fail()
		return ""
	}
	s := string(r.buf[r.off : r.off+n])
	r.off += n
	return s
}

func (r *auxReader) bytes() []byte {
	n := int(r.u32())
	if r.err != nil || r.off+n > len(r.buf) {
		r.fail()
		return nil
	}
	b := append([]byte(nil), r.buf[r.off:r.off+n]...)
	r.off += n
	return b
}
