package mneme

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// policyStore builds a single-large-pool store with the named policy
// and a buffer holding exactly two 5000-byte segments.
func policyStore(t *testing.T, policy string) (*Store, []ObjectID) {
	t.Helper()
	fs := newStoreFS()
	st, err := Create(fs, "p-"+policy, Config{Pools: []PoolConfig{
		{Name: "large", Kind: PoolLarge, BufferBytes: 10000, Policy: policy},
	}})
	if err != nil {
		t.Fatal(err)
	}
	var ids []ObjectID
	for i := 0; i < 4; i++ {
		id, err := st.Allocate("large", payload(i, 5000))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	st.DropBuffers()
	return st, ids
}

func TestPolicyByNameValidation(t *testing.T) {
	fs := newStoreFS()
	_, err := Create(fs, "bad", Config{Pools: []PoolConfig{
		{Name: "x", Kind: PoolLarge, Policy: "mru"},
	}})
	if err == nil {
		t.Fatal("unknown policy accepted")
	}
	for _, p := range []string{"", "lru", "fifo", "clock"} {
		if _, err := Create(fs, "ok-"+p, Config{Pools: []PoolConfig{
			{Name: "x", Kind: PoolLarge, Policy: p},
		}}); err != nil {
			t.Fatalf("policy %q rejected: %v", p, err)
		}
	}
}

func TestFIFOIgnoresRecency(t *testing.T) {
	st, ids := policyStore(t, "fifo")
	st.Get(ids[0])
	st.Get(ids[1])
	st.Get(ids[0]) // touch: FIFO must NOT promote
	st.Get(ids[2]) // evicts ids[0], the oldest arrival
	if st.IsResident(ids[0]) {
		t.Fatal("FIFO kept the oldest arrival despite no promotion")
	}
	if !st.IsResident(ids[1]) || !st.IsResident(ids[2]) {
		t.Fatal("FIFO evicted the wrong segment")
	}
}

func TestClockSecondChance(t *testing.T) {
	st, ids := policyStore(t, "clock")
	st.Get(ids[0])
	st.Get(ids[1])
	// Both have their reference bits set; loading a third clears bits on
	// the first sweep and evicts one of them on the second.
	st.Get(ids[2])
	resident := 0
	for _, id := range ids[:3] {
		if st.IsResident(id) {
			resident++
		}
	}
	if resident != 2 {
		t.Fatalf("resident = %d, want 2", resident)
	}
	if !st.IsResident(ids[2]) {
		t.Fatal("newly loaded segment evicted")
	}
	// Re-touch ids[2] (sets its bit), load a fourth: the survivor of
	// {0,1} should go before ids[2].
	st.Get(ids[2])
	st.Get(ids[3])
	if !st.IsResident(ids[2]) || !st.IsResident(ids[3]) {
		t.Fatal("clock evicted a recently referenced segment")
	}
}

func TestClockRespectsReservations(t *testing.T) {
	st, ids := policyStore(t, "clock")
	st.Get(ids[0])
	st.Reserve([]ObjectID{ids[0]})
	st.Get(ids[1])
	st.Get(ids[2]) // must evict ids[1], not the reserved ids[0]
	if !st.IsResident(ids[0]) {
		t.Fatal("reserved segment evicted under clock")
	}
	st.ReleaseReservations()
}

// TestPoliciesCorrectUnderRandomWorkload: whatever the policy, the data
// returned must always be correct; policies only change performance.
func TestPoliciesCorrectUnderRandomWorkload(t *testing.T) {
	for _, policy := range []string{"lru", "fifo", "clock"} {
		t.Run(policy, func(t *testing.T) {
			fs := newStoreFS()
			st, err := Create(fs, "w", Config{Pools: []PoolConfig{
				{Name: "medium", Kind: PoolMedium, SegmentBytes: 4096, BufferBytes: 12000, Policy: policy},
			}})
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(99))
			ref := make(map[ObjectID][]byte)
			var ids []ObjectID
			for step := 0; step < 1500; step++ {
				if len(ids) == 0 || rng.Intn(3) == 0 {
					size := rng.Intn(3000) + 1
					data := payload(step, size)
					id, err := st.Allocate("medium", data)
					if err != nil {
						t.Fatal(err)
					}
					ids = append(ids, id)
					ref[id] = data
				} else {
					id := ids[rng.Intn(len(ids))]
					got, err := st.Get(id)
					if err != nil || !bytes.Equal(got, ref[id]) {
						t.Fatalf("step %d: Get mismatch under %s: %v", step, policy, err)
					}
				}
			}
			// Policy survives a flush/reopen cycle (it is persisted).
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
			st2, err := Open(fs, "w")
			if err != nil {
				t.Fatal(err)
			}
			for id, want := range ref {
				got, err := st2.Get(id)
				if err != nil || !bytes.Equal(got, want) {
					t.Fatalf("reopen Get(%#x) under %s: %v", uint32(id), policy, err)
				}
			}
		})
	}
}

func BenchmarkPolicies(b *testing.B) {
	for _, policy := range []string{"lru", "fifo", "clock"} {
		b.Run(policy, func(b *testing.B) {
			fs := newStoreFS()
			st, _ := Create(fs, fmt.Sprintf("bench-%s-%d", policy, b.N), Config{Pools: []PoolConfig{
				{Name: "large", Kind: PoolLarge, BufferBytes: 1 << 18, Policy: policy},
			}})
			var ids []ObjectID
			for i := 0; i < 64; i++ {
				id, _ := st.Allocate("large", payload(i, 8000))
				ids = append(ids, id)
			}
			st.Flush()
			rng := rand.New(rand.NewSource(1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.View(ids[rng.Intn(len(ids))], func([]byte) error { return nil })
			}
			bs := st.BufferStats()["large"]
			b.ReportMetric(bs.HitRate(), "hit_rate")
		})
	}
}
