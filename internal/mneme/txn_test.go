package mneme

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func TestRollbackDiscardsUncommittedWork(t *testing.T) {
	fs := newStoreFS()
	st := mustCreate(t, fs, "txn", paperConfig(1<<14, 1<<17, 1<<19))
	a, _ := st.Allocate("medium", payload(1, 500))
	b, _ := st.Allocate("large", payload(2, 9000))
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}

	// Uncommitted transaction: modify a, delete b, allocate c.
	if err := st.Modify(a, payload(3, 400)); err != nil {
		t.Fatal(err)
	}
	if err := st.Delete(b); err != nil {
		t.Fatal(err)
	}
	c, _ := st.Allocate("medium", payload(4, 600))

	if err := st.Rollback(); err != nil {
		t.Fatal(err)
	}
	// a restored, b alive, c gone.
	got, err := st.Get(a)
	if err != nil || !bytes.Equal(got, payload(1, 500)) {
		t.Fatalf("a after rollback: %v", err)
	}
	got, err = st.Get(b)
	if err != nil || !bytes.Equal(got, payload(2, 9000)) {
		t.Fatalf("b after rollback: %v", err)
	}
	if _, err := st.Get(c); !errors.Is(err, ErrNoObject) {
		t.Fatalf("c after rollback: %v", err)
	}
	// The store remains fully usable: new work commits normally.
	d, err := st.Allocate("medium", payload(5, 700))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(fs, "txn")
	if err != nil {
		t.Fatal(err)
	}
	for id, want := range map[ObjectID][]byte{a: payload(1, 500), b: payload(2, 9000), d: payload(5, 700)} {
		got, err := st2.Get(id)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("reopen Get(%#x): %v", uint32(id), err)
		}
	}
}

func TestRollbackBeforeFirstCommit(t *testing.T) {
	fs := newStoreFS()
	st := mustCreate(t, fs, "txn", chunkConfig())
	id, _ := st.Allocate("chunks", payload(1, 100))
	if err := st.Rollback(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get(id); err == nil {
		t.Fatal("pre-commit allocation survived rollback")
	}
	if st.PoolStats()[0].Objects != 0 {
		t.Fatal("store not empty after rollback to creation")
	}
}

func TestRollbackPreservesLocators(t *testing.T) {
	fs := newStoreFS()
	st := mustCreate(t, fs, "txn", chunkConfig())
	st.SetRefLocator("chunks", ChunkRefLocator)
	head, _ := WriteChunked(st, "chunks", payload(1, 3000), 512)
	st.Commit()
	// Uncommitted garbage, then rollback.
	WriteChunked(st, "chunks", payload(2, 1000), 512)
	if err := st.Rollback(); err != nil {
		t.Fatal(err)
	}
	// GC still traverses chunk references (locator survived).
	freed, err := st.GC([]ObjectID{head})
	if err != nil {
		t.Fatal(err)
	}
	if freed != 0 {
		t.Fatalf("GC freed %d live chunks: locator lost", freed)
	}
	if got, err := ReadChunked(st, head); err != nil || !bytes.Equal(got, payload(1, 3000)) {
		t.Fatalf("chunk list damaged: %v", err)
	}
}

func TestRollbackAfterDirtyEviction(t *testing.T) {
	fs := newStoreFS()
	// Tiny buffer forces uncommitted dirty segments to be shadow-saved
	// to the file; rollback must still discard their effects.
	st := mustCreate(t, fs, "txn", Config{Pools: []PoolConfig{
		{Name: "medium", Kind: PoolMedium, SegmentBytes: 4096, BufferBytes: 4096},
	}})
	base, _ := st.Allocate("medium", payload(1, 1000))
	st.Commit()
	var ids []ObjectID
	for i := 0; i < 30; i++ {
		id, err := st.Allocate("medium", payload(i+100, 1500))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := st.Rollback(); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if _, err := st.Get(id); err == nil {
			t.Fatalf("uncommitted object %#x survived", uint32(id))
		}
	}
	if got, err := st.Get(base); err != nil || !bytes.Equal(got, payload(1, 1000)) {
		t.Fatalf("committed object lost: %v", err)
	}
}

// TestConcurrentReaders exercises the store lock: many goroutines read
// (and reserve/release) simultaneously while data stays correct. Run
// with -race to validate the synchronization.
func TestConcurrentReaders(t *testing.T) {
	fs := newStoreFS()
	st := mustCreate(t, fs, "conc", paperConfig(1<<14, 1<<17, 1<<19))
	ref := make(map[ObjectID][]byte)
	var ids []ObjectID
	for i := 0; i < 200; i++ {
		size := i%4000 + 1
		data := payload(i, size)
		id, err := st.Allocate("medium", data)
		if err != nil {
			t.Fatal(err)
		}
		ref[id] = data
		ids = append(ids, id)
	}
	st.Commit()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 300; i++ {
				id := ids[rng.Intn(len(ids))]
				switch rng.Intn(5) {
				case 0:
					st.Reserve([]ObjectID{id})
					st.ReleaseReservations()
				case 1:
					st.IsResident(id)
				default:
					got, err := st.Get(id)
					if err != nil || !bytes.Equal(got, ref[id]) {
						errs <- fmt.Errorf("goroutine read mismatch: %v", err)
						return
					}
				}
			}
		}(int64(g))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentMixedWorkload adds writers: operations are serialized
// by the store lock, so any interleaving must remain internally
// consistent (no crashes, reads return either value committed by the
// lock ordering).
func TestConcurrentMixedWorkload(t *testing.T) {
	fs := newStoreFS()
	st := mustCreate(t, fs, "mix", paperConfig(1<<14, 1<<17, 1<<19))
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var mine []ObjectID
			for i := 0; i < 200; i++ {
				switch {
				case len(mine) == 0 || rng.Intn(3) == 0:
					id, err := st.Allocate("medium", payload(int(seed)*1000+i, rng.Intn(2000)+1))
					if err != nil {
						errs <- err
						return
					}
					mine = append(mine, id)
				case rng.Intn(4) == 0:
					id := mine[rng.Intn(len(mine))]
					// Deleting twice across iterations is possible for
					// this goroutine's own ids only; tolerate ErrNoObject.
					if err := st.Delete(id); err != nil && !errors.Is(err, ErrNoObject) {
						errs <- err
						return
					}
				default:
					id := mine[rng.Intn(len(mine))]
					if _, err := st.Get(id); err != nil && !errors.Is(err, ErrNoObject) {
						errs <- err
						return
					}
				}
			}
		}(int64(g))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkLockOverheadGet quantifies the paper's "no excessive
// overhead" expectation: the read path's transaction-support cost is
// one uncontended mutex acquisition per access.
func BenchmarkLockOverheadGet(b *testing.B) {
	fs := newStoreFS()
	st, _ := Create(fs, "bench", Config{Pools: []PoolConfig{
		{Name: "medium", Kind: PoolMedium, SegmentBytes: 8192, BufferBytes: 1 << 20},
	}})
	var ids []ObjectID
	for i := 0; i < 100; i++ {
		id, _ := st.Allocate("medium", payload(i, 500))
		ids = append(ids, id)
	}
	st.Commit()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.View(ids[i%len(ids)], func([]byte) error { return nil }); err != nil {
			b.Fatal(err)
		}
	}
}
