package mneme

import (
	"errors"
	"testing"

	"repro/internal/vfs"
)

const crashStoreName = "crash.mn"

func crashConfig() Config {
	return Config{Pools: []PoolConfig{
		{Name: "small", Kind: PoolSmall, SlotBytes: 16, SegmentBytes: 4096, BufferBytes: 1 << 16},
		{Name: "medium", Kind: PoolMedium, SegmentBytes: 8192, BufferBytes: 1 << 16},
		{Name: "large", Kind: PoolLarge, BufferBytes: 1 << 20},
	}}
}

func fill(b byte, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = b + byte(i%7)
	}
	return out
}

// buildCommitted creates a store with a committed baseline spanning all
// three pool kinds (including an oversize medium object) and returns it
// with the allocated ids: [0,30) small, [30,40) medium, 40 oversize
// medium, [41,44) large.
func buildCommitted(t *testing.T, fs *vfs.FS) (*Store, []ObjectID) {
	t.Helper()
	st, err := Create(fs, crashStoreName, crashConfig())
	if err != nil {
		t.Fatal(err)
	}
	var ids []ObjectID
	alloc := func(pool string, data []byte) {
		id, err := st.Allocate(pool, data)
		if err != nil {
			t.Fatalf("allocate %s: %v", pool, err)
		}
		ids = append(ids, id)
	}
	for i := 0; i < 30; i++ {
		alloc("small", fill(byte(i), 1+i%12))
	}
	for i := 0; i < 10; i++ {
		alloc("medium", fill(byte(0x30+i), 500+137*i))
	}
	alloc("medium", fill(0xEE, 10000)) // oversize: dedicated segment
	for i := 0; i < 3; i++ {
		alloc("large", fill(byte(0x60+i), 20000+777*i))
	}
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	return st, ids
}

// mutate applies a deterministic batch of uncommitted changes touching
// every pool: in-place modify, shrinking modify, relocating growth,
// delete, and fresh allocations.
func mutate(t *testing.T, st *Store, ids []ObjectID) {
	t.Helper()
	step := func(what string, err error) {
		if err != nil {
			t.Fatalf("%s: %v", what, err)
		}
	}
	step("modify small", st.Modify(ids[0], fill(0x7F, 9)))
	step("modify medium shrink", st.Modify(ids[30], fill(0x7E, 100)))
	step("modify medium grow", st.Modify(ids[31], fill(0x7D, 3000)))
	step("modify large", st.Modify(ids[41], fill(0x7C, 25000)))
	step("delete small", st.Delete(ids[5]))
	step("delete medium", st.Delete(ids[33]))
	_, err := st.Allocate("small", fill(0x11, 8))
	step("alloc small", err)
	_, err = st.Allocate("medium", fill(0x22, 1234))
	step("alloc medium", err)
	_, err = st.Allocate("large", fill(0x33, 30000))
	step("alloc large", err)
}

// stateOf snapshots every live object's bytes.
func stateOf(t *testing.T, st *Store) map[ObjectID]string {
	t.Helper()
	out := make(map[ObjectID]string)
	st.ForEach(func(id ObjectID, size int) bool {
		b, err := st.Get(id)
		if err != nil {
			t.Fatalf("get %#x: %v", uint32(id), err)
		}
		out[id] = string(b)
		return true
	})
	return out
}

func sameState(a, b map[ObjectID]string) bool {
	if len(a) != len(b) {
		return false
	}
	for id, v := range a {
		if b[id] != v {
			return false
		}
	}
	return true
}

// TestCommitCrashPointSweep simulates a crash at every write point and
// every sync point of a Commit, reopens the store from the frozen disk
// image each time, and proves recovery lands on exactly the pre-commit
// or post-commit state — never a hybrid — with all checksums clean.
func TestCommitCrashPointSweep(t *testing.T) {
	// Probe run: count the write and sync operations one Commit makes.
	fs := vfs.New(vfs.Options{})
	st, ids := buildCommitted(t, fs)
	oldState := stateOf(t, st)
	mutate(t, st, ids)
	newState := stateOf(t, st) // in-memory mutated state = post-commit state
	probe := vfs.NewFaultPlan(1)
	fs.SetFaultPlan(probe)
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	_, writes, syncs := probe.Counts()
	if writes < 3 || syncs < 1 {
		t.Fatalf("probe commit made %d writes, %d syncs; workload too small to sweep", writes, syncs)
	}

	crashAt := func(t *testing.T, plan *vfs.FaultPlan) {
		t.Helper()
		fs := vfs.New(vfs.Options{})
		st, ids := buildCommitted(t, fs)
		mutate(t, st, ids)
		fs.SetFaultPlan(plan)
		if err := st.Commit(); !errors.Is(err, vfs.ErrInjected) {
			t.Fatalf("commit under crash plan: want injected fault, got %v", err)
		}
		// Reboot: reopen from the frozen disk image.
		img := fs.Clone(vfs.Options{})
		re, err := Open(img, crashStoreName)
		if err != nil {
			t.Fatalf("reopen after crash: %v", err)
		}
		got := stateOf(t, re)
		switch {
		case sameState(got, oldState), sameState(got, newState):
		default:
			t.Fatalf("recovered state is a hybrid: %d objects (old %d, new %d)",
				len(got), len(oldState), len(newState))
		}
		rep, err := re.Fsck()
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Clean() {
			t.Fatalf("fsck after recovery: %v", rep.Issues)
		}
	}

	for k := int64(1); k <= writes; k++ {
		plan := vfs.NewFaultPlan(1).FailWrite(k).WithTear().WithCrash()
		crashAt(t, plan)
	}
	for k := int64(1); k <= syncs; k++ {
		plan := vfs.NewFaultPlan(1).FailSync(k).WithCrash()
		crashAt(t, plan)
	}
}

// TestFlippedByteDetectedOnFaultIn flips one byte in every persisted
// segment and verifies the corruption is caught on buffer fault-in as a
// typed, detail-carrying error.
func TestFlippedByteDetectedOnFaultIn(t *testing.T) {
	fs := vfs.New(vfs.Options{})
	st, _ := buildCommitted(t, fs)

	var flipped int
	for _, p := range st.pools {
		p.persistedSegments(func(seg int32, off int64, size int, crc uint32) {
			if err := fs.FlipByte(crashStoreName, off+int64(size/2), 0x40); err != nil {
				t.Fatal(err)
			}
			flipped++
		})
	}
	if flipped == 0 {
		t.Fatal("no persisted segments to corrupt")
	}
	// Drop resident copies so every access faults in from the file.
	if err := st.DropBuffers(); err != nil {
		t.Fatal(err)
	}

	var caught int
	st.ForEach(func(id ObjectID, size int) bool {
		_, err := st.Get(id)
		if err == nil {
			return true // object in a segment whose flipped byte missed it? impossible: crc covers whole image
		}
		caught++
		if !errors.Is(err, ErrCorruptSegment) || !errors.Is(err, ErrCorrupt) {
			t.Fatalf("get %#x: error %v does not chain to ErrCorruptSegment/ErrCorrupt", uint32(id), err)
		}
		var cse *CorruptSegmentError
		if !errors.As(err, &cse) {
			t.Fatalf("get %#x: error %v carries no *CorruptSegmentError", uint32(id), err)
		}
		if cse.Store != crashStoreName || cse.Pool == "" || cse.Off == 0 || cse.Want == cse.Got {
			t.Fatalf("get %#x: implausible detail %+v", uint32(id), cse)
		}
		return true
	})
	if caught == 0 {
		t.Fatal("no corruption detected on fault-in")
	}

	rep, err := st.Fsck()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Issues) != flipped {
		t.Fatalf("fsck found %d issues, want %d (one per flipped segment): %v",
			len(rep.Issues), flipped, rep.Issues)
	}
}

func TestFsckCleanStore(t *testing.T) {
	fs := vfs.New(vfs.Options{})
	st, _ := buildCommitted(t, fs)
	rep, err := st.Fsck()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("clean store reported issues: %v", rep.Issues)
	}
	if rep.Segments == 0 || rep.Bytes == 0 {
		t.Fatalf("fsck verified nothing: %+v", rep)
	}
}

func TestOpenDetectsHeaderCorruption(t *testing.T) {
	fs := vfs.New(vfs.Options{})
	st, _ := buildCommitted(t, fs)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the checksummed header region.
	if err := fs.FlipByte(crashStoreName, 18, 0x04); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(fs, crashStoreName); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open with rotted header: want ErrCorrupt, got %v", err)
	}
}

func TestRollbackAfterFailedCommit(t *testing.T) {
	fs := vfs.New(vfs.Options{})
	st, ids := buildCommitted(t, fs)
	oldState := stateOf(t, st)
	mutate(t, st, ids)
	fs.SetFaultPlan(vfs.NewFaultPlan(1).FailWrite(1))
	if err := st.Commit(); !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("want injected fault, got %v", err)
	}
	fs.SetFaultPlan(nil)
	// The same store instance recovers by rolling back to the last
	// committed image; no reopen required.
	if err := st.Rollback(); err != nil {
		t.Fatal(err)
	}
	if got := stateOf(t, st); !sameState(got, oldState) {
		t.Fatalf("rollback after failed commit: %d objects, want %d", len(got), len(oldState))
	}
}
