package mneme

// Write-ahead log. The near-real-time ingest path pairs Mneme's
// commit-point machinery with a CRC'd append-only log: a document is
// acknowledged only after its log entry is durable (Append + Sync), so
// a crash at any instant loses nothing that was acknowledged. The log
// is payload-agnostic — the NRT engine frames documents into entries —
// and recovery is prefix-exact: replay stops at the first torn or
// corrupt frame and truncates the file there, mirroring how the store
// header's checksummed commit point discards a torn Commit.
//
// Frame layout, repeated to end of file after a 4-byte magic:
//
//	u32 payload length | u32 CRC32(payload) | payload bytes
//
// All integers little-endian. A frame whose length field runs past the
// end of the file, or whose checksum does not match, ends replay: it
// and everything after it are the torn tail of an unacknowledged
// append.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/vfs"
)

const (
	walMagic     = "MWL1"
	walFrameHead = 8 // u32 length + u32 crc
)

// WAL is an append-only checksummed log over one vfs file. It is not
// safe for concurrent use; the NRT engine serializes appends behind its
// ingest lock.
type WAL struct {
	f       *vfs.File
	name    string
	off     int64 // next append offset
	entries int64
	buf     []byte // scratch frame buffer

	// Torn-tail accounting from OpenWAL: how many bytes the open
	// discarded, and how many frames that tail looked like (the first
	// undecodable frame plus however many intact-looking frames
	// followed it). Zero after CreateWAL or a clean open.
	truncBytes  int64
	truncFrames int64
}

// TruncatedBytes reports how many torn-tail bytes OpenWAL discarded.
func (w *WAL) TruncatedBytes() int64 { return w.truncBytes }

// TruncatedFrames reports how many frames the discarded tail spanned
// (best effort: framing after the first bad frame is reconstructed by
// scanning, so overlapping garbage may undercount).
func (w *WAL) TruncatedFrames() int64 { return w.truncFrames }

// WALMark is a position in the log (offset + entry count) taken before
// a batch of appends, so a failed batch can be rewound: the log never
// retains frames for documents whose ingest was reported as failed.
type WALMark struct {
	off     int64
	entries int64
}

// CreateWAL creates an empty log. The magic header is written but not
// synced; the first acknowledged batch syncs it along with its frames.
func CreateWAL(fs *vfs.FS, name string) (*WAL, error) {
	f, err := fs.Create(name)
	if err != nil {
		return nil, err
	}
	if _, err := f.WriteAt([]byte(walMagic), 0); err != nil {
		return nil, fmt.Errorf("mneme: init wal %q: %w", name, err)
	}
	return &WAL{f: f, name: name, off: int64(len(walMagic))}, nil
}

// OpenWAL opens an existing log, replaying every intact entry through
// fn in append order and truncating the torn tail (if any) so the log
// is ready for further appends. fn may be nil to open without
// consuming the entries. An error from fn aborts the open.
func OpenWAL(fs *vfs.FS, name string, fn func(payload []byte) error) (*WAL, error) {
	f, err := fs.Open(name)
	if err != nil {
		return nil, err
	}
	size := f.Size()
	hdr := make([]byte, len(walMagic))
	if size < int64(len(walMagic)) {
		return nil, fmt.Errorf("mneme: wal %q: %w: short header", name, ErrCorrupt)
	}
	if err := vfs.ReadFull(f, hdr, 0); err != nil {
		return nil, fmt.Errorf("mneme: wal %q: read header: %w", name, err)
	}
	if string(hdr) != walMagic {
		return nil, fmt.Errorf("mneme: wal %q: %w: bad magic", name, ErrCorrupt)
	}
	w := &WAL{f: f, name: name, off: int64(len(walMagic))}
	var frame [walFrameHead]byte
	for {
		if w.off+walFrameHead > size {
			break // torn or absent frame header
		}
		if err := vfs.ReadFull(f, frame[:], w.off); err != nil {
			return nil, fmt.Errorf("mneme: wal %q: read frame: %w", name, err)
		}
		n := int64(binary.LittleEndian.Uint32(frame[0:4]))
		want := binary.LittleEndian.Uint32(frame[4:8])
		if w.off+walFrameHead+n > size {
			break // length runs past EOF: torn payload
		}
		payload := make([]byte, n)
		if err := vfs.ReadFull(f, payload, w.off+walFrameHead); err != nil {
			return nil, fmt.Errorf("mneme: wal %q: read payload: %w", name, err)
		}
		if crc32.ChecksumIEEE(payload) != want {
			break // corrupt frame: everything from here is tail
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return nil, err
			}
		}
		w.off += walFrameHead + n
		w.entries++
	}
	if w.off < size {
		// Account for what the truncation is about to discard — repair
		// vs. data-loss triage after a crash needs to know whether the
		// tail was one torn append or a pile of lost frames. Frame
		// count is best effort: the first frame is undecodable by
		// definition, but a plausible length field still bounds it, and
		// the scan walks whatever intact-looking frames follow.
		w.truncBytes = size - w.off
		for off := w.off; off < size; {
			if off+walFrameHead > size {
				w.truncFrames++
				break
			}
			if err := vfs.ReadFull(f, frame[:], off); err != nil {
				w.truncFrames++
				break
			}
			n := int64(binary.LittleEndian.Uint32(frame[0:4]))
			if n < 0 || off+walFrameHead+n > size {
				w.truncFrames++
				break
			}
			w.truncFrames++
			off += walFrameHead + n
		}
		if err := f.Truncate(w.off); err != nil {
			return nil, fmt.Errorf("mneme: wal %q: truncate tail: %w", name, err)
		}
	}
	return w, nil
}

// Append writes one entry. The entry is not durable — and must not be
// acknowledged — until Sync returns.
func (w *WAL) Append(payload []byte) error {
	w.buf = w.buf[:0]
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(len(payload)))
	w.buf = binary.LittleEndian.AppendUint32(w.buf, crc32.ChecksumIEEE(payload))
	w.buf = append(w.buf, payload...)
	if _, err := w.f.WriteAt(w.buf, w.off); err != nil {
		return fmt.Errorf("mneme: wal %q: append: %w", w.name, err)
	}
	w.off += int64(len(w.buf))
	w.entries++
	return nil
}

// Sync makes every appended entry durable.
func (w *WAL) Sync() error { return w.f.Sync() }

// Mark returns the current end of the log, for Rewind.
func (w *WAL) Mark() WALMark { return WALMark{off: w.off, entries: w.entries} }

// Rewind truncates the log back to a mark taken before a failed batch,
// discarding its partial frames so they can never replay. If the
// truncate itself fails (the device is injecting faults), the log is
// left long — recovery still stops at the first torn frame — but the
// error tells the caller the log could not be tidied in place.
func (w *WAL) Rewind(m WALMark) error {
	if m.off == w.off {
		return nil
	}
	err := w.f.Truncate(m.off)
	w.off, w.entries = m.off, m.entries
	if err != nil {
		return fmt.Errorf("mneme: wal %q: rewind: %w", w.name, err)
	}
	return nil
}

// Entries returns the number of intact entries written or replayed.
func (w *WAL) Entries() int64 { return w.entries }

// Size returns the log's byte size (header + intact frames).
func (w *WAL) Size() int64 { return w.off }

// Close invalidates the handle; the log remains on the file system.
func (w *WAL) Close() error { return w.f.Close() }
