package mneme

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func chunkConfig() Config {
	return Config{Pools: []PoolConfig{
		{Name: "chunks", Kind: PoolMedium, SegmentBytes: 8192, BufferBytes: 1 << 20},
	}}
}

func TestChunkedRoundTrip(t *testing.T) {
	fs := newStoreFS()
	st := mustCreate(t, fs, "store", chunkConfig())
	for _, size := range []int{0, 1, 100, 1000, 10000, 100000} {
		data := payload(size, size)
		head, err := WriteChunked(st, "chunks", data, 1024)
		if err != nil {
			t.Fatalf("WriteChunked(%d): %v", size, err)
		}
		got, err := ReadChunked(st, head)
		if err != nil {
			t.Fatalf("ReadChunked(%d): %v", size, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("chunked round trip failed for %d bytes", size)
		}
		if n, err := ChunkedLen(st, head); err != nil || n != size {
			t.Fatalf("ChunkedLen = %d, %v; want %d", n, err, size)
		}
	}
	if _, err := WriteChunked(st, "chunks", []byte("x"), 0); err == nil {
		t.Fatal("zero chunk size accepted")
	}
}

func TestChunkedIncrementalScan(t *testing.T) {
	fs := newStoreFS()
	st := mustCreate(t, fs, "store", chunkConfig())
	data := payload(9, 5000)
	head, _ := WriteChunked(st, "chunks", data, 512)
	var got []byte
	calls := 0
	ScanChunked(st, head, func(p []byte) bool {
		calls++
		got = append(got, p...)
		return calls < 3 // stop early: incremental retrieval
	})
	if calls != 3 || !bytes.Equal(got, data[:3*512]) {
		t.Fatalf("incremental scan: calls=%d len=%d", calls, len(got))
	}
}

func TestChunkedAppend(t *testing.T) {
	fs := newStoreFS()
	st := mustCreate(t, fs, "store", chunkConfig())
	a := payload(1, 3000)
	b := payload(2, 2000)
	head, err := WriteChunked(st, "chunks", a, 700)
	if err != nil {
		t.Fatal(err)
	}
	head2, err := AppendChunked(st, "chunks", head, b, 700)
	if err != nil {
		t.Fatal(err)
	}
	if head2 != head {
		t.Fatal("append changed the head id")
	}
	got, err := ReadChunked(st, head)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, append(append([]byte(nil), a...), b...)) {
		t.Fatal("appended data mismatch")
	}
	// Appending nothing is a no-op.
	if h, err := AppendChunked(st, "chunks", head, nil, 700); err != nil || h != head {
		t.Fatalf("empty append = %v, %v", h, err)
	}
}

func TestChunkedDelete(t *testing.T) {
	fs := newStoreFS()
	st := mustCreate(t, fs, "store", chunkConfig())
	head, _ := WriteChunked(st, "chunks", payload(3, 4000), 512)
	before := st.PoolStats()[0].Objects
	if before < 8 {
		t.Fatalf("expected >= 8 chunks, got %d", before)
	}
	if err := DeleteChunked(st, head); err != nil {
		t.Fatal(err)
	}
	if after := st.PoolStats()[0].Objects; after != 0 {
		t.Fatalf("chunks remain after delete: %d", after)
	}
}

func TestChunkedCycleDetected(t *testing.T) {
	fs := newStoreFS()
	st := mustCreate(t, fs, "store", chunkConfig())
	head, _ := WriteChunked(st, "chunks", payload(4, 100), 64)
	// Point the head chunk's next field at itself.
	raw, _ := st.Get(head)
	raw[0] = byte(head)
	raw[1] = byte(head >> 8)
	raw[2] = byte(head >> 16)
	raw[3] = byte(head >> 24)
	st.Modify(head, raw)
	if _, err := ReadChunked(st, head); err == nil {
		t.Fatal("cycle not detected")
	}
}

// TestPropertyChunkedRoundTrip via testing/quick over sizes and chunk sizes.
func TestPropertyChunkedRoundTrip(t *testing.T) {
	fs := newStoreFS()
	st := mustCreate(t, fs, "store", chunkConfig())
	check := func(seed int64, sizeRaw uint16, chunkRaw uint8) bool {
		size := int(sizeRaw) % 20000
		chunk := int(chunkRaw)%2000 + 1
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, size)
		rng.Read(data)
		head, err := WriteChunked(st, "chunks", data, chunk)
		if err != nil {
			return false
		}
		got, err := ReadChunked(st, head)
		if err != nil || !bytes.Equal(got, data) {
			return false
		}
		return DeleteChunked(st, head) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGCCollectsUnreachableChunks(t *testing.T) {
	fs := newStoreFS()
	st := mustCreate(t, fs, "store", chunkConfig())
	st.SetRefLocator("chunks", ChunkRefLocator)

	keep, _ := WriteChunked(st, "chunks", payload(1, 3000), 512)
	lose, _ := WriteChunked(st, "chunks", payload(2, 3000), 512)
	total := st.PoolStats()[0].Objects

	freed, err := st.GC([]ObjectID{keep})
	if err != nil {
		t.Fatal(err)
	}
	if freed == 0 || int64(freed) != total-st.PoolStats()[0].Objects {
		t.Fatalf("freed = %d, total %d -> %d", freed, total, st.PoolStats()[0].Objects)
	}
	if got, err := ReadChunked(st, keep); err != nil || !bytes.Equal(got, payload(1, 3000)) {
		t.Fatalf("kept object damaged by GC: %v", err)
	}
	if _, err := st.Get(lose); err == nil {
		t.Fatal("unreachable head survived GC")
	}
	// GC with every root present frees nothing further.
	freed, err = st.GC([]ObjectID{keep})
	if err != nil || freed != 0 {
		t.Fatalf("second GC freed %d, err %v", freed, err)
	}
}

func TestGCWithoutLocatorKeepsOnlyRoots(t *testing.T) {
	fs := newStoreFS()
	st := mustCreate(t, fs, "store", paperConfig(1<<14, 1<<16, 1<<18))
	a, _ := st.Allocate("medium", payload(1, 100))
	b, _ := st.Allocate("medium", payload(2, 100))
	c, _ := st.Allocate("large", payload(3, 9000))
	freed, err := st.GC([]ObjectID{a, c})
	if err != nil || freed != 1 {
		t.Fatalf("GC = %d, %v; want 1 freed", freed, err)
	}
	if _, err := st.Get(b); err == nil {
		t.Fatal("unrooted object survived")
	}
	for _, id := range []ObjectID{a, c} {
		if _, err := st.Get(id); err != nil {
			t.Fatalf("rooted object %#x collected: %v", uint32(id), err)
		}
	}
}

func TestCompactReducesSegmentTransfer(t *testing.T) {
	fs := newStoreFS()
	st := mustCreate(t, fs, "store", Config{Pools: []PoolConfig{
		{Name: "medium", Kind: PoolMedium, SegmentBytes: 8192, BufferBytes: 0},
	}})
	var ids []ObjectID
	for i := 0; i < 16; i++ {
		id, _ := st.Allocate("medium", payload(i, 1000))
		ids = append(ids, id)
	}
	// Delete every other object, then compact.
	for i := 0; i < 16; i += 2 {
		st.Delete(ids[i])
	}
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 16; i += 2 {
		got, err := st.Get(ids[i])
		if err != nil || !bytes.Equal(got, payload(i, 1000)) {
			t.Fatalf("object %d damaged by compaction: %v", i, err)
		}
	}
	// Survives a flush/reopen cycle.
	st.Close()
	st2, err := Open(fs, "store")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 16; i += 2 {
		got, err := st2.Get(ids[i])
		if err != nil || !bytes.Equal(got, payload(i, 1000)) {
			t.Fatalf("object %d damaged after reopen: %v", i, err)
		}
	}
}

func TestRegistryGlobalIDs(t *testing.T) {
	fs := newStoreFS()
	st1 := mustCreate(t, fs, "f1", chunkConfig())
	st2 := mustCreate(t, fs, "f2", chunkConfig())
	a, _ := st1.Allocate("chunks", []byte("file-one"))
	b, _ := st2.Allocate("chunks", []byte("file-two"))
	// Same local id in both files (both are the first allocation).
	if a != b {
		t.Fatalf("expected matching local ids, got %#x and %#x", uint32(a), uint32(b))
	}
	r := NewRegistry()
	h1 := r.Attach(st1)
	h2 := r.Attach(st2)
	if r.Attach(st1) != h1 {
		t.Fatal("re-attach changed handle")
	}
	ga, err := r.Global(h1, a)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := r.Global(h2, b)
	if err != nil {
		t.Fatal(err)
	}
	if ga == gb {
		t.Fatal("distinct files share a global id")
	}
	// Stable mapping on repeat.
	if ga2, _ := r.Global(h1, a); ga2 != ga {
		t.Fatal("global mapping unstable")
	}
	if data, err := r.Get(ga); err != nil || string(data) != "file-one" {
		t.Fatalf("resolve ga: %q, %v", data, err)
	}
	if data, err := r.Get(gb); err != nil || string(data) != "file-two" {
		t.Fatalf("resolve gb: %q, %v", data, err)
	}
	// Errors.
	if _, err := r.Global(99, a); err == nil {
		t.Fatal("bad handle accepted")
	}
	if _, err := r.Global(h1, NilID); err == nil {
		t.Fatal("nil id accepted")
	}
	if _, _, err := r.Resolve(GlobalID(makeID(4000, 1))); err == nil {
		t.Fatal("unknown global resolved")
	}
}
