package mneme

import "container/list"

// Additional replacement policies. The paper stresses that Mneme's
// buffers are extensible — "How these operations are implemented
// determines the policies used to manage the buffer" — and the
// integration chose LRU after experimenting. These alternatives plug
// into the same Buffer and are compared by the policy ablation bench.

// fifoPolicy evicts in arrival order, ignoring recency.
type fifoPolicy struct {
	order *list.List // front = newest
}

// NewFIFO returns first-in-first-out replacement.
func NewFIFO() ReplacementPolicy { return &fifoPolicy{order: list.New()} }

func (p *fifoPolicy) Inserted(s *Segment) { s.elem = p.order.PushFront(s) }
func (p *fifoPolicy) Touched(*Segment)    {}
func (p *fifoPolicy) Removed(s *Segment) {
	p.order.Remove(s.elem)
	s.elem = nil
}

func (p *fifoPolicy) Victim(skip func(*Segment) bool) *Segment {
	for e := p.order.Back(); e != nil; e = e.Prev() {
		s := e.Value.(*Segment)
		if !skip(s) {
			return s
		}
	}
	return nil
}

// clockEntry wraps a segment with a reference bit.
type clockEntry struct {
	seg *Segment
	ref bool
}

// clockPolicy is the classic second-chance approximation of LRU.
type clockPolicy struct {
	ring *list.List // circular order; hand advances through it
	hand *list.Element
	pos  map[*Segment]*list.Element
}

// NewClock returns clock (second-chance) replacement.
func NewClock() ReplacementPolicy {
	return &clockPolicy{ring: list.New(), pos: make(map[*Segment]*list.Element)}
}

func (p *clockPolicy) Inserted(s *Segment) {
	p.pos[s] = p.ring.PushBack(&clockEntry{seg: s, ref: true})
}

func (p *clockPolicy) Touched(s *Segment) {
	if e, ok := p.pos[s]; ok {
		e.Value.(*clockEntry).ref = true
	}
}

func (p *clockPolicy) Removed(s *Segment) {
	e, ok := p.pos[s]
	if !ok {
		return
	}
	if p.hand == e {
		p.hand = e.Next()
	}
	p.ring.Remove(e)
	delete(p.pos, s)
}

func (p *clockPolicy) Victim(skip func(*Segment) bool) *Segment {
	n := p.ring.Len()
	if n == 0 {
		return nil
	}
	// Sweep at most two full revolutions: the first may clear reference
	// bits, the second must find a victim unless everything is skipped.
	for i := 0; i < 2*n; i++ {
		if p.hand == nil {
			p.hand = p.ring.Front()
		}
		ce := p.hand.Value.(*clockEntry)
		next := p.hand.Next()
		if skip(ce.seg) {
			p.hand = next
			continue
		}
		if ce.ref {
			ce.ref = false
			p.hand = next
			continue
		}
		p.hand = next
		return ce.seg
	}
	return nil
}
