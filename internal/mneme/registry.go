package mneme

import "fmt"

// GlobalID is a globally unique object identifier spanning multiple
// open store files: "An object's identifier is unique only within the
// object's file. Multiple files may be open simultaneously, however, so
// object identifiers are mapped to globally unique identifiers when the
// objects are accessed. ... The number of objects that may be accessed
// simultaneously is bounded by the number of globally unique
// identifiers (currently 2^28)" (paper §3.2).
type GlobalID uint32

// NilGlobal is the invalid global identifier.
const NilGlobal GlobalID = 0

// Registry maps (file, local id) pairs onto the bounded global space.
// Global logical segment numbers are handed out lazily, on first access
// to each file-local logical segment.
type Registry struct {
	stores     []*Store
	handleOf   map[*Store]int
	nextGlobal uint32              // global logical segment allocator, starts at 1
	toGlobal   []map[uint32]uint32 // per handle: local logseg -> global logseg
	fromGlobal map[uint32]regEntry
}

type regEntry struct {
	handle   int
	localSeg uint32
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		handleOf:   make(map[*Store]int),
		nextGlobal: 1,
		fromGlobal: make(map[uint32]regEntry),
	}
}

// Attach registers an open store and returns its handle. Attaching the
// same store twice returns the original handle.
func (r *Registry) Attach(st *Store) int {
	if h, ok := r.handleOf[st]; ok {
		return h
	}
	h := len(r.stores)
	r.stores = append(r.stores, st)
	r.handleOf[st] = h
	r.toGlobal = append(r.toGlobal, make(map[uint32]uint32))
	return h
}

// Global maps a file-local identifier to a global identifier, assigning
// a global logical segment on first access. It fails when the 2^28
// global identifier space is exhausted — the bound the paper notes,
// worked around by "allocating a new file when the previous file's
// object identifiers have been exhausted" and re-attaching.
func (r *Registry) Global(handle int, id ObjectID) (GlobalID, error) {
	if handle < 0 || handle >= len(r.stores) {
		return NilGlobal, fmt.Errorf("mneme: registry: bad handle %d", handle)
	}
	if !id.Valid() {
		return NilGlobal, fmt.Errorf("%w: %#x", ErrBadID, uint32(id))
	}
	local := id.LogicalSegment()
	g, ok := r.toGlobal[handle][local]
	if !ok {
		if r.nextGlobal >= 1<<(IDBits-8) {
			return NilGlobal, fmt.Errorf("mneme: registry: global identifier space exhausted")
		}
		g = r.nextGlobal
		r.nextGlobal++
		r.toGlobal[handle][local] = g
		r.fromGlobal[g] = regEntry{handle: handle, localSeg: local}
	}
	return GlobalID(makeID(g, id.Slot())), nil
}

// Resolve maps a global identifier back to its store and local id.
func (r *Registry) Resolve(g GlobalID) (*Store, ObjectID, error) {
	id := ObjectID(g)
	if !id.Valid() {
		return nil, NilID, fmt.Errorf("%w: global %#x", ErrBadID, uint32(g))
	}
	e, ok := r.fromGlobal[id.LogicalSegment()]
	if !ok {
		return nil, NilID, fmt.Errorf("%w: global %#x", ErrNoObject, uint32(g))
	}
	return r.stores[e.handle], makeID(e.localSeg, id.Slot()), nil
}

// Get fetches an object through its global identifier.
func (r *Registry) Get(g GlobalID) ([]byte, error) {
	st, id, err := r.Resolve(g)
	if err != nil {
		return nil, err
	}
	return st.Get(id)
}
