package mneme

import (
	"container/list"
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/resilience"
)

// segRef names one physical segment: the owning pool's index within the
// store and the pool's internal segment number. The reference is stable
// across shadow relocation of the segment within the file.
type segRef struct {
	pool uint8
	idx  int32
}

// Segment is a resident (or transiently loaded) physical segment.
type Segment struct {
	ref   segRef
	data  []byte
	dirty bool
	// pins counts outstanding reservations. A segment with pins > 0 is
	// never selected as an eviction victim, so one query's release
	// cannot evict a segment another concurrent query has reserved.
	pins int32
	elem *list.Element // policy bookkeeping; nil when transient
}

// Data exposes the segment's bytes. Pools slice objects out of it.
func (s *Segment) Data() []byte { return s.data }

// ReplacementPolicy is the extensibility hook the paper describes:
// "Buffers may be defined by supplying a number of standard buffer
// operations ... How these operations are implemented determines the
// policies used to manage the buffer." Implementations order resident
// segments and nominate eviction victims.
type ReplacementPolicy interface {
	// Inserted records a newly resident segment.
	Inserted(*Segment)
	// Touched records a reference to a resident segment.
	Touched(*Segment)
	// Removed forgets an evicted segment.
	Removed(*Segment)
	// Victim returns the next eviction candidate, skipping segments for
	// which skip returns true, or nil if none qualifies.
	Victim(skip func(*Segment) bool) *Segment
}

// lruPolicy is least-recently-used replacement — the policy the paper
// selects for all three pools ("least recently used (LRU) with a slight
// optimization", the optimization being reservation, which the Buffer
// implements by skipping reserved segments during victim selection).
type lruPolicy struct {
	order *list.List // front = most recently used
}

// NewLRU returns an LRU replacement policy.
func NewLRU() ReplacementPolicy { return &lruPolicy{order: list.New()} }

func (p *lruPolicy) Inserted(s *Segment) { s.elem = p.order.PushFront(s) }
func (p *lruPolicy) Touched(s *Segment)  { p.order.MoveToFront(s.elem) }
func (p *lruPolicy) Removed(s *Segment) {
	p.order.Remove(s.elem)
	s.elem = nil
}

func (p *lruPolicy) Victim(skip func(*Segment) bool) *Segment {
	for e := p.order.Back(); e != nil; e = e.Prev() {
		s := e.Value.(*Segment)
		if !skip(s) {
			return s
		}
	}
	return nil
}

// Buffer manages the residency of one pool's physical segments. Each
// pool attaches to its own buffer ("Each object pool was attached to a
// separate buffer, allowing the global buffer space to be divided
// between the object pools based on expected access patterns").
type Buffer struct {
	capacity int64
	used     int64
	resident map[segRef]*Segment
	policy   ReplacementPolicy
	stats    BufferStats

	// save is the pool's modified-segment-save call-back, invoked when
	// a dirty segment is evicted or flushed.
	save func(*Segment) error

	// rec, when non-nil, receives hit/miss events and fault-in spans,
	// labelled with the owning pool's name. Attached through
	// Store.SetRecorder; nil when tracing is off.
	rec      obs.Recorder
	recLabel string

	// guard, when non-nil, wraps segment fault-in with transient-fault
	// retry and a circuit breaker. Attached through Store.SetResilience;
	// nil (the default) costs one branch per miss.
	guard *resilience.Guard
}

// SetGuard attaches (or, with nil, detaches) the fault-in guard.
func (b *Buffer) SetGuard(g *resilience.Guard) { b.guard = g }

// SetRecorder attaches (or, with nil, detaches) a trace recorder; label
// names the owning pool on emitted events and spans.
func (b *Buffer) SetRecorder(label string, r obs.Recorder) {
	b.recLabel = label
	b.rec = r
}

// NewBuffer creates a buffer with the given byte capacity and policy.
// Capacity <= 0 disables caching: every acquisition is transient.
func NewBuffer(capacity int64, policy ReplacementPolicy, save func(*Segment) error) *Buffer {
	return &Buffer{
		capacity: capacity,
		resident: make(map[segRef]*Segment),
		policy:   policy,
		save:     save,
	}
}

// SetCapacity changes the buffer's capacity, evicting as needed when
// shrinking. Used by the buffer-size sweep of Figure 3.
func (b *Buffer) SetCapacity(capacity int64) error {
	b.capacity = capacity
	if capacity <= 0 {
		return b.Clear()
	}
	return b.evictUntil(capacity)
}

// Capacity returns the configured capacity in bytes.
func (b *Buffer) Capacity() int64 { return b.capacity }

// Stats returns the access counters.
func (b *Buffer) Stats() BufferStats { return b.stats }

// ResetStats zeroes the access counters.
func (b *Buffer) ResetStats() { b.stats = BufferStats{} }

// Acquire returns the named segment, loading it with load on a miss.
// countRef selects whether this access is an object reference (counted
// in Refs/Hits, i.e. the paper's Table 6) or internal bookkeeping.
// With caching disabled the segment is transient: it is returned but
// never made resident. A load failure — including a checksum mismatch
// detected on fault-in (ErrCorruptSegment) — leaves the buffer
// unchanged: the failed segment is never made resident, so a later
// retry re-reads the file rather than serving poisoned bytes.
func (b *Buffer) Acquire(ref segRef, size int, countRef bool, load func([]byte) error) (*Segment, error) {
	if countRef {
		b.stats.Refs++
	}
	if s, ok := b.resident[ref]; ok {
		if countRef {
			b.stats.Hits++
		}
		if b.rec != nil {
			b.rec.Event(obs.EvBufferHit, b.recLabel, 1)
		}
		b.policy.Touched(s)
		return s, nil
	}
	data := make([]byte, size)
	if b.rec != nil {
		b.rec.Event(obs.EvBufferMiss, b.recLabel, 1)
		b.rec.BeginSpan(obs.StageFaultIn, b.recLabel)
	}
	var err error
	if b.guard != nil {
		attempts := 0
		err = b.guard.Do(func() error {
			attempts++
			return load(data)
		}, transientRead)
		if attempts > 1 {
			b.stats.Retries += int64(attempts - 1)
		}
	} else {
		err = load(data)
	}
	if b.rec != nil {
		b.rec.Event(obs.EvFaultInBytes, b.recLabel, int64(size))
		b.rec.EndSpan()
	}
	if err != nil {
		return nil, err
	}
	b.stats.Loads++
	s := &Segment{ref: ref, data: data}
	if b.capacity <= 0 {
		return s, nil // transient: no caching configured
	}
	if err := b.evictUntil(b.capacity - int64(size)); err != nil {
		return nil, err
	}
	b.resident[ref] = s
	b.used += int64(size)
	b.policy.Inserted(s)
	return s, nil
}

// evictUntil evicts unpinned victims until used <= limit or no victim
// remains. Dirty victims are saved through the pool call-back first.
func (b *Buffer) evictUntil(limit int64) error {
	for b.used > limit {
		v := b.policy.Victim(func(s *Segment) bool { return s.pins > 0 })
		if v == nil {
			return nil // everything reserved; tolerate overflow
		}
		if err := b.evict(v); err != nil {
			return err
		}
	}
	return nil
}

func (b *Buffer) evict(s *Segment) error {
	if s.dirty {
		if err := b.save(s); err != nil {
			return err
		}
		s.dirty = false
	}
	b.policy.Removed(s)
	delete(b.resident, s.ref)
	b.used -= int64(len(s.data))
	b.stats.Evictions++
	return nil
}

// MarkDirty flags a segment as modified. A transient segment (no-cache
// mode) is saved immediately through the pool call-back, since nothing
// would otherwise write it back.
func (b *Buffer) MarkDirty(s *Segment) error {
	if _, ok := b.resident[s.ref]; !ok {
		return b.save(s)
	}
	s.dirty = true
	return nil
}

// Resident reports whether the segment is in the buffer.
func (b *Buffer) Resident(ref segRef) bool {
	_, ok := b.resident[ref]
	return ok
}

// Pin adds one reservation to the segment if (and only if) it is
// already resident — the paper's optimization: "we quickly scan the
// tree and 'reserve' any objects required by the query that are already
// resident, potentially avoiding a bad replacement choice." Pins are
// counted, so reservations made by concurrent queries are independent.
// It reports whether a pin was added.
func (b *Buffer) Pin(ref segRef) bool {
	s, ok := b.resident[ref]
	if !ok {
		return false
	}
	s.pins++
	return true
}

// Unpin removes one reservation from the segment. Unpinning a segment
// that was evicted in the interim (impossible while pinned, but the
// segment may have been dropped by compaction or Clear) is a no-op.
func (b *Buffer) Unpin(ref segRef) {
	if s, ok := b.resident[ref]; ok && s.pins > 0 {
		s.pins--
	}
}

// ReleaseReservations force-clears every pin in the buffer, regardless
// of which reservation holds it. It is an administrative reset (used
// between measured runs); per-query releases go through Reservation.
func (b *Buffer) ReleaseReservations() {
	for _, s := range b.resident {
		s.pins = 0
	}
}

// residentsByRef returns the resident segments in (pool, idx) order.
// Bulk operations that save segments must walk this instead of the
// resident map: map iteration order would randomize the store-file
// write sequence, and with it the OS block-cache state every
// deterministic-replay harness depends on.
func (b *Buffer) residentsByRef() []*Segment {
	segs := make([]*Segment, 0, len(b.resident))
	for _, s := range b.resident {
		segs = append(segs, s)
	}
	sort.Slice(segs, func(i, j int) bool {
		if segs[i].ref.pool != segs[j].ref.pool {
			return segs[i].ref.pool < segs[j].ref.pool
		}
		return segs[i].ref.idx < segs[j].ref.idx
	})
	return segs
}

// FlushDirty saves every dirty resident segment via the pool call-back.
func (b *Buffer) FlushDirty() error {
	for _, s := range b.residentsByRef() {
		if s.dirty {
			if err := b.save(s); err != nil {
				return err
			}
			s.dirty = false
		}
	}
	return nil
}

// Drop removes a segment without saving — used when the pool has
// rewritten or invalidated it (compaction, deletion of a large object).
func (b *Buffer) Drop(ref segRef) {
	if s, ok := b.resident[ref]; ok {
		b.policy.Removed(s)
		delete(b.resident, ref)
		b.used -= int64(len(s.data))
	}
}

// Clear evicts everything, saving dirty segments first.
func (b *Buffer) Clear() error {
	for _, s := range b.residentsByRef() {
		if s.dirty {
			if err := b.save(s); err != nil {
				return fmt.Errorf("mneme: clear: %w", err)
			}
			s.dirty = false
		}
		b.policy.Removed(s)
		delete(b.resident, s.ref)
		b.used -= int64(len(s.data))
	}
	return nil
}

// Used returns the bytes currently resident.
func (b *Buffer) Used() int64 { return b.used }
