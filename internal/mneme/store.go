package mneme

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"

	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/vfs"
)

const (
	storeMagic    = uint64(0x4D4E454D45313031) // "MNEME101"
	headerBytes   = 64
	formatVersion = 3
)

// pool is the internal interface every pool kind implements. It mirrors
// the paper's description: the pool owns object creation, layout,
// location, and the modified-segment-save call-back invoked by its
// buffer.
type pool interface {
	config() PoolConfig
	setIndex(i uint8)
	attach(b *Buffer)
	buffer() *Buffer

	allocate(data []byte) (ObjectID, error)
	view(id ObjectID, fn func([]byte) error) error
	modify(id ObjectID, data []byte) error
	remove(id ObjectID) error

	// segOf maps an object to its physical segment; ok=false when the
	// object does not exist.
	segOf(id ObjectID) (segRef, bool)
	index() uint8
	objectLen(id ObjectID) (int, bool)
	logicalSegments() []uint32
	forEach(fn func(id ObjectID, size int) bool)
	stats() PoolStats

	// saveSegment is the modified-segment-save call-back: it writes the
	// segment shadow-style to fresh file space and repoints the pool's
	// location table at it.
	saveSegment(s *Segment) error

	marshalAux(w *auxWriter)
	unmarshalAux(r *auxReader) error
	// compact rewrites the pool's segments densely, dropping dead space.
	compact() error

	// persistedSegments calls fn for every physical segment that has a
	// committed on-disk image, with its pool-internal index, file
	// offset, byte size, and the checksum recorded at its last save.
	persistedSegments(fn func(seg int32, off int64, size int, crc uint32))
}

// Store is one Mneme file: a set of pools sharing an identifier space
// and a physical file. All operations are safe for concurrent use — the
// concurrency control the paper lists as future work. Structural
// mutations (Allocate, Modify, Delete, Flush, GC, ...) serialize behind
// a store-wide write lock; the read path (Get, View, Reserve, stats)
// takes the lock shared and serializes per pool, so concurrent queries
// touching different pools proceed in parallel. Reservations are
// refcounted pins held by per-caller Reservation tokens, so one query's
// release never drops a segment another query still has reserved.
//
// Lock order: st.mu (shared or exclusive) -> per-pool mutex ->
// st.allocMu -> the vfs file lock. The per-pool mutex guards the pool's
// location tables and its buffer (including eviction's shadow-save of
// dirty segments, which allocates file space under allocMu).
type Store struct {
	mu     sync.RWMutex
	fs     *vfs.FS
	file   *vfs.File
	name   string
	closed bool

	pools   []pool
	poolIdx map[string]uint8
	buffers []*Buffer
	// poolMus serialize read-path access per pool (parallel to pools).
	// Writers holding st.mu exclusively need no pool mutex: shared
	// holders are excluded entirely.
	poolMus []*sync.Mutex

	// allocMu guards the file-space allocator (tail), which the read
	// path exercises when evicting a dirty segment shadow-style.
	allocMu sync.Mutex

	nextLogSeg uint32           // logical segment allocator; starts at 1
	segPool    map[uint32]uint8 // logical segment -> owning pool
	tail       int64            // next free file offset (block aligned)

	// lastAuxCRC carries the checksum of the most recently written aux
	// region from Flush to writeHeader.
	lastAuxCRC uint32

	// locators hold per-pool reference locators for GC; indexes match
	// pools. nil entries mean the pool's objects hold no references.
	locators []RefLocator

	// breakers are the per-pool circuit breakers installed by
	// SetResilience, keyed by pool name; nil when resilience is off.
	breakers map[string]*resilience.Breaker
}

// Create makes a new store file with the configured pools.
func Create(fs *vfs.FS, name string, cfg Config) (*Store, error) {
	if len(cfg.Pools) == 0 {
		return nil, fmt.Errorf("mneme: create %q: no pools configured", name)
	}
	f, err := fs.Create(name)
	if err != nil {
		return nil, err
	}
	st := &Store{
		fs:         fs,
		file:       f,
		name:       name,
		poolIdx:    make(map[string]uint8),
		nextLogSeg: 1,
		segPool:    make(map[uint32]uint8),
		tail:       int64(headerBytes),
	}
	st.alignTail()
	for _, pc := range cfg.Pools {
		if err := st.addPool(pc); err != nil {
			return nil, err
		}
	}
	// Commit the empty image so the new store is immediately consistent
	// on disk (and an early Rollback has a state to restore).
	if err := st.flushLocked(); err != nil {
		return nil, err
	}
	return st, nil
}

func (st *Store) addPool(pc PoolConfig) error {
	if _, dup := st.poolIdx[pc.Name]; dup {
		return fmt.Errorf("mneme: duplicate pool %q", pc.Name)
	}
	if len(st.pools) >= 255 {
		return fmt.Errorf("mneme: too many pools")
	}
	var p pool
	switch pc.Kind {
	case PoolSmall:
		if pc.SlotBytes < 5 {
			return fmt.Errorf("mneme: pool %q: SlotBytes %d too small", pc.Name, pc.SlotBytes)
		}
		if pc.SegmentBytes < pc.SlotBytes*SegmentObjects {
			return fmt.Errorf("mneme: pool %q: segment %d cannot hold %d slots of %d bytes",
				pc.Name, pc.SegmentBytes, SegmentObjects, pc.SlotBytes)
		}
		p = newSmallPool(st, pc)
	case PoolMedium:
		if pc.SegmentBytes < 64 {
			return fmt.Errorf("mneme: pool %q: SegmentBytes %d too small", pc.Name, pc.SegmentBytes)
		}
		p = newMediumPool(st, pc)
	case PoolLarge:
		p = newLargePool(st, pc)
	default:
		return fmt.Errorf("mneme: pool %q: unknown kind %d", pc.Name, pc.Kind)
	}
	idx := uint8(len(st.pools))
	p.setIndex(idx)
	policy, err := policyByName(pc.Policy)
	if err != nil {
		return fmt.Errorf("mneme: pool %q: %w", pc.Name, err)
	}
	b := NewBuffer(pc.BufferBytes, policy, p.saveSegment)
	p.attach(b)
	st.pools = append(st.pools, p)
	st.buffers = append(st.buffers, b)
	st.poolMus = append(st.poolMus, &sync.Mutex{})
	st.poolIdx[pc.Name] = idx
	return nil
}

// Open loads an existing store. The auxiliary tables — the "compact
// multi-level hash tables" that locate logical segments — are read once
// here and stay permanently cached, as the paper observes of Mneme's
// lookup mechanism.
func Open(fs *vfs.FS, name string) (*Store, error) {
	f, err := fs.Open(name)
	if err != nil {
		return nil, err
	}
	st := &Store{fs: fs, file: f, name: name}
	if err := st.loadCommitted(); err != nil {
		return nil, err
	}
	return st, nil
}

// loadCommitted (re)builds the store's in-memory state — pools, their
// buffers, and the logical-segment directory — from the last committed
// header and auxiliary tables.
func (st *Store) loadCommitted() error {
	st.pools = nil
	st.buffers = nil
	st.poolMus = nil
	st.poolIdx = make(map[string]uint8)
	st.segPool = make(map[uint32]uint8)
	st.locators = nil

	var hdr [headerBytes]byte
	if err := vfs.ReadFull(st.file, hdr[:], 0); err != nil {
		return fmt.Errorf("%w: header: %v", ErrCorrupt, err)
	}
	if binary.LittleEndian.Uint64(hdr[0:]) != storeMagic {
		return fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != formatVersion {
		return fmt.Errorf("%w: unsupported version %d", ErrCorrupt, v)
	}
	st.tail = int64(binary.LittleEndian.Uint64(hdr[16:]))
	auxOff := int64(binary.LittleEndian.Uint64(hdr[24:]))
	auxLen := int64(binary.LittleEndian.Uint64(hdr[32:]))
	st.nextLogSeg = binary.LittleEndian.Uint32(hdr[40:])
	poolCount := int(binary.LittleEndian.Uint32(hdr[44:]))
	wantCRC := binary.LittleEndian.Uint32(hdr[48:])
	if got := crc32.ChecksumIEEE(hdr[:52]); got != binary.LittleEndian.Uint32(hdr[52:]) {
		return fmt.Errorf("%w: header checksum mismatch", ErrCorrupt)
	}

	aux := make([]byte, auxLen)
	if auxLen > 0 {
		if err := vfs.ReadFull(st.file, aux, auxOff); err != nil {
			return fmt.Errorf("%w: aux tables: %v", ErrCorrupt, err)
		}
	}
	if crc32.ChecksumIEEE(aux) != wantCRC {
		return fmt.Errorf("%w: aux table checksum mismatch", ErrCorrupt)
	}
	st.lastAuxCRC = wantCRC
	r := &auxReader{buf: aux}
	for i := 0; i < poolCount; i++ {
		pc := PoolConfig{
			Name:         r.str(),
			Kind:         PoolKind(r.u8()),
			SegmentBytes: int(r.u32()),
			SlotBytes:    int(r.u32()),
			BufferBytes:  int64(r.u64()),
			Policy:       r.str(),
		}
		if r.err != nil {
			return fmt.Errorf("%w: pool directory: %v", ErrCorrupt, r.err)
		}
		if err := st.addPool(pc); err != nil {
			return err
		}
		if err := st.pools[i].unmarshalAux(r); err != nil {
			return err
		}
	}
	if r.err != nil {
		return fmt.Errorf("%w: aux tables: %v", ErrCorrupt, r.err)
	}
	// Rebuild the logical-segment directory from the pools.
	for i, p := range st.pools {
		for _, ls := range p.logicalSegments() {
			st.segPool[ls] = uint8(i)
		}
	}
	return nil
}

// writeHeader persists the header; writing it is the commit point. The
// header is self-checksummed: bytes [0,52) are covered by a CRC32 at
// [52,56), so a torn or rotted header is detected on open. The header
// never spans a disk-block boundary (headerBytes << block size, offset
// 0), so under the fault model's tear-at-block-boundary semantics the
// commit-point write is atomic.
func (st *Store) writeHeader(auxOff, auxLen int64) error {
	var hdr [headerBytes]byte
	binary.LittleEndian.PutUint64(hdr[0:], storeMagic)
	binary.LittleEndian.PutUint32(hdr[8:], formatVersion)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(st.tail))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(auxOff))
	binary.LittleEndian.PutUint64(hdr[32:], uint64(auxLen))
	binary.LittleEndian.PutUint32(hdr[40:], st.nextLogSeg)
	binary.LittleEndian.PutUint32(hdr[44:], uint32(len(st.pools)))
	binary.LittleEndian.PutUint32(hdr[48:], st.lastAuxCRC)
	binary.LittleEndian.PutUint32(hdr[52:], crc32.ChecksumIEEE(hdr[:52]))
	if _, err := st.file.WriteAt(hdr[:], 0); err != nil {
		return err
	}
	return st.file.Sync()
}

// Flush saves all dirty segments (shadow-style), writes the auxiliary
// tables to fresh file space, and commits by rewriting the header. A
// crash before the header write leaves the previous consistent image.
// Commit is a synonym.
func (st *Store) Flush() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.flushLocked()
}

func (st *Store) flushLocked() error {
	if st.closed {
		return ErrStoreClosed
	}
	for _, b := range st.buffers {
		if err := b.FlushDirty(); err != nil {
			return err
		}
	}
	w := &auxWriter{}
	for _, p := range st.pools {
		pc := p.config()
		w.str(pc.Name)
		w.u8(uint8(pc.Kind))
		w.u32(uint32(pc.SegmentBytes))
		w.u32(uint32(pc.SlotBytes))
		w.u64(uint64(pc.BufferBytes))
		w.str(pc.Policy)
		p.marshalAux(w)
	}
	auxOff := st.allocExtent(len(w.buf))
	if len(w.buf) > 0 {
		if _, err := st.file.WriteAt(w.buf, auxOff); err != nil {
			return err
		}
	}
	st.lastAuxCRC = crc32.ChecksumIEEE(w.buf)
	return st.writeHeader(auxOff, int64(len(w.buf)))
}

// Close flushes and invalidates the store.
func (st *Store) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return ErrStoreClosed
	}
	if err := st.flushLocked(); err != nil {
		return err
	}
	st.closed = true
	return st.file.Close()
}

// alignTail rounds the allocation tail up to the disk block size, so
// physical segments start on transfer-block boundaries — the "careful
// file allocation sympathetic to the device transfer block size" the
// paper credits for much of the improvement.
func (st *Store) alignTail() {
	bs := int64(st.fs.BlockSize())
	if rem := st.tail % bs; rem != 0 {
		st.tail += bs - rem
	}
}

// allocExtent reserves size bytes of file space starting on a block
// boundary and returns the starting offset. It is safe under a shared
// store lock: the read path allocates when eviction shadow-saves a
// dirty segment.
func (st *Store) allocExtent(size int) int64 {
	st.allocMu.Lock()
	defer st.allocMu.Unlock()
	st.alignTail()
	off := st.tail
	st.tail += int64(size)
	return off
}

// allocLogSeg assigns the next logical segment number to a pool.
func (st *Store) allocLogSeg(poolIdx uint8) (uint32, error) {
	if st.nextLogSeg >= 1<<(IDBits-8) {
		return 0, fmt.Errorf("mneme: logical segment space exhausted")
	}
	ls := st.nextLogSeg
	st.nextLogSeg++
	st.segPool[ls] = poolIdx
	return ls, nil
}

// poolFor dispatches an object identifier to its owning pool.
func (st *Store) poolFor(id ObjectID) (pool, error) {
	if st.closed {
		return nil, ErrStoreClosed
	}
	if !id.Valid() {
		return nil, fmt.Errorf("%w: %#x", ErrBadID, uint32(id))
	}
	pi, ok := st.segPool[id.LogicalSegment()]
	if !ok {
		return nil, fmt.Errorf("%w: %#x", ErrNoObject, uint32(id))
	}
	return st.pools[pi], nil
}

// Allocate creates an object holding data in the named pool and returns
// its identifier.
func (st *Store) Allocate(poolName string, data []byte) (ObjectID, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return NilID, ErrStoreClosed
	}
	pi, ok := st.poolIdx[poolName]
	if !ok {
		return NilID, fmt.Errorf("%w: %q", ErrNoPool, poolName)
	}
	return st.pools[pi].allocate(data)
}

// Get returns a copy of the object's bytes.
func (st *Store) Get(id ObjectID) ([]byte, error) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var out []byte
	err := st.viewLocked(id, func(b []byte) error {
		out = append([]byte(nil), b...)
		return nil
	})
	return out, err
}

// View calls fn with the object's bytes without copying them out of the
// buffered segment. fn must not retain or mutate the slice, and must
// not call back into the store (the store lock is held). Concurrent
// Views are safe; Views of objects in different pools proceed in
// parallel.
func (st *Store) View(id ObjectID, fn func([]byte) error) error {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.viewLocked(id, fn)
}

// viewLocked requires st.mu held (shared or exclusive) and serializes
// on the owning pool's mutex, which guards the pool's tables and buffer
// against concurrent shared-lock holders.
func (st *Store) viewLocked(id ObjectID, fn func([]byte) error) error {
	p, err := st.poolFor(id)
	if err != nil {
		return err
	}
	mu := st.poolMus[p.index()]
	mu.Lock()
	defer mu.Unlock()
	return p.view(id, fn)
}

// Modify replaces the object's contents. The identifier is stable even
// when the object must be relocated within its pool. If the new size is
// not storable by the owning pool, ErrWrongPool or ErrTooLarge is
// returned and the caller must delete and re-allocate in another pool.
func (st *Store) Modify(id ObjectID, data []byte) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	p, err := st.poolFor(id)
	if err != nil {
		return err
	}
	return p.modify(id, data)
}

// Delete removes the object. Its slot may be reused by later
// allocations in the same pool.
func (st *Store) Delete(id ObjectID) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.deleteLocked(id)
}

func (st *Store) deleteLocked(id ObjectID) error {
	p, err := st.poolFor(id)
	if err != nil {
		return err
	}
	return p.remove(id)
}

// ObjectLen returns the object's size in bytes.
func (st *Store) ObjectLen(id ObjectID) (int, error) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	p, err := st.poolFor(id)
	if err != nil {
		return 0, err
	}
	mu := st.poolMus[p.index()]
	mu.Lock()
	defer mu.Unlock()
	n, ok := p.objectLen(id)
	if !ok {
		return 0, fmt.Errorf("%w: %#x", ErrNoObject, uint32(id))
	}
	return n, nil
}

// IsResident reports whether the object's physical segment is buffered —
// the residency hash-table check the paper describes.
func (st *Store) IsResident(id ObjectID) bool {
	st.mu.RLock()
	defer st.mu.RUnlock()
	p, err := st.poolFor(id)
	if err != nil {
		return false
	}
	mu := st.poolMus[p.index()]
	mu.Lock()
	defer mu.Unlock()
	ref, ok := p.segOf(id)
	if !ok {
		return false
	}
	return p.buffer().Resident(ref)
}

// Reservation is a per-caller set of segment pins made by Reserve.
// Releasing it drops exactly the pins it added; concurrent reservations
// by other queries on the same segments are unaffected (pins are
// refcounts).
type Reservation struct {
	st   *Store
	refs []segRef
}

// Count returns the number of segment pins the reservation holds.
func (r *Reservation) Count() int {
	if r == nil {
		return 0
	}
	return len(r.refs)
}

// Release drops the reservation's pins. It is idempotent. Pins whose
// segments have since been dropped (compaction, buffer Clear) are
// ignored.
func (r *Reservation) Release() {
	if r == nil || len(r.refs) == 0 {
		return
	}
	st := r.st
	st.mu.RLock()
	defer st.mu.RUnlock()
	for _, ref := range r.refs {
		if int(ref.pool) >= len(st.buffers) {
			continue
		}
		mu := st.poolMus[ref.pool]
		mu.Lock()
		st.buffers[ref.pool].Unpin(ref)
		mu.Unlock()
	}
	r.refs = nil
}

// Reserve pins the physical segments of every listed object that is
// already resident, so that evaluating a query cannot evict evidence it
// is about to use. Objects that are absent, not resident, or invalid
// are skipped. The returned reservation is never nil; release it when
// the query completes.
func (st *Store) Reserve(ids []ObjectID) *Reservation {
	st.mu.RLock()
	defer st.mu.RUnlock()
	r := &Reservation{st: st}
	for _, id := range ids {
		p, err := st.poolFor(id)
		if err != nil {
			continue
		}
		mu := st.poolMus[p.index()]
		mu.Lock()
		if ref, ok := p.segOf(id); ok && p.buffer().Pin(ref) {
			r.refs = append(r.refs, ref)
		}
		mu.Unlock()
	}
	return r
}

// ReleaseReservations force-clears every pin in every buffer, no matter
// which Reservation holds it — an administrative reset used between
// measured runs. Outstanding Reservation tokens become harmless no-ops.
func (st *Store) ReleaseReservations() {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, b := range st.buffers {
		b.ReleaseReservations()
	}
}

// SetRecorder attaches (or, with nil, detaches) a trace recorder to
// every pool buffer, so record-buffer hits, misses, and segment
// fault-ins appear as per-pool events in a query trace. Recorders are
// for single-stream diagnostic tracing: attach one only while no other
// goroutine is using the store.
func (st *Store) SetRecorder(r obs.Recorder) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for name, pi := range st.poolIdx {
		st.buffers[pi].SetRecorder(name, r)
	}
}

// SetBufferCapacity adjusts the byte capacity of the named pool's
// buffer. Zero disables caching for that pool.
func (st *Store) SetBufferCapacity(poolName string, capacity int64) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	pi, ok := st.poolIdx[poolName]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoPool, poolName)
	}
	return st.buffers[pi].SetCapacity(capacity)
}

// DropBuffers empties every buffer (saving dirty segments first),
// used between measured runs alongside vfs.Chill.
func (st *Store) DropBuffers() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, b := range st.buffers {
		if err := b.Clear(); err != nil {
			return err
		}
	}
	return nil
}

// BufferStats returns per-pool buffer counters keyed by pool name.
func (st *Store) BufferStats() map[string]BufferStats {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make(map[string]BufferStats, len(st.pools))
	for name, pi := range st.poolIdx {
		mu := st.poolMus[pi]
		mu.Lock()
		out[name] = st.buffers[pi].Stats()
		mu.Unlock()
	}
	return out
}

// ResetBufferStats zeroes every buffer's counters.
func (st *Store) ResetBufferStats() {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, b := range st.buffers {
		b.ResetStats()
	}
}

// PoolStats returns per-pool content statistics in pool order.
func (st *Store) PoolStats() []PoolStats {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]PoolStats, len(st.pools))
	for i, p := range st.pools {
		mu := st.poolMus[i]
		mu.Lock()
		out[i] = p.stats()
		mu.Unlock()
	}
	return out
}

// PoolNames returns the pool names in pool order.
func (st *Store) PoolNames() []string {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]string, len(st.pools))
	for i, p := range st.pools {
		out[i] = p.config().Name
	}
	return out
}

// PoolOf returns the name of the pool owning id.
func (st *Store) PoolOf(id ObjectID) (string, error) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	p, err := st.poolFor(id)
	if err != nil {
		return "", err
	}
	return p.config().Name, nil
}

// ForEach calls fn for every live object in every pool (pool order,
// then allocation order), stopping early if fn returns false. The
// object set is snapshotted first, so fn may safely call back into the
// store (Get, View, Delete, ...); objects deleted concurrently after
// the snapshot may still be reported.
func (st *Store) ForEach(fn func(id ObjectID, size int) bool) {
	type entry struct {
		id   ObjectID
		size int
	}
	var snapshot []entry
	st.mu.Lock()
	st.forEachLocked(func(id ObjectID, size int) bool {
		snapshot = append(snapshot, entry{id, size})
		return true
	})
	st.mu.Unlock()
	for _, e := range snapshot {
		if !fn(e.id, e.size) {
			return
		}
	}
}

func (st *Store) forEachLocked(fn func(id ObjectID, size int) bool) {
	for _, p := range st.pools {
		stop := false
		p.forEach(func(id ObjectID, size int) bool {
			if !fn(id, size) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

// SizeBytes reports the store file's allocated size.
func (st *Store) SizeBytes() int64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	st.allocMu.Lock()
	defer st.allocMu.Unlock()
	return st.tail
}

// readSegment loads size bytes at off from the store file.
func (st *Store) readSegment(dst []byte, off int64) error {
	return vfs.ReadFull(st.file, dst, off)
}

// readSegmentChecked loads a segment image and verifies it against the
// checksum recorded at its last save. A mismatch — bit rot or a torn
// write — surfaces as a *CorruptSegmentError chaining to
// ErrCorruptSegment. This runs on every buffer fault-in, so corruption
// is caught before any object bytes are handed to a caller.
func (st *Store) readSegmentChecked(dst []byte, off int64, want uint32, poolName string, seg int32) error {
	if err := vfs.ReadFull(st.file, dst, off); err != nil {
		return err
	}
	if got := crc32.ChecksumIEEE(dst); got != want {
		return &CorruptSegmentError{Store: st.name, Pool: poolName, Seg: seg, Off: off, Want: want, Got: got}
	}
	return nil
}

// writeSegment writes a segment image at off and returns its CRC32 for
// the pool's location table.
func (st *Store) writeSegment(data []byte, off int64) (uint32, error) {
	if _, err := st.file.WriteAt(data, off); err != nil {
		return 0, err
	}
	return crc32.ChecksumIEEE(data), nil
}

// policyByName constructs a buffer replacement policy from its
// configured name. An empty name selects LRU, the paper's choice.
func policyByName(name string) (ReplacementPolicy, error) {
	switch name {
	case "", "lru":
		return NewLRU(), nil
	case "fifo":
		return NewFIFO(), nil
	case "clock":
		return NewClock(), nil
	}
	return nil, fmt.Errorf("unknown buffer policy %q", name)
}
