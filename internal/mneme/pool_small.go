package mneme

import (
	"encoding/binary"
	"fmt"
)

// smallPool stores fixed-size slots: SlotBytes per object, the first 4
// bytes holding the object's actual size. One logical segment (255
// objects) fills exactly one physical segment: "By allocating a 16 byte
// object (4 bytes for a size field) for every inverted list less than or
// equal to 12 bytes, we can conveniently fit a whole logical segment
// (255 objects) in one 4 Kbyte physical segment. This greatly simplifies
// both the indexing strategy used to locate these objects in the file
// and the buffer management strategy for these segments" (paper §3.3).
type smallPool struct {
	st  *Store
	cfg PoolConfig
	idx uint8
	buf *Buffer

	segs     []smallSeg
	logToIdx map[uint32]int32
	// freeSegs lists segments with at least one free slot, newest last.
	freeSegs []int32
	objects  int64
	live     int64 // live data bytes
}

// smallSeg is one (logical segment, physical segment) pair.
type smallSeg struct {
	logSeg uint32
	off    int64  // file offset; 0 = never persisted
	crc    uint32 // CRC32 of the image at off
	used   [4]uint64
	count  int16
}

func (sg *smallSeg) isUsed(slot uint8) bool {
	return sg.used[slot/64]&(1<<(slot%64)) != 0
}

func (sg *smallSeg) setUsed(slot uint8, on bool) {
	if on {
		sg.used[slot/64] |= 1 << (slot % 64)
	} else {
		sg.used[slot/64] &^= 1 << (slot % 64)
	}
}

// freeSlot returns the lowest free slot, or -1 when full.
func (sg *smallSeg) freeSlot() int {
	for s := 0; s < SegmentObjects; s++ {
		if !sg.isUsed(uint8(s)) {
			return s
		}
	}
	return -1
}

func newSmallPool(st *Store, cfg PoolConfig) *smallPool {
	return &smallPool{st: st, cfg: cfg, logToIdx: make(map[uint32]int32)}
}

func (p *smallPool) config() PoolConfig { return p.cfg }
func (p *smallPool) setIndex(i uint8)   { p.idx = i }
func (p *smallPool) index() uint8       { return p.idx }
func (p *smallPool) attach(b *Buffer)   { p.buf = b }
func (p *smallPool) buffer() *Buffer    { return p.buf }

// MaxObject returns the largest object the pool can hold.
func (p *smallPool) maxObject() int { return p.cfg.SlotBytes - 4 }

func (p *smallPool) allocate(data []byte) (ObjectID, error) {
	if len(data) > p.maxObject() {
		return NilID, fmt.Errorf("%w: %d > %d in small pool %q",
			ErrTooLarge, len(data), p.maxObject(), p.cfg.Name)
	}
	si, err := p.segWithSpace()
	if err != nil {
		return NilID, err
	}
	sg := &p.segs[si]
	slot := sg.freeSlot()
	seg, err := p.acquire(si, false)
	if err != nil {
		return NilID, err
	}
	p.writeSlot(seg.data, slot, data)
	sg.setUsed(uint8(slot), true)
	sg.count++
	p.objects++
	p.live += int64(len(data))
	if sg.count >= SegmentObjects {
		p.dropFreeSeg(si)
	}
	if err := p.buf.MarkDirty(seg); err != nil {
		return NilID, err
	}
	return makeID(sg.logSeg, uint8(slot)), nil
}

// segWithSpace returns the index of a segment with a free slot,
// creating a new logical+physical segment pair when none exists.
func (p *smallPool) segWithSpace() (int32, error) {
	for len(p.freeSegs) > 0 {
		si := p.freeSegs[len(p.freeSegs)-1]
		if p.segs[si].count < SegmentObjects {
			return si, nil
		}
		p.freeSegs = p.freeSegs[:len(p.freeSegs)-1]
	}
	ls, err := p.st.allocLogSeg(p.idx)
	if err != nil {
		return 0, err
	}
	si := int32(len(p.segs))
	p.segs = append(p.segs, smallSeg{logSeg: ls})
	p.logToIdx[ls] = si
	p.freeSegs = append(p.freeSegs, si)
	return si, nil
}

func (p *smallPool) dropFreeSeg(si int32) {
	for i, v := range p.freeSegs {
		if v == si {
			p.freeSegs = append(p.freeSegs[:i], p.freeSegs[i+1:]...)
			return
		}
	}
}

func (p *smallPool) writeSlot(segData []byte, slot int, data []byte) {
	off := slot * p.cfg.SlotBytes
	binary.LittleEndian.PutUint32(segData[off:], uint32(len(data)))
	n := copy(segData[off+4:off+p.cfg.SlotBytes], data)
	// Zero any residue from a previous occupant of the slot.
	for i := off + 4 + n; i < off+p.cfg.SlotBytes; i++ {
		segData[i] = 0
	}
}

// acquire loads the pool segment through the buffer. Segments that were
// never persisted load as zeroes without touching the file.
func (p *smallPool) acquire(si int32, countRef bool) (*Segment, error) {
	sg := &p.segs[si]
	ref := segRef{pool: p.idx, idx: si}
	return p.buf.Acquire(ref, p.cfg.SegmentBytes, countRef, func(dst []byte) error {
		if sg.off == 0 {
			return nil // fresh segment: all zeroes
		}
		return p.st.readSegmentChecked(dst, sg.off, sg.crc, p.cfg.Name, si)
	})
}

// locate resolves an id to its segment index and slot.
func (p *smallPool) locate(id ObjectID) (int32, uint8, bool) {
	si, ok := p.logToIdx[id.LogicalSegment()]
	if !ok {
		return 0, 0, false
	}
	slot := id.Slot()
	if !p.segs[si].isUsed(slot) {
		return 0, 0, false
	}
	return si, slot, true
}

func (p *smallPool) view(id ObjectID, fn func([]byte) error) error {
	si, slot, ok := p.locate(id)
	if !ok {
		return fmt.Errorf("%w: %#x", ErrNoObject, uint32(id))
	}
	seg, err := p.acquire(si, true)
	if err != nil {
		return err
	}
	off := int(slot) * p.cfg.SlotBytes
	size := int(binary.LittleEndian.Uint32(seg.data[off:]))
	if size > p.maxObject() {
		return fmt.Errorf("%w: small object %#x size field %d", ErrCorrupt, uint32(id), size)
	}
	return fn(seg.data[off+4 : off+4+size])
}

func (p *smallPool) modify(id ObjectID, data []byte) error {
	if len(data) > p.maxObject() {
		return fmt.Errorf("%w: %d > %d", ErrWrongPool, len(data), p.maxObject())
	}
	si, slot, ok := p.locate(id)
	if !ok {
		return fmt.Errorf("%w: %#x", ErrNoObject, uint32(id))
	}
	seg, err := p.acquire(si, true)
	if err != nil {
		return err
	}
	off := int(slot) * p.cfg.SlotBytes
	old := int(binary.LittleEndian.Uint32(seg.data[off:]))
	p.writeSlot(seg.data, int(slot), data)
	p.live += int64(len(data) - old)
	return p.buf.MarkDirty(seg)
}

func (p *smallPool) remove(id ObjectID) error {
	si, slot, ok := p.locate(id)
	if !ok {
		return fmt.Errorf("%w: %#x", ErrNoObject, uint32(id))
	}
	sg := &p.segs[si]
	// The allocation bitmap lives in the aux tables, so clearing the
	// bit is sufficient; the slot bytes are overwritten on reuse.
	seg, err := p.acquire(si, false)
	if err != nil {
		return err
	}
	off := int(slot) * p.cfg.SlotBytes
	old := int(binary.LittleEndian.Uint32(seg.data[off:]))
	wasFull := sg.count >= SegmentObjects
	sg.setUsed(slot, false)
	sg.count--
	p.objects--
	p.live -= int64(old)
	if wasFull {
		p.freeSegs = append(p.freeSegs, si)
	}
	return nil
}

func (p *smallPool) segOf(id ObjectID) (segRef, bool) {
	si, _, ok := p.locate(id)
	if !ok {
		return segRef{}, false
	}
	return segRef{pool: p.idx, idx: si}, true
}

func (p *smallPool) objectLen(id ObjectID) (int, bool) {
	si, slot, ok := p.locate(id)
	if !ok {
		return 0, false
	}
	size := -1
	seg, err := p.acquire(si, false)
	if err != nil {
		return 0, false
	}
	size = int(binary.LittleEndian.Uint32(seg.data[int(slot)*p.cfg.SlotBytes:]))
	return size, true
}

func (p *smallPool) logicalSegments() []uint32 {
	out := make([]uint32, len(p.segs))
	for i := range p.segs {
		out[i] = p.segs[i].logSeg
	}
	return out
}

func (p *smallPool) forEach(fn func(ObjectID, int) bool) {
	for i := range p.segs {
		sg := &p.segs[i]
		if sg.count == 0 {
			continue
		}
		seg, err := p.acquire(int32(i), false)
		if err != nil {
			return
		}
		for s := 0; s < SegmentObjects; s++ {
			if !sg.isUsed(uint8(s)) {
				continue
			}
			size := int(binary.LittleEndian.Uint32(seg.data[s*p.cfg.SlotBytes:]))
			if !fn(makeID(sg.logSeg, uint8(s)), size) {
				return
			}
		}
	}
}

func (p *smallPool) stats() PoolStats {
	return PoolStats{
		Name:         p.cfg.Name,
		Kind:         PoolSmall,
		Objects:      p.objects,
		LogicalSegs:  int64(len(p.segs)),
		PhysicalSegs: int64(len(p.segs)),
		LiveBytes:    p.live,
		SegmentBytes: int64(len(p.segs)) * int64(p.cfg.SegmentBytes),
	}
}

// saveSegment is the modified-segment-save call-back: shadow-write the
// segment image to fresh space and repoint the location table.
func (p *smallPool) saveSegment(s *Segment) error {
	sg := &p.segs[s.ref.idx]
	off := p.st.allocExtent(len(s.data))
	crc, err := p.st.writeSegment(s.data, off)
	if err != nil {
		return err
	}
	sg.off = off
	sg.crc = crc
	return nil
}

func (p *smallPool) marshalAux(w *auxWriter) {
	w.u32(uint32(len(p.segs)))
	for i := range p.segs {
		sg := &p.segs[i]
		w.u32(sg.logSeg)
		w.i64(sg.off)
		w.u32(sg.crc)
		for _, word := range sg.used {
			w.u64(word)
		}
		w.u32(uint32(sg.count))
	}
	w.u64(uint64(p.objects))
	w.u64(uint64(p.live))
}

func (p *smallPool) unmarshalAux(r *auxReader) error {
	n := int(r.u32())
	if r.err != nil {
		return r.err
	}
	p.segs = make([]smallSeg, 0, n)
	p.logToIdx = make(map[uint32]int32, n)
	p.freeSegs = nil
	for i := 0; i < n; i++ {
		var sg smallSeg
		sg.logSeg = r.u32()
		sg.off = r.i64()
		sg.crc = r.u32()
		for j := range sg.used {
			sg.used[j] = r.u64()
		}
		sg.count = int16(r.u32())
		if r.err != nil {
			return r.err
		}
		p.logToIdx[sg.logSeg] = int32(len(p.segs))
		if sg.count < SegmentObjects {
			p.freeSegs = append(p.freeSegs, int32(len(p.segs)))
		}
		p.segs = append(p.segs, sg)
	}
	p.objects = int64(r.u64())
	p.live = int64(r.u64())
	return r.err
}

// compact rewrites nothing for the small pool: slots are fixed size and
// reused in place, so there is no dead space to squeeze out.
func (p *smallPool) compact() error { return nil }

func (p *smallPool) persistedSegments(fn func(seg int32, off int64, size int, crc uint32)) {
	for i := range p.segs {
		if sg := &p.segs[i]; sg.off != 0 {
			fn(int32(i), sg.off, p.cfg.SegmentBytes, sg.crc)
		}
	}
}
