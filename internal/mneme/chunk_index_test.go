package mneme

import (
	"bytes"
	"testing"
)

func TestChunkIndexRoundTrip(t *testing.T) {
	fs := newStoreFS()
	st := mustCreate(t, fs, "store", chunkConfig())
	for _, size := range []int{0, 1, 100, 1024, 1025, 10000, 100000} {
		data := payload(size, size)
		head, err := WriteChunkedIndexed(st, "chunks", data, 1024)
		if err != nil {
			t.Fatalf("WriteChunkedIndexed(%d): %v", size, err)
		}
		got, err := ReadChunkedIndexed(st, head)
		if err != nil {
			t.Fatalf("ReadChunkedIndexed(%d): %v", size, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("indexed round trip failed for %d bytes", size)
		}
		cr, err := OpenChunkRange(st, head)
		if err != nil {
			t.Fatal(err)
		}
		if cr.Size() != size {
			t.Fatalf("Size = %d, want %d", cr.Size(), size)
		}
		wantChunks := (size + 1023) / 1024
		if cr.Chunks() != wantChunks {
			t.Fatalf("Chunks = %d, want %d", cr.Chunks(), wantChunks)
		}
	}
	if _, err := WriteChunkedIndexed(st, "chunks", []byte("x"), 0); err == nil {
		t.Fatal("zero chunk size accepted")
	}
}

func TestChunkRangeReads(t *testing.T) {
	fs := newStoreFS()
	st := mustCreate(t, fs, "store", chunkConfig())
	data := payload(3, 10_000)
	head, err := WriteChunkedIndexed(st, "chunks", data, 1024)
	if err != nil {
		t.Fatal(err)
	}
	cr, err := OpenChunkRange(st, head)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ off, n int }{
		{0, 0}, {0, 1}, {0, 1024}, {1023, 2}, {1024, 1024},
		{5000, 3000}, {9999, 1}, {0, 10_000}, {2048, 0},
	}
	for _, c := range cases {
		got, err := cr.ReadRange(c.off, c.n)
		if err != nil {
			t.Fatalf("ReadRange(%d,%d): %v", c.off, c.n, err)
		}
		if !bytes.Equal(got, data[c.off:c.off+c.n]) {
			t.Fatalf("ReadRange(%d,%d) wrong bytes", c.off, c.n)
		}
	}
	for _, c := range []struct{ off, n int }{{-1, 5}, {0, 10_001}, {10_000, 1}, {5, -1}} {
		if _, err := cr.ReadRange(c.off, c.n); err == nil {
			t.Fatalf("ReadRange(%d,%d) accepted", c.off, c.n)
		}
	}
}

// TestChunkRangeSkipsChunks is the layer-level form of the tentpole
// claim: reading a sparse subset of ranges faults in only the chunks
// those ranges overlap.
func TestChunkRangeSkipsChunks(t *testing.T) {
	fs := newStoreFS()
	st := mustCreate(t, fs, "store", chunkConfig())
	data := payload(4, 64*1024)
	head, err := WriteChunkedIndexed(st, "chunks", data, 1024)
	if err != nil {
		t.Fatal(err)
	}
	cr, err := OpenChunkRange(st, head)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Faulted() != 0 {
		t.Fatalf("opened with %d faulted chunks", cr.Faulted())
	}
	// Touch the first chunk, one in the middle, and a straddling pair.
	if _, err := cr.ReadRange(0, 100); err != nil {
		t.Fatal(err)
	}
	if _, err := cr.ReadRange(30*1024, 100); err != nil {
		t.Fatal(err)
	}
	if _, err := cr.ReadRange(50*1024-50, 100); err != nil {
		t.Fatal(err)
	}
	if got, want := cr.Faulted(), 4; got != want {
		t.Fatalf("Faulted = %d, want %d", got, want)
	}
	if cr.Chunks() != 64 {
		t.Fatalf("Chunks = %d, want 64", cr.Chunks())
	}
	// Re-reading a faulted chunk must not double count.
	if _, err := cr.ReadRange(0, 10); err != nil {
		t.Fatal(err)
	}
	if cr.Faulted() != 4 {
		t.Fatalf("Faulted after re-read = %d, want 4", cr.Faulted())
	}
}

// TestChunkIndexDeleteCompatible: DeleteChunked walks the next-pointer
// chain that indexed objects preserve, removing head and every chunk.
func TestChunkIndexDeleteCompatible(t *testing.T) {
	fs := newStoreFS()
	st := mustCreate(t, fs, "store", chunkConfig())
	data := payload(5, 20_000)
	head, err := WriteChunkedIndexed(st, "chunks", data, 1024)
	if err != nil {
		t.Fatal(err)
	}
	cr, err := OpenChunkRange(st, head)
	if err != nil {
		t.Fatal(err)
	}
	ids := append([]ObjectID{head}, cr.ids...)
	if err := DeleteChunked(st, head); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if err := st.View(id, func([]byte) error { return nil }); err == nil {
			t.Fatalf("object %#x survived DeleteChunked", uint32(id))
		}
	}
}
