package mneme

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Chunked objects implement the paper's suggested use of Mneme's richer
// data model: "Inter-object references allow structures such as linked
// lists to be used to break large objects into more manageable pieces.
// This could provide better support for inverted list updates and allow
// incremental retrieval of large aggregate objects" (paper §6).
//
// A chunk is an ordinary object whose first 4 bytes hold the ObjectID of
// the next chunk (NilID terminates the list) followed by payload bytes.

const chunkHeader = 4

// ChunkRefLocator is the RefLocator for pools that store chunks: the
// only reference is the next-chunk identifier in the header.
func ChunkRefLocator(data []byte) []ObjectID {
	if len(data) < chunkHeader {
		return nil
	}
	next := ObjectID(binary.LittleEndian.Uint32(data))
	if next == NilID {
		return nil
	}
	return []ObjectID{next}
}

// WriteChunked stores data as a linked list of chunks in the named pool,
// each chunk carrying at most chunkSize payload bytes, and returns the
// head chunk's identifier. Chunks are allocated tail-first so each can
// embed its successor's identifier.
func WriteChunked(st *Store, poolName string, data []byte, chunkSize int) (ObjectID, error) {
	if chunkSize <= 0 {
		return NilID, fmt.Errorf("mneme: chunk size %d", chunkSize)
	}
	n := (len(data) + chunkSize - 1) / chunkSize
	if n == 0 {
		n = 1 // an empty object still gets one (empty) chunk
	}
	next := NilID
	for i := n - 1; i >= 0; i-- {
		lo := i * chunkSize
		hi := lo + chunkSize
		if hi > len(data) {
			hi = len(data)
		}
		chunk := make([]byte, chunkHeader+hi-lo)
		binary.LittleEndian.PutUint32(chunk, uint32(next))
		copy(chunk[chunkHeader:], data[lo:hi])
		id, err := st.Allocate(poolName, chunk)
		if err != nil {
			return NilID, err
		}
		next = id
	}
	return next, nil
}

// ReadChunked reassembles a chunked object.
func ReadChunked(st *Store, head ObjectID) ([]byte, error) {
	var out []byte
	err := ScanChunked(st, head, func(payload []byte) bool {
		out = append(out, payload...)
		return true
	})
	return out, err
}

// ScanChunked walks the chunk list, calling fn with each payload in
// order — incremental retrieval of a large aggregate object. fn
// returning false stops the walk early. fn must not retain the slice.
func ScanChunked(st *Store, head ObjectID, fn func(payload []byte) bool) error {
	seen := make(map[ObjectID]bool)
	for id := head; id != NilID; {
		if seen[id] {
			return fmt.Errorf("%w: chunk cycle at %#x", ErrCorrupt, uint32(id))
		}
		seen[id] = true
		var next ObjectID
		stop := false
		err := st.View(id, func(data []byte) error {
			if len(data) < chunkHeader {
				return fmt.Errorf("%w: chunk %#x shorter than header", ErrCorrupt, uint32(id))
			}
			next = ObjectID(binary.LittleEndian.Uint32(data))
			if !fn(data[chunkHeader:]) {
				stop = true
			}
			return nil
		})
		if err != nil {
			return err
		}
		if stop {
			return nil
		}
		id = next
	}
	return nil
}

// AppendChunked extends a chunked object with extra bytes by writing new
// chunks and linking them from the current tail — the incremental
// inverted-list update the paper motivates, which never rewrites the
// existing chunks. It returns the head (unchanged).
func AppendChunked(st *Store, poolName string, head ObjectID, extra []byte, chunkSize int) (ObjectID, error) {
	if len(extra) == 0 {
		return head, nil
	}
	newHead, err := WriteChunked(st, poolName, extra, chunkSize)
	if err != nil {
		return NilID, err
	}
	// Find the tail chunk of the existing list.
	tail := NilID
	for id := head; id != NilID; {
		var next ObjectID
		err := st.View(id, func(data []byte) error {
			if len(data) < chunkHeader {
				return fmt.Errorf("%w: chunk %#x shorter than header", ErrCorrupt, uint32(id))
			}
			next = ObjectID(binary.LittleEndian.Uint32(data))
			return nil
		})
		if err != nil {
			return NilID, err
		}
		tail = id
		id = next
	}
	if tail == NilID {
		return newHead, nil
	}
	// Relink the tail to the new chunks.
	var relinked []byte
	err = st.View(tail, func(data []byte) error {
		relinked = append([]byte(nil), data...)
		return nil
	})
	if err != nil {
		return NilID, err
	}
	binary.LittleEndian.PutUint32(relinked, uint32(newHead))
	if err := st.Modify(tail, relinked); err != nil {
		return NilID, err
	}
	return head, nil
}

// DeleteChunked removes every chunk of a chunked object.
func DeleteChunked(st *Store, head ObjectID) error {
	for id := head; id != NilID; {
		var next ObjectID
		err := st.View(id, func(data []byte) error {
			if len(data) < chunkHeader {
				return fmt.Errorf("%w: chunk %#x shorter than header", ErrCorrupt, uint32(id))
			}
			next = ObjectID(binary.LittleEndian.Uint32(data))
			return nil
		})
		if err != nil {
			return err
		}
		if err := st.Delete(id); err != nil {
			return err
		}
		id = next
	}
	return nil
}

// ChunkedReader returns an io.Reader over a chunked object's payload,
// fetching chunks lazily as the reader advances — at most one chunk's
// segment needs to be resident at a time.
func ChunkedReader(st *Store, head ObjectID) io.Reader {
	return &chunkReader{st: st, next: head, seen: make(map[ObjectID]bool)}
}

type chunkReader struct {
	st   *Store
	next ObjectID
	buf  []byte
	seen map[ObjectID]bool
	err  error
}

func (cr *chunkReader) Read(p []byte) (int, error) {
	for len(cr.buf) == 0 {
		if cr.err != nil {
			return 0, cr.err
		}
		if cr.next == NilID {
			return 0, io.EOF
		}
		id := cr.next
		if cr.seen[id] {
			cr.err = fmt.Errorf("%w: chunk cycle at %#x", ErrCorrupt, uint32(id))
			return 0, cr.err
		}
		cr.seen[id] = true
		err := cr.st.View(id, func(data []byte) error {
			if len(data) < chunkHeader {
				return fmt.Errorf("%w: chunk %#x shorter than header", ErrCorrupt, uint32(id))
			}
			cr.next = ObjectID(binary.LittleEndian.Uint32(data))
			cr.buf = append(cr.buf[:0], data[chunkHeader:]...)
			return nil
		})
		if err != nil {
			cr.err = err
			return 0, err
		}
	}
	n := copy(p, cr.buf)
	cr.buf = cr.buf[n:]
	return n, nil
}

// ChunkedLen returns the total payload size of a chunked object.
func ChunkedLen(st *Store, head ObjectID) (int, error) {
	total := 0
	err := ScanChunked(st, head, func(p []byte) bool {
		total += len(p)
		return true
	})
	return total, err
}
