package mneme

import "fmt"

// CopyTo writes a compacted copy of the store into a new file: every
// live object is re-allocated in the corresponding pool of the new
// store, preserving object identifiers, and all abandoned file space
// (shadow-superseded segments, replaced large extents, stale auxiliary
// regions) is left behind. This is the "full store copy" that reclaims
// what in-place compaction cannot — the role a mature data manager's
// offline reorganization utility plays.
//
// Identifier preservation works by replaying allocation: pools are
// walked in global logical-segment order and every slot of every
// segment is allocated in sequence — live objects with their data, dead
// or never-used slots as empty placeholders that are deleted afterwards
// (leaving them reusable, exactly like freed slots).
func (st *Store) CopyTo(name string) (*Store, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return nil, ErrStoreClosed
	}
	cfg := Config{}
	for _, p := range st.pools {
		cfg.Pools = append(cfg.Pools, p.config())
	}
	dst, err := Create(st.fs, name, cfg)
	if err != nil {
		return nil, err
	}

	// Logical segments must be re-created in their original global
	// order, since the segment-number allocator is store-wide.
	var placeholders []ObjectID
	for seg := uint32(1); seg < st.nextLogSeg; seg++ {
		pi, ok := st.segPool[seg]
		if !ok {
			return nil, fmt.Errorf("mneme: copy: segment %d unassigned", seg)
		}
		src := st.pools[pi]
		poolName := src.config().Name
		for slot := 0; slot < SegmentObjects; slot++ {
			id := makeID(seg, uint8(slot))
			var data []byte
			live := false
			if _, exists := src.segOf(id); exists {
				if err := src.view(id, func(b []byte) error {
					data = append([]byte(nil), b...)
					return nil
				}); err != nil {
					return nil, err
				}
				live = true
			}
			nid, err := dst.Allocate(poolName, data)
			if err != nil {
				return nil, err
			}
			if nid != id {
				return nil, fmt.Errorf("mneme: copy: id drift: %#x became %#x", uint32(id), uint32(nid))
			}
			if !live {
				placeholders = append(placeholders, nid)
			}
		}
	}
	for _, id := range placeholders {
		if err := dst.Delete(id); err != nil {
			return nil, err
		}
	}
	if err := dst.Flush(); err != nil {
		return nil, err
	}
	return dst, nil
}
