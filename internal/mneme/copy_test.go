package mneme

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestCopyToPreservesIDsAndData(t *testing.T) {
	fs := newStoreFS()
	st := mustCreate(t, fs, "src", paperConfig(1<<14, 1<<17, 1<<19))
	rng := rand.New(rand.NewSource(31))
	ref := make(map[ObjectID][]byte)
	var ids []ObjectID
	for i := 0; i < 900; i++ {
		var pool string
		var size int
		switch rng.Intn(3) {
		case 0:
			pool, size = "small", rng.Intn(13)
		case 1:
			pool, size = "medium", rng.Intn(4000)+13
		default:
			pool, size = "large", rng.Intn(20000)+4097
		}
		data := payload(i, size)
		id, err := st.Allocate(pool, data)
		if err != nil {
			t.Fatal(err)
		}
		ref[id] = data
		ids = append(ids, id)
	}
	// Churn: modify and delete to create abandoned space.
	for i := 0; i < 300; i++ {
		id := ids[rng.Intn(len(ids))]
		if ref[id] == nil {
			continue
		}
		if rng.Intn(2) == 0 {
			st.Delete(id)
			ref[id] = nil
		} else {
			size := len(ref[id])
			if size == 0 {
				size = 1
			}
			data := payload(i+5000, size)
			if err := st.Modify(id, data); err != nil {
				t.Fatal(err)
			}
			ref[id] = data
		}
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}

	dst, err := st.CopyTo("dst")
	if err != nil {
		t.Fatal(err)
	}
	// Every live object readable under its original id.
	for id, want := range ref {
		got, err := dst.Get(id)
		if want == nil {
			if err == nil {
				t.Fatalf("deleted object %#x alive in copy", uint32(id))
			}
			continue
		}
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("copy Get(%#x): %v", uint32(id), err)
		}
	}
	// The copy is no larger than the churned source.
	if dst.SizeBytes() > st.SizeBytes() {
		t.Fatalf("copy (%d) larger than churned source (%d)", dst.SizeBytes(), st.SizeBytes())
	}
	// The copy keeps working after reopen and accepts new allocations.
	if err := dst.Close(); err != nil {
		t.Fatal(err)
	}
	dst2, err := Open(fs, "dst")
	if err != nil {
		t.Fatal(err)
	}
	nid, err := dst2.Allocate("medium", payload(9999, 500))
	if err != nil {
		t.Fatal(err)
	}
	if live := ref[nid]; live != nil {
		t.Fatalf("new allocation %#x collided with a live copied object", uint32(nid))
	}
	if got, err := dst2.Get(nid); err != nil || !bytes.Equal(got, payload(9999, 500)) {
		t.Fatalf("alloc in copy: %v", err)
	}
}

func TestCopyToReclaimsSpace(t *testing.T) {
	fs := newStoreFS()
	st := mustCreate(t, fs, "src", Config{Pools: []PoolConfig{
		{Name: "large", Kind: PoolLarge, BufferBytes: 1 << 20},
	}})
	id, _ := st.Allocate("large", payload(1, 50_000))
	// Repeated modification abandons extents.
	for i := 0; i < 20; i++ {
		if err := st.Modify(id, payload(i, 50_000)); err != nil {
			t.Fatal(err)
		}
		st.Flush()
	}
	churned := st.SizeBytes()
	dst, err := st.CopyTo("dst")
	if err != nil {
		t.Fatal(err)
	}
	if dst.SizeBytes() >= churned/3 {
		t.Fatalf("copy reclaimed too little: %d of %d", dst.SizeBytes(), churned)
	}
	got, err := dst.Get(id)
	if err != nil || !bytes.Equal(got, payload(19, 50_000)) {
		t.Fatalf("copied object wrong: %v", err)
	}
}

func TestCopyToPreservesChunkReferences(t *testing.T) {
	fs := newStoreFS()
	st := mustCreate(t, fs, "src", chunkConfig())
	data := payload(3, 20_000)
	head, err := WriteChunked(st, "chunks", data, 1000)
	if err != nil {
		t.Fatal(err)
	}
	st.Flush()
	dst, err := st.CopyTo("dst")
	if err != nil {
		t.Fatal(err)
	}
	// Inter-object references survive because ids are preserved.
	got, err := ReadChunked(dst, head)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("chunk list broken in copy: %v", err)
	}
}

func TestCopyToClosedStore(t *testing.T) {
	fs := newStoreFS()
	st := mustCreate(t, fs, "src", chunkConfig())
	st.Close()
	if _, err := st.CopyTo("dst"); err == nil {
		t.Fatal("CopyTo on closed store succeeded")
	}
}
