// Package mneme is a Go reimplementation of the Mneme persistent object
// store (Moss, "Design of the Mneme persistent object store", ACM TOIS
// 8(2), 1990) as used by the paper to manage INQUERY's inverted file
// index.
//
// The store's model, following the paper's §3.2:
//
//   - An *object* is a chunk of contiguous bytes with a unique
//     identifier. Mneme has no notion of type or class; the only
//     structure it is aware of is that objects may contain identifiers
//     of other objects (inter-object references).
//   - Objects are grouped into *files*. Identifiers are unique within a
//     file; a Registry maps them to globally unique identifiers when
//     files are accessed together (the global space is bounded at 2^28).
//   - Objects are physically grouped into *physical segments*, the unit
//     of transfer between disk and main memory, of arbitrary size.
//   - Objects are logically grouped into *logical segments* of 255
//     objects "to assist in identification, indexing, and location".
//     An identifier encodes (logical segment, slot).
//   - Objects are logically grouped into *pools*. A pool defines the
//     management policies for its objects: how large the physical
//     segments are, how objects are laid out within them, how objects
//     are located in the file, and how objects are created. Physical
//     segments are not shared between pools. Pools also locate the
//     identifiers stored inside their objects (needed for garbage
//     collection) and supply call-back routines such as modified-segment
//     save.
//   - *Buffers* provide extensible buffer management: a pool attaches to
//     a buffer, and the standard buffer operations the pool invokes are
//     mapped to the policy supplied by that buffer (LRU here, with the
//     paper's "reserve already-resident objects" optimization).
//
// Modified segments are saved shadow-style to freshly allocated file
// space, with the header rewrite acting as the commit point, giving the
// single-file recovery the paper lists as future work.
package mneme

import (
	"errors"
	"fmt"
)

// IDBits is the width of an object identifier within a file. The paper:
// "the number of objects that may be accessed simultaneously is bounded
// by the number of globally unique identifiers (currently 2^28)".
const IDBits = 28

// SegmentObjects is the number of objects in one logical segment:
// "logical segments ... contain 255 objects logically grouped together
// to assist in identification, indexing, and location".
const SegmentObjects = 255

// ObjectID identifies an object within one store file. The low 8 bits
// select a slot (0..254) and the remaining bits the logical segment.
// Logical segment numbers start at 1, so 0 is never a valid ObjectID.
type ObjectID uint32

// NilID is the zero, invalid object identifier.
const NilID ObjectID = 0

// makeID builds an identifier from a logical segment number and slot.
func makeID(logSeg uint32, slot uint8) ObjectID {
	return ObjectID(logSeg<<8 | uint32(slot))
}

// LogicalSegment returns the identifier's logical segment number.
func (id ObjectID) LogicalSegment() uint32 { return uint32(id) >> 8 }

// Slot returns the identifier's slot within its logical segment.
func (id ObjectID) Slot() uint8 { return uint8(id) }

// Valid reports whether the identifier could name an object: nonzero
// logical segment, slot below SegmentObjects, and within the 28-bit
// identifier space.
func (id ObjectID) Valid() bool {
	return id.LogicalSegment() != 0 && id.Slot() < SegmentObjects && uint32(id)>>IDBits == 0
}

// PoolKind selects one of the built-in pool implementations.
type PoolKind uint8

const (
	// PoolSmall stores fixed-size slots: SlotBytes per object including
	// a 4-byte size field, one logical segment (255 objects) per
	// physical segment. The paper's small object pool uses 16-byte
	// slots in 4 Kbyte physical segments.
	PoolSmall PoolKind = iota + 1
	// PoolMedium packs variable-size objects into fixed-size physical
	// segments (8 Kbyte in the paper). Objects larger than a segment
	// get a dedicated, exactly-sized segment, so a store configured
	// with only a medium pool is the paper's "single pool" ablation.
	PoolMedium
	// PoolLarge stores each object in its own physical segment sized to
	// the object: "these lists are allocated in their own physical
	// segment".
	PoolLarge
)

// String names the pool kind.
func (k PoolKind) String() string {
	switch k {
	case PoolSmall:
		return "small"
	case PoolMedium:
		return "medium"
	case PoolLarge:
		return "large"
	}
	return "invalid"
}

// PoolConfig declares one pool of a store.
type PoolConfig struct {
	// Name identifies the pool; it must be unique within the store.
	Name string
	// Kind selects the layout strategy.
	Kind PoolKind
	// SegmentBytes is the physical segment size. For PoolSmall it must
	// hold SegmentObjects slots; for PoolLarge it is ignored (segments
	// are sized to their object).
	SegmentBytes int
	// SlotBytes is the fixed slot size for PoolSmall (including the
	// 4-byte size field); ignored otherwise.
	SlotBytes int
	// BufferBytes is the capacity of the buffer the pool attaches to.
	// Zero or negative means no caching: every access transfers the
	// segment and discards it afterwards.
	BufferBytes int64
	// Policy names the buffer replacement policy: "lru" (default),
	// "fifo", or "clock". The paper's integration uses LRU with the
	// reservation optimization for all three pools.
	Policy string
}

// Config declares a store's pools.
type Config struct {
	Pools []PoolConfig
}

// Errors returned by store operations.
var (
	ErrCorrupt     = errors.New("mneme: corrupt store")
	ErrBadID       = errors.New("mneme: invalid object identifier")
	ErrNoObject    = errors.New("mneme: no such object")
	ErrNoPool      = errors.New("mneme: no such pool")
	ErrTooLarge    = errors.New("mneme: object too large for pool")
	ErrWrongPool   = errors.New("mneme: object size no longer fits its pool")
	ErrStoreClosed = errors.New("mneme: store is closed")

	// ErrCorruptSegment reports a physical segment whose bytes do not
	// match the checksum recorded at its last save. It chains to
	// ErrCorrupt, so existing errors.Is(err, ErrCorrupt) checks also
	// match.
	ErrCorruptSegment = fmt.Errorf("%w: segment checksum mismatch", ErrCorrupt)
)

// CorruptSegmentError carries the details of a checksum failure detected
// when a physical segment is faulted into its buffer (or walked by
// Fsck). It unwraps to ErrCorruptSegment and therefore to ErrCorrupt.
type CorruptSegmentError struct {
	Store string // store file name
	Pool  string // owning pool name
	Seg   int32  // pool-internal physical segment index
	Off   int64  // file offset of the segment image
	Want  uint32 // checksum recorded in the location table
	Got   uint32 // checksum of the bytes actually read
}

func (e *CorruptSegmentError) Error() string {
	return fmt.Sprintf("mneme: store %q pool %q segment %d at offset %d: checksum %08x, want %08x",
		e.Store, e.Pool, e.Seg, e.Off, e.Got, e.Want)
}

func (e *CorruptSegmentError) Unwrap() error { return ErrCorruptSegment }

// PoolStats summarizes a pool's contents.
type PoolStats struct {
	Name         string
	Kind         PoolKind
	Objects      int64 // live objects
	LogicalSegs  int64
	PhysicalSegs int64
	LiveBytes    int64 // bytes of live object data
	SegmentBytes int64 // bytes of allocated physical segments
}

// BufferStats counts object accesses through a pool's buffer. Refs and
// Hits correspond directly to the paper's Table 6 columns.
type BufferStats struct {
	Refs      int64 `json:"refs"`      // object accesses routed to the buffer
	Hits      int64 `json:"hits"`      // accesses whose physical segment was resident
	Loads     int64 `json:"loads"`     // segments transferred from the file
	Evictions int64 `json:"evictions"` // segments discarded to make room
	Retries   int64 `json:"retries"`   // transient fault-in failures recovered by retry
}

// HitRate returns Hits/Refs, or 0 when there were no references.
func (b BufferStats) HitRate() float64 {
	if b.Refs == 0 {
		return 0
	}
	return float64(b.Hits) / float64(b.Refs)
}
