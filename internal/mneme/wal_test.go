package mneme

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/vfs"
)

func walPayloads(t *testing.T, fs *vfs.FS, name string) [][]byte {
	t.Helper()
	var got [][]byte
	w, err := OpenWAL(fs, name, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("open wal: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestWALRoundTrip(t *testing.T) {
	fs := vfs.New(vfs.Options{})
	w, err := CreateWAL(fs, "t.wal")
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 100; i++ {
		p := []byte(fmt.Sprintf("entry-%03d-%s", i, string(bytes.Repeat([]byte{byte(i)}, i%40))))
		want = append(want, p)
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if w.Entries() != 100 {
		t.Fatalf("entries = %d, want 100", w.Entries())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got := walPayloads(t, fs, "t.wal")
	if len(got) != len(want) {
		t.Fatalf("replayed %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("entry %d mismatch: %q != %q", i, got[i], want[i])
		}
	}
}

// TestWALTornTailTruncated chops the log mid-frame at every byte
// boundary of the last entry and proves replay recovers exactly the
// preceding entries, then truncates so appends resume cleanly.
func TestWALTornTailTruncated(t *testing.T) {
	base := vfs.New(vfs.Options{})
	w, err := CreateWAL(base, "t.wal")
	if err != nil {
		t.Fatal(err)
	}
	entry := func(i int) []byte { return []byte(fmt.Sprintf("payload-%04d", i)) }
	for i := 0; i < 5; i++ {
		if err := w.Append(entry(i)); err != nil {
			t.Fatal(err)
		}
	}
	whole := w.Size()
	prevEnd := whole - walFrameHead - int64(len(entry(4)))

	for cut := prevEnd; cut < whole; cut++ {
		fs := base.Clone(vfs.Options{})
		f, err := fs.Open("t.wal")
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Truncate(cut); err != nil {
			t.Fatal(err)
		}
		got := walPayloads(t, fs, "t.wal")
		if len(got) != 4 {
			t.Fatalf("cut at %d: replayed %d entries, want 4", cut, len(got))
		}
		// The torn tail is gone: a fresh append lands and replays.
		w2, err := OpenWAL(fs, "t.wal", nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := w2.Append([]byte("after-tear")); err != nil {
			t.Fatal(err)
		}
		got = walPayloads(t, fs, "t.wal")
		if len(got) != 5 || string(got[4]) != "after-tear" {
			t.Fatalf("cut at %d: post-tear append not replayed: %d entries", cut, len(got))
		}
	}
}

// TestWALBitRotStopsReplay flips one byte inside an entry's payload and
// proves replay stops at the damaged frame instead of surfacing it.
func TestWALBitRotStopsReplay(t *testing.T) {
	fs := vfs.New(vfs.Options{})
	w, err := CreateWAL(fs, "t.wal")
	if err != nil {
		t.Fatal(err)
	}
	var offs []int64
	for i := 0; i < 6; i++ {
		offs = append(offs, w.Size())
		if err := w.Append([]byte(fmt.Sprintf("payload-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Rot the third entry's payload.
	if err := fs.FlipByte("t.wal", offs[2]+walFrameHead+3, 0x10); err != nil {
		t.Fatal(err)
	}
	got := walPayloads(t, fs, "t.wal")
	if len(got) != 2 {
		t.Fatalf("replayed %d entries past bit rot, want 2", len(got))
	}
}

func TestWALRewindDiscardsFailedBatch(t *testing.T) {
	fs := vfs.New(vfs.Options{})
	w, err := CreateWAL(fs, "t.wal")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("acked")); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	m := w.Mark()
	if err := w.Append([]byte("doomed-1")); err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("doomed-2")); err != nil {
		t.Fatal(err)
	}
	if err := w.Rewind(m); err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("acked-2")); err != nil {
		t.Fatal(err)
	}
	got := walPayloads(t, fs, "t.wal")
	if len(got) != 2 || string(got[0]) != "acked" || string(got[1]) != "acked-2" {
		t.Fatalf("rewind left wrong entries: %q", got)
	}
}

func TestWALOpenRejectsBadMagic(t *testing.T) {
	fs := vfs.New(vfs.Options{})
	f, err := fs.Create("junk.wal")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("NOPE-this-is-not-a-wal"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWAL(fs, "junk.wal", nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open foreign file: want ErrCorrupt, got %v", err)
	}
}

// FuzzWALRoundTrip drives the log with fuzz-chosen payloads and a
// fuzz-chosen truncation point, asserting the prefix property: replay
// after any mutilation yields an exact prefix of what was appended,
// never a corrupted or reordered entry.
func FuzzWALRoundTrip(f *testing.F) {
	f.Add([]byte("hello\x00world\x01abc"), uint16(0), false)
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 250, 251, 252}, uint16(5), true)
	f.Add(bytes.Repeat([]byte{0xAB}, 300), uint16(100), false)
	f.Add([]byte{}, uint16(0), true)
	f.Fuzz(func(t *testing.T, data []byte, cut uint16, flip bool) {
		fs := vfs.New(vfs.Options{})
		w, err := CreateWAL(fs, "f.wal")
		if err != nil {
			t.Fatal(err)
		}
		// Slice the fuzz input into payloads: a length byte then bytes.
		var want [][]byte
		for i := 0; i < len(data); {
			n := int(data[i]) % 37
			i++
			if i+n > len(data) {
				n = len(data) - i
			}
			p := data[i : i+n]
			i += n
			want = append(want, p)
			if err := w.Append(p); err != nil {
				t.Fatal(err)
			}
		}
		size := w.Size()
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		// Mutilate: truncate at a fuzz-chosen point and/or flip a byte.
		fh, err := fs.Open("f.wal")
		if err != nil {
			t.Fatal(err)
		}
		cutAt := size
		if size > 0 {
			cutAt = int64(cut) % (size + 1)
		}
		if err := fh.Truncate(cutAt); err != nil {
			t.Fatal(err)
		}
		if flip && cutAt > int64(len(walMagic)) {
			if err := fs.FlipByte("f.wal", cutAt/2, 0x40); err != nil {
				t.Fatal(err)
			}
		}
		var got [][]byte
		w2, err := OpenWAL(fs, "f.wal", func(p []byte) error {
			got = append(got, append([]byte(nil), p...))
			return nil
		})
		if err != nil {
			// A mutilated header is allowed to fail the open — but only
			// as a typed corruption error, never a panic or raw EOF.
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("open mutilated wal: %v", err)
			}
			return
		}
		if len(got) > len(want) {
			t.Fatalf("replay invented entries: %d > %d", len(got), len(want))
		}
		for i := range got {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("entry %d not a prefix match", i)
			}
		}
		// Post-recovery appends land after the intact prefix.
		if err := w2.Append([]byte("tail")); err != nil {
			t.Fatal(err)
		}
		if err := w2.Sync(); err != nil {
			t.Fatal(err)
		}
		n := 0
		w3, err := OpenWAL(fs, "f.wal", func(p []byte) error { n++; return nil })
		if err != nil {
			t.Fatalf("reopen after recovery append: %v", err)
		}
		_ = w3.Close()
		if n != len(got)+1 {
			t.Fatalf("after recovery append: %d entries, want %d", n, len(got)+1)
		}
	})
}

// TestWALTruncationAccounting: OpenWAL reports how many bytes — and,
// best effort, how many frames — the torn-tail truncation discarded,
// so the serving layer can distinguish a single unacknowledged append
// from real data loss. A clean open reports zero.
func TestWALTruncationAccounting(t *testing.T) {
	fs := vfs.New(vfs.Options{})
	w, err := CreateWAL(fs, "t.wal")
	if err != nil {
		t.Fatal(err)
	}
	var offs []int64
	for i := 0; i < 6; i++ {
		offs = append(offs, w.Size())
		if err := w.Append([]byte(fmt.Sprintf("payload-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	size := w.Size()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Clean open: nothing truncated.
	w2, err := OpenWAL(fs, "t.wal", nil)
	if err != nil {
		t.Fatal(err)
	}
	if w2.TruncatedBytes() != 0 || w2.TruncatedFrames() != 0 {
		t.Fatalf("clean open: truncated %d bytes / %d frames, want 0/0",
			w2.TruncatedBytes(), w2.TruncatedFrames())
	}
	_ = w2.Close()

	// Bit-rot in entry 3: replay stops there, and the discarded tail
	// spans the bad frame plus the two intact-looking ones after it.
	rot := fs.Clone(vfs.Options{})
	f, err := rot.Open("t.wal")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, offs[3]+walFrameHead+2); err != nil {
		t.Fatal(err)
	}
	w3, err := OpenWAL(rot, "t.wal", nil)
	if err != nil {
		t.Fatal(err)
	}
	if w3.Entries() != 3 {
		t.Fatalf("bit-rot replay: %d entries, want 3", w3.Entries())
	}
	if got, want := w3.TruncatedBytes(), size-offs[3]; got != want {
		t.Fatalf("bit-rot: truncated %d bytes, want %d", got, want)
	}
	if w3.TruncatedFrames() != 3 {
		t.Fatalf("bit-rot: truncated %d frames, want 3", w3.TruncatedFrames())
	}
	_ = w3.Close()

	// Torn tail mid-payload of the last entry: one discarded frame,
	// exactly the torn bytes.
	torn := fs.Clone(vfs.Options{})
	f, err = torn.Open("t.wal")
	if err != nil {
		t.Fatal(err)
	}
	cut := offs[5] + walFrameHead + 3
	if err := f.Truncate(cut); err != nil {
		t.Fatal(err)
	}
	w4, err := OpenWAL(torn, "t.wal", nil)
	if err != nil {
		t.Fatal(err)
	}
	if w4.Entries() != 5 {
		t.Fatalf("torn replay: %d entries, want 5", w4.Entries())
	}
	if got, want := w4.TruncatedBytes(), cut-offs[5]; got != want {
		t.Fatalf("torn: truncated %d bytes, want %d", got, want)
	}
	if w4.TruncatedFrames() != 1 {
		t.Fatalf("torn: truncated %d frames, want 1", w4.TruncatedFrames())
	}
	_ = w4.Close()
}
