package mneme

// Transaction support, the paper's future work made concrete. The store
// already commits atomically: Flush shadow-writes dirty segments and
// fresh auxiliary tables, then the single header rewrite publishes them.
// Commit and Rollback expose that mechanism as an explicit transaction
// boundary: everything between two commits is all-or-nothing.
//
// The paper predicted that adding these services "would not introduce
// excessive overhead" for IR's predominantly read-only access; here the
// read path's only added cost is the store lock.

// Commit makes all work since the previous commit durable. It is
// Flush under its transactional name.
func (st *Store) Commit() error { return st.Flush() }

// Rollback discards all uncommitted work — allocations, modifications,
// deletions, dirty buffered segments — and restores the state of the
// last Commit (or of Open/Create for a store never committed since).
// Buffer contents are dropped, and buffer capacities revert to the
// persisted pool configuration. Reference locators installed with
// SetRefLocator must be reinstalled by name, which Rollback does
// automatically for pools that still exist.
func (st *Store) Rollback() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return ErrStoreClosed
	}
	// Preserve user-installed locators across the state reload.
	saved := make(map[string]RefLocator)
	if st.locators != nil {
		for i, p := range st.pools {
			if st.locators[i] != nil {
				saved[p.config().Name] = st.locators[i]
			}
		}
	}
	// Dirty segments are intentionally NOT saved: dropping the buffers
	// and in-memory tables and reloading the committed image is the
	// whole point. Shadow segments already written by earlier evictions
	// become unreferenced file space beyond the committed tail.
	if err := st.loadCommitted(); err != nil {
		return err
	}
	for name, fn := range saved {
		if pi, ok := st.poolIdx[name]; ok {
			st.ensureLocators()
			st.locators[pi] = fn
		}
	}
	return nil
}
