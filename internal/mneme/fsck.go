package mneme

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/vfs"
)

// FsckIssue is one problem found by Fsck.
type FsckIssue struct {
	Pool string // pool name; "" for store-level issues (header, aux)
	Seg  int32  // pool-internal physical segment index; -1 for store-level
	Off  int64  // file offset of the corrupt region
	Err  error  // what was wrong; chains to ErrCorrupt
}

func (i FsckIssue) String() string {
	if i.Pool == "" {
		return fmt.Sprintf("store: %v", i.Err)
	}
	return fmt.Sprintf("pool %q seg %d @%d: %v", i.Pool, i.Seg, i.Off, i.Err)
}

// FsckReport summarizes a full checksum walk of the store.
type FsckReport struct {
	Segments int         // persisted physical segments verified
	Bytes    int64       // segment bytes read and checksummed
	Issues   []FsckIssue // empty when the store is clean
}

// Clean reports whether the walk found no issues.
func (r *FsckReport) Clean() bool { return len(r.Issues) == 0 }

// Fsck verifies the durable image end to end: the header's self-
// checksum, the auxiliary tables against the checksum in the header,
// and every persisted physical segment of every pool against the
// checksum in its location table. It reads segment images directly
// from the file — resident buffered copies are not consulted — so a
// flipped bit on disk is reported even while a clean copy is cached.
func (st *Store) Fsck() (*FsckReport, error) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if st.closed {
		return nil, ErrStoreClosed
	}
	rep := &FsckReport{}

	// Header self-check and aux-table check, as Open would perform them.
	var hdr [headerBytes]byte
	if err := vfs.ReadFull(st.file, hdr[:], 0); err != nil {
		rep.Issues = append(rep.Issues, FsckIssue{Seg: -1, Err: fmt.Errorf("%w: header: %v", ErrCorrupt, err)})
		return rep, nil
	}
	switch {
	case binary.LittleEndian.Uint64(hdr[0:]) != storeMagic:
		rep.Issues = append(rep.Issues, FsckIssue{Seg: -1, Err: fmt.Errorf("%w: bad magic", ErrCorrupt)})
	case crc32.ChecksumIEEE(hdr[:52]) != binary.LittleEndian.Uint32(hdr[52:]):
		rep.Issues = append(rep.Issues, FsckIssue{Seg: -1, Err: fmt.Errorf("%w: header checksum mismatch", ErrCorrupt)})
	default:
		auxOff := int64(binary.LittleEndian.Uint64(hdr[24:]))
		auxLen := int64(binary.LittleEndian.Uint64(hdr[32:]))
		aux := make([]byte, auxLen)
		if auxLen > 0 {
			if err := vfs.ReadFull(st.file, aux, auxOff); err != nil {
				rep.Issues = append(rep.Issues, FsckIssue{Seg: -1, Off: auxOff,
					Err: fmt.Errorf("%w: aux tables: %v", ErrCorrupt, err)})
				aux = nil
			}
		}
		if aux != nil || auxLen == 0 {
			if crc32.ChecksumIEEE(aux) != binary.LittleEndian.Uint32(hdr[48:]) {
				rep.Issues = append(rep.Issues, FsckIssue{Seg: -1, Off: auxOff,
					Err: fmt.Errorf("%w: aux table checksum mismatch", ErrCorrupt)})
			}
		}
	}

	// Walk every persisted segment of every pool, reading the image raw.
	for pi, p := range st.pools {
		name := p.config().Name
		mu := st.poolMus[pi]
		mu.Lock()
		type segInfo struct {
			seg  int32
			off  int64
			size int
			crc  uint32
		}
		var segs []segInfo
		p.persistedSegments(func(seg int32, off int64, size int, crc uint32) {
			segs = append(segs, segInfo{seg, off, size, crc})
		})
		mu.Unlock()
		for _, si := range segs {
			rep.Segments++
			rep.Bytes += int64(si.size)
			buf := make([]byte, si.size)
			if err := vfs.ReadFull(st.file, buf, si.off); err != nil {
				rep.Issues = append(rep.Issues, FsckIssue{Pool: name, Seg: si.seg, Off: si.off,
					Err: fmt.Errorf("%w: %v", ErrCorrupt, err)})
				continue
			}
			if got := crc32.ChecksumIEEE(buf); got != si.crc {
				rep.Issues = append(rep.Issues, FsckIssue{Pool: name, Seg: si.seg, Off: si.off,
					Err: &CorruptSegmentError{Store: st.name, Pool: name, Seg: si.seg, Off: si.off, Want: si.crc, Got: got}})
			}
		}
	}
	return rep, nil
}
