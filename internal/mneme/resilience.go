package mneme

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/resilience"
	"repro/internal/vfs"
)

// transientRead classifies segment fault-in errors worth retrying: an
// injected device fault or a short read may succeed on a re-read.
// Checksum corruption (ErrCorruptSegment) is deliberately excluded —
// re-reading rotted bytes yields the same rotted bytes, so corruption
// goes to the degraded path and the scrub report, never the retry loop.
func transientRead(err error) bool {
	return errors.Is(err, vfs.ErrInjected) || errors.Is(err, io.ErrUnexpectedEOF)
}

// SetResilience wraps every pool's segment fault-in with the shared
// retry budget and (when the policy's FailureThreshold is positive) a
// per-pool circuit breaker. Passing a nil retry and a zero policy
// detaches. A pool whose breaker is open fails fault-ins fast with an
// error chaining to resilience.ErrBreakerOpen; resident segments keep
// being served, which is the paper's buffer-manager spirit — serve what
// is resident, bound what is not.
func (st *Store) SetResilience(retry *resilience.Retry, bp resilience.BreakerPolicy) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.breakers = nil
	for name, pi := range st.poolIdx {
		if retry == nil && bp.FailureThreshold <= 0 {
			st.buffers[pi].SetGuard(nil)
			continue
		}
		g := &resilience.Guard{Label: fmt.Sprintf("mneme pool %q", name), Retry: retry}
		if bp.FailureThreshold > 0 {
			g.Breaker = resilience.NewBreaker(bp)
			if st.breakers == nil {
				st.breakers = make(map[string]*resilience.Breaker)
			}
			st.breakers[name] = g.Breaker
		}
		st.buffers[pi].SetGuard(g)
	}
}

// BreakerSnaps returns the per-pool circuit-breaker snapshots, keyed by
// pool name; nil when no breakers are configured.
func (st *Store) BreakerSnaps() map[string]resilience.BreakerSnap {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if len(st.breakers) == 0 {
		return nil
	}
	out := make(map[string]resilience.BreakerSnap, len(st.breakers))
	for name, b := range st.breakers {
		out[name] = b.Snap()
	}
	return out
}
