package mneme

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
)

// TestConcurrentGetReserveEvict hammers one store from many goroutines:
// readers fetch random objects (forcing buffer loads and evictions —
// the medium buffer holds only a few segments), while reservers pin and
// unpin random object sets through the refcounted reservation API. Run
// under -race this exercises the pool-buffer locking; the byte checks
// catch eviction of a pinned segment or a torn fill.
func TestConcurrentGetReserveEvict(t *testing.T) {
	fs := newStoreFS()
	// Three medium segments of buffer for ~13 segments of objects.
	st := mustCreate(t, fs, "conc.mn", paperConfig(4096, 3*8192, 1<<20))
	defer st.Close()

	const objects = 50
	ids := make([]ObjectID, objects)
	want := make([][]byte, objects)
	for i := range ids {
		want[i] = payload(i, 2000)
		id, err := st.Allocate("medium", want[i])
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}

	const (
		readers   = 4
		reservers = 3
		rounds    = 400
	)
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < rounds; i++ {
				k := rng.Intn(objects)
				got, err := st.Get(ids[k])
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, want[k]) {
					t.Errorf("object %d: bytes differ under concurrency", k)
					return
				}
			}
		}(int64(g))
	}
	for g := 0; g < reservers; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < rounds; i++ {
				set := make([]ObjectID, rng.Intn(5)+1)
				for j := range set {
					set[j] = ids[rng.Intn(objects)]
				}
				r := st.Reserve(set)
				// Reads between pin and unpin must still succeed.
				if _, err := st.Get(set[0]); err != nil {
					errs <- err
					return
				}
				r.Release()
				r.Release() // idempotent
			}
		}(int64(100 + g))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// All pins were released, so every segment is evictable again and a
	// full sweep still sees intact data.
	st.ReleaseReservations()
	for i, id := range ids {
		got, err := st.Get(id)
		if err != nil || !bytes.Equal(got, want[i]) {
			t.Fatalf("object %d corrupt after concurrent run: %v", i, err)
		}
	}
	bs := st.BufferStats()["medium"]
	if bs.Refs == 0 || bs.Loads == 0 {
		t.Fatalf("buffer never exercised: %+v", bs)
	}
}

// TestConcurrentPinBlocksEviction checks the refcount semantics under
// contention: while a reservation holds an object, concurrent readers
// cycling through the rest of the collection (evicting constantly) must
// never evict the pinned segment — every Get of the pinned object is a
// buffer hit.
func TestConcurrentPinBlocksEviction(t *testing.T) {
	fs := newStoreFS()
	// One-segment buffer: any two distinct segments contend for it.
	st := mustCreate(t, fs, "pin.mn", paperConfig(4096, 8192, 1<<20))
	defer st.Close()

	const objects = 24
	ids := make([]ObjectID, objects)
	for i := range ids {
		id, err := st.Allocate("medium", payload(i, 2000))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}

	if _, err := st.Get(ids[0]); err != nil { // make it resident
		t.Fatal(err)
	}
	r := st.Reserve(ids[:1])
	if r.Count() != 1 {
		t.Fatalf("Reserve pinned %d segments, want 1", r.Count())
	}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				st.Get(ids[1+rng.Intn(objects-1)])
			}
		}(int64(g))
	}
	wg.Wait()

	if !st.IsResident(ids[0]) {
		t.Fatal("pinned segment was evicted")
	}
	r.Release()
}
