package mneme

import (
	"encoding/binary"
	"fmt"
)

// Indexed chunked objects extend the linked-list layout with a head
// object that maps byte ranges to chunks, enabling the "incremental
// retrieval of large aggregate objects" of paper §6 to become random
// access: a reader that knows which byte ranges it wants (a
// block-format inverted list skipping whole blocks) faults in only the
// chunks those ranges overlap.
//
// Head object payload (all uint32 little-endian):
//
//	[0:4]   first data chunk id (NilID when the object is empty)
//	[4:8]   chunk count
//	[8:12]  total payload bytes
//	[12:16] payload bytes per chunk (last chunk may be short)
//	[16:]   count × chunk id
//
// Data chunks are identical to linked chunks — 4-byte next pointer,
// then payload — and remain chained. The head's first word doubles as
// a next pointer, so ChunkRefLocator, DeleteChunked, and garbage
// collection traverse indexed objects exactly like linked ones; only
// readers consult the table.

const chunkIndexHeader = 16

// WriteChunkedIndexed stores data as chained chunks plus an index
// head in the named pool and returns the head's identifier.
func WriteChunkedIndexed(st *Store, poolName string, data []byte, chunkSize int) (ObjectID, error) {
	if chunkSize <= 0 {
		return NilID, fmt.Errorf("mneme: chunk size %d", chunkSize)
	}
	n := (len(data) + chunkSize - 1) / chunkSize
	ids := make([]ObjectID, n)
	next := NilID
	for i := n - 1; i >= 0; i-- {
		lo := i * chunkSize
		hi := min(lo+chunkSize, len(data))
		chunk := make([]byte, chunkHeader+hi-lo)
		binary.LittleEndian.PutUint32(chunk, uint32(next))
		copy(chunk[chunkHeader:], data[lo:hi])
		id, err := st.Allocate(poolName, chunk)
		if err != nil {
			return NilID, err
		}
		ids[i] = id
		next = id
	}
	head := make([]byte, chunkIndexHeader+4*n)
	binary.LittleEndian.PutUint32(head[0:], uint32(next)) // first chunk or NilID
	binary.LittleEndian.PutUint32(head[4:], uint32(n))
	binary.LittleEndian.PutUint32(head[8:], uint32(len(data)))
	binary.LittleEndian.PutUint32(head[12:], uint32(chunkSize))
	for i, id := range ids {
		binary.LittleEndian.PutUint32(head[chunkIndexHeader+4*i:], uint32(id))
	}
	return st.Allocate(poolName, head)
}

// ChunkRange is random access over an indexed chunked object's
// payload. It tracks which chunks it has faulted in, so a caller can
// report how many the access pattern skipped entirely.
type ChunkRange struct {
	st        *Store
	ids       []ObjectID
	chunkSize int
	total     int
	faulted   []bool
	nfaulted  int
	buf       []byte // reused backing for ReadRange results
}

// OpenChunkRange reads an indexed object's head (one object view — no
// data chunks are touched) and returns the range reader.
func OpenChunkRange(st *Store, head ObjectID) (*ChunkRange, error) {
	cr := &ChunkRange{st: st}
	err := st.View(head, func(data []byte) error {
		if len(data) < chunkIndexHeader {
			return fmt.Errorf("%w: chunk index %#x shorter than header", ErrCorrupt, uint32(head))
		}
		count := int(binary.LittleEndian.Uint32(data[4:]))
		cr.total = int(binary.LittleEndian.Uint32(data[8:]))
		cr.chunkSize = int(binary.LittleEndian.Uint32(data[12:]))
		if len(data) != chunkIndexHeader+4*count {
			return fmt.Errorf("%w: chunk index %#x length %d for %d chunks", ErrCorrupt, uint32(head), len(data), count)
		}
		if cr.chunkSize <= 0 || count != (cr.total+cr.chunkSize-1)/cr.chunkSize {
			return fmt.Errorf("%w: chunk index %#x: %d chunks of %d for %d bytes", ErrCorrupt, uint32(head), count, cr.chunkSize, cr.total)
		}
		cr.ids = make([]ObjectID, count)
		for i := range cr.ids {
			cr.ids[i] = ObjectID(binary.LittleEndian.Uint32(data[chunkIndexHeader+4*i:]))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	cr.faulted = make([]bool, len(cr.ids))
	return cr, nil
}

// Size returns the total payload length in bytes.
func (cr *ChunkRange) Size() int { return cr.total }

// Chunks returns the number of data chunks backing the object.
func (cr *ChunkRange) Chunks() int { return len(cr.ids) }

// Faulted returns how many distinct chunks have been read so far.
func (cr *ChunkRange) Faulted() int { return cr.nfaulted }

// ReadRange returns n payload bytes at offset off, faulting in only
// the chunks the range overlaps. The returned slice is valid until the
// next ReadRange call.
func (cr *ChunkRange) ReadRange(off, n int) ([]byte, error) {
	if off < 0 || n < 0 || off+n > cr.total {
		return nil, fmt.Errorf("%w: range [%d,%d) outside %d-byte chunked object", ErrCorrupt, off, off+n, cr.total)
	}
	if n == 0 {
		return nil, nil
	}
	cr.buf = cr.buf[:0]
	for ci := off / cr.chunkSize; ci <= (off+n-1)/cr.chunkSize; ci++ {
		lo := max(off-ci*cr.chunkSize, 0)
		hi := min(off+n-ci*cr.chunkSize, cr.chunkSize)
		err := cr.st.View(cr.ids[ci], func(data []byte) error {
			if len(data) < chunkHeader+hi {
				return fmt.Errorf("%w: chunk %#x shorter than indexed payload", ErrCorrupt, uint32(cr.ids[ci]))
			}
			cr.buf = append(cr.buf, data[chunkHeader+lo:chunkHeader+hi]...)
			return nil
		})
		if err != nil {
			return nil, err
		}
		if !cr.faulted[ci] {
			cr.faulted[ci] = true
			cr.nfaulted++
		}
	}
	return cr.buf, nil
}

// ReadChunkedIndexed materializes the whole payload of an indexed
// chunked object.
func ReadChunkedIndexed(st *Store, head ObjectID) ([]byte, error) {
	cr, err := OpenChunkRange(st, head)
	if err != nil {
		return nil, err
	}
	if cr.total == 0 {
		return nil, nil
	}
	out, err := cr.ReadRange(0, cr.total)
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), out...), nil
}
