package mneme

import (
	"fmt"
	"hash/crc32"
	"time"

	"repro/internal/vfs"
)

// ScrubOptions tunes the background checksum walk.
type ScrubOptions struct {
	// BatchSegments is the number of segments verified per store-lock
	// acquisition. Smaller batches yield to foreground queries more
	// often. Zero selects 32.
	BatchSegments int
	// Pause is slept between batches with no lock held — the rate
	// limiter. Zero means no pause.
	Pause time.Duration
}

// ScrubReport summarizes a scrub pass.
type ScrubReport struct {
	Segments int // persisted physical segments verified
	Bytes    int64
	// Candidates lists corrupt-segment quarantine candidates: segments
	// whose on-disk image failed its checksum and was still current
	// (same offset and recorded checksum) when re-checked at the end of
	// the pass. Segments rewritten mid-scrub are dropped rather than
	// reported stale.
	Candidates []FsckIssue
	// PerPool counts candidates by pool name; empty when clean.
	PerPool map[string]int
}

// Clean reports whether the scrub found no quarantine candidates.
func (r *ScrubReport) Clean() bool { return len(r.Candidates) == 0 }

// Scrub walks every persisted segment the way Fsck does — raw file
// reads verified against the checksums in the pool location tables —
// but in rate-limited batches that release the store lock between
// acquisitions, so foreground queries keep flowing: the store never
// goes offline. Because segments can be shadow-relocated while the
// lock is down, each failing segment is re-validated against the
// pool's current table before being reported as a quarantine
// candidate.
func (st *Store) Scrub(opts ScrubOptions) (*ScrubReport, error) {
	batch := opts.BatchSegments
	if batch <= 0 {
		batch = 32
	}
	rep := &ScrubReport{PerPool: make(map[string]int)}

	type segInfo struct {
		seg  int32
		off  int64
		size int
		crc  uint32
	}
	// Snapshot the pool list once; pools are never removed from a live
	// store, so indexes stay valid across lock releases.
	st.mu.RLock()
	if st.closed {
		st.mu.RUnlock()
		return nil, ErrStoreClosed
	}
	npools := len(st.pools)
	st.mu.RUnlock()

	for pi := 0; pi < npools; pi++ {
		// Snapshot this pool's persisted segments.
		st.mu.RLock()
		if st.closed {
			st.mu.RUnlock()
			return nil, ErrStoreClosed
		}
		p := st.pools[pi]
		name := p.config().Name
		mu := st.poolMus[pi]
		mu.Lock()
		var segs []segInfo
		p.persistedSegments(func(seg int32, off int64, size int, crc uint32) {
			segs = append(segs, segInfo{seg, off, size, crc})
		})
		mu.Unlock()
		st.mu.RUnlock()

		var suspects []segInfo
		for start := 0; start < len(segs); start += batch {
			end := start + batch
			if end > len(segs) {
				end = len(segs)
			}
			st.mu.RLock()
			if st.closed {
				st.mu.RUnlock()
				return nil, ErrStoreClosed
			}
			for _, si := range segs[start:end] {
				rep.Segments++
				rep.Bytes += int64(si.size)
				buf := make([]byte, si.size)
				if err := vfs.ReadFull(st.file, buf, si.off); err != nil {
					suspects = append(suspects, si)
					continue
				}
				if crc32.ChecksumIEEE(buf) != si.crc {
					suspects = append(suspects, si)
				}
			}
			st.mu.RUnlock()
			if opts.Pause > 0 && end < len(segs) {
				time.Sleep(opts.Pause)
			}
		}
		if len(suspects) == 0 {
			continue
		}

		// Re-validate suspects against the pool's current table: a
		// segment rewritten since the snapshot is no longer the image we
		// checked, so it is dropped, not quarantined.
		st.mu.RLock()
		if st.closed {
			st.mu.RUnlock()
			return nil, ErrStoreClosed
		}
		current := make(map[int32]segInfo)
		mu.Lock()
		p.persistedSegments(func(seg int32, off int64, size int, crc uint32) {
			current[seg] = segInfo{seg, off, size, crc}
		})
		mu.Unlock()
		for _, si := range suspects {
			cur, ok := current[si.seg]
			if !ok || cur.off != si.off || cur.crc != si.crc {
				continue
			}
			buf := make([]byte, si.size)
			var issueErr error
			if err := vfs.ReadFull(st.file, buf, si.off); err != nil {
				issueErr = fmt.Errorf("%w: %v", ErrCorrupt, err)
			} else if got := crc32.ChecksumIEEE(buf); got != si.crc {
				issueErr = &CorruptSegmentError{Store: st.name, Pool: name, Seg: si.seg, Off: si.off, Want: si.crc, Got: got}
			} else {
				continue // transient read fault recovered; image is fine
			}
			rep.Candidates = append(rep.Candidates, FsckIssue{Pool: name, Seg: si.seg, Off: si.off, Err: issueErr})
			rep.PerPool[name]++
		}
		st.mu.RUnlock()
	}
	return rep, nil
}
