package mneme

import "fmt"

// RefLocator extracts the object identifiers referenced by an object's
// bytes. The paper: "Pools are also required to locate for Mneme any
// identifiers stored in the objects managed by the pool. This would be
// necessary, for instance, during garbage collection of the persistent
// store." Pools without a locator are assumed to hold leaf objects.
type RefLocator func(data []byte) []ObjectID

// SetRefLocator installs a locator for the named pool.
func (st *Store) SetRefLocator(poolName string, fn RefLocator) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	pi, ok := st.poolIdx[poolName]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoPool, poolName)
	}
	st.ensureLocators()
	st.locators[pi] = fn
	return nil
}

func (st *Store) ensureLocators() {
	if st.locators == nil {
		st.locators = make([]RefLocator, len(st.pools))
	}
}

// GC performs a mark-and-sweep collection over the store: objects not
// reachable from roots (directly or through inter-object references
// reported by the pools' locators) are deleted, and pools with dead
// space are compacted. It returns the number of objects freed.
func (st *Store) GC(roots []ObjectID) (int, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return 0, ErrStoreClosed
	}
	st.ensureLocators()

	marked := make(map[ObjectID]bool)
	stack := make([]ObjectID, 0, len(roots))
	for _, r := range roots {
		if r.Valid() {
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if marked[id] {
			continue
		}
		p, err := st.poolFor(id)
		if err != nil {
			continue // dangling reference: ignore, as the store has no type info
		}
		if _, exists := p.segOf(id); !exists {
			continue
		}
		marked[id] = true
		loc := st.locators[st.segPool[id.LogicalSegment()]]
		if loc == nil {
			continue
		}
		err = p.view(id, func(data []byte) error {
			for _, ref := range loc(data) {
				if ref.Valid() && !marked[ref] {
					stack = append(stack, ref)
				}
			}
			return nil
		})
		if err != nil {
			return 0, err
		}
	}

	// Sweep.
	var dead []ObjectID
	st.forEachLocked(func(id ObjectID, _ int) bool {
		if !marked[id] {
			dead = append(dead, id)
		}
		return true
	})
	for _, id := range dead {
		if err := st.deleteLocked(id); err != nil {
			return 0, err
		}
	}
	for _, p := range st.pools {
		if err := p.compact(); err != nil {
			return 0, err
		}
	}
	return len(dead), nil
}

// Compact repacks every pool's segments without collecting garbage.
func (st *Store) Compact() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return ErrStoreClosed
	}
	for _, p := range st.pools {
		if err := p.compact(); err != nil {
			return err
		}
	}
	return nil
}
