package mneme

import "fmt"

// largePool gives each object its own physical segment, sized to the
// object: "a number of inverted lists are so large, it is not reasonable
// to cluster them with other objects in the same physical segment.
// Instead, these lists are allocated in their own physical segment"
// (paper §3.3). The pool-internal physical segment index is derived from
// the object's logical position, so each object maps 1:1 to a segment.
type largePool struct {
	st  *Store
	cfg PoolConfig
	idx uint8
	buf *Buffer

	logSegs   []uint32
	entries   [][]largeEntry
	logToIdx  map[uint32]int32
	nextSlot  int
	freeSlots []ObjectID
	objects   int64
	live      int64
	allocated int64 // total bytes of extents ever allocated (incl. leaked)
}

// largeEntry locates one object's dedicated segment.
type largeEntry struct {
	off    int64  // file offset; 0 = never persisted
	crc    uint32 // CRC32 of the image at off
	length int32  // object (= segment) size; -1 = no object
}

func newLargePool(st *Store, cfg PoolConfig) *largePool {
	return &largePool{st: st, cfg: cfg, logToIdx: make(map[uint32]int32)}
}

func (p *largePool) config() PoolConfig { return p.cfg }
func (p *largePool) setIndex(i uint8)   { p.idx = i }
func (p *largePool) index() uint8       { return p.idx }
func (p *largePool) attach(b *Buffer)   { p.buf = b }
func (p *largePool) buffer() *Buffer    { return p.buf }

func (p *largePool) newSlot() (ObjectID, error) {
	if n := len(p.freeSlots); n > 0 {
		id := p.freeSlots[n-1]
		p.freeSlots = p.freeSlots[:n-1]
		return id, nil
	}
	if len(p.logSegs) == 0 || p.nextSlot >= SegmentObjects {
		ls, err := p.st.allocLogSeg(p.idx)
		if err != nil {
			return NilID, err
		}
		p.logToIdx[ls] = int32(len(p.logSegs))
		p.logSegs = append(p.logSegs, ls)
		row := make([]largeEntry, SegmentObjects)
		for i := range row {
			row[i].length = -1
		}
		p.entries = append(p.entries, row)
		p.nextSlot = 0
	}
	ls := p.logSegs[len(p.logSegs)-1]
	slot := uint8(p.nextSlot)
	p.nextSlot++
	return makeID(ls, slot), nil
}

// segIdx derives the stable pool-internal segment index for an id.
func (p *largePool) segIdx(li int32, slot uint8) int32 {
	return li*SegmentObjects + int32(slot)
}

func (p *largePool) entry(id ObjectID) (*largeEntry, int32, bool) {
	li, ok := p.logToIdx[id.LogicalSegment()]
	if !ok {
		return nil, 0, false
	}
	e := &p.entries[li][id.Slot()]
	if e.length < 0 {
		return nil, 0, false
	}
	return e, p.segIdx(li, id.Slot()), true
}

func (p *largePool) allocate(data []byte) (ObjectID, error) {
	id, err := p.newSlot()
	if err != nil {
		return NilID, err
	}
	li := p.logToIdx[id.LogicalSegment()]
	e := &p.entries[li][id.Slot()]
	*e = largeEntry{length: int32(len(data))}
	seg, err := p.acquireEntry(e, p.segIdx(li, id.Slot()), false)
	if err != nil {
		return NilID, err
	}
	copy(seg.data, data)
	if err := p.buf.MarkDirty(seg); err != nil {
		return NilID, err
	}
	p.objects++
	p.live += int64(len(data))
	return id, nil
}

func (p *largePool) acquireEntry(e *largeEntry, si int32, countRef bool) (*Segment, error) {
	ref := segRef{pool: p.idx, idx: si}
	return p.buf.Acquire(ref, int(e.length), countRef, func(dst []byte) error {
		if e.off == 0 {
			return nil
		}
		return p.st.readSegmentChecked(dst, e.off, e.crc, p.cfg.Name, si)
	})
}

func (p *largePool) view(id ObjectID, fn func([]byte) error) error {
	e, si, ok := p.entry(id)
	if !ok {
		return fmt.Errorf("%w: %#x", ErrNoObject, uint32(id))
	}
	seg, err := p.acquireEntry(e, si, true)
	if err != nil {
		return err
	}
	return fn(seg.data)
}

func (p *largePool) modify(id ObjectID, data []byte) error {
	e, si, ok := p.entry(id)
	if !ok {
		return fmt.Errorf("%w: %#x", ErrNoObject, uint32(id))
	}
	// The segment is exactly the object, so any size change replaces the
	// segment; the old extent is abandoned until compaction.
	p.buf.Drop(segRef{pool: p.idx, idx: si})
	p.live += int64(len(data)) - int64(e.length)
	*e = largeEntry{length: int32(len(data))}
	seg, err := p.acquireEntry(e, si, false)
	if err != nil {
		return err
	}
	copy(seg.data, data)
	return p.buf.MarkDirty(seg)
}

func (p *largePool) remove(id ObjectID) error {
	e, si, ok := p.entry(id)
	if !ok {
		return fmt.Errorf("%w: %#x", ErrNoObject, uint32(id))
	}
	p.buf.Drop(segRef{pool: p.idx, idx: si})
	p.objects--
	p.live -= int64(e.length)
	*e = largeEntry{length: -1}
	p.freeSlots = append(p.freeSlots, id)
	return nil
}

func (p *largePool) segOf(id ObjectID) (segRef, bool) {
	_, si, ok := p.entry(id)
	if !ok {
		return segRef{}, false
	}
	return segRef{pool: p.idx, idx: si}, true
}

func (p *largePool) objectLen(id ObjectID) (int, bool) {
	e, _, ok := p.entry(id)
	if !ok {
		return 0, false
	}
	return int(e.length), true
}

func (p *largePool) logicalSegments() []uint32 {
	return append([]uint32(nil), p.logSegs...)
}

func (p *largePool) forEach(fn func(ObjectID, int) bool) {
	for li, row := range p.entries {
		for slot := range row {
			if row[slot].length < 0 {
				continue
			}
			if !fn(makeID(p.logSegs[li], uint8(slot)), int(row[slot].length)) {
				return
			}
		}
	}
}

func (p *largePool) stats() PoolStats {
	var segBytes int64
	var segs int64
	for _, row := range p.entries {
		for i := range row {
			if row[i].length >= 0 {
				segBytes += int64(row[i].length)
				segs++
			}
		}
	}
	return PoolStats{
		Name:         p.cfg.Name,
		Kind:         PoolLarge,
		Objects:      p.objects,
		LogicalSegs:  int64(len(p.logSegs)),
		PhysicalSegs: segs,
		LiveBytes:    p.live,
		SegmentBytes: segBytes,
	}
}

func (p *largePool) saveSegment(s *Segment) error {
	li := s.ref.idx / SegmentObjects
	slot := s.ref.idx % SegmentObjects
	e := &p.entries[li][slot]
	off := p.st.allocExtent(len(s.data))
	crc, err := p.st.writeSegment(s.data, off)
	if err != nil {
		return err
	}
	e.off = off
	e.crc = crc
	p.allocated += int64(len(s.data))
	return nil
}

func (p *largePool) marshalAux(w *auxWriter) {
	w.u32(uint32(len(p.logSegs)))
	for li, ls := range p.logSegs {
		w.u32(ls)
		for s := range p.entries[li] {
			e := &p.entries[li][s]
			w.i64(e.off)
			w.u32(e.crc)
			w.i32(e.length)
		}
	}
	w.u32(uint32(len(p.freeSlots)))
	for _, id := range p.freeSlots {
		w.u32(uint32(id))
	}
	w.u32(uint32(p.nextSlot))
	w.u64(uint64(p.objects))
	w.u64(uint64(p.live))
	w.u64(uint64(p.allocated))
}

func (p *largePool) unmarshalAux(r *auxReader) error {
	nl := int(r.u32())
	if r.err != nil {
		return r.err
	}
	p.logSegs = make([]uint32, nl)
	p.entries = make([][]largeEntry, nl)
	p.logToIdx = make(map[uint32]int32, nl)
	for li := 0; li < nl; li++ {
		p.logSegs[li] = r.u32()
		p.logToIdx[p.logSegs[li]] = int32(li)
		row := make([]largeEntry, SegmentObjects)
		for s := range row {
			row[s] = largeEntry{off: r.i64(), crc: r.u32(), length: r.i32()}
		}
		p.entries[li] = row
	}
	nf := int(r.u32())
	if r.err != nil {
		return r.err
	}
	p.freeSlots = make([]ObjectID, nf)
	for i := range p.freeSlots {
		p.freeSlots[i] = ObjectID(r.u32())
	}
	p.nextSlot = int(r.u32())
	p.objects = int64(r.u64())
	p.live = int64(r.u64())
	p.allocated = int64(r.u64())
	return r.err
}

// compact is a no-op for the large pool: each live object's segment is
// already exactly its size. Abandoned extents are unreferenced file
// space, reclaimable only by a full store copy.
func (p *largePool) compact() error { return nil }

func (p *largePool) persistedSegments(fn func(seg int32, off int64, size int, crc uint32)) {
	for li, row := range p.entries {
		for slot := range row {
			e := &row[slot]
			if e.length >= 0 && e.off != 0 {
				fn(p.segIdx(int32(li), uint8(slot)), e.off, int(e.length), e.crc)
			}
		}
	}
}
