package mneme

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/vfs"
)

// paperConfig mirrors the paper's three-pool layout: 16-byte slots in
// 4 Kbyte small segments, 8 Kbyte medium segments, per-object large
// segments.
func paperConfig(bufSmall, bufMedium, bufLarge int64) Config {
	return Config{Pools: []PoolConfig{
		{Name: "small", Kind: PoolSmall, SegmentBytes: 4096, SlotBytes: 16, BufferBytes: bufSmall},
		{Name: "medium", Kind: PoolMedium, SegmentBytes: 8192, BufferBytes: bufMedium},
		{Name: "large", Kind: PoolLarge, BufferBytes: bufLarge},
	}}
}

func newStoreFS() *vfs.FS {
	return vfs.New(vfs.Options{BlockSize: 8192, OSCacheBytes: 1 << 22})
}

func mustCreate(t *testing.T, fs *vfs.FS, name string, cfg Config) *Store {
	t.Helper()
	st, err := Create(fs, name, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func payload(seed, size int) []byte {
	b := make([]byte, size)
	rng := rand.New(rand.NewSource(int64(seed)*7919 + int64(size)))
	rng.Read(b)
	return b
}

func TestObjectIDEncoding(t *testing.T) {
	id := makeID(12345, 200)
	if id.LogicalSegment() != 12345 || id.Slot() != 200 {
		t.Fatalf("id parts = %d, %d", id.LogicalSegment(), id.Slot())
	}
	if !id.Valid() {
		t.Fatal("valid id reported invalid")
	}
	if NilID.Valid() {
		t.Fatal("NilID reported valid")
	}
	if makeID(1, 255).Valid() {
		t.Fatal("slot 255 reported valid")
	}
	if ObjectID(1<<IDBits | 0x100).Valid() {
		t.Fatal("id beyond 28 bits reported valid")
	}
}

func TestCreateValidation(t *testing.T) {
	fs := newStoreFS()
	if _, err := Create(fs, "empty", Config{}); err == nil {
		t.Fatal("Create with no pools succeeded")
	}
	bad := []Config{
		{Pools: []PoolConfig{{Name: "s", Kind: PoolSmall, SegmentBytes: 4096, SlotBytes: 4}}},
		{Pools: []PoolConfig{{Name: "s", Kind: PoolSmall, SegmentBytes: 100, SlotBytes: 16}}},
		{Pools: []PoolConfig{{Name: "m", Kind: PoolMedium, SegmentBytes: 10}}},
		{Pools: []PoolConfig{{Name: "x", Kind: PoolKind(9)}}},
		{Pools: []PoolConfig{{Name: "a", Kind: PoolLarge}, {Name: "a", Kind: PoolLarge}}},
	}
	for i, cfg := range bad {
		if _, err := Create(fs, fmt.Sprintf("bad%d", i), cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestAllocateGetAllPools(t *testing.T) {
	fs := newStoreFS()
	st := mustCreate(t, fs, "store", paperConfig(1<<16, 1<<16, 1<<20))
	cases := []struct {
		pool string
		size int
	}{
		{"small", 0}, {"small", 1}, {"small", 12},
		{"medium", 13}, {"medium", 100}, {"medium", 8192}, {"medium", 20000},
		{"large", 4097}, {"large", 100000},
	}
	ids := make([]ObjectID, len(cases))
	for i, c := range cases {
		id, err := st.Allocate(c.pool, payload(i, c.size))
		if err != nil {
			t.Fatalf("Allocate %s/%d: %v", c.pool, c.size, err)
		}
		ids[i] = id
	}
	for i, c := range cases {
		got, err := st.Get(ids[i])
		if err != nil {
			t.Fatalf("Get %s/%d: %v", c.pool, c.size, err)
		}
		if !bytes.Equal(got, payload(i, c.size)) {
			t.Fatalf("Get %s/%d: data mismatch", c.pool, c.size)
		}
		if n, err := st.ObjectLen(ids[i]); err != nil || n != c.size {
			t.Fatalf("ObjectLen = %d, %v; want %d", n, err, c.size)
		}
		if name, _ := st.PoolOf(ids[i]); name != c.pool {
			t.Fatalf("PoolOf = %q, want %q", name, c.pool)
		}
	}
}

func TestSmallPoolRejectsOversize(t *testing.T) {
	fs := newStoreFS()
	st := mustCreate(t, fs, "store", paperConfig(0, 0, 0))
	if _, err := st.Allocate("small", payload(0, 13)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestBadIDErrors(t *testing.T) {
	fs := newStoreFS()
	st := mustCreate(t, fs, "store", paperConfig(0, 0, 0))
	if _, err := st.Get(NilID); !errors.Is(err, ErrBadID) {
		t.Fatalf("Get(NilID) err = %v", err)
	}
	if _, err := st.Get(makeID(999, 3)); !errors.Is(err, ErrNoObject) {
		t.Fatalf("Get(unknown seg) err = %v", err)
	}
	id, _ := st.Allocate("small", []byte("x"))
	other := makeID(id.LogicalSegment(), id.Slot()+1)
	if _, err := st.Get(other); !errors.Is(err, ErrNoObject) {
		t.Fatalf("Get(unallocated slot) err = %v", err)
	}
	if _, err := st.Allocate("nope", []byte("x")); !errors.Is(err, ErrNoPool) {
		t.Fatalf("Allocate bad pool err = %v", err)
	}
}

func TestSmallPoolSegmentPacking(t *testing.T) {
	fs := newStoreFS()
	st := mustCreate(t, fs, "store", paperConfig(1<<16, 0, 0))
	// 255 objects fill exactly one logical segment / physical segment.
	var ids []ObjectID
	for i := 0; i < 255; i++ {
		id, err := st.Allocate("small", payload(i, 12))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	first := ids[0].LogicalSegment()
	for _, id := range ids {
		if id.LogicalSegment() != first {
			t.Fatal("first 255 small objects span multiple logical segments")
		}
	}
	id256, _ := st.Allocate("small", payload(256, 5))
	if id256.LogicalSegment() == first {
		t.Fatal("256th object did not open a new logical segment")
	}
	ps := st.PoolStats()[0]
	if ps.Objects != 256 || ps.PhysicalSegs != 2 || ps.LogicalSegs != 2 {
		t.Fatalf("small pool stats = %+v", ps)
	}
	if ps.SegmentBytes != 2*4096 {
		t.Fatalf("small SegmentBytes = %d", ps.SegmentBytes)
	}
}

func TestMediumPoolPackingAndOversize(t *testing.T) {
	fs := newStoreFS()
	st := mustCreate(t, fs, "store", paperConfig(0, 1<<20, 0))
	// Three 3000-byte objects: first two share an 8K segment, third opens another.
	a, _ := st.Allocate("medium", payload(1, 3000))
	b, _ := st.Allocate("medium", payload(2, 3000))
	c, _ := st.Allocate("medium", payload(3, 3000))
	ra, _ := st.pools[1].segOf(a)
	rb, _ := st.pools[1].segOf(b)
	rc, _ := st.pools[1].segOf(c)
	if ra != rb {
		t.Fatal("first two medium objects not packed together")
	}
	if rc == ra {
		t.Fatal("third medium object did not open a new segment")
	}
	// Oversize object gets a dedicated exact-size segment.
	big, _ := st.Allocate("medium", payload(4, 30000))
	rBig, _ := st.pools[1].segOf(big)
	if rBig == ra || rBig == rc {
		t.Fatal("oversize object shared a segment")
	}
	got, err := st.Get(big)
	if err != nil || !bytes.Equal(got, payload(4, 30000)) {
		t.Fatalf("oversize Get failed: %v", err)
	}
}

func TestModifyAllPools(t *testing.T) {
	fs := newStoreFS()
	st := mustCreate(t, fs, "store", paperConfig(1<<16, 1<<20, 1<<20))
	sm, _ := st.Allocate("small", payload(1, 10))
	md, _ := st.Allocate("medium", payload(2, 500))
	lg, _ := st.Allocate("large", payload(3, 9000))

	// Small: in place, any size <= 12.
	if err := st.Modify(sm, payload(10, 4)); err != nil {
		t.Fatal(err)
	}
	if got, _ := st.Get(sm); !bytes.Equal(got, payload(10, 4)) {
		t.Fatal("small modify lost data")
	}
	if err := st.Modify(sm, payload(11, 13)); !errors.Is(err, ErrWrongPool) {
		t.Fatalf("small oversize modify err = %v", err)
	}

	// Medium: shrink in place, grow relocates, id stable.
	if err := st.Modify(md, payload(20, 100)); err != nil {
		t.Fatal(err)
	}
	if err := st.Modify(md, payload(21, 4000)); err != nil {
		t.Fatal(err)
	}
	if got, _ := st.Get(md); !bytes.Equal(got, payload(21, 4000)) {
		t.Fatal("medium grow lost data")
	}

	// Large: any size change allowed.
	if err := st.Modify(lg, payload(30, 20000)); err != nil {
		t.Fatal(err)
	}
	if got, _ := st.Get(lg); !bytes.Equal(got, payload(30, 20000)) {
		t.Fatal("large modify lost data")
	}
}

func TestDeleteAndSlotReuse(t *testing.T) {
	fs := newStoreFS()
	st := mustCreate(t, fs, "store", paperConfig(1<<16, 1<<20, 1<<20))
	for _, pool := range []string{"small", "medium", "large"} {
		size := map[string]int{"small": 8, "medium": 400, "large": 5000}[pool]
		id, err := st.Allocate(pool, payload(1, size))
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Delete(id); err != nil {
			t.Fatal(err)
		}
		if _, err := st.Get(id); !errors.Is(err, ErrNoObject) {
			t.Fatalf("%s: Get after delete err = %v", pool, err)
		}
		if err := st.Delete(id); !errors.Is(err, ErrNoObject) {
			t.Fatalf("%s: double delete err = %v", pool, err)
		}
		// The freed slot is reused.
		id2, err := st.Allocate(pool, payload(2, size))
		if err != nil {
			t.Fatal(err)
		}
		if id2 != id {
			t.Fatalf("%s: slot not reused: %#x then %#x", pool, uint32(id), uint32(id2))
		}
		if got, _ := st.Get(id2); !bytes.Equal(got, payload(2, size)) {
			t.Fatalf("%s: reused slot data mismatch", pool)
		}
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	fs := newStoreFS()
	st := mustCreate(t, fs, "store", paperConfig(1<<16, 1<<18, 1<<20))
	type obj struct {
		id   ObjectID
		pool string
		seed int
		size int
	}
	rng := rand.New(rand.NewSource(5))
	var objs []obj
	for i := 0; i < 1200; i++ {
		var pool string
		var size int
		switch rng.Intn(3) {
		case 0:
			pool, size = "small", rng.Intn(13)
		case 1:
			pool, size = "medium", rng.Intn(4000)+13
		default:
			pool, size = "large", rng.Intn(20000)+4097
		}
		id, err := st.Allocate(pool, payload(i, size))
		if err != nil {
			t.Fatal(err)
		}
		objs = append(objs, obj{id, pool, i, size})
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get(objs[0].id); !errors.Is(err, ErrStoreClosed) {
		t.Fatal("closed store still serves reads")
	}

	st2, err := Open(fs, "store")
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range objs {
		got, err := st2.Get(o.id)
		if err != nil {
			t.Fatalf("reopen Get(%#x): %v", uint32(o.id), err)
		}
		if !bytes.Equal(got, payload(o.seed, o.size)) {
			t.Fatalf("reopen Get(%#x): data mismatch (%s, %d bytes)", uint32(o.id), o.pool, o.size)
		}
	}
	// Allocation continues cleanly after reopen.
	id, err := st2.Allocate("medium", payload(9999, 777))
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range objs {
		if o.id == id {
			t.Fatal("new allocation collided with an existing id")
		}
	}
}

func TestOpenRejectsCorruption(t *testing.T) {
	fs := newStoreFS()
	st := mustCreate(t, fs, "store", paperConfig(0, 0, 0))
	st.Allocate("medium", payload(1, 100))
	st.Close()

	if _, err := Open(fs, "missing"); err == nil {
		t.Fatal("Open(missing) succeeded")
	}
	// Flip a byte in the aux region (after the header).
	f, _ := fs.Open("store")
	var hdr [headerBytes]byte
	vfs.ReadFull(f, hdr[:], 0)
	auxOff := int64(uint64(hdr[24]) | uint64(hdr[25])<<8 | uint64(hdr[26])<<16 | uint64(hdr[27])<<24)
	one := []byte{0xFF}
	f.WriteAt(one, auxOff+3)
	if _, err := Open(fs, "store"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open on corrupt aux err = %v", err)
	}
	// Garbage header.
	g, _ := fs.Create("garbage")
	g.WriteAt(bytes.Repeat([]byte{0xAB}, 128), 0)
	if _, err := Open(fs, "garbage"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open on garbage err = %v", err)
	}
}

func TestCrashBeforeFlushPreservesPreviousImage(t *testing.T) {
	fs := newStoreFS()
	st := mustCreate(t, fs, "store", paperConfig(1<<16, 1<<18, 1<<20))
	id, _ := st.Allocate("medium", payload(1, 1000))
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	// Simulate work after the committed flush that never commits:
	// allocate more objects and modify the first, then "crash" (drop the
	// store without flushing).
	st.Allocate("medium", payload(2, 2000))
	st.Modify(id, payload(3, 900))
	// No Flush. Reopen from the last committed header.
	st2, err := Open(fs, "store")
	if err != nil {
		t.Fatal(err)
	}
	got, err := st2.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload(1, 1000)) {
		t.Fatal("committed image damaged by uncommitted work")
	}
	if st2.PoolStats()[1].Objects != 1 {
		t.Fatalf("uncommitted allocation visible: %+v", st2.PoolStats()[1])
	}
}

func TestForEachAndStats(t *testing.T) {
	fs := newStoreFS()
	st := mustCreate(t, fs, "store", paperConfig(1<<16, 1<<18, 1<<20))
	sizes := map[string][]int{
		"small":  {1, 5, 12},
		"medium": {100, 200},
		"large":  {5000},
	}
	want := 0
	for pool, ss := range sizes {
		for i, s := range ss {
			if _, err := st.Allocate(pool, payload(i, s)); err != nil {
				t.Fatal(err)
			}
			want++
		}
	}
	got := 0
	var totalBytes int
	st.ForEach(func(id ObjectID, size int) bool {
		got++
		totalBytes += size
		return true
	})
	if got != want {
		t.Fatalf("ForEach visited %d, want %d", got, want)
	}
	if totalBytes != 1+5+12+100+200+5000 {
		t.Fatalf("ForEach total bytes = %d", totalBytes)
	}
	// Early stop.
	got = 0
	st.ForEach(func(ObjectID, int) bool { got++; return false })
	if got != 1 {
		t.Fatalf("early stop visited %d", got)
	}
	// Live bytes accounting.
	var live int64
	for _, ps := range st.PoolStats() {
		live += ps.LiveBytes
	}
	if live != 1+5+12+100+200+5000 {
		t.Fatalf("LiveBytes total = %d", live)
	}
}

// TestPropertyStoreAgainstMap runs a random workload across all pools
// and cross-checks against a reference map, including across a
// close/reopen cycle.
func TestPropertyStoreAgainstMap(t *testing.T) {
	fs := newStoreFS()
	st := mustCreate(t, fs, "store", paperConfig(1<<15, 1<<17, 1<<19))
	ref := make(map[ObjectID][]byte)
	poolFor := func(size int) string {
		switch {
		case size <= 12:
			return "small"
		case size <= 4096:
			return "medium"
		default:
			return "large"
		}
	}
	var ids []ObjectID
	rng := rand.New(rand.NewSource(77))
	randSize := func() int {
		switch rng.Intn(3) {
		case 0:
			return rng.Intn(13)
		case 1:
			return rng.Intn(4084) + 13
		default:
			return rng.Intn(30000) + 4097
		}
	}
	for step := 0; step < 3000; step++ {
		switch op := rng.Intn(10); {
		case op < 4 || len(ids) == 0: // allocate
			size := randSize()
			data := payload(step, size)
			id, err := st.Allocate(poolFor(size), data)
			if err != nil {
				t.Fatalf("step %d: Allocate: %v", step, err)
			}
			if ref[id] != nil {
				t.Fatalf("step %d: live id %#x handed out twice", step, uint32(id))
			}
			ref[id] = data
			ids = append(ids, id)
		case op < 6: // modify within pool constraints
			id := ids[rng.Intn(len(ids))]
			if ref[id] == nil {
				continue
			}
			pool, _ := st.PoolOf(id)
			var size int
			switch pool {
			case "small":
				size = rng.Intn(13)
			case "medium":
				size = rng.Intn(4084) + 13
			default:
				size = rng.Intn(30000) + 4097
			}
			data := payload(step+1000000, size)
			if err := st.Modify(id, data); err != nil {
				t.Fatalf("step %d: Modify(%s): %v", step, pool, err)
			}
			ref[id] = data
		case op < 7: // delete
			id := ids[rng.Intn(len(ids))]
			if ref[id] == nil {
				continue
			}
			if err := st.Delete(id); err != nil {
				t.Fatalf("step %d: Delete: %v", step, err)
			}
			ref[id] = nil
		default: // read
			id := ids[rng.Intn(len(ids))]
			got, err := st.Get(id)
			want := ref[id]
			if want == nil {
				if !errors.Is(err, ErrNoObject) {
					t.Fatalf("step %d: Get deleted err = %v", step, err)
				}
				continue
			}
			if err != nil || !bytes.Equal(got, want) {
				t.Fatalf("step %d: Get mismatch: %v", step, err)
			}
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(fs, "store")
	if err != nil {
		t.Fatal(err)
	}
	live := 0
	for id, want := range ref {
		if want == nil {
			continue
		}
		live++
		got, err := st2.Get(id)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("after reopen: Get(%#x): %v", uint32(id), err)
		}
	}
	if live == 0 {
		t.Fatal("property test degenerated: no live objects")
	}
}
