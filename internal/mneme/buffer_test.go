package mneme

import (
	"bytes"
	"testing"

	"repro/internal/vfs"
)

func TestBufferHitMiss(t *testing.T) {
	fs := newStoreFS()
	st := mustCreate(t, fs, "store", paperConfig(0, 0, 1<<20))
	a, _ := st.Allocate("large", payload(1, 5000))
	b, _ := st.Allocate("large", payload(2, 5000))
	st.Flush()
	st.DropBuffers()
	st.ResetBufferStats()

	st.Get(a) // miss
	st.Get(a) // hit
	st.Get(b) // miss
	st.Get(a) // hit
	bs := st.BufferStats()["large"]
	if bs.Refs != 4 || bs.Hits != 2 || bs.Loads != 2 {
		t.Fatalf("large buffer stats = %+v", bs)
	}
	if bs.HitRate() != 0.5 {
		t.Fatalf("HitRate = %v", bs.HitRate())
	}
}

func TestBufferNoCacheMode(t *testing.T) {
	fs := newStoreFS()
	st := mustCreate(t, fs, "store", paperConfig(0, 0, 0))
	a, _ := st.Allocate("large", payload(1, 5000))
	st.Flush()
	st.ResetBufferStats()
	for i := 0; i < 5; i++ {
		if got, err := st.Get(a); err != nil || !bytes.Equal(got, payload(1, 5000)) {
			t.Fatalf("Get #%d: %v", i, err)
		}
	}
	bs := st.BufferStats()["large"]
	if bs.Refs != 5 || bs.Hits != 0 || bs.Loads != 5 {
		t.Fatalf("no-cache stats = %+v", bs)
	}
	if st.IsResident(a) {
		t.Fatal("object resident with caching disabled")
	}
}

func TestBufferLRUEviction(t *testing.T) {
	fs := newStoreFS()
	// Large buffer fits exactly two 5000-byte segments.
	st := mustCreate(t, fs, "store", paperConfig(0, 0, 10000))
	a, _ := st.Allocate("large", payload(1, 5000))
	b, _ := st.Allocate("large", payload(2, 5000))
	c, _ := st.Allocate("large", payload(3, 5000))
	st.Flush()
	st.DropBuffers()
	st.ResetBufferStats()

	st.Get(a)
	st.Get(b)
	st.Get(c) // evicts a (LRU)
	if st.IsResident(a) {
		t.Fatal("LRU victim still resident")
	}
	if !st.IsResident(b) || !st.IsResident(c) {
		t.Fatal("recently used segments evicted")
	}
	st.Get(b) // touch b so c becomes LRU
	st.Get(a) // evicts c
	if st.IsResident(c) {
		t.Fatal("touched ordering ignored: c should have been evicted")
	}
	bs := st.BufferStats()["large"]
	if bs.Evictions != 2 {
		t.Fatalf("Evictions = %d, want 2", bs.Evictions)
	}
}

func TestReserveProtectsResidentSegments(t *testing.T) {
	fs := newStoreFS()
	st := mustCreate(t, fs, "store", paperConfig(0, 0, 10000))
	a, _ := st.Allocate("large", payload(1, 5000))
	b, _ := st.Allocate("large", payload(2, 5000))
	c, _ := st.Allocate("large", payload(3, 5000))
	st.Flush()
	st.DropBuffers()

	st.Get(a)
	st.Get(b)
	// Reserve a (the LRU) as a query tree scan would; c's load must then
	// evict b instead.
	if n := st.Reserve([]ObjectID{a, c}); n.Count() != 1 {
		t.Fatalf("Reserve made %d reservations, want 1 (c is not resident)", n.Count())
	}
	st.Get(c)
	if !st.IsResident(a) {
		t.Fatal("reserved segment evicted")
	}
	if st.IsResident(b) {
		t.Fatal("unreserved segment survived over reserved one")
	}
	st.ReleaseReservations()
	st.Get(b) // now a is LRU and unreserved: evicted
	if st.IsResident(a) {
		t.Fatal("released segment not evictable")
	}
}

func TestReserveSkipsInvalidAndAbsent(t *testing.T) {
	fs := newStoreFS()
	st := mustCreate(t, fs, "store", paperConfig(0, 0, 10000))
	a, _ := st.Allocate("large", payload(1, 500))
	if n := st.Reserve([]ObjectID{NilID, makeID(900, 1), a}); n.Count() != 1 {
		// a was just allocated, so its segment is resident and reservable.
		t.Fatalf("Reserve = %d, want 1", n.Count())
	}
	st.ReleaseReservations()
}

func TestSetBufferCapacityShrinkEvicts(t *testing.T) {
	fs := newStoreFS()
	st := mustCreate(t, fs, "store", paperConfig(0, 0, 1<<20))
	var ids []ObjectID
	for i := 0; i < 10; i++ {
		id, _ := st.Allocate("large", payload(i, 5000))
		ids = append(ids, id)
	}
	st.Flush()
	for _, id := range ids {
		st.Get(id)
	}
	resident := 0
	for _, id := range ids {
		if st.IsResident(id) {
			resident++
		}
	}
	if resident != 10 {
		t.Fatalf("resident = %d before shrink", resident)
	}
	if err := st.SetBufferCapacity("large", 12000); err != nil {
		t.Fatal(err)
	}
	resident = 0
	for _, id := range ids {
		if st.IsResident(id) {
			resident++
		}
	}
	if resident > 2 {
		t.Fatalf("resident = %d after shrink to 2 segments", resident)
	}
	if err := st.SetBufferCapacity("bogus", 1); err == nil {
		t.Fatal("SetBufferCapacity on unknown pool succeeded")
	}
}

func TestDirtyEvictionPersists(t *testing.T) {
	fs := newStoreFS()
	// Tiny medium buffer: one 8K segment at a time.
	st := mustCreate(t, fs, "store", paperConfig(0, 8192, 0))
	var ids []ObjectID
	// Each allocation dirties the open segment; filling several segments
	// forces dirty evictions along the way.
	for i := 0; i < 40; i++ {
		id, err := st.Allocate("medium", payload(i, 1500))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	st.Close()
	st2, err := Open(fs, "store")
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		got, err := st2.Get(id)
		if err != nil || !bytes.Equal(got, payload(i, 1500)) {
			t.Fatalf("object %d lost through dirty eviction: %v", i, err)
		}
	}
}

// TestShadowSaveKeepsResidencyKeyStable: a dirty segment that is
// relocated by its save call-back must remain addressable through the
// same segRef afterwards.
func TestShadowSaveKeepsResidencyKeyStable(t *testing.T) {
	fs := newStoreFS()
	st := mustCreate(t, fs, "store", paperConfig(0, 1<<20, 0))
	id, _ := st.Allocate("medium", payload(1, 1000))
	st.Flush() // shadow-saves the dirty segment to a fresh extent
	if got, err := st.Get(id); err != nil || !bytes.Equal(got, payload(1, 1000)) {
		t.Fatalf("Get after flush: %v", err)
	}
	// Modify and flush again: another relocation.
	st.Modify(id, payload(2, 999))
	st.Flush()
	st.DropBuffers()
	if got, err := st.Get(id); err != nil || !bytes.Equal(got, payload(2, 999)) {
		t.Fatalf("Get after second shadow save: %v", err)
	}
}

func TestBufferOverflowWhenAllReserved(t *testing.T) {
	fs := newStoreFS()
	st := mustCreate(t, fs, "store", paperConfig(0, 0, 6000))
	a, _ := st.Allocate("large", payload(1, 5000))
	b, _ := st.Allocate("large", payload(2, 5000))
	st.Flush()
	st.DropBuffers()
	st.Get(a)
	st.Reserve([]ObjectID{a})
	// Loading b exceeds capacity but the only victim is reserved; the
	// buffer must tolerate the overflow rather than fail.
	if got, err := st.Get(b); err != nil || !bytes.Equal(got, payload(2, 5000)) {
		t.Fatalf("Get under full reservation: %v", err)
	}
	if !st.IsResident(a) {
		t.Fatal("reserved segment evicted under pressure")
	}
	st.ReleaseReservations()
}

func TestStoreFileAccessCounting(t *testing.T) {
	fs := vfs.New(vfs.Options{BlockSize: 8192}) // no OS cache
	st := mustCreate(t, fs, "store", Config{Pools: []PoolConfig{
		{Name: "large", Kind: PoolLarge, BufferBytes: 1 << 20},
	}})
	id, _ := st.Allocate("large", payload(1, 9000))
	st.Flush()
	st.DropBuffers()
	fs.ResetStats()

	st.Get(id) // one segment load: one file access
	s := fs.Stats()
	if s.FileAccesses != 1 {
		t.Fatalf("FileAccesses = %d, want 1 (Mneme's ~1 access per lookup)", s.FileAccesses)
	}
	st.Get(id) // resident: no file access
	if s2 := fs.Stats(); s2.FileAccesses != 1 {
		t.Fatalf("FileAccesses after hit = %d, want 1", s2.FileAccesses)
	}
}
