package mneme

import "fmt"

// mediumPool packs variable-size objects into fixed-size physical
// segments ("The remaining inverted lists ... were allocated in a medium
// object pool. These objects are packed into 8 Kbyte physical segments.
// The physical segment size is based on the disk I/O block size and a
// desire to keep the segments relatively small so as to reduce the
// number of unused objects retrieved with each segment", paper §3.3).
//
// An object larger than a segment receives a dedicated segment sized to
// the object, which makes a store configured with a single medium pool a
// valid (if unpartitioned) layout — the single-pool ablation.
type mediumPool struct {
	st  *Store
	cfg PoolConfig
	idx uint8
	buf *Buffer

	segs      []medSeg
	logSegs   []uint32     // logical segment numbers, in creation order
	entries   [][]medEntry // per logical segment, SegmentObjects entries
	logToIdx  map[uint32]int32
	openSeg   int32 // segment currently receiving allocations; -1 none
	nextSlot  int   // next unused slot in the last logical segment
	freeSlots []ObjectID
	objects   int64
	live      int64
}

// medSeg is one physical segment.
type medSeg struct {
	off  int64  // file offset; 0 = never persisted
	crc  uint32 // CRC32 of the image at off
	size int32  // allocated byte size (cfg.SegmentBytes, or larger for a dedicated oversize segment)
	used int32  // high-water mark of packed bytes
	dead int32  // bytes belonging to deleted or relocated objects
}

// medEntry locates one object.
type medEntry struct {
	seg    int32 // physical segment index; -1 = no object
	off    uint32
	length uint32
}

func newMediumPool(st *Store, cfg PoolConfig) *mediumPool {
	return &mediumPool{st: st, cfg: cfg, logToIdx: make(map[uint32]int32), openSeg: -1}
}

func (p *mediumPool) config() PoolConfig { return p.cfg }
func (p *mediumPool) setIndex(i uint8)   { p.idx = i }
func (p *mediumPool) index() uint8       { return p.idx }
func (p *mediumPool) attach(b *Buffer)   { p.buf = b }
func (p *mediumPool) buffer() *Buffer    { return p.buf }

// newSlot returns a free (logical segment, slot) pair, reusing deleted
// slots first and extending the logical segment space as needed.
func (p *mediumPool) newSlot() (ObjectID, error) {
	if n := len(p.freeSlots); n > 0 {
		id := p.freeSlots[n-1]
		p.freeSlots = p.freeSlots[:n-1]
		return id, nil
	}
	if len(p.logSegs) == 0 || p.nextSlot >= SegmentObjects {
		ls, err := p.st.allocLogSeg(p.idx)
		if err != nil {
			return NilID, err
		}
		p.logToIdx[ls] = int32(len(p.logSegs))
		p.logSegs = append(p.logSegs, ls)
		row := make([]medEntry, SegmentObjects)
		for i := range row {
			row[i].seg = -1
		}
		p.entries = append(p.entries, row)
		p.nextSlot = 0
	}
	ls := p.logSegs[len(p.logSegs)-1]
	slot := uint8(p.nextSlot)
	p.nextSlot++
	return makeID(ls, slot), nil
}

func (p *mediumPool) entry(id ObjectID) (*medEntry, bool) {
	li, ok := p.logToIdx[id.LogicalSegment()]
	if !ok {
		return nil, false
	}
	e := &p.entries[li][id.Slot()]
	if e.seg < 0 {
		return nil, false
	}
	return e, true
}

// place finds space for size bytes, opening a new physical segment when
// the current one is full, and returns (segment index, offset).
func (p *mediumPool) place(size int) (int32, uint32, error) {
	if size > p.cfg.SegmentBytes {
		// Oversize: dedicated segment, exactly sized.
		si := int32(len(p.segs))
		p.segs = append(p.segs, medSeg{size: int32(size), used: int32(size)})
		return si, 0, nil
	}
	if p.openSeg >= 0 {
		sg := &p.segs[p.openSeg]
		if int(sg.used)+size <= int(sg.size) {
			off := uint32(sg.used)
			sg.used += int32(size)
			return p.openSeg, off, nil
		}
	}
	si := int32(len(p.segs))
	p.segs = append(p.segs, medSeg{size: int32(p.cfg.SegmentBytes), used: int32(size)})
	p.openSeg = si
	return si, 0, nil
}

// store writes data into segment si at off through the buffer.
func (p *mediumPool) store(si int32, off uint32, data []byte) error {
	seg, err := p.acquire(si, false)
	if err != nil {
		return err
	}
	copy(seg.data[off:], data)
	return p.buf.MarkDirty(seg)
}

func (p *mediumPool) allocate(data []byte) (ObjectID, error) {
	id, err := p.newSlot()
	if err != nil {
		return NilID, err
	}
	si, off, err := p.place(len(data))
	if err != nil {
		return NilID, err
	}
	if err := p.store(si, off, data); err != nil {
		return NilID, err
	}
	li := p.logToIdx[id.LogicalSegment()]
	p.entries[li][id.Slot()] = medEntry{seg: si, off: off, length: uint32(len(data))}
	p.objects++
	p.live += int64(len(data))
	return id, nil
}

func (p *mediumPool) acquire(si int32, countRef bool) (*Segment, error) {
	sg := &p.segs[si]
	ref := segRef{pool: p.idx, idx: si}
	return p.buf.Acquire(ref, int(sg.size), countRef, func(dst []byte) error {
		if sg.off == 0 {
			return nil
		}
		return p.st.readSegmentChecked(dst, sg.off, sg.crc, p.cfg.Name, si)
	})
}

func (p *mediumPool) view(id ObjectID, fn func([]byte) error) error {
	e, ok := p.entry(id)
	if !ok {
		return fmt.Errorf("%w: %#x", ErrNoObject, uint32(id))
	}
	seg, err := p.acquire(e.seg, true)
	if err != nil {
		return err
	}
	return fn(seg.data[e.off : e.off+e.length])
}

func (p *mediumPool) modify(id ObjectID, data []byte) error {
	e, ok := p.entry(id)
	if !ok {
		return fmt.Errorf("%w: %#x", ErrNoObject, uint32(id))
	}
	if len(data) <= int(e.length) {
		// Shrink or same size: rewrite in place.
		seg, err := p.acquire(e.seg, true)
		if err != nil {
			return err
		}
		copy(seg.data[e.off:], data)
		p.segs[e.seg].dead += int32(e.length) - int32(len(data))
		p.live += int64(len(data)) - int64(e.length)
		e.length = uint32(len(data))
		return p.buf.MarkDirty(seg)
	}
	// Growth: relocate within the pool; the identifier is unchanged.
	si, off, err := p.place(len(data))
	if err != nil {
		return err
	}
	if err := p.store(si, off, data); err != nil {
		return err
	}
	p.segs[e.seg].dead += int32(e.length)
	p.live += int64(len(data)) - int64(e.length)
	*e = medEntry{seg: si, off: off, length: uint32(len(data))}
	return nil
}

func (p *mediumPool) remove(id ObjectID) error {
	e, ok := p.entry(id)
	if !ok {
		return fmt.Errorf("%w: %#x", ErrNoObject, uint32(id))
	}
	p.segs[e.seg].dead += int32(e.length)
	p.objects--
	p.live -= int64(e.length)
	e.seg = -1
	p.freeSlots = append(p.freeSlots, id)
	return nil
}

func (p *mediumPool) segOf(id ObjectID) (segRef, bool) {
	e, ok := p.entry(id)
	if !ok {
		return segRef{}, false
	}
	return segRef{pool: p.idx, idx: e.seg}, true
}

func (p *mediumPool) objectLen(id ObjectID) (int, bool) {
	e, ok := p.entry(id)
	if !ok {
		return 0, false
	}
	return int(e.length), true
}

func (p *mediumPool) logicalSegments() []uint32 {
	return append([]uint32(nil), p.logSegs...)
}

func (p *mediumPool) forEach(fn func(ObjectID, int) bool) {
	for li, row := range p.entries {
		for slot := range row {
			e := &row[slot]
			if e.seg < 0 {
				continue
			}
			if !fn(makeID(p.logSegs[li], uint8(slot)), int(e.length)) {
				return
			}
		}
	}
}

func (p *mediumPool) stats() PoolStats {
	var segBytes int64
	for i := range p.segs {
		segBytes += int64(p.segs[i].size)
	}
	return PoolStats{
		Name:         p.cfg.Name,
		Kind:         PoolMedium,
		Objects:      p.objects,
		LogicalSegs:  int64(len(p.logSegs)),
		PhysicalSegs: int64(len(p.segs)),
		LiveBytes:    p.live,
		SegmentBytes: segBytes,
	}
}

func (p *mediumPool) saveSegment(s *Segment) error {
	sg := &p.segs[s.ref.idx]
	off := p.st.allocExtent(len(s.data))
	crc, err := p.st.writeSegment(s.data, off)
	if err != nil {
		return err
	}
	sg.off = off
	sg.crc = crc
	return nil
}

func (p *mediumPool) marshalAux(w *auxWriter) {
	w.u32(uint32(len(p.segs)))
	for i := range p.segs {
		sg := &p.segs[i]
		w.i64(sg.off)
		w.u32(sg.crc)
		w.i32(sg.size)
		w.i32(sg.used)
		w.i32(sg.dead)
	}
	w.u32(uint32(len(p.logSegs)))
	for li, ls := range p.logSegs {
		w.u32(ls)
		for s := range p.entries[li] {
			e := &p.entries[li][s]
			w.i32(e.seg)
			w.u32(e.off)
			w.u32(e.length)
		}
	}
	w.u32(uint32(len(p.freeSlots)))
	for _, id := range p.freeSlots {
		w.u32(uint32(id))
	}
	w.i32(p.openSeg)
	w.u32(uint32(p.nextSlot))
	w.u64(uint64(p.objects))
	w.u64(uint64(p.live))
}

func (p *mediumPool) unmarshalAux(r *auxReader) error {
	ns := int(r.u32())
	if r.err != nil {
		return r.err
	}
	p.segs = make([]medSeg, ns)
	for i := range p.segs {
		p.segs[i] = medSeg{off: r.i64(), crc: r.u32(), size: r.i32(), used: r.i32(), dead: r.i32()}
	}
	nl := int(r.u32())
	if r.err != nil {
		return r.err
	}
	p.logSegs = make([]uint32, nl)
	p.entries = make([][]medEntry, nl)
	p.logToIdx = make(map[uint32]int32, nl)
	for li := 0; li < nl; li++ {
		p.logSegs[li] = r.u32()
		p.logToIdx[p.logSegs[li]] = int32(li)
		row := make([]medEntry, SegmentObjects)
		for s := range row {
			row[s] = medEntry{seg: r.i32(), off: r.u32(), length: r.u32()}
		}
		p.entries[li] = row
	}
	nf := int(r.u32())
	if r.err != nil {
		return r.err
	}
	p.freeSlots = make([]ObjectID, nf)
	for i := range p.freeSlots {
		p.freeSlots[i] = ObjectID(r.u32())
	}
	p.openSeg = r.i32()
	p.nextSlot = int(r.u32())
	p.objects = int64(r.u64())
	p.live = int64(r.u64())
	return r.err
}

// compact rewrites every physical segment that contains dead bytes,
// repacking its live objects densely. Object identifiers are stable;
// only locations change. Freed file space is not reclaimed (the file is
// append-only), but segment transfer sizes shrink to live data.
func (p *mediumPool) compact() error {
	// Collect live objects per segment.
	type liveObj struct {
		li   int
		slot int
	}
	bySeg := make(map[int32][]liveObj)
	for li, row := range p.entries {
		for slot := range row {
			if row[slot].seg >= 0 {
				bySeg[row[slot].seg] = append(bySeg[row[slot].seg], liveObj{li, slot})
			}
		}
	}
	for si := range p.segs {
		sg := &p.segs[si]
		if sg.dead == 0 {
			continue
		}
		objs := bySeg[int32(si)]
		// Read current image.
		seg, err := p.acquire(int32(si), false)
		if err != nil {
			return err
		}
		packed := make([]byte, 0, int(sg.used-sg.dead))
		offs := make([]uint32, len(objs))
		for i, o := range objs {
			e := &p.entries[o.li][o.slot]
			offs[i] = uint32(len(packed))
			packed = append(packed, seg.data[e.off:e.off+e.length]...)
		}
		// Rewrite the segment in place within its allocation.
		newData := make([]byte, sg.size)
		copy(newData, packed)
		p.buf.Drop(segRef{pool: p.idx, idx: int32(si)})
		off := p.st.allocExtent(int(sg.size))
		crc, err := p.st.writeSegment(newData, off)
		if err != nil {
			return err
		}
		sg.off = off
		sg.crc = crc
		sg.used = int32(len(packed))
		sg.dead = 0
		for i, o := range objs {
			p.entries[o.li][o.slot].off = offs[i]
		}
	}
	return nil
}

func (p *mediumPool) persistedSegments(fn func(seg int32, off int64, size int, crc uint32)) {
	for i := range p.segs {
		if sg := &p.segs[i]; sg.off != 0 {
			fn(int32(i), sg.off, int(sg.size), sg.crc)
		}
	}
}
