package mneme

import (
	"errors"
	"testing"

	"repro/internal/resilience"
	"repro/internal/vfs"
)

// persistedSegOffset returns the file offset of one persisted segment
// of the named pool.
func persistedSegOffset(t *testing.T, st *Store, pool string) int64 {
	t.Helper()
	var off int64 = -1
	for _, p := range st.pools {
		if p.config().Name != pool {
			continue
		}
		p.persistedSegments(func(seg int32, o int64, size int, crc uint32) {
			if off < 0 {
				off = o
			}
		})
	}
	if off < 0 {
		t.Fatalf("pool %q has no persisted segment", pool)
	}
	return off
}

// TestBufferRetryRecoversTransientFault: a single injected read fault
// on segment fault-in is recovered by the retry budget; the caller
// never sees an error and the recovery is counted in BufferStats.
func TestBufferRetryRecoversTransientFault(t *testing.T) {
	fs := newStoreFS()
	st := mustCreate(t, fs, "retry.mn", paperConfig(1<<20, 1<<20, 1<<20))
	id, err := st.Allocate("medium", payload(1, 600))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := st.DropBuffers(); err != nil {
		t.Fatal(err)
	}
	st.SetResilience(resilience.NewRetry(resilience.DefaultRetryPolicy()), resilience.BreakerPolicy{})

	// Fail the next read once: the fault-in's first attempt dies, its
	// retry lands on a fresh ordinal and succeeds.
	fs.SetFaultPlan(vfs.NewFaultPlan(1).FailReadEvery(1).Once())
	got, err := st.Get(id)
	if err != nil {
		t.Fatalf("Get with transient fault: %v", err)
	}
	if len(got) != 600 {
		t.Fatalf("got %d bytes, want 600", len(got))
	}
	stats := st.BufferStats()["medium"]
	if stats.Retries != 1 {
		t.Fatalf("medium pool Retries = %d, want 1", stats.Retries)
	}
	fs.SetFaultPlan(nil)
}

// TestBufferRetryDoesNotRetryCorruption: checksum corruption is not a
// transient fault — the retry budget must not be spent re-reading
// rotted bytes, and the caller sees ErrCorruptSegment.
func TestBufferRetryDoesNotRetryCorruption(t *testing.T) {
	fs := newStoreFS()
	st := mustCreate(t, fs, "rot.mn", paperConfig(1<<20, 1<<20, 1<<20))
	id, err := st.Allocate("large", payload(2, 40000))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := st.DropBuffers(); err != nil {
		t.Fatal(err)
	}
	retry := resilience.NewRetry(resilience.DefaultRetryPolicy())
	st.SetResilience(retry, resilience.BreakerPolicy{})
	// Rot one byte inside the large object's persisted segment so its
	// checksum fails on fault-in.
	off := persistedSegOffset(t, st, "large")
	if err := fs.FlipByte("rot.mn", off+100, 0x40); err != nil {
		t.Fatal(err)
	}
	_, err = st.Get(id)
	if !errors.Is(err, ErrCorruptSegment) {
		t.Fatalf("Get = %v, want ErrCorruptSegment", err)
	}
	if retry.Retries() != 0 {
		t.Fatalf("Retries = %d, want 0 (corruption is not retryable)", retry.Retries())
	}
}

// TestPoolBreakerOpensAndRecovers: a persistent read outage trips the
// pool's breaker after the failure threshold; while open, fault-ins
// fail fast with ErrBreakerOpen and do not touch the device; after the
// cooldown a probe closes it again once the outage clears.
func TestPoolBreakerOpensAndRecovers(t *testing.T) {
	fs := newStoreFS()
	st := mustCreate(t, fs, "brk.mn", paperConfig(0, 0, 0)) // no caching: every Get faults in
	id, err := st.Allocate("medium", payload(3, 700))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	policy := resilience.BreakerPolicy{FailureThreshold: 2, Cooldown: 3}
	st.SetResilience(nil, policy) // no retry: each Get is one breaker observation
	fs.SetFaultPlan(vfs.NewFaultPlan(1).FailReadEvery(1))

	// Threshold failures trip the breaker.
	for i := 0; i < 2; i++ {
		if _, err := st.Get(id); !errors.Is(err, vfs.ErrInjected) {
			t.Fatalf("Get #%d = %v, want ErrInjected", i, err)
		}
	}
	snaps := st.BreakerSnaps()
	if snaps["medium"].State != "open" {
		t.Fatalf("medium breaker state = %q, want open (snaps: %+v)", snaps["medium"].State, snaps)
	}

	// Open: fail fast, no device reads.
	readsBefore := fs.Stats().FileAccesses
	for i := 0; i < 2; i++ { // cooldown 3: these two are pure rejections
		if _, err := st.Get(id); !errors.Is(err, resilience.ErrBreakerOpen) {
			t.Fatalf("open breaker Get = %v, want ErrBreakerOpen", err)
		}
	}
	if got := fs.Stats().FileAccesses; got != readsBefore {
		t.Fatalf("open breaker touched the device: %d file accesses, want %d", got, readsBefore)
	}

	// The outage ends; the cooldown's 3rd rejected call becomes the
	// probe, succeeds, and closes the breaker.
	fs.SetFaultPlan(nil)
	if _, err := st.Get(id); err != nil {
		t.Fatalf("probe Get = %v, want success", err)
	}
	snaps = st.BreakerSnaps()
	if snaps["medium"].State != "closed" {
		t.Fatalf("medium breaker state = %q, want closed after probe", snaps["medium"].State)
	}
	if snaps["medium"].Opens != 1 || snaps["medium"].Probes != 1 {
		t.Fatalf("snap = %+v, want 1 open and 1 probe", snaps["medium"])
	}
	// Back to normal service.
	if _, err := st.Get(id); err != nil {
		t.Fatal(err)
	}
}

// TestScrubFindsQuarantineCandidates: Scrub reports a rotted segment as
// a per-pool quarantine candidate while a clean store scrubs clean, and
// the store stays online (reads keep working mid-walk semantics are
// covered by the batched locking; here we check the report shape).
func TestScrubFindsQuarantineCandidates(t *testing.T) {
	fs := newStoreFS()
	st := mustCreate(t, fs, "scrub.mn", paperConfig(1<<20, 1<<20, 1<<20))
	var ids []ObjectID
	for i := 0; i < 50; i++ {
		id, err := st.Allocate("medium", payload(i, 400))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	big, err := st.Allocate("large", payload(99, 30000))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}

	rep, err := st.Scrub(ScrubOptions{BatchSegments: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("clean store: scrub found %v", rep.Candidates)
	}
	if rep.Segments == 0 || rep.Bytes == 0 {
		t.Fatalf("scrub walked nothing: %+v", rep)
	}

	// Rot a byte inside a persisted segment, using Fsck as the oracle
	// for how many pool segments the flip actually corrupted.
	off := persistedSegOffset(t, st, "medium")
	if err := fs.FlipByte("scrub.mn", off+10, 0x10); err != nil {
		t.Fatal(err)
	}
	oracle, err := st.Fsck()
	if err != nil {
		t.Fatal(err)
	}
	wantCorrupt := 0
	for _, is := range oracle.Issues {
		if is.Pool != "" {
			wantCorrupt++
		}
	}
	if wantCorrupt == 0 {
		t.Fatal("flip missed every persisted segment; test needs a new offset")
	}
	rep2, err := st.Scrub(ScrubOptions{BatchSegments: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Candidates) != wantCorrupt {
		t.Fatalf("scrub found %d candidates, Fsck found %d pool issues", len(rep2.Candidates), wantCorrupt)
	}
	total := 0
	for _, n := range rep2.PerPool {
		total += n
	}
	if total != len(rep2.Candidates) {
		t.Fatalf("PerPool total %d != %d candidates", total, len(rep2.Candidates))
	}
	// The store is still online: reads of clean segments succeed.
	if _, err := st.Get(ids[0]); err != nil {
		t.Fatal(err)
	}
	_ = big
}
