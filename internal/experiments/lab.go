// Package experiments regenerates every table and figure of the paper's
// evaluation (§4): collection statistics (Table 1), buffer sizing
// (Table 2), wall-clock and system+I/O times (Tables 3-4), I/O
// statistics (Table 5), buffer hit rates (Table 6), the inverted-list
// size distribution (Figure 1), the access-frequency-by-size profile
// (Figure 2), and the buffer-size sweep (Figure 3) — plus ablations of
// the design decisions the integration made.
package experiments

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/lexicon"
	"repro/internal/mneme"
	"repro/internal/shard"
	"repro/internal/textproc"
	"repro/internal/vfs"
)

// System enumerates the three measured configurations of Table 3.
type System uint8

const (
	// SysBTree is the original custom B-tree version.
	SysBTree System = iota + 1
	// SysMnemeNoCache is Mneme with all record buffers disabled.
	SysMnemeNoCache
	// SysMnemeCache is Mneme with the Table 2 buffer plan.
	SysMnemeCache
)

// String names the system as the paper's tables do.
func (s System) String() string {
	switch s {
	case SysBTree:
		return "B-Tree"
	case SysMnemeNoCache:
		return "Mneme, No Cache"
	case SysMnemeCache:
		return "Mneme, Cache"
	}
	return "?"
}

// Systems lists the measured configurations in paper column order.
var Systems = []System{SysBTree, SysMnemeNoCache, SysMnemeCache}

// Lab builds collections once and runs measured query batches. The
// simulated machine: 8 Kbyte disk transfer blocks and an OS file-system
// buffer cache sized so that — as in the paper — the two smaller
// collections' working sets fit in it while the TIPSTER-scale ones do
// not.
type Lab struct {
	// Scale multiplies collection document counts (1.0 = default).
	Scale float64
	// OSCacheBytes sizes the simulated ULTRIX buffer cache.
	OSCacheBytes int64
	// Model converts I/O counters into 1993-hardware time estimates.
	Model vfs.TimeModel
	// BenchTopK is the ranking depth of the bench mode's DAAT rows —
	// the k that MaxScore pruning prunes against.
	BenchTopK int

	mu      sync.Mutex
	cols    map[string]*Built
	chunked map[string]*Built
	sharded map[string]*ShardedBuilt
	runs    map[string]*RunResult
}

// Built is a collection constructed under the lab's file system.
type Built struct {
	Col       collection.PaperCollection
	FS        *vfs.FS
	Stats     *core.BuildStats
	TextBytes int64
	// MaxList is the largest inverted-list record in bytes, the input
	// to the Table 2 large-buffer heuristic.
	MaxList int64
}

// DefaultOSCache is the lab's simulated file-system cache size.
const DefaultOSCache = 512 << 10

// DefaultBenchTopK is the bench mode's default ranking depth.
const DefaultBenchTopK = 10

// ChunkPayloadBytes is the chunk payload size of the lab's chunked
// collection variants (one medium segment's worth of record bytes).
const ChunkPayloadBytes = 4096

// NewLab creates a lab at the given collection scale.
func NewLab(scale float64) *Lab {
	return &Lab{
		Scale:        scale,
		OSCacheBytes: DefaultOSCache,
		Model:        vfs.Model1993(),
		BenchTopK:    DefaultBenchTopK,
		cols:         make(map[string]*Built),
		chunked:      make(map[string]*Built),
		sharded:      make(map[string]*ShardedBuilt),
		runs:         make(map[string]*RunResult),
	}
}

// analyzer returns the text analyzer used throughout the experiments:
// no stemming or stopping, since the synthetic vocabulary is already
// normalized and the generator models stop-word removal distributionally.
func analyzer() *textproc.Analyzer {
	return textproc.NewAnalyzer(textproc.WithStemming(false), textproc.WithStopWords(nil))
}

// Collection builds (once) and returns the named paper collection.
func (l *Lab) Collection(name string) (*Built, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if b, ok := l.cols[name]; ok {
		return b, nil
	}
	col, ok := collection.ByName(name, l.Scale)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown collection %q", name)
	}
	fs := vfs.New(vfs.Options{BlockSize: vfs.DefaultBlockSize, OSCacheBytes: l.OSCacheBytes})
	stream := col.Stream()
	stats, err := core.Build(fs, col.Name, stream, core.BuildOptions{Analyzer: analyzer()})
	if err != nil {
		return nil, fmt.Errorf("experiments: build %s: %w", name, err)
	}
	b := &Built{Col: col, FS: fs, Stats: stats, TextBytes: stream.TextBytes()}
	b.MaxList = maxListBytes(fs, col.Name)
	l.cols[name] = b
	return b, nil
}

// ChunkedCollection builds (once) the named collection with large
// inverted lists stored as indexed chunked objects, on its own file
// system — the substrate of the bench mode's skip-aware DAAT rows. The
// table experiments keep using the unchunked Collection, so their
// numbers are unaffected.
func (l *Lab) ChunkedCollection(name string) (*Built, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if b, ok := l.chunked[name]; ok {
		return b, nil
	}
	col, ok := collection.ByName(name, l.Scale)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown collection %q", name)
	}
	fs := vfs.New(vfs.Options{BlockSize: vfs.DefaultBlockSize, OSCacheBytes: l.OSCacheBytes})
	stream := col.Stream()
	stats, err := core.Build(fs, col.Name, stream, core.BuildOptions{
		Analyzer:        analyzer(),
		Backends:        []core.BackendKind{core.BackendMneme},
		ChunkLargeLists: ChunkPayloadBytes,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: build chunked %s: %w", name, err)
	}
	b := &Built{Col: col, FS: fs, Stats: stats, TextBytes: stream.TextBytes()}
	b.MaxList = maxDictListBytes(fs, col.Name, core.BackendMneme)
	l.chunked[name] = b
	return b, nil
}

// ShardedBuilt is a collection split round-robin into n document-
// partitioned shard collections inside one image (plus the sidecar),
// the substrate of the bench mode's scatter-gather rows.
type ShardedBuilt struct {
	Col collection.PaperCollection
	FS  *vfs.FS
	N   int
	// MaxList is the largest inverted-list record across shard 0's
	// dictionary — the buffer-plan input, as in the unsharded case.
	MaxList int64
}

// ShardedCollection builds (once) the named collection as n document-
// partitioned shards on its own file system. Only the Mneme backend is
// built: the sharded bench rows measure the Mneme+cache configuration.
func (l *Lab) ShardedCollection(name string, n int) (*ShardedBuilt, error) {
	key := fmt.Sprintf("%s/x%d", name, n)
	l.mu.Lock()
	defer l.mu.Unlock()
	if b, ok := l.sharded[key]; ok {
		return b, nil
	}
	col, ok := collection.ByName(name, l.Scale)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown collection %q", name)
	}
	fs := vfs.New(vfs.Options{BlockSize: vfs.DefaultBlockSize, OSCacheBytes: l.OSCacheBytes})
	if _, err := shard.Build([]*vfs.FS{fs}, col.Name, n, col.Stream(), core.BuildOptions{
		Analyzer: analyzer(),
		Backends: []core.BackendKind{core.BackendMneme},
	}); err != nil {
		return nil, fmt.Errorf("experiments: build sharded %s x%d: %w", name, n, err)
	}
	b := &ShardedBuilt{Col: col, FS: fs, N: n}
	b.MaxList = maxDictListBytes(fs, shard.ShardName(col.Name, 0), core.BackendMneme)
	l.sharded[key] = b
	return b, nil
}

// maxListBytes scans the collection dictionary for the largest record.
func maxListBytes(fs *vfs.FS, name string) int64 {
	return maxDictListBytes(fs, name, core.BackendBTree)
}

// maxDictListBytes is maxListBytes through whichever backend index
// file the build produced.
func maxDictListBytes(fs *vfs.FS, name string, kind core.BackendKind) int64 {
	e, err := core.Open(fs, name, kind, core.WithAnalyzer(analyzer()))
	if err != nil {
		return 0
	}
	defer e.Close()
	var max int64
	e.Dictionary().Range(func(entry *lexicon.Entry) bool {
		if int64(entry.ListBytes) > max {
			max = int64(entry.ListBytes)
		}
		return true
	})
	return max
}

// PlanFor computes the collection's Table 2 buffer plan using the
// paper's heuristics: large = 3× the largest inverted list; medium = 9%
// of large, but at least 3 medium segments (the CACM rule); small = 3
// small segments.
func PlanFor(b *Built) core.BufferPlan {
	return planFromMaxList(b.MaxList)
}

// planFromMaxList is the Table 2 heuristic as a function of the largest
// inverted-list record, shared by the unsharded and sharded plans.
func planFromMaxList(maxList int64) core.BufferPlan {
	large := 3 * maxList
	medium := large * 9 / 100
	if min := int64(3 * 8192); medium < min {
		medium = min
	}
	return core.BufferPlan{
		SmallBytes:  3 * 4096,
		MediumBytes: medium,
		LargeBytes:  large,
	}
}

// RunResult is one measured batch run of a query set under a system.
type RunResult struct {
	Collection string
	QuerySet   string
	Sys        System

	Queries  int
	Lookups  int64
	Postings int64

	IO vfs.Stats // counter delta for the run

	Wall    time.Duration // Table 3 metric (model estimate)
	SysIO   time.Duration // Table 4 metric (model estimate)
	UserCPU time.Duration

	MeasuredNS int64 // real host nanoseconds, for shape cross-checks

	Buffers map[string]mneme.BufferStats

	// AccessSizes are the byte sizes of every record fetched (Figure 2).
	AccessSizes []uint32

	// Snap is the engine's unified post-run snapshot (cumulative
	// counters, not the run delta held in the fields above).
	Snap core.Snapshot
}

// A returns average file accesses per record lookup (Table 5 "A").
func (r *RunResult) A() float64 {
	if r.Lookups == 0 {
		return 0
	}
	return float64(r.IO.FileAccesses) / float64(r.Lookups)
}

// runKey builds the memo key for a run.
func runKey(col string, qs string, sys System) string {
	return fmt.Sprintf("%s/%s/%d", col, qs, sys)
}

// Run executes (once, memoized) the batch run of a collection's query
// set under a system. Runs are deterministic, so memoizing is exact —
// the paper repeated each run six times and saw under 1% variation.
func (l *Lab) Run(colName string, qsIndex int, sys System) (*RunResult, error) {
	b, err := l.Collection(colName)
	if err != nil {
		return nil, err
	}
	if qsIndex < 0 || qsIndex >= len(b.Col.QuerySets) {
		return nil, fmt.Errorf("experiments: %s has no query set %d", colName, qsIndex)
	}
	key := runKey(colName, b.Col.QuerySets[qsIndex].Name, sys)
	l.mu.Lock()
	if r, ok := l.runs[key]; ok {
		l.mu.Unlock()
		return r, nil
	}
	l.mu.Unlock()
	r, err := l.RunFresh(colName, qsIndex, sys)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.runs[key] = r
	l.mu.Unlock()
	return r, nil
}

// RunFresh executes a batch run without consulting or updating the
// memo, for benchmarks that re-measure a configuration. The protocol
// follows the paper: open all files, complete initialization, purge the
// file-system cache with the chill procedure, then time only query
// processing.
func (l *Lab) RunFresh(colName string, qsIndex int, sys System) (*RunResult, error) {
	b, err := l.Collection(colName)
	if err != nil {
		return nil, err
	}
	if qsIndex < 0 || qsIndex >= len(b.Col.QuerySets) {
		return nil, fmt.Errorf("experiments: %s has no query set %d", colName, qsIndex)
	}
	qs := b.Col.QuerySets[qsIndex]
	key := runKey(colName, qs.Name, sys)
	queries := b.Col.GenQueries(qs)

	var kind core.BackendKind
	plan := core.NoCache
	switch sys {
	case SysBTree:
		kind = core.BackendBTree
	case SysMnemeNoCache:
		kind = core.BackendMneme
	case SysMnemeCache:
		kind = core.BackendMneme
		plan = PlanFor(b)
	default:
		return nil, fmt.Errorf("experiments: unknown system %d", sys)
	}

	eng, err := core.Open(b.FS, colName, kind,
		core.WithAnalyzer(analyzer()), core.WithPlan(plan), core.WithAccessLog())
	if err != nil {
		return nil, err
	}
	defer eng.Close()

	// "Before each query set was run, a 32 Mbyte 'chill file' was read
	// to purge the operating system file buffers."
	b.FS.Chill()
	eng.ResetCounters()
	eng.Backend().ResetBufferStats()
	before := b.FS.Stats()

	start := time.Now()
	for _, q := range queries {
		if _, err := eng.Search(q.Text, 0); err != nil {
			return nil, fmt.Errorf("experiments: %s: query %s: %w", key, q.ID, err)
		}
	}
	elapsed := time.Since(start)

	delta := b.FS.Stats().Sub(before)
	c := eng.Counters()
	r := &RunResult{
		Collection:  colName,
		QuerySet:    qs.Name,
		Sys:         sys,
		Queries:     len(queries),
		Lookups:     c.Lookups,
		Postings:    c.Postings,
		IO:          delta,
		SysIO:       l.Model.SystemIO(delta),
		UserCPU:     l.Model.UserCPU(c.Postings, len(queries)),
		MeasuredNS:  elapsed.Nanoseconds(),
		Buffers:     eng.Backend().BufferStats(),
		AccessSizes: eng.AccessLog(),
		Snap:        eng.Snapshot(),
	}
	r.Wall = r.UserCPU + r.SysIO
	return r, nil
}

// pair names one (collection, query set) row of the evaluation matrix.
type pair struct {
	col string
	qs  int
}

// matrix returns the paper's seven (collection, query set) rows in
// table order.
func matrix() []pair {
	return []pair{
		{"CACM", 0}, {"CACM", 1}, {"CACM", 2},
		{"Legal", 0}, {"Legal", 1},
		{"TIPSTER1", 0},
		{"TIPSTER", 0},
	}
}
