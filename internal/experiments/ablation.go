package experiments

import (
	"fmt"
	"time"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/lexicon"
	"repro/internal/mneme"
	"repro/internal/vfs"
)

// Ablations isolate the design decisions DESIGN.md calls out: the
// three-pool partition, the reservation optimization, and the
// segment-size-equals-transfer-block choice.

// buildVariant builds a Mneme-only copy of a collection under an
// alternate store configuration, on its own file system.
func (l *Lab) buildVariant(colName string, cfg *mneme.Config, chunkBytes int) (*Built, error) {
	col, ok := collection.ByName(colName, l.Scale)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown collection %q", colName)
	}
	fs := vfs.New(vfs.Options{BlockSize: vfs.DefaultBlockSize, OSCacheBytes: l.OSCacheBytes})
	stream := col.Stream()
	// Give every pool a generous build-time buffer so allocation does
	// not shadow-save each segment per object; measurement runs re-open
	// with the plan under test.
	build := *cfg
	build.Pools = append([]mneme.PoolConfig(nil), cfg.Pools...)
	for i := range build.Pools {
		if build.Pools[i].BufferBytes <= 0 {
			build.Pools[i].BufferBytes = 1 << 20
		}
	}
	stats, err := core.Build(fs, col.Name, stream, core.BuildOptions{
		Analyzer:        analyzer(),
		Backends:        []core.BackendKind{core.BackendMneme},
		MnemeConfig:     &build,
		ChunkLargeLists: chunkBytes,
	})
	if err != nil {
		return nil, err
	}
	b := &Built{Col: col, FS: fs, Stats: stats, TextBytes: stream.TextBytes()}
	b.MaxList = maxListBytesMneme(fs, col.Name)
	return b, nil
}

// maxListBytesMneme mirrors maxListBytes for Mneme-only builds.
func maxListBytesMneme(fs *vfs.FS, name string) int64 {
	e, err := core.Open(fs, name, core.BackendMneme, core.WithAnalyzer(analyzer()))
	if err != nil {
		return 0
	}
	defer e.Close()
	var max int64
	e.Dictionary().Range(func(entry *lexicon.Entry) bool {
		if int64(entry.ListBytes) > max {
			max = int64(entry.ListBytes)
		}
		return true
	})
	return max
}

// runMneme executes one measured Mneme batch run with explicit options.
func (l *Lab) runMneme(b *Built, qsIdx int, plan core.BufferPlan, disableReserve bool, chunkBytes int) (*RunResult, error) {
	qs := b.Col.QuerySets[qsIdx]
	queries := b.Col.GenQueries(qs)
	opts := []core.Option{
		core.WithAnalyzer(analyzer()),
		core.WithPlan(plan),
		core.WithAccessLog(),
		core.WithChunking(chunkBytes),
	}
	if disableReserve {
		opts = append(opts, core.WithoutReserve())
	}
	eng, err := core.Open(b.FS, b.Col.Name, core.BackendMneme, opts...)
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	b.FS.Chill()
	eng.ResetCounters()
	eng.Backend().ResetBufferStats()
	before := b.FS.Stats()
	start := time.Now()
	for _, q := range queries {
		if _, err := eng.Search(q.Text, 0); err != nil {
			return nil, err
		}
	}
	elapsed := time.Since(start)
	delta := b.FS.Stats().Sub(before)
	c := eng.Counters()
	r := &RunResult{
		Collection: b.Col.Name,
		QuerySet:   qs.Name,
		Sys:        SysMnemeCache,
		Queries:    len(queries),
		Lookups:    c.Lookups,
		Postings:   c.Postings,
		IO:         delta,
		SysIO:      l.Model.SystemIO(delta),
		UserCPU:    l.Model.UserCPU(c.Postings, len(queries)),
		MeasuredNS: elapsed.Nanoseconds(),
		Buffers:    eng.Backend().BufferStats(),
	}
	r.Wall = r.UserCPU + r.SysIO
	return r, nil
}

// aggHitRate returns overall refs, hits, and rate across all pools.
func aggHitRate(r *RunResult) (int64, int64, float64) {
	var refs, hits int64
	for _, bs := range r.Buffers {
		refs += bs.Refs
		hits += bs.Hits
	}
	rate := 0.0
	if refs > 0 {
		rate = float64(hits) / float64(refs)
	}
	return refs, hits, rate
}

// AblationReserve measures the reservation optimization: the paper's
// "slight optimization" to LRU that pins already-resident objects named
// by the query tree before evaluation.
func (l *Lab) AblationReserve(colName string, qsIdx int) (*Table, error) {
	b, err := l.Collection(colName)
	if err != nil {
		return nil, err
	}
	plan := PlanFor(b)
	t := &Table{
		Title:  fmt.Sprintf("Ablation: LRU reservation optimization (%s, query set %s)", colName, b.Col.QuerySets[qsIdx].Name),
		Header: []string{"Variant", "Refs", "Hits", "HitRate", "I", "B(KB)", "Sys+I/O(s)"},
	}
	for _, variant := range []struct {
		name    string
		disable bool
	}{{"LRU + reserve", false}, {"plain LRU", true}} {
		r, err := l.runMneme(b, qsIdx, plan, variant.disable, 0)
		if err != nil {
			return nil, err
		}
		refs, hits, rate := aggHitRate(r)
		t.Rows = append(t.Rows, []string{
			variant.name,
			fmt.Sprintf("%d", refs),
			fmt.Sprintf("%d", hits),
			fmt.Sprintf("%.3f", rate),
			fmt.Sprintf("%d", r.IO.DiskReads),
			kb(r.IO.BytesRead),
			secs(r.SysIO),
		})
	}
	return t, nil
}

// AblationSinglePool compares the paper's three-pool partition against
// a single unpartitioned pool given the same total buffer budget.
func (l *Lab) AblationSinglePool(colName string, qsIdx int) (*Table, error) {
	three, err := l.Collection(colName)
	if err != nil {
		return nil, err
	}
	plan := PlanFor(three)
	total := plan.SmallBytes + plan.MediumBytes + plan.LargeBytes

	singleCfg := core.SinglePoolConfig(total)
	single, err := l.buildVariant(colName, &singleCfg, 0)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title: fmt.Sprintf("Ablation: three-pool partition vs single pool (%s, query set %s, equal buffer budget %d KB)",
			colName, three.Col.QuerySets[qsIdx].Name, total/1024),
		Header: []string{"Layout", "StoreKB", "Refs", "Hits", "HitRate", "I", "B(KB)", "Sys+I/O(s)"},
	}
	r3, err := l.runMneme(three, qsIdx, plan, false, 0)
	if err != nil {
		return nil, err
	}
	r1, err := l.runMneme(single, qsIdx, core.BufferPlan{MediumBytes: total}, false, 0)
	if err != nil {
		return nil, err
	}
	for _, row := range []struct {
		name string
		b    *Built
		r    *RunResult
	}{{"three pools", three, r3}, {"single pool", single, r1}} {
		refs, hits, rate := aggHitRate(row.r)
		t.Rows = append(t.Rows, []string{
			row.name,
			kb(row.b.Stats.MnemeBytes),
			fmt.Sprintf("%d", refs),
			fmt.Sprintf("%d", hits),
			fmt.Sprintf("%.3f", rate),
			fmt.Sprintf("%d", row.r.IO.DiskReads),
			kb(row.r.IO.BytesRead),
			secs(row.r.SysIO),
		})
	}
	return t, nil
}

// AblationSegmentSize sweeps the medium pool's physical segment size
// around the paper's choice of the 8 Kbyte disk transfer block.
func (l *Lab) AblationSegmentSize(colName string, qsIdx int, sizes []int) (*Table, error) {
	if len(sizes) == 0 {
		sizes = []int{2048, 4096, 8192, 16384, 32768}
	}
	t := &Table{
		Title:  fmt.Sprintf("Ablation: medium-pool physical segment size (%s)", colName),
		Header: []string{"SegmentBytes", "StoreKB", "I", "B(KB)", "MdHitRate", "Sys+I/O(s)"},
		Note:   "The paper picks 8192 = the disk transfer block: larger segments drag in unused objects, smaller ones waste the block transfer.",
	}
	for _, seg := range sizes {
		cfg := mneme.Config{Pools: []mneme.PoolConfig{
			{Name: core.PoolNameSmall, Kind: mneme.PoolSmall, SegmentBytes: 4096, SlotBytes: 16},
			{Name: core.PoolNameMedium, Kind: mneme.PoolMedium, SegmentBytes: seg},
			{Name: core.PoolNameLarge, Kind: mneme.PoolLarge},
		}}
		b, err := l.buildVariant(colName, &cfg, 0)
		if err != nil {
			return nil, err
		}
		plan := PlanFor(b)
		r, err := l.runMneme(b, qsIdx, plan, false, 0)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", seg),
			kb(b.Stats.MnemeBytes),
			fmt.Sprintf("%d", r.IO.DiskReads),
			kb(r.IO.BytesRead),
			fmt.Sprintf("%.2f", r.Buffers["medium"].HitRate()),
			secs(r.SysIO),
		})
	}
	return t, nil
}

// AblationBufferPolicy compares replacement policies for the large
// object buffer — the extensibility hook the paper highlights ("How
// these operations are implemented determines the policies used to
// manage the buffer"); the integration settled on LRU plus reservation.
func (l *Lab) AblationBufferPolicy(colName string, qsIdx int) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("Ablation: buffer replacement policy (%s)", colName),
		Header: []string{"Policy", "Refs", "Hits", "HitRate", "I", "B(KB)", "Sys+I/O(s)"},
	}
	for _, policy := range []string{"lru", "fifo", "clock"} {
		cfg := core.MnemeConfig(core.BufferPlan{})
		for i := range cfg.Pools {
			cfg.Pools[i].Policy = policy
		}
		b, err := l.buildVariant(colName, &cfg, 0)
		if err != nil {
			return nil, err
		}
		r, err := l.runMneme(b, qsIdx, PlanFor(b), false, 0)
		if err != nil {
			return nil, err
		}
		refs, hits, rate := aggHitRate(r)
		t.Rows = append(t.Rows, []string{
			policy,
			fmt.Sprintf("%d", refs),
			fmt.Sprintf("%d", hits),
			fmt.Sprintf("%.3f", rate),
			fmt.Sprintf("%d", r.IO.DiskReads),
			kb(r.IO.BytesRead),
			secs(r.SysIO),
		})
	}
	return t, nil
}

// AblationChunkedLists compares whole large objects against chunked
// storage (paper §6: linked lists of pieces enabling incremental update
// and retrieval), measuring the read-path cost of the indirection.
func (l *Lab) AblationChunkedLists(colName string, qsIdx int, chunkBytes int) (*Table, error) {
	if chunkBytes <= 0 {
		chunkBytes = 4092 // chunk + 4-byte next-id header fills a medium slot
	}
	t := &Table{
		Title:  fmt.Sprintf("Ablation: whole vs chunked large lists (%s, %d-byte chunks)", colName, chunkBytes),
		Header: []string{"Storage", "StoreKB", "Lookups", "I", "B(KB)", "Sys+I/O(s)"},
		Note:   "Chunking trades extra per-chunk accesses on reads for incremental update and retrieval.",
	}
	for _, variant := range []struct {
		name  string
		chunk int
	}{{"whole objects", 0}, {"chunked", chunkBytes}} {
		cfg := core.MnemeConfig(core.BufferPlan{})
		b, err := l.buildVariant(colName, &cfg, variant.chunk)
		if err != nil {
			return nil, err
		}
		r, err := l.runMneme(b, qsIdx, PlanFor(b), false, variant.chunk)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			variant.name,
			kb(b.Stats.MnemeBytes),
			fmt.Sprintf("%d", r.Lookups),
			fmt.Sprintf("%d", r.IO.DiskReads),
			kb(r.IO.BytesRead),
			secs(r.SysIO),
		})
	}
	return t, nil
}
