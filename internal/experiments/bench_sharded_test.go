package experiments

import (
	"strings"
	"testing"
)

// shardedCACMRows builds the CACM query-set-0 sharded bench rows once
// per test process (via the shared lab's memoized builds).
func shardedCACMRows(t *testing.T) *BenchReport {
	t.Helper()
	l := sharedLab()
	b, err := l.Collection("CACM")
	if err != nil {
		t.Fatal(err)
	}
	qs := b.Col.QuerySets[0]
	queries := b.Col.GenQueries(qs)
	report := &BenchReport{Schema: BenchSchema, Scale: l.Scale}
	for _, n := range ShardedBenchNs {
		sb, err := l.ShardedCollection("CACM", n)
		if err != nil {
			t.Fatal(err)
		}
		row, err := l.benchShardedRow(sb, qs.Name, queries)
		if err != nil {
			t.Fatal(err)
		}
		report.Rows = append(report.Rows, row)
	}
	return report
}

// TestShardedBenchScaling: the scatter-gather critical-path model must
// show the score stage shrinking monotonically in the shard count — at
// p95 the x4 row beats x2 beats x1 — and the CheckShardedScaling gate
// must accept the report as produced and reject it once tampered with.
func TestShardedBenchScaling(t *testing.T) {
	report := shardedCACMRows(t)
	score := func(row BenchRow) float64 {
		for _, s := range row.Stages {
			if s.Stage == "score" {
				return s.P95us
			}
		}
		t.Fatalf("row %s has no score stage: %+v", row.Backend, row.Stages)
		return 0
	}
	if len(report.Rows) != len(ShardedBenchNs) {
		t.Fatalf("got %d rows, want %d", len(report.Rows), len(ShardedBenchNs))
	}
	for i, row := range report.Rows {
		if want := shardedLabel(ShardedBenchNs[i]); row.Backend != want {
			t.Fatalf("row %d label = %q, want %q", i, row.Backend, want)
		}
		if row.Queries == 0 || score(row) <= 0 {
			t.Fatalf("degenerate row %+v", row)
		}
	}
	p1, p2, p4 := score(report.Rows[0]), score(report.Rows[1]), score(report.Rows[2])
	if !(p4 < p2 && p2 < p1) {
		t.Fatalf("score p95 not monotone in shard count: x1 %.1f, x2 %.1f, x4 %.1f", p1, p2, p4)
	}

	if err := CheckShardedScaling(report); err != nil {
		t.Fatalf("gate rejected a scaling report: %v", err)
	}
	// The gate must catch a regression: inflate the x4 score stage past x1.
	bad := *report
	bad.Rows = append([]BenchRow(nil), report.Rows...)
	tampered := bad.Rows[2]
	tampered.Stages = append([]BenchStage(nil), tampered.Stages...)
	for i := range tampered.Stages {
		if tampered.Stages[i].Stage == "score" {
			tampered.Stages[i].P95us = p1 * 2
		}
	}
	bad.Rows[2] = tampered
	err := CheckShardedScaling(&bad)
	if err == nil || !strings.Contains(err.Error(), "score p95") {
		t.Fatalf("gate accepted a tampered report (err=%v)", err)
	}
	// And a missing widest row.
	missing := *report
	missing.Rows = report.Rows[:2]
	if err := CheckShardedScaling(&missing); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("gate accepted a report missing the x4 row (err=%v)", err)
	}
	// A report with no sharded rows passes vacuously.
	if err := CheckShardedScaling(&BenchReport{Schema: BenchSchema}); err != nil {
		t.Fatalf("gate rejected an unsharded report: %v", err)
	}
}

// TestShardedBenchIOConservation: partitioning redistributes the work
// but does not eliminate it — the sharded rows must read at least as
// many postings bytes as they would in one shard (per-shard records add
// headers and per-shard dictionaries), and every query must still be
// answered.
func TestShardedBenchIOConservation(t *testing.T) {
	report := shardedCACMRows(t)
	base := report.Rows[0]
	for _, row := range report.Rows[1:] {
		if row.Queries != base.Queries {
			t.Fatalf("%s answered %d queries, x1 answered %d", row.Backend, row.Queries, base.Queries)
		}
		if row.BytesRead <= 0 || row.DiskReads <= 0 {
			t.Fatalf("%s reports no I/O: %+v", row.Backend, row)
		}
	}
}
