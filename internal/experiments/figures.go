package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/lexicon"
)

// Point is one figure data point.
type Point struct {
	X, Y float64
}

// Series is one named line of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Figure is one reproducible plot.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	LogX   bool
	Series []Series
}

// CSV renders the figure's data as comma-separated values.
func (f *Figure) CSV() string {
	var sb strings.Builder
	sb.WriteString("series,x,y\n")
	for _, s := range f.Series {
		for _, p := range s.Points {
			fmt.Fprintf(&sb, "%s,%g,%g\n", s.Name, p.X, p.Y)
		}
	}
	return sb.String()
}

// ASCII renders the figure as a terminal plot.
func (f *Figure) ASCII(w, h int) string {
	if w < 20 {
		w = 20
	}
	if h < 8 {
		h = 8
	}
	xform := func(x float64) float64 {
		if f.LogX {
			if x < 1 {
				x = 1
			}
			return math.Log10(x)
		}
		return x
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := 0.0, math.Inf(-1)
	for _, s := range f.Series {
		for _, p := range s.Points {
			x := xform(p.X)
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			maxY = math.Max(maxY, p.Y)
		}
	}
	if math.IsInf(minX, 1) || maxX == minX {
		return f.Title + "\n(no data)\n"
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	markers := []byte{'*', 'o', '+', 'x', '#'}
	for si, s := range f.Series {
		m := markers[si%len(markers)]
		for _, p := range s.Points {
			cx := int((xform(p.X) - minX) / (maxX - minX) * float64(w-1))
			cy := h - 1 - int((p.Y-minY)/(maxY-minY)*float64(h-1))
			if cx >= 0 && cx < w && cy >= 0 && cy < h {
				grid[cy][cx] = m
			}
		}
	}
	var sb strings.Builder
	sb.WriteString(f.Title)
	sb.WriteByte('\n')
	for si, s := range f.Series {
		fmt.Fprintf(&sb, "  %c = %s\n", markers[si%len(markers)], s.Name)
	}
	fmt.Fprintf(&sb, "%8.3g ^\n", maxY)
	for _, row := range grid {
		sb.WriteString("         |")
		sb.Write(row)
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "%8.3g +%s\n", minY, strings.Repeat("-", w))
	xl, xr := minX, maxX
	if f.LogX {
		fmt.Fprintf(&sb, "          10^%.1f%s10^%.1f  (%s, log scale)\n",
			xl, strings.Repeat(" ", maxInt(1, w-14)), xr, f.XLabel)
	} else {
		fmt.Fprintf(&sb, "          %.3g%s%.3g  (%s)\n",
			xl, strings.Repeat(" ", maxInt(1, w-12)), xr, f.XLabel)
	}
	fmt.Fprintf(&sb, "          y: %s\n", f.YLabel)
	return sb.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Figure1 reproduces the cumulative distribution of inverted-list record
// sizes for the Legal collection, in terms of both total number of
// records and total file size.
func (l *Lab) Figure1() (*Figure, error) {
	b, err := l.Collection("Legal")
	if err != nil {
		return nil, err
	}
	eng, err := core.Open(b.FS, "Legal", core.BackendBTree, core.WithAnalyzer(analyzer()))
	if err != nil {
		return nil, err
	}
	defer eng.Close()

	var sizes []int
	eng.Dictionary().Range(func(e *lexicon.Entry) bool {
		sizes = append(sizes, int(e.ListBytes))
		return true
	})
	sort.Ints(sizes)
	var totalBytes float64
	for _, s := range sizes {
		totalBytes += float64(s)
	}
	n := float64(len(sizes))

	// Log-spaced thresholds from 1 byte to the maximum size.
	maxSize := float64(sizes[len(sizes)-1])
	var recPts, bytePts []Point
	cumBytes := 0.0
	i := 0
	for _, thr := range logSpace(1, maxSize, 48) {
		for i < len(sizes) && float64(sizes[i]) <= thr {
			cumBytes += float64(sizes[i])
			i++
		}
		recPts = append(recPts, Point{X: thr, Y: 100 * float64(i) / n})
		bytePts = append(bytePts, Point{X: thr, Y: 100 * cumBytes / totalBytes})
	}
	return &Figure{
		Title:  "Figure 1: Cumulative distribution of inverted list sizes (Legal)",
		XLabel: "Inverted List Record Size (bytes)",
		YLabel: "Cumulative %",
		LogX:   true,
		Series: []Series{
			{Name: "% of Records", Points: recPts},
			{Name: "% of File Size", Points: bytePts},
		},
	}, nil
}

// logSpace returns n log-spaced values in [lo, hi].
func logSpace(lo, hi float64, n int) []float64 {
	if hi <= lo {
		return []float64{lo}
	}
	out := make([]float64, n)
	llo, lhi := math.Log10(lo), math.Log10(hi)
	for i := range out {
		out[i] = math.Pow(10, llo+(lhi-llo)*float64(i)/float64(n-1))
	}
	// Pin the endpoints: pow(10, log10(hi)) can round just below hi,
	// which would drop the largest sample from a cumulative curve.
	out[0], out[n-1] = lo, hi
	return out
}

// Figure2 reproduces the frequency of use of terms with different
// inverted-list sizes for Legal Query Set 2: how many times records of
// each size bucket were fetched during query processing.
func (l *Lab) Figure2() (*Figure, error) {
	r, err := l.Run("Legal", 1, SysMnemeCache)
	if err != nil {
		return nil, err
	}
	// Bucket by powers of two, reporting the bucket's geometric centre.
	buckets := make(map[int]int)
	for _, s := range r.AccessSizes {
		if s == 0 {
			s = 1
		}
		buckets[int(math.Log2(float64(s)))]++
	}
	keys := make([]int, 0, len(buckets))
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	pts := make([]Point, 0, len(keys))
	for _, k := range keys {
		centre := math.Pow(2, float64(k)+0.5)
		pts = append(pts, Point{X: centre, Y: float64(buckets[k])})
	}
	return &Figure{
		Title:  "Figure 2: Frequency of use of inverted list record sizes (Legal Query Set 2)",
		XLabel: "Inverted List Record Size (bytes)",
		YLabel: "Number of Uses",
		LogX:   true,
		Series: []Series{{Name: "uses", Points: pts}},
	}, nil
}

// Figure3 reproduces the large-object buffer hit-rate sweep for TIPSTER
// Query Set 1 over a range of buffer sizes.
func (l *Lab) Figure3() (*Figure, error) {
	b, err := l.Collection("TIPSTER")
	if err != nil {
		return nil, err
	}
	base := PlanFor(b)
	queries := b.Col.GenQueries(b.Col.QuerySets[0])

	var pts []Point
	// Sweep from a fraction of one large list to several times the
	// Table 2 heuristic.
	for _, mult := range []float64{0.25, 0.5, 1, 1.5, 2, 3, 4, 6, 8, 12, 16, 24} {
		size := int64(float64(b.MaxList) * mult)
		plan := base
		plan.LargeBytes = size
		eng, err := core.Open(b.FS, "TIPSTER", core.BackendMneme,
			core.WithAnalyzer(analyzer()), core.WithPlan(plan))
		if err != nil {
			return nil, err
		}
		b.FS.Chill()
		eng.Backend().ResetBufferStats()
		for _, q := range queries {
			if _, err := eng.Search(q.Text, 0); err != nil {
				eng.Close()
				return nil, err
			}
		}
		rate := eng.Backend().BufferStats()["large"].HitRate()
		eng.Close()
		pts = append(pts, Point{X: float64(size) / 1e6, Y: rate})
	}
	return &Figure{
		Title:  "Figure 3: Large object buffer hit rates for TIPSTER Query Set 1 over buffer sizes",
		XLabel: "Buffer Size (millions of bytes)",
		YLabel: "Hit Rate",
		Series: []Series{{Name: "hit rate", Points: pts}},
	}, nil
}

// AllFigures regenerates Figures 1-3 in order.
func (l *Lab) AllFigures() ([]*Figure, error) {
	var out []*Figure
	for _, fn := range []func() (*Figure, error){l.Figure1, l.Figure2, l.Figure3} {
		f, err := fn()
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}
