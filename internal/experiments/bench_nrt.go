package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/vfs"
)

// NRTBench is the write-path block of a near-real-time bench row: what
// the ingest path cost while the row's queries ran against the moving
// index. Like the rest of the query bench, every number is derived
// from deterministic I/O and work counters through the 1993 cost
// model, so the block is byte-identical across runs and machines.
type NRTBench struct {
	// Docs is the number of documents ingested through the WAL +
	// memtable path during the row.
	Docs int `json:"docs"`
	// DocsPerSec is the ingest throughput in simulated documents per
	// second: Docs over the simulated time of every Ingest call plus
	// the final quiesce, including WAL appends/syncs and the automatic
	// flushes and compactions they triggered.
	DocsPerSec float64 `json:"docs_per_sec"`
	// Flushes counts memtable flushes (automatic and final).
	Flushes int64 `json:"flushes"`
	// Compactions counts segment merges.
	Compactions int64 `json:"compactions"`
	// FlushPauseP95us is the p95 of the simulated stop-the-world
	// window per flush — the roster flip during which queries wait —
	// as opposed to the segment build, which overlaps serving.
	FlushPauseP95us float64 `json:"flush_pause_p95_us"`
}

// nrtIngestLabel/nrtIdleLabel name the paired NRT bench rows: the same
// engine topology measured mid-ingest and after quiescing.
func nrtIngestLabel() string { return SysMnemeCache.String() + " (nrt ingest)" }
func nrtIdleLabel() string   { return SysMnemeCache.String() + " (nrt idle)" }

// NRTIngestTolerance is the CheckNRTIngest gate: query p95 measured
// while the index ingests must stay within this factor of the same
// engine's quiesced (idle) p95. 1.5x is the freshness tax the NRT
// design budgets for — memtable chaining, a wider segment roster, and
// flush pauses must not cost more than that.
const NRTIngestTolerance = 1.5

// ioSimNS converts an I/O counter delta into simulated nanoseconds,
// mirroring obs.CostModel.SimNS for raw vfs stats (the ingest path is
// not span-traced; its cost is exactly its I/O).
func ioSimNS(costs obs.CostModel, d vfs.Stats) int64 {
	ns := d.DiskReads*costs.DiskReadNS + d.DiskWrites*costs.DiskWriteNS
	ns += (d.FileAccesses + d.FileWrites) * costs.SyscallNS
	ns += int64(float64(d.BytesRead+d.BytesWritten) * costs.CopyPerByteNS)
	return ns
}

// benchNRTRows measures the near-real-time ingest path on one
// (collection, query set) cell and returns two rows. The whole
// collection is streamed through Ingest in small batches with the
// query mix interleaved mid-stream — those query latencies become the
// "nrt ingest" row, and the Ingest I/O (WAL, automatic flushes,
// triggered compactions) becomes its NRTBench block. The engine is
// then quiesced (final flush + compact) and the same mix replayed for
// the "nrt idle" row, the baseline the CheckNRTIngest gate compares
// against.
func (l *Lab) benchNRTRows(b *Built, qsName string, queries []collection.Query) ([]BenchRow, error) {
	costs := l.Model.Costs()
	total := b.Stats.Docs
	flushDocs := total / 8
	if flushDocs < 32 {
		flushDocs = 32
	}
	fs := vfs.New(vfs.Options{BlockSize: vfs.DefaultBlockSize, OSCacheBytes: l.OSCacheBytes})
	eng, err := core.OpenNRT(fs, b.Col.Name, core.BackendMneme,
		core.NRTConfig{FlushDocs: flushDocs, CompactSegments: 4},
		core.WithAnalyzer(analyzer()), core.WithPlan(PlanFor(b)))
	if err != nil {
		return nil, fmt.Errorf("experiments: bench nrt %s: %w", b.Col.Name, err)
	}
	defer eng.Close()

	// One measured query per boundary, spread evenly across the stream
	// so the mix samples every index shape: memtable-only, mixed
	// memtable + segments, and just-flushed.
	qGap := total / (len(queries) + 1)
	if qGap < 1 {
		qGap = 1
	}
	runQuery := func(q collection.Query) (float64, error) {
		cBefore := eng.Counters()
		sBefore := fs.Stats()
		if _, err := eng.Run(nil, core.Request{Query: q.Text}); err != nil {
			return 0, fmt.Errorf("experiments: bench nrt %s/%s: query %s: %w",
				b.Col.Name, qsName, q.ID, err)
		}
		ns := ioSimNS(costs, fs.Stats().Sub(sBefore))
		ns += (eng.Counters().Postings - cBefore.Postings) * costs.PostingNS
		ns += costs.QueryNS
		return float64(ns) / 1e3, nil
	}

	var duringUS []float64
	var ingestNS int64
	ingestStart := fs.Stats()
	stream := b.Col.Stream()
	next := 0
	ingested := 0
	var batch []string
	flushBatch := func() error {
		if len(batch) == 0 {
			return nil
		}
		before := fs.Stats()
		if _, err := eng.Ingest(batch...); err != nil {
			return fmt.Errorf("experiments: bench nrt %s: ingest at doc %d: %w",
				b.Col.Name, ingested, err)
		}
		ingestNS += ioSimNS(costs, fs.Stats().Sub(before))
		ingested += len(batch)
		batch = batch[:0]
		return nil
	}
	for {
		doc, ok, err := stream.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		batch = append(batch, doc.Text)
		if len(batch) == 8 {
			if err := flushBatch(); err != nil {
				return nil, err
			}
		}
		for next < len(queries) && ingested >= (next+1)*qGap {
			us, err := runQuery(queries[next])
			if err != nil {
				return nil, err
			}
			duringUS = append(duringUS, us)
			next++
		}
	}
	if err := flushBatch(); err != nil {
		return nil, err
	}
	for next < len(queries) {
		us, err := runQuery(queries[next])
		if err != nil {
			return nil, err
		}
		duringUS = append(duringUS, us)
		next++
	}
	ingestDelta := fs.Stats().Sub(ingestStart)

	// Quiesce: the final flush and compaction belong to the write path.
	before := fs.Stats()
	if err := eng.Flush(); err != nil {
		return nil, fmt.Errorf("experiments: bench nrt %s: final flush: %w", b.Col.Name, err)
	}
	if err := eng.Compact(); err != nil {
		return nil, fmt.Errorf("experiments: bench nrt %s: compact: %w", b.Col.Name, err)
	}
	ingestNS += ioSimNS(costs, fs.Stats().Sub(before))

	var pausesUS []float64
	for _, f := range eng.FlushStats() {
		pausesUS = append(pausesUS, float64(ioSimNS(costs, f.PauseIO))/1e3)
	}
	sort.Float64s(pausesUS)
	snap := eng.Snapshot()
	nrt := &NRTBench{
		Docs:            ingested,
		Flushes:         snap.NRT.Flushes,
		Compactions:     snap.NRT.Compactions,
		FlushPauseP95us: quantile(pausesUS, 0.95),
	}
	if ingestNS > 0 {
		nrt.DocsPerSec = float64(ingested) / (float64(ingestNS) / 1e9)
	}

	mkRow := func(label string, us []float64, io vfs.Stats, nb *NRTBench) BenchRow {
		sorted := append([]float64(nil), us...)
		sort.Float64s(sorted)
		return BenchRow{
			Backend:    label,
			Collection: b.Col.Name,
			QuerySet:   qsName,
			Queries:    len(us),
			DiskReads:  io.DiskReads,
			BytesRead:  io.BytesRead,
			Stages: []BenchStage{{
				Stage: obs.StageQuery.String(),
				P50us: quantile(sorted, 0.50),
				P95us: quantile(sorted, 0.95),
				P99us: quantile(sorted, 0.99),
			}},
			NRT: nb,
		}
	}

	idleStart := fs.Stats()
	var idleUS []float64
	for _, q := range queries {
		us, err := runQuery(q)
		if err != nil {
			return nil, err
		}
		idleUS = append(idleUS, us)
	}
	idleDelta := fs.Stats().Sub(idleStart)

	return []BenchRow{
		mkRow(nrtIngestLabel(), duringUS, ingestDelta, nrt),
		mkRow(nrtIdleLabel(), idleUS, idleDelta, nil),
	}, nil
}

// CheckNRTIngest enforces the freshness-tax claim on every cell that
// carries the paired NRT rows: query p95 while ingesting must stay
// within NRTIngestTolerance of the quiesced p95 on the same engine.
// Returns nil when the report has no NRT rows; errors list every cell
// over budget.
func CheckNRTIngest(r *BenchReport) error {
	queryP95 := func(row BenchRow) (float64, bool) {
		for _, s := range row.Stages {
			if s.Stage == obs.StageQuery.String() {
				return s.P95us, true
			}
		}
		return 0, false
	}
	type cell struct{ col, qs string }
	ingest := make(map[cell]float64)
	idle := make(map[cell]float64)
	for _, row := range r.Rows {
		p95, ok := queryP95(row)
		if !ok {
			continue
		}
		c := cell{row.Collection, row.QuerySet}
		switch row.Backend {
		case nrtIngestLabel():
			ingest[c] = p95
		case nrtIdleLabel():
			idle[c] = p95
		}
	}
	var bad []string
	for c, during := range ingest {
		base, ok := idle[c]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s/%s: idle row missing", c.col, c.qs))
			continue
		}
		if base > 0 && during > base*NRTIngestTolerance {
			bad = append(bad, fmt.Sprintf("%s/%s: query p95 under ingest %.1fµs > %.1fx idle %.1fµs",
				c.col, c.qs, during, NRTIngestTolerance, base))
		}
	}
	if len(bad) > 0 {
		sort.Strings(bad)
		return fmt.Errorf("nrt ingest gate failed:\n  %s", strings.Join(bad, "\n  "))
	}
	return nil
}
