package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/vfs"
)

// BenchSchema versions the BENCH_query.json format. Bump it whenever a
// field changes meaning, so CompareBench refuses to diff across formats.
// v2 added the prune stage, skip counters, and the chunked DAAT rows.
// v3 added the paired near-real-time rows ("nrt ingest"/"nrt idle")
// and their write-path block (docs/sec, flush pause p95).
// v4 added the cached repeat-query rows ("Mneme, Cache (cached)") with
// their per-row cache-stats block, gated by CheckCachedRepeat.
const BenchSchema = "repro/bench_query/v4"

// ServeBenchSchema versions the BENCH_serve.json format written by
// cmd/loadgen: the same BenchReport envelope and row shape as the
// query bench, with per-row serving statistics (achieved QPS, shed
// rate) in the Serve block and wall-clock HTTP latency quantiles as a
// single "http" stage. Keeping the shape shared means CompareBench
// gates served latency alongside the query bench with the same code.
const ServeBenchSchema = "repro/bench_serve/v1"

// BenchSystems are the configurations the bench mode measures: the two
// storage backends, with Mneme under its paper buffer plan.
var BenchSystems = []System{SysBTree, SysMnemeCache}

// ShardedBenchNs are the shard counts of the bench mode's document-
// partitioned scatter-gather rows. The x1 row is the single-shard
// reference the CheckShardedScaling gate compares against.
var ShardedBenchNs = []int{1, 2, 4}

// BenchResultCacheEntries and BenchBlockCacheMB size the hot-path
// caches of the "(cached)" repeat-query rows: generous enough that the
// bench query mix fits entirely, so the measured pass is the pure
// cache-hit regime.
const (
	BenchResultCacheEntries = 1024
	BenchBlockCacheMB       = 32
)

// benchTotalStage names the synthetic whole-query stage every bench row
// carries alongside the per-stage breakdown: the per-query sum of all
// stage costs, quantiled. The cached-repeat gate compares it because a
// result-cache hit collapses every stage at once, which no single
// stage's quantile can witness.
const benchTotalStage = "total"

// BenchStage holds one per-stage latency distribution over a query mix.
// Times are simulated microseconds from the lab's cost model applied to
// each query's trace counts — a pure function of the counters, so the
// report is byte-identical across runs and machines.
type BenchStage struct {
	Stage string  `json:"stage"`
	P50us float64 `json:"p50_us"`
	P95us float64 `json:"p95_us"`
	P99us float64 `json:"p99_us"`
}

// BenchHitRate is one pool's record-buffer outcome over the run.
type BenchHitRate struct {
	Pool string  `json:"pool"`
	Refs int64   `json:"refs"`
	Hits int64   `json:"hits"`
	Rate float64 `json:"rate"`
}

// BenchSkips totals the evaluation work the run avoided: postings an
// Advance-capable iterator never surfaced, block bodies never decoded,
// and storage chunks never faulted in.
type BenchSkips struct {
	Postings int64 `json:"postings"`
	Blocks   int64 `json:"blocks"`
	Chunks   int64 `json:"chunks"`
}

// ServeStats is the serving-side block of a BENCH_serve.json row: what
// a loadgen run achieved against a live inqueryd, beyond the latency
// quantiles carried in the row's "http" stage.
type ServeStats struct {
	// Mode is the load-generation discipline: "closed" (fixed worker
	// pool, next request after the previous response) or "open"
	// (Poisson arrivals at a target rate, independent of responses).
	Mode string `json:"mode"`
	// Requests is the number of HTTP requests that completed.
	Requests int `json:"requests"`
	// Seconds is the measured run length.
	Seconds float64 `json:"seconds"`
	// QPS is the achieved served throughput (Requests / Seconds).
	QPS float64 `json:"qps"`
	// ShedRate is the fraction of requests answered 429 (admission
	// control shed) — the overload signal.
	ShedRate float64 `json:"shed_rate"`
	// Errors counts transport-level failures (connection refused,
	// malformed replies); any non-zero value fails the gate.
	Errors int `json:"errors"`
	// Failed counts requests answered with HTTP 5xx — server-side
	// query failures (breaker exhaustion, lost quorum, internal
	// errors), as opposed to 429 sheds. The replica-kill gate
	// (CheckReplicaKill) requires zero.
	Failed int `json:"failed,omitempty"`
}

// BenchRow is one (system, collection, query set) measurement.
type BenchRow struct {
	Backend    string         `json:"backend"`
	Collection string         `json:"collection"`
	QuerySet   string         `json:"query_set"`
	Queries    int            `json:"queries"`
	Stages     []BenchStage   `json:"stages"`
	HitRates   []BenchHitRate `json:"hit_rates,omitempty"`
	DiskReads  int64          `json:"disk_reads"`
	BytesRead  int64          `json:"bytes_read"`
	// Skips is present on the document-at-a-time rows, where iterators
	// can skip; the exhaustive and pruned rows differ only here and in
	// the stage latencies.
	Skips *BenchSkips `json:"skips,omitempty"`
	// Serve is present on BENCH_serve.json rows only: the loadgen
	// throughput/shed measurements CompareBench gates in addition to
	// the row's latency stages.
	Serve *ServeStats `json:"serve,omitempty"`
	// NRT is present on the "nrt ingest" rows only: the write-path
	// throughput and flush-pause distribution measured while the row's
	// queries ran mid-ingest (see CheckNRTIngest).
	NRT *NRTBench `json:"nrt,omitempty"`
	// Cache is present on the "(cached)" repeat-query rows only: the
	// engine's result- and block-cache counters over the warm pass plus
	// the measured repeat pass (see CheckCachedRepeat).
	Cache *core.CacheStats `json:"cache,omitempty"`
}

// BenchReport is the full bench-mode output (BENCH_query.json).
type BenchReport struct {
	Schema string     `json:"schema"`
	Scale  float64    `json:"scale"`
	Rows   []BenchRow `json:"rows"`
}

// quantile returns the q-quantile of a sorted slice by linear
// interpolation between order statistics (the exact sample quantile, no
// bucketing — regressions are not hidden by bucket resolution).
func quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	pos := q * float64(n-1)
	i := int(pos)
	if i >= n-1 {
		return sorted[n-1]
	}
	frac := pos - float64(i)
	return sorted[i] + (sorted[i+1]-sorted[i])*frac
}

// benchSetup describes one measured engine configuration of the bench.
type benchSetup struct {
	label  string // row backend label
	kind   core.BackendKind
	opts   []core.Option
	daat   bool // evaluate document-at-a-time with topK
	topK   int  // ranking depth for the DAAT rows (0 = all, TAAT rows)
	skips  bool // record the skip counters on the row
	cached bool // warm the hot-path caches first, measure the repeat pass
}

// benchRow measures one (setup, collection, query set) cell: fresh
// engine, chill the OS cache, reset counters, then trace the query set
// in order (buffers warm across queries within a row, as in the
// paper's batch runs).
func (l *Lab) benchRow(b *Built, colName, qsName string, queries []collection.Query, set benchSetup) (BenchRow, error) {
	costs := l.Model.Costs()
	opts := append([]core.Option{core.WithAnalyzer(analyzer())}, set.opts...)
	eng, err := core.Open(b.FS, colName, set.kind, opts...)
	if err != nil {
		return BenchRow{}, err
	}
	defer eng.Close()
	b.FS.Chill()
	mode := core.ModeTAAT
	if set.daat {
		mode = core.ModeDAAT
	}
	if set.cached {
		// Warm pass: populate the result and block caches, untimed and
		// outside the row's I/O window. The measured pass below is then
		// the repeat-query regime — the workload the paper's §2 query-
		// repetition analysis motivates caching for.
		for _, q := range queries {
			if _, err := eng.Run(nil, core.Request{Query: q.Text, TopK: set.topK, Mode: mode}); err != nil {
				return BenchRow{}, fmt.Errorf("experiments: bench %s/%s/%s warm: query %s: %w",
					set.label, colName, qsName, q.ID, err)
			}
		}
	}
	eng.ResetCounters()
	eng.Backend().ResetBufferStats()
	before := b.FS.Stats()

	stageUS := make(map[obs.Stage][]float64, len(obs.Stages()))
	var totalUS []float64
	for _, q := range queries {
		_, tr, err := eng.TraceRun(core.Request{Query: q.Text, TopK: set.topK, Mode: mode})
		if err != nil {
			return BenchRow{}, fmt.Errorf("experiments: bench %s/%s/%s: query %s: %w",
				set.label, colName, qsName, q.ID, err)
		}
		totals := tr.StageTotals()
		var totalNS int64
		for _, st := range obs.Stages() {
			tot := totals[st]
			ns := costs.SimNS(&tot.Counts)
			if st == obs.StageQuery {
				ns += costs.QueryNS
			}
			totalNS += ns
			stageUS[st] = append(stageUS[st], float64(ns)/1e3)
		}
		totalUS = append(totalUS, float64(totalNS)/1e3)
	}

	delta := b.FS.Stats().Sub(before)
	row := BenchRow{
		Backend:    set.label,
		Collection: colName,
		QuerySet:   qsName,
		Queries:    len(queries),
		DiskReads:  delta.DiskReads,
		BytesRead:  delta.BytesRead,
	}
	for _, st := range obs.Stages() {
		us := stageUS[st]
		sort.Float64s(us)
		row.Stages = append(row.Stages, BenchStage{
			Stage: st.String(),
			P50us: quantile(us, 0.50),
			P95us: quantile(us, 0.95),
			P99us: quantile(us, 0.99),
		})
	}
	sort.Float64s(totalUS)
	row.Stages = append(row.Stages, BenchStage{
		Stage: benchTotalStage,
		P50us: quantile(totalUS, 0.50),
		P95us: quantile(totalUS, 0.95),
		P99us: quantile(totalUS, 0.99),
	})
	bufs := eng.Backend().BufferStats()
	pools := make([]string, 0, len(bufs))
	for pool := range bufs {
		pools = append(pools, pool)
	}
	sort.Strings(pools)
	for _, pool := range pools {
		bs := bufs[pool]
		row.HitRates = append(row.HitRates, BenchHitRate{
			Pool: pool, Refs: bs.Refs, Hits: bs.Hits, Rate: bs.HitRate(),
		})
	}
	if set.skips {
		c := eng.Counters()
		row.Skips = &BenchSkips{
			Postings: c.PostingsSkipped,
			Blocks:   c.BlocksSkipped,
			Chunks:   c.ChunksSkipped,
		}
	}
	if set.cached {
		row.Cache = eng.Snapshot().Cache
	}
	return row, nil
}

// shardedLabel names a scatter-gather bench row.
func shardedLabel(n int) string {
	return fmt.Sprintf("%s (sharded x%d)", SysMnemeCache, n)
}

// benchShardedRow measures one scatter-gather cell: the query set traced
// against every shard engine of an n-way document-partitioned build.
// Per query, each stage's simulated time is the MAXIMUM over shards —
// the critical path of a parallel fan-out — while the I/O totals sum
// every shard's reads. This is what makes the sharded rows comparable
// to the single-engine rows: latency shrinks with n (each shard scores
// ~1/n of the postings) while total work does not.
func (l *Lab) benchShardedRow(sb *ShardedBuilt, qsName string, queries []collection.Query) (BenchRow, error) {
	costs := l.Model.Costs()
	plan := planFromMaxList(sb.MaxList)
	engines, err := shard.OpenEngines([]*vfs.FS{sb.FS}, sb.Col.Name, sb.N, core.BackendMneme,
		core.WithAnalyzer(analyzer()), core.WithPlan(plan))
	if err != nil {
		return BenchRow{}, err
	}
	defer func() {
		for _, e := range engines {
			e.Close()
		}
	}()
	sb.FS.Chill()
	for _, e := range engines {
		e.ResetCounters()
		e.Backend().ResetBufferStats()
	}
	before := sb.FS.Stats()

	stageUS := make(map[obs.Stage][]float64, len(obs.Stages()))
	var totalUS []float64
	for _, q := range queries {
		worst := make(map[obs.Stage]int64, len(obs.Stages()))
		for _, eng := range engines {
			_, tr, err := eng.TraceRun(core.Request{Query: q.Text})
			if err != nil {
				return BenchRow{}, fmt.Errorf("experiments: bench %s/%s/%s: query %s: %w",
					shardedLabel(sb.N), sb.Col.Name, qsName, q.ID, err)
			}
			totals := tr.StageTotals()
			for _, st := range obs.Stages() {
				tot := totals[st]
				ns := costs.SimNS(&tot.Counts)
				if st == obs.StageQuery {
					ns += costs.QueryNS
				}
				if ns > worst[st] {
					worst[st] = ns
				}
			}
		}
		var totalNS int64
		for _, st := range obs.Stages() {
			totalNS += worst[st]
			stageUS[st] = append(stageUS[st], float64(worst[st])/1e3)
		}
		totalUS = append(totalUS, float64(totalNS)/1e3)
	}

	delta := sb.FS.Stats().Sub(before)
	row := BenchRow{
		Backend:    shardedLabel(sb.N),
		Collection: sb.Col.Name,
		QuerySet:   qsName,
		Queries:    len(queries),
		DiskReads:  delta.DiskReads,
		BytesRead:  delta.BytesRead,
	}
	for _, st := range obs.Stages() {
		us := stageUS[st]
		sort.Float64s(us)
		row.Stages = append(row.Stages, BenchStage{
			Stage: st.String(),
			P50us: quantile(us, 0.50),
			P95us: quantile(us, 0.95),
			P99us: quantile(us, 0.99),
		})
	}
	sort.Float64s(totalUS)
	row.Stages = append(row.Stages, BenchStage{
		Stage: benchTotalStage,
		P50us: quantile(totalUS, 0.50),
		P95us: quantile(totalUS, 0.95),
		P99us: quantile(totalUS, 0.99),
	})
	return row, nil
}

// RunBench traces the standard query mix of every matrix row under each
// bench system and distils per-stage simulated-latency quantiles, buffer
// hit rates, I/O totals, and skip counters. Beyond the term-at-a-time
// systems the paper measured, the SysMnemeCache configuration also runs
// two document-at-a-time rows against the chunked-collection variant —
// exhaustive ("Mneme, Cache (daat)") and MaxScore-pruned ("Mneme, Cache
// (pruned)") — whose stage latencies and skip counters quantify what
// block-format skipping saves. Each matrix row additionally gets
// document-partitioned scatter-gather rows ("Mneme, Cache (sharded
// xN)", N from ShardedBenchNs) whose critical-path latency model the
// CheckShardedScaling gate holds to its claim. Each collection's first
// query set further gets the paired near-real-time rows ("Mneme, Cache
// (nrt ingest)" / "(nrt idle)") measuring the write path and the query
// latency tax it imposes, held to budget by CheckNRTIngest.
func (l *Lab) RunBench(systems []System) (*BenchReport, error) {
	if len(systems) == 0 {
		systems = BenchSystems
	}
	topK := l.BenchTopK
	if topK <= 0 {
		topK = DefaultBenchTopK
	}
	report := &BenchReport{Schema: BenchSchema, Scale: l.Scale}
	for _, p := range matrix() {
		b, err := l.Collection(p.col)
		if err != nil {
			return nil, err
		}
		qs := b.Col.QuerySets[p.qs]
		queries := b.Col.GenQueries(qs)
		for _, sys := range systems {
			set := benchSetup{label: sys.String()}
			switch sys {
			case SysBTree:
				set.kind = core.BackendBTree
			case SysMnemeNoCache:
				set.kind = core.BackendMneme
				set.opts = []core.Option{core.WithPlan(core.NoCache)}
			case SysMnemeCache:
				set.kind = core.BackendMneme
				set.opts = []core.Option{core.WithPlan(PlanFor(b))}
			default:
				return nil, fmt.Errorf("experiments: unknown system %d", sys)
			}
			row, err := l.benchRow(b, p.col, qs.Name, queries, set)
			if err != nil {
				return nil, err
			}
			report.Rows = append(report.Rows, row)

			if sys != SysMnemeCache {
				continue
			}
			// The cached repeat-query row: same engine configuration as
			// the SysMnemeCache row plus the result and block caches,
			// measured on the second pass over the mix. CheckCachedRepeat
			// holds its query p50 strictly below the uncached row's.
			cachedRow, err := l.benchRow(b, p.col, qs.Name, queries, benchSetup{
				label: sys.String() + " (cached)",
				kind:  core.BackendMneme,
				opts: []core.Option{
					core.WithPlan(PlanFor(b)),
					core.WithResultCache(BenchResultCacheEntries),
					core.WithBlockCache(BenchBlockCacheMB),
				},
				cached: true,
			})
			if err != nil {
				return nil, err
			}
			report.Rows = append(report.Rows, cachedRow)
			cb, err := l.ChunkedCollection(p.col)
			if err != nil {
				return nil, err
			}
			base := []core.Option{
				core.WithPlan(PlanFor(cb)),
				core.WithChunking(ChunkPayloadBytes),
			}
			for _, ds := range []benchSetup{
				{label: sys.String() + " (daat)", kind: core.BackendMneme,
					opts: base, daat: true, topK: topK, skips: true},
				{label: sys.String() + " (pruned)", kind: core.BackendMneme,
					opts: append(append([]core.Option{}, base...), core.WithPruning()),
					daat: true, topK: topK, skips: true},
			} {
				row, err := l.benchRow(cb, p.col, qs.Name, queries, ds)
				if err != nil {
					return nil, err
				}
				report.Rows = append(report.Rows, row)
			}
		}
		for _, n := range ShardedBenchNs {
			sb, err := l.ShardedCollection(p.col, n)
			if err != nil {
				return nil, err
			}
			row, err := l.benchShardedRow(sb, qs.Name, queries)
			if err != nil {
				return nil, err
			}
			report.Rows = append(report.Rows, row)
		}
		// One NRT cell per collection: stream the corpus through the
		// write path with the first query set interleaved mid-ingest,
		// then quiesce and replay it for the idle baseline.
		if p.qs == 0 {
			nrtRows, err := l.benchNRTRows(b, qs.Name, queries)
			if err != nil {
				return nil, err
			}
			report.Rows = append(report.Rows, nrtRows...)
		}
	}
	return report, nil
}

// CheckShardedScaling enforces the sharded bench's headline claim: on
// every (collection, query set) that carries sharded rows, the
// score-stage p95 at the largest shard count must beat the single-shard
// (x1) row — the scatter-gather critical path genuinely shrinks as the
// postings are partitioned. Returns nil when the report has no sharded
// rows; errors list every cell that failed to scale.
func CheckShardedScaling(r *BenchReport) error {
	maxN := 0
	for _, n := range ShardedBenchNs {
		if n > maxN {
			maxN = n
		}
	}
	scoreP95 := func(row BenchRow) (float64, bool) {
		for _, s := range row.Stages {
			if s.Stage == obs.StageScore.String() {
				return s.P95us, true
			}
		}
		return 0, false
	}
	type cell struct{ col, qs string }
	single := make(map[cell]float64)
	widest := make(map[cell]float64)
	for _, row := range r.Rows {
		p95, ok := scoreP95(row)
		if !ok {
			continue
		}
		c := cell{row.Collection, row.QuerySet}
		switch row.Backend {
		case shardedLabel(1):
			single[c] = p95
		case shardedLabel(maxN):
			widest[c] = p95
		}
	}
	var bad []string
	for c, base := range single {
		cur, ok := widest[c]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s/%s: x%d row missing", c.col, c.qs, maxN))
			continue
		}
		if cur >= base {
			bad = append(bad, fmt.Sprintf("%s/%s: score p95 x%d %.1fµs !< x1 %.1fµs",
				c.col, c.qs, maxN, cur, base))
		}
	}
	if len(bad) > 0 {
		sort.Strings(bad)
		return fmt.Errorf("sharded scaling gate failed:\n  %s", strings.Join(bad, "\n  "))
	}
	return nil
}

// CheckCachedRepeat enforces the caching layer's headline claim: every
// (collection, query set) cell that carries an uncached SysMnemeCache
// row must also carry its "(cached)" twin, the cached row's whole-query
// ("total") p50 must be strictly below the uncached one — repeat
// queries collapse to the cache lookup — and the row's cache block must
// prove the caches actually served (result hits and block hits both
// non-zero).
func CheckCachedRepeat(r *BenchReport) error {
	queryP50 := func(row BenchRow) (float64, bool) {
		for _, s := range row.Stages {
			if s.Stage == benchTotalStage {
				return s.P50us, true
			}
		}
		return 0, false
	}
	type cell struct{ col, qs string }
	uncached := make(map[cell]float64)
	cached := make(map[cell]BenchRow)
	for _, row := range r.Rows {
		c := cell{row.Collection, row.QuerySet}
		switch row.Backend {
		case SysMnemeCache.String():
			if p50, ok := queryP50(row); ok {
				uncached[c] = p50
			}
		case SysMnemeCache.String() + " (cached)":
			cached[c] = row
		}
	}
	var bad []string
	for c, base := range uncached {
		row, ok := cached[c]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s/%s: cached row missing", c.col, c.qs))
			continue
		}
		p50, ok := queryP50(row)
		if !ok {
			bad = append(bad, fmt.Sprintf("%s/%s: cached row has no query stage", c.col, c.qs))
			continue
		}
		if p50 >= base {
			bad = append(bad, fmt.Sprintf("%s/%s: cached query p50 %.1fµs !< uncached %.1fµs",
				c.col, c.qs, p50, base))
		}
		switch {
		case row.Cache == nil:
			bad = append(bad, fmt.Sprintf("%s/%s: cached row carries no cache stats", c.col, c.qs))
		case row.Cache.ResultHits == 0:
			bad = append(bad, fmt.Sprintf("%s/%s: result cache never hit", c.col, c.qs))
		case row.Cache.BlockHits == 0:
			bad = append(bad, fmt.Sprintf("%s/%s: block cache never hit", c.col, c.qs))
		}
	}
	if len(bad) > 0 {
		sort.Strings(bad)
		return fmt.Errorf("cached-repeat gate failed:\n  %s", strings.Join(bad, "\n  "))
	}
	return nil
}

// rowKey identifies a bench row across reports.
func rowKey(r BenchRow) string {
	return r.Backend + "/" + r.Collection + "/" + r.QuerySet
}

// CompareBench diffs a current report against a committed baseline and
// returns an error describing every stage whose p95 latency regressed
// by more than tol (0.20 = 20%). Reports must share schema and scale;
// rows present in the baseline must still exist. The same gate covers
// both bench formats: query rows (deterministic simulated-latency
// stages) and serve rows, whose Serve block is additionally gated —
// achieved QPS must not fall below baseline·(1−tol), the shed rate must
// not exceed baseline + tol, and transport errors must stay zero.
// Serve measurements are wall-clock, so serve baselines are gated with
// a generous tol (see cmd/loadgen -tol), not the query bench's 20%.
func CompareBench(base, cur *BenchReport, tol float64) error {
	if base.Schema != cur.Schema {
		return fmt.Errorf("bench schema mismatch: baseline %q vs current %q", base.Schema, cur.Schema)
	}
	if base.Scale != cur.Scale {
		return fmt.Errorf("bench scale mismatch: baseline %g vs current %g (regenerate the baseline at the current scale)", base.Scale, cur.Scale)
	}
	curRows := make(map[string]BenchRow, len(cur.Rows))
	for _, r := range cur.Rows {
		curRows[rowKey(r)] = r
	}
	var bad []string
	for _, br := range base.Rows {
		cr, ok := curRows[rowKey(br)]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: row missing from current report", rowKey(br)))
			continue
		}
		curStages := make(map[string]BenchStage, len(cr.Stages))
		for _, s := range cr.Stages {
			curStages[s.Stage] = s
		}
		for _, bs := range br.Stages {
			cs, ok := curStages[bs.Stage]
			if !ok {
				bad = append(bad, fmt.Sprintf("%s/%s: stage missing from current report", rowKey(br), bs.Stage))
				continue
			}
			if bs.P95us > 0 && cs.P95us > bs.P95us*(1+tol) {
				bad = append(bad, fmt.Sprintf("%s/%s: p95 %.1fµs -> %.1fµs (+%.0f%%, tolerance %.0f%%)",
					rowKey(br), bs.Stage, bs.P95us, cs.P95us,
					100*(cs.P95us/bs.P95us-1), 100*tol))
			}
		}
		if br.NRT != nil {
			switch {
			case cr.NRT == nil:
				bad = append(bad, fmt.Sprintf("%s: nrt block missing from current report", rowKey(br)))
			default:
				if br.NRT.DocsPerSec > 0 && cr.NRT.DocsPerSec < br.NRT.DocsPerSec*(1-tol) {
					bad = append(bad, fmt.Sprintf("%s: ingest %.2f docs/s -> %.2f (-%.0f%%, tolerance %.0f%%)",
						rowKey(br), br.NRT.DocsPerSec, cr.NRT.DocsPerSec,
						100*(1-cr.NRT.DocsPerSec/br.NRT.DocsPerSec), 100*tol))
				}
				// A zero-pause baseline stays zero: the flip window does
				// no I/O by construction, and the sim is deterministic.
				if cr.NRT.FlushPauseP95us > br.NRT.FlushPauseP95us*(1+tol) {
					bad = append(bad, fmt.Sprintf("%s: flush pause p95 %.1fµs -> %.1fµs (tolerance %.0f%%)",
						rowKey(br), br.NRT.FlushPauseP95us, cr.NRT.FlushPauseP95us, 100*tol))
				}
			}
		}
		if br.Serve == nil {
			continue
		}
		switch {
		case cr.Serve == nil:
			bad = append(bad, fmt.Sprintf("%s: serve block missing from current report", rowKey(br)))
		default:
			if br.Serve.QPS > 0 && cr.Serve.QPS < br.Serve.QPS*(1-tol) {
				bad = append(bad, fmt.Sprintf("%s: served QPS %.1f -> %.1f (-%.0f%%, tolerance %.0f%%)",
					rowKey(br), br.Serve.QPS, cr.Serve.QPS,
					100*(1-cr.Serve.QPS/br.Serve.QPS), 100*tol))
			}
			if cr.Serve.ShedRate > br.Serve.ShedRate+tol {
				bad = append(bad, fmt.Sprintf("%s: shed rate %.3f -> %.3f (tolerance +%.2f)",
					rowKey(br), br.Serve.ShedRate, cr.Serve.ShedRate, tol))
			}
			if cr.Serve.Errors > 0 {
				bad = append(bad, fmt.Sprintf("%s: %d transport errors", rowKey(br), cr.Serve.Errors))
			}
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("bench regression vs baseline:\n  %s", strings.Join(bad, "\n  "))
	}
	return nil
}

// CheckReplicaKill enforces the replicated serve bench's availability
// claim: a run measured while one replica of every shard is dead must
// finish with zero transport errors and keep at least minRatio of the
// healthy run's QPS — failover absorbs the kill instead of surfacing
// it. Both rows are matched by backend label within the same report and
// must carry serve blocks.
func CheckReplicaKill(r *BenchReport, healthyLabel, killedLabel string, minRatio float64) error {
	find := func(label string) (BenchRow, error) {
		for _, row := range r.Rows {
			if row.Backend == label && row.Serve != nil {
				return row, nil
			}
		}
		return BenchRow{}, fmt.Errorf("replica-kill gate: no serve row labelled %q in report", label)
	}
	healthy, err := find(healthyLabel)
	if err != nil {
		return err
	}
	killed, err := find(killedLabel)
	if err != nil {
		return err
	}
	var bad []string
	if killed.Serve.Errors > 0 {
		bad = append(bad, fmt.Sprintf("%s: %d transport errors with a replica down (want 0)",
			rowKey(killed), killed.Serve.Errors))
	}
	if killed.Serve.Failed > 0 {
		bad = append(bad, fmt.Sprintf("%s: %d HTTP 5xx with a replica down (want 0 — failover must absorb the kill)",
			rowKey(killed), killed.Serve.Failed))
	}
	if healthy.Serve.QPS > 0 && killed.Serve.QPS < healthy.Serve.QPS*minRatio {
		bad = append(bad, fmt.Sprintf("%s: QPS %.1f < %.2f x healthy %.1f (%s)",
			rowKey(killed), killed.Serve.QPS, minRatio, healthy.Serve.QPS, rowKey(healthy)))
	}
	if len(bad) > 0 {
		return fmt.Errorf("replica-kill gate failed:\n  %s", strings.Join(bad, "\n  "))
	}
	return nil
}
