package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/lexicon"
)

// Section 2 of the paper motivates the design with workload analysis:
// the inverted-list size distribution ("approximately 50% of the
// inverted lists are 12 bytes or less"), record compression ("The
// average compression rate for the four collections in Table 1 is about
// 60%"), and query-term repetition ("there is significant repetition of
// the terms used from query to query"). These tables regenerate that
// analysis for the synthetic collections.

// AnalyzeCollections reports per-collection record statistics: size
// class fractions and the compression rate relative to the raw
// integer-vector representation (4 bytes per integer: header, per-doc
// id and tf, and every position — exactly postings.RawSize).
func (l *Lab) AnalyzeCollections() (*Table, error) {
	t := &Table{
		Title: "Analysis (paper §2): inverted-list size classes and compression.",
		Header: []string{"Collection", "Records", "<=12B", "<=4KB", ">4KB",
			"EncodedKB", "RawKB", "Compression"},
		Note: "Compression = 1 - encoded/raw; the paper reports ~60% average. Raw = uncompressed integer vector.",
	}
	for _, c := range collectionNames() {
		b, err := l.Collection(c)
		if err != nil {
			return nil, err
		}
		eng, err := core.Open(b.FS, c, core.BackendBTree, core.WithAnalyzer(analyzer()))
		if err != nil {
			return nil, err
		}
		var records, small, medium, large int64
		var encoded, raw int64
		eng.Dictionary().Range(func(e *lexicon.Entry) bool {
			records++
			switch {
			case e.ListBytes <= core.SmallListMax:
				small++
			case int(e.ListBytes) <= core.MediumListMax:
				medium++
			default:
				large++
			}
			encoded += int64(e.ListBytes)
			// Raw integer vector: ctf+df header, then per document a
			// doc id and tf, then one integer per position (ctf total).
			raw += 4 * (2 + 2*int64(e.DF) + int64(e.CTF))
			return true
		})
		eng.Close()
		comp := 0.0
		if raw > 0 {
			comp = 1 - float64(encoded)/float64(raw)
		}
		t.Rows = append(t.Rows, []string{
			c,
			fmt.Sprintf("%d", records),
			fmt.Sprintf("%.0f%%", 100*float64(small)/float64(records)),
			fmt.Sprintf("%.0f%%", 100*float64(medium)/float64(records)),
			fmt.Sprintf("%.0f%%", 100*float64(large)/float64(records)),
			kb(encoded),
			kb(raw),
			fmt.Sprintf("%.0f%%", comp*100),
		})
	}
	return t, nil
}

// AnalyzeQueryRepetition reports per-query-set term usage: total term
// lookups, distinct terms, and the repetition ratio (lookups per
// distinct term) that makes record caching pay off.
func (l *Lab) AnalyzeQueryRepetition() (*Table, error) {
	t := &Table{
		Title:  "Analysis (paper §2): query-term repetition per query set.",
		Header: []string{"Collection", "QS", "Queries", "Lookups", "Distinct", "Lookups/Term"},
		Note:   "The paper: \"there is significant repetition of the terms used from query to query\" — the property caching exploits.",
	}
	for _, p := range matrix() {
		b, err := l.Collection(p.col)
		if err != nil {
			return nil, err
		}
		qs := b.Col.QuerySets[p.qs]
		eng, err := core.Open(b.FS, p.col, core.BackendMneme,
			core.WithAnalyzer(analyzer()), core.WithTermUse())
		if err != nil {
			return nil, err
		}
		queries := b.Col.GenQueries(qs)
		for _, q := range queries {
			if _, err := eng.Search(q.Text, 0); err != nil {
				eng.Close()
				return nil, err
			}
		}
		c := eng.Counters()
		distinct := int64(len(eng.TermUse()))
		eng.Close()
		ratio := 0.0
		if distinct > 0 {
			ratio = float64(c.Lookups) / float64(distinct)
		}
		t.Rows = append(t.Rows, []string{
			p.col, qs.Name,
			fmt.Sprintf("%d", len(queries)),
			fmt.Sprintf("%d", c.Lookups),
			fmt.Sprintf("%d", distinct),
			fmt.Sprintf("%.2f", ratio),
		})
	}
	return t, nil
}
