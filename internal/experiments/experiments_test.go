package experiments

import (
	"strings"
	"sync"
	"testing"
)

// Tests run at a reduced scale to keep the suite fast; they assert the
// robust qualitative shapes (orderings, A values, caching relations)
// that hold across scales. The full-scale reproduction is exercised by
// cmd/repro and the root benchmarks.
const testScale = 0.2

var (
	sharedLabOnce sync.Once
	sharedLabVal  *Lab
)

func sharedLab() *Lab {
	sharedLabOnce.Do(func() {
		sharedLabVal = NewLab(testScale)
	})
	return sharedLabVal
}

func TestCollectionBuildAndMemoization(t *testing.T) {
	l := sharedLab()
	a, err := l.Collection("CACM")
	if err != nil {
		t.Fatal(err)
	}
	b, err := l.Collection("CACM")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("collection not memoized")
	}
	if a.Stats.Records == 0 || a.Stats.BTreeBytes == 0 || a.Stats.MnemeBytes == 0 {
		t.Fatalf("build stats = %+v", a.Stats)
	}
	if a.MaxList <= 0 {
		t.Fatalf("MaxList = %d", a.MaxList)
	}
	if _, err := l.Collection("nope"); err == nil {
		t.Fatal("unknown collection accepted")
	}
}

func TestPlanForHeuristics(t *testing.T) {
	b := &Built{MaxList: 100_000}
	p := PlanFor(b)
	if p.LargeBytes != 300_000 {
		t.Fatalf("large = %d, want 3x max list", p.LargeBytes)
	}
	if p.MediumBytes != 27_000 {
		t.Fatalf("medium = %d, want 9%% of large", p.MediumBytes)
	}
	if p.SmallBytes != 3*4096 {
		t.Fatalf("small = %d, want 3 segments", p.SmallBytes)
	}
	// The CACM rule: medium never below 3 medium segments.
	b = &Built{MaxList: 1000}
	p = PlanFor(b)
	if p.MediumBytes != 3*8192 {
		t.Fatalf("medium floor = %d", p.MediumBytes)
	}
}

func TestRunMemoizedAndDeterministic(t *testing.T) {
	l := sharedLab()
	r1, err := l.Run("CACM", 0, SysBTree)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := l.Run("CACM", 0, SysBTree)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("run not memoized")
	}
	// A fresh run reproduces the counters exactly (determinism).
	r3, err := l.RunFresh("CACM", 0, SysBTree)
	if err != nil {
		t.Fatal(err)
	}
	if r3.IO != r1.IO || r3.Lookups != r1.Lookups || r3.Postings != r1.Postings {
		t.Fatalf("fresh run differs: %+v vs %+v", r3.IO, r1.IO)
	}
	if _, err := l.Run("CACM", 9, SysBTree); err == nil {
		t.Fatal("bad query set accepted")
	}
	if _, err := l.Run("CACM", 0, System(9)); err == nil {
		t.Fatal("bad system accepted")
	}
}

// TestPaperShapeOrdering asserts the headline result: the B-tree version
// is slowest and Mneme-with-cache fastest, with the system+I/O gap
// larger than the wall-clock gap.
func TestPaperShapeOrdering(t *testing.T) {
	l := sharedLab()
	for _, p := range matrix() {
		bt, err := l.Run(p.col, p.qs, SysBTree)
		if err != nil {
			t.Fatal(err)
		}
		nc, err := l.Run(p.col, p.qs, SysMnemeNoCache)
		if err != nil {
			t.Fatal(err)
		}
		c, err := l.Run(p.col, p.qs, SysMnemeCache)
		if err != nil {
			t.Fatal(err)
		}
		if !(c.SysIO < bt.SysIO) {
			t.Errorf("%s/%s: Mneme-cache sys+io %v !< B-tree %v", p.col, bt.QuerySet, c.SysIO, bt.SysIO)
		}
		if !(c.SysIO <= nc.SysIO) {
			t.Errorf("%s/%s: caching made sys+io worse: %v vs %v", p.col, bt.QuerySet, c.SysIO, nc.SysIO)
		}
		if !(c.Wall < bt.Wall) {
			t.Errorf("%s/%s: Mneme-cache wall %v !< B-tree %v", p.col, bt.QuerySet, c.Wall, bt.Wall)
		}
		// User CPU is identical across versions (same engine work).
		if bt.UserCPU != nc.UserCPU || nc.UserCPU != c.UserCPU {
			t.Errorf("%s/%s: user CPU differs across versions", p.col, bt.QuerySet)
		}
		// Relative improvement is larger for sys+io than wall clock.
		wImp := float64(bt.Wall-c.Wall) / float64(bt.Wall)
		sImp := float64(bt.SysIO-c.SysIO) / float64(bt.SysIO)
		if sImp <= wImp {
			t.Errorf("%s/%s: sys+io improvement %.2f not larger than wall %.2f", p.col, bt.QuerySet, sImp, wImp)
		}
	}
}

// TestTable5Shapes asserts the paper's I/O statistics relations.
func TestTable5Shapes(t *testing.T) {
	l := sharedLab()
	for _, p := range matrix() {
		bt, _ := l.Run(p.col, p.qs, SysBTree)
		nc, _ := l.Run(p.col, p.qs, SysMnemeNoCache)
		c, _ := l.Run(p.col, p.qs, SysMnemeCache)
		// "Mneme ... requires close to 1 file access per record lookup."
		if nc.A() != 1.0 {
			t.Errorf("%s/%s: Mneme no-cache A = %.3f, want exactly 1", p.col, nc.QuerySet, nc.A())
		}
		// "every record lookup requires more than one disk access" for
		// the B-tree; the baseline exceeds 1.5 accesses per lookup.
		if bt.A() <= 1.5 {
			t.Errorf("%s/%s: B-tree A = %.3f, want > 1.5", p.col, bt.QuerySet, bt.A())
		}
		// Record caching drops A below 1.
		if c.A() >= 1.0 {
			t.Errorf("%s/%s: Mneme cache A = %.3f, want < 1", p.col, c.QuerySet, c.A())
		}
		// The B-tree reads the most disk blocks.
		if bt.IO.DiskReads < nc.IO.DiskReads {
			t.Errorf("%s/%s: B-tree I %d < Mneme I %d", p.col, bt.QuerySet, bt.IO.DiskReads, nc.IO.DiskReads)
		}
		// Caching never increases bytes read.
		if c.IO.BytesRead > nc.IO.BytesRead {
			t.Errorf("%s/%s: caching increased B: %d > %d", p.col, c.QuerySet, c.IO.BytesRead, nc.IO.BytesRead)
		}
	}
	// CACM: "the Mneme version reads substantially more bytes from the
	// file ... because the CACM queries generate more activity in the
	// small and medium object pools, which have multiple objects
	// clustered in physical segments."
	bt, _ := l.Run("CACM", 0, SysBTree)
	nc, _ := l.Run("CACM", 0, SysMnemeNoCache)
	if nc.IO.BytesRead <= bt.IO.BytesRead {
		t.Errorf("CACM: Mneme bytes %d not greater than B-tree %d", nc.IO.BytesRead, bt.IO.BytesRead)
	}
}

// TestABTreeGrowsWithCollection asserts the height effect: "This problem
// gets worse as the file grows and the height of the index tree
// increases."
func TestABTreeGrowsWithCollection(t *testing.T) {
	l := sharedLab()
	cacm, _ := l.Run("CACM", 0, SysBTree)
	tip, _ := l.Run("TIPSTER", 0, SysBTree)
	if tip.A() <= cacm.A() {
		t.Errorf("B-tree A did not grow: CACM %.2f vs TIPSTER %.2f", cacm.A(), tip.A())
	}
}

func TestTable6HitRates(t *testing.T) {
	l := sharedLab()
	r, err := l.Run("TIPSTER", 0, SysMnemeCache)
	if err != nil {
		t.Fatal(err)
	}
	lg := r.Buffers["large"]
	md := r.Buffers["medium"]
	if lg.Refs == 0 || md.Refs == 0 {
		t.Fatalf("no pool traffic: %+v", r.Buffers)
	}
	if lg.HitRate() <= 0 || lg.HitRate() >= 1 {
		t.Fatalf("large hit rate = %.3f", lg.HitRate())
	}
	// Small object access is minor relative to medium and large pools.
	if sm := r.Buffers["small"]; sm.Refs > md.Refs/2 || sm.Refs > lg.Refs/2 {
		t.Fatalf("small pool refs %d unexpectedly high (md %d, lg %d)", sm.Refs, md.Refs, lg.Refs)
	}
}

func TestTablesRender(t *testing.T) {
	l := sharedLab()
	tables, err := l.AllTables()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 6 {
		t.Fatalf("tables = %d", len(tables))
	}
	for i, tb := range tables {
		s := tb.String()
		if !strings.Contains(s, "Table") || len(tb.Rows) == 0 {
			t.Fatalf("table %d malformed:\n%s", i+1, s)
		}
		// Every row has as many cells as the header.
		for _, row := range tb.Rows {
			if len(row) != len(tb.Header) {
				t.Fatalf("table %d: row width %d != header %d", i+1, len(row), len(tb.Header))
			}
		}
	}
	// Tables 3-5 carry the full seven-row matrix.
	for _, idx := range []int{2, 3, 4} {
		if len(tables[idx].Rows) != 7 {
			t.Fatalf("table %d has %d rows, want 7", idx+1, len(tables[idx].Rows))
		}
	}
}

func TestFigure1Shape(t *testing.T) {
	l := sharedLab()
	f, err := l.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 2 {
		t.Fatalf("series = %d", len(f.Series))
	}
	rec, bytes := f.Series[0].Points, f.Series[1].Points
	// Both cumulative curves are non-decreasing and end at 100%.
	for _, pts := range [][]Point{rec, bytes} {
		for i := 1; i < len(pts); i++ {
			if pts[i].Y < pts[i-1].Y-1e-9 {
				t.Fatal("cumulative curve decreases")
			}
		}
		if last := pts[len(pts)-1].Y; last < 99.999 {
			t.Fatalf("curve ends at %.2f%%", last)
		}
	}
	// The paper's key observation: where half the records are counted,
	// they hold only a small fraction of the file bytes.
	for i, p := range rec {
		if p.Y >= 50 {
			if bytes[i].Y > 20 {
				t.Fatalf("at 50%% of records, %.1f%% of bytes (want small)", bytes[i].Y)
			}
			break
		}
	}
	if !strings.Contains(f.CSV(), "series,x,y") {
		t.Fatal("CSV header missing")
	}
	if out := f.ASCII(60, 12); !strings.Contains(out, "Figure 1") {
		t.Fatal("ASCII render missing title")
	}
}

func TestFigure2Shape(t *testing.T) {
	l := sharedLab()
	f, err := l.Figure2()
	if err != nil {
		t.Fatal(err)
	}
	pts := f.Series[0].Points
	if len(pts) < 3 {
		t.Fatalf("too few buckets: %d", len(pts))
	}
	// Uses concentrate on large lists: the biggest-size half of the
	// buckets must hold most accesses.
	var small, large float64
	for i, p := range pts {
		if i < len(pts)/2 {
			small += p.Y
		} else {
			large += p.Y
		}
	}
	if large <= small {
		t.Fatalf("accesses not concentrated on large lists: %f vs %f", small, large)
	}
}

func TestFigure3Shape(t *testing.T) {
	l := sharedLab()
	f, err := l.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	pts := f.Series[0].Points
	if len(pts) < 6 {
		t.Fatalf("sweep points = %d", len(pts))
	}
	first, last := pts[0].Y, pts[len(pts)-1].Y
	if last <= first {
		t.Fatalf("hit rate did not grow with buffer size: %.3f -> %.3f", first, last)
	}
	// Diminishing returns: the second half of the sweep gains less than
	// the first half.
	mid := pts[len(pts)/2].Y
	if (mid - first) <= (last - mid) {
		t.Fatalf("no knee: first-half gain %.3f, second-half gain %.3f", mid-first, last-mid)
	}
	// Buffer sizes ascend.
	for i := 1; i < len(pts); i++ {
		if pts[i].X <= pts[i-1].X {
			t.Fatal("sweep sizes not ascending")
		}
	}
}

func TestAblationReserve(t *testing.T) {
	l := sharedLab()
	tb, err := l.AblationReserve("Legal", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	if !strings.Contains(tb.String(), "reserve") {
		t.Fatal("table missing variant label")
	}
}

func TestAblationSinglePool(t *testing.T) {
	l := sharedLab()
	tb, err := l.AblationSinglePool("CACM", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestAblationSegmentSize(t *testing.T) {
	l := sharedLab()
	tb, err := l.AblationSegmentSize("CACM", 0, []int{4096, 8192})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestAblationBufferPolicy(t *testing.T) {
	l := sharedLab()
	tb, err := l.AblationBufferPolicy("CACM", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	if !strings.Contains(tb.String(), "clock") {
		t.Fatal("policy rows missing")
	}
}

func TestAblationChunkedLists(t *testing.T) {
	l := sharedLab()
	tb, err := l.AblationChunkedLists("CACM", 0, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestAnalyzeCollections(t *testing.T) {
	l := sharedLab()
	tb, err := l.AnalyzeCollections()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Compression must be substantial (paper: ~60%) for every
	// collection: encoded is much smaller than the raw integer vector.
	for _, row := range tb.Rows {
		comp := row[len(row)-1]
		if comp == "0%" {
			t.Fatalf("%s: no compression measured", row[0])
		}
	}
}

func TestAnalyzeQueryRepetition(t *testing.T) {
	l := sharedLab()
	tb, err := l.AnalyzeQueryRepetition()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 7 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Every set shows repetition: lookups exceed distinct terms.
	for _, row := range tb.Rows {
		if row[5] <= "1.00" && len(row[5]) == 4 {
			t.Fatalf("%s/%s: no repetition (ratio %s)", row[0], row[1], row[5])
		}
	}
}
