package experiments

import (
	"fmt"
	"sort"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/lexicon"
	"repro/internal/obs"
	"repro/internal/postings"
	"repro/internal/vfs"
)

// CodecAblationSchema versions the ABLATION_codec.json format written
// by `repro -ablate-codec` (the `make ablate` target).
const CodecAblationSchema = "repro/ablation_codec/v1"

// CodecCell is one (posting codec, cache on/off) measurement of the
// codec ablation matrix. Latencies are simulated microseconds over the
// repeat pass of the query set — the same deterministic cost model as
// the bench rows — so the matrix is byte-stable across runs.
type CodecCell struct {
	Codec string `json:"codec"`
	Cache bool   `json:"cache"`
	// Per-format record counts of the build: how many inverted lists
	// the codec policy stored as v1 streams, v2 blocks, and v3 bitmaps.
	V1Lists int `json:"v1_lists"`
	V2Lists int `json:"v2_lists"`
	V3Lists int `json:"v3_lists"`
	// ListKB is the total encoded inverted-list size; the adaptive
	// codec's bitmap upgrade shows up here as dense lists shrink.
	ListKB  int64 `json:"list_kb"`
	StoreKB int64 `json:"store_kb"`
	// Repeat-pass I/O and simulated query-stage latency quantiles.
	DiskReads  int64   `json:"disk_reads"`
	BytesRead  int64   `json:"bytes_read"`
	QueryP50us float64 `json:"query_p50_us"`
	QueryP95us float64 `json:"query_p95_us"`
	// Stats is present on the cache-on cells.
	Stats *core.CacheStats `json:"cache_stats,omitempty"`
}

// CodecAblation is the full matrix (ABLATION_codec.json).
type CodecAblation struct {
	Schema     string      `json:"schema"`
	Collection string      `json:"collection"`
	QuerySet   string      `json:"query_set"`
	Scale      float64     `json:"scale"`
	Cells      []CodecCell `json:"cells"`
}

// codecNames orders the matrix's codec axis.
var codecAblationCodecs = []struct {
	name  string
	codec postings.Codec
}{
	{"v1", postings.CodecV1},
	{"v2", postings.CodecV2},
	{"auto", postings.CodecAuto},
}

// buildCodecVariant builds a Mneme-only copy of the collection under
// one posting codec policy, on its own file system.
func (l *Lab) buildCodecVariant(colName string, codec postings.Codec) (*Built, error) {
	col, ok := collection.ByName(colName, l.Scale)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown collection %q", colName)
	}
	fs := vfs.New(vfs.Options{BlockSize: vfs.DefaultBlockSize, OSCacheBytes: l.OSCacheBytes})
	stream := col.Stream()
	cfg := core.MnemeConfig(core.BufferPlan{})
	for i := range cfg.Pools {
		cfg.Pools[i].BufferBytes = 1 << 20
	}
	stats, err := core.Build(fs, col.Name, stream, core.BuildOptions{
		Analyzer:    analyzer(),
		Backends:    []core.BackendKind{core.BackendMneme},
		MnemeConfig: &cfg,
		Codec:       codec,
	})
	if err != nil {
		return nil, err
	}
	b := &Built{Col: col, FS: fs, Stats: stats, TextBytes: stream.TextBytes()}
	b.MaxList = maxListBytesMneme(fs, col.Name)
	return b, nil
}

// countFormats classifies every stored record of the build by posting
// format — the direct proof of which lists the codec policy upgraded.
func countFormats(eng *core.Engine) (v1, v2, v3 int, err error) {
	var inner error
	eng.Dictionary().Range(func(entry *lexicon.Entry) bool {
		rec, ferr := eng.Backend().Fetch(entry.Ref)
		if ferr != nil {
			inner = ferr
			return false
		}
		switch {
		case postings.IsV3(rec):
			v3++
		case postings.IsV2(rec):
			v2++
		default:
			v1++
		}
		return true
	})
	return v1, v2, v3, inner
}

// codecCell measures one matrix cell: warm pass over the query set,
// then a traced repeat pass whose query-stage simulated latency and
// I/O the cell reports.
func (l *Lab) codecCell(b *Built, qsIdx int, codecName string, cache bool) (CodecCell, error) {
	costs := l.Model.Costs()
	qs := b.Col.QuerySets[qsIdx]
	queries := b.Col.GenQueries(qs)
	opts := []core.Option{core.WithAnalyzer(analyzer()), core.WithPlan(PlanFor(b))}
	if cache {
		opts = append(opts,
			core.WithResultCache(BenchResultCacheEntries),
			core.WithBlockCache(BenchBlockCacheMB))
	}
	eng, err := core.Open(b.FS, b.Col.Name, core.BackendMneme, opts...)
	if err != nil {
		return CodecCell{}, err
	}
	defer eng.Close()

	cell := CodecCell{
		Codec:   codecName,
		Cache:   cache,
		ListKB:  b.Stats.ListBytes / 1024,
		StoreKB: b.Stats.MnemeBytes / 1024,
	}
	if cell.V1Lists, cell.V2Lists, cell.V3Lists, err = countFormats(eng); err != nil {
		return CodecCell{}, err
	}

	b.FS.Chill()
	for _, q := range queries {
		if _, err := eng.Run(nil, core.Request{Query: q.Text}); err != nil {
			return CodecCell{}, fmt.Errorf("experiments: codec cell %s warm: query %s: %w", codecName, q.ID, err)
		}
	}
	eng.ResetCounters()
	eng.Backend().ResetBufferStats()
	before := b.FS.Stats()
	var us []float64
	for _, q := range queries {
		_, tr, err := eng.TraceRun(core.Request{Query: q.Text})
		if err != nil {
			return CodecCell{}, fmt.Errorf("experiments: codec cell %s: query %s: %w", codecName, q.ID, err)
		}
		totals := tr.StageTotals()
		ns := costs.QueryNS
		for _, st := range obs.Stages() {
			tot := totals[st]
			ns += costs.SimNS(&tot.Counts)
		}
		us = append(us, float64(ns)/1e3)
	}
	delta := b.FS.Stats().Sub(before)
	cell.DiskReads = delta.DiskReads
	cell.BytesRead = delta.BytesRead
	sort.Float64s(us)
	cell.QueryP50us = quantile(us, 0.50)
	cell.QueryP95us = quantile(us, 0.95)
	if cache {
		cell.Stats = eng.Snapshot().Cache
	}
	return cell, nil
}

// AblationCodecMatrix runs the full codec × cache matrix: the same
// collection built under each encoding policy, each queried with the
// hot-path caches off and on, measuring the repeat pass. The matrix is
// the PR's ablation artifact (ABLATION_codec.json): the v2-vs-auto
// columns isolate what the bitmap upgrade buys on dense lists, the
// off-vs-on rows what the caches buy on repeats.
func (l *Lab) AblationCodecMatrix(colName string, qsIdx int) (*CodecAblation, error) {
	out := &CodecAblation{Schema: CodecAblationSchema, Collection: colName, Scale: l.Scale}
	for _, c := range codecAblationCodecs {
		b, err := l.buildCodecVariant(colName, c.codec)
		if err != nil {
			return nil, err
		}
		out.QuerySet = b.Col.QuerySets[qsIdx].Name
		for _, cache := range []bool{false, true} {
			cell, err := l.codecCell(b, qsIdx, c.name, cache)
			if err != nil {
				return nil, err
			}
			out.Cells = append(out.Cells, cell)
		}
	}
	return out, nil
}

// AblationCodec renders the matrix as a table for the ablation report.
func (l *Lab) AblationCodec(colName string, qsIdx int) (*Table, *CodecAblation, error) {
	m, err := l.AblationCodecMatrix(colName, qsIdx)
	if err != nil {
		return nil, nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Ablation: posting codec x hot-path caches (%s, query set %s)", colName, m.QuerySet),
		Header: []string{"Codec", "Cache", "v1/v2/v3", "ListKB", "I", "B(KB)", "Qp50(µs)", "Qp95(µs)"},
		Note:   "auto upgrades dense lists (df·4 ≥ span) to v3 bitmaps; cache rows measure the repeat-query pass.",
	}
	for _, c := range m.Cells {
		onOff := "off"
		if c.Cache {
			onOff = "on"
		}
		t.Rows = append(t.Rows, []string{
			c.Codec,
			onOff,
			fmt.Sprintf("%d/%d/%d", c.V1Lists, c.V2Lists, c.V3Lists),
			fmt.Sprintf("%d", c.ListKB),
			fmt.Sprintf("%d", c.DiskReads),
			kb(c.BytesRead),
			fmt.Sprintf("%.1f", c.QueryP50us),
			fmt.Sprintf("%.1f", c.QueryP95us),
		})
	}
	return t, m, nil
}
