package experiments

import (
	"fmt"
	"strings"
	"time"
)

// Table is a formatted experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Note   string
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	sb.WriteString(t.Title)
	sb.WriteByte('\n')
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	if t.Note != "" {
		sb.WriteString(t.Note)
		sb.WriteByte('\n')
	}
	return sb.String()
}

func kb(n int64) string { return fmt.Sprintf("%d", (n+1023)/1024) }
func secs(d time.Duration) string {
	return fmt.Sprintf("%.2f", d.Seconds())
}

// Table1 reproduces the collection statistics table: document counts,
// collection sizes, record counts, and index file sizes for both
// managers, with the paper's original numbers alongside.
func (l *Lab) Table1() (*Table, error) {
	t := &Table{
		Title: "Table 1: Document collection statistics. All sizes are in Kbytes.",
		Header: []string{"Collection", "Docs", "Size", "Records", "B-Tree", "Mneme",
			"(paper: Docs", "Records)"},
		Note: "Paper columns show the original corpora; measured columns are the scaled synthetic models.",
	}
	for _, c := range collectionNames() {
		b, err := l.Collection(c)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			c,
			fmt.Sprintf("%d", b.Stats.Docs),
			kb(b.TextBytes),
			fmt.Sprintf("%d", b.Stats.Records),
			kb(b.Stats.BTreeBytes),
			kb(b.Stats.MnemeBytes),
			fmt.Sprintf("%d", b.Col.PaperDocs),
			fmt.Sprintf("%d", b.Col.PaperRecords),
		})
	}
	return t, nil
}

func collectionNames() []string {
	return []string{"CACM", "Legal", "TIPSTER1", "TIPSTER"}
}

// Table2 reproduces the Mneme buffer-size table computed by the paper's
// heuristics.
func (l *Lab) Table2() (*Table, error) {
	t := &Table{
		Title:  "Table 2: Mneme buffer sizes for the different collections. All sizes are in Kbytes.",
		Header: []string{"Collection", "Small", "Medium", "Large"},
		Note:   "large = 3 x largest inverted list; medium = 9% of large (min 3 segments); small = 3 segments.",
	}
	for _, c := range collectionNames() {
		b, err := l.Collection(c)
		if err != nil {
			return nil, err
		}
		p := PlanFor(b)
		t.Rows = append(t.Rows, []string{
			c,
			fmt.Sprintf("%.1f", float64(p.SmallBytes)/1024),
			fmt.Sprintf("%.1f", float64(p.MediumBytes)/1024),
			fmt.Sprintf("%.1f", float64(p.LargeBytes)/1024),
		})
	}
	return t, nil
}

// timeTable renders Tables 3 and 4 (same matrix, different metric).
func (l *Lab) timeTable(title string, metric func(*RunResult) time.Duration) (*Table, error) {
	t := &Table{
		Title:  title,
		Header: []string{"Collection", "Query Set", "B-Tree", "Mneme, No Cache", "Mneme, Cache", "Improvement"},
	}
	for _, p := range matrix() {
		var vals [3]time.Duration
		var row []string
		for i, sys := range Systems {
			r, err := l.Run(p.col, p.qs, sys)
			if err != nil {
				return nil, err
			}
			vals[i] = metric(r)
			if i == 0 {
				row = append(row, p.col, r.QuerySet)
			}
			row = append(row, secs(vals[i]))
		}
		imp := 0.0
		if vals[0] > 0 {
			imp = float64(vals[0]-vals[2]) / float64(vals[0])
		}
		row = append(row, fmt.Sprintf("%.0f%%", imp*100))
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Table3 reproduces the wall-clock time comparison.
func (l *Lab) Table3() (*Table, error) {
	return l.timeTable(
		"Table 3: Wall-clock times. All times are in seconds (1993 DECstation model).",
		func(r *RunResult) time.Duration { return r.Wall })
}

// Table4 reproduces the system CPU plus I/O time comparison — "a more
// precise measure of the portion of the system that varies across the
// different versions".
func (l *Lab) Table4() (*Table, error) {
	return l.timeTable(
		"Table 4: System CPU plus I/O times. All times are in seconds (1993 DECstation model).",
		func(r *RunResult) time.Duration { return r.SysIO })
}

// Table5 reproduces the I/O statistics: I = 8 Kbyte blocks read from
// disk, A = average file accesses per record lookup, B = Kbytes read
// from the inverted file.
func (l *Lab) Table5() (*Table, error) {
	t := &Table{
		Title: "Table 5: I/O statistics. I = I/O inputs, A = ave. file accesses / record lookup, B = total Kbytes read.",
		Header: []string{"Collection", "QS",
			"I(bt)", "A(bt)", "B(bt)",
			"I(mn-nc)", "A(mn-nc)", "B(mn-nc)",
			"I(mn-c)", "A(mn-c)", "B(mn-c)"},
	}
	for _, p := range matrix() {
		var row []string
		for i, sys := range Systems {
			r, err := l.Run(p.col, p.qs, sys)
			if err != nil {
				return nil, err
			}
			if i == 0 {
				row = append(row, p.col, r.QuerySet)
			}
			row = append(row,
				fmt.Sprintf("%d", r.IO.DiskReads),
				fmt.Sprintf("%.2f", r.A()),
				kb(r.IO.BytesRead))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Table6 reproduces the buffer hit rates for the Mneme-with-cache runs.
func (l *Lab) Table6() (*Table, error) {
	t := &Table{
		Title: "Table 6: Buffer hit rates for the query sets (Mneme, Cache).",
		Header: []string{"Collection", "QS",
			"SmRefs", "SmHits", "SmRate",
			"MdRefs", "MdHits", "MdRate",
			"LgRefs", "LgHits", "LgRate"},
	}
	for _, p := range matrix() {
		r, err := l.Run(p.col, p.qs, SysMnemeCache)
		if err != nil {
			return nil, err
		}
		row := []string{p.col, r.QuerySet}
		for _, pool := range []string{"small", "medium", "large"} {
			bs := r.Buffers[pool]
			row = append(row,
				fmt.Sprintf("%d", bs.Refs),
				fmt.Sprintf("%d", bs.Hits),
				fmt.Sprintf("%.2f", bs.HitRate()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// AllTables regenerates Tables 1-6 in order.
func (l *Lab) AllTables() ([]*Table, error) {
	var out []*Table
	for _, fn := range []func() (*Table, error){
		l.Table1, l.Table2, l.Table3, l.Table4, l.Table5, l.Table6,
	} {
		t, err := fn()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}
