package experiments

import (
	"strings"
	"testing"
)

// serveReport builds a one-row serve bench report.
func serveReport(qps, shed float64, errs int) *BenchReport {
	return &BenchReport{
		Schema: ServeBenchSchema,
		Scale:  0.05,
		Rows: []BenchRow{{
			Backend: "serve", Collection: "CACM", QuerySet: "1", Queries: 100,
			Stages: []BenchStage{{Stage: "http", P50us: 300, P95us: 900, P99us: 1500}},
			Serve:  &ServeStats{Mode: "closed", Requests: 100, Seconds: 1, QPS: qps, ShedRate: shed, Errors: errs},
		}},
	}
}

// TestCompareBenchServeGate: the serve block extends the shared gate —
// QPS floor, shed-rate ceiling, zero transport errors, and the block
// itself may not disappear.
func TestCompareBenchServeGate(t *testing.T) {
	base := serveReport(1000, 0.01, 0)

	if err := CompareBench(base, serveReport(950, 0.02, 0), 0.5); err != nil {
		t.Fatalf("in-tolerance serve run rejected: %v", err)
	}

	if err := CompareBench(base, serveReport(400, 0.01, 0), 0.5); err == nil {
		t.Fatal("QPS collapse below baseline*(1-tol) passed the gate")
	} else if !strings.Contains(err.Error(), "QPS") {
		t.Fatalf("QPS regression not named: %v", err)
	}

	if err := CompareBench(base, serveReport(1000, 0.9, 0), 0.5); err == nil {
		t.Fatal("shed-rate explosion passed the gate")
	} else if !strings.Contains(err.Error(), "shed rate") {
		t.Fatalf("shed regression not named: %v", err)
	}

	if err := CompareBench(base, serveReport(1000, 0.01, 3), 0.5); err == nil {
		t.Fatal("transport errors passed the gate")
	} else if !strings.Contains(err.Error(), "transport errors") {
		t.Fatalf("errors not named: %v", err)
	}

	cur := serveReport(1000, 0.01, 0)
	cur.Rows[0].Serve = nil
	if err := CompareBench(base, cur, 0.5); err == nil {
		t.Fatal("missing serve block passed the gate")
	}

	// The stage gate still applies to the http stage of serve rows.
	slow := serveReport(1000, 0.01, 0)
	slow.Rows[0].Stages[0].P95us = 5000
	if err := CompareBench(base, slow, 0.5); err == nil {
		t.Fatal("p95 regression on the http stage passed the gate")
	}
}
