package experiments

import (
	"strings"
	"testing"
)

func TestASCIIPlotRendering(t *testing.T) {
	f := &Figure{
		Title:  "test figure",
		XLabel: "x",
		YLabel: "y",
		Series: []Series{
			{Name: "one", Points: []Point{{1, 1}, {2, 4}, {3, 9}}},
			{Name: "two", Points: []Point{{1, 2}, {2, 3}}},
		},
	}
	out := f.ASCII(40, 10)
	if !strings.Contains(out, "test figure") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "* = one") || !strings.Contains(out, "o = two") {
		t.Fatal("legend missing")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatal("markers missing")
	}
	// Log-x variant labels the axis accordingly.
	f.LogX = true
	out = f.ASCII(40, 10)
	if !strings.Contains(out, "log scale") {
		t.Fatal("log-scale label missing")
	}
	// Tiny dimensions are clamped, not crashed.
	if out := f.ASCII(1, 1); !strings.Contains(out, "test figure") {
		t.Fatal("clamped render failed")
	}
}

func TestASCIIPlotEmptyAndDegenerate(t *testing.T) {
	empty := &Figure{Title: "empty"}
	if out := empty.ASCII(40, 10); !strings.Contains(out, "no data") {
		t.Fatalf("empty figure rendered: %q", out)
	}
	single := &Figure{
		Title:  "single",
		Series: []Series{{Name: "s", Points: []Point{{5, 5}}}},
	}
	if out := single.ASCII(40, 10); !strings.Contains(out, "no data") {
		// A single x value has zero range; the renderer reports no data
		// rather than dividing by zero.
		t.Fatalf("degenerate figure rendered: %q", out)
	}
	flat := &Figure{
		Title:  "flat",
		Series: []Series{{Name: "s", Points: []Point{{1, 3}, {2, 3}}}},
	}
	if out := flat.ASCII(40, 10); !strings.Contains(out, "flat") {
		t.Fatal("flat series failed to render")
	}
}

func TestFigureCSV(t *testing.T) {
	f := &Figure{
		Series: []Series{
			{Name: "a", Points: []Point{{1, 2}}},
			{Name: "b", Points: []Point{{3, 4.5}}},
		},
	}
	csv := f.CSV()
	want := "series,x,y\na,1,2\nb,3,4.5\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}

func TestLogSpace(t *testing.T) {
	pts := logSpace(1, 1000, 4)
	if len(pts) != 4 {
		t.Fatalf("len = %d", len(pts))
	}
	if pts[0] != 1 || pts[3] < 999 || pts[3] > 1001 {
		t.Fatalf("endpoints = %v", pts)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i] <= pts[i-1] {
			t.Fatal("not increasing")
		}
	}
	// Degenerate range collapses to one point.
	if got := logSpace(5, 5, 10); len(got) != 1 || got[0] != 5 {
		t.Fatalf("degenerate = %v", got)
	}
}

func TestTableStringAlignment(t *testing.T) {
	tb := &Table{
		Title:  "T",
		Header: []string{"a", "long-header"},
		Rows:   [][]string{{"wide-cell-content", "x"}},
		Note:   "note line",
	}
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, row, note
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	// Header and row columns align: the second column starts at the
	// same offset in both.
	hdr, row := lines[1], lines[3]
	if strings.Index(hdr, "long-header") != strings.Index(row, "x") {
		t.Fatalf("misaligned:\n%s\n%s", hdr, row)
	}
}
