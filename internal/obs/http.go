package obs

import (
	"net/http"
	"time"
)

// HTTPMetrics instruments an HTTP serving layer through a Registry:
// one total-request counter, per-status-class counters (http_2xx_total
// … http_5xx_total), and a request-latency histogram in nanoseconds.
// The handles are resolved once at construction, so the per-request
// cost is a few atomic adds — same budget as the engine's own metrics.
type HTTPMetrics struct {
	requests *Counter
	byClass  [6]*Counter
	latency  *Histogram
	inFlight *Counter // started - finished; sampled, not a high-water mark
	finished *Counter
}

// NewHTTPMetrics registers the HTTP metric family in reg.
func NewHTTPMetrics(reg *Registry) *HTTPMetrics {
	m := &HTTPMetrics{
		requests: reg.Counter("http_requests_total"),
		latency:  reg.Histogram("http_request_ns", ExpBuckets(16384, 4, 14)),
		inFlight: reg.Counter("http_in_flight"),
		finished: reg.Counter("http_finished_total"),
	}
	names := [6]string{"", "http_1xx_total", "http_2xx_total",
		"http_3xx_total", "http_4xx_total", "http_5xx_total"}
	for i := 1; i < len(names); i++ {
		m.byClass[i] = reg.Counter(names[i])
	}
	return m
}

// Observe records one finished request.
func (m *HTTPMetrics) Observe(status int, d time.Duration) {
	m.requests.Add(1)
	m.finished.Add(1)
	if c := status / 100; c >= 1 && c <= 5 {
		m.byClass[c].Add(1)
	}
	m.latency.Observe(int64(d))
}

// statusRecorder captures the status code a handler writes, defaulting
// to 200 when the handler never calls WriteHeader explicitly.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Middleware wraps h so every request's status class and latency land
// in the metrics.
func (m *HTTPMetrics) Middleware(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		m.inFlight.Add(1)
		defer m.inFlight.Add(-1)
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h.ServeHTTP(rec, req)
		m.Observe(rec.status, time.Since(start))
	})
}
