package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically adjustable atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous level (memtable bytes, open segments):
// unlike a Counter it is set, not accumulated, and may go down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram of int64 observations
// (latencies in nanoseconds, sizes in bytes). Observations are two
// atomic adds plus a binary search over the bounds — no locks — so the
// hot path stays cheap under concurrent searchers.
type Histogram struct {
	bounds []int64 // ascending inclusive upper bounds; implicit +Inf bucket follows
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
}

// NewHistogram creates a histogram over the given ascending inclusive
// upper bounds. An overflow bucket catches values above the last bound.
func NewHistogram(bounds []int64) *Histogram {
	b := append([]int64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// ExpBuckets returns n bounds growing geometrically from start by
// factor: the standard shape for latency and size distributions.
func ExpBuckets(start, factor int64, n int) []int64 {
	out := make([]int64, 0, n)
	v := start
	for i := 0; i < n; i++ {
		out = append(out, v)
		v *= factor
	}
	return out
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Quantile estimates the q-quantile (0 < q <= 1) by linear
// interpolation within the selected bucket. Values in the overflow
// bucket report the last bound (the histogram cannot see past it).
// With no observations it returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	var cum float64
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if cum+n >= target && n > 0 {
			var lo, hi float64
			if i == 0 {
				lo, hi = 0, float64(h.bounds[0])
			} else if i == len(h.bounds) {
				return float64(h.bounds[len(h.bounds)-1])
			} else {
				lo, hi = float64(h.bounds[i-1]), float64(h.bounds[i])
			}
			frac := (target - cum) / n
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return float64(h.bounds[len(h.bounds)-1])
}

// Registry names counters and histograms. Lookup of an existing metric
// takes a shared lock; the returned handles are then lock-free, so
// callers cache them in struct fields and pay nothing per event beyond
// the atomic adds.
type Registry struct {
	mu     sync.RWMutex
	ctrs   map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
	bounds map[string][]int64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		ctrs:   make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
		bounds: make(map[string][]int64),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.ctrs[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.ctrs[name]; ok {
		return c
	}
	c = &Counter{}
	r.ctrs[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use (later calls reuse the original bounds).
func (r *Registry) Histogram(name string, boundsIfNew []int64) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h = NewHistogram(boundsIfNew)
	r.hists[name] = h
	r.bounds[name] = h.bounds
	return h
}

// Reset zeroes every metric in place; handles held by callers stay
// valid.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.ctrs {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.hists {
		for i := range h.counts {
			h.counts[i].Store(0)
		}
		h.count.Store(0)
		h.sum.Store(0)
	}
}

// CounterSnap is one counter in a registry snapshot.
type CounterSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnap is one gauge in a registry snapshot.
type GaugeSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// BucketSnap is one non-empty histogram bucket: the inclusive upper
// bound (0 marks the overflow bucket) and its count.
type BucketSnap struct {
	LE    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistogramSnap is one histogram in a registry snapshot.
type HistogramSnap struct {
	Name    string       `json:"name"`
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	P50     float64      `json:"p50"`
	P95     float64      `json:"p95"`
	P99     float64      `json:"p99"`
	Buckets []BucketSnap `json:"buckets,omitempty"`
}

// RegistrySnapshot is a point-in-time copy of every metric, with
// deterministic ordering: counters and histograms each sorted by name,
// buckets in bound order. encoding/json preserves struct field and
// slice order, so the serialized form is stable for golden files and
// downstream tooling.
type RegistrySnapshot struct {
	Counters   []CounterSnap   `json:"counters,omitempty"`
	Gauges     []GaugeSnap     `json:"gauges,omitempty"`
	Histograms []HistogramSnap `json:"histograms,omitempty"`
}

// Snapshot captures the registry. Counters and histogram cells are
// read atomically; the snapshot as a whole is not one atomic cut.
func (r *Registry) Snapshot() RegistrySnapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var snap RegistrySnapshot
	for name, c := range r.ctrs {
		snap.Counters = append(snap.Counters, CounterSnap{Name: name, Value: c.Value()})
	}
	sort.Slice(snap.Counters, func(i, j int) bool { return snap.Counters[i].Name < snap.Counters[j].Name })
	for name, g := range r.gauges {
		snap.Gauges = append(snap.Gauges, GaugeSnap{Name: name, Value: g.Value()})
	}
	sort.Slice(snap.Gauges, func(i, j int) bool { return snap.Gauges[i].Name < snap.Gauges[j].Name })
	for name, h := range r.hists {
		hs := HistogramSnap{
			Name:  name,
			Count: h.Count(),
			Sum:   h.Sum(),
			P50:   h.Quantile(0.50),
			P95:   h.Quantile(0.95),
			P99:   h.Quantile(0.99),
		}
		for i := range h.counts {
			n := h.counts[i].Load()
			if n == 0 {
				continue
			}
			le := int64(0) // overflow bucket
			if i < len(h.bounds) {
				le = h.bounds[i]
			}
			hs.Buckets = append(hs.Buckets, BucketSnap{LE: le, Count: n})
		}
		snap.Histograms = append(snap.Histograms, hs)
	}
	sort.Slice(snap.Histograms, func(i, j int) bool { return snap.Histograms[i].Name < snap.Histograms[j].Name })
	return snap
}
