// Package obs is the observability substrate for the retrieval stack:
// a lock-cheap metrics registry (counters and fixed-bucket histograms,
// snapshot-able to JSON with deterministic field ordering) and a
// per-query trace that records span events — lexicon lookup, record
// fault-in per pool, buffer hit/miss, simulated-disk I/O, and inference
// scoring — as they flow through vfs, mneme, btree, core, and
// inference.
//
// The paper's entire argument rests on instrumentation: Tables 3-6
// report wall-clock, system+I/O time, file accesses per record lookup,
// and buffer hit rates for each backend. This package generalizes those
// end-of-run counters into per-stage visibility, so a query's cost can
// be attributed across the storage layers rather than observed only in
// aggregate.
//
// Recorders are threaded as plain fields that default to nil. Every
// instrumentation site guards with a nil check, so with tracing off the
// hot path costs one predictable branch and zero allocations — no
// interface dispatch, no time syscalls. The package imports only the
// standard library and sits below every other package in the repo.
package obs

// Stage classifies a trace span by the layer of the stack it measures.
type Stage uint8

const (
	// StageQuery is the root span of one query evaluation.
	StageQuery Stage = iota
	// StageLexicon is a hash-dictionary term lookup.
	StageLexicon
	// StageFetch is one inverted-list record fetch through the backend.
	StageFetch
	// StageFaultIn is a buffer miss loading a physical segment from the
	// file (Mneme); the span label names the pool.
	StageFaultIn
	// StageScore is inference-network evidence combination: the whole
	// evaluation at the top level, one nested span per query leaf.
	StageScore
	// StagePrune is MaxScore dynamic-pruning evaluation: scoring with
	// per-term upper bounds, where non-essential lists are skipped
	// rather than decoded. The pruned counterpart of StageScore.
	StagePrune
	numStages
)

// String names the stage for rendering and the bench JSON schema.
func (s Stage) String() string {
	switch s {
	case StageQuery:
		return "query"
	case StageLexicon:
		return "lexicon"
	case StageFetch:
		return "fetch"
	case StageFaultIn:
		return "fault_in"
	case StageScore:
		return "score"
	case StagePrune:
		return "prune"
	}
	return "?"
}

// Stages lists every span stage in declaration order.
func Stages() []Stage {
	return []Stage{StageQuery, StageLexicon, StageFetch, StageFaultIn, StageScore, StagePrune}
}

// EventKind identifies one counted trace event. Events are attributed
// to the innermost open span, so a disk read performed while faulting a
// segment in lands on that fault-in span.
type EventKind uint8

const (
	// EvFileAccess counts read system calls against the simulated file
	// system (the paper's "A" numerator).
	EvFileAccess EventKind = iota
	// EvDiskRead counts 8 Kbyte blocks read from the simulated disk
	// (the paper's "I").
	EvDiskRead
	// EvCacheHit counts block reads satisfied by the simulated OS cache.
	EvCacheHit
	// EvBytesRead counts bytes requested by reads (the paper's "B").
	EvBytesRead
	// EvFileWrite counts write system calls.
	EvFileWrite
	// EvDiskWrite counts blocks written to the simulated disk.
	EvDiskWrite
	// EvBytesWritten counts bytes passed to writes.
	EvBytesWritten
	// EvBufferHit counts Mneme record-buffer hits (label = pool).
	EvBufferHit
	// EvBufferMiss counts Mneme record-buffer misses (label = pool).
	EvBufferMiss
	// EvFaultInBytes counts segment bytes loaded on buffer misses.
	EvFaultInBytes
	// EvNodeRead counts uncached B-tree node page reads.
	EvNodeRead
	// EvLookup counts dictionary hits that became record fetches.
	EvLookup
	// EvPostings counts posting entries decoded and scored.
	EvPostings
	// NumEvents is the number of event kinds; it sizes Counts.
	NumEvents
)

// String names the event kind for rendering.
func (k EventKind) String() string {
	switch k {
	case EvFileAccess:
		return "file_accesses"
	case EvDiskRead:
		return "disk_reads"
	case EvCacheHit:
		return "cache_hits"
	case EvBytesRead:
		return "bytes_read"
	case EvFileWrite:
		return "file_writes"
	case EvDiskWrite:
		return "disk_writes"
	case EvBytesWritten:
		return "bytes_written"
	case EvBufferHit:
		return "buffer_hits"
	case EvBufferMiss:
		return "buffer_misses"
	case EvFaultInBytes:
		return "fault_in_bytes"
	case EvNodeRead:
		return "node_reads"
	case EvLookup:
		return "lookups"
	case EvPostings:
		return "postings"
	}
	return "?"
}

// Counts aggregates event totals, indexed by EventKind. A fixed array
// keeps span bookkeeping allocation-free.
type Counts [NumEvents]int64

// Add accumulates other into c.
func (c *Counts) Add(other *Counts) {
	for i := range c {
		c[i] += other[i]
	}
}

// IsZero reports whether no event was recorded.
func (c *Counts) IsZero() bool {
	for _, v := range c {
		if v != 0 {
			return false
		}
	}
	return true
}

// Recorder receives span boundaries and counted events from the
// instrumented layers. Implementations need not be safe for concurrent
// use: a recorder observes one query stream at a time (diagnostic
// tracing), and all hot paths leave their recorder fields nil when
// tracing is off.
type Recorder interface {
	// BeginSpan opens a child span of the innermost open span.
	BeginSpan(stage Stage, label string)
	// EndSpan closes the innermost open span.
	EndSpan()
	// Event adds v occurrences of kind to the innermost open span. The
	// label annotates per-pool events and must be pre-interned (no
	// formatting on the hot path).
	Event(kind EventKind, label string, v int64)
}

// Traced is implemented by evidence sources (core.Searcher) that carry
// a per-query recorder, letting the inference evaluators emit scoring
// spans without widening the Source interface. A nil recorder means
// tracing is off.
type Traced interface {
	ObsRecorder() Recorder
}

// CostModel converts span event counts into deterministic simulated
// nanoseconds, mirroring vfs.TimeModel (which provides the adapter) so
// that traces and benches report the same 1993-machine estimates as
// the paper tables without obs importing vfs.
type CostModel struct {
	DiskReadNS    int64
	DiskWriteNS   int64
	SyscallNS     int64
	CopyPerByteNS float64
	PostingNS     int64
	QueryNS       int64
}

// SimNS estimates the simulated time spent producing the given event
// counts: disk waits, system-call overhead, kernel/user copying, and
// per-posting scoring cost. Query parse overhead (QueryNS) is charged
// separately by callers, once per query.
func (m CostModel) SimNS(c *Counts) int64 {
	ns := c[EvDiskRead]*m.DiskReadNS + c[EvDiskWrite]*m.DiskWriteNS
	ns += (c[EvFileAccess] + c[EvFileWrite]) * m.SyscallNS
	ns += int64(float64(c[EvBytesRead]+c[EvBytesWritten]) * m.CopyPerByteNS)
	ns += c[EvPostings] * m.PostingNS
	return ns
}
