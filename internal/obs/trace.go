package obs

import (
	"fmt"
	"strings"
	"time"
)

// Span is one timed region of a trace: a stage, a label (term, pool,
// or query text), the real wall-clock duration measured on the host,
// the events attributed directly to this span (exclusive of children),
// and the nested child spans.
type Span struct {
	Stage    Stage
	Label    string
	RealNS   int64 // inclusive of children
	Counts   Counts
	Children []*Span

	start time.Time
}

// TotalCounts returns the span's counts including all descendants.
func (s *Span) TotalCounts() Counts {
	total := s.Counts
	for _, c := range s.Children {
		cc := c.TotalCounts()
		total.Add(&cc)
	}
	return total
}

// SelfRealNS returns the span's real duration excluding child spans.
func (s *Span) SelfRealNS() int64 {
	ns := s.RealNS
	for _, c := range s.Children {
		ns -= c.RealNS
	}
	if ns < 0 {
		ns = 0
	}
	return ns
}

// Trace records one query's span tree. It implements Recorder and is
// not safe for concurrent use: attach it to at most one query stream
// (Engine.TraceSearch serializes the attachment).
type Trace struct {
	root  *Span
	stack []*Span
}

// NewTrace starts a trace whose root span carries the given label
// (conventionally the query text).
func NewTrace(label string) *Trace {
	root := &Span{Stage: StageQuery, Label: label, start: time.Now()}
	t := &Trace{root: root}
	t.stack = append(t.stack, root)
	return t
}

// Root returns the root span.
func (t *Trace) Root() *Span { return t.root }

// Finish closes the root span's timer. Idempotent in effect: a second
// call just refreshes the duration.
func (t *Trace) Finish() {
	t.root.RealNS = time.Since(t.root.start).Nanoseconds()
}

// BeginSpan implements Recorder.
func (t *Trace) BeginSpan(stage Stage, label string) {
	s := &Span{Stage: stage, Label: label, start: time.Now()}
	top := t.stack[len(t.stack)-1]
	top.Children = append(top.Children, s)
	t.stack = append(t.stack, s)
}

// EndSpan implements Recorder. The root span never pops; a surplus
// EndSpan is ignored rather than corrupting the tree.
func (t *Trace) EndSpan() {
	if len(t.stack) <= 1 {
		return
	}
	top := t.stack[len(t.stack)-1]
	top.RealNS = time.Since(top.start).Nanoseconds()
	t.stack = t.stack[:len(t.stack)-1]
}

// Event implements Recorder: the count lands on the innermost open
// span. The label is used only by renderers; counts aggregate by kind.
func (t *Trace) Event(kind EventKind, label string, v int64) {
	t.stack[len(t.stack)-1].Counts[kind] += v
}

// StageTotal aggregates every span of one stage: how many spans ran,
// their real time exclusive of child spans, and their exclusive event
// counts (from which CostModel.SimNS derives the simulated time).
type StageTotal struct {
	Spans      int64
	SelfRealNS int64
	Counts     Counts
}

// StageTotals walks the tree and aggregates per-stage exclusive
// totals. Exclusive attribution means the stage sums partition the
// query: a disk read during a Mneme fault-in counts toward
// StageFaultIn, not the enclosing fetch or score span.
func (t *Trace) StageTotals() map[Stage]StageTotal {
	totals := make(map[Stage]StageTotal, int(numStages))
	var walk func(s *Span)
	walk = func(s *Span) {
		agg := totals[s.Stage]
		agg.Spans++
		agg.SelfRealNS += s.SelfRealNS()
		agg.Counts.Add(&s.Counts)
		totals[s.Stage] = agg
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(t.root)
	return totals
}

// SimNS returns the whole trace's simulated duration: the cost model
// applied to all counts, plus the per-query parse overhead.
func (t *Trace) SimNS(m CostModel) int64 {
	total := t.root.TotalCounts()
	return m.SimNS(&total) + m.QueryNS
}

// Render draws the span tree with real (host) and simulated (cost
// model) durations per span, plus a compact summary of each span's own
// events:
//
//	query "#and(censorship network)"        real 812µs  sim 64.6ms
//	└─ score taat                           real 790µs  sim 18.3ms  [postings 2033]
//	   ├─ score censorship                  real 402µs  sim 9.1ms
//	   │  ├─ lexicon censorship             real 1µs    sim 0s
//	   │  └─ fetch censorship               real 371µs  sim 9.3ms   [lookups 1]
//	   │     └─ fault_in large              real 344µs  sim 9.2ms   [disk_reads 1 ...]
//	   ...
func (t *Trace) Render(m CostModel) string {
	var b strings.Builder
	t.renderSpan(&b, t.root, "", "", m, true)
	return b.String()
}

func (t *Trace) renderSpan(b *strings.Builder, s *Span, prefix, childPrefix string, m CostModel, root bool) {
	label := s.Stage.String()
	if s.Label != "" {
		label += " " + quoteIfSpaced(s.Label)
	}
	counts := s.Counts
	sim := m.SimNS(&counts)
	if root {
		total := s.TotalCounts()
		sim = m.SimNS(&total) + m.QueryNS
	} else {
		// Inclusive simulated time mirrors inclusive real time.
		total := s.TotalCounts()
		sim = m.SimNS(&total)
	}
	fmt.Fprintf(b, "%s%-44s real %-9s sim %-9s%s\n",
		prefix, label,
		time.Duration(s.RealNS).Round(time.Microsecond),
		time.Duration(sim).Round(time.Microsecond),
		eventSummary(&s.Counts))
	for i, c := range s.Children {
		last := i == len(s.Children)-1
		connector, nextPrefix := "├─ ", "│  "
		if last {
			connector, nextPrefix = "└─ ", "   "
		}
		t.renderSpan(b, c, childPrefix+connector, childPrefix+nextPrefix, m, false)
	}
}

// quoteIfSpaced quotes labels containing spaces (query text) so the
// tree stays parseable by eye.
func quoteIfSpaced(s string) string {
	if strings.ContainsAny(s, " \t") {
		return fmt.Sprintf("%q", s)
	}
	return s
}

// eventSummary formats a span's own non-zero event counts.
func eventSummary(c *Counts) string {
	if c.IsZero() {
		return ""
	}
	var parts []string
	for k := EventKind(0); k < NumEvents; k++ {
		if c[k] != 0 {
			parts = append(parts, fmt.Sprintf("%s %d", k, c[k]))
		}
	}
	return "  [" + strings.Join(parts, ", ") + "]"
}
