package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(ExpBuckets(1, 2, 10)) // 1,2,4,...,512
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	if h.Sum() != 5050 {
		t.Fatalf("sum = %d, want 5050", h.Sum())
	}
	p50 := h.Quantile(0.50)
	if p50 < 32 || p50 > 64 {
		t.Errorf("p50 = %v, want within bucket (32,64]", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 64 || p99 > 128 {
		t.Errorf("p99 = %v, want within bucket (64,128]", p99)
	}
	if got := h.Quantile(1.0); got < p99 {
		t.Errorf("p100 = %v below p99 = %v", got, p99)
	}
}

func TestHistogramEmptyAndOverflow(t *testing.T) {
	h := NewHistogram([]int64{10, 100})
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
	h.Observe(1e6) // overflow bucket
	if got := h.Quantile(0.5); got != 100 {
		t.Errorf("overflow quantile = %v, want last bound 100", got)
	}
}

func TestRegistrySnapshotDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("zeta").Add(3)
	r.Counter("alpha").Add(1)
	h := r.Histogram("lat", []int64{10, 100, 1000})
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000) // overflow

	a, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("snapshots differ:\n%s\n%s", a, b)
	}
	s := string(a)
	if strings.Index(s, `"alpha"`) > strings.Index(s, `"zeta"`) {
		t.Errorf("counters not sorted by name: %s", s)
	}
	if !strings.Contains(s, `"le":0`) {
		t.Errorf("overflow bucket missing: %s", s)
	}
}

func TestRegistryConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("n")
			h := r.Histogram("v", ExpBuckets(1, 4, 8))
			for i := int64(0); i < 1000; i++ {
				c.Add(1)
				h.Observe(i)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("v", nil).Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestTraceTreeAndStageTotals(t *testing.T) {
	tr := NewTrace("q1")
	tr.BeginSpan(StageScore, "taat")
	tr.BeginSpan(StageFetch, "termA")
	tr.Event(EvFileAccess, "", 2)
	tr.Event(EvBytesRead, "", 8192)
	tr.BeginSpan(StageFaultIn, "medium")
	tr.Event(EvDiskRead, "medium", 1)
	tr.EndSpan() // fault_in
	tr.EndSpan() // fetch
	tr.Event(EvPostings, "", 40)
	tr.EndSpan() // score
	tr.EndSpan() // surplus: must be ignored
	tr.Finish()

	root := tr.Root()
	if root.Label != "q1" || len(root.Children) != 1 {
		t.Fatalf("bad root: %+v", root)
	}
	totals := tr.StageTotals()
	if totals[StageFaultIn].Counts[EvDiskRead] != 1 {
		t.Errorf("fault_in disk reads = %d, want 1", totals[StageFaultIn].Counts[EvDiskRead])
	}
	if totals[StageFetch].Counts[EvDiskRead] != 0 {
		t.Errorf("fetch stage must not absorb fault_in events (exclusive attribution)")
	}
	if totals[StageScore].Counts[EvPostings] != 40 {
		t.Errorf("score postings = %d, want 40", totals[StageScore].Counts[EvPostings])
	}

	m := CostModel{DiskReadNS: 9e6, SyscallNS: 120e3, CopyPerByteNS: 100, PostingNS: 9e3, QueryNS: 25e6}
	wantSim := int64(9e6) + 2*int64(120e3) + int64(8192*100) + 40*int64(9e3) + int64(25e6)
	if got := tr.SimNS(m); got != wantSim {
		t.Errorf("SimNS = %d, want %d", got, wantSim)
	}

	out := tr.Render(m)
	for _, want := range []string{"query q1", "score taat", "fetch termA", "fault_in medium", "disk_reads 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestCountsAddAndZero(t *testing.T) {
	var a, b Counts
	if !a.IsZero() {
		t.Fatal("fresh counts not zero")
	}
	b[EvPostings] = 7
	a.Add(&b)
	a.Add(&b)
	if a[EvPostings] != 14 || a.IsZero() {
		t.Fatalf("add failed: %v", a)
	}
}
