package inference

import (
	"fmt"
	"strings"
)

// Explanation is one node of a per-document score breakdown: the belief
// the node contributed for the document, plus its children's.
type Explanation struct {
	// Op describes the node (operator name, or the term itself).
	Op string
	// Belief is the node's belief for the document.
	Belief float64
	// Detail carries leaf-level evidence ("tf=3 df=17") when available.
	Detail string
	// Children are the sub-explanations, in query order.
	Children []*Explanation
}

// String renders the explanation as an indented tree.
func (e *Explanation) String() string {
	var sb strings.Builder
	e.write(&sb, 0)
	return sb.String()
}

func (e *Explanation) write(sb *strings.Builder, depth int) {
	sb.WriteString(strings.Repeat("  ", depth))
	fmt.Fprintf(sb, "%.4f  %s", e.Belief, e.Op)
	if e.Detail != "" {
		fmt.Fprintf(sb, "  (%s)", e.Detail)
	}
	sb.WriteByte('\n')
	for _, c := range e.Children {
		c.write(sb, depth+1)
	}
}

// Explain computes the belief a query assigns to one document, broken
// down node by node — the inference network's evidence combination made
// visible. It evaluates with the same term-at-a-time algebra as
// EvaluateTAAT, so the root belief equals the document's ranked score.
func Explain(n *Node, src Source, doc uint32) (*Explanation, error) {
	switch n.Op {
	case OpTerm:
		ps, ok, err := src.Postings(n.Term)
		if err != nil {
			return nil, err
		}
		ex := &Explanation{Op: n.Term, Belief: DefaultBelief}
		if !ok || len(ps) == 0 {
			ex.Detail = "term not in collection"
			return ex, nil
		}
		df := termDF(src, n.Term, uint64(len(ps)))
		for _, p := range ps {
			if p.Doc == doc {
				ex.Belief = Belief(p.TF(), src.DocLen(doc), src.AvgDocLen(), df, src.NumDocs())
				ex.Detail = fmt.Sprintf("tf=%d df=%d doclen=%d", p.TF(), df, src.DocLen(doc))
				return ex, nil
			}
		}
		ex.Detail = fmt.Sprintf("absent from doc; df=%d", df)
		return ex, nil
	case OpSyn, OpOrderedWindow, OpUnorderedWindow, OpFilReq, OpFilRej:
		// Compound leaves and filters: evaluate the subtree as a whole
		// and report the document's belief without further breakdown
		// (their evidence is not a simple function of child beliefs).
		ev, err := evalNode(n, src)
		if err != nil {
			return nil, err
		}
		b, ok := ev.scores[doc]
		if !ok {
			b = ev.def
		}
		label := n.Op.String()
		if n.Op == OpOrderedWindow || n.Op == OpUnorderedWindow {
			label = fmt.Sprintf("%s%d(%s)", n.Op, n.Window, strings.Join(n.Terms(), " "))
		}
		return &Explanation{Op: label, Belief: b}, nil
	}

	ex := &Explanation{Op: n.Op.String()}
	vals := make([]float64, len(n.Children))
	for i, c := range n.Children {
		ce, err := Explain(c, src, doc)
		if err != nil {
			return nil, err
		}
		ex.Children = append(ex.Children, ce)
		vals[i] = ce.Belief
	}
	switch n.Op {
	case OpSum:
		s := 0.0
		for _, v := range vals {
			s += v
		}
		ex.Belief = s / float64(len(vals))
	case OpWSum:
		var s, w float64
		for i, v := range vals {
			s += n.Weights[i] * v
			w += n.Weights[i]
		}
		ex.Belief = s / w
	case OpAnd:
		s := 1.0
		for _, v := range vals {
			s *= v
		}
		ex.Belief = s
	case OpOr:
		s := 1.0
		for _, v := range vals {
			s *= 1 - v
		}
		ex.Belief = 1 - s
	case OpNot:
		ex.Belief = 1 - vals[0]
	case OpMax:
		ex.Belief = vals[0]
		for _, v := range vals[1:] {
			if v > ex.Belief {
				ex.Belief = v
			}
		}
	default:
		return nil, fmt.Errorf("inference: cannot explain %v", n.Op)
	}
	return ex, nil
}
