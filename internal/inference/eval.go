package inference

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/obs"
	"repro/internal/postings"
)

// DefaultBelief is the inference network's prior: the belief assigned to
// a document that provides no evidence for a concept.
const DefaultBelief = 0.4

// Source supplies term evidence for evaluation. Implementations wrap a
// storage backend (B-tree or Mneme) plus the collection statistics held
// by the hash dictionary and document table.
type Source interface {
	// Postings returns the full inverted list for a term. ok=false means
	// the term is not in the collection (zero evidence everywhere).
	Postings(term string) (ps []postings.Posting, ok bool, err error)
	// NumDocs is the number of documents in the collection.
	NumDocs() int
	// DocLen returns a document's length in indexed tokens.
	DocLen(doc uint32) int
	// AvgDocLen is the mean document length.
	AvgDocLen() float64
}

// DFSource is an optional Source/StreamSource extension supplying
// collection-global document frequencies. A document-partitioned shard
// holds only its slice of every inverted list, so the local list length
// underestimates df; a sharded engine implements DFSource to report the
// whole collection's df for a term, keeping beliefs — and therefore
// rankings after the scatter-gather merge — byte-identical to an
// unsharded build. ok=false falls back to the local statistic.
type DFSource interface {
	TermDF(term string) (df uint64, ok bool)
}

// termDF resolves a term's document frequency: the global statistic when
// the source carries one, else the local list length.
func termDF(src any, term string, local uint64) uint64 {
	if g, ok := src.(DFSource); ok {
		if df, ok := g.TermDF(term); ok {
			return df
		}
	}
	return local
}

// Result is one ranked document. The JSON tags are the wire encoding
// of the serving layer's response body.
type Result struct {
	Doc   uint32  `json:"doc"`
	Score float64 `json:"score"`
}

// Belief computes the INQUERY-style belief contributed by a term
// occurring tf times in a document of length docLen, for a term with
// document frequency df in a collection of n documents:
//
//	0.4 + 0.6 · tf′ · idf′
//	tf′  = tf / (tf + 0.5 + 1.5·docLen/avgLen)
//	idf′ = log((n + 0.5) / df) / log(n + 1)
func Belief(tf, docLen int, avgLen float64, df uint64, n int) float64 {
	if tf <= 0 || df == 0 || n == 0 {
		return DefaultBelief
	}
	if avgLen <= 0 {
		avgLen = 1
	}
	tfn := float64(tf) / (float64(tf) + 0.5 + 1.5*float64(docLen)/avgLen)
	idf := math.Log((float64(n)+0.5)/float64(df)) / math.Log(float64(n)+1)
	if idf < 0 {
		idf = 0
	}
	return DefaultBelief + (1-DefaultBelief)*tfn*idf
}

// recorderOf extracts the trace recorder a source carries (sources that
// implement obs.Traced, i.e. core.Searcher), or nil when tracing is off.
// The evaluators bracket their scoring work in StageScore spans through
// it; with no recorder attached the cost is one failed type assertion
// per evidence leaf.
func recorderOf(src any) obs.Recorder {
	if t, ok := src.(obs.Traced); ok {
		return t.ObsRecorder()
	}
	return nil
}

// evidence is a sparse belief assignment: explicit beliefs for some
// documents plus a default for every other document. The algebra over
// evidences is exact: combining respects the default for absent docs.
type evidence struct {
	scores map[uint32]float64
	def    float64
}

// EvaluateTAAT evaluates a query tree with term-at-a-time processing:
// each leaf's inverted list is read completely and merged into
// accumulators before the next is touched ("it reads the complete
// record for one term, and merges the evidence from that term with the
// evidence it is accumulating for each document. Then it processes the
// next term", paper §3.1). It returns the topK documents by belief.
func EvaluateTAAT(n *Node, src Source, topK int) ([]Result, error) {
	ev, err := evalNode(n, src)
	if err != nil {
		return nil, err
	}
	return rank(ev, topK), nil
}

// rank orders the documents carrying explicit evidence.
func rank(ev evidence, topK int) []Result {
	out := make([]Result, 0, len(ev.scores))
	for doc, s := range ev.scores {
		out = append(out, Result{Doc: doc, Score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Doc < out[j].Doc
	})
	if topK > 0 && len(out) > topK {
		out = out[:topK]
	}
	return out
}

func evalNode(n *Node, src Source) (evidence, error) {
	switch n.Op {
	case OpTerm:
		return evalTerm(n.Term, src)
	case OpOrderedWindow, OpUnorderedWindow:
		return evalProximity(n, src)
	case OpSyn:
		return evalSyn(n, src)
	case OpFilReq, OpFilRej:
		return evalFilter(n, src)
	}
	kids := make([]evidence, len(n.Children))
	for i, c := range n.Children {
		ev, err := evalNode(c, src)
		if err != nil {
			return evidence{}, err
		}
		kids[i] = ev
	}
	return combine(n, kids)
}

func evalTerm(term string, src Source) (evidence, error) {
	rec := recorderOf(src)
	if rec != nil {
		rec.BeginSpan(obs.StageScore, term)
		defer rec.EndSpan()
	}
	ps, ok, err := src.Postings(term)
	if err != nil {
		return evidence{}, err
	}
	ev := evidence{scores: make(map[uint32]float64), def: DefaultBelief}
	if !ok || len(ps) == 0 {
		return ev, nil
	}
	if rec != nil {
		rec.Event(obs.EvPostings, term, int64(len(ps)))
	}
	df := termDF(src, term, uint64(len(ps)))
	n := src.NumDocs()
	avg := src.AvgDocLen()
	for _, p := range ps {
		ev.scores[p.Doc] = Belief(p.TF(), src.DocLen(p.Doc), avg, df, n)
	}
	return ev, nil
}

// evalSyn merges its children's postings into one synonym class and
// scores it as a single pseudo-term.
func evalSyn(n *Node, src Source) (evidence, error) {
	rec := recorderOf(src)
	if rec != nil {
		rec.BeginSpan(obs.StageScore, "#syn")
		defer rec.EndSpan()
	}
	tf := make(map[uint32]int)
	for _, c := range n.Children {
		if c.Op != OpTerm {
			// Non-term synonyms degrade to #or semantics.
			return evalOrLike(n, src)
		}
		ps, ok, err := src.Postings(c.Term)
		if err != nil {
			return evidence{}, err
		}
		if !ok {
			continue
		}
		if rec != nil {
			rec.Event(obs.EvPostings, c.Term, int64(len(ps)))
		}
		for _, p := range ps {
			tf[p.Doc] += p.TF()
		}
	}
	return pseudoTermEvidence(tf, src), nil
}

func evalOrLike(n *Node, src Source) (evidence, error) {
	kids := make([]evidence, len(n.Children))
	for i, c := range n.Children {
		ev, err := evalNode(c, src)
		if err != nil {
			return evidence{}, err
		}
		kids[i] = ev
	}
	return combine(&Node{Op: OpOr, Children: n.Children}, kids)
}

// evalProximity computes per-document window-match counts over the
// children's position lists, then scores them as a pseudo-term.
func evalProximity(n *Node, src Source) (evidence, error) {
	rec := recorderOf(src)
	if rec != nil {
		rec.BeginSpan(obs.StageScore, "#prox")
		defer rec.EndSpan()
	}
	// Gather each child's postings keyed by document.
	type posmap map[uint32][]uint32
	childPos := make([]posmap, len(n.Children))
	for i, c := range n.Children {
		ps, ok, err := src.Postings(c.Term)
		if err != nil {
			return evidence{}, err
		}
		pm := make(posmap)
		if ok {
			if rec != nil {
				rec.Event(obs.EvPostings, c.Term, int64(len(ps)))
			}
			for _, p := range ps {
				pm[p.Doc] = p.Positions
			}
		}
		childPos[i] = pm
	}
	// Documents containing every child.
	tf := make(map[uint32]int)
	for doc := range childPos[0] {
		all := true
		lists := make([][]uint32, len(childPos))
		for i, pm := range childPos {
			l, ok := pm[doc]
			if !ok {
				all = false
				break
			}
			lists[i] = l
		}
		if !all {
			continue
		}
		var m int
		if n.Op == OpOrderedWindow {
			m = countOrderedMatches(lists, n.Window)
		} else {
			m = countUnorderedMatches(lists, n.Window)
		}
		if m > 0 {
			tf[doc] = m
		}
	}
	return pseudoTermEvidence(tf, src), nil
}

// pseudoTermEvidence scores a synthesized tf assignment (synonym class
// or proximity matches) as a single term. Its df is the exact match
// count in the local collection; on a shard that is the shard-local
// count, so TAAT compound-leaf scores can differ slightly between
// sharded and unsharded runs — the same caveat EvaluateDAAT already
// documents for its header-estimated compound df.
func pseudoTermEvidence(tf map[uint32]int, src Source) evidence {
	ev := evidence{scores: make(map[uint32]float64, len(tf)), def: DefaultBelief}
	df := uint64(len(tf))
	if df == 0 {
		return ev
	}
	n := src.NumDocs()
	avg := src.AvgDocLen()
	for doc, f := range tf {
		ev.scores[doc] = Belief(f, src.DocLen(doc), avg, df, n)
	}
	return ev
}

// countOrderedMatches counts non-overlapping occurrences of the terms
// in order, each adjacent pair within `window` positions: anchored on
// each position of the first term, the earliest qualifying position of
// every following term is taken greedily.
func countOrderedMatches(lists [][]uint32, window int) int {
	if window < 1 {
		window = 1
	}
	count := 0
	lastEnd := int64(-1)
	for _, p0 := range lists[0] {
		if int64(p0) <= lastEnd {
			continue // overlaps the previous match
		}
		prev := p0
		ok := true
		for i := 1; i < len(lists); i++ {
			l := lists[i]
			j := sort.Search(len(l), func(j int) bool { return l[j] > prev })
			if j == len(l) || l[j]-prev > uint32(window) {
				ok = false
				break
			}
			prev = l[j]
		}
		if ok {
			count++
			lastEnd = int64(prev)
		}
	}
	return count
}

// countUnorderedMatches counts non-overlapping windows of size `window`
// containing at least one position of every term, via a minimal-span
// sweep.
func countUnorderedMatches(lists [][]uint32, window int) int {
	k := len(lists)
	idx := make([]int, k)
	count := 0
	for {
		lo, hi := uint32(math.MaxUint32), uint32(0)
		loList := -1
		for i := 0; i < k; i++ {
			if idx[i] >= len(lists[i]) {
				return count
			}
			p := lists[i][idx[i]]
			if p < lo {
				lo, loList = p, i
			}
			if p > hi {
				hi = p
			}
		}
		if hi-lo < uint32(window) {
			count++
			// Consume all current positions (non-overlapping matches).
			for i := 0; i < k; i++ {
				idx[i]++
			}
			continue
		}
		idx[loList]++
	}
}

// evalFilter implements #filreq/#filrej: the first child selects the
// candidate set (documents with explicit evidence scoring above its
// default), and the second child's beliefs rank only documents inside
// (#filreq) or outside (#filrej) that set.
func evalFilter(n *Node, src Source) (evidence, error) {
	filt, err := evalNode(n.Children[0], src)
	if err != nil {
		return evidence{}, err
	}
	expr, err := evalNode(n.Children[1], src)
	if err != nil {
		return evidence{}, err
	}
	matches := func(d uint32) bool {
		v, ok := filt.scores[d]
		return ok && v > filt.def
	}
	out := evidence{scores: make(map[uint32]float64), def: expr.def}
	if n.Op == OpFilReq {
		// Only documents matching the filter can be ranked at all.
		for d, v := range expr.scores {
			if matches(d) {
				out.scores[d] = v
			}
		}
		// Filter-only documents rank with the expression's default.
		for d := range filt.scores {
			if _, ok := out.scores[d]; !ok && matches(d) {
				out.scores[d] = expr.def
			}
		}
		out.def = 0 // unmatched documents are excluded outright
		return out, nil
	}
	for d, v := range expr.scores {
		if !matches(d) {
			out.scores[d] = v
		}
	}
	return out, nil
}

// combine applies a belief operator to child evidences, handling absent
// documents through each child's default belief.
func combine(n *Node, kids []evidence) (evidence, error) {
	docs := make(map[uint32]bool)
	for _, k := range kids {
		for d := range k.scores {
			docs[d] = true
		}
	}
	childVal := func(i int, d uint32) float64 {
		if v, ok := kids[i].scores[d]; ok {
			return v
		}
		return kids[i].def
	}
	var applyDoc func(d uint32) float64
	var def float64

	switch n.Op {
	case OpSum:
		applyDoc = func(d uint32) float64 {
			s := 0.0
			for i := range kids {
				s += childVal(i, d)
			}
			return s / float64(len(kids))
		}
		for i := range kids {
			def += kids[i].def
		}
		def /= float64(len(kids))
	case OpWSum:
		var wsum float64
		for _, w := range n.Weights {
			wsum += w
		}
		if wsum == 0 {
			return evidence{}, fmt.Errorf("inference: #wsum weights sum to zero")
		}
		applyDoc = func(d uint32) float64 {
			s := 0.0
			for i := range kids {
				s += n.Weights[i] * childVal(i, d)
			}
			return s / wsum
		}
		for i := range kids {
			def += n.Weights[i] * kids[i].def
		}
		def /= wsum
	case OpAnd:
		applyDoc = func(d uint32) float64 {
			s := 1.0
			for i := range kids {
				s *= childVal(i, d)
			}
			return s
		}
		def = 1.0
		for i := range kids {
			def *= kids[i].def
		}
	case OpOr:
		applyDoc = func(d uint32) float64 {
			s := 1.0
			for i := range kids {
				s *= 1 - childVal(i, d)
			}
			return 1 - s
		}
		def = 1.0
		for i := range kids {
			def *= 1 - kids[i].def
		}
		def = 1 - def
	case OpNot:
		applyDoc = func(d uint32) float64 { return 1 - childVal(0, d) }
		def = 1 - kids[0].def
	case OpMax:
		applyDoc = func(d uint32) float64 {
			s := childVal(0, d)
			for i := 1; i < len(kids); i++ {
				if v := childVal(i, d); v > s {
					s = v
				}
			}
			return s
		}
		def = kids[0].def
		for i := 1; i < len(kids); i++ {
			if kids[i].def > def {
				def = kids[i].def
			}
		}
	default:
		return evidence{}, fmt.Errorf("inference: cannot combine %v", n.Op)
	}

	out := evidence{scores: make(map[uint32]float64, len(docs)), def: def}
	for d := range docs {
		out.scores[d] = applyDoc(d)
	}
	return out, nil
}
