package inference

import "repro/internal/postings"

// Chain concatenates posting iterators over disjoint ascending document
// ranges into one logical list. The near-real-time engine assigns every
// segment a contiguous global doc-ID range in segment order and the
// memtable the range past the last segment, so concatenation in that
// order yields a globally ascending stream — exactly what a single-
// segment iterator would produce had the same documents been batch
// built. Constituents must individually be ascending and must not
// overlap; Chain does no re-sorting.
//
// Chain implements AdvancingIterator (delegating to a constituent's
// native skip when it has one) and BoundedIterator (the max of the
// constituents' bounds, known only when every constituent knows its
// own).
type Chain struct {
	its []PostingIterator
	i   int
	err error
}

// NewChain wraps iterators listed in ascending doc-range order. Nil
// entries are skipped, so callers can pass per-segment lookups that
// found nothing without compacting the slice.
func NewChain(its ...PostingIterator) *Chain {
	kept := make([]PostingIterator, 0, len(its))
	for _, it := range its {
		if it != nil {
			kept = append(kept, it)
		}
	}
	return &Chain{its: kept}
}

// Next streams the concatenation. A constituent that ends with an error
// latches it and ends the chain: a partially decoded segment must not
// silently splice into its successor's range.
func (c *Chain) Next() (postings.Posting, bool) {
	for c.err == nil && c.i < len(c.its) {
		if p, ok := c.its[c.i].Next(); ok {
			return p, true
		}
		if err := c.its[c.i].Err(); err != nil {
			c.err = err
			break
		}
		c.i++
	}
	return postings.Posting{}, false
}

// Advance returns the first posting with Doc >= target at or after the
// current position, skipping exhausted constituents. Constituents with
// a native Advance (v2 block readers) skip whole blocks; others are
// scanned linearly.
func (c *Chain) Advance(target uint32) (postings.Posting, bool) {
	for c.err == nil && c.i < len(c.its) {
		it := c.its[c.i]
		if adv, ok := it.(AdvancingIterator); ok {
			if p, ok2 := adv.Advance(target); ok2 {
				return p, true
			}
		} else {
			for {
				p, ok2 := it.Next()
				if !ok2 {
					break
				}
				if p.Doc >= target {
					return p, true
				}
			}
		}
		if err := it.Err(); err != nil {
			c.err = err
			break
		}
		c.i++
	}
	return postings.Posting{}, false
}

// DF is the document frequency of the logical list: the sum of the
// constituents'. Ranges are disjoint, so the sum is exact — this is
// what keeps belief scores identical to a batch build mid-ingest.
func (c *Chain) DF() uint64 {
	var df uint64
	for _, it := range c.its {
		df += it.DF()
	}
	return df
}

// MaxTF bounds the within-document term frequency across the chain:
// the max of the constituents' bounds. Unknown if any constituent
// cannot bound itself — an optimistic partial max would let MaxScore
// prune documents it should have scored.
func (c *Chain) MaxTF() (uint32, bool) {
	var max uint32
	for _, it := range c.its {
		b, ok := it.(BoundedIterator)
		if !ok {
			return 0, false
		}
		tf, known := b.MaxTF()
		if !known {
			return 0, false
		}
		if tf > max {
			max = tf
		}
	}
	return max, true
}

// Err reports the first constituent error, if any.
func (c *Chain) Err() error { return c.err }
