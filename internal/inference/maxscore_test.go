package inference

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/postings"
)

// blockSource wraps a fakeSource so every list is served through a v2
// BlockReader — the iterators implement Advance and MaxTF, exercising
// the skip-aware path of MaxScore.
type blockSource struct {
	*fakeSource
	encoded map[string][]byte
}

func newBlockSource(f *fakeSource, t testing.TB) *blockSource {
	bs := &blockSource{fakeSource: f, encoded: make(map[string][]byte)}
	for term, ps := range f.lists {
		rec, err := postings.EncodeV2(ps)
		if err != nil {
			t.Fatal(err)
		}
		bs.encoded[term] = rec
	}
	return bs
}

// blockIter adapts a BlockReader to the evaluator interfaces.
type blockIter struct{ br *postings.BlockReader }

func (b blockIter) Next() (postings.Posting, bool) { return b.br.Next() }
func (b blockIter) DF() uint64                     { return b.br.DF() }
func (b blockIter) Err() error                     { return b.br.Err() }
func (b blockIter) Advance(target uint32) (postings.Posting, bool) {
	return b.br.Advance(target)
}
func (b blockIter) MaxTF() (uint32, bool) { return b.br.MaxTF(), true }

func (bs *blockSource) Iterator(term string) (PostingIterator, bool, error) {
	rec, ok := bs.encoded[term]
	if !ok {
		return nil, false, nil
	}
	br, ok := postings.OpenBlockReader(rec)
	if !ok {
		return nil, false, fmt.Errorf("list for %q not v2", term)
	}
	return blockIter{br: br}, true, nil
}

// randomSource builds a synthetic collection with Zipf-ish lists.
func randomMSSource(rng *rand.Rand, terms, docs int) *fakeSource {
	f := newFake()
	f.n = docs
	for ti := 0; ti < terms; ti++ {
		df := 1 + rng.Intn(docs/2)
		seen := make(map[uint32]bool)
		var ps []postings.Posting
		for len(ps) < df {
			d := uint32(rng.Intn(docs))
			if seen[d] {
				continue
			}
			seen[d] = true
			ps = append(ps, postings.Posting{Doc: d})
		}
		// sort and attach 1..4 positions
		for i := 1; i < len(ps); i++ {
			for j := i; j > 0 && ps[j].Doc < ps[j-1].Doc; j-- {
				ps[j], ps[j-1] = ps[j-1], ps[j]
			}
		}
		for i := range ps {
			tf := 1 + rng.Intn(4)
			pos := make([]uint32, tf)
			for k := range pos {
				pos[k] = uint32(k * 3)
			}
			ps[i].Positions = pos
		}
		f.add(fmt.Sprintf("t%d", ti), ps...)
	}
	return f
}

// TestMaxScoreExact compares MaxScore against exhaustive DAAT on
// random flat queries over both slice-backed and block-backed sources.
// Scores must be bit-identical, not merely close: MaxScore rescores
// every surviving candidate with the same arithmetic.
func TestMaxScoreExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 40; iter++ {
		f := randomMSSource(rng, 2+rng.Intn(6), 50+rng.Intn(400))
		bs := newBlockSource(f, t)

		nTerms := 1 + rng.Intn(5)
		children := make([]*Node, nTerms)
		weights := make([]float64, nTerms)
		for i := range children {
			children[i] = &Node{Op: OpTerm, Term: fmt.Sprintf("t%d", rng.Intn(8))}
			weights[i] = 0.5 + rng.Float64()*3
		}
		queries := []*Node{
			{Op: OpSum, Children: children},
			{Op: OpWSum, Children: children, Weights: weights},
		}
		for qi, q := range queries {
			for _, topK := range []int{1, 3, 10, 1000} {
				want, err := EvaluateDAAT(q, f, topK)
				if err != nil {
					t.Fatal(err)
				}
				for si, src := range []StreamSource{f, bs} {
					got, err := EvaluateMaxScore(q, src, topK)
					if err != nil {
						t.Fatal(err)
					}
					if len(got) != len(want) {
						t.Fatalf("iter %d q%d src%d k%d: %d results, want %d",
							iter, qi, si, topK, len(got), len(want))
					}
					for i := range want {
						if got[i].Doc != want[i].Doc || got[i].Score != want[i].Score {
							t.Fatalf("iter %d q%d src%d k%d rank %d: got %d/%.17g want %d/%.17g",
								iter, qi, si, topK, i,
								got[i].Doc, got[i].Score, want[i].Doc, want[i].Score)
						}
					}
				}
			}
		}
	}
}

// TestMaxScoreFallback: shapes outside the eligible flat sum must
// delegate to the exhaustive evaluator and still agree with it.
func TestMaxScoreFallback(t *testing.T) {
	f := newFake()
	f.add("a", pk(1, 1), pk(3, 1, 2), pk(9, 4))
	f.add("b", pk(3, 2), pk(9, 1))
	queries := []*Node{
		{Op: OpAnd, Children: []*Node{{Op: OpTerm, Term: "a"}, {Op: OpTerm, Term: "b"}}},
		{Op: OpSum, Children: []*Node{
			{Op: OpTerm, Term: "a"},
			{Op: OpSyn, Children: []*Node{{Op: OpTerm, Term: "b"}}},
		}},
		{Op: OpTerm, Term: "a"},
	}
	for qi, q := range queries {
		want, err := EvaluateDAAT(q, f, 10)
		if err != nil {
			t.Fatal(err)
		}
		got, err := EvaluateMaxScore(q, f, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("q%d: %d results, want %d", qi, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("q%d rank %d: got %v want %v", qi, i, got[i], want[i])
			}
		}
	}
	// topK <= 0 (return all) also falls back.
	if _, err := EvaluateMaxScore(queries[0], f, 0); err != nil {
		t.Fatal(err)
	}
}

// TestMaxScoreMissingTerms: absent terms contribute the prior, exactly
// as in exhaustive evaluation.
func TestMaxScoreMissingTerms(t *testing.T) {
	f := newFake()
	f.add("a", pk(1, 1), pk(5, 1, 2))
	q := &Node{Op: OpSum, Children: []*Node{
		{Op: OpTerm, Term: "a"},
		{Op: OpTerm, Term: "zzz-not-indexed"},
	}}
	want, err := EvaluateDAAT(q, f, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := EvaluateMaxScore(q, f, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank %d: got %v want %v", i, got[i], want[i])
		}
	}
}

// TestMaxScorePrunes pins down that pruning actually skips work on a
// skewed collection: with one rare high-idf term and one ubiquitous
// low-idf term, the ubiquitous list must not be fully consumed.
func TestMaxScorePrunes(t *testing.T) {
	f := newFake()
	f.n = 4000
	common := make([]postings.Posting, 2000)
	for i := range common {
		common[i] = postings.Posting{Doc: uint32(i * 2), Positions: []uint32{1}}
	}
	rare := []postings.Posting{
		{Doc: 100, Positions: []uint32{1, 2, 3}},
		{Doc: 2900, Positions: []uint32{4, 5}},
	}
	f.add("common", common...)
	f.add("rare", rare...)
	bs := newBlockSource(f, t)

	q := &Node{Op: OpSum, Children: []*Node{
		{Op: OpTerm, Term: "rare"},
		{Op: OpTerm, Term: "common"},
	}}
	want, err := EvaluateDAAT(q, f, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Count how much of the common list the pruned run surfaces via a
	// counting wrapper around the block source.
	cs := &countSource{StreamSource: bs, counts: map[string]*countIter{}}
	got, err := EvaluateMaxScore(q, cs, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank %d: got %v want %v", i, got[i], want[i])
		}
	}
	ci := cs.counts["common"]
	if ci == nil {
		t.Fatal("common list never opened")
	}
	if ci.surfaced >= len(common) {
		t.Fatalf("pruned run surfaced the whole common list (%d postings)", ci.surfaced)
	}
}

type countSource struct {
	StreamSource
	counts map[string]*countIter
}

type countIter struct {
	AdvancingIterator
	surfaced int
}

func (c *countIter) Next() (postings.Posting, bool) {
	p, ok := c.AdvancingIterator.Next()
	if ok {
		c.surfaced++
	}
	return p, ok
}

func (c *countIter) Advance(target uint32) (postings.Posting, bool) {
	p, ok := c.AdvancingIterator.Advance(target)
	if ok {
		c.surfaced++
	}
	return p, ok
}

func (c *countIter) MaxTF() (uint32, bool) {
	if b, ok := c.AdvancingIterator.(BoundedIterator); ok {
		return b.MaxTF()
	}
	return 0, false
}

func (c *countSource) Iterator(term string) (PostingIterator, bool, error) {
	it, ok, err := c.StreamSource.Iterator(term)
	if !ok || err != nil {
		return it, ok, err
	}
	ci := &countIter{AdvancingIterator: it.(AdvancingIterator)}
	c.counts[term] = ci
	return ci, true, nil
}
