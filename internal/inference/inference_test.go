package inference

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/postings"
)

// fakeSource serves evidence from an in-memory map; it implements both
// Source and StreamSource.
type fakeSource struct {
	lists  map[string][]postings.Posting
	lens   map[uint32]int
	n      int
	avgLen float64
}

func newFake() *fakeSource {
	return &fakeSource{
		lists:  make(map[string][]postings.Posting),
		lens:   make(map[uint32]int),
		n:      100,
		avgLen: 10,
	}
}

func (f *fakeSource) add(term string, ps ...postings.Posting) {
	f.lists[term] = ps
	for _, p := range ps {
		if f.lens[p.Doc] == 0 {
			f.lens[p.Doc] = 10
		}
	}
}

func (f *fakeSource) Postings(term string) ([]postings.Posting, bool, error) {
	ps, ok := f.lists[term]
	return ps, ok, nil
}

func (f *fakeSource) Iterator(term string) (PostingIterator, bool, error) {
	ps, ok := f.lists[term]
	if !ok {
		return nil, false, nil
	}
	return NewSliceIterator(ps), true, nil
}

func (f *fakeSource) NumDocs() int        { return f.n }
func (f *fakeSource) DocLen(d uint32) int { return f.lens[d] }
func (f *fakeSource) AvgDocLen() float64  { return f.avgLen }

func pk(doc uint32, positions ...uint32) postings.Posting {
	return postings.Posting{Doc: doc, Positions: positions}
}

// --- Parser tests ---

func TestParseBareTerms(t *testing.T) {
	n, err := Parse("information retrieval systems")
	if err != nil {
		t.Fatal(err)
	}
	if n.Op != OpSum || len(n.Children) != 3 {
		t.Fatalf("tree = %s", n)
	}
	terms := n.Terms()
	if len(terms) != 3 || terms[0] != "information" || terms[2] != "systems" {
		t.Fatalf("Terms = %v", terms)
	}
}

func TestParseSingleTermNoWrapper(t *testing.T) {
	n, err := Parse("retrieval")
	if err != nil {
		t.Fatal(err)
	}
	if n.Op != OpTerm || n.Term != "retrieval" {
		t.Fatalf("tree = %s", n)
	}
}

func TestParseOperators(t *testing.T) {
	cases := map[string]OpKind{
		"#sum(a b)": OpSum,
		"#and(a b)": OpAnd,
		"#or(a b)":  OpOr,
		"#not(a)":   OpNot,
		"#max(a b)": OpMax,
		"#syn(a b)": OpSyn,
	}
	for q, op := range cases {
		n, err := Parse(q)
		if err != nil {
			t.Fatalf("Parse(%q): %v", q, err)
		}
		if n.Op != op {
			t.Fatalf("Parse(%q) op = %v, want %v", q, n.Op, op)
		}
	}
}

func TestParseWindows(t *testing.T) {
	n, err := Parse("#phrase(information retrieval)")
	if err != nil {
		t.Fatal(err)
	}
	if n.Op != OpOrderedWindow || n.Window != 3 {
		t.Fatalf("phrase = %+v", n)
	}
	n, _ = Parse("#od5(a b c)")
	if n.Op != OpOrderedWindow || n.Window != 5 {
		t.Fatalf("od5 = %+v", n)
	}
	n, _ = Parse("#uw10(a b)")
	if n.Op != OpUnorderedWindow || n.Window != 10 {
		t.Fatalf("uw10 = %+v", n)
	}
	// #uw window is widened to at least the number of terms.
	n, _ = Parse("#uw2(a b c d)")
	if n.Window != 4 {
		t.Fatalf("uw2 over 4 terms window = %d", n.Window)
	}
}

func TestParseWSum(t *testing.T) {
	n, err := Parse("#wsum(2 information 1 retrieval)")
	if err != nil {
		t.Fatal(err)
	}
	if n.Op != OpWSum || len(n.Children) != 2 {
		t.Fatalf("wsum = %s", n)
	}
	if n.Weights[0] != 2 || n.Weights[1] != 1 {
		t.Fatalf("weights = %v", n.Weights)
	}
}

func TestParseNested(t *testing.T) {
	n, err := Parse("#and(#or(a b) #not(c) #phrase(d e))")
	if err != nil {
		t.Fatal(err)
	}
	if n.Op != OpAnd || len(n.Children) != 3 {
		t.Fatalf("tree = %s", n)
	}
	if got := n.String(); !strings.Contains(got, "#or(a b)") || !strings.Contains(got, "#od3(d e)") {
		t.Fatalf("String = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"   ",
		"#bogus(a)",
		"#and(a",
		"#and()",
		"#not(a b)",
		"#wsum(1 a 2)",
		"#wsum(x a)",
		"#od0(a b)",
		"#phrase(#and(a b) c)",
		")",
		"#and a",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) succeeded", q)
		}
	}
}

func TestNormalizeTerms(t *testing.T) {
	n, _ := Parse("#and(The Running #or(dogs a))")
	norm := n.NormalizeTerms(func(s string) string {
		low := strings.ToLower(s)
		if low == "the" || low == "a" {
			return "" // stopped
		}
		return strings.TrimSuffix(low, "s")
	})
	if norm == nil {
		t.Fatal("normalized tree is nil")
	}
	s := norm.String()
	if s != "#and(running #or(dog))" {
		t.Fatalf("normalized = %q", s)
	}
	// A fully stopped query normalizes to nil.
	n2, _ := Parse("the a")
	if n2.NormalizeTerms(func(string) string { return "" }) != nil {
		t.Fatal("fully stopped query did not normalize to nil")
	}
}

// --- Belief function tests ---

func TestBeliefProperties(t *testing.T) {
	if b := Belief(0, 10, 10, 5, 100); b != DefaultBelief {
		t.Fatalf("Belief(tf=0) = %v", b)
	}
	b1 := Belief(1, 10, 10, 5, 100)
	b3 := Belief(3, 10, 10, 5, 100)
	if !(DefaultBelief < b1 && b1 < b3 && b3 < 1) {
		t.Fatalf("belief not increasing in tf: %v %v", b1, b3)
	}
	// Rarer terms contribute more.
	rare := Belief(2, 10, 10, 2, 100)
	common := Belief(2, 10, 10, 80, 100)
	if rare <= common {
		t.Fatalf("idf ordering violated: rare %v common %v", rare, common)
	}
	// Longer documents are penalized.
	short := Belief(2, 5, 10, 5, 100)
	long := Belief(2, 50, 10, 5, 100)
	if short <= long {
		t.Fatalf("length normalization violated: %v vs %v", short, long)
	}
}

// TestPropertyBeliefBounded via testing/quick: belief always in [0.4, 1).
func TestPropertyBeliefBounded(t *testing.T) {
	check := func(tf uint8, docLen uint8, df uint16, n uint16) bool {
		nn := int(n%5000) + 1
		dff := uint64(df)%uint64(nn) + 1
		b := Belief(int(tf), int(docLen)+1, 12, dff, nn)
		return b >= DefaultBelief && b < 1.0 && !math.IsNaN(b)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// --- TAAT evaluation tests ---

func TestEvaluateSingleTermRanking(t *testing.T) {
	src := newFake()
	src.add("apple", pk(1, 0), pk(2, 0, 5, 9), pk(3, 0, 1))
	n, _ := Parse("apple")
	res, err := EvaluateTAAT(n, src, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("results = %v", res)
	}
	// Doc 2 has tf 3, doc 3 tf 2, doc 1 tf 1 (all same length).
	if res[0].Doc != 2 || res[1].Doc != 3 || res[2].Doc != 1 {
		t.Fatalf("order = %v", res)
	}
}

func TestEvaluateSumFavorsBothTerms(t *testing.T) {
	src := newFake()
	src.add("apple", pk(1, 0), pk(2, 0))
	src.add("banana", pk(2, 3), pk(3, 3))
	n, _ := Parse("apple banana")
	res, _ := EvaluateTAAT(n, src, 10)
	if len(res) != 3 || res[0].Doc != 2 {
		t.Fatalf("results = %v", res)
	}
}

func TestEvaluateAndOrNot(t *testing.T) {
	src := newFake()
	src.add("apple", pk(1, 0), pk(2, 0))
	src.add("banana", pk(2, 3), pk(3, 3))

	n, _ := Parse("#and(apple banana)")
	res, _ := EvaluateTAAT(n, src, 10)
	if res[0].Doc != 2 {
		t.Fatalf("#and top = %v", res)
	}
	// For #and, docs with one term score default*belief < belief*belief.
	if !(res[0].Score > res[1].Score) {
		t.Fatalf("#and scores = %v", res)
	}

	n, _ = Parse("#or(apple banana)")
	res, _ = EvaluateTAAT(n, src, 10)
	if res[0].Doc != 2 {
		t.Fatalf("#or top = %v", res)
	}

	n, _ = Parse("#and(apple #not(banana))")
	res, _ = EvaluateTAAT(n, src, 10)
	// Doc 1 has apple but not banana; doc 2 has both and is penalized.
	if res[0].Doc != 1 {
		t.Fatalf("#not ranking = %v", res)
	}
}

func TestEvaluateWSum(t *testing.T) {
	src := newFake()
	src.add("apple", pk(1, 0))
	src.add("banana", pk(2, 0))
	n, _ := Parse("#wsum(10 apple 1 banana)")
	res, _ := EvaluateTAAT(n, src, 10)
	if len(res) != 2 || res[0].Doc != 1 {
		t.Fatalf("wsum ranking = %v", res)
	}
}

func TestEvaluateMax(t *testing.T) {
	src := newFake()
	src.add("apple", pk(1, 0, 1, 2, 3), pk(2, 0))
	src.add("banana", pk(2, 5))
	n, _ := Parse("#max(apple banana)")
	res, _ := EvaluateTAAT(n, src, 10)
	if res[0].Doc != 1 {
		t.Fatalf("max ranking = %v", res)
	}
}

func TestEvaluatePhrase(t *testing.T) {
	src := newFake()
	// Doc 1: "information retrieval" adjacent; doc 2: far apart; doc 3
	// only "information".
	src.add("information", pk(1, 4), pk(2, 0), pk(3, 7))
	src.add("retrieval", pk(1, 5), pk(2, 30))
	n, _ := Parse("#phrase(information retrieval)")
	res, err := EvaluateTAAT(n, src, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Doc != 1 {
		t.Fatalf("phrase results = %v", res)
	}
}

func TestEvaluateUnorderedWindow(t *testing.T) {
	src := newFake()
	src.add("a", pk(1, 0), pk(2, 0))
	src.add("b", pk(1, 3), pk(2, 50))
	n, _ := Parse("#uw5(a b)")
	res, _ := EvaluateTAAT(n, src, 10)
	if len(res) != 1 || res[0].Doc != 1 {
		t.Fatalf("uw results = %v", res)
	}
}

func TestEvaluateSyn(t *testing.T) {
	src := newFake()
	src.add("car", pk(1, 0))
	src.add("auto", pk(1, 5), pk(2, 0))
	n, _ := Parse("#syn(car auto)")
	res, _ := EvaluateTAAT(n, src, 10)
	if len(res) != 2 {
		t.Fatalf("syn results = %v", res)
	}
	// Doc 1 has combined tf 2 vs doc 2's tf 1.
	if res[0].Doc != 1 {
		t.Fatalf("syn ranking = %v", res)
	}
}

func TestEvaluateMissingTerm(t *testing.T) {
	src := newFake()
	src.add("apple", pk(1, 0))
	n, _ := Parse("apple zebra")
	res, err := EvaluateTAAT(n, src, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Doc != 1 {
		t.Fatalf("results = %v", res)
	}
	// A query of only missing terms ranks nothing.
	n, _ = Parse("zebra")
	res, _ = EvaluateTAAT(n, src, 10)
	if len(res) != 0 {
		t.Fatalf("missing-only results = %v", res)
	}
}

func TestEvaluateTopK(t *testing.T) {
	src := newFake()
	var ps []postings.Posting
	for d := uint32(1); d <= 50; d++ {
		pos := make([]uint32, d%7+1)
		for i := range pos {
			pos[i] = uint32(i * 2)
		}
		ps = append(ps, postings.Posting{Doc: d, Positions: pos})
	}
	src.add("apple", ps...)
	n, _ := Parse("apple")
	res, _ := EvaluateTAAT(n, src, 5)
	if len(res) != 5 {
		t.Fatalf("topK = %d", len(res))
	}
	for i := 1; i < len(res); i++ {
		if res[i].Score > res[i-1].Score {
			t.Fatal("results not sorted")
		}
	}
}

// --- Window counting tests ---

func TestCountOrderedMatches(t *testing.T) {
	cases := []struct {
		lists  [][]uint32
		window int
		want   int
	}{
		{[][]uint32{{0}, {1}}, 1, 1},
		{[][]uint32{{0}, {2}}, 1, 0},
		{[][]uint32{{0, 10}, {1, 11}}, 1, 2},
		{[][]uint32{{0, 1}, {2}}, 3, 1},   // non-overlapping: one match
		{[][]uint32{{1}, {0}}, 5, 0},      // wrong order
		{[][]uint32{{0}, {1}, {2}}, 1, 1}, // three terms adjacent
		{[][]uint32{{0}, {5}, {6}}, 2, 0}, // first gap too wide
		{[][]uint32{{3}, {4}, {9}}, 5, 1},
	}
	for i, c := range cases {
		if got := countOrderedMatches(c.lists, c.window); got != c.want {
			t.Errorf("case %d: got %d want %d", i, got, c.want)
		}
	}
}

func TestCountUnorderedMatches(t *testing.T) {
	cases := []struct {
		lists  [][]uint32
		window int
		want   int
	}{
		{[][]uint32{{0}, {1}}, 2, 1},
		{[][]uint32{{1}, {0}}, 2, 1}, // order-free
		{[][]uint32{{0}, {5}}, 2, 0},
		{[][]uint32{{0, 10}, {1, 11}}, 2, 2},
		{[][]uint32{{0}, {1}, {2}}, 3, 1},
		{[][]uint32{{0, 100}, {1}}, 2, 1},
	}
	for i, c := range cases {
		if got := countUnorderedMatches(c.lists, c.window); got != c.want {
			t.Errorf("case %d: got %d want %d", i, got, c.want)
		}
	}
}

// --- DAAT tests ---

func TestDAATMatchesTAATOnTermQueries(t *testing.T) {
	src := newFake()
	src.add("apple", pk(1, 0), pk(2, 0, 5), pk(7, 1))
	src.add("banana", pk(2, 3), pk(3, 3), pk(7, 9, 11))
	src.add("cherry", pk(1, 2), pk(9, 0))
	for _, q := range []string{
		"apple",
		"apple banana cherry",
		"#and(apple banana)",
		"#or(apple cherry)",
		"#max(apple banana cherry)",
		"#wsum(3 apple 1 banana)",
		"#and(apple #not(banana))",
		"#sum(#and(apple banana) cherry)",
	} {
		n, err := Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		taat, err := EvaluateTAAT(n, src, 0)
		if err != nil {
			t.Fatal(err)
		}
		daat, err := EvaluateDAAT(n, src, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(taat) != len(daat) {
			t.Fatalf("%q: TAAT %d docs, DAAT %d docs", q, len(taat), len(daat))
		}
		for i := range taat {
			if taat[i].Doc != daat[i].Doc || math.Abs(taat[i].Score-daat[i].Score) > 1e-12 {
				t.Fatalf("%q: rank %d: TAAT %v DAAT %v", q, i, taat[i], daat[i])
			}
		}
	}
}

func TestDAATTopKHeap(t *testing.T) {
	src := newFake()
	var ps []postings.Posting
	for d := uint32(1); d <= 100; d++ {
		pos := make([]uint32, d%9+1)
		for i := range pos {
			pos[i] = uint32(i)
		}
		ps = append(ps, postings.Posting{Doc: d, Positions: pos})
	}
	src.add("apple", ps...)
	n, _ := Parse("apple")
	full, _ := EvaluateDAAT(n, src, 0)
	top, _ := EvaluateDAAT(n, src, 7)
	if len(top) != 7 {
		t.Fatalf("topK = %d", len(top))
	}
	for i := range top {
		if top[i] != full[i] {
			t.Fatalf("rank %d: top %v full %v", i, top[i], full[i])
		}
	}
}

func TestDAATPhrase(t *testing.T) {
	src := newFake()
	src.add("information", pk(1, 4), pk(2, 0))
	src.add("retrieval", pk(1, 5), pk(2, 30))
	n, _ := Parse("#phrase(information retrieval)")
	res, err := EvaluateDAAT(n, src, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 || res[0].Doc != 1 {
		t.Fatalf("DAAT phrase = %v", res)
	}
	// Doc 1 (a real match) must outscore doc 2 (terms far apart).
	for _, r := range res[1:] {
		if r.Score >= res[0].Score {
			t.Fatalf("non-match outscored match: %v", res)
		}
	}
}

// TestPropertyTAATDAATAgree via randomized flat queries.
func TestPropertyTAATDAATAgree(t *testing.T) {
	check := func(seed int64) bool {
		src := newFake()
		rng := newRand(seed)
		terms := []string{"t0", "t1", "t2", "t3"}
		for _, term := range terms {
			var ps []postings.Posting
			doc := uint32(0)
			for doc < 60 {
				doc += uint32(rng.Intn(9) + 1)
				tf := rng.Intn(4) + 1
				pos := make([]uint32, tf)
				for i := range pos {
					pos[i] = uint32(i * 3)
				}
				ps = append(ps, postings.Posting{Doc: doc, Positions: pos})
			}
			src.add(term, ps...)
		}
		n, err := Parse("#sum(t0 #and(t1 t2) #or(t3 t0))")
		if err != nil {
			return false
		}
		taat, err1 := EvaluateTAAT(n, src, 0)
		daat, err2 := EvaluateDAAT(n, src, 0)
		if err1 != nil || err2 != nil || len(taat) != len(daat) {
			return false
		}
		for i := range taat {
			if taat[i].Doc != daat[i].Doc || math.Abs(taat[i].Score-daat[i].Score) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// newRand avoids importing math/rand at every call site above.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestParseFilterOps(t *testing.T) {
	n, err := Parse("#filreq(#and(a b) #sum(c d))")
	if err != nil {
		t.Fatal(err)
	}
	if n.Op != OpFilReq || len(n.Children) != 2 {
		t.Fatalf("tree = %s", n)
	}
	if _, err := Parse("#filreq(a)"); err == nil {
		t.Fatal("one-argument #filreq accepted")
	}
	if _, err := Parse("#filrej(a b c)"); err == nil {
		t.Fatal("three-argument #filrej accepted")
	}
	if got := n.String(); !strings.Contains(got, "#filreq(") {
		t.Fatalf("String = %q", got)
	}
}

func TestEvaluateFilReq(t *testing.T) {
	src := newFake()
	src.add("apple", pk(1, 0), pk(2, 0))        // filter
	src.add("banana", pk(2, 3), pk(3, 3, 4, 5)) // ranking expression
	n, _ := Parse("#filreq(apple banana)")
	res, err := EvaluateTAAT(n, src, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Only docs 1 and 2 pass the filter; doc 3 (best banana doc) is out.
	if len(res) != 2 {
		t.Fatalf("results = %v", res)
	}
	for _, r := range res {
		if r.Doc == 3 {
			t.Fatalf("doc 3 passed the filter: %v", res)
		}
	}
	// Doc 2 (has banana) outranks doc 1 (filter only).
	if res[0].Doc != 2 {
		t.Fatalf("ranking = %v", res)
	}
}

func TestEvaluateFilRej(t *testing.T) {
	src := newFake()
	src.add("apple", pk(1, 0), pk(2, 0))
	src.add("banana", pk(2, 3), pk(3, 3))
	n, _ := Parse("#filrej(apple banana)")
	res, err := EvaluateTAAT(n, src, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Docs with apple are rejected: only doc 3 remains.
	if len(res) != 1 || res[0].Doc != 3 {
		t.Fatalf("results = %v", res)
	}
}

func TestDAATRejectsFilterOps(t *testing.T) {
	src := newFake()
	src.add("a", pk(1, 0))
	n, _ := Parse("#filreq(a a)")
	if _, err := EvaluateDAAT(n, src, 0); err == nil {
		t.Fatal("DAAT accepted a filter operator")
	}
	n, _ = Parse("#sum(#filrej(a a) a)")
	if _, err := EvaluateDAAT(n, src, 0); err == nil {
		t.Fatal("DAAT accepted a nested filter operator")
	}
}

func TestExplainMatchesEvaluate(t *testing.T) {
	src := newFake()
	src.add("apple", pk(1, 0), pk(2, 0, 5), pk(7, 1))
	src.add("banana", pk(2, 3), pk(3, 3))
	for _, q := range []string{
		"apple",
		"apple banana",
		"#and(apple banana)",
		"#or(apple #not(banana))",
		"#wsum(3 apple 1 banana)",
		"#max(apple banana)",
		"#sum(#phrase(apple banana) apple)",
	} {
		n, err := Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		res, err := EvaluateTAAT(n, src, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res {
			ex, err := Explain(n, src, r.Doc)
			if err != nil {
				t.Fatal(err)
			}
			if d := ex.Belief - r.Score; d > 1e-12 || d < -1e-12 {
				t.Fatalf("%q doc %d: explain %.6f vs score %.6f", q, r.Doc, ex.Belief, r.Score)
			}
		}
	}
}

func TestExplainDetailAndRendering(t *testing.T) {
	src := newFake()
	src.add("apple", pk(1, 0, 2))
	n, _ := Parse("#and(apple zebra)")
	ex, err := Explain(n, src, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Children) != 2 {
		t.Fatalf("children = %d", len(ex.Children))
	}
	if !strings.Contains(ex.Children[0].Detail, "tf=2") {
		t.Fatalf("leaf detail = %q", ex.Children[0].Detail)
	}
	if !strings.Contains(ex.Children[1].Detail, "not in collection") {
		t.Fatalf("missing-term detail = %q", ex.Children[1].Detail)
	}
	out := ex.String()
	if !strings.Contains(out, "#and") || !strings.Contains(out, "  ") {
		t.Fatalf("rendering = %q", out)
	}
}

func benchSource(nTerms, docsPerTerm int) *fakeSource {
	src := newFake()
	src.n = 100000
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < nTerms; i++ {
		var ps []postings.Posting
		doc := uint32(0)
		for d := 0; d < docsPerTerm; d++ {
			doc += uint32(rng.Intn(20) + 1)
			ps = append(ps, postings.Posting{Doc: doc, Positions: []uint32{0, 5, 9}})
		}
		src.add(string(rune('a'+i)), ps...)
	}
	return src
}

func BenchmarkEvaluateTAAT(b *testing.B) {
	src := benchSource(4, 5000)
	n, _ := Parse("#sum(a b #and(c d))")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EvaluateTAAT(n, src, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateDAAT tracks the DAAT hot loop's allocation rate:
// the per-document operator scratch and the per-query iterator gather
// are pooled (valsPool / gatherPool), which bytes/op makes visible.
func BenchmarkEvaluateDAAT(b *testing.B) {
	src := benchSource(4, 5000)
	n, _ := Parse("#sum(a b #and(c d))")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EvaluateDAAT(n, src, 10); err != nil {
			b.Fatal(err)
		}
	}
}
