package inference

import (
	"math/rand"
	"testing"

	"repro/internal/postings"
)

// randomSource builds a fake source with nTerms random lists.
func randomSource(rng *rand.Rand, nTerms int) (*fakeSource, []string) {
	src := newFake()
	terms := make([]string, nTerms)
	for i := range terms {
		terms[i] = string(rune('a' + i))
		var ps []postings.Posting
		doc := uint32(0)
		for doc < 40 {
			doc += uint32(rng.Intn(6) + 1)
			tf := rng.Intn(3) + 1
			pos := make([]uint32, tf)
			for j := range pos {
				pos[j] = uint32(j * 2)
			}
			ps = append(ps, postings.Posting{Doc: doc, Positions: pos})
		}
		src.add(terms[i], ps...)
	}
	return src, terms
}

// scoresOf evaluates a query and returns doc->score.
func scoresOf(t *testing.T, src Source, query string) map[uint32]float64 {
	t.Helper()
	n, err := Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	res, err := EvaluateTAAT(n, src, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[uint32]float64, len(res))
	for _, r := range res {
		out[r.Doc] = r.Score
	}
	return out
}

// TestAlgebraBounds checks the belief algebra's order relations on
// random evidence: #and ≤ min child, #or ≥ max child, #max = max child,
// #sum between min and max.
func TestAlgebraBounds(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		src, _ := randomSource(rng, 2)
		a := scoresOf(t, src, "a")
		b := scoresOf(t, src, "b")
		val := func(m map[uint32]float64, d uint32) float64 {
			if v, ok := m[d]; ok {
				return v
			}
			return DefaultBelief
		}
		docs := map[uint32]bool{}
		for d := range a {
			docs[d] = true
		}
		for d := range b {
			docs[d] = true
		}
		and := scoresOf(t, src, "#and(a b)")
		or := scoresOf(t, src, "#or(a b)")
		max := scoresOf(t, src, "#max(a b)")
		sum := scoresOf(t, src, "#sum(a b)")
		for d := range docs {
			va, vb := val(a, d), val(b, d)
			lo, hi := va, vb
			if lo > hi {
				lo, hi = hi, lo
			}
			if and[d] > lo+1e-12 {
				t.Fatalf("seed %d doc %d: #and %.4f > min %.4f", seed, d, and[d], lo)
			}
			if or[d] < hi-1e-12 {
				t.Fatalf("seed %d doc %d: #or %.4f < max %.4f", seed, d, or[d], hi)
			}
			if diff := max[d] - hi; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("seed %d doc %d: #max %.4f != max %.4f", seed, d, max[d], hi)
			}
			if sum[d] < lo-1e-12 || sum[d] > hi+1e-12 {
				t.Fatalf("seed %d doc %d: #sum %.4f outside [%.4f,%.4f]", seed, d, sum[d], lo, hi)
			}
		}
	}
}

// TestAlgebraCommutative: #and/#or/#sum/#max are order-insensitive.
func TestAlgebraCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src, _ := randomSource(rng, 3)
	for _, op := range []string{"and", "or", "sum", "max"} {
		x := scoresOf(t, src, "#"+op+"(a b c)")
		y := scoresOf(t, src, "#"+op+"(c a b)")
		if len(x) != len(y) {
			t.Fatalf("#%s: %d vs %d docs", op, len(x), len(y))
		}
		for d, v := range x {
			if dv := y[d] - v; dv > 1e-12 || dv < -1e-12 {
				t.Fatalf("#%s not commutative at doc %d: %.6f vs %.6f", op, d, v, y[d])
			}
		}
	}
}

// TestDoubleNegation: #not(#not(x)) restores x's belief per document.
func TestDoubleNegation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	src, _ := randomSource(rng, 1)
	x := scoresOf(t, src, "a")
	nn := scoresOf(t, src, "#not(#not(a))")
	for d, v := range x {
		if dv := nn[d] - v; dv > 1e-12 || dv < -1e-12 {
			t.Fatalf("doc %d: #not#not %.6f vs %.6f", d, nn[d], v)
		}
	}
}

// TestWSumEqualWeightsIsSum: #wsum with equal weights matches #sum.
func TestWSumEqualWeightsIsSum(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	src, _ := randomSource(rng, 2)
	s := scoresOf(t, src, "#sum(a b)")
	w := scoresOf(t, src, "#wsum(5 a 5 b)")
	for d, v := range s {
		if dv := w[d] - v; dv > 1e-12 || dv < -1e-12 {
			t.Fatalf("doc %d: wsum %.6f vs sum %.6f", d, w[d], v)
		}
	}
}

// TestSynSubsumesSingleTerm: #syn of one term scores like the bare term.
func TestSynSubsumesSingleTerm(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	src, _ := randomSource(rng, 1)
	a := scoresOf(t, src, "a")
	syn := scoresOf(t, src, "#syn(a)")
	for d, v := range a {
		if dv := syn[d] - v; dv > 1e-12 || dv < -1e-12 {
			t.Fatalf("doc %d: #syn(a) %.6f vs a %.6f", d, syn[d], v)
		}
	}
}

// TestFilReqIdempotent: filtering by the expression itself keeps
// exactly the documents that match it.
func TestFilReqIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	src, _ := randomSource(rng, 1)
	a := scoresOf(t, src, "a")
	f := scoresOf(t, src, "#filreq(a a)")
	if len(f) != len(a) {
		t.Fatalf("doc sets differ: %d vs %d", len(f), len(a))
	}
	for d, v := range a {
		if dv := f[d] - v; dv > 1e-12 || dv < -1e-12 {
			t.Fatalf("doc %d: %.6f vs %.6f", d, f[d], v)
		}
	}
}
