package inference

import (
	"container/heap"
	"math"
	"sort"

	"repro/internal/obs"
	"repro/internal/postings"
)

// AdvancingIterator is a PostingIterator that can skip forward: Advance
// returns the first posting with Doc >= target at or after the current
// position. Iterators over block-format (v2) records implement it by
// skipping whole blocks; plain iterators are emulated with a linear
// scan (see peekIter.advanceTo).
type AdvancingIterator interface {
	PostingIterator
	Advance(target uint32) (postings.Posting, bool)
}

// BoundedIterator exposes the largest within-document term frequency
// in the list, when the record format carries it (v2 descriptors).
// ok=false means unknown, and the score bound falls back to the
// tf→∞ asymptote.
type BoundedIterator interface {
	MaxTF() (uint32, bool)
}

// advanceTo moves the peek position to the first posting with
// Doc >= target, using the iterator's native skip if it has one.
func (p *peekIter) advanceTo(target uint32) {
	if !p.ok || p.cur.Doc >= target {
		return
	}
	if adv, ok := p.it.(AdvancingIterator); ok {
		p.cur, p.ok = adv.Advance(target)
		return
	}
	for p.ok && p.cur.Doc < target {
		p.advance()
	}
}

// slack is the absolute safety margin on every pruning comparison.
// Bounds are accumulated in a different floating-point order than the
// exact score, so they can disagree by a few ulps; any document whose
// bound comes within slack of the heap threshold is scored exactly
// instead of pruned. Exactness therefore never depends on float
// associativity — only the (generous) claim that the two orderings of
// at most a few dozen O(1) additions differ by less than 1e-9.
const slack = 1e-9

// msTerm is one query term's state during MaxScore evaluation.
type msTerm struct {
	idx   int // child index in the query node, for exact rescoring
	pi    *peekIter
	df    uint64
	wn    float64 // weight normalized by the total, w_i/W
	sigma float64 // max score increment above the 0.4 prior

	// one-document belief memo, shared between the bound refinement
	// and the exact rescore so both see the identical float64
	belief   float64
	beliefAt uint32
	beliefOK bool
}

// beliefAtDoc computes (once per document) the same belief value
// evalDocNode's leafBelief would: the full Belief when the term's
// stream sits on doc, the 0.4 prior otherwise.
func (t *msTerm) beliefAtDoc(doc uint32, src StreamSource) float64 {
	if t.beliefOK && t.beliefAt == doc {
		return t.belief
	}
	b := DefaultBelief
	if t.pi != nil && t.df > 0 && t.pi.ok && t.pi.cur.Doc == doc {
		b = Belief(t.pi.cur.TF(), src.DocLen(doc), src.AvgDocLen(), t.df, src.NumDocs())
	}
	t.belief, t.beliefAt, t.beliefOK = b, doc, true
	return b
}

// maxScoreEligible reports whether the query tree has the flat
// weighted-sum-of-terms shape MaxScore pruning supports with exact
// results: #sum or #wsum over bare terms, positive weights, and a
// bounded k. Everything else falls back to the exhaustive evaluator.
func maxScoreEligible(n *Node, topK int) bool {
	if topK <= 0 || len(n.Children) == 0 {
		return false
	}
	if n.Op != OpSum && n.Op != OpWSum {
		return false
	}
	var wsum float64
	for i, c := range n.Children {
		if c.Op != OpTerm {
			return false
		}
		if n.Op == OpWSum {
			if n.Weights[i] <= 0 {
				return false
			}
			wsum += n.Weights[i]
		}
	}
	return n.Op != OpWSum || wsum > 0
}

// exactCombine reproduces evalDocNode's root arithmetic exactly — same
// operations, same order — so a document scored here gets the
// bit-identical float64 the exhaustive DAAT evaluator would produce.
func exactCombine(n *Node, beliefs []float64) float64 {
	switch n.Op {
	case OpSum:
		s := 0.0
		for _, v := range beliefs {
			s += v
		}
		return s / float64(len(beliefs))
	case OpWSum:
		var s, w float64
		for i, v := range beliefs {
			s += n.Weights[i] * v
			w += n.Weights[i]
		}
		return s / w
	}
	return DefaultBelief
}

// EvaluateMaxScore evaluates the query document-at-a-time with
// MaxScore dynamic pruning (Turtle & Flood): each term carries a score
// upper bound derived from its df and, when the record format provides
// it, its maximum tf. Once the top-k heap is full, terms whose
// combined bounds cannot lift a document over the heap threshold
// become "non-essential": they stop driving candidate selection and
// are only Advance()d to documents the essential terms propose —
// skipping, for block-format lists, the decode (and chunk fault-in) of
// everything in between.
//
// The ranking is exactly the exhaustive evaluator's: candidates are
// only discarded when their score bound sits more than a safety margin
// below the threshold, and every surviving candidate is rescored with
// the identical arithmetic (see exactCombine). Queries outside the
// eligible shape delegate to EvaluateDAAT wholesale.
func EvaluateMaxScore(n *Node, src StreamSource, topK int) ([]Result, error) {
	return EvaluateMaxScoreFloor(n, src, topK, 0)
}

// EvaluateMaxScoreFloor is EvaluateMaxScore with an externally supplied
// score floor. A floor > 0 acts as an initial pruning threshold active
// even before the heap fills: documents whose score bound sits below it
// are discarded immediately. The scatter-gather coordinator seeds late
// shards with the running merged k-th score — exact-safe because that
// threshold only rises, so any document pruned here scores strictly
// below the final global k-th and cannot appear in the merged top-k.
// The heap may come back underfull; callers merging across shards
// expect that.
func EvaluateMaxScoreFloor(n *Node, src StreamSource, topK int, floor float64) ([]Result, error) {
	if !maxScoreEligible(n, topK) {
		return EvaluateDAAT(n, src, topK)
	}

	nd := src.NumDocs()
	var wTotal float64
	if n.Op == OpWSum {
		for _, w := range n.Weights {
			wTotal += w
		}
	} else {
		wTotal = float64(len(n.Children))
	}

	terms := make([]*msTerm, 0, len(n.Children))
	for i, c := range n.Children {
		t := &msTerm{idx: i}
		it, ok, err := src.Iterator(c.Term)
		if err != nil {
			return nil, err
		}
		if ok {
			t.pi = &peekIter{it: it}
			t.pi.advance()
			t.df = termDF(src, c.Term, it.DF())
		}
		t.wn = 1 / wTotal
		if n.Op == OpWSum {
			t.wn = n.Weights[i] / wTotal
		}
		if t.df > 0 && nd > 0 {
			idf := math.Log((float64(nd)+0.5)/float64(t.df)) / math.Log(float64(nd)+1)
			if idf < 0 {
				idf = 0
			}
			tfnUB := 1.0 // tf/(tf+0.5+…) < 1 for any tf
			if b, ok := it.(BoundedIterator); ok {
				if maxTF, known := b.MaxTF(); known {
					// tfn is increasing in tf and decreasing in docLen,
					// so maxTF/(maxTF+0.5) bounds it from above.
					tfnUB = float64(maxTF) / (float64(maxTF) + 0.5)
				}
			}
			t.sigma = (1 - DefaultBelief) * tfnUB * idf * t.wn
		}
		terms = append(terms, t)
	}

	// Pruning work happens in its own span so the bench can report the
	// pruned evaluation stage separately from exhaustive scoring.
	if rec := recorderOf(src); rec != nil {
		rec.BeginSpan(obs.StagePrune, "maxscore")
		defer rec.EndSpan()
	}

	// Ascending-bound order with prefix sums: order[:nonEss] are the
	// non-essential terms, and prefix[p] is the best score increment p
	// of them can contribute together.
	order := append([]*msTerm(nil), terms...)
	sort.SliceStable(order, func(i, j int) bool { return order[i].sigma < order[j].sigma })
	prefix := make([]float64, len(order)+1)
	for i, t := range order {
		prefix[i+1] = prefix[i] + t.sigma
	}

	// threshold returns the active pruning threshold: the heap's k-th
	// score once full, never below the caller's floor. -Inf disables
	// pruning entirely (no floor, heap not yet full).
	h := &resultHeap{}
	heap.Init(h)
	threshold := func() float64 {
		theta := math.Inf(-1)
		if floor > 0 {
			theta = floor
		}
		if h.Len() >= topK && (*h)[0].Score > theta {
			theta = (*h)[0].Score
		}
		return theta
	}
	nonEss := 0
	updatePartition := func() {
		theta := threshold()
		if math.IsInf(theta, -1) {
			nonEss = 0
			return
		}
		p := 0
		for p < len(order) && DefaultBelief+prefix[p+1]+slack < theta {
			p++
		}
		if p == len(order) {
			// With a heap-derived threshold this is unreachable (the
			// threshold is an achieved score, so it cannot exceed the
			// sum of every term's bound). A caller floor can exceed it
			// — no shard document can make the global top-k — but a
			// full non-essential set would end candidate generation,
			// so keep one essential term; the bound check prunes every
			// candidate it proposes.
			p = len(order) - 1
		}
		nonEss = p
	}

	updatePartition() // a floor may demote terms before any result lands
	beliefs := make([]float64, len(terms))
	for {
		// Candidates come from essential terms only: a document seen by
		// none of them is bounded by DefaultBelief+prefix[nonEss], which
		// the partition already placed below the threshold.
		candidate := int64(-1)
		for _, t := range order[nonEss:] {
			if t.pi != nil && t.pi.ok && (candidate < 0 || int64(t.pi.cur.Doc) < candidate) {
				candidate = int64(t.pi.cur.Doc)
			}
		}
		if candidate < 0 {
			break
		}
		doc := uint32(candidate)

		theta := threshold()
		// Refine the score bound: actual increments from essential terms
		// sitting on doc, optimistic sigma for unresolved non-essential
		// terms, resolved one at a time (largest bound first) with early
		// abandon.
		bound := DefaultBelief + prefix[nonEss]
		for _, t := range order[nonEss:] {
			if t.pi != nil && t.pi.ok && t.pi.cur.Doc == doc {
				bound += (t.beliefAtDoc(doc, src) - DefaultBelief) * t.wn
			}
		}
		pruned := bound+slack < theta
		if !pruned {
			for j := nonEss - 1; j >= 0; j-- {
				t := order[j]
				bound -= t.sigma
				if t.pi != nil {
					t.pi.advanceTo(doc)
					if t.pi.ok && t.pi.cur.Doc == doc {
						bound += (t.beliefAtDoc(doc, src) - DefaultBelief) * t.wn
					}
				}
				if bound+slack < theta {
					pruned = true
					break
				}
			}
		}
		if !pruned {
			for _, t := range terms {
				beliefs[t.idx] = t.beliefAtDoc(doc, src)
			}
			score := exactCombine(n, beliefs)
			if h.Len() < topK {
				heap.Push(h, Result{Doc: doc, Score: score})
				updatePartition()
			} else if top := (*h)[0]; score > top.Score ||
				(score == top.Score && doc < top.Doc) {
				(*h)[0] = Result{Doc: doc, Score: score}
				heap.Fix(h, 0)
				updatePartition()
			}
		}
		for _, t := range terms {
			if t.pi != nil && t.pi.ok && t.pi.cur.Doc == doc {
				t.pi.advance()
			}
		}
	}
	for _, t := range terms {
		if t.pi != nil {
			if err := t.pi.it.Err(); err != nil {
				return nil, err
			}
		}
	}

	out := make([]Result, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(Result)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Doc < out[j].Doc
	})
	return out, nil
}
