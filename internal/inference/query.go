// Package inference implements INQUERY's retrieval model: "a
// probabilistic information retrieval system based upon a Bayesian
// inference network model. The power of the inference network model is
// the consistent formalism it provides for reasoning about evidence of
// differing types" (paper §3.1, after Turtle & Croft).
//
// Queries are trees of belief operators over term evidence. The package
// provides the query language parser, the belief algebra, and both
// evaluation strategies the paper discusses: the fast, memory-hungry
// 'term-at-a-time' processing INQUERY uses, and the 'document-at-a-time'
// alternative it speculates "might scale better to large collections".
package inference

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// OpKind enumerates the belief operators of the query language.
type OpKind uint8

const (
	// OpTerm is a leaf: evidence from one term's inverted list.
	OpTerm OpKind = iota
	// OpSum averages the children's beliefs (#sum, the default).
	OpSum
	// OpWSum forms a weighted average (#wsum).
	OpWSum
	// OpAnd takes the product of beliefs (#and).
	OpAnd
	// OpOr combines as 1 - ∏(1-b) (#or).
	OpOr
	// OpNot negates a single child's belief (#not).
	OpNot
	// OpMax takes the maximum child belief (#max).
	OpMax
	// OpOrderedWindow matches children in order within a window (#odN;
	// #phrase is #od3).
	OpOrderedWindow
	// OpUnorderedWindow matches all children within any-order windows
	// (#uwN).
	OpUnorderedWindow
	// OpSyn treats its children as one synonym class (#syn).
	OpSyn
	// OpFilReq ranks by the second child only among documents that
	// match the first (#filreq(filter expr)) — INQUERY's "filter
	// require" for restricting a query to a document subset.
	OpFilReq
	// OpFilRej ranks by the second child only among documents that do
	// NOT match the first (#filrej(filter expr)).
	OpFilRej
)

// String returns the operator's query-language spelling.
func (k OpKind) String() string {
	switch k {
	case OpTerm:
		return "term"
	case OpSum:
		return "#sum"
	case OpWSum:
		return "#wsum"
	case OpAnd:
		return "#and"
	case OpOr:
		return "#or"
	case OpNot:
		return "#not"
	case OpMax:
		return "#max"
	case OpOrderedWindow:
		return "#od"
	case OpUnorderedWindow:
		return "#uw"
	case OpSyn:
		return "#syn"
	case OpFilReq:
		return "#filreq"
	case OpFilRej:
		return "#filrej"
	}
	return "?"
}

// Node is one vertex of a parsed query tree.
type Node struct {
	Op       OpKind
	Term     string    // OpTerm only
	Window   int       // OpOrderedWindow / OpUnorderedWindow
	Weights  []float64 // OpWSum: parallel to Children
	Children []*Node
}

// Terms appends the distinct terms mentioned anywhere in the tree, in
// first-appearance order — the quick scan INQUERY performs before
// evaluation to reserve already-resident inverted lists.
func (n *Node) Terms() []string {
	var out []string
	seen := make(map[string]bool)
	var walk func(*Node)
	walk = func(m *Node) {
		if m.Op == OpTerm {
			if !seen[m.Term] {
				seen[m.Term] = true
				out = append(out, m.Term)
			}
			return
		}
		for _, c := range m.Children {
			walk(c)
		}
	}
	walk(n)
	return out
}

// String renders the tree in query-language syntax.
func (n *Node) String() string {
	var b strings.Builder
	n.write(&b)
	return b.String()
}

func (n *Node) write(b *strings.Builder) {
	if n.Op == OpTerm {
		b.WriteString(n.Term)
		return
	}
	switch n.Op {
	case OpOrderedWindow:
		fmt.Fprintf(b, "#od%d(", n.Window)
	case OpUnorderedWindow:
		fmt.Fprintf(b, "#uw%d(", n.Window)
	default:
		b.WriteString(n.Op.String())
		b.WriteByte('(')
	}
	for i, c := range n.Children {
		if i > 0 {
			b.WriteByte(' ')
		}
		if n.Op == OpWSum {
			fmt.Fprintf(b, "%g ", n.Weights[i])
		}
		c.write(b)
	}
	b.WriteByte(')')
}

// ParseError reports a query syntax problem.
type ParseError struct {
	Query string
	Pos   int
	Msg   string
}

// Error implements the error interface.
func (e *ParseError) Error() string {
	return fmt.Sprintf("inference: parse %q at %d: %s", e.Query, e.Pos, e.Msg)
}

// Parse parses a query. A query is a sequence of items, each a bare term
// or an operator application `#op(item...)`; multiple top-level items
// are wrapped in #sum, INQUERY's default combination. Operator names:
// #sum #wsum #and #or #not #max #syn #phrase #odN #uwN #filreq #filrej.
// #wsum alternates numeric weights and items; the filter operators take
// exactly (filter, expression). Term normalization (stemming,
// stopping) is the caller's concern; Parse preserves terms verbatim.
func Parse(query string) (*Node, error) {
	p := &parser{src: query}
	var items []*Node
	for {
		p.skipSpace()
		if p.eof() {
			break
		}
		n, err := p.parseItem()
		if err != nil {
			return nil, err
		}
		items = append(items, n)
	}
	switch len(items) {
	case 0:
		return nil, &ParseError{query, 0, "empty query"}
	case 1:
		return items[0], nil
	default:
		return &Node{Op: OpSum, Children: items}, nil
	}
}

type parser struct {
	src string
	pos int
}

func (p *parser) eof() bool { return p.pos >= len(p.src) }

func (p *parser) skipSpace() {
	for !p.eof() {
		c := p.src[p.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == ',' {
			p.pos++
			continue
		}
		break
	}
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{p.src, p.pos, fmt.Sprintf(format, args...)}
}

func (p *parser) parseItem() (*Node, error) {
	p.skipSpace()
	if p.eof() {
		return nil, p.errf("unexpected end of query")
	}
	if p.src[p.pos] == '#' {
		return p.parseOperator()
	}
	if p.src[p.pos] == '(' || p.src[p.pos] == ')' {
		return nil, p.errf("unexpected %q", p.src[p.pos])
	}
	return p.parseTerm()
}

func (p *parser) parseTerm() (*Node, error) {
	start := p.pos
	for !p.eof() {
		c := rune(p.src[p.pos])
		if c == '(' || c == ')' || c == '#' || unicode.IsSpace(c) || c == ',' {
			break
		}
		p.pos++
	}
	if p.pos == start {
		return nil, p.errf("expected a term")
	}
	return &Node{Op: OpTerm, Term: p.src[start:p.pos]}, nil
}

func (p *parser) parseOperator() (*Node, error) {
	p.pos++ // consume '#'
	start := p.pos
	for !p.eof() && (isAlpha(p.src[p.pos]) || isDigit(p.src[p.pos])) {
		p.pos++
	}
	name := strings.ToLower(p.src[start:p.pos])
	node := &Node{}
	switch {
	case name == "sum":
		node.Op = OpSum
	case name == "wsum":
		node.Op = OpWSum
	case name == "and":
		node.Op = OpAnd
	case name == "or":
		node.Op = OpOr
	case name == "not":
		node.Op = OpNot
	case name == "max":
		node.Op = OpMax
	case name == "syn":
		node.Op = OpSyn
	case name == "filreq":
		node.Op = OpFilReq
	case name == "filrej":
		node.Op = OpFilRej
	case name == "phrase":
		node.Op = OpOrderedWindow
		node.Window = 3
	case strings.HasPrefix(name, "od"):
		node.Op = OpOrderedWindow
		w, err := windowSuffix(name[2:], 3)
		if err != nil {
			return nil, p.errf("bad window in #%s", name)
		}
		node.Window = w
	case strings.HasPrefix(name, "uw"):
		node.Op = OpUnorderedWindow
		w, err := windowSuffix(name[2:], 8)
		if err != nil {
			return nil, p.errf("bad window in #%s", name)
		}
		node.Window = w
	default:
		return nil, p.errf("unknown operator #%s", name)
	}

	p.skipSpace()
	if p.eof() || p.src[p.pos] != '(' {
		return nil, p.errf("expected '(' after #%s", name)
	}
	p.pos++
	for {
		p.skipSpace()
		if p.eof() {
			return nil, p.errf("missing ')' for #%s", name)
		}
		if p.src[p.pos] == ')' {
			p.pos++
			break
		}
		if node.Op == OpWSum {
			w, err := p.parseNumber()
			if err != nil {
				return nil, err
			}
			node.Weights = append(node.Weights, w)
			p.skipSpace()
		}
		child, err := p.parseItem()
		if err != nil {
			return nil, err
		}
		node.Children = append(node.Children, child)
	}
	if len(node.Children) == 0 {
		return nil, p.errf("#%s needs at least one argument", name)
	}
	if node.Op == OpNot && len(node.Children) != 1 {
		return nil, p.errf("#not takes exactly one argument")
	}
	if (node.Op == OpFilReq || node.Op == OpFilRej) && len(node.Children) != 2 {
		return nil, p.errf("#%s takes exactly two arguments (filter, expression)", name)
	}
	if node.Op == OpWSum && len(node.Weights) != len(node.Children) {
		return nil, p.errf("#wsum weights and items mismatched")
	}
	if node.Op == OpOrderedWindow || node.Op == OpUnorderedWindow {
		for _, c := range node.Children {
			if c.Op != OpTerm {
				return nil, p.errf("proximity operators take only terms")
			}
		}
		if node.Op == OpUnorderedWindow && node.Window < len(node.Children) {
			node.Window = len(node.Children)
		}
	}
	return node, nil
}

func (p *parser) parseNumber() (float64, error) {
	p.skipSpace()
	start := p.pos
	for !p.eof() {
		c := p.src[p.pos]
		if isDigit(c) || c == '.' || c == '-' || c == '+' {
			p.pos++
			continue
		}
		break
	}
	if p.pos == start {
		return 0, p.errf("expected a weight")
	}
	v, err := strconv.ParseFloat(p.src[start:p.pos], 64)
	if err != nil {
		return 0, p.errf("bad weight %q", p.src[start:p.pos])
	}
	return v, nil
}

// windowSuffix parses the numeric suffix of #odN/#uwN, with a default
// when absent (#od ≡ #od3, #uw ≡ #uw8).
func windowSuffix(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("bad window %q", s)
	}
	return n, nil
}

func isAlpha(c byte) bool { return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' }
func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// NormalizeTerms rewrites every term leaf through fn (stemming/stopping
// as configured by the engine). Terms for which fn returns "" are
// dropped; operators left without children are removed, and an entirely
// stopped query yields nil.
func (n *Node) NormalizeTerms(fn func(string) string) *Node {
	if n.Op == OpTerm {
		t := fn(n.Term)
		if t == "" {
			return nil
		}
		return &Node{Op: OpTerm, Term: t}
	}
	out := &Node{Op: n.Op, Window: n.Window}
	for i, c := range n.Children {
		nc := c.NormalizeTerms(fn)
		if nc == nil {
			continue
		}
		out.Children = append(out.Children, nc)
		if n.Op == OpWSum {
			out.Weights = append(out.Weights, n.Weights[i])
		}
	}
	if len(out.Children) == 0 {
		return nil
	}
	return out
}
