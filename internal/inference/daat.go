package inference

import (
	"container/heap"
	"fmt"
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/internal/postings"
)

// PostingIterator streams one inverted list in document order.
type PostingIterator interface {
	// Next returns the next posting; ok=false at the end of the list.
	Next() (p postings.Posting, ok bool)
	// DF is the term's document frequency from the record header.
	DF() uint64
	// Err reports a decoding error, if any, after Next returns false.
	Err() error
}

// StreamSource supplies posting iterators for document-at-a-time
// evaluation, "which gathered all of the evidence for one document
// before proceeding to the next" (paper §3.1). The paper notes this
// "might scale better to large collections" but "would be cumbersome
// with the current custom B-tree package"; Mneme's chunked objects make
// the streaming access pattern natural.
type StreamSource interface {
	// Iterator opens a stream over a term's list; ok=false when absent.
	Iterator(term string) (it PostingIterator, ok bool, err error)
	NumDocs() int
	DocLen(doc uint32) int
	AvgDocLen() float64
}

// sliceIterator adapts a decoded posting slice to PostingIterator; used
// by sources that materialize lists and by tests.
type sliceIterator struct {
	ps []postings.Posting
	i  int
}

// NewSliceIterator wraps an already-decoded list.
func NewSliceIterator(ps []postings.Posting) PostingIterator {
	return &sliceIterator{ps: ps}
}

func (s *sliceIterator) Next() (postings.Posting, bool) {
	if s.i >= len(s.ps) {
		return postings.Posting{}, false
	}
	p := s.ps[s.i]
	s.i++
	return p, true
}

func (s *sliceIterator) DF() uint64 { return uint64(len(s.ps)) }
func (s *sliceIterator) Err() error { return nil }

// peekIter keeps the iterator's current posting exposed.
type peekIter struct {
	it  PostingIterator
	cur postings.Posting
	ok  bool
}

func (p *peekIter) advance() {
	p.cur, p.ok = p.it.Next()
}

// leafState is one evidence leaf of the DAAT evaluation: a term, a
// synonym class, or a proximity expression over terms.
type leafState struct {
	node  *Node
	iters []*peekIter
	df    uint64 // exact for terms; estimated for compound leaves
}

// EvaluateDAAT evaluates the query document-at-a-time: all leaf streams
// advance together, and each candidate document's belief is computed
// completely before moving to the next document. For compound leaves
// (synonyms, proximity) the document frequency needed by the belief
// function is not known until the streams are exhausted, so it is
// estimated from the children's header statistics — the one respect in
// which DAAT scores can differ slightly from TAAT on such queries.
func EvaluateDAAT(n *Node, src StreamSource, topK int) ([]Result, error) {
	if containsFilter(n) {
		return nil, fmt.Errorf("inference: #filreq/#filrej require term-at-a-time evaluation")
	}
	leaves := make(map[*Node]*leafState)
	if err := collectLeaves(n, src, leaves); err != nil {
		return nil, err
	}
	// Gather iterators in tree order, not map order: the advance order
	// fixes the storage access sequence, and a deterministic sequence
	// keeps buffer hit counts and fault-in traces reproducible. The
	// gather slice is pooled across queries; elements are cleared on
	// return so pooled arrays pin no iterators.
	allp := gatherPool.Get().(*[]*peekIter)
	all := (*allp)[:0]
	defer func() {
		for i := range all {
			all[i] = nil
		}
		*allp = all[:0]
		gatherPool.Put(allp)
	}()
	var gather func(*Node)
	gather = func(n *Node) {
		if ls, ok := leaves[n]; ok {
			all = append(all, ls.iters...)
			return
		}
		for _, c := range n.Children {
			gather(c)
		}
	}
	gather(n)

	// The whole document-at-a-time sweep is one scoring span: postings
	// stream past inside it (via the source's counting iterators), and
	// any lazily-faulted chunk I/O nests as child spans.
	if rec := recorderOf(src); rec != nil {
		rec.BeginSpan(obs.StageScore, "daat")
		defer rec.EndSpan()
	}

	h := &resultHeap{}
	heap.Init(h)
	for {
		// The next candidate is the minimum current document.
		candidate := int64(-1)
		for _, pi := range all {
			if pi.ok && (candidate < 0 || int64(pi.cur.Doc) < candidate) {
				candidate = int64(pi.cur.Doc)
			}
		}
		if candidate < 0 {
			break
		}
		doc := uint32(candidate)
		score := evalDocNode(n, doc, leaves, src)
		if topK <= 0 || h.Len() < topK {
			heap.Push(h, Result{Doc: doc, Score: score})
		} else if top := (*h)[0]; score > top.Score ||
			(score == top.Score && doc < top.Doc) {
			(*h)[0] = Result{Doc: doc, Score: score}
			heap.Fix(h, 0)
		}
		for _, pi := range all {
			if pi.ok && pi.cur.Doc == doc {
				pi.advance()
			}
		}
	}
	for _, pi := range all {
		if err := pi.it.Err(); err != nil {
			return nil, err
		}
	}
	out := make([]Result, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(Result)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Doc < out[j].Doc
	})
	return out, nil
}

// containsFilter reports whether the tree uses a filter operator,
// whose candidate-set semantics need the full accumulator pass.
func containsFilter(n *Node) bool {
	if n.Op == OpFilReq || n.Op == OpFilRej {
		return true
	}
	for _, c := range n.Children {
		if containsFilter(c) {
			return true
		}
	}
	return false
}

// collectLeaves opens iterators for every evidence leaf in the tree.
func collectLeaves(n *Node, src StreamSource, leaves map[*Node]*leafState) error {
	switch n.Op {
	case OpTerm:
		ls := &leafState{node: n}
		it, ok, err := src.Iterator(n.Term)
		if err != nil {
			return err
		}
		if ok {
			pi := &peekIter{it: it}
			pi.advance()
			ls.iters = []*peekIter{pi}
			ls.df = termDF(src, n.Term, it.DF())
		}
		leaves[n] = ls
		return nil
	case OpSyn, OpOrderedWindow, OpUnorderedWindow:
		ls := &leafState{node: n}
		for _, c := range n.Children {
			it, ok, err := src.Iterator(c.Term)
			if err != nil {
				return err
			}
			if !ok {
				if n.Op != OpSyn {
					// A proximity expression with a missing term can
					// never match; drop all its iterators.
					ls.iters = nil
					ls.df = 0
					leaves[n] = ls
					return nil
				}
				// A synonym child absent from this shard's slice may
				// still exist elsewhere: its global df must count
				// toward the class bound or sharded scores drift.
				ls.df += termDF(src, c.Term, 0)
				continue
			}
			pi := &peekIter{it: it}
			pi.advance()
			ls.iters = append(ls.iters, pi)
			cdf := termDF(src, c.Term, it.DF())
			switch {
			case n.Op == OpSyn:
				ls.df += cdf // upper bound for a synonym class
			case ls.df == 0 || cdf < ls.df:
				ls.df = cdf // lower child df bounds proximity df
			}
		}
		if n.Op == OpSyn && uint64(src.NumDocs()) < ls.df {
			ls.df = uint64(src.NumDocs())
		}
		leaves[n] = ls
		return nil
	}
	for _, c := range n.Children {
		if err := collectLeaves(c, src, leaves); err != nil {
			return err
		}
	}
	return nil
}

// gatherPool recycles the per-query iterator gather slice, and valsPool
// the per-document child-belief scratch of every internal node visit —
// the two allocations the DAAT hot loop would otherwise make per query
// and per (document × operator) respectively. Each recursion frame
// borrows its own buffer, so nesting is safe.
var (
	gatherPool = sync.Pool{
		New: func() any {
			b := make([]*peekIter, 0, 16)
			return &b
		},
	}
	valsPool = sync.Pool{
		New: func() any {
			b := make([]float64, 0, 8)
			return &b
		},
	}
)

// evalDocNode computes the belief of one document under the tree.
func evalDocNode(n *Node, doc uint32, leaves map[*Node]*leafState, src StreamSource) float64 {
	if ls, ok := leaves[n]; ok {
		return leafBelief(ls, doc, src)
	}
	bp := valsPool.Get().(*[]float64)
	vals := (*bp)[:0]
	for _, c := range n.Children {
		vals = append(vals, evalDocNode(c, doc, leaves, src))
	}
	belief := DefaultBelief
	switch n.Op {
	case OpSum:
		s := 0.0
		for _, v := range vals {
			s += v
		}
		belief = s / float64(len(vals))
	case OpWSum:
		var s, w float64
		for i, v := range vals {
			s += n.Weights[i] * v
			w += n.Weights[i]
		}
		belief = s / w
	case OpAnd:
		s := 1.0
		for _, v := range vals {
			s *= v
		}
		belief = s
	case OpOr:
		s := 1.0
		for _, v := range vals {
			s *= 1 - v
		}
		belief = 1 - s
	case OpNot:
		belief = 1 - vals[0]
	case OpMax:
		s := vals[0]
		for _, v := range vals[1:] {
			if v > s {
				s = v
			}
		}
		belief = s
	}
	*bp = vals[:0]
	valsPool.Put(bp)
	return belief
}

func leafBelief(ls *leafState, doc uint32, src StreamSource) float64 {
	if len(ls.iters) == 0 || ls.df == 0 {
		return DefaultBelief
	}
	switch ls.node.Op {
	case OpTerm:
		pi := ls.iters[0]
		if !pi.ok || pi.cur.Doc != doc {
			return DefaultBelief
		}
		return Belief(pi.cur.TF(), src.DocLen(doc), src.AvgDocLen(), ls.df, src.NumDocs())
	case OpSyn:
		tf := 0
		for _, pi := range ls.iters {
			if pi.ok && pi.cur.Doc == doc {
				tf += pi.cur.TF()
			}
		}
		if tf == 0 {
			return DefaultBelief
		}
		return Belief(tf, src.DocLen(doc), src.AvgDocLen(), ls.df, src.NumDocs())
	default: // proximity: every child must be at doc
		lists := make([][]uint32, len(ls.iters))
		for i, pi := range ls.iters {
			if !pi.ok || pi.cur.Doc != doc {
				return DefaultBelief
			}
			lists[i] = pi.cur.Positions
		}
		var m int
		if ls.node.Op == OpOrderedWindow {
			m = countOrderedMatches(lists, ls.node.Window)
		} else {
			m = countUnorderedMatches(lists, ls.node.Window)
		}
		if m == 0 {
			return DefaultBelief
		}
		return Belief(m, src.DocLen(doc), src.AvgDocLen(), ls.df, src.NumDocs())
	}
}

// resultHeap is a min-heap by (score, then inverse doc) used to keep the
// running top-K during DAAT evaluation.
type resultHeap []Result

func (h resultHeap) Len() int { return len(h) }
func (h resultHeap) Less(i, j int) bool {
	if h[i].Score != h[j].Score {
		return h[i].Score < h[j].Score
	}
	return h[i].Doc > h[j].Doc
}
func (h resultHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x any)   { *h = append(*h, x.(Result)) }
func (h *resultHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
