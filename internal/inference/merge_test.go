package inference

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/postings"
)

// boundedSlice is a slice iterator that knows its max TF, standing in
// for the memtable iterator and v2 block readers.
type boundedSlice struct {
	sliceIterator
	maxTF uint32
}

func (b *boundedSlice) MaxTF() (uint32, bool) { return b.maxTF, true }

// brokenIter yields a few postings then fails.
type brokenIter struct {
	n   int
	err error
}

func (b *brokenIter) Next() (postings.Posting, bool) {
	if b.n > 0 {
		b.n--
		return postings.Posting{Doc: 1, Positions: []uint32{0}}, true
	}
	return postings.Posting{}, false
}
func (b *brokenIter) DF() uint64 { return uint64(b.n) }
func (b *brokenIter) Err() error { return b.err }

// chainParts splits a list into consecutive runs and wraps each in a
// slice iterator — the shape of segment + memtable lookups.
func chainParts(ps []postings.Posting, cuts ...int) []PostingIterator {
	var its []PostingIterator
	prev := 0
	for _, c := range cuts {
		its = append(its, NewSliceIterator(ps[prev:c]))
		prev = c
	}
	return append(its, NewSliceIterator(ps[prev:]))
}

func genAscending(rng *rand.Rand, n int) []postings.Posting {
	ps := make([]postings.Posting, n)
	doc := uint32(0)
	for i := range ps {
		doc += 1 + uint32(rng.Intn(7))
		tf := 1 + rng.Intn(4)
		pos := make([]uint32, tf)
		for j := range pos {
			pos[j] = uint32(j * 3)
		}
		ps[i] = postings.Posting{Doc: doc, Positions: pos}
	}
	return ps
}

func TestChainConcatenation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	want := genAscending(rng, 300)
	c := NewChain(chainParts(want, 100, 180)...)
	if c.DF() != 300 {
		t.Fatalf("DF = %d, want 300", c.DF())
	}
	var got []postings.Posting
	for {
		p, ok := c.Next()
		if !ok {
			break
		}
		got = append(got, p)
	}
	if c.Err() != nil {
		t.Fatal(c.Err())
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("chain order differs from concatenation")
	}
}

// TestChainAdvanceOracle drives Advance against a linear-scan oracle
// over randomized targets, with a real v2 block reader as the middle
// constituent so the native skip path is exercised.
func TestChainAdvanceOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	full := genAscending(rng, 600)
	mid := full[150:450]
	rec, err := postings.EncodeV2(mid)
	if err != nil {
		t.Fatal(err)
	}
	mkChain := func() *Chain {
		br, ok := postings.OpenBlockReader(rec)
		if !ok {
			t.Fatal("not a v2 record")
		}
		return NewChain(
			NewSliceIterator(full[:150]),
			br,
			nil, // absent segment lookup
			NewSliceIterator(full[450:]),
		)
	}
	maxDoc := full[len(full)-1].Doc
	for trial := 0; trial < 50; trial++ {
		c := mkChain()
		oracle := 0 // index of next unconsumed posting in full
		for oracle < len(full) {
			target := full[oracle].Doc + uint32(rng.Intn(40))
			if rng.Intn(3) == 0 { // mix plain Next in
				p, ok := c.Next()
				if !ok {
					t.Fatalf("trial %d: Next ended early at %d", trial, oracle)
				}
				if p.Doc != full[oracle].Doc {
					t.Fatalf("trial %d: Next doc %d, want %d", trial, p.Doc, full[oracle].Doc)
				}
				oracle++
				continue
			}
			for oracle < len(full) && full[oracle].Doc < target {
				oracle++
			}
			p, ok := c.Advance(target)
			if oracle >= len(full) {
				if ok {
					t.Fatalf("trial %d: Advance(%d) found %d past end", trial, target, p.Doc)
				}
				break
			}
			if !ok || p.Doc != full[oracle].Doc {
				t.Fatalf("trial %d: Advance(%d) = (%v,%v), want doc %d",
					trial, target, p.Doc, ok, full[oracle].Doc)
			}
			oracle++
		}
		if c.Err() != nil {
			t.Fatal(c.Err())
		}
		// Exhausted chains stay exhausted under both calls.
		if _, ok := c.Advance(maxDoc + 1); ok {
			t.Fatal("Advance past end returned a posting")
		}
		if _, ok := c.Next(); ok {
			t.Fatal("Next past end returned a posting")
		}
	}
}

func TestChainMaxTF(t *testing.T) {
	a := &boundedSlice{maxTF: 3}
	b := &boundedSlice{maxTF: 9}
	if tf, ok := NewChain(a, b).MaxTF(); !ok || tf != 9 {
		t.Fatalf("MaxTF = (%d,%v), want (9,true)", tf, ok)
	}
	// One unboundable constituent makes the whole bound unknown.
	if _, ok := NewChain(a, NewSliceIterator(nil), b).MaxTF(); ok {
		t.Fatal("MaxTF claimed a bound with an unbounded constituent")
	}
}

func TestChainErrorLatch(t *testing.T) {
	boom := errors.New("boom")
	tail := NewSliceIterator([]postings.Posting{{Doc: 99, Positions: []uint32{0}}})
	c := NewChain(&brokenIter{n: 1, err: boom}, tail)
	if _, ok := c.Next(); !ok {
		t.Fatal("first posting lost")
	}
	if _, ok := c.Next(); ok {
		t.Fatal("chain spliced past a failed constituent")
	}
	if !errors.Is(c.Err(), boom) {
		t.Fatalf("Err = %v, want boom", c.Err())
	}
	// The latched error also stops Advance, and the tail is untouched.
	if _, ok := c.Advance(0); ok {
		t.Fatal("Advance ignored latched error")
	}
	if p, ok := tail.Next(); !ok || p.Doc != 99 {
		t.Fatal("tail constituent was consumed past the error")
	}
}
