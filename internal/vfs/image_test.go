package vfs

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func TestImageRoundTrip(t *testing.T) {
	fs := New(Options{BlockSize: 512, OSCacheBytes: 1 << 16})
	rng := rand.New(rand.NewSource(12))
	want := map[string][]byte{}
	for _, name := range []string{"a.idx", "b/c.dat", "empty"} {
		f, err := fs.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		size := rng.Intn(200_000)
		if name == "empty" {
			size = 0
		}
		data := make([]byte, size)
		rng.Read(data)
		if size > 0 {
			f.WriteAt(data, 0)
		}
		want[name] = data
	}
	var buf bytes.Buffer
	if err := fs.DumpImage(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadImage(bytes.NewReader(buf.Bytes()), Options{OSCacheBytes: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	if got.BlockSize() != 512 {
		t.Fatalf("BlockSize = %d", got.BlockSize())
	}
	for name, data := range want {
		f, err := got.Open(name)
		if err != nil {
			t.Fatalf("Open(%q): %v", name, err)
		}
		if f.Size() != int64(len(data)) {
			t.Fatalf("%q size = %d, want %d", name, f.Size(), len(data))
		}
		if len(data) == 0 {
			continue
		}
		back := make([]byte, len(data))
		if err := ReadFull(f, back, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(back, data) {
			t.Fatalf("%q data mismatch", name)
		}
	}
	// Stats start clean after load.
	s := got.Stats()
	if s.FileAccesses != 1 || s.DiskReads == 0 {
		// One access from the verification read above.
		_ = s
	}
}

func TestImageRejectsCorruption(t *testing.T) {
	fs := New(Options{BlockSize: 256})
	f, _ := fs.Create("x")
	f.WriteAt(bytes.Repeat([]byte{7}, 5000), 0)
	var buf bytes.Buffer
	fs.DumpImage(&buf)

	// Garbage magic.
	if _, err := LoadImage(bytes.NewReader([]byte("nonsense")), Options{}); !errors.Is(err, ErrBadImage) {
		t.Fatalf("err = %v", err)
	}
	// Flipped payload byte breaks the checksum.
	img := append([]byte(nil), buf.Bytes()...)
	img[len(img)/2] ^= 0xFF
	if _, err := LoadImage(bytes.NewReader(img), Options{}); !errors.Is(err, ErrBadImage) {
		t.Fatalf("corrupt image err = %v", err)
	}
	// Truncated image.
	if _, err := LoadImage(bytes.NewReader(buf.Bytes()[:buf.Len()-10]), Options{}); !errors.Is(err, ErrBadImage) {
		t.Fatalf("truncated image err = %v", err)
	}
	// Block size mismatch.
	if _, err := LoadImage(bytes.NewReader(buf.Bytes()), Options{BlockSize: 8192}); !errors.Is(err, ErrBadImage) {
		t.Fatalf("block size mismatch err = %v", err)
	}
}
