package vfs

// Deterministic fault injection. A FaultPlan is attached to an FS with
// SetFaultPlan and consulted on every read, write, and sync system
// call. It can fail the Nth operation of each kind with an injected I/O
// error, tear the failing write at a disk-block boundary (only the
// bytes up to the boundary reach the disk), and simulate a crash by
// freezing the disk: after the first injected fault fires, every
// subsequent operation fails, so the file data at that instant is
// exactly the image a machine would reboot with. Clone then produces a
// fresh FS from that frozen image for recovery testing.
//
// Plans are deterministic: a seed drives the optional probabilistic
// mode, and operation ordinals are counted per kind, so the same
// workload under the same plan always fails at the same point.
//
// Op-ordinal semantics: every read, write, and sync that reaches the
// simulated device increments its kind's counter, whether or not a
// fault fires, and the counters never reset for the life of the plan.
// FailRead(n)/FailWrite(n)/FailSync(n) name the 1-based ordinal of the
// single operation to fail; FailReadEvery(n) fails every read whose
// ordinal is a multiple of n. A failed operation still consumed its
// ordinal, so a caller that retries sees a *new* ordinal — this is what
// makes FailRead(n).Once() a transient fault (the retry re-reads at
// ordinal n+1 and succeeds) while FailReadEvery(1) is a hard outage.
// Once() caps the plan at a single injected fault across all modes;
// without it, periodic and probabilistic modes keep firing.

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
)

// ErrInjected is the error returned by operations that a FaultPlan
// chose to fail. Wrapped errors always chain to it.
var ErrInjected = errors.New("vfs: injected I/O fault")

// faultOp indexes the per-kind operation counters of a FaultPlan.
type faultOp int

const (
	opRead faultOp = iota
	opWrite
	opSync
	opKinds
)

func (k faultOp) String() string {
	switch k {
	case opRead:
		return "read"
	case opWrite:
		return "write"
	case opSync:
		return "sync"
	}
	return "op"
}

// FaultPlan schedules injected failures for one FS. Configure it with
// the chainable FailRead/FailWrite/FailSync/WithTear/WithCrash calls
// before attaching; the plan is safe for concurrent use afterwards.
type FaultPlan struct {
	mu        sync.Mutex
	rng       *rand.Rand
	prob      float64
	counts    [opKinds]int64 // operations observed, per kind
	failAt    [opKinds]int64 // 1-based ordinal to fail; 0 = never
	failEvery [opKinds]int64 // fail every nth op; 0 = never
	maxFires  int64          // cap on injected faults; 0 = unlimited
	tear      bool
	crash     bool
	crashed   bool
	fired     int64
}

// NewFaultPlan creates an empty plan. The seed drives the probabilistic
// mode (WithProbability); plans that only use fixed ordinals behave
// identically for every seed.
func NewFaultPlan(seed int64) *FaultPlan {
	return &FaultPlan{rng: rand.New(rand.NewSource(seed))}
}

// FailRead schedules the nth read access (1-based) to fail.
func (p *FaultPlan) FailRead(n int64) *FaultPlan { p.failAt[opRead] = n; return p }

// FailWrite schedules the nth write access (1-based) to fail.
func (p *FaultPlan) FailWrite(n int64) *FaultPlan { p.failAt[opWrite] = n; return p }

// FailSync schedules the nth Sync call (1-based) to fail.
func (p *FaultPlan) FailSync(n int64) *FaultPlan { p.failAt[opSync] = n; return p }

// FailReadEvery schedules every nth read (ordinals n, 2n, 3n, ...) to
// fail — a periodic fault. n <= 0 disables the mode. Combine with
// Once() to turn the first periodic hit into a single transient fault.
func (p *FaultPlan) FailReadEvery(n int64) *FaultPlan {
	if n <= 0 {
		n = 0
	}
	p.failEvery[opRead] = n
	return p
}

// Once caps the plan at a single injected fault: after the first fault
// fires, the plan goes inert (ordinals keep advancing, nothing more
// fails). This is the transient mode — a retry of the failed operation
// lands on a fresh ordinal and succeeds. Once has no effect on a
// WithCrash plan's frozen-disk behavior.
func (p *FaultPlan) Once() *FaultPlan { p.maxFires = 1; return p }

// WithTear makes the failing write a torn write: the bytes up to the
// first disk-block boundary past the write's start offset reach the
// disk, the rest do not — the partial-write anatomy of a power cut.
func (p *FaultPlan) WithTear() *FaultPlan { p.tear = true; return p }

// WithCrash freezes the disk once the first fault fires: every
// subsequent operation fails too, so the file data is exactly the image
// present at the instant of the crash.
func (p *FaultPlan) WithCrash() *FaultPlan { p.crash = true; return p }

// WithProbability makes every operation fail independently with
// probability prob, driven by the plan's seed. Combine with WithCrash
// for randomized crash-point soak tests.
func (p *FaultPlan) WithProbability(prob float64) *FaultPlan { p.prob = prob; return p }

// Fired returns how many faults the plan has injected.
func (p *FaultPlan) Fired() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fired
}

// Crashed reports whether the disk is frozen.
func (p *FaultPlan) Crashed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.crashed
}

// Counts returns the operations observed so far, in (reads, writes,
// syncs) order. Observation happens whether or not a fault fired.
func (p *FaultPlan) Counts() (reads, writes, syncs int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.counts[opRead], p.counts[opWrite], p.counts[opSync]
}

// failNow decides whether the operation whose ordinal was just counted
// must fail, consulting the single-ordinal, periodic, and probabilistic
// modes in that order, gated by the Once cap. Caller holds p.mu.
func (p *FaultPlan) failNow(kind faultOp) bool {
	if p.maxFires > 0 && p.fired >= p.maxFires {
		return false
	}
	n := p.counts[kind]
	if p.failAt[kind] != 0 && n == p.failAt[kind] {
		return true
	}
	if p.failEvery[kind] > 0 && n%p.failEvery[kind] == 0 {
		return true
	}
	return p.prob > 0 && p.rng.Float64() < p.prob
}

// before observes one operation of the given kind and decides whether
// it fails. It returns a non-nil error chained to ErrInjected when the
// operation must fail.
func (p *FaultPlan) before(kind faultOp) error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.crashed {
		return fmt.Errorf("%s after crash: %w", kind, ErrInjected)
	}
	p.counts[kind]++
	if !p.failNow(kind) {
		return nil
	}
	p.fired++
	if p.crash {
		p.crashed = true
	}
	return fmt.Errorf("%s #%d: %w", kind, p.counts[kind], ErrInjected)
}

// beforeWrite observes a write of n bytes at off and decides its fate:
// allow is the number of leading bytes that reach the disk (n when the
// write succeeds; a block-boundary prefix when the failing write tears;
// 0 otherwise), and err is non-nil when the write must report failure.
// A frozen disk rejects the write outright — nothing reaches it.
func (p *FaultPlan) beforeWrite(off int64, n, blockSize int) (allow int, err error) {
	if p == nil {
		return n, nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.crashed {
		return 0, fmt.Errorf("write after crash: %w", ErrInjected)
	}
	p.counts[opWrite]++
	if !p.failNow(opWrite) {
		return n, nil
	}
	p.fired++
	if p.crash {
		p.crashed = true
	}
	err = fmt.Errorf("write #%d: %w", p.counts[opWrite], ErrInjected)
	if p.tear {
		// Tear at the next block boundary: the device completed the
		// current block's transfer and lost the rest.
		if keep := blockSize - int(off%int64(blockSize)); keep < n {
			return keep, err
		}
	}
	return 0, err
}

// SetFaultPlan attaches (or, with nil, detaches) a fault plan. All
// subsequent reads, writes, and syncs on the file system consult it.
func (fs *FS) SetFaultPlan(p *FaultPlan) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.faults = p
}

// Clone returns an independent deep copy of the file system's current
// disk contents — the "frozen image" a machine would reboot with after
// a crash. The clone has fresh counters, a fresh OS cache per opts, and
// no fault plan. Open handles on the original do not affect the clone.
func (fs *FS) Clone(opts Options) *FS {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if opts.BlockSize == 0 {
		opts.BlockSize = fs.blockSize
	}
	out := New(opts)
	for name, fd := range fs.files {
		out.nextID++
		nfd := &fileData{name: name, id: out.nextID, size: fd.size}
		nfd.blocks = make([][]byte, len(fd.blocks))
		for i, blk := range fd.blocks {
			nfd.blocks[i] = append([]byte(nil), blk...)
		}
		out.files[name] = nfd
	}
	return out
}

// FlipByte XORs the byte at off in name's data with mask, bypassing all
// I/O accounting and fault injection — the bit-rot half of the fault
// model, used to exercise checksum verification.
func (fs *FS) FlipByte(name string, off int64, mask byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fd, ok := fs.files[name]
	if !ok {
		return fmt.Errorf("flip %q: %w", name, ErrNotExist)
	}
	if off < 0 || off >= fd.size {
		return fmt.Errorf("vfs: flip %q: offset %d outside file of %d bytes", name, off, fd.size)
	}
	bs := int64(fs.blockSize)
	fd.blocks[off/bs][off%bs] ^= mask
	return nil
}
