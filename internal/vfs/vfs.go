// Package vfs provides a simulated storage stack: an in-memory block
// "disk", an operating-system block cache, per-filesystem I/O accounting,
// and a deterministic 1993-era time model.
//
// The paper's evaluation (Tables 3-5) is driven entirely by three
// counters measured on a DECstation 5000/240 running ULTRIX:
//
//	I — the number of 8 Kbyte blocks actually read from disk,
//	A — the average number of file accesses (read system calls) per
//	    inverted-list record lookup, and
//	B — the total number of Kbytes read from the inverted file.
//
// Both storage backends (the custom B-tree package and the Mneme
// persistent object store) perform all file I/O through this package, so
// the same counters can be reported for the reproduction. The ULTRIX
// file-system buffer cache — which satisfies some file accesses without
// disk activity and which the paper purges with a 32 Mbyte "chill file"
// before every run — is modelled by an LRU block cache inside FS; Chill
// performs the purge.
//
// All data lives in memory. Files grow in units of the block size and
// behave like ordinary byte-addressable files.
package vfs

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// DefaultBlockSize is the disk transfer block size used throughout the
// paper: "Each disk access causes 8 Kbytes to be read from disk".
const DefaultBlockSize = 8192

// Common errors returned by FS and File operations.
var (
	ErrNotExist = errors.New("vfs: file does not exist")
	ErrExist    = errors.New("vfs: file already exists")
	ErrClosed   = errors.New("vfs: file is closed")
)

// Stats holds cumulative I/O counters for a file system. The fields map
// onto the paper's Table 5 columns as documented on each field.
type Stats struct {
	// FileAccesses counts read system calls (File.ReadAt and friends).
	// Divided by the number of record lookups it yields the paper's "A".
	FileAccesses int64 `json:"file_accesses"`
	// DiskReads counts blocks read from the simulated disk, i.e. read
	// accesses that the OS block cache could not satisfy. This is the
	// paper's "I" (I/O inputs from getrusage).
	DiskReads int64 `json:"disk_reads"`
	// CacheHits counts block reads satisfied by the OS block cache.
	CacheHits int64 `json:"cache_hits"`
	// BytesRead is the total number of bytes requested by read calls —
	// the paper's "B" (reported in Kbytes there).
	BytesRead int64 `json:"bytes_read"`

	// FileWrites counts write system calls.
	FileWrites int64 `json:"file_writes"`
	// DiskWrites counts blocks written to the simulated disk.
	DiskWrites int64 `json:"disk_writes"`
	// BytesWritten is the total number of bytes passed to write calls.
	BytesWritten int64 `json:"bytes_written"`
}

// Add returns the field-wise sum of s and t.
func (s Stats) Add(t Stats) Stats {
	return Stats{
		FileAccesses: s.FileAccesses + t.FileAccesses,
		DiskReads:    s.DiskReads + t.DiskReads,
		CacheHits:    s.CacheHits + t.CacheHits,
		BytesRead:    s.BytesRead + t.BytesRead,
		FileWrites:   s.FileWrites + t.FileWrites,
		DiskWrites:   s.DiskWrites + t.DiskWrites,
		BytesWritten: s.BytesWritten + t.BytesWritten,
	}
}

// Sub returns the field-wise difference s - t. It is used to compute the
// counters for a single run from two snapshots.
func (s Stats) Sub(t Stats) Stats {
	return Stats{
		FileAccesses: s.FileAccesses - t.FileAccesses,
		DiskReads:    s.DiskReads - t.DiskReads,
		CacheHits:    s.CacheHits - t.CacheHits,
		BytesRead:    s.BytesRead - t.BytesRead,
		FileWrites:   s.FileWrites - t.FileWrites,
		DiskWrites:   s.DiskWrites - t.DiskWrites,
		BytesWritten: s.BytesWritten - t.BytesWritten,
	}
}

// Options configures a file system.
type Options struct {
	// BlockSize is the disk transfer unit in bytes. Zero selects
	// DefaultBlockSize (8 Kbytes, as in the paper).
	BlockSize int
	// OSCacheBytes is the capacity of the simulated operating-system
	// block cache. Zero disables OS caching entirely (every read access
	// becomes a disk read).
	OSCacheBytes int64
}

// FS is a simulated file system. It is safe for concurrent use.
type FS struct {
	mu        sync.Mutex
	blockSize int
	files     map[string]*fileData
	cache     *blockCache
	stats     Stats
	nextID    uint64
	// faults, when non-nil, is consulted on every read, write, and sync
	// (see FaultPlan).
	faults *FaultPlan
	// rec, when non-nil, receives per-access trace events (file access,
	// disk read/write, cache hit, bytes moved) attributed to the
	// caller's current span. Nil when tracing is off — the hot path
	// pays one branch.
	rec obs.Recorder
}

// New creates an empty file system.
func New(opts Options) *FS {
	bs := opts.BlockSize
	if bs <= 0 {
		bs = DefaultBlockSize
	}
	var c *blockCache
	if opts.OSCacheBytes > 0 {
		capBlocks := opts.OSCacheBytes / int64(bs)
		if capBlocks < 1 {
			capBlocks = 1
		}
		c = newBlockCache(capBlocks)
	}
	return &FS{
		blockSize: bs,
		files:     make(map[string]*fileData),
		cache:     c,
	}
}

// BlockSize reports the disk transfer unit in bytes.
func (fs *FS) BlockSize() int { return fs.blockSize }

// Create creates a new empty file. It fails if the name already exists.
func (fs *FS) Create(name string) (*File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; ok {
		return nil, fmt.Errorf("create %q: %w", name, ErrExist)
	}
	fs.nextID++
	fd := &fileData{name: name, id: fs.nextID}
	fs.files[name] = fd
	return &File{fs: fs, fd: fd}, nil
}

// OpenOrCreate opens name, creating it if absent.
func (fs *FS) OpenOrCreate(name string) (*File, error) {
	f, err := fs.Open(name)
	if errors.Is(err, ErrNotExist) {
		return fs.Create(name)
	}
	return f, err
}

// Open opens an existing file.
func (fs *FS) Open(name string) (*File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fd, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("open %q: %w", name, ErrNotExist)
	}
	return &File{fs: fs, fd: fd}, nil
}

// Remove deletes a file and evicts its blocks from the OS cache.
func (fs *FS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fd, ok := fs.files[name]
	if !ok {
		return fmt.Errorf("remove %q: %w", name, ErrNotExist)
	}
	delete(fs.files, name)
	if fs.cache != nil {
		fs.cache.evictFile(fd.id)
	}
	return nil
}

// Exists reports whether name names an existing file.
func (fs *FS) Exists(name string) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, ok := fs.files[name]
	return ok
}

// Names returns the names of all files in the file system, sorted.
func (fs *FS) Names() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	names := make([]string, 0, len(fs.files))
	for n := range fs.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SetRecorder attaches (or, with nil, detaches) a trace recorder that
// observes every subsequent read, write, and sync. Recorders are for
// single-stream diagnostic tracing: attach one only while no other
// goroutine is using the file system.
func (fs *FS) SetRecorder(r obs.Recorder) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.rec = r
}

// Chill purges the OS block cache, mimicking the paper's procedure of
// reading a 32 Mbyte chill file before each run "to purge the operating
// system file buffers and guarantee that no inverted file data was
// cached by the file system across runs". Counters are unaffected.
func (fs *FS) Chill() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.cache != nil {
		fs.cache.clear()
	}
}

// Stats returns a snapshot of the cumulative counters.
func (fs *FS) Stats() Stats {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.stats
}

// ResetStats zeroes all counters.
func (fs *FS) ResetStats() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.stats = Stats{}
}

// TotalSize returns the sum of all file sizes in bytes.
func (fs *FS) TotalSize() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var n int64
	for _, fd := range fs.files {
		n += fd.size
	}
	return n
}

// fileData is the on-"disk" representation of a file: a sequence of
// fixed-size blocks plus a logical size.
type fileData struct {
	name   string
	id     uint64
	blocks [][]byte
	size   int64
}

// File is a handle to a file within an FS. Handles are safe for
// concurrent use: all I/O serializes on the file system's lock, and the
// closed flag is atomic.
type File struct {
	fs     *FS
	fd     *fileData
	closed atomic.Bool
}

// Name returns the file's name.
func (f *File) Name() string { return f.fd.name }

// Size returns the file's logical size in bytes.
func (f *File) Size() int64 {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	return f.fd.size
}

// Close invalidates the handle. The file's data remains in the FS.
// Closing an already-closed handle returns a stable error wrapping
// ErrClosed, so double-close bugs surface instead of passing silently.
func (f *File) Close() error {
	if !f.closed.CompareAndSwap(false, true) {
		return fmt.Errorf("vfs: close %q: %w", f.fd.name, ErrClosed)
	}
	return nil
}

// ReadAt reads len(p) bytes starting at offset off. It counts one file
// access regardless of length, touches every spanned block through the
// OS cache (counting disk reads for misses), and adds len(p) to
// BytesRead. Reads past the current end of file return io.EOF, with the
// available prefix filled in, matching os.File semantics.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	if f.closed.Load() {
		return 0, fmt.Errorf("vfs: read %q: %w", f.fd.name, ErrClosed)
	}
	if off < 0 {
		return 0, fmt.Errorf("vfs: negative read offset %d", off)
	}
	fs := f.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()

	if err := fs.faults.before(opRead); err != nil {
		return 0, fmt.Errorf("vfs: read %q: %w", f.fd.name, err)
	}
	fs.stats.FileAccesses++
	if fs.rec != nil {
		fs.rec.Event(obs.EvFileAccess, f.fd.name, 1)
	}
	if len(p) == 0 {
		return 0, nil
	}
	n := len(p)
	short := false
	if off >= f.fd.size {
		return 0, io.EOF
	}
	if off+int64(n) > f.fd.size {
		n = int(f.fd.size - off)
		short = true
	}
	blocks, hits := fs.touchBlocks(f.fd, off, int64(n), true)
	fs.stats.BytesRead += int64(n)
	if fs.rec != nil {
		fs.rec.Event(obs.EvBytesRead, f.fd.name, int64(n))
		if hits > 0 {
			fs.rec.Event(obs.EvCacheHit, f.fd.name, hits)
		}
		if miss := blocks - hits; miss > 0 {
			fs.rec.Event(obs.EvDiskRead, f.fd.name, miss)
		}
	}
	f.copyOut(p[:n], off)
	if short {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt writes len(p) bytes at offset off, growing the file as needed.
// It counts one file write access, len(p) bytes written, and one disk
// write per spanned block (write-through). Written blocks enter the OS
// cache, as a unified buffer cache would. Under an active FaultPlan the
// write may fail, possibly torn: the returned count is the prefix that
// actually reached the disk.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	if f.closed.Load() {
		return 0, fmt.Errorf("vfs: write %q: %w", f.fd.name, ErrClosed)
	}
	if off < 0 {
		return 0, fmt.Errorf("vfs: negative write offset %d", off)
	}
	fs := f.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()

	allow, ferr := fs.faults.beforeWrite(off, len(p), fs.blockSize)
	if ferr != nil {
		ferr = fmt.Errorf("vfs: write %q: %w", f.fd.name, ferr)
		if allow <= 0 {
			return 0, ferr
		}
		p = p[:allow] // torn write: the leading block still lands
	}
	fs.stats.FileWrites++
	if fs.rec != nil {
		fs.rec.Event(obs.EvFileWrite, f.fd.name, 1)
	}
	if len(p) == 0 {
		return 0, ferr
	}
	end := off + int64(len(p))
	fs.ensureSize(f.fd, end)
	fs.stats.BytesWritten += int64(len(p))
	nblocks, _ := fs.touchBlocks(f.fd, off, int64(len(p)), false)
	fs.stats.DiskWrites += nblocks
	if fs.rec != nil {
		fs.rec.Event(obs.EvBytesWritten, f.fd.name, int64(len(p)))
		fs.rec.Event(obs.EvDiskWrite, f.fd.name, nblocks)
	}
	f.copyIn(p, off)
	return len(p), ferr
}

// Truncate sets the file's logical size. Growing zero-fills.
func (f *File) Truncate(size int64) error {
	if f.closed.Load() {
		return fmt.Errorf("vfs: truncate %q: %w", f.fd.name, ErrClosed)
	}
	if size < 0 {
		return fmt.Errorf("vfs: negative truncate size %d", size)
	}
	fs := f.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if size > f.fd.size {
		fs.ensureSize(f.fd, size)
	} else {
		f.fd.size = size
		want := int((size + int64(fs.blockSize) - 1) / int64(fs.blockSize))
		if want < len(f.fd.blocks) {
			f.fd.blocks = f.fd.blocks[:want]
			if fs.cache != nil {
				fs.cache.evictFileFrom(f.fd.id, int64(want))
			}
		}
		// Zero the tail of the last kept block so re-growth reads zeros.
		if want > 0 {
			tail := int(size - int64(want-1)*int64(fs.blockSize))
			blk := f.fd.blocks[want-1]
			for i := tail; i < len(blk); i++ {
				blk[i] = 0
			}
		}
	}
	return nil
}

// Sync is a no-op provided for interface parity with real files.
func (f *File) Sync() error {
	if f.closed.Load() {
		return fmt.Errorf("vfs: sync %q: %w", f.fd.name, ErrClosed)
	}
	fs := f.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.faults.before(opSync); err != nil {
		return fmt.Errorf("vfs: sync %q: %w", f.fd.name, err)
	}
	return nil
}

// ensureSize grows fd to at least size bytes, allocating zero blocks.
// Callers must hold fs.mu.
func (fs *FS) ensureSize(fd *fileData, size int64) {
	if size <= fd.size {
		return
	}
	need := int((size + int64(fs.blockSize) - 1) / int64(fs.blockSize))
	for len(fd.blocks) < need {
		fd.blocks = append(fd.blocks, make([]byte, fs.blockSize))
	}
	fd.size = size
}

// touchBlocks walks every block overlapped by [off, off+n) and, when
// counting reads, classifies each as an OS cache hit or a disk read. It
// returns the number of blocks spanned and, for reads, how many were
// cache hits. Callers must hold fs.mu.
func (fs *FS) touchBlocks(fd *fileData, off, n int64, read bool) (count, hits int64) {
	first := off / int64(fs.blockSize)
	last := (off + n - 1) / int64(fs.blockSize)
	count = last - first + 1
	for b := first; b <= last; b++ {
		if fs.cache == nil {
			if read {
				fs.stats.DiskReads++
			}
			continue
		}
		if fs.cache.touch(fd.id, b) {
			if read {
				fs.stats.CacheHits++
				hits++
			}
		} else {
			if read {
				fs.stats.DiskReads++
			}
			fs.cache.insert(fd.id, b)
		}
	}
	return count, hits
}

// copyOut copies file bytes [off, off+len(p)) into p. Callers must hold
// fs.mu and guarantee the range is within the file.
func (f *File) copyOut(p []byte, off int64) {
	bs := int64(f.fs.blockSize)
	for len(p) > 0 {
		bi := off / bs
		bo := off % bs
		blk := f.fd.blocks[bi]
		c := copy(p, blk[bo:])
		p = p[c:]
		off += int64(c)
	}
}

// copyIn copies p into file bytes starting at off. Callers must hold
// fs.mu and guarantee the file has been grown to cover the range.
func (f *File) copyIn(p []byte, off int64) {
	bs := int64(f.fs.blockSize)
	for len(p) > 0 {
		bi := off / bs
		bo := off % bs
		blk := f.fd.blocks[bi]
		c := copy(blk[bo:], p)
		p = p[c:]
		off += int64(c)
	}
}

// ReadFull reads exactly len(p) bytes at off or returns an error.
func ReadFull(f *File, p []byte, off int64) error {
	n, err := f.ReadAt(p, off)
	if n == len(p) {
		return nil
	}
	if err == nil || err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
