package vfs

import (
	"fmt"
	"hash/crc32"
	"time"
)

// CopyOptions tunes CopyFile. The zero value copies in 256 KiB chunks
// with no pacing.
type CopyOptions struct {
	// ChunkBytes is the copy unit; zero selects 256 KiB.
	ChunkBytes int
	// Pace, when non-nil, is called after every chunk with the chunk
	// length. Repair paths install a rate limiter here so a rebuild
	// cannot starve live queries of I/O; tests install counters or
	// yield points to interleave deterministically.
	Pace func(n int)
}

// PaceBytesPerSec returns a Pace callback that sleeps long enough
// after each chunk to hold the copy at roughly bps bytes per second.
func PaceBytesPerSec(bps int64) func(int) {
	if bps <= 0 {
		return nil
	}
	return func(n int) {
		time.Sleep(time.Duration(float64(n) / float64(bps) * float64(time.Second)))
	}
}

// CopyFile copies srcName on src to dstName on dst chunk by chunk,
// replacing any existing destination, and returns the byte count and
// the CRC32 (IEEE) of the copied content. The copy goes through the
// normal ReadAt/WriteAt paths, so fault plans on either FS apply — a
// replica rebuild exercises exactly the machinery live queries use.
func CopyFile(src *FS, srcName string, dst *FS, dstName string, opt CopyOptions) (int64, uint32, error) {
	chunk := opt.ChunkBytes
	if chunk <= 0 {
		chunk = 256 << 10
	}
	sf, err := src.Open(srcName)
	if err != nil {
		return 0, 0, fmt.Errorf("vfs: copy source: %w", err)
	}
	if dst.Exists(dstName) {
		if err := dst.Remove(dstName); err != nil {
			return 0, 0, fmt.Errorf("vfs: copy dest: %w", err)
		}
	}
	df, err := dst.Create(dstName)
	if err != nil {
		return 0, 0, fmt.Errorf("vfs: copy dest: %w", err)
	}
	size := sf.Size()
	crc := crc32.NewIEEE()
	buf := make([]byte, chunk)
	var off int64
	for off < size {
		n := size - off
		if n > int64(chunk) {
			n = int64(chunk)
		}
		p := buf[:n]
		if err := ReadFull(sf, p, off); err != nil {
			return off, 0, fmt.Errorf("vfs: copy read %s@%d: %w", srcName, off, err)
		}
		if _, err := df.WriteAt(p, off); err != nil {
			return off, 0, fmt.Errorf("vfs: copy write %s@%d: %w", dstName, off, err)
		}
		crc.Write(p)
		off += n
		if opt.Pace != nil {
			opt.Pace(int(n))
		}
	}
	if err := df.Sync(); err != nil {
		return off, 0, fmt.Errorf("vfs: copy sync %s: %w", dstName, err)
	}
	return off, crc.Sum32(), nil
}
