package vfs

import (
	"time"

	"repro/internal/obs"
)

// TimeModel converts I/O counters and retrieval-engine work into
// estimated elapsed time for a 1993-era platform. The paper measured a
// DECstation 5000/240 (40 MHz MIPS R3000) with RZ25/RZ58 SCSI disks
// running ULTRIX V4.2A; the constants below approximate that machine:
//
//   - DiskReadPerBlock: one 8 Kbyte read from an RZ58 (~12.5 ms average
//     seek + ~5.6 ms rotational latency at 5400 RPM, partially amortized
//     by sequential access and track buffering) ≈ 9 ms.
//   - SyscallOverhead: a read() system call plus file-system lookup on a
//     40 MHz R3000 ≈ 120 µs.
//   - CopyPerByte: kernel/user copy plus buffer-cache bookkeeping
//     ≈ 0.1 µs per byte (~10 Mbyte/s memory system).
//   - PostingCost: the inference retrieval-and-ranking engine's user-CPU
//     cost per posting entry processed (decompress, score, accumulate).
//   - QueryOverhead: per-query parse and setup cost.
//
// The model is deterministic: identical runs produce identical times.
// Absolute values are approximations; the reproduction relies on the
// orderings and ratios they induce, which are functions of the counters.
type TimeModel struct {
	DiskReadPerBlock  time.Duration
	DiskWritePerBlock time.Duration
	SyscallOverhead   time.Duration
	CopyPerByte       time.Duration
	PostingCost       time.Duration
	QueryOverhead     time.Duration
}

// Model1993 returns the DECstation 5000/240 + RZ58 model used by the
// experiment harness.
func Model1993() TimeModel {
	return TimeModel{
		DiskReadPerBlock:  9 * time.Millisecond,
		DiskWritePerBlock: 10 * time.Millisecond,
		SyscallOverhead:   120 * time.Microsecond,
		CopyPerByte:       100 * time.Nanosecond,
		PostingCost:       9 * time.Microsecond,
		QueryOverhead:     25 * time.Millisecond,
	}
}

// Costs adapts the time model to the obs cost model, so traces and
// benches convert per-span event counts into the same deterministic
// 1993-machine estimates the experiment tables report.
func (m TimeModel) Costs() obs.CostModel {
	return obs.CostModel{
		DiskReadNS:    m.DiskReadPerBlock.Nanoseconds(),
		DiskWriteNS:   m.DiskWritePerBlock.Nanoseconds(),
		SyscallNS:     m.SyscallOverhead.Nanoseconds(),
		CopyPerByteNS: float64(m.CopyPerByte.Nanoseconds()),
		PostingNS:     m.PostingCost.Nanoseconds(),
		QueryNS:       m.QueryOverhead.Nanoseconds(),
	}
}

// SystemIO estimates "system cpu time plus time spent waiting for I/O to
// complete" (the paper's Table 4 metric) from a counter delta: disk
// waits, system-call overheads, and kernel/user data copying.
func (m TimeModel) SystemIO(s Stats) time.Duration {
	d := time.Duration(s.DiskReads) * m.DiskReadPerBlock
	d += time.Duration(s.DiskWrites) * m.DiskWritePerBlock
	d += time.Duration(s.FileAccesses+s.FileWrites) * m.SyscallOverhead
	d += time.Duration(float64(s.BytesRead+s.BytesWritten) * float64(m.CopyPerByte))
	return d
}

// UserCPU estimates the time spent in the inference retrieval and
// ranking engine, which the paper observes "should be comparable for all
// versions" (it varies by less than 1% across backends there, and is
// identical here because the engine work is deterministic).
func (m TimeModel) UserCPU(postings int64, queries int) time.Duration {
	return time.Duration(postings)*m.PostingCost +
		time.Duration(queries)*m.QueryOverhead
}

// WallClock estimates total elapsed time (the paper's Table 3 metric) as
// user CPU plus system CPU/I/O; the evaluation ran in single-user mode
// with no overlap between compute and I/O worth modelling.
func (m TimeModel) WallClock(s Stats, postings int64, queries int) time.Duration {
	return m.UserCPU(postings, queries) + m.SystemIO(s)
}
