package vfs

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// File-system images let the command-line tools persist the simulated
// storage stack to a real operating-system file between processes: an
// index built by inquery-index is dumped as an image and reloaded by
// inquery-search or mnemectl.

var imageMagic = []byte("INQFSIMG1\n")

// ErrBadImage reports a corrupt or foreign image.
var ErrBadImage = errors.New("vfs: bad file-system image")

// DumpImage writes the file system's contents (names, sizes, data) to w.
// Counters and cache state are not part of the image.
func (fs *FS) DumpImage(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(imageMagic); err != nil {
		return err
	}
	crc := crc32.NewIEEE()
	out := io.MultiWriter(bw, crc)

	names := fs.Names()
	var hdr [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		n := binary.PutUvarint(hdr[:], v)
		_, err := out.Write(hdr[:n])
		return err
	}
	if err := put(uint64(fs.BlockSize())); err != nil {
		return err
	}
	if err := put(uint64(len(names))); err != nil {
		return err
	}
	for _, name := range names {
		f, err := fs.Open(name)
		if err != nil {
			return err
		}
		if err := put(uint64(len(name))); err != nil {
			return err
		}
		if _, err := io.WriteString(out, name); err != nil {
			return err
		}
		size := f.Size()
		if err := put(uint64(size)); err != nil {
			return err
		}
		buf := make([]byte, 1<<16)
		for off := int64(0); off < size; {
			n := int64(len(buf))
			if off+n > size {
				n = size - off
			}
			if err := ReadFull(f, buf[:n], off); err != nil {
				return err
			}
			if _, err := out.Write(buf[:n]); err != nil {
				return err
			}
			off += n
		}
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	if _, err := bw.Write(sum[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadImage reconstructs a file system from an image produced by
// DumpImage. The OS cache is configured per opts (the image stores only
// the block size, which opts.BlockSize must match if nonzero).
func LoadImage(r io.Reader, opts Options) (*FS, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(imageMagic))
	if _, err := io.ReadFull(br, head); err != nil || string(head) != string(imageMagic) {
		return nil, fmt.Errorf("%w: bad magic", ErrBadImage)
	}
	crc := crc32.NewIEEE()
	tr := io.TeeReader(br, crc)
	get := func() (uint64, error) {
		v, err := binary.ReadUvarint(&teeByteReader{tr})
		if err != nil {
			return 0, fmt.Errorf("%w: %v", ErrBadImage, err)
		}
		return v, nil
	}
	bs, err := get()
	if err != nil {
		return nil, err
	}
	if opts.BlockSize != 0 && opts.BlockSize != int(bs) {
		return nil, fmt.Errorf("%w: image block size %d, want %d", ErrBadImage, bs, opts.BlockSize)
	}
	opts.BlockSize = int(bs)
	fs := New(opts)
	count, err := get()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < count; i++ {
		nameLen, err := get()
		if err != nil {
			return nil, err
		}
		if nameLen > 1<<16 {
			return nil, fmt.Errorf("%w: absurd name length %d", ErrBadImage, nameLen)
		}
		nameBuf := make([]byte, nameLen)
		if _, err := io.ReadFull(tr, nameBuf); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadImage, err)
		}
		size, err := get()
		if err != nil {
			return nil, err
		}
		f, err := fs.Create(string(nameBuf))
		if err != nil {
			return nil, err
		}
		buf := make([]byte, 1<<16)
		for off := uint64(0); off < size; {
			n := uint64(len(buf))
			if off+n > size {
				n = size - off
			}
			if _, err := io.ReadFull(tr, buf[:n]); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadImage, err)
			}
			if _, err := f.WriteAt(buf[:n], int64(off)); err != nil {
				return nil, err
			}
			off += n
		}
	}
	want := crc.Sum32()
	var sum [4]byte
	if _, err := io.ReadFull(br, sum[:]); err != nil {
		return nil, fmt.Errorf("%w: missing checksum", ErrBadImage)
	}
	if binary.LittleEndian.Uint32(sum[:]) != want {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadImage)
	}
	// Loading is not a measured operation.
	fs.ResetStats()
	fs.Chill()
	return fs, nil
}

// teeByteReader adapts an io.Reader to io.ByteReader for ReadUvarint.
type teeByteReader struct{ r io.Reader }

func (t *teeByteReader) ReadByte() (byte, error) {
	var b [1]byte
	_, err := io.ReadFull(t.r, b[:])
	return b[0], err
}
