package vfs

import "container/list"

// blockKey identifies one disk block of one file.
type blockKey struct {
	file  uint64
	block int64
}

// blockCache is a strict-LRU set of resident disk blocks, modelling the
// ULTRIX file-system buffer cache. It stores only residency information;
// block contents live in the file itself, so hit/miss classification is
// exact while data copies stay cheap.
type blockCache struct {
	capacity int64
	order    *list.List // front = most recently used; values are blockKey
	index    map[blockKey]*list.Element
}

func newBlockCache(capacity int64) *blockCache {
	return &blockCache{
		capacity: capacity,
		order:    list.New(),
		index:    make(map[blockKey]*list.Element),
	}
}

// touch reports whether the block is resident, promoting it to most
// recently used if so.
func (c *blockCache) touch(file uint64, block int64) bool {
	e, ok := c.index[blockKey{file, block}]
	if !ok {
		return false
	}
	c.order.MoveToFront(e)
	return true
}

// insert makes the block resident, evicting the least recently used
// block if the cache is full. Inserting an already-resident block just
// promotes it.
func (c *blockCache) insert(file uint64, block int64) {
	k := blockKey{file, block}
	if e, ok := c.index[k]; ok {
		c.order.MoveToFront(e)
		return
	}
	for int64(c.order.Len()) >= c.capacity {
		back := c.order.Back()
		if back == nil {
			break
		}
		delete(c.index, back.Value.(blockKey))
		c.order.Remove(back)
	}
	c.index[k] = c.order.PushFront(k)
}

// clear empties the cache.
func (c *blockCache) clear() {
	c.order.Init()
	c.index = make(map[blockKey]*list.Element)
}

// evictFile removes all blocks belonging to the file.
func (c *blockCache) evictFile(file uint64) {
	c.evictFileFrom(file, 0)
}

// evictFileFrom removes the file's blocks numbered >= from.
func (c *blockCache) evictFileFrom(file uint64, from int64) {
	for k, e := range c.index {
		if k.file == file && k.block >= from {
			delete(c.index, k)
			c.order.Remove(e)
		}
	}
}

// len reports the number of resident blocks.
func (c *blockCache) len() int { return c.order.Len() }
