package vfs

import (
	"errors"
	"strings"
	"testing"
)

func TestFaultPlanFailsNthOp(t *testing.T) {
	fs := New(Options{BlockSize: 512})
	f, err := fs.Create("data")
	if err != nil {
		t.Fatal(err)
	}
	fs.SetFaultPlan(NewFaultPlan(1).FailWrite(2).FailRead(3).FailSync(1))

	buf := make([]byte, 64)
	if _, err := f.WriteAt(buf, 0); err != nil {
		t.Fatalf("write #1: %v", err)
	}
	if _, err := f.WriteAt(buf, 64); !errors.Is(err, ErrInjected) {
		t.Fatalf("write #2: want ErrInjected, got %v", err)
	}
	if _, err := f.WriteAt(buf, 64); err != nil {
		t.Fatalf("write #3: %v", err)
	}

	for i := 1; i <= 2; i++ {
		if _, err := f.ReadAt(buf, 0); err != nil {
			t.Fatalf("read #%d: %v", i, err)
		}
	}
	if _, err := f.ReadAt(buf, 0); !errors.Is(err, ErrInjected) {
		t.Fatal("read #3: want ErrInjected")
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatal("sync #1: want ErrInjected")
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync #2: %v", err)
	}
}

func TestFaultPlanTornWrite(t *testing.T) {
	fs := New(Options{BlockSize: 512})
	f, _ := fs.Create("data")
	// Lay down a known background so the torn region is observable.
	bg := make([]byte, 2048)
	for i := range bg {
		bg[i] = 0xAA
	}
	if _, err := f.WriteAt(bg, 0); err != nil {
		t.Fatal(err)
	}

	fs.SetFaultPlan(NewFaultPlan(1).FailWrite(1).WithTear())
	p := make([]byte, 1024)
	for i := range p {
		p[i] = 0xBB
	}
	// Write starts 100 bytes into a block: 412 bytes fit before the
	// boundary and must land; the rest must not.
	n, err := f.WriteAt(p, 100)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if want := 512 - 100; n != want {
		t.Fatalf("torn write landed %d bytes, want %d", n, want)
	}
	fs.SetFaultPlan(nil)

	got := make([]byte, 2048)
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		want := byte(0xAA)
		if i >= 100 && i < 512 {
			want = 0xBB
		}
		if b != want {
			t.Fatalf("byte %d: got %#x, want %#x", i, b, want)
		}
	}
}

func TestFaultPlanCrashFreezesDisk(t *testing.T) {
	fs := New(Options{BlockSize: 512})
	f, _ := fs.Create("data")
	plan := NewFaultPlan(1).FailWrite(1).WithCrash()
	fs.SetFaultPlan(plan)

	if _, err := f.WriteAt([]byte("x"), 0); !errors.Is(err, ErrInjected) {
		t.Fatal("want injected write failure")
	}
	if !plan.Crashed() {
		t.Fatal("plan should report crashed")
	}
	// Every subsequent operation fails on the frozen disk.
	if _, err := f.WriteAt([]byte("x"), 0); !errors.Is(err, ErrInjected) {
		t.Fatal("write after crash should fail")
	}
	if _, err := f.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrInjected) {
		t.Fatal("read after crash should fail")
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatal("sync after crash should fail")
	}
	if got := plan.Fired(); got < 1 {
		t.Fatalf("Fired() = %d, want >= 1", got)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	fs := New(Options{BlockSize: 512})
	f, _ := fs.Create("data")
	if _, err := f.WriteAt([]byte("hello world"), 0); err != nil {
		t.Fatal(err)
	}

	img := fs.Clone(Options{})
	if img.BlockSize() != 512 {
		t.Fatalf("clone block size %d", img.BlockSize())
	}

	// Mutating the original must not affect the clone.
	if _, err := f.WriteAt([]byte("HELLO"), 0); err != nil {
		t.Fatal(err)
	}
	g, err := img.Open("data")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 11)
	if _, err := g.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello world" {
		t.Fatalf("clone content %q", got)
	}
	if img.Stats().FileWrites != 0 {
		t.Fatal("clone should start with fresh counters")
	}
}

func TestFlipByte(t *testing.T) {
	fs := New(Options{BlockSize: 512})
	f, _ := fs.Create("data")
	if _, err := f.WriteAt([]byte{1, 2, 3, 4}, 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.FlipByte("data", 2, 0xFF); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4)
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if got[2] != 3^0xFF {
		t.Fatalf("byte not flipped: %v", got)
	}
	if err := fs.FlipByte("nope", 0, 1); !errors.Is(err, ErrNotExist) {
		t.Fatalf("missing file: %v", err)
	}
	if err := fs.FlipByte("data", 99, 1); err == nil {
		t.Fatal("out-of-range flip should fail")
	}
}

func TestCloseHygiene(t *testing.T) {
	fs := New(Options{})
	f, _ := fs.Create("x")
	if err := f.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	err := f.Close()
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("double close: want ErrClosed, got %v", err)
	}
	if !strings.Contains(err.Error(), `"x"`) {
		t.Fatalf("double close error should name the file: %v", err)
	}
	if _, rerr := f.ReadAt(make([]byte, 1), 0); !errors.Is(rerr, ErrClosed) || !strings.Contains(rerr.Error(), `"x"`) {
		t.Fatalf("read after close: %v", rerr)
	}
	if _, werr := f.WriteAt([]byte{0}, 0); !errors.Is(werr, ErrClosed) || !strings.Contains(werr.Error(), `"x"`) {
		t.Fatalf("write after close: %v", werr)
	}
	if serr := f.Sync(); !errors.Is(serr, ErrClosed) || !strings.Contains(serr.Error(), `"x"`) {
		t.Fatalf("sync after close: %v", serr)
	}
	if terr := f.Truncate(0); !errors.Is(terr, ErrClosed) || !strings.Contains(terr.Error(), `"x"`) {
		t.Fatalf("truncate after close: %v", terr)
	}
}

func TestFaultPlanProbabilityDeterministic(t *testing.T) {
	run := func(seed int64) []int {
		fs := New(Options{BlockSize: 512})
		f, _ := fs.Create("data")
		fs.SetFaultPlan(NewFaultPlan(seed).WithProbability(0.3))
		var failed []int
		for i := 0; i < 50; i++ {
			if _, err := f.WriteAt([]byte{byte(i)}, int64(i)); err != nil {
				failed = append(failed, i)
			}
		}
		return failed
	}
	a, b := run(42), run(42)
	if len(a) == 0 {
		t.Fatal("p=0.3 over 50 ops should fail at least once")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Log("seeds 42 and 43 produced identical failure sets (unlikely but possible)")
	}
}

// TestFaultPlanOnce: a Once plan injects exactly one fault — the retry
// of the failed read lands on a fresh ordinal and succeeds.
func TestFaultPlanOnce(t *testing.T) {
	fs := New(Options{BlockSize: 512})
	f, _ := fs.Create("data")
	buf := make([]byte, 64)
	if _, err := f.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	plan := NewFaultPlan(1).FailRead(2).Once()
	fs.SetFaultPlan(plan)

	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatalf("read #1: %v", err)
	}
	if _, err := f.ReadAt(buf, 0); !errors.Is(err, ErrInjected) {
		t.Fatal("read #2: want ErrInjected")
	}
	// The "retry" — and everything after it — succeeds.
	for i := 3; i <= 6; i++ {
		if _, err := f.ReadAt(buf, 0); err != nil {
			t.Fatalf("read #%d after transient: %v", i, err)
		}
	}
	if got := plan.Fired(); got != 1 {
		t.Fatalf("Fired() = %d, want 1", got)
	}
}

// TestFaultPlanFailReadEvery: periodic mode fails ordinals n, 2n, ...
func TestFaultPlanFailReadEvery(t *testing.T) {
	fs := New(Options{BlockSize: 512})
	f, _ := fs.Create("data")
	buf := make([]byte, 64)
	if _, err := f.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	plan := NewFaultPlan(1).FailReadEvery(3)
	fs.SetFaultPlan(plan)

	for i := 1; i <= 9; i++ {
		_, err := f.ReadAt(buf, 0)
		if i%3 == 0 {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("read #%d: want ErrInjected, got %v", i, err)
			}
		} else if err != nil {
			t.Fatalf("read #%d: %v", i, err)
		}
	}
	if got := plan.Fired(); got != 3 {
		t.Fatalf("Fired() = %d, want 3", got)
	}
}

// TestFaultPlanFailReadEveryOnce: Once turns the first periodic hit
// into a single transient fault.
func TestFaultPlanFailReadEveryOnce(t *testing.T) {
	fs := New(Options{BlockSize: 512})
	f, _ := fs.Create("data")
	buf := make([]byte, 64)
	if _, err := f.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	plan := NewFaultPlan(1).FailReadEvery(2).Once()
	fs.SetFaultPlan(plan)

	fails := 0
	for i := 1; i <= 8; i++ {
		if _, err := f.ReadAt(buf, 0); err != nil {
			fails++
			if i != 2 {
				t.Fatalf("read #%d failed, only #2 should", i)
			}
		}
	}
	if fails != 1 || plan.Fired() != 1 {
		t.Fatalf("fails=%d Fired=%d, want 1/1", fails, plan.Fired())
	}
}
