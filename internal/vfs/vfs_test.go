package vfs

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCreateOpenRemove(t *testing.T) {
	fs := New(Options{})
	if fs.BlockSize() != DefaultBlockSize {
		t.Fatalf("BlockSize = %d, want %d", fs.BlockSize(), DefaultBlockSize)
	}
	if _, err := fs.Open("missing"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Open missing: err = %v, want ErrNotExist", err)
	}
	f, err := fs.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("a"); !errors.Is(err, ErrExist) {
		t.Fatalf("Create dup: err = %v, want ErrExist", err)
	}
	if !fs.Exists("a") {
		t.Fatal("Exists(a) = false after Create")
	}
	if f.Name() != "a" {
		t.Fatalf("Name = %q", f.Name())
	}
	if err := fs.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("a") {
		t.Fatal("Exists(a) = true after Remove")
	}
	if err := fs.Remove("a"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Remove missing: err = %v, want ErrNotExist", err)
	}
}

func TestOpenOrCreate(t *testing.T) {
	fs := New(Options{})
	f, err := fs.OpenOrCreate("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("hello"), 0); err != nil {
		t.Fatal(err)
	}
	g, err := fs.OpenOrCreate("x")
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 5 {
		t.Fatalf("second handle Size = %d, want 5", g.Size())
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	fs := New(Options{BlockSize: 64})
	f, _ := fs.Create("f")
	data := make([]byte, 1000)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if n, err := f.WriteAt(data, 130); err != nil || n != len(data) {
		t.Fatalf("WriteAt = %d, %v", n, err)
	}
	if f.Size() != 1130 {
		t.Fatalf("Size = %d, want 1130", f.Size())
	}
	got := make([]byte, 1000)
	if n, err := f.ReadAt(got, 130); err != nil || n != 1000 {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round-trip mismatch")
	}
	// The gap before offset 130 must read as zeros.
	gap := make([]byte, 130)
	if _, err := f.ReadAt(gap, 0); err != nil {
		t.Fatal(err)
	}
	for i, b := range gap {
		if b != 0 {
			t.Fatalf("gap byte %d = %d, want 0", i, b)
		}
	}
}

func TestReadPastEOF(t *testing.T) {
	fs := New(Options{BlockSize: 32})
	f, _ := fs.Create("f")
	f.WriteAt([]byte("abcdef"), 0)

	p := make([]byte, 10)
	n, err := f.ReadAt(p, 3)
	if n != 3 || err != io.EOF {
		t.Fatalf("short read = %d, %v; want 3, io.EOF", n, err)
	}
	if string(p[:n]) != "def" {
		t.Fatalf("short read data = %q", p[:n])
	}
	if n, err = f.ReadAt(p, 6); n != 0 || err != io.EOF {
		t.Fatalf("read at EOF = %d, %v; want 0, io.EOF", n, err)
	}
	if n, err = f.ReadAt(p, 100); n != 0 || err != io.EOF {
		t.Fatalf("read past EOF = %d, %v; want 0, io.EOF", n, err)
	}
}

func TestClosedHandle(t *testing.T) {
	fs := New(Options{})
	f, _ := fs.Create("f")
	f.WriteAt([]byte("x"), 0)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("ReadAt after Close: %v", err)
	}
	if _, err := f.WriteAt([]byte("y"), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("WriteAt after Close: %v", err)
	}
	if err := f.Truncate(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("Truncate after Close: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Sync after Close: %v", err)
	}
	// Data persists and is reachable through a fresh handle.
	g, err := fs.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	p := make([]byte, 1)
	if _, err := g.ReadAt(p, 0); err != nil || p[0] != 'x' {
		t.Fatalf("reopen read = %q, %v", p, err)
	}
}

func TestNegativeOffsets(t *testing.T) {
	fs := New(Options{})
	f, _ := fs.Create("f")
	if _, err := f.ReadAt(make([]byte, 1), -1); err == nil {
		t.Fatal("ReadAt(-1) succeeded")
	}
	if _, err := f.WriteAt([]byte("x"), -1); err == nil {
		t.Fatal("WriteAt(-1) succeeded")
	}
	if err := f.Truncate(-1); err == nil {
		t.Fatal("Truncate(-1) succeeded")
	}
}

func TestTruncate(t *testing.T) {
	fs := New(Options{BlockSize: 16})
	f, _ := fs.Create("f")
	data := bytes.Repeat([]byte{0xAB}, 100)
	f.WriteAt(data, 0)
	if err := f.Truncate(37); err != nil {
		t.Fatal(err)
	}
	if f.Size() != 37 {
		t.Fatalf("Size = %d, want 37", f.Size())
	}
	// Growing again must expose zeros beyond the truncation point.
	if err := f.Truncate(100); err != nil {
		t.Fatal(err)
	}
	p := make([]byte, 100)
	if _, err := f.ReadAt(p, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 37; i++ {
		if p[i] != 0xAB {
			t.Fatalf("byte %d = %#x, want 0xAB", i, p[i])
		}
	}
	for i := 37; i < 100; i++ {
		if p[i] != 0 {
			t.Fatalf("byte %d = %#x, want 0 after regrow", i, p[i])
		}
	}
}

func TestStatsCounting(t *testing.T) {
	fs := New(Options{BlockSize: 100, OSCacheBytes: 1000}) // 10-block cache
	f, _ := fs.Create("f")
	f.WriteAt(make([]byte, 1000), 0) // 10 blocks
	fs.Chill()                       // drop write-populated blocks
	fs.ResetStats()

	// First read of 250 bytes spans blocks 0-2: 3 disk reads, 1 access.
	f.ReadAt(make([]byte, 250), 0)
	s := fs.Stats()
	if s.FileAccesses != 1 || s.DiskReads != 3 || s.CacheHits != 0 || s.BytesRead != 250 {
		t.Fatalf("after first read: %+v", s)
	}
	// Second identical read: all three blocks now cached.
	f.ReadAt(make([]byte, 250), 0)
	s = fs.Stats()
	if s.FileAccesses != 2 || s.DiskReads != 3 || s.CacheHits != 3 || s.BytesRead != 500 {
		t.Fatalf("after second read: %+v", s)
	}
	// Chill purges the cache; the next read misses again.
	fs.Chill()
	f.ReadAt(make([]byte, 250), 0)
	s = fs.Stats()
	if s.DiskReads != 6 || s.CacheHits != 3 {
		t.Fatalf("after chill+read: %+v", s)
	}
}

func TestWriteCountsAndCachePopulation(t *testing.T) {
	fs := New(Options{BlockSize: 100, OSCacheBytes: 1000})
	f, _ := fs.Create("f")
	fs.ResetStats()
	f.WriteAt(make([]byte, 350), 0) // blocks 0-3
	s := fs.Stats()
	if s.FileWrites != 1 || s.DiskWrites != 4 || s.BytesWritten != 350 {
		t.Fatalf("write stats: %+v", s)
	}
	// Written blocks are cached: reading them back hits.
	f.ReadAt(make([]byte, 350), 0)
	s = fs.Stats()
	if s.DiskReads != 0 || s.CacheHits != 4 {
		t.Fatalf("read-after-write stats: %+v", s)
	}
}

func TestOSCacheEviction(t *testing.T) {
	fs := New(Options{BlockSize: 100, OSCacheBytes: 300}) // 3 blocks
	f, _ := fs.Create("f")
	f.WriteAt(make([]byte, 1000), 0)
	fs.Chill()
	fs.ResetStats()

	one := make([]byte, 1)
	// Touch blocks 0,1,2 — fills the cache.
	for b := int64(0); b < 3; b++ {
		f.ReadAt(one, b*100)
	}
	// Touch block 3 — evicts LRU block 0.
	f.ReadAt(one, 300)
	// Block 1 still resident, block 0 not.
	f.ReadAt(one, 100)
	f.ReadAt(one, 0)
	s := fs.Stats()
	if s.DiskReads != 5 || s.CacheHits != 1 {
		t.Fatalf("stats = %+v, want 5 disk reads and 1 hit", s)
	}
}

func TestNoOSCache(t *testing.T) {
	fs := New(Options{BlockSize: 100}) // OSCacheBytes 0 disables caching
	f, _ := fs.Create("f")
	f.WriteAt(make([]byte, 200), 0)
	fs.ResetStats()
	for i := 0; i < 5; i++ {
		f.ReadAt(make([]byte, 50), 0)
	}
	s := fs.Stats()
	if s.DiskReads != 5 || s.CacheHits != 0 {
		t.Fatalf("stats = %+v, want every read to hit disk", s)
	}
}

func TestRemoveEvictsCachedBlocks(t *testing.T) {
	fs := New(Options{BlockSize: 100, OSCacheBytes: 1000})
	f, _ := fs.Create("f")
	f.WriteAt(make([]byte, 100), 0)
	fs.Remove("f")
	if fs.cache.len() != 0 {
		t.Fatalf("cache has %d blocks after Remove, want 0", fs.cache.len())
	}
}

func TestTruncateEvictsTailBlocks(t *testing.T) {
	fs := New(Options{BlockSize: 100, OSCacheBytes: 10000})
	f, _ := fs.Create("f")
	f.WriteAt(make([]byte, 1000), 0) // 10 blocks cached via write-through
	if got := fs.cache.len(); got != 10 {
		t.Fatalf("cache len = %d, want 10", got)
	}
	f.Truncate(250) // keeps blocks 0-2
	if got := fs.cache.len(); got != 3 {
		t.Fatalf("cache len after truncate = %d, want 3", got)
	}
}

func TestStatsAddSub(t *testing.T) {
	a := Stats{FileAccesses: 5, DiskReads: 3, CacheHits: 2, BytesRead: 100,
		FileWrites: 1, DiskWrites: 1, BytesWritten: 10}
	b := Stats{FileAccesses: 2, DiskReads: 1, CacheHits: 1, BytesRead: 40,
		FileWrites: 1, DiskWrites: 1, BytesWritten: 10}
	sum := a.Add(b)
	if sum.FileAccesses != 7 || sum.BytesRead != 140 {
		t.Fatalf("Add = %+v", sum)
	}
	diff := sum.Sub(b)
	if diff != a {
		t.Fatalf("Sub = %+v, want %+v", diff, a)
	}
}

func TestNamesAndTotalSize(t *testing.T) {
	fs := New(Options{BlockSize: 10})
	fa, _ := fs.Create("b")
	fb, _ := fs.Create("a")
	fa.WriteAt(make([]byte, 25), 0)
	fb.WriteAt(make([]byte, 5), 0)
	names := fs.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names = %v", names)
	}
	if fs.TotalSize() != 30 {
		t.Fatalf("TotalSize = %d, want 30", fs.TotalSize())
	}
}

func TestReadFull(t *testing.T) {
	fs := New(Options{})
	f, _ := fs.Create("f")
	f.WriteAt([]byte("abcdef"), 0)
	p := make([]byte, 6)
	if err := ReadFull(f, p, 0); err != nil {
		t.Fatal(err)
	}
	if string(p) != "abcdef" {
		t.Fatalf("ReadFull = %q", p)
	}
	if err := ReadFull(f, make([]byte, 7), 0); err != io.ErrUnexpectedEOF {
		t.Fatalf("short ReadFull err = %v, want ErrUnexpectedEOF", err)
	}
}

// TestPropertyRandomIO mirrors a reference byte slice: any interleaving
// of writes and reads through vfs must agree with the reference.
func TestPropertyRandomIO(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	fs := New(Options{BlockSize: 128, OSCacheBytes: 128 * 7})
	f, _ := fs.Create("f")
	const maxSize = 10_000
	ref := make([]byte, 0, maxSize)

	for step := 0; step < 2000; step++ {
		off := rng.Int63n(maxSize / 2)
		n := rng.Intn(700) + 1
		if rng.Intn(2) == 0 {
			p := make([]byte, n)
			rng.Read(p)
			if _, err := f.WriteAt(p, off); err != nil {
				t.Fatalf("step %d: WriteAt: %v", step, err)
			}
			end := off + int64(n)
			for int64(len(ref)) < end {
				ref = append(ref, 0)
			}
			copy(ref[off:end], p)
		} else {
			p := make([]byte, n)
			got, err := f.ReadAt(p, off)
			want := 0
			if off < int64(len(ref)) {
				want = len(ref) - int(off)
				if want > n {
					want = n
				}
			}
			if got != want {
				t.Fatalf("step %d: ReadAt(%d,%d) n = %d, want %d", step, off, n, got, want)
			}
			if want < n && err != io.EOF {
				t.Fatalf("step %d: short read err = %v", step, err)
			}
			if !bytes.Equal(p[:got], ref[off:off+int64(got)]) {
				t.Fatalf("step %d: data mismatch at %d+%d", step, off, got)
			}
		}
		if f.Size() != int64(len(ref)) {
			t.Fatalf("step %d: Size = %d, want %d", step, f.Size(), len(ref))
		}
	}
}

// TestPropertyCacheBounded checks via testing/quick that the OS cache
// never exceeds its block capacity no matter the access pattern.
func TestPropertyCacheBounded(t *testing.T) {
	check := func(offsets []uint16, capBlocks uint8) bool {
		capacity := int64(capBlocks%16) + 1
		c := newBlockCache(capacity)
		for _, o := range offsets {
			b := int64(o % 64)
			if !c.touch(1, b) {
				c.insert(1, b)
			}
			if int64(c.len()) > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyStatsMonotonic: counters never decrease across operations.
func TestPropertyStatsMonotonic(t *testing.T) {
	fs := New(Options{BlockSize: 64, OSCacheBytes: 64 * 4})
	f, _ := fs.Create("f")
	rng := rand.New(rand.NewSource(7))
	prev := fs.Stats()
	for i := 0; i < 500; i++ {
		switch rng.Intn(3) {
		case 0:
			f.WriteAt(make([]byte, rng.Intn(200)+1), rng.Int63n(2000))
		case 1:
			f.ReadAt(make([]byte, rng.Intn(200)+1), rng.Int63n(2000))
		case 2:
			fs.Chill()
		}
		cur := fs.Stats()
		if cur.FileAccesses < prev.FileAccesses || cur.DiskReads < prev.DiskReads ||
			cur.CacheHits < prev.CacheHits || cur.BytesRead < prev.BytesRead ||
			cur.FileWrites < prev.FileWrites || cur.DiskWrites < prev.DiskWrites ||
			cur.BytesWritten < prev.BytesWritten {
			t.Fatalf("op %d: counters decreased: %+v -> %+v", i, prev, cur)
		}
		prev = cur
	}
}

func TestTimeModel(t *testing.T) {
	m := Model1993()
	zero := m.SystemIO(Stats{})
	if zero != 0 {
		t.Fatalf("SystemIO(zero) = %v", zero)
	}
	s := Stats{DiskReads: 100, FileAccesses: 10, BytesRead: 8192 * 100}
	d := m.SystemIO(s)
	if d <= 0 {
		t.Fatalf("SystemIO = %v", d)
	}
	// Disk reads dominate at these constants.
	if d < 100*m.DiskReadPerBlock {
		t.Fatalf("SystemIO %v < disk component %v", d, 100*m.DiskReadPerBlock)
	}
	// More disk reads means strictly more time.
	s2 := s
	s2.DiskReads *= 2
	if m.SystemIO(s2) <= d {
		t.Fatal("SystemIO not monotonic in DiskReads")
	}
	u := m.UserCPU(1_000_000, 50)
	if u <= 0 {
		t.Fatalf("UserCPU = %v", u)
	}
	if w := m.WallClock(s, 1_000_000, 50); w != u+d {
		t.Fatalf("WallClock = %v, want %v", w, u+d)
	}
}

func TestConcurrentAccess(t *testing.T) {
	fs := New(Options{BlockSize: 64, OSCacheBytes: 64 * 8})
	f, _ := fs.Create("f")
	f.WriteAt(make([]byte, 4096), 0)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(seed int64) {
			defer func() { done <- struct{}{} }()
			h, _ := fs.Open("f")
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				h.ReadAt(make([]byte, 32), rng.Int63n(4000))
			}
		}(int64(g))
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	s := fs.Stats()
	if s.FileAccesses < 800 {
		t.Fatalf("FileAccesses = %d, want >= 800", s.FileAccesses)
	}
}

func BenchmarkReadAtCached(b *testing.B) {
	fs := New(Options{OSCacheBytes: 1 << 24})
	f, _ := fs.Create("f")
	f.WriteAt(make([]byte, 1<<20), 0)
	p := make([]byte, 8192)
	b.SetBytes(int64(len(p)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.ReadAt(p, int64(i%(1<<7))*8192)
	}
}
