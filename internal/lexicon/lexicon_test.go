package lexicon

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInternAssignsDenseIDs(t *testing.T) {
	d := New()
	for i := 0; i < 100; i++ {
		e := d.Intern(fmt.Sprintf("term%03d", i))
		if e.ID != uint32(i) {
			t.Fatalf("Intern #%d: ID = %d", i, e.ID)
		}
	}
	if d.Len() != 100 {
		t.Fatalf("Len = %d", d.Len())
	}
	// Re-interning returns the same entry, no new ID.
	e := d.Intern("term042")
	if e.ID != 42 || d.Len() != 100 {
		t.Fatalf("re-intern: ID = %d, Len = %d", e.ID, d.Len())
	}
}

func TestLookupAndByID(t *testing.T) {
	d := New()
	e := d.Intern("retrieval")
	e.CTF = 7
	e.DF = 3
	e.Ref = 99
	e.ListBytes = 123

	got, ok := d.Lookup("retrieval")
	if !ok || got.CTF != 7 || got.DF != 3 || got.Ref != 99 || got.ListBytes != 123 {
		t.Fatalf("Lookup = %+v, %v", got, ok)
	}
	if _, ok := d.Lookup("absent"); ok {
		t.Fatal("Lookup(absent) = true")
	}
	if byID := d.ByID(0); byID == nil || byID.Term != "retrieval" {
		t.Fatalf("ByID(0) = %+v", byID)
	}
	if d.ByID(1) != nil {
		t.Fatal("ByID out of range != nil")
	}
}

func TestGrowPreservesEntries(t *testing.T) {
	d := New()
	const n = 5000 // forces several grows past the initial 64 buckets
	for i := 0; i < n; i++ {
		e := d.Intern(fmt.Sprintf("w%d", i))
		e.CTF = uint64(i)
	}
	for i := 0; i < n; i++ {
		e, ok := d.Lookup(fmt.Sprintf("w%d", i))
		if !ok || e.ID != uint32(i) || e.CTF != uint64(i) {
			t.Fatalf("after grow: w%d => %+v, %v", i, e, ok)
		}
	}
}

func TestRange(t *testing.T) {
	d := New()
	d.Intern("a")
	d.Intern("b")
	d.Intern("c")
	var seen []string
	d.Range(func(e *Entry) bool {
		seen = append(seen, e.Term)
		return true
	})
	if len(seen) != 3 || seen[0] != "a" || seen[2] != "c" {
		t.Fatalf("Range order = %v", seen)
	}
	count := 0
	d.Range(func(e *Entry) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("early-stop Range visited %d", count)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	d := New()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 1000; i++ {
		e := d.Intern(fmt.Sprintf("token-%d", i))
		e.CTF = rng.Uint64() % 1e9
		e.DF = rng.Uint64() % 1e6
		e.Ref = rng.Uint64()
		e.ListBytes = rng.Uint32()
	}
	img := d.Encode()
	got, err := Decode(img)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), d.Len())
	}
	d.Range(func(e *Entry) bool {
		g, ok := got.Lookup(e.Term)
		if !ok || *g != *e {
			t.Fatalf("entry %q: got %+v want %+v", e.Term, g, e)
		}
		return true
	})
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("WRONGMAG"),
		append([]byte(magic), 0x80),      // truncated count varint
		append([]byte(magic), 2, 5, 'a'), // truncated term
	}
	for i, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Errorf("case %d: Decode succeeded on garbage", i)
		}
	}
}

func TestDecodeRejectsDuplicateTerms(t *testing.T) {
	// Hand-build an image with the same term twice.
	var buf []byte
	buf = append(buf, magic...)
	buf = append(buf, 2) // count
	for i := 0; i < 2; i++ {
		buf = append(buf, 3)        // term len
		buf = append(buf, "dup"...) // term
		buf = append(buf, 0, 0, 0, 0)
	}
	if _, err := Decode(buf); err == nil {
		t.Fatal("duplicate term accepted")
	}
}

// TestPropertyInternIdempotent via testing/quick: interning any multiset
// of strings yields one ID per distinct string and Lookup agrees.
func TestPropertyInternIdempotent(t *testing.T) {
	check := func(words []string) bool {
		d := New()
		ids := make(map[string]uint32)
		for _, w := range words {
			e := d.Intern(w)
			if prev, ok := ids[w]; ok && prev != e.ID {
				return false
			}
			ids[w] = e.ID
		}
		if d.Len() != len(ids) {
			return false
		}
		for w, id := range ids {
			e, ok := d.Lookup(w)
			if !ok || e.ID != id {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyEncodeDecode via testing/quick on arbitrary term sets.
func TestPropertyEncodeDecode(t *testing.T) {
	check := func(words []string, stats []uint32) bool {
		d := New()
		for i, w := range words {
			e := d.Intern(w)
			if i < len(stats) {
				e.CTF = uint64(stats[i])
				e.DF = uint64(stats[i] / 2)
			}
		}
		got, err := Decode(d.Encode())
		if err != nil || got.Len() != d.Len() {
			return false
		}
		okAll := true
		d.Range(func(e *Entry) bool {
			g, ok := got.Lookup(e.Term)
			if !ok || *g != *e {
				okAll = false
				return false
			}
			return true
		})
		return okAll
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkIntern(b *testing.B) {
	words := make([]string, 10000)
	for i := range words {
		words[i] = fmt.Sprintf("word-%d", i%5000)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := New()
		for _, w := range words {
			d.Intern(w)
		}
	}
}

func BenchmarkLookup(b *testing.B) {
	d := New()
	for i := 0; i < 50000; i++ {
		d.Intern(fmt.Sprintf("word-%d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Lookup(fmt.Sprintf("word-%d", i%50000))
	}
}
