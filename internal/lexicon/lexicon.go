// Package lexicon implements INQUERY's term dictionary: "an
// open-chaining hash dictionary to map text strings (words) to unique
// integers called term ids. The hash dictionary also stores summary
// statistics for each string and resides entirely in main memory during
// query processing" (paper §3.1).
//
// In the integrated system the dictionary entry additionally carries the
// storage reference for the term's inverted list — the Mneme object
// identifier ("The Mneme identifier assigned to the object was stored in
// the INQUERY hash dictionary entry for the associated term", §3.3) or,
// for the B-tree backend, the record key.
//
// The table is a hand-rolled separate-chaining hash over a contiguous
// entry arena, not a Go map, so that its behaviour (and its persistent
// format) is explicit and stable.
package lexicon

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Entry is one term's dictionary record.
type Entry struct {
	Term string
	// ID is the term identifier, assigned densely from 0 in intern order.
	ID uint32
	// CTF is the collection term frequency (total occurrences).
	CTF uint64
	// DF is the document frequency (documents containing the term).
	DF uint64
	// Ref is the storage reference for the term's inverted list: a Mneme
	// object identifier or a B-tree key, depending on the backend.
	Ref uint64
	// ListBytes is the encoded size of the term's inverted list record,
	// maintained by the indexer. It drives pool selection analysis and
	// the paper's Figures 1 and 2.
	ListBytes uint32
}

// Dictionary is an open-chaining (separately chained) hash table. The
// zero value is not usable; call New.
type Dictionary struct {
	buckets []int32 // index of chain head in entries, or -1
	next    []int32 // chain links, parallel to entries
	entries []Entry
}

// New returns an empty dictionary.
func New() *Dictionary {
	d := &Dictionary{buckets: make([]int32, 64)}
	for i := range d.buckets {
		d.buckets[i] = -1
	}
	return d
}

// Len returns the number of distinct terms.
func (d *Dictionary) Len() int { return len(d.entries) }

// fnv1a is the 64-bit FNV-1a string hash.
func fnv1a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// Lookup finds a term. The returned pointer is valid until the next
// Intern (which may grow the arena); callers must not retain it.
func (d *Dictionary) Lookup(term string) (*Entry, bool) {
	b := fnv1a(term) & uint64(len(d.buckets)-1)
	for i := d.buckets[b]; i >= 0; i = d.next[i] {
		if d.entries[i].Term == term {
			return &d.entries[i], true
		}
	}
	return nil, false
}

// Intern returns the entry for term, creating it with the next dense ID
// if absent. The returned pointer is valid until the next Intern.
func (d *Dictionary) Intern(term string) *Entry {
	if e, ok := d.Lookup(term); ok {
		return e
	}
	if len(d.entries) >= 2*len(d.buckets) {
		d.grow()
	}
	id := uint32(len(d.entries))
	d.entries = append(d.entries, Entry{Term: term, ID: id})
	b := fnv1a(term) & uint64(len(d.buckets)-1)
	d.next = append(d.next, d.buckets[b])
	d.buckets[b] = int32(id)
	return &d.entries[id]
}

// ByID returns the entry with the given term id, or nil if out of range.
// The pointer is valid until the next Intern.
func (d *Dictionary) ByID(id uint32) *Entry {
	if int(id) >= len(d.entries) {
		return nil
	}
	return &d.entries[id]
}

// Range calls fn for every entry in term-id order, stopping early if fn
// returns false. The entry pointer must not be retained across Interns.
func (d *Dictionary) Range(fn func(*Entry) bool) {
	for i := range d.entries {
		if !fn(&d.entries[i]) {
			return
		}
	}
}

// grow doubles the bucket array and rechains every entry.
func (d *Dictionary) grow() {
	nb := make([]int32, len(d.buckets)*2)
	for i := range nb {
		nb[i] = -1
	}
	d.buckets = nb
	for i := range d.entries {
		b := fnv1a(d.entries[i].Term) & uint64(len(d.buckets)-1)
		d.next[i] = d.buckets[b]
		d.buckets[b] = int32(i)
	}
}

const magic = "INQLEX1\n"

// ErrBadFormat reports a corrupt or foreign dictionary image.
var ErrBadFormat = errors.New("lexicon: bad dictionary image")

// Encode serializes the dictionary to a byte image (terms in id order).
func (d *Dictionary) Encode() []byte {
	var size int
	for i := range d.entries {
		size += len(d.entries[i].Term) + 5*binary.MaxVarintLen64
	}
	buf := make([]byte, 0, len(magic)+binary.MaxVarintLen64+size)
	buf = append(buf, magic...)
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf = append(buf, tmp[:n]...)
	}
	put(uint64(len(d.entries)))
	for i := range d.entries {
		e := &d.entries[i]
		put(uint64(len(e.Term)))
		buf = append(buf, e.Term...)
		put(e.CTF)
		put(e.DF)
		put(e.Ref)
		put(uint64(e.ListBytes))
	}
	return buf
}

// Decode reconstructs a dictionary from an Encode image.
func Decode(buf []byte) (*Dictionary, error) {
	if len(buf) < len(magic) || string(buf[:len(magic)]) != magic {
		return nil, ErrBadFormat
	}
	off := len(magic)
	get := func() (uint64, error) {
		v, n := binary.Uvarint(buf[off:])
		if n <= 0 {
			return 0, ErrBadFormat
		}
		off += n
		return v, nil
	}
	count, err := get()
	if err != nil {
		return nil, err
	}
	d := New()
	for i := uint64(0); i < count; i++ {
		tl, err := get()
		if err != nil {
			return nil, err
		}
		if off+int(tl) > len(buf) {
			return nil, fmt.Errorf("%w: truncated term", ErrBadFormat)
		}
		term := string(buf[off : off+int(tl)])
		off += int(tl)
		e := d.Intern(term)
		if e.ID != uint32(i) {
			return nil, fmt.Errorf("%w: duplicate term %q", ErrBadFormat, term)
		}
		if e.CTF, err = get(); err != nil {
			return nil, err
		}
		if e.DF, err = get(); err != nil {
			return nil, err
		}
		if e.Ref, err = get(); err != nil {
			return nil, err
		}
		lb, err := get()
		if err != nil {
			return nil, err
		}
		e.ListBytes = uint32(lb)
	}
	return d, nil
}
