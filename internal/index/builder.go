// Package index builds inverted file indices by external sort. The
// paper: "Indexing a large collection can be very expensive because it
// is dominated by a sorting problem, where the inverted list entries for
// every term appearance in the collection are sorted by term identifier
// and document identifier" (§2). The Builder buffers (term, doc,
// position) tuples in memory, spills sorted runs to scratch files when
// the buffer fills, and k-way merges the runs into a stream of encoded
// inverted-list records in ascending term-id order — the order both the
// B-tree bulk load and Mneme allocation consume.
package index

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"repro/internal/lexicon"
	"repro/internal/postings"
	"repro/internal/textproc"
	"repro/internal/vfs"
)

// Doc is one input document. Identifiers must be dense, starting at
// Options.BaseDoc (0 by default), and added in ascending order.
type Doc struct {
	ID   uint32
	Text string
}

// tuple is one term appearance.
type tuple struct {
	term uint32
	doc  uint32
	pos  uint32
}

// DefaultRunLimit is the default number of buffered tuples before a
// sorted run is spilled (~12 bytes each).
const DefaultRunLimit = 1 << 20

// Builder accumulates documents and produces the merged record stream.
type Builder struct {
	fs       *vfs.FS
	an       *textproc.Analyzer
	dict     *lexicon.Dictionary
	runLimit int
	scratch  string         // scratch file name prefix
	codec    postings.Codec // record encoding policy (CodecAuto default)

	buf     []tuple
	runs    []string
	docLens []uint32
	total   int64
	nextDoc uint32
	done    bool
}

// Options configures a Builder.
type Options struct {
	// Analyzer tokenizes document text; nil selects the default.
	Analyzer *textproc.Analyzer
	// RunLimit caps buffered tuples before spilling; 0 selects the
	// default. Small values force external sorting in tests.
	RunLimit int
	// Scratch prefixes the names of temporary run files.
	Scratch string
	// V1Postings forces every record into the sequential v1 encoding,
	// disabling the versioned (v2 block / v3 bitmap) formats for lists
	// long enough to benefit from them. For building legacy-layout
	// collections and for the mixed-version compatibility tests.
	// Equivalent to Codec: postings.CodecV1, which it overrides.
	V1Postings bool
	// Codec pins the record encoding policy for every list — the
	// codec-ablation axis. The zero value (postings.CodecAuto) is the
	// production policy: v1 for short lists, v2 blocks for long sparse
	// lists, the v3 bitmap for long dense ones.
	Codec postings.Codec
	// BaseDoc offsets every document identifier: the first document
	// added must carry ID BaseDoc, and encoded records store the global
	// (offset) identifiers. The near-real-time flush path builds each
	// memtable segment as a mini-collection whose postings carry global
	// doc IDs, so query-time iterators concatenate segment lists without
	// any per-segment translation. Zero (the default) builds an ordinary
	// collection with dense-from-0 identifiers.
	BaseDoc uint32
}

// NewBuilder returns an empty Builder writing scratch runs into fs.
func NewBuilder(fs *vfs.FS, opt Options) *Builder {
	an := opt.Analyzer
	if an == nil {
		an = textproc.NewAnalyzer()
	}
	rl := opt.RunLimit
	if rl <= 0 {
		rl = DefaultRunLimit
	}
	scratch := opt.Scratch
	if scratch == "" {
		scratch = "indexrun"
	}
	codec := opt.Codec
	if opt.V1Postings {
		codec = postings.CodecV1
	}
	return &Builder{fs: fs, an: an, dict: lexicon.New(), runLimit: rl, scratch: scratch, codec: codec, nextDoc: opt.BaseDoc}
}

// Dictionary exposes the term dictionary being built.
func (b *Builder) Dictionary() *lexicon.Dictionary { return b.dict }

// DocLens returns per-document token counts (indexed tokens only).
func (b *Builder) DocLens() []uint32 { return b.docLens }

// TotalLen returns the total number of indexed tokens.
func (b *Builder) TotalLen() int64 { return b.total }

// NumDocs returns the number of documents added.
func (b *Builder) NumDocs() int { return len(b.docLens) }

// Add tokenizes and buffers one document.
func (b *Builder) Add(doc Doc) error {
	if b.done {
		return errors.New("index: builder already finished")
	}
	if doc.ID != b.nextDoc {
		return fmt.Errorf("index: document ids must be dense and ascending: got %d, want %d", doc.ID, b.nextDoc)
	}
	toks := b.an.Tokens(doc.Text)
	return b.addTokens(doc.ID, toks)
}

// AddTokens buffers a pre-tokenized document, bypassing text analysis —
// used by the synthetic collection generators, which produce term
// streams directly.
func (b *Builder) AddTokens(id uint32, toks []textproc.Token) error {
	if b.done {
		return errors.New("index: builder already finished")
	}
	if id != b.nextDoc {
		return fmt.Errorf("index: document ids must be dense and ascending: got %d, want %d", id, b.nextDoc)
	}
	return b.addTokens(id, toks)
}

func (b *Builder) addTokens(id uint32, toks []textproc.Token) error {
	for _, tok := range toks {
		e := b.dict.Intern(tok.Term)
		e.CTF++
		b.buf = append(b.buf, tuple{term: e.ID, doc: id, pos: tok.Pos})
	}
	b.docLens = append(b.docLens, uint32(len(toks)))
	b.total += int64(len(toks))
	b.nextDoc++
	// Runs split only on document boundaries so that one document's
	// positions for a term never straddle runs.
	if len(b.buf) >= b.runLimit {
		return b.spill()
	}
	return nil
}

// spill sorts the buffer and writes it as one run file.
func (b *Builder) spill() error {
	if len(b.buf) == 0 {
		return nil
	}
	sortTuples(b.buf)
	name := fmt.Sprintf("%s.%d", b.scratch, len(b.runs))
	f, err := b.fs.Create(name)
	if err != nil {
		return err
	}
	w := newRunWriter(f)
	for _, t := range b.buf {
		w.write(t)
	}
	if err := w.flush(); err != nil {
		return err
	}
	b.runs = append(b.runs, name)
	b.buf = b.buf[:0]
	return nil
}

func sortTuples(ts []tuple) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		if a.term != b.term {
			return a.term < b.term
		}
		if a.doc != b.doc {
			return a.doc < b.doc
		}
		return a.pos < b.pos
	})
}

// Merged streams encoded inverted-list records in ascending term order.
type Merged struct {
	b       *Builder
	sources []tupleSource
	heads   []tuple
	alive   []bool
	err     error

	// Records counts records emitted; ListBytes their total size.
	Records   int64
	ListBytes int64
}

// tupleSource yields sorted tuples: either the in-memory buffer tail or
// a run file.
type tupleSource interface {
	next() (tuple, bool, error)
}

type memSource struct {
	ts []tuple
	i  int
}

func (m *memSource) next() (tuple, bool, error) {
	if m.i >= len(m.ts) {
		return tuple{}, false, nil
	}
	t := m.ts[m.i]
	m.i++
	return t, true, nil
}

// Finish seals the builder and returns the merged record stream. The
// caller must drain the stream with Next and then call Close to remove
// scratch files.
func (b *Builder) Finish() (*Merged, error) {
	if b.done {
		return nil, errors.New("index: builder already finished")
	}
	b.done = true
	sortTuples(b.buf)
	m := &Merged{b: b}
	m.sources = append(m.sources, &memSource{ts: b.buf})
	for _, name := range b.runs {
		f, err := b.fs.Open(name)
		if err != nil {
			return nil, err
		}
		m.sources = append(m.sources, newRunReader(f))
	}
	m.heads = make([]tuple, len(m.sources))
	m.alive = make([]bool, len(m.sources))
	for i, s := range m.sources {
		t, ok, err := s.next()
		if err != nil {
			return nil, err
		}
		m.heads[i], m.alive[i] = t, ok
	}
	return m, nil
}

// minSource returns the index of the source with the smallest head, or
// -1 when all are exhausted. Linear scan: run counts are small.
func (m *Merged) minSource() int {
	best := -1
	for i, ok := range m.alive {
		if !ok {
			continue
		}
		if best < 0 || tupleLess(m.heads[i], m.heads[best]) {
			best = i
		}
	}
	return best
}

func tupleLess(a, b tuple) bool {
	if a.term != b.term {
		return a.term < b.term
	}
	if a.doc != b.doc {
		return a.doc < b.doc
	}
	return a.pos < b.pos
}

func (m *Merged) advance(i int) error {
	t, ok, err := m.sources[i].next()
	if err != nil {
		return err
	}
	m.heads[i], m.alive[i] = t, ok
	return nil
}

// Next returns the next term's encoded record. The builder's dictionary
// entry for the term has its DF and ListBytes fields updated as a side
// effect (CTF was maintained during Add). ok=false ends the stream.
func (m *Merged) Next() (termID uint32, rec []byte, ok bool, err error) {
	if m.err != nil {
		return 0, nil, false, m.err
	}
	src := m.minSource()
	if src < 0 {
		return 0, nil, false, nil
	}
	term := m.heads[src].term
	var ps []postings.Posting
	var cur *postings.Posting
	for {
		src = m.minSource()
		if src < 0 || m.heads[src].term != term {
			break
		}
		t := m.heads[src]
		if cur == nil || cur.Doc != t.doc {
			ps = append(ps, postings.Posting{Doc: t.doc})
			cur = &ps[len(ps)-1]
		}
		cur.Positions = append(cur.Positions, t.pos)
		if err := m.advance(src); err != nil {
			m.err = err
			return 0, nil, false, err
		}
	}
	rec, err = postings.EncodeWith(m.b.codec, ps)
	if err != nil {
		m.err = err
		return 0, nil, false, err
	}
	e := m.b.dict.ByID(term)
	e.DF = uint64(len(ps))
	e.ListBytes = uint32(len(rec))
	m.Records++
	m.ListBytes += int64(len(rec))
	return term, rec, true, nil
}

// Close removes scratch run files.
func (m *Merged) Close() error {
	for _, name := range m.b.runs {
		if err := m.b.fs.Remove(name); err != nil {
			return err
		}
	}
	m.b.runs = nil
	return nil
}

// --- run file I/O ---

// runWriter buffers varint-encoded tuples into block-sized writes.
type runWriter struct {
	f   *vfs.File
	buf []byte
	off int64
	err error
}

func newRunWriter(f *vfs.File) *runWriter {
	return &runWriter{f: f, buf: make([]byte, 0, 1<<16)}
}

func (w *runWriter) write(t tuple) {
	w.buf = binary.AppendUvarint(w.buf, uint64(t.term))
	w.buf = binary.AppendUvarint(w.buf, uint64(t.doc))
	w.buf = binary.AppendUvarint(w.buf, uint64(t.pos))
	if len(w.buf) >= 1<<16-16 {
		w.flushBuf()
	}
}

func (w *runWriter) flushBuf() {
	if w.err != nil || len(w.buf) == 0 {
		return
	}
	_, w.err = w.f.WriteAt(w.buf, w.off)
	w.off += int64(len(w.buf))
	w.buf = w.buf[:0]
}

func (w *runWriter) flush() error {
	w.flushBuf()
	return w.err
}

// runReader streams tuples back from a run file.
type runReader struct {
	f    *vfs.File
	size int64
	off  int64
	buf  []byte
	pos  int
}

func newRunReader(f *vfs.File) *runReader {
	return &runReader{f: f, size: f.Size()}
}

// fill ensures at least 16 decodable bytes remain (or end of file).
func (r *runReader) fill() error {
	if r.pos+16 <= len(r.buf) {
		return nil
	}
	rest := len(r.buf) - r.pos
	nbuf := make([]byte, 0, 1<<16)
	nbuf = append(nbuf, r.buf[r.pos:]...)
	want := int64(cap(nbuf) - rest)
	if r.off+want > r.size {
		want = r.size - r.off
	}
	if want > 0 {
		chunk := make([]byte, want)
		if err := vfs.ReadFull(r.f, chunk, r.off); err != nil {
			return err
		}
		r.off += want
		nbuf = append(nbuf, chunk...)
	}
	r.buf, r.pos = nbuf, 0
	return nil
}

func (r *runReader) next() (tuple, bool, error) {
	if err := r.fill(); err != nil {
		return tuple{}, false, err
	}
	if r.pos >= len(r.buf) {
		return tuple{}, false, nil
	}
	var t tuple
	for i, dst := range []*uint32{&t.term, &t.doc, &t.pos} {
		v, n := binary.Uvarint(r.buf[r.pos:])
		if n <= 0 {
			return tuple{}, false, fmt.Errorf("index: corrupt run file (field %d)", i)
		}
		*dst = uint32(v)
		r.pos += n
	}
	return t, true, nil
}
