package index

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/lexicon"
	"repro/internal/postings"
	"repro/internal/textproc"
	"repro/internal/vfs"
)

func newFS() *vfs.FS {
	return vfs.New(vfs.Options{BlockSize: 8192, OSCacheBytes: 1 << 22})
}

// drain consumes the merged stream into a map term -> decoded postings.
func drain(t *testing.T, m *Merged) map[uint32][]postings.Posting {
	t.Helper()
	out := make(map[uint32][]postings.Posting)
	for {
		term, rec, ok, err := m.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		ps, err := postings.DecodeAll(rec)
		if err != nil {
			t.Fatal(err)
		}
		if _, dup := out[term]; dup {
			t.Fatalf("term %d emitted twice", term)
		}
		out[term] = ps
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestBuildSmallInMemory(t *testing.T) {
	fs := newFS()
	b := NewBuilder(fs, Options{Analyzer: textproc.NewAnalyzer(textproc.WithStemming(false))})
	docs := []string{
		"apple banana apple",
		"banana cherry",
		"apple cherry cherry date",
	}
	for i, text := range docs {
		if err := b.Add(Doc{ID: uint32(i), Text: text}); err != nil {
			t.Fatal(err)
		}
	}
	if b.NumDocs() != 3 || b.TotalLen() != 9 {
		t.Fatalf("NumDocs=%d TotalLen=%d", b.NumDocs(), b.TotalLen())
	}
	m, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	lists := drain(t, m)
	dict := b.Dictionary()
	apple, _ := dict.Lookup("apple")
	if apple.CTF != 3 || apple.DF != 2 {
		t.Fatalf("apple stats = %+v", apple)
	}
	ps := lists[apple.ID]
	want := []postings.Posting{
		{Doc: 0, Positions: []uint32{0, 2}},
		{Doc: 2, Positions: []uint32{0}},
	}
	if !reflect.DeepEqual(ps, want) {
		t.Fatalf("apple postings = %v, want %v", ps, want)
	}
	if m.Records != 4 {
		t.Fatalf("Records = %d", m.Records)
	}
}

// TestBaseDocGlobalIDs: a builder seeded with BaseDoc numbers from
// that base and encodes the global IDs straight into the records, so
// NRT segment lists concatenate with no query-time translation.
func TestBaseDocGlobalIDs(t *testing.T) {
	fs := newFS()
	b := NewBuilder(fs, Options{
		Analyzer: textproc.NewAnalyzer(textproc.WithStemming(false)),
		BaseDoc:  1000,
	})
	if err := b.Add(Doc{ID: 0, Text: "x"}); err == nil {
		t.Fatal("id below BaseDoc accepted")
	}
	docs := []string{"apple banana", "apple"}
	for i, text := range docs {
		if err := b.Add(Doc{ID: 1000 + uint32(i), Text: text}); err != nil {
			t.Fatal(err)
		}
	}
	if b.NumDocs() != 2 {
		t.Fatalf("NumDocs = %d, want 2 (local count)", b.NumDocs())
	}
	m, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	lists := drain(t, m)
	apple, _ := b.Dictionary().Lookup("apple")
	ps := lists[apple.ID]
	want := []postings.Posting{
		{Doc: 1000, Positions: []uint32{0}},
		{Doc: 1001, Positions: []uint32{0}},
	}
	if !reflect.DeepEqual(ps, want) {
		t.Fatalf("apple postings = %v, want %v", ps, want)
	}
	if got := len(b.DocLens()); got != 2 {
		t.Fatalf("DocLens holds %d entries, want 2 (local, not global-indexed)", got)
	}
}

func TestBuildRejectsBadIDs(t *testing.T) {
	fs := newFS()
	b := NewBuilder(fs, Options{})
	if err := b.Add(Doc{ID: 5, Text: "x"}); err == nil {
		t.Fatal("non-dense id accepted")
	}
	b.Add(Doc{ID: 0, Text: "x"})
	if err := b.Add(Doc{ID: 0, Text: "y"}); err == nil {
		t.Fatal("duplicate id accepted")
	}
	m, _ := b.Finish()
	if _, err := b.Finish(); err == nil {
		t.Fatal("double Finish accepted")
	}
	if err := b.Add(Doc{ID: 1, Text: "z"}); err == nil {
		t.Fatal("Add after Finish accepted")
	}
	drain(t, m)
}

// TestExternalSortMatchesInMemory: tiny run limit forces spills; the
// result must equal the single-run result exactly.
func TestExternalSortMatchesInMemory(t *testing.T) {
	gen := func(runLimit int) (map[uint32][]postings.Posting, *Builder) {
		fs := newFS()
		b := NewBuilder(fs, Options{
			Analyzer: textproc.NewAnalyzer(textproc.WithStemming(false), textproc.WithStopWords(nil)),
			RunLimit: runLimit,
			Scratch:  "scr",
		})
		rng := rand.New(rand.NewSource(42))
		for d := 0; d < 200; d++ {
			text := ""
			for w := 0; w < 30; w++ {
				text += fmt.Sprintf("w%d ", rng.Intn(80))
			}
			if err := b.Add(Doc{ID: uint32(d), Text: text}); err != nil {
				t.Fatal(err)
			}
		}
		m, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		return drain(t, m), b
	}
	inMem, b1 := gen(1 << 20) // never spills
	ext, b2 := gen(997)       // spills constantly

	if len(inMem) != len(ext) {
		t.Fatalf("list counts differ: %d vs %d", len(inMem), len(ext))
	}
	// Same analyzer order => same term ids.
	if b1.Dictionary().Len() != b2.Dictionary().Len() {
		t.Fatal("dictionaries differ")
	}
	for term, want := range inMem {
		if !reflect.DeepEqual(ext[term], want) {
			t.Fatalf("term %d postings differ", term)
		}
	}
}

func TestScratchFilesRemoved(t *testing.T) {
	fs := newFS()
	b := NewBuilder(fs, Options{RunLimit: 50, Scratch: "tmprun"})
	for d := 0; d < 50; d++ {
		b.Add(Doc{ID: uint32(d), Text: "alpha beta gamma delta epsilon zeta"})
	}
	m, _ := b.Finish()
	if len(b.runs) == 0 {
		t.Fatal("expected spilled runs")
	}
	drain(t, m)
	for _, name := range fs.Names() {
		if len(name) >= 6 && name[:6] == "tmprun" {
			t.Fatalf("scratch file %q not removed", name)
		}
	}
}

func TestAddTokens(t *testing.T) {
	fs := newFS()
	b := NewBuilder(fs, Options{})
	toks := []textproc.Token{{Term: "alpha", Pos: 0}, {Term: "beta", Pos: 1}, {Term: "alpha", Pos: 2}}
	if err := b.AddTokens(0, toks); err != nil {
		t.Fatal(err)
	}
	m, _ := b.Finish()
	lists := drain(t, m)
	alpha, _ := b.Dictionary().Lookup("alpha")
	if len(lists[alpha.ID]) != 1 || lists[alpha.ID][0].TF() != 2 {
		t.Fatalf("alpha postings = %v", lists[alpha.ID])
	}
	if b.DocLens()[0] != 3 {
		t.Fatalf("DocLens = %v", b.DocLens())
	}
}

func TestMergedStreamAscendingTerms(t *testing.T) {
	fs := newFS()
	b := NewBuilder(fs, Options{RunLimit: 100})
	rng := rand.New(rand.NewSource(3))
	for d := 0; d < 100; d++ {
		text := ""
		for w := 0; w < 20; w++ {
			text += fmt.Sprintf("t%02d ", rng.Intn(50))
		}
		b.Add(Doc{ID: uint32(d), Text: text})
	}
	m, _ := b.Finish()
	last := int64(-1)
	for {
		term, rec, ok, err := m.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if int64(term) <= last {
			t.Fatalf("terms not ascending: %d after %d", term, last)
		}
		last = int64(term)
		// Dictionary stats are synchronized with the emitted record.
		e := b.Dictionary().ByID(term)
		if e.ListBytes != uint32(len(rec)) {
			t.Fatalf("ListBytes = %d, record = %d", e.ListBytes, len(rec))
		}
		ps, _ := postings.DecodeAll(rec)
		if uint64(len(ps)) != e.DF {
			t.Fatalf("DF mismatch for term %d", term)
		}
	}
	m.Close()
}

// TestPropertyStatsConsistent: for random corpora, the sum of CTF over
// the dictionary equals the total token count, and every DF <= NumDocs.
func TestPropertyStatsConsistent(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		fs := newFS()
		b := NewBuilder(fs, Options{
			Analyzer: textproc.NewAnalyzer(textproc.WithStopWords(nil)),
			RunLimit: 1000,
		})
		rng := rand.New(rand.NewSource(seed))
		nd := rng.Intn(100) + 10
		for d := 0; d < nd; d++ {
			text := ""
			for w := 0; w < rng.Intn(40)+1; w++ {
				text += fmt.Sprintf("word%d ", rng.Intn(200))
			}
			b.Add(Doc{ID: uint32(d), Text: text})
		}
		m, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		drain(t, m)
		var ctf int64
		var dfBad bool
		b.Dictionary().Range(func(e *lexicon.Entry) bool {
			ctf += int64(e.CTF)
			if e.DF > uint64(nd) || e.DF == 0 {
				dfBad = true
			}
			return true
		})
		if ctf != b.TotalLen() {
			t.Fatalf("seed %d: sum CTF %d != total %d", seed, ctf, b.TotalLen())
		}
		if dfBad {
			t.Fatalf("seed %d: df out of range", seed)
		}
	}
}

func BenchmarkIndexBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	texts := make([]string, 500)
	for d := range texts {
		t := ""
		for w := 0; w < 80; w++ {
			t += fmt.Sprintf("w%d ", rng.Intn(2000))
		}
		texts[d] = t
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs := newFS()
		bl := NewBuilder(fs, Options{RunLimit: 10000})
		for d, t := range texts {
			bl.Add(Doc{ID: uint32(d), Text: t})
		}
		m, err := bl.Finish()
		if err != nil {
			b.Fatal(err)
		}
		for {
			_, _, ok, err := m.Next()
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				break
			}
		}
		m.Close()
	}
}
