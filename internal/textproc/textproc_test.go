package textproc

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// TestStemVocabulary checks Stem against the published Porter examples
// and a sample of words with well-known stems.
func TestStemVocabulary(t *testing.T) {
	cases := map[string]string{
		// Step 1a.
		"caresses": "caress",
		"ponies":   "poni",
		"ties":     "ti",
		"caress":   "caress",
		"cats":     "cat",
		// Step 1b.
		"feed":      "feed",
		"agreed":    "agre",
		"plastered": "plaster",
		"bled":      "bled",
		"motoring":  "motor",
		"sing":      "sing",
		"conflated": "conflat",
		"troubled":  "troubl",
		"sized":     "size",
		"hopping":   "hop",
		"tanned":    "tan",
		"falling":   "fall",
		"hissing":   "hiss",
		"fizzed":    "fizz",
		"failing":   "fail",
		"filing":    "file",
		// Step 1c.
		"happy": "happi",
		"sky":   "sky",
		// Step 2.
		"relational":     "relat",
		"conditional":    "condit",
		"rational":       "ration",
		"valenci":        "valenc",
		"hesitanci":      "hesit",
		"digitizer":      "digit",
		"conformabli":    "conform",
		"radicalli":      "radic",
		"differentli":    "differ",
		"vileli":         "vile",
		"analogousli":    "analog",
		"vietnamization": "vietnam",
		"predication":    "predic",
		"operator":       "oper",
		"feudalism":      "feudal",
		"decisiveness":   "decis",
		"hopefulness":    "hope",
		"callousness":    "callous",
		"formaliti":      "formal",
		"sensitiviti":    "sensit",
		"sensibiliti":    "sensibl",
		// Step 3.
		"triplicate":  "triplic",
		"formative":   "form",
		"formalize":   "formal",
		"electriciti": "electr",
		"electrical":  "electr",
		"hopeful":     "hope",
		"goodness":    "good",
		// Step 4.
		"revival":     "reviv",
		"allowance":   "allow",
		"inference":   "infer",
		"airliner":    "airlin",
		"gyroscopic":  "gyroscop",
		"adjustable":  "adjust",
		"defensible":  "defens",
		"irritant":    "irrit",
		"replacement": "replac",
		"adjustment":  "adjust",
		"dependent":   "depend",
		"adoption":    "adopt",
		"homologou":   "homolog",
		"communism":   "commun",
		"activate":    "activ",
		"angulariti":  "angular",
		"homologous":  "homolog",
		"effective":   "effect",
		"bowdlerize":  "bowdler",
		// Step 5.
		"probate":  "probat",
		"rate":     "rate",
		"cease":    "ceas",
		"controll": "control",
		"roll":     "roll",
		// General.
		"retrieval":   "retriev",
		"information": "inform",
		"documents":   "document",
		"indexing":    "index",
		"queries":     "queri",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemShortWords(t *testing.T) {
	for _, w := range []string{"", "a", "is", "by"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
}

// TestPropertyStemIdempotentOutputStable: stemming is deterministic and
// never grows a word by more than one letter (the +e case in step 1b).
func TestPropertyStemProperties(t *testing.T) {
	check := func(raw string) bool {
		// Restrict to plausible lowercase words.
		var sb strings.Builder
		for _, r := range raw {
			if r >= 'a' && r <= 'z' {
				sb.WriteRune(r)
			}
		}
		w := sb.String()
		if len(w) > 40 {
			w = w[:40]
		}
		s1 := Stem(w)
		s2 := Stem(w)
		if s1 != s2 {
			return false
		}
		return len(s1) <= len(w)+1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTokensBasic(t *testing.T) {
	a := NewAnalyzer(WithStemming(false))
	got := a.Tokens("The Quick brown fox, the lazy dog!")
	// "the" (x2) stopped; positions advance across them.
	want := []Token{
		{Term: "quick", Pos: 1},
		{Term: "brown", Pos: 2},
		{Term: "fox", Pos: 3},
		{Term: "lazy", Pos: 5},
		{Term: "dog", Pos: 6},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokens = %v, want %v", got, want)
	}
}

func TestTokensStemming(t *testing.T) {
	a := NewAnalyzer()
	got := a.Tokens("retrieving documents")
	if len(got) != 2 || got[0].Term != "retriev" || got[1].Term != "document" {
		t.Fatalf("Tokens = %v", got)
	}
}

func TestTokensDigitsAndMixed(t *testing.T) {
	a := NewAnalyzer(WithStemming(false), WithStopWords(nil))
	got := a.Tokens("term42 x1y2 100")
	want := []Token{
		{Term: "term42", Pos: 0},
		{Term: "x1y2", Pos: 1},
		{Term: "100", Pos: 2},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokens = %v, want %v", got, want)
	}
}

func TestTokensEmptyAndPunctuation(t *testing.T) {
	a := NewAnalyzer()
	if got := a.Tokens(""); len(got) != 0 {
		t.Fatalf("Tokens(\"\") = %v", got)
	}
	if got := a.Tokens("... --- !!!"); len(got) != 0 {
		t.Fatalf("Tokens(punct) = %v", got)
	}
}

func TestTokensUnicodeFallback(t *testing.T) {
	a := NewAnalyzer(WithStemming(false), WithStopWords(nil))
	got := a.Tokens("naïve café — done")
	if len(got) != 3 {
		t.Fatalf("Tokens = %v", got)
	}
	if got[0].Term != "naïve" || got[1].Term != "café" || got[2].Term != "done" {
		t.Fatalf("Tokens = %v", got)
	}
}

func TestMaxTokenLength(t *testing.T) {
	a := NewAnalyzer(WithStemming(false), WithStopWords(nil), WithMaxTokenLength(4))
	got := a.Tokens("abcdefgh")
	if len(got) != 1 || got[0].Term != "abcd" {
		t.Fatalf("Tokens = %v", got)
	}
}

func TestIsStopWordAndNormalize(t *testing.T) {
	a := NewAnalyzer()
	if !a.IsStopWord("The") || a.IsStopWord("fox") {
		t.Fatal("IsStopWord misclassifies")
	}
	if a.Normalize("Running") != "run" {
		t.Fatalf("Normalize = %q", a.Normalize("Running"))
	}
}

func TestCustomStopWords(t *testing.T) {
	a := NewAnalyzer(WithStemming(false), WithStopWords([]string{"fox"}))
	got := a.Tokens("the fox runs")
	// Only "fox" stopped now; "the" survives.
	if len(got) != 2 || got[0].Term != "the" || got[1].Term != "runs" {
		t.Fatalf("Tokens = %v", got)
	}
}

// TestPropertyTokensPositionsAscending via testing/quick.
func TestPropertyTokensPositionsAscending(t *testing.T) {
	a := NewAnalyzer()
	check := func(text string) bool {
		toks := a.Tokens(text)
		for i := 1; i < len(toks); i++ {
			if toks[i].Pos <= toks[i-1].Pos {
				return false
			}
		}
		for _, tok := range toks {
			if tok.Term == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTokens(b *testing.B) {
	a := NewAnalyzer()
	text := strings.Repeat("information retrieval systems have unusual and challenging data management requirements ", 50)
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Tokens(text)
	}
}

func BenchmarkStem(b *testing.B) {
	words := []string{"relational", "retrieval", "formalize", "documents", "adjustment"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Stem(words[i%len(words)])
	}
}
