// Package textproc provides INQUERY's document and query text analysis:
// tokenization, stop-word removal, and Porter stemming. The paper's
// query runs use "appropriate relevance and stop words files"; the
// analyzer here accepts an arbitrary stop set and defaults to a standard
// English list.
package textproc

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// Token is one indexable term occurrence.
type Token struct {
	Term string
	// Pos is the token's ordinal position in the text. Positions advance
	// across stop words so proximity operators see true word distances.
	Pos uint32
}

// Analyzer converts raw text into index tokens.
type Analyzer struct {
	stop   map[string]struct{}
	stem   bool
	maxLen int
}

// Option configures an Analyzer.
type Option func(*Analyzer)

// WithStopWords replaces the default stop set. Pass an empty slice to
// disable stopping entirely.
func WithStopWords(words []string) Option {
	return func(a *Analyzer) {
		a.stop = make(map[string]struct{}, len(words))
		for _, w := range words {
			a.stop[strings.ToLower(w)] = struct{}{}
		}
	}
}

// WithStemming enables or disables Porter stemming (default on).
func WithStemming(on bool) Option {
	return func(a *Analyzer) { a.stem = on }
}

// WithMaxTokenLength caps token length; longer tokens are truncated.
func WithMaxTokenLength(n int) Option {
	return func(a *Analyzer) { a.maxLen = n }
}

// NewAnalyzer builds an analyzer with the default English stop list and
// Porter stemming enabled.
func NewAnalyzer(opts ...Option) *Analyzer {
	a := &Analyzer{stem: true, maxLen: 64}
	WithStopWords(DefaultStopWords)(a)
	for _, o := range opts {
		o(a)
	}
	return a
}

// IsStopWord reports whether w (case-insensitive) is in the stop set.
func (a *Analyzer) IsStopWord(w string) bool {
	_, ok := a.stop[strings.ToLower(w)]
	return ok
}

// Normalize lowercases, truncates, and optionally stems a single word,
// applying exactly the transformation used during tokenization. It does
// not consult the stop list.
func (a *Analyzer) Normalize(w string) string {
	w = strings.ToLower(w)
	if a.maxLen > 0 && len(w) > a.maxLen {
		w = w[:a.maxLen]
	}
	if a.stem {
		w = Stem(w)
	}
	return w
}

// Tokens analyzes text: words are maximal runs of letters and digits,
// lowercased; stop words are dropped (but still advance the position
// counter); surviving words are stemmed when stemming is enabled.
func (a *Analyzer) Tokens(text string) []Token {
	out := make([]Token, 0, len(text)/6)
	pos := uint32(0)
	i := 0
	for i < len(text) {
		// Skip separators. The corpora are ASCII; handle them on the
		// fast path and fall back to unicode for anything else.
		c := text[i]
		if !isWordByte(c) {
			if c < 0x80 {
				i++
				continue
			}
			r, size := decodeRune(text[i:])
			if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
				i += size
				continue
			}
		}
		start := i
		for i < len(text) {
			c := text[i]
			if isWordByte(c) {
				i++
				continue
			}
			if c < 0x80 {
				break
			}
			r, size := decodeRune(text[i:])
			if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
				break
			}
			i += size
		}
		word := strings.ToLower(text[start:i])
		p := pos
		pos++
		if _, stopped := a.stop[word]; stopped {
			continue
		}
		if a.maxLen > 0 && len(word) > a.maxLen {
			word = word[:a.maxLen]
		}
		if a.stem {
			word = Stem(word)
		}
		out = append(out, Token{Term: word, Pos: p})
	}
	return out
}

func isWordByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// decodeRune decodes the first rune of s for the non-ASCII fallback.
func decodeRune(s string) (rune, int) {
	return utf8.DecodeRuneInString(s)
}

// DefaultStopWords is a conventional English stop list of the sort
// shipped with INQUERY-era retrieval systems.
var DefaultStopWords = []string{
	"a", "about", "above", "after", "again", "against", "all", "am", "an",
	"and", "any", "are", "as", "at", "be", "because", "been", "before",
	"being", "below", "between", "both", "but", "by", "can", "cannot",
	"could", "did", "do", "does", "doing", "down", "during", "each", "few",
	"for", "from", "further", "had", "has", "have", "having", "he", "her",
	"here", "hers", "herself", "him", "himself", "his", "how", "i", "if",
	"in", "into", "is", "it", "its", "itself", "me", "more", "most", "my",
	"myself", "no", "nor", "not", "of", "off", "on", "once", "only", "or",
	"other", "ought", "our", "ours", "ourselves", "out", "over", "own",
	"same", "she", "should", "so", "some", "such", "than", "that", "the",
	"their", "theirs", "them", "themselves", "then", "there", "these",
	"they", "this", "those", "through", "to", "too", "under", "until",
	"up", "very", "was", "we", "were", "what", "when", "where", "which",
	"while", "who", "whom", "why", "with", "would", "you", "your", "yours",
	"yourself", "yourselves",
}
