package textproc

// Stem applies the Porter stemming algorithm (M.F. Porter, "An algorithm
// for suffix stripping", Program 14(3), 1980) to a lowercase word.
// Words shorter than three letters are returned unchanged, as in the
// original algorithm.
func Stem(word string) string {
	if len(word) < 3 {
		return word
	}
	s := stemmer{b: []byte(word)}
	s.step1a()
	s.step1b()
	s.step1c()
	s.step2()
	s.step3()
	s.step4()
	s.step5a()
	s.step5b()
	return string(s.b)
}

// stemmer holds the word buffer being reduced in place.
type stemmer struct {
	b []byte
}

// isConsonant reports whether b[i] is a consonant per Porter's rules:
// 'y' is a consonant when at the start or when following a vowel.
func (s *stemmer) isConsonant(i int) bool {
	switch s.b[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !s.isConsonant(i - 1)
	}
	return true
}

// measure computes m, the number of VC sequences in b[:end].
func (s *stemmer) measure(end int) int {
	m := 0
	i := 0
	// Skip initial consonants.
	for i < end && s.isConsonant(i) {
		i++
	}
	for {
		// Skip vowels.
		for i < end && !s.isConsonant(i) {
			i++
		}
		if i >= end {
			return m
		}
		// Skip consonants: one VC sequence complete.
		for i < end && s.isConsonant(i) {
			i++
		}
		m++
	}
}

// hasVowel reports whether b[:end] contains a vowel.
func (s *stemmer) hasVowel(end int) bool {
	for i := 0; i < end; i++ {
		if !s.isConsonant(i) {
			return true
		}
	}
	return false
}

// endsDoubleConsonant reports whether b[:end] ends with a doubled consonant.
func (s *stemmer) endsDoubleConsonant(end int) bool {
	if end < 2 {
		return false
	}
	return s.b[end-1] == s.b[end-2] && s.isConsonant(end-1)
}

// cvc reports whether b[:end] ends consonant-vowel-consonant where the
// final consonant is not w, x, or y (Porter's *o condition).
func (s *stemmer) cvc(end int) bool {
	if end < 3 {
		return false
	}
	if !s.isConsonant(end-3) || s.isConsonant(end-2) || !s.isConsonant(end-1) {
		return false
	}
	switch s.b[end-1] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

// hasSuffix reports whether the buffer ends with suf.
func (s *stemmer) hasSuffix(suf string) bool {
	n := len(s.b)
	if n < len(suf) {
		return false
	}
	return string(s.b[n-len(suf):]) == suf
}

// stemEnd returns the length of the stem if suf were removed.
func (s *stemmer) stemEnd(suf string) int { return len(s.b) - len(suf) }

// replace swaps a verified suffix for rep.
func (s *stemmer) replace(suf, rep string) {
	s.b = append(s.b[:len(s.b)-len(suf)], rep...)
}

// replaceIfM replaces suf with rep when the stem measure exceeds thresh.
// It returns true if the suffix matched (whether or not it fired).
func (s *stemmer) replaceIfM(suf, rep string, thresh int) bool {
	if !s.hasSuffix(suf) {
		return false
	}
	if s.measure(s.stemEnd(suf)) > thresh {
		s.replace(suf, rep)
	}
	return true
}

func (s *stemmer) step1a() {
	switch {
	case s.hasSuffix("sses"):
		s.replace("sses", "ss")
	case s.hasSuffix("ies"):
		s.replace("ies", "i")
	case s.hasSuffix("ss"):
		// Unchanged.
	case s.hasSuffix("s"):
		s.replace("s", "")
	}
}

func (s *stemmer) step1b() {
	if s.hasSuffix("eed") {
		if s.measure(s.stemEnd("eed")) > 0 {
			s.replace("eed", "ee")
		}
		return
	}
	fired := false
	switch {
	case s.hasSuffix("ed") && s.hasVowel(s.stemEnd("ed")):
		s.replace("ed", "")
		fired = true
	case s.hasSuffix("ing") && s.hasVowel(s.stemEnd("ing")):
		s.replace("ing", "")
		fired = true
	}
	if !fired {
		return
	}
	switch {
	case s.hasSuffix("at"):
		s.replace("at", "ate")
	case s.hasSuffix("bl"):
		s.replace("bl", "ble")
	case s.hasSuffix("iz"):
		s.replace("iz", "ize")
	case s.endsDoubleConsonant(len(s.b)):
		last := s.b[len(s.b)-1]
		if last != 'l' && last != 's' && last != 'z' {
			s.b = s.b[:len(s.b)-1]
		}
	case s.measure(len(s.b)) == 1 && s.cvc(len(s.b)):
		s.b = append(s.b, 'e')
	}
}

func (s *stemmer) step1c() {
	if s.hasSuffix("y") && s.hasVowel(s.stemEnd("y")) {
		s.b[len(s.b)-1] = 'i'
	}
}

// step2 maps double suffixes to single ones when m(stem) > 0. The pairs
// are ordered so longer suffixes are tried before their tails.
func (s *stemmer) step2() {
	pairs := []struct{ suf, rep string }{
		{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"},
		{"anci", "ance"}, {"izer", "ize"}, {"abli", "able"},
		{"alli", "al"}, {"entli", "ent"}, {"eli", "e"}, {"ousli", "ous"},
		{"ization", "ize"}, {"ation", "ate"}, {"ator", "ate"},
		{"alism", "al"}, {"iveness", "ive"}, {"fulness", "ful"},
		{"ousness", "ous"}, {"aliti", "al"}, {"iviti", "ive"},
		{"biliti", "ble"}, {"logi", "log"},
	}
	for _, p := range pairs {
		if s.replaceIfM(p.suf, p.rep, 0) {
			return
		}
	}
}

func (s *stemmer) step3() {
	pairs := []struct{ suf, rep string }{
		{"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
		{"ical", "ic"}, {"ful", ""}, {"ness", ""},
	}
	for _, p := range pairs {
		if s.replaceIfM(p.suf, p.rep, 0) {
			return
		}
	}
}

// step4 strips residual suffixes when m(stem) > 1.
func (s *stemmer) step4() {
	sufs := []string{
		"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
		"ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
	}
	// Longer matches first so e.g. "ement" wins over "ment" and "ent".
	for _, suf := range []string{"ement", "ance", "ence", "able", "ible", "ment"} {
		if s.hasSuffix(suf) {
			if s.measure(s.stemEnd(suf)) > 1 {
				s.replace(suf, "")
			}
			return
		}
	}
	for _, suf := range sufs {
		if !s.hasSuffix(suf) {
			continue
		}
		end := s.stemEnd(suf)
		if suf == "ion" {
			if end < 1 || (s.b[end-1] != 's' && s.b[end-1] != 't') {
				return
			}
		}
		if s.measure(end) > 1 {
			s.replace(suf, "")
		}
		return
	}
}

func (s *stemmer) step5a() {
	if !s.hasSuffix("e") {
		return
	}
	end := len(s.b) - 1
	m := s.measure(end)
	if m > 1 || (m == 1 && !s.cvc(end)) {
		s.b = s.b[:end]
	}
}

func (s *stemmer) step5b() {
	n := len(s.b)
	if n > 1 && s.b[n-1] == 'l' && s.endsDoubleConsonant(n) && s.measure(n) > 1 {
		s.b = s.b[:n-1]
	}
}
