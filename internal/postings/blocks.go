// Block (v2) record format: the same gap-encoded varint postings as v1,
// laid out in fixed-size blocks of BlockLen documents with a small
// descriptor table up front. The descriptors — last docID, maximum
// within-document tf, and byte length per block — let an iterator skip
// whole blocks (Advance) without decoding them, and let a chunked
// storage source avoid faulting in chunks whose blocks are never read.
// The maximum tf doubles as the score upper bound the MaxScore pruning
// evaluator needs.
//
// Layout (all integers unsigned LEB128 varints unless noted):
//
//	0x00 0x00 0x02           magic: two zero bytes + version
//	ctf                      collection term frequency
//	df                       document frequency
//	nblocks                  ceil(df / BlockLen)
//	nblocks × [ lastDocDelta, maxTF, byteLen ]
//	nblocks × block body     v1-style [docGap, tf, tf × posGap] runs
//
// Block i holds postings i·BlockLen .. min(df,(i+1)·BlockLen)-1; the
// per-block posting count is implicit. Document gaps continue across
// block boundaries (the first gap of block i is relative to the last
// docID of block i-1), so linear decoding is identical to v1; a skip to
// block i re-bases the previous docID from descriptor i-1 instead.
// lastDocDelta is lastDoc+1 for block 0 and lastDoc_i − lastDoc_{i-1}
// after, mirroring the doc-gap convention.
//
// The magic is unambiguous against v1: a v1 record starting with two
// zero bytes has ctf = 0 and df = 0, so it is exactly two bytes long.
// Any longer record with that prefix must be a versioned block record.
package postings

import (
	"encoding/binary"
	"fmt"
)

// BlockLen is the fixed number of documents per block. 128 keeps
// descriptor overhead under 3% for position-free lists while making a
// block a meaningful skip unit (a few hundred bytes, roughly a storage
// chunk for tf-only lists).
const BlockLen = 128

// IsV2 reports whether rec carries the block-format magic. See the
// package comment for why two leading zero bytes on a record longer
// than two bytes cannot be a v1 record; the version byte distinguishes
// the block format from the v3 bitmap format (IsV3).
func IsV2(rec []byte) bool {
	return len(rec) > 2 && rec[0] == 0 && rec[1] == 0 && rec[2] == 2
}

// EncodeV2 serializes postings in the block format. The input contract
// matches Encode: ascending unique docs, ascending positions.
func EncodeV2(ps []Posting) ([]byte, error) {
	var ctf uint64
	for _, p := range ps {
		ctf += uint64(len(p.Positions))
	}
	nblocks := (len(ps) + BlockLen - 1) / BlockLen
	var tmp [binary.MaxVarintLen64]byte
	bodies := make([]byte, 0, 2*binary.MaxVarintLen32+len(ps)*4)
	descs := make([]uint64, 0, nblocks*3) // lastDocDelta, maxTF, byteLen triples
	prevDoc := int64(-1)
	prevLast := int64(-1)
	for b := 0; b < nblocks; b++ {
		start := len(bodies)
		lo, hi := b*BlockLen, min((b+1)*BlockLen, len(ps))
		var maxTF uint64
		for _, p := range ps[lo:hi] {
			if int64(p.Doc) <= prevDoc {
				return nil, fmt.Errorf("%w: document %d after %d", ErrUnsorted, p.Doc, prevDoc)
			}
			n := binary.PutUvarint(tmp[:], uint64(int64(p.Doc)-prevDoc))
			bodies = append(bodies, tmp[:n]...)
			prevDoc = int64(p.Doc)
			if uint64(len(p.Positions)) > maxTF {
				maxTF = uint64(len(p.Positions))
			}
			n = binary.PutUvarint(tmp[:], uint64(len(p.Positions)))
			bodies = append(bodies, tmp[:n]...)
			prevPos := int64(-1)
			for _, pos := range p.Positions {
				if int64(pos) <= prevPos {
					return nil, fmt.Errorf("%w: position %d after %d in document %d", ErrUnsorted, pos, prevPos, p.Doc)
				}
				n = binary.PutUvarint(tmp[:], uint64(int64(pos)-prevPos))
				bodies = append(bodies, tmp[:n]...)
				prevPos = int64(pos)
			}
		}
		last := int64(ps[hi-1].Doc)
		descs = append(descs, uint64(last-prevLast), maxTF, uint64(len(bodies)-start))
		prevLast = last
	}
	out := make([]byte, 0, 3+3*binary.MaxVarintLen32+len(descs)*2+len(bodies))
	out = append(out, 0x00, 0x00, 0x02)
	put := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		out = append(out, tmp[:n]...)
	}
	put(ctf)
	put(uint64(len(ps)))
	put(uint64(nblocks))
	for _, v := range descs {
		put(v)
	}
	out = append(out, bodies...)
	return out, nil
}

// BitmapMinDensityInv is the density threshold at which EncodeAuto
// prefers the v3 bitmap format: a list qualifies when at least one
// document in BitmapMinDensityInv inside its docID span is present
// (df·4 ≥ span). At that density a gap-coded list spends ≥ 1 byte per
// present document against the bitmap's 1 bit per candidate document
// plus the per-word length table, so the bitmap is strictly smaller and
// its Advance is a word skip instead of a block decode.
const BitmapMinDensityInv = 4

// bitmapWins reports whether a sorted list is dense enough for the
// bitmap format. On unsorted input the subtraction wraps and the test
// fails closed; the encoder then reports ErrUnsorted.
func bitmapWins(ps []Posting) bool {
	if len(ps) == 0 {
		return false
	}
	span := uint64(ps[len(ps)-1].Doc) - uint64(ps[0].Doc) + 1
	return uint64(len(ps))*BitmapMinDensityInv >= span
}

// EncodeAuto picks the record version by list shape: lists longer than
// one block gain skip structure — the v3 bitmap when the list is dense
// inside its docID span (df·4 ≥ span, a self-contained proxy for the
// df/NumDocs density the adaptive-codec literature keys on), the v2
// block format otherwise — while shorter lists stay in the leaner v1
// encoding (a descriptor table on a sub-block list is pure overhead).
// Stores therefore naturally hold a mix of versions; every reader in
// this package dispatches on the magic.
func EncodeAuto(ps []Posting) ([]byte, error) {
	if len(ps) > BlockLen {
		if bitmapWins(ps) {
			return EncodeV3(ps)
		}
		return EncodeV2(ps)
	}
	return Encode(ps)
}

// RangeSource is random-access byte retrieval over one encoded record.
// BlockReader fetches the header eagerly and each block body on first
// use, so a source backed by chunked storage only faults in the chunks
// that overlap the ranges actually read.
type RangeSource interface {
	// ReadRange returns n bytes at offset off. The returned slice is
	// only valid until the next call.
	ReadRange(off, n int) ([]byte, error)
	// Size returns the total encoded record length in bytes.
	Size() int
}

type bytesRange []byte

func (b bytesRange) ReadRange(off, n int) ([]byte, error) {
	if off < 0 || n < 0 || off+n > len(b) {
		return nil, ErrCorrupt
	}
	return b[off : off+n], nil
}

func (b bytesRange) Size() int { return len(b) }

// rangeCursor decodes varints sequentially from a RangeSource,
// fetching small windows on demand (the header and descriptor table
// are a tiny prefix of the record).
type rangeCursor struct {
	src  RangeSource
	off  int // absolute offset of buf[0]
	buf  []byte
	bpos int
	err  error
}

func (c *rangeCursor) pos() int { return c.off + c.bpos }

func (c *rangeCursor) uvarint() uint64 {
	for c.err == nil {
		v, n := binary.Uvarint(c.buf[c.bpos:])
		if n > 0 {
			c.bpos += n
			return v
		}
		if n < 0 {
			c.err = ErrCorrupt
			return 0
		}
		// Window exhausted mid-varint: slide it forward.
		abs := c.pos()
		want := c.src.Size() - abs
		if want > 256 {
			want = 256
		}
		if want <= len(c.buf)-c.bpos {
			c.err = ErrCorrupt // already had every remaining byte
			return 0
		}
		b, err := c.src.ReadRange(abs, want)
		if err != nil {
			c.err = err
			return 0
		}
		c.buf, c.off, c.bpos = b, abs, 0
	}
	return 0
}

type blockDesc struct {
	lastDoc uint32
	maxTF   uint32
	off     int // absolute byte offset of the block body
	length  int
}

// SkipStats summarizes how much of a record an iterator never touched.
type SkipStats struct {
	Postings uint64 // postings never surfaced to the caller
	Blocks   uint64 // blocks whose bodies were never fetched
}

// BlockReader iterates a v2 record with optional skipping. Next gives
// the v1-compatible linear scan; Advance(doc) jumps to the first
// posting with Doc >= doc, loading only the blocks it lands in.
type BlockReader struct {
	src   RangeSource
	ctf   uint64
	df    uint64
	descs []blockDesc
	maxTF uint32

	cur      int // current block index; len(descs) when exhausted
	body     []byte
	bodyOff  int
	inBlock  int   // postings consumed from the current block
	prev     int64 // last decoded docID
	returned uint64
	loadedN  int
	err      error

	finished bool
	stats    SkipStats

	cache  BlockCacheSink
	dec    []Posting // decoded body of the current block, when cached
	decIdx int
}

// NewBlockRangeReader opens a v2 record over a random-access source.
// Header and descriptor corruption is reported through Err, like the
// other readers in this package.
func NewBlockRangeReader(src RangeSource) *BlockReader {
	br := &BlockReader{src: src, prev: -1, cur: -1}
	size := src.Size()
	if size < 3 {
		br.err = ErrCorrupt
		return br
	}
	magic, err := src.ReadRange(0, 3)
	if err != nil {
		br.err = err
		return br
	}
	if magic[0] != 0 || magic[1] != 0 || magic[2] != 2 {
		br.err = ErrCorrupt
		return br
	}
	c := &rangeCursor{src: src, off: 3}
	br.ctf = c.uvarint()
	br.df = c.uvarint()
	nb := c.uvarint()
	if c.err != nil {
		br.err = c.err
		return br
	}
	// The block count is fully determined by df, and each descriptor
	// takes at least three bytes, so both checks bound the allocation
	// below against corrupt headers.
	if nb != (br.df+BlockLen-1)/BlockLen || nb > uint64(size)/3+1 {
		br.err = ErrCorrupt
		return br
	}
	descs := make([]blockDesc, 0, nb)
	prevLast := int64(-1)
	for i := uint64(0); i < nb; i++ {
		delta := c.uvarint()
		mt := c.uvarint()
		bl := c.uvarint()
		if c.err != nil {
			br.err = c.err
			return br
		}
		if delta == 0 || mt > 0xFFFFFFFF || bl < 2 || bl > uint64(size) {
			br.err = ErrCorrupt
			return br
		}
		last := prevLast + int64(delta)
		if last > 0xFFFFFFFF {
			br.err = ErrCorrupt
			return br
		}
		descs = append(descs, blockDesc{lastDoc: uint32(last), maxTF: uint32(mt), length: int(bl)})
		if uint32(mt) > br.maxTF {
			br.maxTF = uint32(mt)
		}
		prevLast = last
	}
	off := c.pos()
	for i := range descs {
		descs[i].off = off
		off += descs[i].length
	}
	if off != size {
		br.err = ErrCorrupt // bodies must exactly fill the record
		return br
	}
	br.descs = descs
	return br
}

// OpenBlockReader opens an in-memory record if it is v2-encoded; the
// bool is false for v1 records (use NewReader for those).
func OpenBlockReader(rec []byte) (*BlockReader, bool) {
	if !IsV2(rec) {
		return nil, false
	}
	return NewBlockRangeReader(bytesRange(rec)), true
}

// CTF returns the collection term frequency from the header.
func (br *BlockReader) CTF() uint64 { return br.ctf }

// DF returns the document frequency from the header.
func (br *BlockReader) DF() uint64 { return br.df }

// MaxTF returns the largest within-document term frequency in the
// record, from the descriptor table — no block decoding needed. This
// is the basis of the per-term score upper bound in MaxScore pruning.
func (br *BlockReader) MaxTF() uint32 { return br.maxTF }

// Blocks returns the number of blocks in the record.
func (br *BlockReader) Blocks() int { return len(br.descs) }

// Err returns the first decoding error encountered, if any.
func (br *BlockReader) Err() error { return br.err }

// count returns the number of postings block i holds.
func (br *BlockReader) count(i int) int {
	if i == len(br.descs)-1 {
		return int(br.df) - i*BlockLen
	}
	return BlockLen
}

func (br *BlockReader) loadBlock(i int) bool {
	d := br.descs[i]
	body, err := br.src.ReadRange(d.off, d.length)
	if err != nil {
		br.err = err
		return false
	}
	br.body, br.bodyOff = body, 0
	br.cur, br.inBlock = i, 0
	br.loadedN++
	if i == 0 {
		br.prev = -1
	} else {
		br.prev = int64(br.descs[i-1].lastDoc)
	}
	return true
}

func (br *BlockReader) uv() (uint64, bool) {
	v, n := binary.Uvarint(br.body[br.bodyOff:])
	if n <= 0 {
		br.err = ErrCorrupt
		return 0, false
	}
	br.bodyOff += n
	return v, true
}

// Next decodes the next posting in document order, exactly as a v1
// Reader would. The Positions slice is freshly allocated.
func (br *BlockReader) Next() (Posting, bool) {
	return br.scan(0, false)
}

// Advance returns the first posting with Doc >= target at or after the
// current position. Blocks whose descriptor shows lastDoc < target are
// skipped without being fetched; within the landing block, passed-over
// postings are decoded but their positions are not materialized.
// Advance and Next may be interleaved freely.
func (br *BlockReader) Advance(target uint32) (Posting, bool) {
	return br.scan(target, true)
}

func (br *BlockReader) scan(target uint32, filtered bool) (Posting, bool) {
	for {
		if br.err != nil {
			return Posting{}, false
		}
		if br.dec != nil {
			// Current block is served from the decoded cache: step over
			// passed postings in the slice instead of decoding the body.
			if filtered {
				for br.decIdx < len(br.dec) && br.dec[br.decIdx].Doc < target {
					br.decIdx++
				}
			}
			if br.decIdx >= len(br.dec) {
				br.dec = nil
				br.inBlock = br.count(br.cur) // exhausted; step blocks below
				continue
			}
			p := br.dec[br.decIdx]
			br.decIdx++
			br.inBlock = br.decIdx // consumed = skipped + this one
			br.prev = int64(p.Doc)
			br.returned++
			return p, true
		}
		if br.cur < 0 || br.cur >= len(br.descs) || br.inBlock >= br.count(br.cur) {
			// No current block or current one exhausted: step to the next
			// candidate, skipping blocks the descriptor rules out.
			ni := br.cur + 1
			if filtered {
				for ni < len(br.descs) && br.descs[ni].lastDoc < target {
					ni++
				}
			}
			if ni >= len(br.descs) {
				br.cur = len(br.descs)
				return Posting{}, false
			}
			if br.cache != nil {
				// A hit serves the decoded body with no byte fetch; a miss
				// decodes the whole block once and offers it to the cache.
				// Either way the block counts as touched, not skipped, so
				// the skip statistics match the uncached traversal.
				ps, ok := br.cache.GetBlock(ni)
				if !ok {
					var err error
					if ps, err = br.fillBlock(ni); err != nil {
						br.err = err
						return Posting{}, false
					}
					br.cache.PutBlock(ni, ps)
				}
				br.cur, br.inBlock = ni, 0
				br.dec, br.decIdx = ps, 0
				br.loadedN++
				continue
			}
			if !br.loadBlock(ni) {
				return Posting{}, false
			}
			continue
		}
		if filtered && br.descs[br.cur].lastDoc < target {
			// Mid-block and every remaining doc here is below target:
			// abandon the rest of the block.
			br.inBlock = br.count(br.cur)
			continue
		}
		d := br.descs[br.cur]
		gap, ok := br.uv()
		if !ok {
			return Posting{}, false
		}
		if gap == 0 {
			br.err = ErrCorrupt
			return Posting{}, false
		}
		doc := br.prev + int64(gap)
		if doc > int64(d.lastDoc) {
			br.err = ErrCorrupt // descriptor promised lastDoc; body exceeds it
			return Posting{}, false
		}
		br.prev = doc
		tf, ok := br.uv()
		if !ok {
			return Posting{}, false
		}
		if tf > uint64(d.maxTF) {
			br.err = ErrCorrupt // tf above the descriptor bound breaks MaxScore
			return Posting{}, false
		}
		materialize := !filtered || uint32(doc) >= target
		var positions []uint32
		if materialize {
			capHint := tf
			if rem := uint64(len(br.body) - br.bodyOff); capHint > rem {
				capHint = rem
			}
			positions = make([]uint32, 0, capHint)
		}
		prevPos := int64(-1)
		for i := uint64(0); i < tf; i++ {
			pg, ok := br.uv()
			if !ok {
				return Posting{}, false
			}
			if pg == 0 {
				br.err = ErrCorrupt
				return Posting{}, false
			}
			pos := prevPos + int64(pg)
			if pos > 0xFFFFFFFF {
				br.err = ErrCorrupt
				return Posting{}, false
			}
			if materialize {
				positions = append(positions, uint32(pos))
			}
			prevPos = pos
		}
		br.inBlock++
		if br.inBlock == br.count(br.cur) {
			if uint32(doc) != d.lastDoc || br.bodyOff != len(br.body) {
				br.err = ErrCorrupt
				return Posting{}, false
			}
		}
		if materialize {
			br.returned++
			return Posting{Doc: uint32(doc), Positions: positions}, true
		}
	}
}

// SetBlockCache attaches a decoded-postings cache consulted per block.
// See BlockCacheSink for the sharing contract. Attach before iterating;
// blocks already consumed on the streaming path are unaffected.
func (br *BlockReader) SetBlockCache(c BlockCacheSink) { br.cache = c }

// fillBlock decodes block i in one standalone pass for the cache,
// gathering through pooled scratch and returning an exactly-sized,
// immutable copy. It leaves the reader's streaming state untouched
// apart from loadedN-neutral byte fetching (the caller accounts the
// block as touched).
func (br *BlockReader) fillBlock(i int) ([]Posting, error) {
	d := br.descs[i]
	body, err := br.src.ReadRange(d.off, d.length)
	if err != nil {
		return nil, err
	}
	prev := int64(-1)
	if i > 0 {
		prev = int64(br.descs[i-1].lastDoc)
	}
	fs := getFillScratch()
	defer fs.release()
	off := 0
	uv := func() (uint64, bool) {
		v, n := binary.Uvarint(body[off:])
		if n <= 0 {
			return 0, false
		}
		off += n
		return v, true
	}
	n := br.count(i)
	for k := 0; k < n; k++ {
		gap, ok := uv()
		if !ok || gap == 0 {
			return nil, ErrCorrupt
		}
		doc := prev + int64(gap)
		if doc > int64(d.lastDoc) {
			return nil, ErrCorrupt
		}
		prev = doc
		tf, ok := uv()
		if !ok || tf > uint64(d.maxTF) {
			return nil, ErrCorrupt
		}
		fs.start(uint32(doc))
		prevPos := int64(-1)
		for j := uint64(0); j < tf; j++ {
			pg, ok := uv()
			if !ok || pg == 0 {
				return nil, ErrCorrupt
			}
			pos := prevPos + int64(pg)
			if pos > 0xFFFFFFFF {
				return nil, ErrCorrupt
			}
			fs.addPos(uint32(pos))
			prevPos = pos
		}
	}
	if uint32(prev) != d.lastDoc || off != len(body) {
		return nil, ErrCorrupt
	}
	return fs.finalize(), nil
}

// FinishStats closes out the iteration and returns what was skipped:
// postings never surfaced (whether their block was skipped or they
// were passed over inside one) and block bodies never fetched.
// Idempotent; safe to call mid-iteration for a partial read (deadline,
// early heap exit), where the unread tail counts as skipped.
func (br *BlockReader) FinishStats() SkipStats {
	if !br.finished {
		br.finished = true
		br.stats = SkipStats{
			Postings: br.df - br.returned,
			Blocks:   uint64(len(br.descs) - br.loadedN),
		}
	}
	return br.stats
}

// RecordIterator is the version-independent view of a record scan.
type RecordIterator interface {
	Next() (Posting, bool)
	CTF() uint64
	DF() uint64
	Err() error
}

// Iter opens the right linear iterator for an encoded record of any
// version. A versioned record whose version byte is unknown surfaces as
// corrupt — it must never fall through to the v1 reader, which would
// silently decode it as an empty list.
func Iter(rec []byte) RecordIterator {
	switch {
	case IsV2(rec):
		return NewBlockRangeReader(bytesRange(rec))
	case IsV3(rec):
		return NewBitmapRangeReader(bytesRange(rec))
	case IsVersioned(rec):
		return &Reader{err: ErrCorrupt}
	}
	return NewReader(rec)
}

// AppendAll decodes every posting in rec (either version) onto dst,
// for callers that reuse a scratch slice across records.
func AppendAll(dst []Posting, rec []byte) ([]Posting, error) {
	it := Iter(rec)
	n := len(dst)
	for {
		p, ok := it.Next()
		if !ok {
			break
		}
		dst = append(dst, p)
	}
	if it.Err() != nil {
		return dst, it.Err()
	}
	if uint64(len(dst)-n) != it.DF() {
		return dst, fmt.Errorf("%w: header df=%d but %d postings", ErrCorrupt, it.DF(), len(dst)-n)
	}
	return dst, nil
}
