package postings

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"testing"
)

// chunkedReader feeds a record in tiny pieces to exercise decoding
// across read boundaries.
type chunkedReader struct {
	data  []byte
	chunk int
}

func (c *chunkedReader) Read(p []byte) (int, error) {
	if len(c.data) == 0 {
		return 0, io.EOF
	}
	n := c.chunk
	if n > len(c.data) {
		n = len(c.data)
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, c.data[:n])
	c.data = c.data[n:]
	return n, nil
}

func TestStreamReaderMatchesReader(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 100; iter++ {
		in := randomPostings(rng, 60)
		rec := mustEncode(t, in)
		for _, chunk := range []int{1, 3, 7, 64, len(rec) + 1} {
			sr := NewStreamReader(&chunkedReader{data: rec, chunk: chunk})
			if sr.Err() != nil {
				t.Fatalf("iter %d chunk %d: header err %v", iter, chunk, sr.Err())
			}
			var got []Posting
			for {
				p, ok := sr.Next()
				if !ok {
					break
				}
				got = append(got, p)
			}
			if sr.Err() != nil {
				t.Fatalf("iter %d chunk %d: %v", iter, chunk, sr.Err())
			}
			if len(in) == 0 && len(got) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, in) {
				t.Fatalf("iter %d chunk %d: stream decode mismatch", iter, chunk)
			}
			if sr.DF() != uint64(len(in)) {
				t.Fatalf("DF = %d, want %d", sr.DF(), len(in))
			}
		}
	}
}

func TestStreamReaderHeader(t *testing.T) {
	rec := mustEncode(t, []Posting{mk(3, 1, 5), mk(9, 2)})
	sr := NewStreamReader(bytes.NewReader(rec))
	if sr.CTF() != 3 || sr.DF() != 2 {
		t.Fatalf("header = %d, %d", sr.CTF(), sr.DF())
	}
}

func TestStreamReaderTruncated(t *testing.T) {
	rec := mustEncode(t, []Posting{mk(3, 1, 5), mk(9, 2)})
	sr := NewStreamReader(bytes.NewReader(rec[:len(rec)-1]))
	for {
		if _, ok := sr.Next(); !ok {
			break
		}
	}
	if sr.Err() == nil {
		t.Fatal("truncated stream decoded without error")
	}
	// Empty stream: header fails.
	sr = NewStreamReader(bytes.NewReader(nil))
	if sr.Err() == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestStreamReaderCorruptGaps(t *testing.T) {
	// df=1 but zero doc gap.
	sr := NewStreamReader(bytes.NewReader([]byte{1, 1, 0}))
	if _, ok := sr.Next(); ok || sr.Err() == nil {
		t.Fatal("zero gap accepted")
	}
}

func BenchmarkStreamDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	rec := mustEncode(b, randomPostings(rng, 2000))
	b.SetBytes(int64(len(rec)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sr := NewStreamReader(bytes.NewReader(rec))
		for {
			if _, ok := sr.Next(); !ok {
				break
			}
		}
		if sr.Err() != nil {
			b.Fatal(sr.Err())
		}
	}
}
