package postings

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func mk(doc uint32, positions ...uint32) Posting {
	return Posting{Doc: doc, Positions: positions}
}

// mustEncode encodes a list the test knows to be sorted.
func mustEncode(tb testing.TB, ps []Posting) []byte {
	tb.Helper()
	rec, err := Encode(ps)
	if err != nil {
		tb.Fatal(err)
	}
	return rec
}

func TestEncodeDecodeEmpty(t *testing.T) {
	rec := mustEncode(t, nil)
	ctf, df, err := Stats(rec)
	if err != nil || ctf != 0 || df != 0 {
		t.Fatalf("Stats = %d, %d, %v", ctf, df, err)
	}
	ps, err := DecodeAll(rec)
	if err != nil || len(ps) != 0 {
		t.Fatalf("DecodeAll = %v, %v", ps, err)
	}
}

func TestEncodeDecodeSimple(t *testing.T) {
	in := []Posting{
		mk(0, 0, 5, 9),
		mk(3, 2),
		mk(4, 0, 1, 2, 3),
		mk(1000000, 4294967295),
	}
	rec := mustEncode(t, in)
	ctf, df, err := Stats(rec)
	if err != nil {
		t.Fatal(err)
	}
	if ctf != 9 || df != 4 {
		t.Fatalf("ctf=%d df=%d, want 9, 4", ctf, df)
	}
	out, err := DecodeAll(rec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: got %v want %v", out, in)
	}
}

func TestReaderIncremental(t *testing.T) {
	in := []Posting{mk(2, 1, 7), mk(9, 3)}
	r := NewReader(mustEncode(t, in))
	if r.CTF() != 3 || r.DF() != 2 {
		t.Fatalf("header ctf=%d df=%d", r.CTF(), r.DF())
	}
	p, ok := r.Next()
	if !ok || p.Doc != 2 || p.TF() != 2 {
		t.Fatalf("first = %v, %v", p, ok)
	}
	p, ok = r.Next()
	if !ok || p.Doc != 9 || p.TF() != 1 {
		t.Fatalf("second = %v, %v", p, ok)
	}
	if _, ok = r.Next(); ok {
		t.Fatal("Next past end returned true")
	}
	if r.Err() != nil {
		t.Fatalf("Err = %v", r.Err())
	}
}

func TestEncodeRejectsDocDisorder(t *testing.T) {
	for _, ps := range [][]Posting{
		{mk(5, 1), mk(5, 2)}, // duplicate doc
		{mk(7, 1), mk(5, 2)}, // descending docs
	} {
		if _, err := Encode(ps); !errors.Is(err, ErrUnsorted) {
			t.Fatalf("Encode(%v): want ErrUnsorted, got %v", ps, err)
		}
	}
}

func TestEncodeRejectsPositionDisorder(t *testing.T) {
	for _, ps := range [][]Posting{
		{mk(5, 3, 3)}, // duplicate position
		{mk(5, 4, 2)}, // descending positions
	} {
		if _, err := Encode(ps); !errors.Is(err, ErrUnsorted) {
			t.Fatalf("Encode(%v): want ErrUnsorted, got %v", ps, err)
		}
	}
}

func TestDecodeCorrupt(t *testing.T) {
	cases := [][]byte{
		{},              // empty: no header
		{0x80},          // truncated varint
		{3, 1, 0},       // zero doc gap
		{2, 1, 1, 2, 0}, // zero position gap
		{5, 2, 1, 1, 1}, // df says 2, record has 1
	}
	for i, rec := range cases {
		if _, err := DecodeAll(rec); err == nil {
			t.Errorf("case %d: corrupt record decoded without error", i)
		}
	}
	if _, _, err := Stats(nil); err == nil {
		t.Error("Stats(nil) succeeded")
	}
}

func TestMergeAppend(t *testing.T) {
	rec := mustEncode(t, []Posting{mk(1, 0), mk(5, 2, 3)})
	out, err := Merge(rec, []Posting{mk(9, 1)})
	if err != nil {
		t.Fatal(err)
	}
	ps, _ := DecodeAll(out)
	want := []Posting{mk(1, 0), mk(5, 2, 3), mk(9, 1)}
	if !reflect.DeepEqual(ps, want) {
		t.Fatalf("got %v want %v", ps, want)
	}
}

func TestMergeMiddleAndReplace(t *testing.T) {
	rec := mustEncode(t, []Posting{mk(1, 0), mk(5, 2, 3), mk(9, 1)})
	out, err := Merge(rec, []Posting{mk(3, 7), mk(5, 8, 9, 10)})
	if err != nil {
		t.Fatal(err)
	}
	ps, _ := DecodeAll(out)
	want := []Posting{mk(1, 0), mk(3, 7), mk(5, 8, 9, 10), mk(9, 1)}
	if !reflect.DeepEqual(ps, want) {
		t.Fatalf("got %v want %v", ps, want)
	}
}

func TestMergeIntoEmpty(t *testing.T) {
	out, err := Merge(mustEncode(t, nil), []Posting{mk(4, 2)})
	if err != nil {
		t.Fatal(err)
	}
	ps, _ := DecodeAll(out)
	if !reflect.DeepEqual(ps, []Posting{mk(4, 2)}) {
		t.Fatalf("got %v", ps)
	}
}

func TestDelete(t *testing.T) {
	rec := mustEncode(t, []Posting{mk(1, 0), mk(5, 2), mk(9, 1)})
	out, err := Delete(rec, []uint32{5, 77})
	if err != nil {
		t.Fatal(err)
	}
	ps, _ := DecodeAll(out)
	want := []Posting{mk(1, 0), mk(9, 1)}
	if !reflect.DeepEqual(ps, want) {
		t.Fatalf("got %v want %v", ps, want)
	}
	// Delete everything: header-only record, stats go to zero.
	out, err = Delete(out, []uint32{1, 9})
	if err != nil {
		t.Fatal(err)
	}
	ctf, df, _ := Stats(out)
	if ctf != 0 || df != 0 {
		t.Fatalf("after full delete ctf=%d df=%d", ctf, df)
	}
}

func randomPostings(rng *rand.Rand, maxDocs int) []Posting {
	n := rng.Intn(maxDocs)
	docs := make(map[uint32]bool)
	for len(docs) < n {
		docs[uint32(rng.Intn(1<<20))] = true
	}
	sorted := make([]uint32, 0, n)
	for d := range docs {
		sorted = append(sorted, d)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	ps := make([]Posting, n)
	for i, d := range sorted {
		tf := rng.Intn(8) + 1
		pos := make([]uint32, tf)
		cur := uint32(rng.Intn(50))
		for j := range pos {
			pos[j] = cur
			cur += uint32(rng.Intn(100) + 1)
		}
		ps[i] = Posting{Doc: d, Positions: pos}
	}
	return ps
}

// TestPropertyRoundTrip: Encode∘DecodeAll is the identity on sorted lists.
func TestPropertyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 300; i++ {
		in := randomPostings(rng, 80)
		out, err := DecodeAll(mustEncode(t, in))
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		if len(in) == 0 && len(out) == 0 {
			continue
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("iter %d: round trip mismatch", i)
		}
	}
}

// TestPropertyHeaderConsistent: the header always matches the body.
func TestPropertyHeaderConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		in := randomPostings(rng, 60)
		rec := mustEncode(t, in)
		ctf, df, err := Stats(rec)
		if err != nil {
			t.Fatal(err)
		}
		var wantCTF uint64
		for _, p := range in {
			wantCTF += uint64(p.TF())
		}
		if ctf != wantCTF || df != uint64(len(in)) {
			t.Fatalf("iter %d: header (%d,%d) body (%d,%d)", i, ctf, df, wantCTF, len(in))
		}
	}
}

// TestPropertyMergeEquivalence: Merge over encoded bytes equals merging
// the plain posting slices and encoding the result.
func TestPropertyMergeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 150; i++ {
		base := randomPostings(rng, 50)
		adds := randomPostings(rng, 20)
		got, err := Merge(mustEncode(t, base), adds)
		if err != nil {
			t.Fatal(err)
		}
		// Reference merge on maps.
		m := make(map[uint32]Posting)
		for _, p := range base {
			m[p.Doc] = p
		}
		for _, p := range adds {
			m[p.Doc] = p
		}
		docs := make([]uint32, 0, len(m))
		for d := range m {
			docs = append(docs, d)
		}
		sort.Slice(docs, func(a, b int) bool { return docs[a] < docs[b] })
		want := make([]Posting, len(docs))
		for j, d := range docs {
			want[j] = m[d]
		}
		if !bytes.Equal(got, mustEncode(t, want)) {
			t.Fatalf("iter %d: merge mismatch", i)
		}
	}
}

// TestPropertyDeleteThenDecode via testing/quick: Delete removes exactly
// the named documents.
func TestPropertyDeleteThenDecode(t *testing.T) {
	check := func(docSeed int64, delMask uint16) bool {
		rng := rand.New(rand.NewSource(docSeed))
		base := randomPostings(rng, 16)
		var del []uint32
		for i, p := range base {
			if delMask&(1<<uint(i%16)) != 0 {
				del = append(del, p.Doc)
			}
		}
		out, err := Delete(mustEncode(t, base), del)
		if err != nil {
			return false
		}
		got, err := DecodeAll(out)
		if err != nil {
			return false
		}
		gone := make(map[uint32]bool)
		for _, d := range del {
			gone[d] = true
		}
		want := 0
		for _, p := range base {
			if !gone[p.Doc] {
				want++
			}
		}
		return len(got) == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestCompressionRate: on dense realistic lists the codec should achieve
// compression in the neighbourhood the paper reports (~60 % average, i.e.
// encoded ≈ 40 % of the raw integer-vector size), and never exceed raw.
func TestCompressionRate(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// A frequent term: appears in 5000 consecutive-ish documents.
	ps := make([]Posting, 5000)
	doc := uint32(0)
	for i := range ps {
		doc += uint32(rng.Intn(4) + 1)
		tf := rng.Intn(4) + 1
		pos := make([]uint32, tf)
		cur := uint32(rng.Intn(100))
		for j := range pos {
			pos[j] = cur
			cur += uint32(rng.Intn(500) + 1)
		}
		ps[i] = Posting{Doc: doc, Positions: pos}
	}
	raw := RawSize(ps)
	enc := len(mustEncode(t, ps))
	ratio := float64(enc) / float64(raw)
	if ratio >= 1 {
		t.Fatalf("no compression: encoded %d raw %d", enc, raw)
	}
	if ratio > 0.6 {
		t.Fatalf("compression ratio %.2f worse than expected 0.25-0.60 band", ratio)
	}
}

func BenchmarkEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	ps := randomPostings(rng, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustEncode(b, ps)
	}
}

func BenchmarkDecodeAll(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	rec := mustEncode(b, randomPostings(rng, 2000))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeAll(rec); err != nil {
			b.Fatal(err)
		}
	}
}
