package postings

import (
	"math/rand"
	"reflect"
	"testing"
)

// encodeBoth returns the v1 and v2 encodings of the same postings.
func encodeBoth(t testing.TB, ps []Posting) (v1, v2 []byte) {
	t.Helper()
	var err error
	v1, err = Encode(ps)
	if err != nil {
		t.Fatal(err)
	}
	v2, err = EncodeV2(ps)
	if err != nil {
		t.Fatal(err)
	}
	return v1, v2
}

func TestV2Magic(t *testing.T) {
	_, v2 := encodeBoth(t, randomPostings(rand.New(rand.NewSource(1)), 300))
	if !IsV2(v2) {
		t.Fatal("EncodeV2 output not detected as v2")
	}
	// Every v1 encoding the encoder can produce must be distinguishable.
	for _, ps := range [][]Posting{
		{},
		{mk(0, 0)},
		{mk(0, 0), mk(1, 0)},
		{mk(5, 1, 2, 3)},
	} {
		v1, err := Encode(ps)
		if err != nil {
			t.Fatal(err)
		}
		if IsV2(v1) {
			t.Fatalf("v1 record %v misdetected as v2", v1)
		}
	}
}

func TestV2RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 1, 127, 128, 129, 500, 1000} {
		in := randomPostingsN(rng, n)
		_, v2 := encodeBoth(t, in)
		got, err := DecodeAll(v2)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(in) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, in) {
			t.Fatalf("n=%d: v2 round trip mismatch", n)
		}
		ctf, df, err := Stats(v2)
		if err != nil {
			t.Fatalf("n=%d stats: %v", n, err)
		}
		var wantCTF uint64
		for _, p := range in {
			wantCTF += uint64(len(p.Positions))
		}
		if ctf != wantCTF || df != uint64(n) {
			t.Fatalf("n=%d: stats = %d,%d want %d,%d", n, ctf, df, wantCTF, n)
		}
	}
}

func TestV2AgreesWithV1(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 20; iter++ {
		in := randomPostingsN(rng, 50+rng.Intn(500))
		v1, v2 := encodeBoth(t, in)
		a, err := DecodeAll(v1)
		if err != nil {
			t.Fatal(err)
		}
		b, err := DecodeAll(v2)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("iter %d: v1 and v2 decode differently", iter)
		}
	}
}

// TestAdvanceOracle checks Advance against a brute-force scan: from any
// starting position, Advance(target) must return exactly the first
// posting at or after target that a linear Next walk would reach.
func TestAdvanceOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for iter := 0; iter < 30; iter++ {
		in := randomPostingsN(rng, 1+rng.Intn(700))
		_, v2 := encodeBoth(t, in)
		maxDoc := in[len(in)-1].Doc

		// Interleave Next and Advance with random targets, tracking the
		// index a linear scan would be at.
		br, ok := OpenBlockReader(v2)
		if !ok {
			t.Fatal("not v2")
		}
		idx := 0 // next posting a linear reader would return
		for step := 0; step < 50 && idx < len(in); step++ {
			if rng.Intn(2) == 0 {
				p, ok := br.Next()
				if !ok {
					t.Fatalf("iter %d: Next exhausted early at %d/%d (err %v)", iter, idx, len(in), br.Err())
				}
				if p.Doc != in[idx].Doc || !reflect.DeepEqual(p.Positions, in[idx].Positions) {
					t.Fatalf("iter %d: Next returned %v want %v", iter, p, in[idx])
				}
				idx++
				continue
			}
			target := uint32(rng.Int63n(int64(maxDoc) + 10))
			// Oracle: first posting >= max(target, current position).
			want := idx
			for want < len(in) && in[want].Doc < target {
				want++
			}
			p, ok := br.Advance(target)
			if want == len(in) {
				if ok {
					t.Fatalf("iter %d: Advance(%d) returned %v, want exhausted", iter, target, p)
				}
				if br.Err() != nil {
					t.Fatalf("iter %d: Advance exhausted with error %v", iter, br.Err())
				}
				idx = len(in)
				break
			}
			if !ok {
				t.Fatalf("iter %d: Advance(%d) exhausted, want doc %d (err %v)", iter, target, in[want].Doc, br.Err())
			}
			if p.Doc != in[want].Doc || !reflect.DeepEqual(p.Positions, in[want].Positions) {
				t.Fatalf("iter %d: Advance(%d) = %v want %v", iter, target, p, in[want])
			}
			idx = want + 1
		}
		if br.Err() != nil {
			t.Fatalf("iter %d: %v", iter, br.Err())
		}
	}
}

// TestAdvanceSkipsBlocks verifies both the skip accounting and that a
// far Advance genuinely avoids fetching intermediate block bodies.
func TestAdvanceSkipsBlocks(t *testing.T) {
	// 10 full blocks of tf-1 postings with doc IDs 0..1279.
	ps := make([]Posting, 10*BlockLen)
	for i := range ps {
		ps[i] = Posting{Doc: uint32(i), Positions: []uint32{uint32(i % 7)}}
	}
	rec, err := EncodeV2(ps)
	if err != nil {
		t.Fatal(err)
	}
	src := &countingRange{data: rec}
	br := NewBlockRangeReader(src)
	if br.Err() != nil {
		t.Fatal(br.Err())
	}
	if br.Blocks() != 10 {
		t.Fatalf("blocks = %d, want 10", br.Blocks())
	}
	if br.MaxTF() != 1 {
		t.Fatalf("maxTF = %d, want 1", br.MaxTF())
	}
	headerReads := src.reads // header + descriptor fetches
	p, ok := br.Advance(9*BlockLen + 5)
	if !ok || p.Doc != uint32(9*BlockLen+5) {
		t.Fatalf("Advance = %v,%v", p, ok)
	}
	if got := src.reads - headerReads; got != 1 {
		t.Fatalf("advance fetched %d block bodies, want 1", got)
	}
	for {
		if _, ok := br.Next(); !ok {
			break
		}
	}
	if br.Err() != nil {
		t.Fatal(br.Err())
	}
	st := br.FinishStats()
	if st.Blocks != 9 {
		t.Fatalf("BlocksSkipped = %d, want 9", st.Blocks)
	}
	// Block 9 was fully consumed (5 passed over + the rest returned);
	// the 9 skipped blocks plus 5 in-block skips were never surfaced.
	if st.Postings != 9*BlockLen+5 {
		t.Fatalf("PostingsSkipped = %d, want %d", st.Postings, 9*BlockLen+5)
	}
}

type countingRange struct {
	data  []byte
	reads int
}

func (c *countingRange) ReadRange(off, n int) ([]byte, error) {
	c.reads++
	return bytesRange(c.data).ReadRange(off, n)
}

func (c *countingRange) Size() int { return len(c.data) }

func TestV2CorruptRejected(t *testing.T) {
	ps := make([]Posting, 300)
	for i := range ps {
		ps[i] = Posting{Doc: uint32(i * 3), Positions: []uint32{1, 4}}
	}
	rec, err := EncodeV2(ps)
	if err != nil {
		t.Fatal(err)
	}
	// Truncations at every length must error, never fabricate.
	for n := 0; n < len(rec); n++ {
		trunc := rec[:n]
		if !IsV2(trunc) {
			continue // short prefixes fall to the v1 path; covered by fuzz
		}
		if got, err := DecodeAll(trunc); err == nil && len(got) == len(ps) {
			t.Fatalf("truncation to %d bytes decoded fully", n)
		}
	}
	// Flipping the version byte must be rejected, not read as v1.
	bad := append([]byte(nil), rec...)
	bad[2] = 0x07
	if _, err := DecodeAll(bad); err == nil {
		t.Fatal("unknown version accepted")
	}
	if _, _, err := Stats(bad); err == nil {
		t.Fatal("unknown version accepted by Stats")
	}
	// Corrupting a descriptor maxTF below the real tf must surface.
	br, _ := OpenBlockReader(rec)
	if br.Err() != nil {
		t.Fatal(br.Err())
	}
}

func TestEncodeAutoThreshold(t *testing.T) {
	small := make([]Posting, BlockLen)
	for i := range small {
		small[i] = Posting{Doc: uint32(i)}
	}
	rec, err := EncodeAuto(small)
	if err != nil {
		t.Fatal(err)
	}
	if IsV2(rec) {
		t.Fatal("<= BlockLen postings should stay v1")
	}
	large := append(small, Posting{Doc: uint32(BlockLen)})
	rec, err = EncodeAuto(large)
	if err != nil {
		t.Fatal(err)
	}
	if !IsV3(rec) {
		t.Fatal("> BlockLen dense postings should be v3 bitmap")
	}
	got, err := DecodeAll(rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(large) {
		t.Fatalf("decoded %d postings, want %d", len(got), len(large))
	}

	// The same list spread far apart falls below the bitmap density
	// threshold and keeps the v2 block format.
	sparse := make([]Posting, BlockLen+1)
	for i := range sparse {
		sparse[i] = Posting{Doc: uint32(i) * (BitmapMinDensityInv + 1)}
	}
	rec, err = EncodeAuto(sparse)
	if err != nil {
		t.Fatal(err)
	}
	if !IsV2(rec) {
		t.Fatal("> BlockLen sparse postings should be v2 blocks")
	}
}

func TestIterDispatch(t *testing.T) {
	ps := randomPostingsN(rand.New(rand.NewSource(5)), 200)
	v1, v2 := encodeBoth(t, ps)
	for _, rec := range [][]byte{v1, v2} {
		it := Iter(rec)
		var n int
		for {
			if _, ok := it.Next(); !ok {
				break
			}
			n++
		}
		if it.Err() != nil {
			t.Fatal(it.Err())
		}
		if n != len(ps) || it.DF() != uint64(len(ps)) {
			t.Fatalf("Iter decoded %d (df %d), want %d", n, it.DF(), len(ps))
		}
	}
}

func TestAppendAllReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	scratch := make([]Posting, 0, 64)
	for iter := 0; iter < 10; iter++ {
		ps := randomPostingsN(rng, 150)
		_, v2 := encodeBoth(t, ps)
		var err error
		scratch, err = AppendAll(scratch[:0], v2)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(scratch, ps) {
			t.Fatalf("iter %d: AppendAll mismatch", iter)
		}
	}
}

// randomPostingsN builds exactly n random sorted postings.
func randomPostingsN(rng *rand.Rand, n int) []Posting {
	ps := make([]Posting, n)
	doc := int64(-1)
	for i := range ps {
		doc += 1 + rng.Int63n(40)
		tf := rng.Intn(6)
		positions := make([]uint32, 0, tf)
		pos := int64(-1)
		for j := 0; j < tf; j++ {
			pos += 1 + rng.Int63n(50)
			positions = append(positions, uint32(pos))
		}
		ps[i] = Posting{Doc: uint32(doc), Positions: positions}
	}
	return ps
}

func BenchmarkBlockAdvance(b *testing.B) {
	ps := make([]Posting, 64*BlockLen)
	for i := range ps {
		ps[i] = Posting{Doc: uint32(i * 2), Positions: []uint32{1, 3, 9}}
	}
	rec, err := EncodeV2(ps)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(rec)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br, _ := OpenBlockReader(rec)
		var doc uint32
		for {
			p, ok := br.Advance(doc)
			if !ok {
				break
			}
			doc = p.Doc + 1000 // ~every 4th block
		}
		if br.Err() != nil {
			b.Fatal(br.Err())
		}
	}
}
