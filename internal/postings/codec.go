package postings

import "fmt"

// Codec selects the encoding policy a build writes records with. Every
// reader dispatches on the record magic, so stores built with different
// codecs are mutually readable; the codec only matters at write time
// (builds, merges, NRT compaction) and in the codec ablation.
type Codec int

const (
	// CodecAuto is the adaptive default: v1 below BlockLen, then the v3
	// bitmap for dense lists and v2 blocks otherwise (see EncodeAuto).
	CodecAuto Codec = iota
	// CodecV1 forces the sequential v1 encoding for every list — the
	// legacy layout, kept for compatibility tests and the ablation.
	CodecV1
	// CodecV2 disables the bitmap: v1 below BlockLen, v2 blocks above —
	// the pre-bitmap EncodeAuto policy, kept for the ablation.
	CodecV2
)

// String renders the codec as its flag spelling.
func (c Codec) String() string {
	switch c {
	case CodecV1:
		return "v1"
	case CodecV2:
		return "v2"
	default:
		return "auto"
	}
}

// ParseCodec parses a -codec flag value.
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "", "auto":
		return CodecAuto, nil
	case "v1":
		return CodecV1, nil
	case "v2":
		return CodecV2, nil
	}
	return CodecAuto, fmt.Errorf("postings: unknown codec %q (want auto, v1, or v2)", s)
}

// EncodeWith serializes postings under the given codec policy.
func EncodeWith(c Codec, ps []Posting) ([]byte, error) {
	switch c {
	case CodecV1:
		return Encode(ps)
	case CodecV2:
		if len(ps) > BlockLen {
			return EncodeV2(ps)
		}
		return Encode(ps)
	}
	return EncodeAuto(ps)
}
