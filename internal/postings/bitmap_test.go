package postings

import (
	"math/rand"
	"testing"
)

// densePostings builds a deterministic list covering the bitmap format's
// interesting shapes: word boundaries, holes, empty words in the middle,
// varying tf including zero.
func densePostings(n int, seed int64) []Posting {
	rng := rand.New(rand.NewSource(seed))
	ps := make([]Posting, 0, n)
	doc := uint32(rng.Intn(50))
	for i := 0; i < n; i++ {
		tf := rng.Intn(4)
		var pos []uint32
		p := uint32(0)
		for j := 0; j < tf; j++ {
			p += uint32(1 + rng.Intn(20))
			pos = append(pos, p)
		}
		ps = append(ps, Posting{Doc: doc, Positions: pos})
		gap := uint32(1 + rng.Intn(3))
		if rng.Intn(20) == 0 {
			gap += 200 // occasionally skip past several whole words
		}
		doc += gap
	}
	return ps
}

func TestBitmapRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 63, 64, 65, 200, 1000} {
		ps := densePostings(n, int64(n))
		rec, err := EncodeV3(ps)
		if err != nil {
			t.Fatal(err)
		}
		if !IsV3(rec) || IsV2(rec) {
			t.Fatalf("n=%d: v3 magic not detected", n)
		}
		ctf, df, err := Stats(rec)
		if err != nil {
			t.Fatal(err)
		}
		if df != uint64(n) {
			t.Fatalf("n=%d: Stats df=%d", n, df)
		}
		var wantCTF uint64
		for _, p := range ps {
			wantCTF += uint64(len(p.Positions))
		}
		if ctf != wantCTF {
			t.Fatalf("n=%d: Stats ctf=%d want %d", n, ctf, wantCTF)
		}
		got, err := DecodeAll(rec)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(got) != n {
			t.Fatalf("n=%d: decoded %d", n, len(got))
		}
		for i := range ps {
			if got[i].Doc != ps[i].Doc || !samePositions(got[i].Positions, ps[i].Positions) {
				t.Fatalf("n=%d posting %d: got %v want %v", n, i, got[i], ps[i])
			}
		}
	}
}

func samePositions(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestBitmapAdvanceParity drives Advance/Next interleavings over a v3
// record and checks every answer against the v2 encoding of the same
// list — the differential oracle the fuzzer also uses.
func TestBitmapAdvanceParity(t *testing.T) {
	ps := densePostings(700, 7)
	v3, err := EncodeV3(ps)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := EncodeV2(ps)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		b3, _ := OpenBitmapReader(v3)
		b2, _ := OpenBlockReader(v2)
		var cur uint32
		for step := 0; step < 200; step++ {
			if rng.Intn(2) == 0 {
				p3, ok3 := b3.Next()
				p2, ok2 := b2.Next()
				if ok3 != ok2 || (ok3 && (p3.Doc != p2.Doc || !samePositions(p3.Positions, p2.Positions))) {
					t.Fatalf("Next diverged: v3 (%v,%v) v2 (%v,%v)", p3, ok3, p2, ok2)
				}
				if !ok3 {
					break
				}
				cur = p3.Doc
			} else {
				target := cur + uint32(rng.Intn(100))
				p3, ok3 := b3.Advance(target)
				p2, ok2 := b2.Advance(target)
				if ok3 != ok2 || (ok3 && (p3.Doc != p2.Doc || !samePositions(p3.Positions, p2.Positions))) {
					t.Fatalf("Advance(%d) diverged: v3 (%v,%v) v2 (%v,%v)", target, p3, ok3, p2, ok2)
				}
				if !ok3 {
					break
				}
				cur = p3.Doc
			}
		}
		if b3.Err() != nil || b2.Err() != nil {
			t.Fatalf("errs: v3 %v v2 %v", b3.Err(), b2.Err())
		}
	}
}

// TestBitmapSkipStats proves Advance skips whole word payloads and the
// skip statistics account for them.
func TestBitmapSkipStats(t *testing.T) {
	ps := make([]Posting, 1024)
	for i := range ps {
		ps[i] = Posting{Doc: uint32(i), Positions: []uint32{uint32(i % 7)}}
	}
	rec, err := EncodeV3(ps)
	if err != nil {
		t.Fatal(err)
	}
	br, _ := OpenBitmapReader(rec)
	if br.Words() != 16 {
		t.Fatalf("words = %d, want 16", br.Words())
	}
	p, ok := br.Advance(1000)
	if !ok || p.Doc != 1000 {
		t.Fatalf("Advance(1000) = %v, %v", p, ok)
	}
	st := br.FinishStats()
	if st.Blocks == 0 {
		t.Fatalf("no word payloads skipped: %+v", st)
	}
	if st.Postings != 1024-1 {
		t.Fatalf("postings skipped = %d, want %d", st.Postings, 1024-1)
	}
}

// TestBitmapDenseSmaller is the codec claim behind EncodeAuto's density
// threshold: at or above one document in four, the bitmap encoding is
// smaller than the v2 block encoding of the same list.
func TestBitmapDenseSmaller(t *testing.T) {
	for _, stride := range []int{1, 2, 4} {
		ps := make([]Posting, 2000)
		for i := range ps {
			ps[i] = Posting{Doc: uint32(i * stride), Positions: []uint32{5}}
		}
		v3, err := EncodeV3(ps)
		if err != nil {
			t.Fatal(err)
		}
		v2, err := EncodeV2(ps)
		if err != nil {
			t.Fatal(err)
		}
		if len(v3) >= len(v2) {
			t.Fatalf("stride %d: v3 %d bytes >= v2 %d bytes", stride, len(v3), len(v2))
		}
	}
}

// TestBitmapCorruptRejected mutates a valid record every way the
// canonical-form rules guard and requires a clean typed error.
func TestBitmapCorruptRejected(t *testing.T) {
	ps := densePostings(300, 3)
	rec, err := EncodeV3(ps)
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, mut []byte) {
		t.Helper()
		if _, err := DecodeAll(mut); err == nil {
			// Some single-byte flips still parse (e.g. inside a position
			// gap); what must never happen is a panic or a silent wrong
			// posting count, which DecodeAll's df cross-check catches.
			ps2, _ := DecodeAll(mut)
			if len(ps2) != len(ps) {
				t.Fatalf("%s: silently decoded %d postings", name, len(ps2))
			}
		}
	}
	// Truncations at every boundary region. (Cutting to exactly two zero
	// bytes is excluded: that IS the valid empty v1 record, by design.)
	for _, cut := range []int{3, 5, 10, len(rec) / 2, len(rec) - 1} {
		if cut < len(rec) {
			check("truncate", rec[:cut])
		}
	}
	// Flip a bitmap bit: popcount no longer matches df. (Offset 16 is
	// safely inside the words region — the header is ~11 bytes here and
	// the words run for hundreds.)
	mut := append([]byte(nil), rec...)
	mut[16] ^= 0x10
	if _, err := DecodeAll(mut); err == nil {
		t.Fatal("bit flip in bitmap words accepted")
	}
	// Unknown version byte must not fall through to v1.
	mut = append([]byte(nil), rec...)
	mut[2] = 9
	if _, err := DecodeAll(mut); err == nil {
		t.Fatal("unknown version accepted")
	}
	// Empty list cannot be bitmap-encoded.
	if _, err := EncodeV3(nil); err == nil {
		t.Fatal("EncodeV3(nil) accepted")
	}
	// Unsorted input must be rejected at encode time.
	if _, err := EncodeV3([]Posting{{Doc: 5}, {Doc: 5}}); err == nil {
		t.Fatal("duplicate docs accepted")
	}
	if _, err := EncodeV3([]Posting{{Doc: 5, Positions: []uint32{3, 3}}}); err == nil {
		t.Fatal("unsorted positions accepted")
	}
}

// mapSink is a test BlockCacheSink over a plain map.
type mapSink struct {
	m      map[int][]Posting
	hits   int
	misses int
	puts   int
}

func newMapSink() *mapSink { return &mapSink{m: map[int][]Posting{}} }

func (s *mapSink) GetBlock(i int) ([]Posting, bool) {
	ps, ok := s.m[i]
	if ok {
		s.hits++
	} else {
		s.misses++
	}
	return ps, ok
}

func (s *mapSink) PutBlock(i int, ps []Posting) { s.m[i] = ps; s.puts++ }

// TestBlockCacheSinkParity iterates v2 and v3 records with a cache
// attached — cold, then warm — and requires byte-identical postings to
// the uncached walk, for both Next-only and Advance-heavy traversals.
func TestBlockCacheSinkParity(t *testing.T) {
	ps := densePostings(900, 9)
	for _, enc := range []struct {
		name string
		rec  []byte
	}{
		{"v2", mustEncodeV2(t, ps)},
		{"v3", mustEncodeV3(t, ps)},
	} {
		sink := newMapSink()
		openCached := func() interface {
			Next() (Posting, bool)
			Advance(uint32) (Posting, bool)
			Err() error
		} {
			if IsV2(enc.rec) {
				br, _ := OpenBlockReader(enc.rec)
				br.SetBlockCache(sink)
				return br
			}
			br, _ := OpenBitmapReader(enc.rec)
			br.SetBlockCache(sink)
			return br
		}
		// Cold pass (fills), warm pass (hits): both must match the oracle.
		for pass := 0; pass < 2; pass++ {
			it := openCached()
			i := 0
			for {
				p, ok := it.Next()
				if !ok {
					break
				}
				if p.Doc != ps[i].Doc || !samePositions(p.Positions, ps[i].Positions) {
					t.Fatalf("%s pass %d posting %d: got %v want %v", enc.name, pass, i, p, ps[i])
				}
				i++
			}
			if it.Err() != nil || i != len(ps) {
				t.Fatalf("%s pass %d: %d postings, err %v", enc.name, pass, i, it.Err())
			}
		}
		if sink.hits == 0 || sink.puts == 0 {
			t.Fatalf("%s: cache never engaged (hits %d puts %d)", enc.name, sink.hits, sink.puts)
		}
		// Advance walk over the warm cache against the slice oracle.
		it := openCached()
		idx := 0
		for idx < len(ps) {
			target := ps[idx].Doc + 1
			want := idx
			for want < len(ps) && ps[want].Doc < target {
				want++
			}
			p, ok := it.Advance(target)
			if want == len(ps) {
				if ok {
					t.Fatalf("%s: Advance(%d) = %v, want exhausted", enc.name, target, p)
				}
				break
			}
			if !ok || p.Doc != ps[want].Doc || !samePositions(p.Positions, ps[want].Positions) {
				t.Fatalf("%s: Advance(%d) = %v,%v want %v", enc.name, target, p, ok, ps[want])
			}
			idx = want + 1
		}
		if it.Err() != nil {
			t.Fatal(it.Err())
		}
	}
}

func mustEncodeV2(t *testing.T, ps []Posting) []byte {
	t.Helper()
	rec, err := EncodeV2(ps)
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func mustEncodeV3(t *testing.T, ps []Posting) []byte {
	t.Helper()
	rec, err := EncodeV3(ps)
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

// TestEncodeWith pins the codec policies the ablation builds with.
func TestEncodeWith(t *testing.T) {
	dense := make([]Posting, BlockLen+10)
	for i := range dense {
		dense[i] = Posting{Doc: uint32(i)}
	}
	for _, tc := range []struct {
		codec Codec
		check func([]byte) bool
	}{
		{CodecV1, func(r []byte) bool { return !IsVersioned(r) }},
		{CodecV2, IsV2},
		{CodecAuto, IsV3},
	} {
		rec, err := EncodeWith(tc.codec, dense)
		if err != nil {
			t.Fatal(err)
		}
		if !tc.check(rec) {
			t.Fatalf("codec %v produced wrong format", tc.codec)
		}
		got, err := DecodeAll(rec)
		if err != nil || len(got) != len(dense) {
			t.Fatalf("codec %v: decode %d err %v", tc.codec, len(got), err)
		}
	}
	if c, err := ParseCodec("v2"); err != nil || c != CodecV2 {
		t.Fatalf("ParseCodec v2 = %v, %v", c, err)
	}
	if _, err := ParseCodec("zstd"); err == nil {
		t.Fatal("unknown codec accepted")
	}
}

// TestIterUnknownVersion pins the dispatch rule: a versioned record with
// an unknown version byte reads as corrupt, never as an empty v1 list.
func TestIterUnknownVersion(t *testing.T) {
	it := Iter([]byte{0x00, 0x00, 0x07, 0x01})
	if _, ok := it.Next(); ok {
		t.Fatal("unknown version yielded a posting")
	}
	if it.Err() == nil {
		t.Fatal("unknown version not reported as corrupt")
	}
}
